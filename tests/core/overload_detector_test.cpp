#include "core/overload_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace espice {
namespace {

OverloadDetectorConfig base_config() {
  OverloadDetectorConfig c;
  c.latency_bound = 1.0;
  c.f = 0.8;
  c.window_size_events = 100;
  c.tick_period = 0.01;
  c.ewma_alpha = 1.0;  // deterministic: estimates equal the last observation
  c.drain_backlog = false;
  return c;
}

// Feeds a constant processing cost and arrival rate.
void prime(OverloadDetector& d, double lp, double rate, int samples = 5) {
  for (int i = 0; i < samples; ++i) {
    d.observe_processing_cost(lp);
    d.observe_arrival(static_cast<double>(i) / rate);
  }
}

TEST(OverloadDetector, SilentBeforeAnyMeasurement) {
  OverloadDetector d(base_config());
  const auto cmd = d.tick(1000000);
  EXPECT_FALSE(cmd.active);
  EXPECT_FALSE(d.active());
}

TEST(OverloadDetector, QmaxIsLatencyBoundOverProcessingLatency) {
  OverloadDetector d(base_config());
  prime(d, 0.001, 1200.0);  // th = 1000 events/s
  EXPECT_NEAR(d.qmax(), 1000.0, 1e-9);
}

TEST(OverloadDetector, StaysInactiveBelowWatermark) {
  OverloadDetector d(base_config());
  prime(d, 0.001, 1200.0);
  // Watermark = f * qmax = 800.
  EXPECT_FALSE(d.tick(700).active);
  EXPECT_FALSE(d.tick(800).active);
}

TEST(OverloadDetector, ActivatesAboveWatermark) {
  OverloadDetector d(base_config());
  prime(d, 0.001, 1200.0);
  const auto cmd = d.tick(801);
  EXPECT_TRUE(cmd.active);
  EXPECT_TRUE(d.active());
}

TEST(OverloadDetector, DropAmountMatchesPaperFormula) {
  OverloadDetector d(base_config());
  prime(d, 0.001, 1200.0);  // th = 1000, R = 1200, delta = 200
  const auto cmd = d.tick(900);
  ASSERT_TRUE(cmd.active);
  // buffer = qmax - f*qmax = 200 >= N=100 -> rho = 1, psize = 100.
  EXPECT_EQ(cmd.partitions, 1u);
  // x = delta * psize / R = 200 * 100 / 1200.
  EXPECT_NEAR(cmd.x, 200.0 * 100.0 / 1200.0, 1e-9);
}

TEST(OverloadDetector, PartitionsWindowWhenBufferIsSmall) {
  auto config = base_config();
  config.window_size_events = 1000;  // N = 1000 > buffer = 200
  OverloadDetector d(config);
  prime(d, 0.001, 1200.0);
  const auto cmd = d.tick(900);
  ASSERT_TRUE(cmd.active);
  EXPECT_EQ(cmd.partitions, 5u);  // ceil(1000 / 200)
  EXPECT_NEAR(cmd.x, 200.0 * 200.0 / 1200.0, 1e-9);  // psize = 200
}

TEST(OverloadDetector, HigherFMeansSmallerBufferAndMorePartitions) {
  auto config = base_config();
  config.f = 0.9;
  config.window_size_events = 1000;
  OverloadDetector d(config);
  prime(d, 0.001, 1200.0);
  const auto cmd = d.tick(950);
  ASSERT_TRUE(cmd.active);
  EXPECT_EQ(cmd.partitions, 10u);  // buffer = 100
}

TEST(OverloadDetector, NoSurplusMeansNoDropsWithoutDrain) {
  OverloadDetector d(base_config());
  prime(d, 0.001, 900.0);  // R < th
  const auto cmd = d.tick(850);
  ASSERT_TRUE(cmd.active);  // queue above watermark (e.g. after a burst)
  EXPECT_NEAR(cmd.x, 0.0, 1e-12);
}

TEST(OverloadDetector, DrainTermSchedulesBacklogRemoval) {
  auto config = base_config();
  config.drain_backlog = true;
  OverloadDetector d(config);
  prime(d, 0.001, 900.0);  // no rate surplus
  const auto cmd = d.tick(900);  // 100 events above the watermark
  ASSERT_TRUE(cmd.active);
  // partitions_per_lb = R * LB / psize = 900 / 100 = 9 -> x = 100 / 9.
  EXPECT_NEAR(cmd.x, 100.0 / 9.0, 1e-9);
}

TEST(OverloadDetector, DeactivatesOnlyWellBelowWatermark) {
  auto config = base_config();
  config.deactivate_fraction = 0.25;
  OverloadDetector d(config);
  prime(d, 0.001, 1200.0);
  EXPECT_TRUE(d.tick(900).active);
  // Still active in the hysteresis band (>= 0.25 * 800 = 200).
  EXPECT_TRUE(d.tick(500).active);
  EXPECT_TRUE(d.tick(200).active);
  // Drops below the deactivation level.
  EXPECT_FALSE(d.tick(199).active);
}

TEST(OverloadDetector, ReactivatesAfterQuietPeriod) {
  OverloadDetector d(base_config());
  prime(d, 0.001, 1200.0);
  EXPECT_TRUE(d.tick(900).active);
  EXPECT_FALSE(d.tick(10).active);
  EXPECT_TRUE(d.tick(900).active);
}

TEST(OverloadDetector, EstimatesTrackObservations) {
  OverloadDetector d(base_config());
  d.observe_processing_cost(0.002);
  d.observe_arrival(0.0);
  d.observe_arrival(0.01);
  EXPECT_NEAR(d.estimated_lp(), 0.002, 1e-12);
  EXPECT_NEAR(d.estimated_rate(), 100.0, 1e-9);
}

TEST(OverloadDetector, EwmaSmoothsEstimates) {
  auto config = base_config();
  config.ewma_alpha = 0.5;
  OverloadDetector d(config);
  d.observe_processing_cost(0.001);
  d.observe_processing_cost(0.003);
  EXPECT_NEAR(d.estimated_lp(), 0.002, 1e-12);
}

TEST(OverloadDetectorConfig, Validation) {
  auto config = base_config();
  config.latency_bound = 0.0;
  EXPECT_THROW(OverloadDetector{config}, ConfigError);
  config = base_config();
  config.f = 1.0;
  EXPECT_THROW(OverloadDetector{config}, ConfigError);
  config = base_config();
  config.tick_period = 0.0;
  EXPECT_THROW(OverloadDetector{config}, ConfigError);
  config = base_config();
  config.window_size_events = 0;
  EXPECT_THROW(OverloadDetector{config}, ConfigError);
}

}  // namespace
}  // namespace espice
