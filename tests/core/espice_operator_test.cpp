#include "core/espice_operator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace espice {
namespace {

constexpr EventTypeId A = 0;
constexpr EventTypeId B = 1;
constexpr EventTypeId kFiller = 2;

// Windows of 6: A at 0, B at 1, filler at 2..5 (regime 0) -- or the hot pair
// at positions 4, 5 (regime 1).
Event regime_event(int regime, std::uint64_t seq) {
  const std::size_t pos = seq % 6;
  Event e;
  const bool hot = regime == 0 ? pos < 2 : pos >= 4;
  if (hot) {
    e.type = (regime == 0 ? pos == 0 : pos == 4) ? A : B;
  } else {
    e.type = kFiller;
  }
  e.seq = seq;
  e.ts = static_cast<double>(seq);
  e.value = 1.0;
  return e;
}

EspiceOperatorConfig base_config() {
  EspiceOperatorConfig c;
  c.pattern = make_sequence({element("A", TypeSet{A}), element("B", TypeSet{B})});
  c.window.span_kind = WindowSpan::kCount;
  c.window.span_events = 6;
  c.window.open_kind = WindowOpen::kCountSlide;
  c.window.slide_events = 6;
  c.num_types = 3;
  c.training_windows = 200;
  c.detector.latency_bound = 1.0;
  c.detector.f = 0.8;
  c.detector.ewma_alpha = 1.0;
  c.drift.batch_size = 3000;
  c.drift.patience = 1;
  return c;
}

struct Host {
  std::vector<ComplexEvent> matches;
  EspiceOperator op;

  explicit Host(EspiceOperatorConfig config = base_config())
      : op(std::move(config),
           [this](const ComplexEvent& ce) { matches.push_back(ce); }) {}

  // Pushes `n` regime events (continuing the stream where the previous call
  // stopped), feeding detector signals that emulate an overloaded (or idle)
  // host queue.
  void run(int regime, std::size_t n, std::size_t queue_size) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t seq = next_seq_++;
      op.observe_arrival(static_cast<double>(seq) / 1000.0);
      op.observe_cost(1e-3);  // th = 1000 events/s -> qmax = 1000
      op.push(regime_event(regime, seq));
      if (i % 10 == 0) {
        op.on_tick(static_cast<double>(seq) / 1000.0, queue_size);
      }
    }
  }

  std::uint64_t next_seq_ = 0;
};

TEST(EspiceOperator, CountWindowsSkipTheSizingPhase) {
  Host host;
  EXPECT_EQ(host.op.phase(), EspiceOperator::Phase::kTraining);
}

TEST(EspiceOperator, TimeWindowsStartInSizingPhase) {
  auto config = base_config();
  config.window.span_kind = WindowSpan::kTime;
  config.window.span_seconds = 6.0;
  config.window.open_kind = WindowOpen::kPredicate;
  config.window.opener = element("A", TypeSet{A});
  Host host(std::move(config));
  EXPECT_EQ(host.op.phase(), EspiceOperator::Phase::kSizing);
}

TEST(EspiceOperator, TrainsAndArmsAfterEnoughWindows) {
  Host host;
  host.run(0, 201 * 6, /*queue=*/0);
  EXPECT_EQ(host.op.phase(), EspiceOperator::Phase::kShedding);
  ASSERT_NE(host.op.model(), nullptr);
  EXPECT_EQ(host.op.model()->n_positions(), 6u);
  // Matches were delivered throughout training.
  EXPECT_GE(host.matches.size(), 190u);
}

TEST(EspiceOperator, IdleQueueMeansNoDrops) {
  Host host;
  host.run(0, 400 * 6, /*queue=*/10);  // far below the watermark
  EXPECT_FALSE(host.op.shedding_active());
  EXPECT_EQ(host.op.drops(), 0u);
}

TEST(EspiceOperator, OverloadedQueueActivatesShedding) {
  Host host;
  host.run(0, 201 * 6, 0);  // train
  host.matches.clear();
  host.run(0, 400 * 6, /*queue=*/900);  // above 0.8 * 1000
  EXPECT_TRUE(host.op.shedding_active());
  EXPECT_GT(host.op.drops(), 0u);
  // The learned model protects the (A,0), (B,1) cells: the match stream
  // survives shedding intact.
  EXPECT_GE(host.matches.size(), 390u);
}

TEST(EspiceOperator, LearnedModelDropsOnlyFiller) {
  Host host;
  host.run(0, 201 * 6, 0);
  host.run(0, 100 * 6, 900);
  ASSERT_NE(host.op.model(), nullptr);
  const UtilityModel& model = *host.op.model();
  EXPECT_GT(model.utility_cell(A, 0), 90);
  EXPECT_GT(model.utility_cell(B, 1), 90);
  EXPECT_EQ(model.utility_cell(kFiller, 2), 0);
}

TEST(EspiceOperator, DriftTriggersRetrainingAndQualityRecovers) {
  auto config = base_config();
  config.retrain_decay = 0.05;
  // Aggressive relearning settings: generous exploration so the hot cells
  // regain match evidence quickly, frequent rebuilds to adopt it.
  config.exploration = 0.2;
  config.rebuild_every_windows = 200;
  Host host(std::move(config));
  host.run(0, 201 * 6, 0);  // train on regime 0
  EXPECT_EQ(host.op.retrains(), 0u);

  // Switch to regime 1 under overload: the stale model would shed the hot
  // pair.  The drift detector must fire and the rebuilt model recover.
  host.run(1, 2000 * 6, 900);
  EXPECT_GE(host.op.retrains(), 1u);

  host.matches.clear();
  host.run(1, 300 * 6, 900);
  EXPECT_GE(host.matches.size(), 295u);  // quality restored after retrain
}

TEST(EspiceOperator, DriftRetrainingCanBeDisabled) {
  auto config = base_config();
  config.drift_retraining = false;
  Host host(std::move(config));
  host.run(0, 201 * 6, 0);
  host.run(1, 2000 * 6, 900);
  EXPECT_EQ(host.op.retrains(), 0u);
}

TEST(EspiceOperator, PeriodicRebuildRecoversEvenWithoutDriftDetector) {
  // Exploration + periodic rebuilds alone (no drift trigger, no decay) must
  // eventually relearn the shifted hot cells from fresh match evidence.
  auto config = base_config();
  config.drift_retraining = false;
  config.exploration = 0.3;
  config.rebuild_every_windows = 100;
  Host host(std::move(config));
  host.run(0, 201 * 6, 0);
  host.run(1, 3000 * 6, 900);
  host.matches.clear();
  host.run(1, 300 * 6, 900);
  EXPECT_GE(host.matches.size(), 290u);
}

TEST(EspiceOperator, FinishFlushesOpenWindows) {
  Host host;
  host.run(0, 201 * 6 + 2, 0);  // 2 events into an unfinished window
  const auto before = host.matches.size();
  host.run(0, 1, 0);  // window still open (3 of 6 events)
  // The partial window holds A@0 B@1 filler: the match exists once flushed.
  host.op.finish();
  EXPECT_EQ(host.matches.size(), before + 1);
}

TEST(EspiceOperator, RejectsInvalidConfig) {
  auto config = base_config();
  config.num_types = 0;
  EXPECT_THROW(EspiceOperator(config, [](const ComplexEvent&) {}), ConfigError);
  config = base_config();
  EXPECT_THROW(EspiceOperator(config, nullptr), ConfigError);
}

}  // namespace
}  // namespace espice
