// MultiQueryOperator: N queries over one shared window engine -- lifecycle
// (shared sizing/training/arming), per-query models, and the core promise:
// under overload, the coordinator splits the shared drop budget so each
// query sheds its OWN low-utility events, and one query's shedding never
// starves another query's detections.
#include "core/multi_query_operator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace espice {
namespace {

// Types: A,B feed query 0 (seq(A;B)); C,D feed query 1 (seq(C;D)); F is
// filler no query values.
constexpr EventTypeId A = 0;
constexpr EventTypeId B = 1;
constexpr EventTypeId C = 2;
constexpr EventTypeId D = 3;
constexpr EventTypeId F = 4;

/// Blocks of 6 events: A B C D F F.  Every tumbling 6-event window holds
/// exactly one q0 match (A then B) and one q1 match (C then D).
Event block_event(std::uint64_t seq) {
  static constexpr EventTypeId kLayout[6] = {A, B, C, D, F, F};
  Event e;
  e.type = kLayout[seq % 6];
  e.seq = seq;
  e.ts = static_cast<double>(seq);
  e.value = 1.0;
  return e;
}

MultiQueryOperatorConfig two_query_config() {
  MultiQueryOperatorConfig c;
  c.window.span_kind = WindowSpan::kCount;
  c.window.span_events = 6;
  c.window.open_kind = WindowOpen::kCountSlide;
  c.window.slide_events = 6;
  c.queries.push_back(MultiQuerySpec{
      "pairAB",
      make_sequence({element("A", TypeSet{A}), element("B", TypeSet{B})})});
  c.queries.push_back(MultiQuerySpec{
      "pairCD",
      make_sequence({element("C", TypeSet{C}), element("D", TypeSet{D})})});
  c.num_types = 5;
  c.training_windows = 30;
  c.detector.latency_bound = 1.0;
  c.detector.ewma_alpha = 1.0;
  return c;
}

struct Host {
  std::vector<std::vector<ComplexEvent>> matches;
  MultiQueryOperator op;
  std::uint64_t next_seq = 0;

  explicit Host(MultiQueryOperatorConfig config)
      : matches(config.queries.size()),
        op(std::move(config), [this](std::size_t q, const ComplexEvent& ce) {
          matches[q].push_back(ce);
        }) {}

  void run(std::size_t n, std::size_t queue_size) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t seq = next_seq++;
      op.observe_arrival(static_cast<double>(seq) / 1000.0);
      op.observe_cost(1e-3);  // th = 1000 events/s -> qmax = 1000
      op.push(block_event(seq));
      if (i % 10 == 0) {
        op.on_tick(static_cast<double>(seq) / 1000.0, queue_size);
      }
    }
  }
};

TEST(MultiQueryOperator, SharedTrainingArmsEveryQuery) {
  Host host(two_query_config());
  // Count windows skip sizing; the shared window stream trains all queries.
  ASSERT_EQ(host.op.phase(), MultiQueryOperator::Phase::kTraining);
  EXPECT_EQ(host.op.model(0), nullptr);
  EXPECT_EQ(host.op.model(1), nullptr);

  host.run(31 * 6, 0);
  ASSERT_EQ(host.op.phase(), MultiQueryOperator::Phase::kShedding);
  ASSERT_NE(host.op.model(0), nullptr);
  ASSERT_NE(host.op.model(1), nullptr);
  EXPECT_EQ(host.op.model(0)->n_positions(), 6u);

  // Each query learned ITS constituents: q0 protects A@0/B@1, q1 C@2/D@3.
  EXPECT_EQ(host.op.model(0)->utility(A, 0, 6.0), 100);
  EXPECT_EQ(host.op.model(0)->utility(B, 1, 6.0), 100);
  EXPECT_EQ(host.op.model(0)->utility(C, 2, 6.0), 0);
  EXPECT_EQ(host.op.model(1)->utility(C, 2, 6.0), 100);
  EXPECT_EQ(host.op.model(1)->utility(D, 3, 6.0), 100);
  EXPECT_EQ(host.op.model(1)->utility(A, 0, 6.0), 0);

  // Both queries matched every closed window during training.
  EXPECT_EQ(host.matches[0].size(), host.matches[1].size());
  EXPECT_GT(host.matches[0].size(), 29u);
}

TEST(MultiQueryOperator, SizingPhaseIsSharedForTimeWindows) {
  auto config = two_query_config();
  config.window = WindowSpec{};
  config.window.span_kind = WindowSpan::kTime;
  config.window.span_seconds = 6.0;
  config.window.open_kind = WindowOpen::kPredicate;
  config.window.opener = element("A", TypeSet{A});
  config.sizing_windows = 20;
  Host host(std::move(config));
  ASSERT_EQ(host.op.phase(), MultiQueryOperator::Phase::kSizing);

  host.run(25 * 6, 0);
  EXPECT_EQ(host.op.phase(), MultiQueryOperator::Phase::kTraining);
  host.run(40 * 6, 0);
  ASSERT_EQ(host.op.phase(), MultiQueryOperator::Phase::kShedding);
  EXPECT_EQ(host.op.model(0)->n_positions(), 6u)
      << "sizing must have measured the 6-event windows";
}

TEST(MultiQueryOperator, SheddingOneQueryNeverStarvesTheOther) {
  Host host(two_query_config());
  host.run(31 * 6, 0);  // train and arm
  ASSERT_EQ(host.op.phase(), MultiQueryOperator::Phase::kShedding);
  const std::size_t q0_before = host.matches[0].size();
  const std::size_t q1_before = host.matches[1].size();

  // Sustained overload: queue 900 sits over the 0.8 * 1000 watermark, so
  // the shared detector keeps commanding drops.
  constexpr std::size_t kBlocks = 100;
  host.run(kBlocks * 6, 900);

  const MultiQueryStats s = host.op.stats();
  EXPECT_TRUE(s.shedding_active);
  ASSERT_EQ(s.queries.size(), 2u);
  // Both queries made drop decisions, and events worthless to BOTH queries
  // (the filler F) were physically dropped -- never buffered.
  EXPECT_GT(s.queries[0].drops + s.queries[1].drops, 0u);
  EXPECT_GT(s.memberships, s.memberships_kept)
      << "events shed by every query must be physically dropped";

  // The core guarantee: each query sheds only what ITS model calls
  // worthless (the other query's constituents and the filler), so both
  // queries keep detecting every single match under shedding.
  const std::size_t q0_during = host.matches[0].size() - q0_before;
  const std::size_t q1_during = host.matches[1].size() - q1_before;
  EXPECT_GE(q0_during, kBlocks - 1) << "query 0 lost matches to shedding";
  EXPECT_GE(q1_during, kBlocks - 1) << "query 1 lost matches to shedding";

  // The coordinator's split is live and covers both queries.
  ASSERT_EQ(host.op.last_split().size(), 2u);
  EXPECT_GE(host.op.last_split()[0], 0.0);
  EXPECT_GE(host.op.last_split()[1], 0.0);
}

TEST(MultiQueryOperator, MultiPartitionCommandsKeepBothQueriesIntact) {
  // Regression for the per-partition/per-window budget scaling: with
  // l(p) = 0.04 s the detector's qmax is 25, the watermark 20 and the
  // dropping-interval buffer 5 < N = 6, so commands carry rho = 2
  // partitions.  The coordinator must scale the per-partition x to the
  // per-window total before splitting (and back for the shedder commands);
  // either direction wrong inflates one query's budget into its valuable
  // mass and loses matches.
  Host host(two_query_config());
  auto run = [&](std::size_t n, std::size_t queue) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t seq = host.next_seq++;
      host.op.observe_arrival(static_cast<double>(seq) * 0.04);
      host.op.observe_cost(0.04);
      host.op.push(block_event(seq));
      if (i % 6 == 0) host.op.on_tick(static_cast<double>(seq) * 0.04, queue);
    }
  };
  run(31 * 6, 0);
  ASSERT_EQ(host.op.phase(), MultiQueryOperator::Phase::kShedding);
  const std::size_t q0_before = host.matches[0].size();
  const std::size_t q1_before = host.matches[1].size();

  constexpr std::size_t kBlocks = 80;
  run(kBlocks * 6, 22);  // queue above the watermark of 20
  const MultiQueryStats s = host.op.stats();
  EXPECT_TRUE(s.shedding_active);
  EXPECT_GT(s.queries[0].drops + s.queries[1].drops, 0u);
  EXPECT_GE(host.matches[0].size() - q0_before, kBlocks - 1)
      << "query 0 lost matches under multi-partition shedding";
  EXPECT_GE(host.matches[1].size() - q1_before, kBlocks - 1)
      << "query 1 lost matches under multi-partition shedding";
}

// Differential: push_block() must be bit-identical to per-event push()
// through EVERY phase -- the all-keep bulk path during training (chunked at
// close_free_horizon so the training->shedding flip lands on the same
// event) and the per-query score_block path during shedding.  Ticks land on
// the same event indices in both hosts, so the whole adaptive evolution
// (models, thresholds, drops, matches) must coincide.
TEST(MultiQueryOperator, PushBlockMatchesPerEventPush) {
  Host per_event(two_query_config());
  std::vector<std::vector<ComplexEvent>> block_matches(2);
  MultiQueryOperator block_op(
      two_query_config(), [&](std::size_t q, const ComplexEvent& ce) {
        block_matches[q].push_back(ce);
      });

  // 31 training blocks, then sustained overload -- crossing the arming
  // boundary INSIDE a pushed block on purpose.
  constexpr std::size_t kEvents = 131 * 6;
  constexpr std::size_t kChunk = 100;  // not divisible by the window span
  std::vector<Event> stream;
  stream.reserve(kEvents);
  for (std::uint64_t seq = 0; seq < kEvents; ++seq) {
    stream.push_back(block_event(seq));
  }
  auto queue_at = [](std::size_t i) -> std::size_t {
    return i < 40 * 6 ? 0 : 900;  // overload after the training prefix
  };

  // Ticks land exactly at chunk boundaries in BOTH hosts -- a mid-chunk
  // tick would change shedder commands for the chunk's own tail, which
  // per-event execution would honor but a whole-chunk push cannot.
  for (std::size_t i = 0; i < kEvents; ++i) {
    per_event.op.observe_arrival(static_cast<double>(i) / 1000.0);
    per_event.op.observe_cost(1e-3);
    per_event.op.push(stream[i]);
    if ((i + 1) % kChunk == 0) {
      per_event.op.on_tick(static_cast<double>(i) / 1000.0, queue_at(i));
    }
  }
  for (std::size_t i = 0; i < kEvents; i += kChunk) {
    const std::size_t n = std::min(kChunk, kEvents - i);
    for (std::size_t j = i; j < i + n; ++j) {
      block_op.observe_arrival(static_cast<double>(j) / 1000.0);
      block_op.observe_cost(1e-3);
    }
    block_op.push_block(std::span(stream).subspan(i, n));
    if (n == kChunk) {
      block_op.on_tick(static_cast<double>(i + n - 1) / 1000.0,
                       queue_at(i + n - 1));
    }
  }

  const MultiQueryStats a = per_event.op.stats();
  const MultiQueryStats b = block_op.stats();
  EXPECT_EQ(b.events, a.events);
  EXPECT_EQ(b.memberships, a.memberships);
  EXPECT_EQ(b.memberships_kept, a.memberships_kept);
  EXPECT_EQ(b.windows_closed, a.windows_closed);
  ASSERT_EQ(b.queries.size(), a.queries.size());
  for (std::size_t q = 0; q < a.queries.size(); ++q) {
    EXPECT_EQ(b.queries[q].matches, a.queries[q].matches) << "query " << q;
    EXPECT_EQ(b.queries[q].decisions, a.queries[q].decisions) << "query " << q;
    EXPECT_EQ(b.queries[q].drops, a.queries[q].drops) << "query " << q;
    ASSERT_EQ(block_matches[q].size(), per_event.matches[q].size())
        << "query " << q;
    for (std::size_t m = 0; m < block_matches[q].size(); ++m) {
      ASSERT_EQ(block_matches[q][m].constituents.size(),
                per_event.matches[q][m].constituents.size());
      for (std::size_t c = 0; c < block_matches[q][m].constituents.size();
           ++c) {
        EXPECT_EQ(block_matches[q][m].constituents[c].event.seq,
                  per_event.matches[q][m].constituents[c].event.seq)
            << "query " << q << " match " << m;
      }
    }
  }
  EXPECT_GT(a.queries[0].drops + a.queries[1].drops, 0u)
      << "no shedding happened: vacuous differential";
}

TEST(MultiQueryOperator, FinishFlushesOpenWindows) {
  Host host(two_query_config());
  host.run(10 * 6 + 3, 0);  // 10 full blocks + a partial one
  const MultiQueryStats before = host.op.stats();
  host.op.finish();
  const MultiQueryStats after = host.op.stats();
  // The partial block becomes a window at finish (the 10th full one was
  // already closed by the partial block's first offer).
  EXPECT_EQ(after.windows_closed, before.windows_closed + 1);
  EXPECT_EQ(after.events, 63u);
}

TEST(MultiQueryOperator, ValidatesConfig) {
  MultiQueryOperatorConfig empty;
  empty.num_types = 2;
  empty.window.span_kind = WindowSpan::kCount;
  empty.window.span_events = 4;
  empty.window.open_kind = WindowOpen::kCountSlide;
  empty.window.slide_events = 4;
  EXPECT_THROW(MultiQueryOperator(empty, [](std::size_t, const ComplexEvent&) {}),
               ConfigError);

  auto weights = two_query_config();
  weights.query_weights = {1.0};  // wrong arity
  EXPECT_THROW(
      MultiQueryOperator(weights, [](std::size_t, const ComplexEvent&) {}),
      ConfigError);
}

}  // namespace
}  // namespace espice
