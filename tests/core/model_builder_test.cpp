#include "core/model_builder.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace espice {
namespace {

Window make_window(const std::vector<EventTypeId>& types, WindowId id = 0) {
  Window w;
  w.id = id;
  for (std::size_t i = 0; i < types.size(); ++i) {
    Event e;
    e.type = types[i];
    e.seq = i;
    e.value = 1.0;
    w.kept.push_back(e);
    w.kept_pos.push_back(static_cast<std::uint32_t>(i));
    ++w.arrivals;
  }
  return w;
}

ComplexEvent make_match(const Window& w, const std::vector<std::size_t>& idx) {
  ComplexEvent ce;
  ce.window = w.id;
  for (std::size_t k = 0; k < idx.size(); ++k) {
    Constituent c;
    c.element = static_cast<std::uint32_t>(k);
    c.position = w.kept_pos[idx[k]];
    c.event = w.kept[idx[k]];
    ce.constituents.push_back(c);
  }
  return ce;
}

ModelBuilderConfig config(std::size_t types, std::size_t n, std::size_t bs = 1) {
  ModelBuilderConfig c;
  c.num_types = types;
  c.n_positions = n;
  c.bin_size = bs;
  return c;
}

TEST(ModelBuilder, SharesReflectTypePositionFrequencies) {
  ModelBuilder b(config(2, 3));
  // Two windows: {0,1,0} and {0,0,1}.
  b.observe_window(make_window({0, 1, 0}));
  b.observe_window(make_window({0, 0, 1}));
  const auto model = b.build();
  EXPECT_NEAR(model->share_cell(0, 0), 1.0, 1e-12);  // type 0 always at pos 0
  EXPECT_NEAR(model->share_cell(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(model->share_cell(1, 1), 0.5, 1e-12);
  EXPECT_NEAR(model->share_cell(0, 2), 0.5, 1e-12);
  EXPECT_NEAR(model->share_cell(1, 2), 0.5, 1e-12);
  EXPECT_NEAR(model->share_cell(1, 0), 0.0, 1e-12);
}

TEST(ModelBuilder, UtilityIsConditionalContributionProbability) {
  ModelBuilder b(config(2, 2));
  // Type 0 at position 0 occurs in both windows but contributes in one of
  // two -> utility 50.  Type 1 at position 1 contributes always -> 100.
  const auto w1 = make_window({0, 1}, 1);
  const auto w2 = make_window({0, 1}, 2);
  b.observe_window(w1);
  b.observe_window(w2);
  b.observe_match(make_match(w1, {0, 1}), w1.size());
  b.observe_match(make_match(w2, {1}), w2.size());  // only type 1 bound
  const auto model = b.build();
  EXPECT_EQ(model->utility_cell(0, 0), 50);
  EXPECT_EQ(model->utility_cell(1, 1), 100);
}

TEST(ModelBuilder, NeverContributingCellsGetZeroUtility) {
  ModelBuilder b(config(2, 2));
  const auto w = make_window({0, 1}, 1);
  b.observe_window(w);
  b.observe_match(make_match(w, {0}), w.size());
  const auto model = b.build();
  EXPECT_EQ(model->utility_cell(1, 1), 0);
  EXPECT_EQ(model->utility_cell(0, 0), 100);
}

TEST(ModelBuilder, RareContributorsAreFlooredAtOne) {
  ModelBuilder b(config(1, 1));
  // 1000 windows with one event each; bound once -> ratio 0.1% -> floor 1.
  for (int i = 0; i < 1000; ++i) {
    const auto w = make_window({0}, static_cast<WindowId>(i));
    b.observe_window(w);
    if (i == 0) b.observe_match(make_match(w, {0}), w.size());
  }
  const auto model = b.build();
  EXPECT_EQ(model->utility_cell(0, 0), 1);
}

TEST(ModelBuilder, ScalingDownDistributesCounts) {
  // N = 2, incoming windows of size 4: positions 0,1 -> cell 0; 2,3 -> cell 1.
  ModelBuilder b(config(1, 2));
  b.observe_window(make_window({0, 0, 0, 0}));
  const auto model = b.build();
  EXPECT_NEAR(model->share_cell(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(model->share_cell(0, 1), 1.0, 1e-12);
}

TEST(ModelBuilder, ScalingUpSpreadsOneEventOverCells) {
  // N = 4, incoming windows of size 2: each event covers two cells.
  ModelBuilder b(config(1, 4));
  b.observe_window(make_window({0, 0}));
  const auto model = b.build();
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_NEAR(model->share_cell(0, c), 1.0, 1e-12);
  }
}

TEST(ModelBuilder, ScaledMatchCountsKeepRatioStable) {
  // Windows twice the model size; the bound event is always the first one.
  ModelBuilder b(config(1, 2));
  for (int i = 0; i < 10; ++i) {
    const auto w = make_window({0, 0, 0, 0}, static_cast<WindowId>(i));
    b.observe_window(w);
    b.observe_match(make_match(w, {0}), w.size());
  }
  const auto model = b.build();
  // Positions 0,1 map to cell 0: occurrences 2/window, bound 1/window -> 50.
  EXPECT_EQ(model->utility_cell(0, 0), 50);
  EXPECT_EQ(model->utility_cell(0, 1), 0);
}

TEST(ModelBuilder, BinsAggregateNeighboringPositions) {
  ModelBuilder b(config(1, 4, /*bs=*/2));
  const auto w = make_window({0, 0, 0, 0});
  b.observe_window(w);
  b.observe_match(make_match(w, {0, 1}), w.size());
  const auto model = b.build();
  EXPECT_EQ(model->cols(), 2u);
  EXPECT_NEAR(model->share_cell(0, 0), 2.0, 1e-12);
  EXPECT_EQ(model->utility_cell(0, 0), 100);  // both cell-0 events bound
  EXPECT_EQ(model->utility_cell(0, 1), 0);
}

TEST(ModelBuilder, OnlinePositionFeedMatchesWindowFeed) {
  // observe_position + count_window must be equivalent to observe_window.
  ModelBuilder by_window(config(2, 3));
  ModelBuilder by_position(config(2, 3));
  const auto w1 = make_window({0, 1, 0}, 1);
  const auto w2 = make_window({1, 1, 0}, 2);
  for (const auto* w : {&w1, &w2}) {
    by_window.observe_window(*w);
    for (std::size_t i = 0; i < w->kept.size(); ++i) {
      by_position.observe_position(w->kept[i].type, w->kept_pos[i],
                                   static_cast<double>(w->size()));
    }
    by_position.count_window();
  }
  const auto m1 = by_window.build();
  const auto m2 = by_position.build();
  for (std::size_t t = 0; t < 2; ++t) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(m1->share_cell(static_cast<EventTypeId>(t), c),
                       m2->share_cell(static_cast<EventTypeId>(t), c));
    }
  }
  EXPECT_EQ(by_position.windows_observed(), 2u);
}

TEST(ModelBuilder, DecayReducesOldEvidence) {
  ModelBuilder b(config(1, 1));
  const auto w = make_window({0}, 1);
  // Old regime: always bound.
  for (int i = 0; i < 100; ++i) {
    b.observe_window(w);
    b.observe_match(make_match(w, {0}), w.size());
  }
  b.decay(0.01);
  // New regime: never bound.
  for (int i = 0; i < 100; ++i) b.observe_window(w);
  const auto model = b.build();
  EXPECT_LT(model->utility_cell(0, 0), 10);
  EXPECT_GE(model->utility_cell(0, 0), 1);  // history not erased entirely
}

TEST(ModelBuilder, ResetErasesEverything) {
  ModelBuilder b(config(1, 1));
  const auto w = make_window({0});
  b.observe_window(w);
  b.observe_match(make_match(w, {0}), w.size());
  b.reset();
  EXPECT_EQ(b.windows_observed(), 0u);
  EXPECT_EQ(b.matches_observed(), 0u);
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(ModelBuilder, BuildWithoutWindowsThrows) {
  ModelBuilder b(config(1, 1));
  EXPECT_THROW(b.build(), ConfigError);
}

TEST(ModelBuilder, BuildWithoutMatchesGivesAllZeroUtilities) {
  ModelBuilder b(config(2, 3));
  b.observe_window(make_window({0, 1, 0}));
  const auto model = b.build();
  for (std::size_t t = 0; t < 2; ++t) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(model->utility_cell(static_cast<EventTypeId>(t), c), 0);
    }
  }
}

TEST(ModelBuilder, EmptyWindowsAreIgnored) {
  ModelBuilder b(config(1, 2));
  Window empty;
  b.observe_window(empty);
  EXPECT_EQ(b.windows_observed(), 0u);
}

TEST(ModelBuilder, CountersTrackObservations) {
  ModelBuilder b(config(1, 2));
  const auto w = make_window({0, 0});
  b.observe_window(w);
  b.observe_window(w);
  b.observe_match(make_match(w, {0}), w.size());
  EXPECT_EQ(b.windows_observed(), 2u);
  EXPECT_EQ(b.matches_observed(), 1u);
}

TEST(ModelBuilder, InvalidDecayFactorThrows) {
  ModelBuilder b(config(1, 1));
  EXPECT_THROW(b.decay(0.0), ConfigError);
  EXPECT_THROW(b.decay(1.5), ConfigError);
}

TEST(ModelBuilderConfig, ValidatesParameters) {
  EXPECT_THROW(config(0, 1).validate(), ConfigError);
  EXPECT_THROW(config(1, 0).validate(), ConfigError);
  EXPECT_THROW(config(1, 2, 0).validate(), ConfigError);
  EXPECT_THROW(config(1, 2, 3).validate(), ConfigError);  // bs > N
  EXPECT_NO_THROW(config(1, 2, 2).validate());
}

}  // namespace
}  // namespace espice
