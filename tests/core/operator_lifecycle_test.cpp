// EspiceOperator lifecycle regression: the kSizing -> kTraining -> kShedding
// phase machine, exact transition boundaries, drift-triggered retrain
// counts on a synthetic drifting stream, and the stats() snapshot hook.
// (Previously these paths were only exercised indirectly through
// tests/integration/retraining_test.cpp.)
#include "core/espice_operator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace espice {
namespace {

constexpr EventTypeId A = 0;
constexpr EventTypeId B = 1;
constexpr EventTypeId kFiller = 2;

// Blocks of 6 events; the hot A-then-B pair sits at positions 0-1 (regime 0)
// or 4-5 (regime 1).  ts advances 1 s per event.
Event regime_event(int regime, std::uint64_t seq) {
  const std::size_t pos = seq % 6;
  Event e;
  const bool hot = regime == 0 ? pos < 2 : pos >= 4;
  if (hot) {
    e.type = (regime == 0 ? pos == 0 : pos == 4) ? A : B;
  } else {
    e.type = kFiller;
  }
  e.seq = seq;
  e.ts = static_cast<double>(seq);
  e.value = 1.0;
  return e;
}

EspiceOperatorConfig count_config() {
  EspiceOperatorConfig c;
  c.pattern = make_sequence({element("A", TypeSet{A}), element("B", TypeSet{B})});
  c.window.span_kind = WindowSpan::kCount;
  c.window.span_events = 6;
  c.window.open_kind = WindowOpen::kCountSlide;
  c.window.slide_events = 6;
  c.num_types = 3;
  c.training_windows = 30;
  c.detector.latency_bound = 1.0;
  c.detector.ewma_alpha = 1.0;
  return c;
}

// Time-spanned, predicate-opened windows: N is unknown up front, so the
// operator must start in the sizing phase and measure it.
EspiceOperatorConfig time_config() {
  EspiceOperatorConfig c = count_config();
  c.window = WindowSpec{};
  c.window.span_kind = WindowSpan::kTime;
  c.window.span_seconds = 6.0;
  c.window.open_kind = WindowOpen::kPredicate;
  c.window.opener = element("A", TypeSet{A});
  c.sizing_windows = 20;
  return c;
}

struct Host {
  std::vector<ComplexEvent> matches;
  EspiceOperator op;
  std::uint64_t next_seq = 0;

  explicit Host(EspiceOperatorConfig config)
      : op(std::move(config),
           [this](const ComplexEvent& ce) { matches.push_back(ce); }) {}

  void run(int regime, std::size_t n, std::size_t queue_size) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t seq = next_seq++;
      op.observe_arrival(static_cast<double>(seq) / 1000.0);
      op.observe_cost(1e-3);  // th = 1000 events/s -> qmax = 1000
      op.push(regime_event(regime, seq));
      if (i % 10 == 0) {
        op.on_tick(static_cast<double>(seq) / 1000.0, queue_size);
      }
    }
  }
};

TEST(OperatorLifecycle, SizingMeasuresWindowSizeThenTrains) {
  Host host(time_config());
  ASSERT_EQ(host.op.phase(), EspiceOperator::Phase::kSizing);
  EXPECT_EQ(host.op.model(), nullptr);

  // 19 closed windows: one opens per A (every 6 events); the 20th A closes
  // window 19.  Still sizing.
  host.run(0, 19 * 6 + 1, 0);
  EXPECT_EQ(host.op.phase(), EspiceOperator::Phase::kSizing);
  EXPECT_EQ(host.op.windows_observed(), 19u);

  // One more block closes the 20th window: sizing completes, N is the mean
  // observed size (6) and training begins with a fresh window count.
  host.run(0, 6, 0);
  EXPECT_EQ(host.op.phase(), EspiceOperator::Phase::kTraining);
  EXPECT_EQ(host.op.model(), nullptr) << "no model before training completes";

  // 30 training windows later the model is built and armed with N = 6.
  host.run(0, 31 * 6, 0);
  EXPECT_EQ(host.op.phase(), EspiceOperator::Phase::kShedding);
  ASSERT_NE(host.op.model(), nullptr);
  EXPECT_EQ(host.op.model()->n_positions(), 6u);
}

TEST(OperatorLifecycle, TrainingArmsExactlyAtTrainingWindows) {
  Host host(count_config());  // count windows skip sizing
  ASSERT_EQ(host.op.phase(), EspiceOperator::Phase::kTraining);

  // A count window's closure is detected at the *next* offer, so even with
  // all 30 * 6 events pushed, window 30 (full, events 174..179) is still
  // open and the operator still training.
  host.run(0, 30 * 6, 0);
  EXPECT_EQ(host.op.phase(), EspiceOperator::Phase::kTraining);
  EXPECT_EQ(host.op.windows_observed(), 29u);

  host.run(0, 1, 0);  // event 180: its offer closes window 30 -> armed
  EXPECT_EQ(host.op.phase(), EspiceOperator::Phase::kShedding);
  ASSERT_NE(host.op.model(), nullptr);
  EXPECT_EQ(host.op.retrains(), 0u);
}

TEST(OperatorLifecycle, DriftRetrainCountsOnDriftingStream) {
  auto config = count_config();
  config.training_windows = 200;
  config.retrain_decay = 0.05;
  config.exploration = 0.2;
  config.rebuild_every_windows = 200;
  config.drift.batch_size = 3000;
  config.drift.patience = 1;
  Host host(std::move(config));

  host.run(0, 201 * 6, 0);  // train on regime 0
  ASSERT_EQ(host.op.phase(), EspiceOperator::Phase::kShedding);
  ASSERT_EQ(host.op.retrains(), 0u);

  // First shift, under overload (queue above the 0.8 * 1000 watermark):
  // the input composition changes, the drift detector fires, retrains
  // increments.
  host.run(1, 2000 * 6, 900);
  const std::size_t after_first_shift = host.op.retrains();
  EXPECT_GE(after_first_shift, 1u);

  // A long stable stretch on the new regime must not keep retraining: the
  // rebased reference now describes regime 1.
  host.run(1, 2000 * 6, 900);
  const std::size_t after_stable = host.op.retrains();
  EXPECT_LE(after_stable - after_first_shift, 1u)
      << "drift detector kept firing on a stable stream";

  // Shifting back is a second drift: the count must grow again.
  host.run(0, 2000 * 6, 900);
  EXPECT_GT(host.op.retrains(), after_stable);
}

TEST(OperatorLifecycle, StatsSnapshotTracksLifetimeCounters) {
  Host host(count_config());
  host.run(0, 120, 0);  // 20 tumbling windows, still training

  const OperatorStats s = host.op.stats();
  EXPECT_EQ(s.phase, EspiceOperator::Phase::kTraining);
  EXPECT_EQ(s.events, 120u);
  // Tumbling windows: exactly one membership per event, nothing shed.
  EXPECT_EQ(s.memberships, 120u);
  EXPECT_EQ(s.memberships_kept, 120u);
  // Window 20 is full but its closure is only detected at the next offer.
  EXPECT_EQ(s.windows_closed, 19u);
  EXPECT_EQ(s.matches, host.matches.size());
  EXPECT_EQ(s.decisions, 0u);
  EXPECT_EQ(s.drops, 0u);
  EXPECT_EQ(s.windows_observed, 19u);
  EXPECT_FALSE(s.shedding_active);
}

TEST(OperatorLifecycle, StatsSnapshotCountsDropsWhileShedding) {
  Host host(count_config());
  host.run(0, 31 * 6, 0);  // train and arm
  ASSERT_EQ(host.op.phase(), EspiceOperator::Phase::kShedding);

  host.run(0, 100 * 6, 900);  // overloaded: shedding active
  const OperatorStats s = host.op.stats();
  EXPECT_TRUE(s.shedding_active);
  EXPECT_GT(s.drops, 0u);
  EXPECT_EQ(s.drops, host.op.drops());
  EXPECT_EQ(s.memberships - s.memberships_kept, s.drops);
  EXPECT_EQ(s.retrains, host.op.retrains());
  // finish() flushes the tail into the counters: the first of the 3 extra
  // events closes the pending full window, close_all() the partial one.
  const std::uint64_t closed_before = s.windows_closed;
  host.run(0, 3, 0);
  host.op.finish();
  EXPECT_EQ(host.op.stats().windows_closed, closed_before + 2);
}

}  // namespace
}  // namespace espice
