#include "core/baseline_shedder.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace espice {
namespace {

Event make_event(EventTypeId type) {
  Event e;
  e.type = type;
  e.value = 1.0;
  return e;
}

DropCommand active_command(double x, std::size_t partitions = 1) {
  DropCommand cmd;
  cmd.active = true;
  cmd.x = x;
  cmd.partitions = partitions;
  return cmd;
}

TEST(BaselinePatternRepetitions, SequenceCountsPerTypeOccurrences) {
  // seq(T0; T1; T0; T0) over 3 types.
  const Pattern p = make_sequence({element("a", TypeSet{0}),
                                   element("b", TypeSet{1}),
                                   element("c", TypeSet{0}),
                                   element("d", TypeSet{0})});
  const auto reps = BaselineShedder::pattern_repetitions(p, 3);
  EXPECT_DOUBLE_EQ(reps[0], 3.0);
  EXPECT_DOUBLE_EQ(reps[1], 1.0);
  EXPECT_DOUBLE_EQ(reps[2], 0.0);
}

TEST(BaselinePatternRepetitions, AnyTypeElementCountsForAllTypes) {
  const Pattern p = make_sequence({element("any", TypeSet{})});
  const auto reps = BaselineShedder::pattern_repetitions(p, 4);
  for (double r : reps) EXPECT_DOUBLE_EQ(r, 1.0);
}

TEST(BaselinePatternRepetitions, TriggerAnyCountsTriggerAndCandidates) {
  const Pattern p = make_trigger_any(element("t", TypeSet{0}), TypeSet{1, 2}, 2);
  const auto reps = BaselineShedder::pattern_repetitions(p, 4);
  EXPECT_DOUBLE_EQ(reps[0], 1.0);
  EXPECT_DOUBLE_EQ(reps[1], 1.0);
  EXPECT_DOUBLE_EQ(reps[2], 1.0);
  EXPECT_DOUBLE_EQ(reps[3], 0.0);
}

TEST(BaselineShedder, InactiveNeverDrops) {
  const Pattern p = make_sequence({element("a", TypeSet{0})});
  BaselineShedder s(p, {10.0, 10.0}, 20);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(s.should_drop(make_event(0), 0, 20.0));
  }
}

TEST(BaselineShedder, AllocatesMoreDropsToLowRepetitionTypes) {
  // Type 0 is in the pattern, type 1 is not; equal frequencies.
  const Pattern p = make_sequence({element("a", TypeSet{0})});
  BaselineShedder s(p, {10.0, 10.0}, 20);
  s.on_command(active_command(5.0));
  const auto& probs = s.drop_probabilities();
  EXPECT_GT(probs[1], probs[0]);
  // Weights: 10/2 = 5 and 10/1 = 10 -> allocations 5/3 and 10/3.
  EXPECT_NEAR(probs[0], (5.0 / 3.0) / 10.0, 1e-9);
  EXPECT_NEAR(probs[1], (10.0 / 3.0) / 10.0, 1e-9);
}

TEST(BaselineShedder, WaterFillingCapsAtTypeFrequency) {
  // Type 1 (not in pattern) has tiny frequency: its allocation saturates and
  // the rest spills over to type 0.
  const Pattern p = make_sequence({element("a", TypeSet{0})});
  BaselineShedder s(p, {100.0, 1.0}, 101);
  s.on_command(active_command(51.0));
  const auto& probs = s.drop_probabilities();
  EXPECT_NEAR(probs[1], 1.0, 1e-9);          // fully dropped
  EXPECT_NEAR(probs[0], 50.0 / 100.0, 1e-9); // remaining 50 from type 0
}

TEST(BaselineShedder, TotalExpectedDropsMatchCommand) {
  const Pattern p = make_sequence({element("a", TypeSet{0}),
                                   element("b", TypeSet{1})});
  std::vector<double> freq{30.0, 20.0, 50.0};
  BaselineShedder s(p, freq, 100);
  s.on_command(active_command(40.0));
  const auto& probs = s.drop_probabilities();
  double expected = 0.0;
  for (std::size_t t = 0; t < freq.size(); ++t) expected += probs[t] * freq[t];
  EXPECT_NEAR(expected, 40.0, 1e-6);
}

TEST(BaselineShedder, PerPartitionAmountsScaleToWindow) {
  const Pattern p = make_sequence({element("a", TypeSet{0})});
  BaselineShedder s1(p, {10.0}, 10);
  BaselineShedder s2(p, {10.0}, 10);
  s1.on_command(active_command(4.0, 1));
  s2.on_command(active_command(2.0, 2));  // same per-window total
  EXPECT_NEAR(s1.drop_probabilities()[0], s2.drop_probabilities()[0], 1e-12);
}

TEST(BaselineShedder, DropRateMatchesProbabilityEmpirically) {
  const Pattern p = make_sequence({element("a", TypeSet{0})});
  BaselineShedder s(p, {10.0, 10.0}, 20, /*seed=*/7);
  s.on_command(active_command(5.0));
  const double expect_p0 = s.drop_probabilities()[0];
  int drops = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (s.should_drop(make_event(0), 0, 20.0)) ++drops;
  }
  EXPECT_NEAR(static_cast<double>(drops) / n, expect_p0, 0.02);
}

TEST(BaselineShedder, IgnoresPositionEntirely) {
  // Same type at wildly different positions must have identical expected
  // treatment: the decision stream depends only on the RNG, not position.
  const Pattern p = make_sequence({element("a", TypeSet{0})});
  BaselineShedder s1(p, {10.0}, 10, 3);
  BaselineShedder s2(p, {10.0}, 10, 3);
  s1.on_command(active_command(5.0));
  s2.on_command(active_command(5.0));
  for (std::uint32_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(s1.should_drop(make_event(0), i % 10, 10.0),
              s2.should_drop(make_event(0), 9 - (i % 10), 10.0));
  }
}

TEST(BaselineShedder, DeactivationClearsProbabilities) {
  const Pattern p = make_sequence({element("a", TypeSet{0})});
  BaselineShedder s(p, {10.0}, 10);
  s.on_command(active_command(5.0));
  DropCommand off;
  off.active = false;
  s.on_command(off);
  for (double prob : s.drop_probabilities()) EXPECT_DOUBLE_EQ(prob, 0.0);
  EXPECT_FALSE(s.should_drop(make_event(0), 0, 10.0));
}

TEST(BaselineShedder, DeterministicUnderSameSeed) {
  const Pattern p = make_sequence({element("a", TypeSet{0})});
  BaselineShedder s1(p, {10.0, 5.0}, 15, 99);
  BaselineShedder s2(p, {10.0, 5.0}, 15, 99);
  s1.on_command(active_command(6.0));
  s2.on_command(active_command(6.0));
  for (int i = 0; i < 500; ++i) {
    const auto t = static_cast<EventTypeId>(i % 2);
    EXPECT_EQ(s1.should_drop(make_event(t), 0, 15.0),
              s2.should_drop(make_event(t), 0, 15.0));
  }
}

TEST(BaselineShedder, DemandAboveTotalSupplyDropsEverything) {
  const Pattern p = make_sequence({element("a", TypeSet{0})});
  BaselineShedder s(p, {5.0, 5.0}, 10);
  s.on_command(active_command(100.0));
  EXPECT_NEAR(s.drop_probabilities()[0], 1.0, 1e-9);
  EXPECT_NEAR(s.drop_probabilities()[1], 1.0, 1e-9);
}

TEST(BaselineShedder, RejectsEmptyFrequencies) {
  const Pattern p = make_sequence({element("a", TypeSet{0})});
  EXPECT_THROW(BaselineShedder(p, {}, 10), ConfigError);
}

}  // namespace
}  // namespace espice
