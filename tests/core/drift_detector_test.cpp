#include "core/drift_detector.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace espice {
namespace {

// 2 types x 4 positions.  Reference shares: type 0 lives in the first half,
// type 1 in the second half.
UtilityModel reference_model() {
  return UtilityModel(2, 4, 1, std::vector<std::uint8_t>(8, 10),
                      {1.0, 1.0, 0.0, 0.0, /* type 0 */
                       0.0, 0.0, 1.0, 1.0 /* type 1 */});
}

DriftDetectorConfig small_batches(std::size_t batch = 400,
                                  std::size_t patience = 2) {
  DriftDetectorConfig c;
  c.batch_size = batch;
  c.patience = patience;
  c.divergence_threshold = 0.1;
  return c;
}

Event ev(EventTypeId type) {
  Event e;
  e.type = type;
  e.value = 1.0;
  return e;
}

// Feeds `n` observations matching the reference distribution.
bool feed_reference_like(DriftDetector& d, std::size_t n) {
  bool triggered = false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t pos = i % 4;
    const EventTypeId type = pos < 2 ? 0 : 1;
    triggered |= d.observe(ev(type), pos, 4.0);
  }
  return triggered;
}

// Feeds `n` observations with types swapped (maximum positional drift).
bool feed_swapped(DriftDetector& d, std::size_t n) {
  bool triggered = false;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t pos = i % 4;
    const EventTypeId type = pos < 2 ? 1 : 0;
    triggered |= d.observe(ev(type), pos, 4.0);
  }
  return triggered;
}

TEST(DriftDetector, QuietOnReferenceDistribution) {
  const auto model = reference_model();
  DriftDetector d(model, small_batches());
  EXPECT_FALSE(feed_reference_like(d, 4000));
  EXPECT_LT(d.last_divergence(), 0.05);
  EXPECT_EQ(d.drifted_batches(), 0u);
}

TEST(DriftDetector, TriggersOnSwappedDistribution) {
  const auto model = reference_model();
  DriftDetector d(model, small_batches());
  EXPECT_TRUE(feed_swapped(d, 4000));
  EXPECT_GT(d.last_divergence(), 0.5);
}

TEST(DriftDetector, PatienceDelaysTheTrigger) {
  const auto model = reference_model();
  DriftDetector d(model, small_batches(400, /*patience=*/3));
  // Two drifted batches: not yet.
  EXPECT_FALSE(feed_swapped(d, 800));
  EXPECT_EQ(d.drifted_batches(), 2u);
  // Third drifted batch: trigger.
  EXPECT_TRUE(feed_swapped(d, 400));
}

TEST(DriftDetector, CleanBatchResetsPatience) {
  const auto model = reference_model();
  DriftDetector d(model, small_batches(400, 2));
  EXPECT_FALSE(feed_swapped(d, 400));      // 1 drifted batch
  EXPECT_FALSE(feed_reference_like(d, 400));  // resets
  EXPECT_EQ(d.drifted_batches(), 0u);
  EXPECT_FALSE(feed_swapped(d, 400));      // needs 2 consecutive again
}

TEST(DriftDetector, RebaseAdoptsNewReference) {
  const auto model = reference_model();
  DriftDetector d(model, small_batches());
  EXPECT_TRUE(feed_swapped(d, 4000));

  // A model whose shares match the *swapped* stream.
  const UtilityModel swapped(2, 4, 1, std::vector<std::uint8_t>(8, 10),
                             {0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0});
  d.rebase(swapped);
  EXPECT_EQ(d.drifted_batches(), 0u);
  EXPECT_FALSE(feed_swapped(d, 4000));  // now the swapped stream is normal
}

TEST(DriftDetector, MidBatchObservationsDoNotTrigger) {
  const auto model = reference_model();
  DriftDetector d(model, small_batches(1000, 1));
  // 999 drifted observations: batch not complete, no decision yet.
  EXPECT_FALSE(feed_swapped(d, 999));
  EXPECT_EQ(d.drifted_batches(), 0u);
}

TEST(DriftDetector, ScalesPositionsLikeTheModel) {
  const auto model = reference_model();
  DriftDetector d(model, small_batches(400, 1));
  // Windows twice the model size: positions 0..7 scale to 0..3; matching
  // the reference halves keeps it quiet.
  bool triggered = false;
  for (std::size_t i = 0; i < 4000; ++i) {
    const std::uint32_t pos = i % 8;
    const EventTypeId type = pos < 4 ? 0 : 1;
    triggered |= d.observe(ev(type), pos, 8.0);
  }
  EXPECT_FALSE(triggered);
}

TEST(DriftDetector, RejectsMismatchedRebase) {
  const auto model = reference_model();
  DriftDetector d(model, small_batches());
  const UtilityModel other(3, 4, 1, std::vector<std::uint8_t>(12, 0),
                           std::vector<double>(12, 1.0));
  EXPECT_THROW(d.rebase(other), ConfigError);
}

TEST(DriftDetectorConfig, Validation) {
  const auto model = reference_model();
  DriftDetectorConfig c;
  c.batch_size = 0;
  EXPECT_THROW(DriftDetector(model, c), ConfigError);
  c = DriftDetectorConfig{};
  c.divergence_threshold = 1.5;
  EXPECT_THROW(DriftDetector(model, c), ConfigError);
  c = DriftDetectorConfig{};
  c.patience = 0;
  EXPECT_THROW(DriftDetector(model, c), ConfigError);
}

}  // namespace
}  // namespace espice
