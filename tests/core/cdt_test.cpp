#include "core/cdt.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace espice {
namespace {

// ---------------------------------------------------------------------------
// The paper's running example: Table 1 (UT) + Figure 2 (CDT).
//
// UT (2 types x 5 positions):        position shares (sum to 1 per position):
//   A: 70 15 10  5 0                   A: 0.8 0.5 0.1 0.2 0.5
//   B:  0 60 30 10 0                   B: 0.2 0.5 0.9 0.8 0.5
//
// Figure 2's CDT: O(0)=1.2, O(5)=1.4, O(10)=2.3, O(15)=2.8, O(30)=3.7,
// O(60)=4.2, O(70)=5; and dropping x=2 events per window requires uth=10.
// ---------------------------------------------------------------------------

UtilityModel paper_model() {
  return UtilityModel(
      2, 5, 1,
      {70, 15, 10, 5, 0, /* A */ 0, 60, 30, 10, 0 /* B */},
      {0.8, 0.5, 0.1, 0.2, 0.5, /* A */ 0.2, 0.5, 0.9, 0.8, 0.5 /* B */});
}

TEST(CdtPaperExample, ReproducesFigure2) {
  const auto cdts = Cdt::build_partitions(paper_model(), 1);
  ASSERT_EQ(cdts.size(), 1u);
  const Cdt& cdt = cdts[0];
  EXPECT_NEAR(cdt.at(0), 1.2, 1e-12);
  EXPECT_NEAR(cdt.at(5), 1.4, 1e-12);
  EXPECT_NEAR(cdt.at(10), 2.3, 1e-12);
  EXPECT_NEAR(cdt.at(15), 2.8, 1e-12);
  EXPECT_NEAR(cdt.at(30), 3.7, 1e-12);
  EXPECT_NEAR(cdt.at(60), 4.2, 1e-12);
  EXPECT_NEAR(cdt.at(70), 5.0, 1e-12);
  EXPECT_NEAR(cdt.at(100), 5.0, 1e-12);
}

TEST(CdtPaperExample, ThresholdForDroppingTwoEventsIsTen) {
  const auto cdts = Cdt::build_partitions(paper_model(), 1);
  EXPECT_EQ(cdts[0].threshold(2.0), 10);  // CDT(10) = 2.3 >= 2
}

TEST(CdtPaperExample, IntermediateUtilitiesInheritTheCumulativeValue) {
  const auto cdts = Cdt::build_partitions(paper_model(), 1);
  // No cell has utility 20; O(20) must equal O(15).
  EXPECT_NEAR(cdts[0].at(20), cdts[0].at(15), 1e-12);
  EXPECT_NEAR(cdts[0].at(69), cdts[0].at(60), 1e-12);
}

TEST(Cdt, IsMonotoneNonDecreasing) {
  const auto cdts = Cdt::build_partitions(paper_model(), 1);
  for (int u = 1; u <= kMaxUtility; ++u) {
    EXPECT_GE(cdts[0].at(u), cdts[0].at(u - 1));
  }
}

TEST(Cdt, TotalEqualsExpectedEventsPerWindow) {
  const auto cdts = Cdt::build_partitions(paper_model(), 1);
  EXPECT_NEAR(cdts[0].total(), 5.0, 1e-12);  // 5 positions, shares sum to 1
}

TEST(Cdt, ThresholdZeroWhenEnoughZeroUtilityEvents) {
  const auto cdts = Cdt::build_partitions(paper_model(), 1);
  EXPECT_EQ(cdts[0].threshold(1.0), 0);  // O(0) = 1.2 >= 1
}

TEST(Cdt, ThresholdIsMaxWhenDemandExceedsSupply) {
  const auto cdts = Cdt::build_partitions(paper_model(), 1);
  EXPECT_EQ(cdts[0].threshold(100.0), kMaxUtility);
}

TEST(Cdt, ThresholdOfZeroDemandIsLowestUtility) {
  const auto cdts = Cdt::build_partitions(paper_model(), 1);
  EXPECT_EQ(cdts[0].threshold(0.0), 0);
}

TEST(Cdt, PartitionTotalsSumToWindowTotal) {
  for (std::size_t parts : {2u, 3u, 5u}) {
    const auto cdts = Cdt::build_partitions(paper_model(), parts);
    ASSERT_EQ(cdts.size(), parts);
    double sum = 0.0;
    for (const auto& cdt : cdts) sum += cdt.total();
    EXPECT_NEAR(sum, 5.0, 1e-12);
  }
}

TEST(Cdt, PartitionsSplitThePositionSpace) {
  // With 5 positions and 2 partitions (part = floor(p*2/5)): positions
  // 0,1,2 -> partition 0; positions 3,4 -> partition 1.
  const auto cdts = Cdt::build_partitions(paper_model(), 2);
  EXPECT_NEAR(cdts[0].total(), 3.0, 1e-12);
  EXPECT_NEAR(cdts[1].total(), 2.0, 1e-12);
  // Partition 0 cells: A (70,.8)(15,.5)(10,.1) and B (0,.2)(60,.5)(30,.9).
  EXPECT_NEAR(cdts[0].at(0), 0.2, 1e-12);
  EXPECT_NEAR(cdts[0].at(10), 0.3, 1e-12);
  EXPECT_NEAR(cdts[0].at(15), 0.8, 1e-12);
  EXPECT_NEAR(cdts[0].at(30), 1.7, 1e-12);
  EXPECT_NEAR(cdts[0].at(60), 2.2, 1e-12);
  EXPECT_NEAR(cdts[0].at(70), 3.0, 1e-12);
}

TEST(Cdt, PerPartitionThresholdsDiffer) {
  const auto cdts = Cdt::build_partitions(paper_model(), 2);
  // Dropping 1 event per partition: partition 0 must go up to utility 30
  // (O(15) = 0.8 < 1 <= O(30) = 1.7); partition 1's tail positions are all
  // zero utility (O(0) = 1.0).
  EXPECT_EQ(cdts[0].threshold(1.0), 30);
  EXPECT_EQ(cdts[1].threshold(1.0), 0);
}

TEST(Cdt, BinnedModelSpreadsSharesOverPositions) {
  // 1 type, 4 positions, bin 2: columns have utility 10 and 20 with shares
  // 2.0 each (2 expected events per column).
  UtilityModel model(1, 4, 2, {10, 20}, {2.0, 2.0});
  const auto whole = Cdt::build_partitions(model, 1);
  EXPECT_NEAR(whole[0].at(10), 2.0, 1e-12);
  EXPECT_NEAR(whole[0].at(20), 4.0, 1e-12);
  // Two partitions: each gets one full column.
  const auto halves = Cdt::build_partitions(model, 2);
  EXPECT_NEAR(halves[0].at(10), 2.0, 1e-12);
  EXPECT_NEAR(halves[0].at(20), 2.0, 1e-12);
  EXPECT_NEAR(halves[1].at(10), 0.0, 1e-12);
  EXPECT_NEAR(halves[1].at(20), 2.0, 1e-12);
}

TEST(Cdt, BinStraddlingPartitionBoundaryContributesProportionally) {
  // 1 type, 4 positions, bin 4 (single column, share 4.0), 2 partitions:
  // each partition gets half of the column's share.
  UtilityModel model(1, 4, 4, {50}, {4.0});
  const auto cdts = Cdt::build_partitions(model, 2);
  EXPECT_NEAR(cdts[0].at(50), 2.0, 1e-12);
  EXPECT_NEAR(cdts[1].at(50), 2.0, 1e-12);
}

TEST(Cdt, MorePartitionsThanPositionsStillWork) {
  UtilityModel model(1, 2, 1, {10, 20}, {1.0, 1.0});
  const auto cdts = Cdt::build_partitions(model, 5);
  double sum = 0.0;
  for (const auto& cdt : cdts) sum += cdt.total();
  EXPECT_NEAR(sum, 2.0, 1e-12);
}

TEST(Cdt, RejectsZeroPartitions) {
  EXPECT_THROW(Cdt::build_partitions(paper_model(), 0), ConfigError);
}

}  // namespace
}  // namespace espice
