#include "core/f_advisor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/cdt.hpp"

namespace espice {
namespace {

// 1 type x 10 positions with a clearly bimodal utility distribution:
// first half low (5), second half high (90).
UtilityModel bimodal_model() {
  std::vector<std::uint8_t> ut;
  std::vector<double> shares;
  for (int p = 0; p < 10; ++p) {
    ut.push_back(p < 5 ? 5 : 90);
    shares.push_back(1.0);
  }
  return UtilityModel(1, 10, 1, std::move(ut), std::move(shares));
}

// All positions share one utility value.
UtilityModel flat_model(std::uint8_t u) {
  return UtilityModel(1, 10, 1, std::vector<std::uint8_t>(10, u),
                      std::vector<double>(10, 1.0));
}

TEST(LowUtilityClassBoundary, SeparatesBimodalDistribution) {
  const int boundary = low_utility_class_boundary(bimodal_model());
  EXPECT_GE(boundary, 5);
  EXPECT_LT(boundary, 90);
}

TEST(LowUtilityClassBoundary, FlatDistributionYieldsLowBoundary) {
  // No between-class variance anywhere; the scan settles on the first index.
  EXPECT_EQ(low_utility_class_boundary(flat_model(40)), 0);
}

TEST(SuggestF, FeasibleWhenLowClassCoversDemand) {
  // qmax = 20.  With f = 0.95 the buffer is 1 event -> 10 partitions; the
  // high half has no low-class events, so high f is infeasible.  Lower f
  // merges positions until each partition holds enough low-utility mass.
  const auto model = bimodal_model();
  const FAdvice advice = suggest_f(model, 20.0, /*x=*/1.0);
  EXPECT_TRUE(advice.feasible);
  // The feasible configuration must really deliver x low-class events in
  // every partition.
  const auto cdts = Cdt::build_partitions(model, advice.partitions);
  for (const auto& cdt : cdts) {
    EXPECT_GE(cdt.at(advice.low_class_boundary), 1.0);
  }
}

TEST(SuggestF, PicksTheLargestFeasibleF) {
  const auto model = bimodal_model();
  const FAdvice advice = suggest_f(model, 20.0, 1.0);
  ASSERT_TRUE(advice.feasible);
  // Any larger f in the scan grid must be infeasible.
  for (double f = advice.f + 0.05; f <= 0.95 + 1e-9; f += 0.05) {
    const double buffer = std::max(20.0 * (1.0 - f), 1.0);
    const auto rho = static_cast<std::size_t>(
        std::max(1.0, std::ceil(10.0 / buffer)));
    const auto cdts = Cdt::build_partitions(model, rho);
    double worst = cdts.front().at(advice.low_class_boundary);
    for (const auto& cdt : cdts) {
      worst = std::min(worst, cdt.at(advice.low_class_boundary));
    }
    EXPECT_LT(worst, 1.0) << "f=" << f << " should have been infeasible";
  }
}

TEST(SuggestF, SinglePartitionWhenBufferIsLarge) {
  // Huge qmax: even f = 0.95 leaves a buffer larger than the window.
  const FAdvice advice = suggest_f(bimodal_model(), 10000.0, 1.0);
  EXPECT_TRUE(advice.feasible);
  EXPECT_DOUBLE_EQ(advice.f, 0.95);
  EXPECT_EQ(advice.partitions, 1u);
}

TEST(SuggestF, InfeasibleDemandReportsBestEffort) {
  // x far beyond the expected events per partition: nothing works.
  const FAdvice advice = suggest_f(bimodal_model(), 20.0, 1000.0);
  EXPECT_FALSE(advice.feasible);
  EXPECT_GE(advice.partitions, 1u);
}

TEST(SuggestF, RejectsBadArguments) {
  EXPECT_THROW(suggest_f(bimodal_model(), 0.0, 1.0), ConfigError);
  EXPECT_THROW(suggest_f(bimodal_model(), 10.0, 1.0, 0.9, 0.1), ConfigError);
}

}  // namespace
}  // namespace espice
