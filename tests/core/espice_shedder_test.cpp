#include "core/espice_shedder.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace espice {
namespace {

Event make_event(EventTypeId type) {
  Event e;
  e.type = type;
  e.value = 1.0;
  return e;
}

// 1 type x 10 positions: utilities 0..90 in steps of 10, shares 1 each.
std::shared_ptr<const UtilityModel> ramp_model() {
  std::vector<std::uint8_t> ut;
  std::vector<double> shares;
  for (int p = 0; p < 10; ++p) {
    ut.push_back(static_cast<std::uint8_t>(p * 10));
    shares.push_back(1.0);
  }
  return std::make_shared<UtilityModel>(1, 10, 1, std::move(ut),
                                        std::move(shares));
}

DropCommand active_command(double x, std::size_t partitions = 1) {
  DropCommand cmd;
  cmd.active = true;
  cmd.x = x;
  cmd.partitions = partitions;
  return cmd;
}

TEST(EspiceShedder, InactiveNeverDrops) {
  EspiceShedder s(ramp_model());
  for (std::uint32_t p = 0; p < 10; ++p) {
    EXPECT_FALSE(s.should_drop(make_event(0), p, 10.0));
  }
  EXPECT_EQ(s.drops(), 0u);
  EXPECT_EQ(s.decisions(), 10u);
}

TEST(EspiceShedder, DropsExactlyTheLowUtilityPrefix) {
  EspiceShedder s(ramp_model());
  // x = 3: CDT(20) = 3 -> threshold 20 -> positions 0, 1, 2 drop.
  s.on_command(active_command(3.0));
  ASSERT_EQ(s.thresholds().size(), 1u);
  EXPECT_EQ(s.thresholds()[0], 20);
  int drops = 0;
  for (std::uint32_t p = 0; p < 10; ++p) {
    if (s.should_drop(make_event(0), p, 10.0)) ++drops;
  }
  EXPECT_EQ(drops, 3);
  EXPECT_TRUE(s.should_drop(make_event(0), 0, 10.0));
  EXPECT_FALSE(s.should_drop(make_event(0), 5, 10.0));
}

TEST(EspiceShedder, DeactivationRestoresKeepAll) {
  EspiceShedder s(ramp_model());
  s.on_command(active_command(5.0));
  EXPECT_TRUE(s.should_drop(make_event(0), 0, 10.0));
  DropCommand off;
  off.active = false;
  s.on_command(off);
  EXPECT_FALSE(s.should_drop(make_event(0), 0, 10.0));
  EXPECT_TRUE(s.thresholds().empty());
}

TEST(EspiceShedder, PartitionsGetIndependentThresholds) {
  EspiceShedder s(ramp_model());
  // 2 partitions of 5 positions.  x = 2:
  //  partition 0 utilities {0,10,20,30,40} -> threshold 10,
  //  partition 1 utilities {50,60,70,80,90} -> threshold 60.
  s.on_command(active_command(2.0, 2));
  ASSERT_EQ(s.thresholds().size(), 2u);
  EXPECT_EQ(s.thresholds()[0], 10);
  EXPECT_EQ(s.thresholds()[1], 60);
  // Positions 0,1 (utility 0,10) drop in partition 0.
  EXPECT_TRUE(s.should_drop(make_event(0), 0, 10.0));
  EXPECT_TRUE(s.should_drop(make_event(0), 1, 10.0));
  EXPECT_FALSE(s.should_drop(make_event(0), 2, 10.0));
  // Positions 5,6 (utility 50,60) drop in partition 1.
  EXPECT_TRUE(s.should_drop(make_event(0), 5, 10.0));
  EXPECT_TRUE(s.should_drop(make_event(0), 6, 10.0));
  EXPECT_FALSE(s.should_drop(make_event(0), 7, 10.0));
}

TEST(EspiceShedder, ScaledWindowsUseNormalizedPositions) {
  EspiceShedder s(ramp_model());
  s.on_command(active_command(3.0));  // threshold 20
  // Window of 20 events, N = 10: positions 0..5 map to cells 0..2.
  EXPECT_TRUE(s.should_drop(make_event(0), 0, 20.0));
  EXPECT_TRUE(s.should_drop(make_event(0), 5, 20.0));
  EXPECT_FALSE(s.should_drop(make_event(0), 6, 20.0));
  EXPECT_FALSE(s.should_drop(make_event(0), 19, 20.0));
}

TEST(EspiceShedder, XLargerThanSupplyDropsEverything) {
  EspiceShedder s(ramp_model());
  s.on_command(active_command(1000.0));
  EXPECT_EQ(s.thresholds()[0], kMaxUtility);
  for (std::uint32_t p = 0; p < 10; ++p) {
    EXPECT_TRUE(s.should_drop(make_event(0), p, 10.0));
  }
}

TEST(EspiceShedder, RepeatedCommandsRecomputeThresholds) {
  EspiceShedder s(ramp_model());
  s.on_command(active_command(2.0));
  EXPECT_EQ(s.thresholds()[0], 10);
  s.on_command(active_command(7.0));
  EXPECT_EQ(s.thresholds()[0], 60);
  s.on_command(active_command(1.0));
  EXPECT_EQ(s.thresholds()[0], 0);
}

TEST(EspiceShedder, SetModelRecomputesActiveThresholds) {
  EspiceShedder s(ramp_model(), /*exact_amount=*/false);
  s.on_command(active_command(2.0));
  EXPECT_EQ(s.thresholds()[0], 10);
  // New model: all utilities 50 -> any x <= 10 yields threshold 50.
  std::vector<std::uint8_t> ut(10, 50);
  std::vector<double> shares(10, 1.0);
  s.set_model(std::make_shared<UtilityModel>(1, 10, 1, std::move(ut),
                                             std::move(shares)));
  EXPECT_EQ(s.thresholds()[0], 50);
  EXPECT_TRUE(s.should_drop(make_event(0), 9, 10.0));
}

TEST(EspiceShedder, CountsDecisionsAndDrops) {
  EspiceShedder s(ramp_model());
  s.on_command(active_command(3.0));
  for (std::uint32_t p = 0; p < 10; ++p) {
    s.should_drop(make_event(0), p, 10.0);
  }
  EXPECT_EQ(s.decisions(), 10u);
  EXPECT_EQ(s.drops(), 3u);
}

TEST(EspiceShedder, ExactAmountDropsFractionOfBoundaryUtility) {
  // 1 type x 10 positions, all utility 40, shares 1 each: dropping x = 4
  // with the literal algorithm would drop all 10 events; exact-amount mode
  // drops each boundary event with probability 0.4.
  std::vector<std::uint8_t> ut(10, 40);
  std::vector<double> shares(10, 1.0);
  auto model = std::make_shared<UtilityModel>(1, 10, 1, std::move(ut),
                                              std::move(shares));
  EspiceShedder s(model, /*exact_amount=*/true, /*seed=*/5);
  s.on_command(active_command(4.0));
  int drops = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (s.should_drop(make_event(0), static_cast<std::uint32_t>(i % 10), 10.0)) {
      ++drops;
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / trials, 0.4, 0.02);
}

TEST(EspiceShedder, LiteralModeDropsEverythingAtOrBelowThreshold) {
  std::vector<std::uint8_t> ut(10, 40);
  std::vector<double> shares(10, 1.0);
  auto model = std::make_shared<UtilityModel>(1, 10, 1, std::move(ut),
                                              std::move(shares));
  EspiceShedder s(model, /*exact_amount=*/false);
  s.on_command(active_command(4.0));
  for (std::uint32_t p = 0; p < 10; ++p) {
    EXPECT_TRUE(s.should_drop(make_event(0), p, 10.0));
  }
}

TEST(EspiceShedder, ExactAmountIsNoopOnIntegerBoundaries) {
  // Ramp model: CDT values are integers, so the boundary fraction is 1 and
  // the exact-amount mode behaves deterministically.
  EspiceShedder s(ramp_model(), /*exact_amount=*/true);
  s.on_command(active_command(3.0));
  int drops = 0;
  for (std::uint32_t p = 0; p < 10; ++p) {
    if (s.should_drop(make_event(0), p, 10.0)) ++drops;
  }
  EXPECT_EQ(drops, 3);
}

TEST(EspiceShedder, ExplorationSparesAFractionOfDrops) {
  EspiceShedder s(ramp_model());
  s.set_exploration(0.25);
  s.on_command(active_command(3.0));  // threshold 20: positions 0..2 drop
  int drops = 0;
  const int trials = 30000;
  for (int i = 0; i < trials; ++i) {
    if (s.should_drop(make_event(0), static_cast<std::uint32_t>(i % 3), 10.0)) {
      ++drops;
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / trials, 0.75, 0.02);
  // Keep decisions are never affected.
  EXPECT_FALSE(s.should_drop(make_event(0), 9, 10.0));
}

TEST(EspiceShedder, ExplorationValidation) {
  EspiceShedder s(ramp_model());
  EXPECT_THROW(s.set_exploration(-0.1), ConfigError);
  EXPECT_THROW(s.set_exploration(1.0), ConfigError);
  EXPECT_NO_THROW(s.set_exploration(0.0));
}

TEST(EspiceShedder, NullModelIsRejected) {
  EXPECT_THROW(EspiceShedder(nullptr), ConfigError);
  EspiceShedder s(ramp_model());
  EXPECT_THROW(s.set_model(nullptr), ConfigError);
}

TEST(EspiceShedder, NameIsStable) {
  EspiceShedder s(ramp_model());
  EXPECT_STREQ(s.name(), "eSPICE");
}

// A richer model for the block/scalar differential: several types, bins
// wider than 1, utilities that collide across cells (boundary fractions in
// play when exact_amount is on).
std::shared_ptr<const UtilityModel> block_model() {
  constexpr std::size_t kTypes = 4;
  constexpr std::size_t kN = 24;
  constexpr std::size_t kBs = 3;
  const std::size_t cols = (kN + kBs - 1) / kBs;
  std::vector<std::uint8_t> ut(kTypes * cols);
  std::vector<double> shares(kTypes * cols);
  for (std::size_t i = 0; i < ut.size(); ++i) {
    ut[i] = static_cast<std::uint8_t>((i * 17) % 101);
    shares[i] = 0.5 + static_cast<double>(i % 5);
  }
  return std::make_shared<UtilityModel>(kTypes, kN, kBs, std::move(ut),
                                        std::move(shares));
}

// score_block() must reproduce a scalar should_drop() sweep EXACTLY --
// decisions, counters, and internal RNG evolution -- on twin shedders with
// identical seeds.  Covers the flat fast path (ws == N), the general path
// (ws != N), positions beyond the predicted size, exact-amount boundary
// randomization and exploration.
TEST(EspiceShedder, ScoreBlockMatchesScalarSweep) {
  for (const bool exact : {false, true}) {
    for (const double ws : {24.0, 30.0}) {
      SCOPED_TRACE("exact_amount=" + std::to_string(exact) +
                   " ws=" + std::to_string(ws));
      EspiceShedder scalar(block_model(), exact, /*seed=*/77);
      EspiceShedder block(block_model(), exact, /*seed=*/77);
      scalar.set_exploration(0.25);
      block.set_exploration(0.25);
      scalar.on_command(active_command(20.0, 4));
      block.on_command(active_command(20.0, 4));

      // 3 rounds x 30 positions (6 beyond N = 24) x 4 types.
      std::uint32_t positions[30];
      for (std::uint32_t p = 0; p < 30; ++p) positions[p] = p;
      for (int round = 0; round < 3; ++round) {
        for (EventTypeId t = 0; t < 4; ++t) {
          const Event e = make_event(t);
          std::uint64_t bits[1 + 30 / 64] = {};
          block.score_block(e, positions, 30, ws, bits);
          for (std::uint32_t p = 0; p < 30; ++p) {
            const bool scalar_keep = !scalar.should_drop(e, p, ws);
            const bool block_keep = (bits[p / 64] >> (p % 64)) & 1;
            EXPECT_EQ(block_keep, scalar_keep)
                << "type " << t << " position " << p << " round " << round;
          }
        }
      }
      EXPECT_EQ(block.decisions(), scalar.decisions());
      EXPECT_EQ(block.drops(), scalar.drops());
      EXPECT_GT(block.drops(), 0u) << "nothing dropped: vacuous differential";
    }
  }
}

// Inactive shedders keep everything through the block API, and count the
// decisions just like the scalar path does.
TEST(EspiceShedder, ScoreBlockInactiveKeepsAllAndCounts) {
  EspiceShedder s(ramp_model());
  std::uint32_t positions[70];
  for (std::uint32_t p = 0; p < 70; ++p) positions[p] = p % 10;
  std::uint64_t bits[2] = {0, 0};
  s.score_block(make_event(0), positions, 70, 10.0, bits);
  for (std::uint32_t p = 0; p < 70; ++p) {
    EXPECT_TRUE((bits[p / 64] >> (p % 64)) & 1);
  }
  EXPECT_EQ(s.decisions(), 70u);
  EXPECT_EQ(s.drops(), 0u);
}

// Flat-path invalidation hardening: the position-indexed hot-path arrays
// (ut_flat_ / pos_threshold_) are derived state that MUST track every
// control-plane transition.  This directed command sequence -- partition
// resize up, resize down, re-arm after deactivation, model swap -- checks
// after each step that the flat fast path (ws == N) agrees with the
// general path (ws == 2N, where positions 2p and 2p+1 scale back to cell
// p and the flat arrays are bypassed) on twin shedders.
TEST(EspiceShedder, FlatPathTracksCommandResizesAndRearm) {
  auto model = block_model();  // 4 types x 24 positions, bin size 3
  const std::size_t n = model->n_positions();
  EspiceShedder flat(model);     // queried at ws == N: flat arrays
  EspiceShedder general(model);  // queried at ws == 2N: general math

  auto expect_agree = [&](const char* step) {
    SCOPED_TRACE(step);
    for (EventTypeId t = 0; t < 4; ++t) {
      for (std::uint32_t p = 0; p < n; ++p) {
        const bool f = flat.should_drop(make_event(t), p,
                                        static_cast<double>(n));
        const bool g = general.should_drop(make_event(t), 2 * p,
                                           2.0 * static_cast<double>(n));
        EXPECT_EQ(f, g) << "type " << t << " position " << p;
      }
    }
  };

  expect_agree("inactive");
  flat.on_command(active_command(8.0, 1));
  general.on_command(active_command(8.0, 1));
  expect_agree("armed, 1 partition");
  // Resize up: more partitions than before -> per-partition thresholds and
  // the position->threshold broadcast must be rebuilt, not reused.
  flat.on_command(active_command(8.0, 6));
  general.on_command(active_command(8.0, 6));
  expect_agree("resized up to 6 partitions");
  // Resize down.
  flat.on_command(active_command(5.0, 2));
  general.on_command(active_command(5.0, 2));
  expect_agree("resized down to 2 partitions");
  // Deactivate, then re-arm: the flat threshold arrays must come back
  // armed, not stay in their keep-all state.
  DropCommand off;
  off.active = false;
  flat.on_command(off);
  general.on_command(off);
  expect_agree("deactivated");
  flat.on_command(active_command(10.0, 3));
  general.on_command(active_command(10.0, 3));
  expect_agree("re-armed, 3 partitions");
  // Model swap under an active command: ut_flat_ is model-derived and the
  // thresholds depend on both -- everything must refresh together.
  std::vector<std::uint8_t> ut(4 * 8, 0);
  std::vector<double> shares(4 * 8, 1.0);
  for (std::size_t i = 0; i < ut.size(); ++i) {
    ut[i] = static_cast<std::uint8_t>((i * 31) % 101);
  }
  auto swapped = std::make_shared<UtilityModel>(4, n, 3, std::move(ut),
                                                std::move(shares));
  flat.set_model(swapped);
  general.set_model(swapped);
  expect_agree("model swapped while armed");
}

// The default (base-class) score_block loops should_drop, so any Shedder
// implementation is block-callable with identical semantics.
TEST(EspiceShedder, BaseClassScoreBlockLoopsShouldDrop) {
  NullShedder null_shedder;
  std::uint32_t positions[3] = {0, 1, 2};
  std::uint64_t bits = 0;
  null_shedder.score_block(make_event(0), positions, 3, 10.0, &bits);
  EXPECT_EQ(bits, 0b111u);
  EXPECT_EQ(null_shedder.decisions(), 3u);
}

}  // namespace
}  // namespace espice
