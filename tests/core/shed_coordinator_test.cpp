// ShedCoordinator: the cross-query drop-budget split must equalize the
// utility threshold -- drops land on the globally lowest-utility mass, and
// a query whose events are all valuable is never starved by another
// query's shedding.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "core/shed_coordinator.hpp"

namespace espice {
namespace {

/// A 1-type, N-position model whose per-position utilities are given
/// directly (shares: one event per position per window).
std::shared_ptr<const UtilityModel> model_with_utilities(
    const std::vector<int>& utilities) {
  const std::size_t n = utilities.size();
  std::vector<std::uint8_t> ut(n);
  std::vector<double> shares(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    ut[i] = static_cast<std::uint8_t>(utilities[i]);
  }
  return std::make_shared<UtilityModel>(/*num_types=*/1, /*n_positions=*/n,
                                        /*bin_size=*/1, std::move(ut),
                                        std::move(shares));
}

double sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(ShedCoordinator, SplitsBudgetTowardLowUtilityQuery) {
  // Query 0: eight worthless events per window.  Query 1: eight utility-100
  // events.  The whole budget must land on query 0.
  ShedCoordinator coord;
  coord.set_models({model_with_utilities({0, 0, 0, 0, 0, 0, 0, 0}),
                    model_with_utilities({100, 100, 100, 100, 100, 100, 100,
                                          100})});
  const auto split = coord.apportion(5.0);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_DOUBLE_EQ(split[0], 5.0);
  EXPECT_DOUBLE_EQ(split[1], 0.0);
  EXPECT_NEAR(sum(split), 5.0, 1e-9);
}

TEST(ShedCoordinator, EqualQueriesSplitEqually) {
  ShedCoordinator coord;
  const std::vector<int> utils = {0, 10, 20, 30, 40, 50, 60, 70};
  coord.set_models({model_with_utilities(utils), model_with_utilities(utils)});
  const auto split = coord.apportion(4.0);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_NEAR(split[0], 2.0, 1e-9);
  EXPECT_NEAR(split[1], 2.0, 1e-9);
}

TEST(ShedCoordinator, ExpectedTotalIsExactlyX) {
  // Mixed utility masses: interpolation at the threshold utility must make
  // the summed split exactly x (not "at least x").
  ShedCoordinator coord;
  coord.set_models({model_with_utilities({0, 0, 5, 5, 90, 90}),
                    model_with_utilities({5, 5, 5, 40, 40, 40})});
  for (const double x : {0.5, 1.0, 2.5, 3.7, 6.0}) {
    const auto split = coord.apportion(x);
    EXPECT_NEAR(sum(split), x, 1e-9) << "x=" << x;
    for (const double s : split) EXPECT_GE(s, 0.0);
  }
}

TEST(ShedCoordinator, BudgetBeyondTotalDropsEverythingDroppable) {
  ShedCoordinator coord;
  coord.set_models({model_with_utilities({0, 50}),
                    model_with_utilities({100, 100})});
  const auto split = coord.apportion(100.0);
  EXPECT_NEAR(split[0], 2.0, 1e-9);
  EXPECT_NEAR(split[1], 2.0, 1e-9);  // even utility-100 mass is "droppable"
}

TEST(ShedCoordinator, UntrainedQueryGetsNoBudget) {
  ShedCoordinator coord;
  coord.set_models({model_with_utilities({0, 0, 0, 0}), nullptr});
  const auto split = coord.apportion(3.0);
  ASSERT_EQ(split.size(), 2u);
  EXPECT_DOUBLE_EQ(split[0], 3.0);
  EXPECT_DOUBLE_EQ(split[1], 0.0);
  EXPECT_DOUBLE_EQ(coord.query_mass(1), 0.0);
}

TEST(ShedCoordinator, ZeroOrNegativeBudgetDropsNothing) {
  ShedCoordinator coord;
  coord.set_models({model_with_utilities({0, 10, 20})});
  EXPECT_DOUBLE_EQ(coord.apportion(0.0)[0], 0.0);
  EXPECT_DOUBLE_EQ(coord.apportion(-1.0)[0], 0.0);
}

TEST(ShedCoordinator, WeightsShiftTheSplit) {
  // Same utility profile, but query 1 is worth 3x: the budget moves to
  // query 0 (its mass sits lower on the shared value axis).
  ShedCoordinator coord;
  const std::vector<int> utils = {10, 10, 10, 10};
  coord.set_models({model_with_utilities(utils), model_with_utilities(utils)});
  coord.set_weights({1.0, 3.0});
  const auto split = coord.apportion(3.0);
  EXPECT_NEAR(split[0], 3.0, 1e-9);
  EXPECT_NEAR(split[1], 0.0, 1e-9);
}

TEST(ShedCoordinator, ThresholdEqualization) {
  // The same utility threshold governs every query: no query is asked to
  // drop events *above* the global threshold while another keeps events
  // below it.
  ShedCoordinator coord;
  coord.set_models({model_with_utilities({0, 20, 40, 60}),
                    model_with_utilities({10, 30, 50, 70})});
  const double x = 3.0;
  const int u_star = coord.threshold_for(x);
  const auto split = coord.apportion(x);
  // u* = 20: cumulative mass {q0: 0,20 -> 2} + {q1: 10 -> 1} covers x = 3,
  // so query 0 sheds its two cells <= 20 and query 1 only its utility-10
  // cell -- never its 30/50/70 events.
  EXPECT_EQ(u_star, 20);
  EXPECT_NEAR(split[0], 2.0, 1e-9);
  EXPECT_NEAR(split[1], 1.0, 1e-9);
  EXPECT_NEAR(sum(split), x, 1e-9);
}

}  // namespace
}  // namespace espice
