#include "core/utility_model.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/error.hpp"

namespace espice {
namespace {

UtilityModel simple_model() {
  // 2 types x 4 positions, bin size 1.
  // type 0: 10 20 30 40 ; type 1: 5 5 5 5
  return UtilityModel(2, 4, 1, {10, 20, 30, 40, 5, 5, 5, 5},
                      {1, 1, 1, 1, 1, 1, 1, 1});
}

TEST(UtilityModel, CellAccessors) {
  const auto m = simple_model();
  EXPECT_EQ(m.num_types(), 2u);
  EXPECT_EQ(m.n_positions(), 4u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.utility_cell(0, 0), 10);
  EXPECT_EQ(m.utility_cell(0, 3), 40);
  EXPECT_EQ(m.utility_cell(1, 2), 5);
  EXPECT_DOUBLE_EQ(m.share_cell(0, 1), 1.0);
}

TEST(UtilityModel, ExactSizeLookupIsIdentity) {
  const auto m = simple_model();
  for (std::uint32_t p = 0; p < 4; ++p) {
    EXPECT_EQ(m.utility(0, p, 4.0), m.utility_cell(0, p));
  }
}

TEST(UtilityModel, ScalingDownMapsSeveralPositionsToOneCell) {
  const auto m = simple_model();
  // ws = 8, N = 4: positions 0,1 -> cell 0; 2,3 -> cell 1; etc.
  EXPECT_EQ(m.utility(0, 0, 8.0), 10);
  EXPECT_EQ(m.utility(0, 1, 8.0), 10);
  EXPECT_EQ(m.utility(0, 2, 8.0), 20);
  EXPECT_EQ(m.utility(0, 7, 8.0), 40);
}

TEST(UtilityModel, ScalingUpAveragesCoveredCells) {
  const auto m = simple_model();
  // ws = 2, N = 4: position 0 covers cells 0..1, position 1 covers 2..3.
  EXPECT_EQ(m.utility(0, 0, 2.0), 15);  // avg(10, 20)
  EXPECT_EQ(m.utility(0, 1, 2.0), 35);  // avg(30, 40)
}

TEST(UtilityModel, ScalingUpWithUnevenOverlapWeights) {
  const auto m = simple_model();
  // ws = 3, N = 4: position 1 covers [4/3, 8/3): equal parts of cells 1 and 2.
  EXPECT_EQ(m.utility(0, 1, 3.0), 25);  // avg(20, 30)
}

TEST(UtilityModel, PositionsBeyondPredictedSizeClampToLastCell) {
  const auto m = simple_model();
  EXPECT_EQ(m.utility(0, 10, 4.0), 40);
  EXPECT_EQ(m.utility(0, 1000, 4.0), 40);
}

TEST(UtilityModel, NormalizePositionScalesLinearly) {
  const auto m = simple_model();
  EXPECT_DOUBLE_EQ(m.normalize_position(0, 8.0), 0.0);
  EXPECT_DOUBLE_EQ(m.normalize_position(4, 8.0), 2.0);
  EXPECT_NEAR(m.normalize_position(7, 8.0), 3.5, 1e-9);
}

TEST(UtilityModel, NormalizePositionClampsToN) {
  const auto m = simple_model();
  EXPECT_LT(m.normalize_position(100, 4.0), 4.0);
}

TEST(UtilityModel, BinsGroupNeighboringPositions) {
  // 1 type x 6 positions, bin size 2 -> 3 columns.
  UtilityModel m(1, 6, 2, {10, 20, 30}, {2, 2, 2});
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.col_width(0), 2u);
  EXPECT_EQ(m.utility(0, 0, 6.0), 10);
  EXPECT_EQ(m.utility(0, 1, 6.0), 10);
  EXPECT_EQ(m.utility(0, 2, 6.0), 20);
  EXPECT_EQ(m.utility(0, 5, 6.0), 30);
}

TEST(UtilityModel, LastBinMayBeNarrow) {
  // 5 positions, bin size 2 -> columns of widths 2, 2, 1.
  UtilityModel m(1, 5, 2, {1, 2, 3}, {2, 2, 1});
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_EQ(m.col_width(2), 1u);
  EXPECT_EQ(m.utility(0, 4, 5.0), 3);
}

TEST(UtilityModel, ColOfNormClampsNegativeAndOverflow) {
  const auto m = simple_model();
  EXPECT_EQ(m.col_of_norm(-1.0), 0u);
  EXPECT_EQ(m.col_of_norm(100.0), 3u);
}

TEST(UtilityModel, FootprintAccountsForBothTables) {
  const auto m = simple_model();
  EXPECT_EQ(m.footprint_bytes(), 8 * sizeof(std::uint8_t) + 8 * sizeof(double));
}

TEST(UtilityModel, RejectsInvalidConstruction) {
  EXPECT_THROW(UtilityModel(0, 4, 1, {}, {}), ConfigError);
  EXPECT_THROW(UtilityModel(1, 0, 1, {}, {}), ConfigError);
  EXPECT_THROW(UtilityModel(1, 4, 0, {}, {}), ConfigError);
}

}  // namespace
}  // namespace espice
