// Chaos oracle: inject errno-level I/O faults (ENOSPC, EIO, short writes,
// failed fsyncs) at every site the durability layer touches, under every
// on_wal_error policy, and hold the engine to the fault-tolerance contract:
//
//   under ANY injected fault schedule the engine terminates within a
//   deadline and either (a) completes with output bit-identical to the
//   fault-free run, or (b) fails with a typed espice::Error leaving an
//   intact durable prefix from which recover_and_start() reproduces the
//   golden once the faults clear.
//
// Method mirrors the kill-anywhere recovery oracle (recovery_oracle_test):
// a census run under a counting IoEnv enumerates the real (site, count)
// pairs for the exact drive schedule, then stratified rounds arm faults
// over them -- write sites (including the torn-record short-write shape),
// fsync sites, and fully-random schedules with sticky faults.  Every armed
// run is classified as completed-or-failed-typed; anything else (a hang, an
// untyped exception, UB after failure) fails the suite.  Seeded via
// ESPICE_TEST_SEED (5-seed CI matrix); runs under both sanitizers via the
// `chaos` ctest label.
#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "durability/event_log.hpp"
#include "runtime/stream_engine.hpp"
#include "support/io_fault.hpp"
#include "support/temp_dir.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

using durability::FsyncPolicy;
using test_support::FaultyIoEnv;
using test_support::IoFaultHarness;
using test_support::TempDir;

constexpr EventTypeId kNumTypes = 6;
constexpr double kPredictedWs = 24.0;

// Batched pushes with periodic explicit checkpoints; tiny segments force
// mid-run rolls so the log.open/log.dir.fsync sites fire too.
constexpr std::size_t kBatch = 64;
constexpr std::size_t kCheckpointEveryBatches = 3;
constexpr std::size_t kSegmentBytes = 4096;
constexpr std::size_t kStreamLen = 448;

// Wall-clock bound per armed run: generous (sanitizer builds are slow) but
// finite -- a backpressure hang or an unbounded retry loop trips it.
constexpr double kRunDeadlineSeconds = 60.0;

std::vector<Event> random_stream(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += rng.uniform(0.0, 1.2);
    e.ts = ts;
    e.value = rng.uniform(-2.0, 2.0);
    events.push_back(e);
  }
  return events;
}

/// Deterministic stateless shedder (pure hash), identical across replay.
class HashShedder final : public Shedder {
 public:
  explicit HashShedder(unsigned mod) : mod_(mod) {}

  bool should_drop(const Event& e, std::uint32_t position, double) override {
    const bool drop =
        mod_ != 0 &&
        ((e.seq * 2654435761ULL) ^ (position * 40503ULL)) % mod_ != 0;
    count_decision(drop);
    return drop;
  }
  void on_command(const DropCommand&) override {}
  const char* name() const override { return "hash"; }

 private:
  unsigned mod_;
};

struct Scenario {
  std::size_t shards = 4;
  WalErrorPolicy policy = WalErrorPolicy::kFailStop;
  FsyncPolicy fsync = FsyncPolicy::kNone;
};

StreamEngineConfig make_config(const Scenario& s, const std::string& dir) {
  StreamEngineConfig config;
  config.shards = s.shards;
  config.ring_capacity = 256;
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.span_events = 24;
  spec.slide_events = 5;
  ShardQuery q;
  q.pattern =
      make_sequence({element("up", TypeSet{}, DirectionFilter::kRising),
                     element("down", TypeSet{}, DirectionFilter::kFalling)});
  q.window = spec;
  config.query = q;
  config.predicted_ws = kPredictedWs;
  config.shedder_factory = [](std::size_t) {
    return std::make_unique<HashShedder>(3);
  };
  if (!dir.empty()) {
    DurabilityConfig d;
    d.dir = dir;
    d.segment_bytes = kSegmentBytes;
    d.fsync = s.fsync;
    d.on_wal_error = s.policy;
    d.wal_retry_max = 4;
    d.wal_retry_backoff_us = 20;  // keep armed sweeps fast
    config.durability = d;
  }
  return config;
}

/// Bit-identity on everything deterministic: matches byte-for-byte plus the
/// shed/membership counters (wall-clock gauges exempt).
void expect_same_output(const EngineReport& actual,
                        const EngineReport& expected) {
  EXPECT_EQ(actual.events, expected.events);
  ASSERT_EQ(actual.matches.size(), expected.matches.size());
  for (std::size_t i = 0; i < actual.matches.size(); ++i) {
    const ComplexEvent& a = actual.matches[i];
    const ComplexEvent& b = expected.matches[i];
    EXPECT_EQ(a.window, b.window) << "match " << i;
    EXPECT_DOUBLE_EQ(a.detection_ts, b.detection_ts) << "match " << i;
    ASSERT_EQ(a.constituents.size(), b.constituents.size()) << "match " << i;
    for (std::size_t c = 0; c < a.constituents.size(); ++c) {
      EXPECT_EQ(a.constituents[c].event.seq, b.constituents[c].event.seq)
          << "match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].position, b.constituents[c].position)
          << "match " << i << " constituent " << c;
    }
  }
  ASSERT_EQ(actual.queries.size(), expected.queries.size());
  for (std::size_t qi = 0; qi < expected.queries.size(); ++qi) {
    EXPECT_EQ(actual.queries[qi].memberships, expected.queries[qi].memberships);
    EXPECT_EQ(actual.queries[qi].memberships_kept,
              expected.queries[qi].memberships_kept);
    EXPECT_EQ(actual.queries[qi].shed_decisions,
              expected.queries[qi].shed_decisions);
    EXPECT_EQ(actual.queries[qi].shed_drops, expected.queries[qi].shed_drops);
  }
}

enum class Outcome { kCompleted, kFailedTyped };

struct ChaosRun {
  Outcome outcome = Outcome::kFailedTyped;
  EngineReport report;  ///< valid when kCompleted
  std::string error;    ///< valid when kFailedTyped
};

/// Drives the schedule, classifying the result.  Checkpoint failures on a
/// still-running engine (snapshot write faults, degrade-mode refusal) are
/// survivable by contract -- the driver logs on, exactly as an operator
/// would.  A typed failure from push/finish is terminal; anything ELSE
/// escaping (an untyped exception) fails the test.
ChaosRun drive_chaos(StreamEngine& engine, std::span<const Event> events,
                     bool checkpoints) {
  ChaosRun run;
  std::size_t batch_no = 0;
  for (std::size_t i = 0; i < events.size(); i += kBatch) {
    try {
      engine.push_batch(
          events.subspan(i, std::min(kBatch, events.size() - i)));
    } catch (const Error& e) {
      run.outcome = Outcome::kFailedTyped;
      run.error = e.what();
      return run;
    }
    if (checkpoints && ++batch_no % kCheckpointEveryBatches == 0) {
      try {
        engine.checkpoint();
      } catch (const Error& e) {
        if (engine.state() == EngineState::kFailed) {
          run.outcome = Outcome::kFailedTyped;
          run.error = e.what();
          return run;
        }
        // Degraded or lost-snapshot: the pipeline is intact, keep going.
      }
    }
  }
  try {
    run.report = engine.finish();
    run.outcome = Outcome::kCompleted;
  } catch (const Error& e) {
    run.outcome = Outcome::kFailedTyped;
    run.error = e.what();
  }
  return run;
}

/// The recovery half of the contract: faults cleared, a fresh engine must
/// recover the durable prefix and, after re-pushing the lost tail,
/// reproduce the golden bit for bit.
void expect_recovers_to_golden(const Scenario& s, const std::string& dir,
                               std::span<const Event> events,
                               const EngineReport& golden) {
  StreamEngine engine(make_config(s, dir));
  const RecoveryReport rep = engine.recover_and_start();
  EXPECT_LE(rep.durable_events, events.size());
  EXPECT_LE(rep.snapshot_offset, rep.durable_events);
  const ChaosRun tail = drive_chaos(
      engine, events.subspan(engine.data_pushed()), /*checkpoints=*/false);
  ASSERT_EQ(tail.outcome, Outcome::kCompleted)
      << "recovery run failed with faults disarmed: " << tail.error;
  expect_same_output(tail.report, golden);
}

/// One armed run under `fault`, start to verdict: terminate within the
/// deadline, then either bit-identical output or typed-failure + abort
/// idempotence + recovery to golden.
void run_armed(const Scenario& s, std::span<const Event> events,
               const EngineReport& golden, FaultyIoEnv::Fault fault) {
  TempDir dir("chaos");
  const auto t0 = std::chrono::steady_clock::now();
  IoFaultHarness harness;
  harness.arm(std::move(fault));
  ChaosRun run;
  {
    StreamEngine engine(make_config(s, dir.str()));
    run = drive_chaos(engine, events, /*checkpoints=*/true);
    if (run.outcome == Outcome::kFailedTyped) {
      EXPECT_EQ(engine.state(), EngineState::kFailed)
          << "typed failure must leave the engine terminally failed";
      // Post-failure calls are typed errors, never UB.  (ConfigError when
      // the failure escaped finish() and the engine is also finished;
      // espice::Error, which derives from it, otherwise.)
      EXPECT_THROW(engine.push_batch(events.subspan(0, 1)), ConfigError);
      engine.abort();
      engine.abort();  // idempotent
    } else {
      EXPECT_NE(run.report.health.state, EngineState::kFailed);
    }
  }
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(elapsed, kRunDeadlineSeconds)
      << "armed run blew the termination deadline";

  if (run.outcome == Outcome::kCompleted) {
    expect_same_output(run.report, golden);
  } else {
    harness.disarm();  // the disk is back; now recovery must succeed
    expect_recovers_to_golden(s, dir.str(), events, golden);
  }
}

// --- the sweep ---------------------------------------------------------------

// Every policy x fsync mode x shard count, faults stratified over the
// census: write sites (outright and torn short-write), fsync sites, then
// fully-random schedules with sticky faults.
TEST(ChaosOracle, RandomFaultSchedulesTerminateAndRecover) {
  const std::uint64_t seed = test_support::test_seed(91);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, kStreamLen);
  Rng rng(seed ^ 0xc4a05ULL);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    Scenario base;
    base.shards = shards;

    // Fault-free golden (memory-only) for this shard count.
    StreamEngine golden_engine(make_config(base, ""));
    const ChaosRun golden_run =
        drive_chaos(golden_engine, events, /*checkpoints=*/false);
    ASSERT_EQ(golden_run.outcome, Outcome::kCompleted);
    const EngineReport& golden = golden_run.report;
    ASSERT_GT(golden.matches.size(), 0u) << "vacuous stream";

    for (const WalErrorPolicy policy :
         {WalErrorPolicy::kFailStop, WalErrorPolicy::kDegradeToMemory,
          WalErrorPolicy::kRetryBackoff}) {
      for (const FsyncPolicy fsync :
           {FsyncPolicy::kNone, FsyncPolicy::kEveryBatch}) {
        Scenario s = base;
        s.policy = policy;
        s.fsync = fsync;
        SCOPED_TRACE(std::string("K=") + std::to_string(shards) +
                     " policy=" + wal_error_policy_name(policy) +
                     " fsync=" + fsync_policy_name(fsync));

        // Census: the same schedule under a counting (no-fault) env; its
        // output must already equal the golden (the seam is transparent).
        std::map<std::string, std::uint64_t> counts;
        {
          TempDir dir("census");
          IoFaultHarness harness;
          StreamEngine engine(make_config(s, dir.str()));
          const ChaosRun census =
              drive_chaos(engine, events, /*checkpoints=*/true);
          ASSERT_EQ(census.outcome, Outcome::kCompleted) << census.error;
          expect_same_output(census.report, golden);
          EXPECT_EQ(census.report.health.state, EngineState::kRunning);
          EXPECT_EQ(census.report.health.wal_errors, 0u);
          counts = harness.counts();
        }
        ASSERT_GT(counts["log.write"], 2u) << "census too thin";
        ASSERT_GT(counts["log.fsync"], 0u)
            << "checkpoints never synced the log";

        std::vector<FaultyIoEnv::Fault> schedule;
        // Round A -- write faults: first and last occurrence outright
        // (ENOSPC), middle occurrence as a torn short-write.
        const std::uint64_t writes = counts["log.write"];
        schedule.push_back({"log.write", 1, ENOSPC, false, false, 0});
        schedule.push_back({"log.write", writes, ENOSPC, false, false, 0});
        schedule.push_back(
            {"log.write", (writes + 1) / 2, ENOSPC, true, false, 0});
        // Round B -- fsync faults (EIO): the log's policy/checkpoint syncs
        // and the snapshot publication sync.
        schedule.push_back({"log.fsync", 1, EIO, false, false, 0});
        if (counts["snapshot.fsync"] > 0) {
          schedule.push_back({"snapshot.fsync", 1, EIO, false, false, 0});
        }
        // Round C -- fully random (site, occurrence, errno, sticky).
        std::vector<std::pair<std::string, std::uint64_t>> sites(
            counts.begin(), counts.end());
        for (int r = 0; r < 3; ++r) {
          const auto& [site, n] = sites[rng.uniform_int(sites.size())];
          FaultyIoEnv::Fault f;
          f.site = site;
          f.occurrence = 1 + rng.uniform_int(n);
          f.err = rng.uniform_int(2) == 0 ? ENOSPC : EIO;
          f.sticky = rng.uniform_int(2) == 0;
          schedule.push_back(std::move(f));
        }

        for (const FaultyIoEnv::Fault& fault : schedule) {
          SCOPED_TRACE(fault.site + "#" + std::to_string(fault.occurrence) +
                       " err=" + std::to_string(fault.err) +
                       (fault.short_write ? " short" : "") +
                       (fault.sticky ? " sticky" : ""));
          run_armed(s, events, golden, fault);
        }
      }
    }
  }
}

// --- directed policy tests ---------------------------------------------------

struct ChaosDirectedTest : ::testing::Test {
  std::uint64_t seed = test_support::test_seed(92);
  std::vector<Event> events = random_stream(seed, kStreamLen);

  EngineReport golden(std::size_t shards) {
    Scenario s;
    s.shards = shards;
    StreamEngine engine(make_config(s, ""));
    ChaosRun run = drive_chaos(engine, events, /*checkpoints=*/false);
    EXPECT_EQ(run.outcome, Outcome::kCompleted);
    return std::move(run.report);
  }
};

// A transient fault under kRetryBackoff: the retry lands the batch and the
// run completes bit-identically, with the error counted in health.
TEST_F(ChaosDirectedTest, RetryRecoversTransientFault) {
  SCOPED_TRACE(test_support::seed_trace(seed));
  const EngineReport gold = golden(4);
  Scenario s;
  s.policy = WalErrorPolicy::kRetryBackoff;
  TempDir dir("retry");
  IoFaultHarness harness;
  harness.arm({"log.write", 2, EIO, false, false, 0});
  StreamEngine engine(make_config(s, dir.str()));
  const ChaosRun run = drive_chaos(engine, events, /*checkpoints=*/true);
  ASSERT_EQ(run.outcome, Outcome::kCompleted) << run.error;
  EXPECT_GE(harness.fired(), 1u);
  expect_same_output(run.report, gold);
  EXPECT_EQ(run.report.health.state, EngineState::kRunning);
  EXPECT_GE(run.report.health.wal_errors, 1u);
  EXPECT_FALSE(run.report.health.wal_degraded);
}

// Regression: under kRetryBackoff the write-vs-fsync discrimination must
// run on EVERY attempt.  When the original append dies at the write and the
// retry lands the record but dies in its policy fsync, the next attempt has
// to sync the landed record -- re-appending would duplicate the batch in
// the WAL and recovery would replay it twice.
TEST_F(ChaosDirectedTest, RetryAfterFsyncFaultDoesNotDuplicateBatch) {
  SCOPED_TRACE(test_support::seed_trace(seed));
  Scenario s;
  s.shards = 1;
  s.policy = WalErrorPolicy::kRetryBackoff;
  s.fsync = FsyncPolicy::kEveryBatch;
  TempDir dir("retry-fsync");
  StreamEngineConfig config = make_config(s, dir.str());
  config.durability->segment_bytes = 1u << 20;  // no mid-run segment rolls
  IoFaultHarness harness;
  // Occurrence map (kEveryBatch, no rolls): log.write #1 is the segment
  // header, #(1+i) is batch i's record, log.fsync #i is batch i's policy
  // sync.  Batch 2: the first append dies at the write (nothing lands),
  // retry 1 lands the record (write #4) and dies in its policy fsync
  // (fsync #2), so retry 2 must observe the landed record and sync it.
  harness.arm({"log.write", 3, ENOSPC, false, false, 0});
  harness.arm({"log.fsync", 2, EIO, false, false, 0});
  StreamEngine engine(config);
  for (std::size_t b = 0; b < 3; ++b) {
    engine.push_batch(std::span(events).subspan(b * kBatch, kBatch));
  }
  const EngineReport report = engine.finish();
  EXPECT_EQ(harness.fired(), 2u);
  EXPECT_EQ(report.health.state, EngineState::kRunning);
  EXPECT_GE(report.health.wal_errors, 2u);
  // The WAL holds every pushed event exactly once, in stream order; a
  // duplicated batch would both inflate the count and repeat seqs.
  durability::EventLogReader reader(dir.str() + "/log");
  const std::vector<Event> logged = reader.read_from(0);
  ASSERT_EQ(logged.size(), 3 * kBatch);
  for (std::size_t i = 0; i < logged.size(); ++i) {
    EXPECT_EQ(logged[i].seq, events[i].seq) << "index " << i;
  }
}

// A dead disk under kRetryBackoff exhausts the bounded retries and falls
// through to a typed fail-stop -- no unbounded retry loop.
TEST_F(ChaosDirectedTest, RetryExhaustionFailsTyped) {
  SCOPED_TRACE(test_support::seed_trace(seed));
  Scenario s;
  s.policy = WalErrorPolicy::kRetryBackoff;
  TempDir dir("retry-dead");
  IoFaultHarness harness;
  harness.arm({"log.write", 2, ENOSPC, false, /*sticky=*/true, 0});
  StreamEngine engine(make_config(s, dir.str()));
  const ChaosRun run = drive_chaos(engine, events, /*checkpoints=*/true);
  ASSERT_EQ(run.outcome, Outcome::kFailedTyped);
  EXPECT_EQ(engine.state(), EngineState::kFailed);
  EXPECT_GE(engine.health().wal_errors,
            2u);  // the first hit plus every exhausted retry
  engine.abort();
}

// kDegradeToMemory: a sticky fault seals the durable prefix at the last
// valid offset; the run completes bit-identically with the report flagged,
// and a later recovery replays exactly that sealed prefix.
TEST_F(ChaosDirectedTest, DegradeSealsDurablePrefixAndCompletes) {
  SCOPED_TRACE(test_support::seed_trace(seed));
  const EngineReport gold = golden(4);
  Scenario s;
  s.policy = WalErrorPolicy::kDegradeToMemory;
  TempDir dir("degrade");
  std::uint64_t degraded_at = 0;
  {
    IoFaultHarness harness;
    harness.arm({"log.write", 3, ENOSPC, false, /*sticky=*/true, 0});
    StreamEngine engine(make_config(s, dir.str()));
    const ChaosRun run = drive_chaos(engine, events, /*checkpoints=*/true);
    ASSERT_EQ(run.outcome, Outcome::kCompleted) << run.error;
    EXPECT_GE(harness.fired(), 1u);
    expect_same_output(run.report, gold);
    EXPECT_EQ(run.report.health.state, EngineState::kDegraded);
    EXPECT_TRUE(run.report.health.wal_degraded);
    EXPECT_GE(run.report.health.wal_errors, 1u);
    degraded_at = run.report.health.degraded_at_offset;
    EXPECT_LT(degraded_at, events.size())
        << "degradation must have cut the log short";
  }
  // Faults cleared: the durable prefix ends exactly at the sealed offset
  // and recovery + tail re-push reproduces the golden.
  StreamEngine engine(make_config(s, dir.str()));
  const RecoveryReport rep = engine.recover_and_start();
  EXPECT_EQ(rep.durable_events, degraded_at);
  const ChaosRun tail = drive_chaos(
      engine, std::span(events).subspan(engine.data_pushed()),
      /*checkpoints=*/false);
  ASSERT_EQ(tail.outcome, Outcome::kCompleted) << tail.error;
  expect_same_output(tail.report, gold);
}

// checkpoint() on a degraded engine refuses with a typed error (it cannot
// honor an explicit durability request), while ingestion continues.
TEST_F(ChaosDirectedTest, CheckpointRefusesOnDegradedEngine) {
  SCOPED_TRACE(test_support::seed_trace(seed));
  Scenario s;
  s.policy = WalErrorPolicy::kDegradeToMemory;
  TempDir dir("degrade-ckpt");
  IoFaultHarness harness;
  // Occurrence 1 is the fresh segment's header write (part of opening the
  // log, fatal under every policy); occurrence 2 is the first append.
  harness.arm({"log.write", 2, ENOSPC, false, /*sticky=*/true, 0});
  StreamEngine engine(make_config(s, dir.str()));
  engine.push_batch(std::span(events).subspan(0, kBatch));
  EXPECT_EQ(engine.state(), EngineState::kDegraded);
  try {
    engine.checkpoint();
    FAIL() << "checkpoint() must refuse on a degraded engine";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
  }
  // Ingestion is unaffected by the refusal.
  engine.push_batch(std::span(events).subspan(kBatch, kBatch));
  const EngineReport report = engine.finish();
  EXPECT_EQ(report.events, 2 * kBatch);
}

// kFailStop: the failing push throws typed, the engine is terminally
// failed, and every subsequent operation is a typed error -- finish()
// included, without hanging.
TEST_F(ChaosDirectedTest, FailStopIsTypedAndTerminal) {
  SCOPED_TRACE(test_support::seed_trace(seed));
  const EngineReport gold = golden(4);
  Scenario s;  // kFailStop is the default policy
  TempDir dir("failstop");
  {
    IoFaultHarness harness;
    harness.arm({"log.write", 3, EIO, false, /*sticky=*/true, 0});
    StreamEngine engine(make_config(s, dir.str()));
    const ChaosRun run = drive_chaos(engine, events, /*checkpoints=*/true);
    ASSERT_EQ(run.outcome, Outcome::kFailedTyped);
    EXPECT_EQ(engine.state(), EngineState::kFailed);
    try {
      engine.push_batch(std::span(events).subspan(0, 1));
      FAIL() << "push after fail-stop must throw";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kEngineFailed);
    }
    EXPECT_THROW(engine.finish(), Error);  // hang-free, typed
    engine.abort();
    engine.abort();  // idempotent
    const EngineHealth h = engine.health();
    EXPECT_EQ(h.state, EngineState::kFailed);
    EXPECT_GE(h.wal_errors, 1u);
    EXPECT_FALSE(h.last_error.empty());
  }
  StreamEngine engine(make_config(s, dir.str()));
  engine.recover_and_start();
  const ChaosRun tail = drive_chaos(
      engine, std::span(events).subspan(engine.data_pushed()),
      /*checkpoints=*/false);
  ASSERT_EQ(tail.outcome, Outcome::kCompleted) << tail.error;
  expect_same_output(tail.report, gold);
}

// The seam itself is invisible: with a fault env installed but nothing
// armed, a full durable run (checkpoints included) is bit-identical to the
// golden and the census covers every documented durability site.
TEST_F(ChaosDirectedTest, NoFaultEnvIsTransparent) {
  SCOPED_TRACE(test_support::seed_trace(seed));
  const EngineReport gold = golden(4);
  Scenario s;
  TempDir dir("transparent");
  IoFaultHarness harness;
  StreamEngine engine(make_config(s, dir.str()));
  const ChaosRun run = drive_chaos(engine, events, /*checkpoints=*/true);
  ASSERT_EQ(run.outcome, Outcome::kCompleted) << run.error;
  expect_same_output(run.report, gold);
  EXPECT_EQ(harness.fired(), 0u);
  const auto counts = harness.counts();
  for (const char* site :
       {"log.open", "log.write", "log.fsync", "log.dir.fsync",
        "snapshot.open", "snapshot.write", "snapshot.fsync",
        "snapshot.rename", "manifest.open", "manifest.write",
        "manifest.fsync", "manifest.rename", "snapshot.dir.fsync"}) {
    EXPECT_TRUE(counts.count(site)) << "site never exercised: " << site;
  }
}

}  // namespace
}  // namespace espice
