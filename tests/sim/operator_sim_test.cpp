#include "sim/operator_sim.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace espice {
namespace {

// A stream of `n` type-0 events, one per second of source time.
std::vector<Event> uniform_stream(std::size_t n, EventTypeId type = 0) {
  std::vector<Event> events;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = type;
    e.seq = i;
    e.ts = static_cast<double>(i);
    e.value = 1.0;
    events.push_back(e);
  }
  return events;
}

WindowSpec tumbling(std::size_t span) {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = span;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = span;
  return spec;
}

Matcher single_event_matcher() {
  return Matcher(make_sequence({element("a", TypeSet{0})}),
                 SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
}

// Drops everything at odd positions once activated.
class OddPositionShedder final : public Shedder {
 public:
  bool should_drop(const Event&, std::uint32_t position, double) override {
    const bool drop = active_ && (position % 2 == 1);
    count_decision(drop);
    return drop;
  }
  void on_command(const DropCommand& cmd) override { active_ = cmd.active; }
  const char* name() const override { return "odd"; }

 private:
  bool active_ = false;
};

SimConfig base_sim(std::size_t span) {
  SimConfig config;
  config.window = tumbling(span);
  config.cost.base_cost = 0.0;
  config.cost.per_window_cost = 1e-3;  // 1 ms per (event, window)
  config.detector.latency_bound = 1.0;
  config.detector.f = 0.8;
  config.detector.window_size_events = span;
  config.detector.tick_period = 0.01;
  config.detector.ewma_alpha = 1.0;
  return config;
}

TEST(RunPipeline, GoldenPassSeesEveryWindowAndMatch) {
  const auto events = uniform_stream(10);
  std::size_t windows = 0;
  std::size_t matches = 0;
  run_pipeline(events, tumbling(5), single_event_matcher(), nullptr, 0.0,
               [&](const WindowView& w, const std::vector<ComplexEvent>& ms) {
                 ++windows;
                 matches += ms.size();
                 EXPECT_EQ(w.kept_count(), 5u);
               });
  EXPECT_EQ(windows, 2u);
  EXPECT_EQ(matches, 2u);
}

TEST(RunPipeline, ShedderThinsWindows) {
  const auto events = uniform_stream(10);
  OddPositionShedder shedder;
  DropCommand cmd;
  cmd.active = true;
  shedder.on_command(cmd);
  std::size_t kept = 0;
  run_pipeline(events, tumbling(5), single_event_matcher(), &shedder, 5.0,
               [&](const WindowView& w, const std::vector<ComplexEvent>&) {
                 kept += w.kept_count();
                 EXPECT_EQ(w.arrivals, 5u);  // positions unaffected
               });
  EXPECT_EQ(kept, 6u);  // positions 0, 2, 4 in each of two windows
}

TEST(OperatorSim, UnderloadLatencyEqualsProcessingCost) {
  // R = 100/s, cost = 1 ms/event -> operator idles between events.
  auto config = base_sim(1);
  NullShedder shedder;
  OperatorSimulator sim(config, single_event_matcher(), shedder);
  const auto result = sim.run(uniform_stream(100), 100.0);
  EXPECT_EQ(result.events, 100u);
  EXPECT_EQ(result.lb_violations, 0u);
  for (const auto& s : result.latencies) {
    EXPECT_NEAR(s.latency, 1e-3, 1e-9);
  }
}

TEST(OperatorSim, QueueBuildsUpUnderOverloadWithoutShedding) {
  // R = 2000/s, capacity = 1000/s, no shedding: latency grows linearly.
  auto config = base_sim(1);
  config.detector.latency_bound = 1e9;  // never consider it violated
  NullShedder shedder;
  OperatorSimulator sim(config, single_event_matcher(), shedder);
  const auto result = sim.run(uniform_stream(4000), 2000.0);
  // Last event arrives at ~2 s but finishes at ~4 s.
  EXPECT_GT(result.max_latency, 1.5);
  EXPECT_GT(result.duration, 3.9);
}

TEST(OperatorSim, LatencyBoundViolationsAreCounted) {
  auto config = base_sim(1);
  config.detector.latency_bound = 0.5;
  config.detector.f = 0.99;  // effectively disable shedding activation space
  NullShedder shedder;
  OperatorSimulator sim(config, single_event_matcher(), shedder);
  const auto result = sim.run(uniform_stream(4000), 2000.0);
  EXPECT_GT(result.lb_violations, 0u);
}

TEST(OperatorSim, MembershipAccountingIsExact) {
  auto config = base_sim(4);
  NullShedder shedder;
  OperatorSimulator sim(config, single_event_matcher(), shedder);
  const auto result = sim.run(uniform_stream(40), 100.0);
  EXPECT_EQ(result.memberships, 40u);       // tumbling: 1 window per event
  EXPECT_EQ(result.memberships_kept, 40u);  // nothing dropped
  EXPECT_EQ(result.windows_closed, 10u);
}

TEST(OperatorSim, SheddingReducesKeptMemberships) {
  auto config = base_sim(4);
  OddPositionShedder shedder;
  DropCommand cmd;
  cmd.active = true;
  shedder.on_command(cmd);  // pre-activated; detector commands keep it on/off
  OperatorSimulator sim(config, single_event_matcher(), shedder);
  // Overload so the detector keeps shedding active.
  const auto result = sim.run(uniform_stream(4000), 2000.0);
  EXPECT_LT(result.memberships_kept, result.memberships);
}

TEST(OperatorSim, DetectorActivatesSheddingUnderOverload) {
  auto config = base_sim(2);  // span 2 so odd positions exist
  OddPositionShedder shedder;
  OperatorSimulator sim(config, single_event_matcher(), shedder);
  const auto result = sim.run(uniform_stream(4000), 2000.0);
  EXPECT_TRUE(result.shedding_ever_active);
  EXPECT_GT(shedder.drops(), 0u);
}

TEST(OperatorSim, SheddingKeepsLatencyUnderTheBound) {
  // 2x overload; the odd-position shedder halves the load, which is exactly
  // enough to keep up once active.
  auto config = base_sim(2);
  OddPositionShedder shedder;
  OperatorSimulator sim(config, single_event_matcher(), shedder);
  const auto result = sim.run(uniform_stream(8000), 2000.0);
  EXPECT_TRUE(result.shedding_ever_active);
  EXPECT_EQ(result.lb_violations, 0u);
  EXPECT_LE(result.max_latency, 1.0);
}

TEST(OperatorSim, EmptyStreamProducesEmptyResult) {
  auto config = base_sim(1);
  NullShedder shedder;
  OperatorSimulator sim(config, single_event_matcher(), shedder);
  const auto result = sim.run({}, 100.0);
  EXPECT_EQ(result.events, 0u);
  EXPECT_TRUE(result.matches.empty());
}

TEST(OperatorSim, MatchesCarryDetectionTimestamps) {
  auto config = base_sim(5);
  NullShedder shedder;
  OperatorSimulator sim(config, single_event_matcher(), shedder);
  const auto result = sim.run(uniform_stream(10), 100.0);
  ASSERT_EQ(result.matches.size(), 2u);
  EXPECT_GT(result.matches[1].detection_ts, result.matches[0].detection_ts);
}

TEST(OperatorSim, ResultsAreDeterministic) {
  auto config = base_sim(3);
  NullShedder s1, s2;
  OperatorSimulator sim1(config, single_event_matcher(), s1);
  OperatorSimulator sim2(config, single_event_matcher(), s2);
  const auto events = uniform_stream(300);
  const auto r1 = sim1.run(events, 1500.0);
  const auto r2 = sim2.run(events, 1500.0);
  EXPECT_EQ(r1.matches.size(), r2.matches.size());
  EXPECT_DOUBLE_EQ(r1.max_latency, r2.max_latency);
  EXPECT_DOUBLE_EQ(r1.duration, r2.duration);
}

TEST(OperatorSim, RatePhasesChangeArrivalTiming) {
  // 100 events at 100/s then 100 events at 1000/s: total arrival span is
  // 1.0 + 0.1 s; with 1 ms processing the run finishes shortly after.
  auto config = base_sim(1);
  NullShedder shedder;
  OperatorSimulator sim(config, single_event_matcher(), shedder);
  const auto result =
      sim.run(uniform_stream(200), {RatePhase{100, 100.0}, RatePhase{100, 1000.0}});
  EXPECT_EQ(result.events, 200u);
  EXPECT_GT(result.duration, 1.09);
  EXPECT_LT(result.duration, 1.2);
}

TEST(OperatorSim, LastPhaseExtendsToStreamEnd) {
  auto config = base_sim(1);
  NullShedder shedder;
  OperatorSimulator sim(config, single_event_matcher(), shedder);
  // Phase counts cover only 10 of 100 events; the rest arrive at the last
  // phase's rate.
  const auto result = sim.run(uniform_stream(100), {RatePhase{10, 1000.0}});
  EXPECT_EQ(result.events, 100u);
  EXPECT_NEAR(result.duration, 0.1, 0.01);
}

TEST(OperatorSim, BurstTriggersSheddingThenRecovers) {
  // Steady 80% load with a 2x burst in the middle: the detector must engage
  // during the burst and keep the latency bound.
  auto config = base_sim(2);
  OddPositionShedder shedder;
  OperatorSimulator sim(config, single_event_matcher(), shedder);
  const auto result = sim.run(
      uniform_stream(12000),
      {RatePhase{4000, 800.0}, RatePhase{4000, 2000.0}, RatePhase{4000, 800.0}});
  EXPECT_TRUE(result.shedding_ever_active);
  EXPECT_EQ(result.lb_violations, 0u);
  // The calm phases must not shed: drops stay well below half the
  // (event, window) pairs of the burst phase alone.
  EXPECT_LT(shedder.drops(), 4000u);
}

TEST(OperatorSim, PhaselessAndSinglePhaseAgree) {
  auto config = base_sim(3);
  NullShedder s1, s2;
  OperatorSimulator sim1(config, single_event_matcher(), s1);
  OperatorSimulator sim2(config, single_event_matcher(), s2);
  const auto events = uniform_stream(500);
  const auto r1 = sim1.run(events, 1234.0);
  const auto r2 = sim2.run(events, {RatePhase{500, 1234.0}});
  EXPECT_DOUBLE_EQ(r1.duration, r2.duration);
  EXPECT_DOUBLE_EQ(r1.max_latency, r2.max_latency);
}

TEST(OperatorSim, RejectsEmptyOrInvalidPhases) {
  auto config = base_sim(1);
  NullShedder shedder;
  OperatorSimulator sim(config, single_event_matcher(), shedder);
  EXPECT_THROW(sim.run(uniform_stream(5), std::vector<RatePhase>{}), ConfigError);
  EXPECT_THROW(sim.run(uniform_stream(5), {RatePhase{5, 0.0}}), ConfigError);
}

TEST(OperatorCostModel, FullCostIsAffineInWindows) {
  OperatorCostModel cost;
  cost.base_cost = 1.0;
  cost.per_window_cost = 0.5;
  EXPECT_DOUBLE_EQ(cost.full_cost(0), 1.0);
  EXPECT_DOUBLE_EQ(cost.full_cost(4), 3.0);
}

TEST(OperatorSim, RejectsNonPositiveRate) {
  auto config = base_sim(1);
  NullShedder shedder;
  OperatorSimulator sim(config, single_event_matcher(), shedder);
  EXPECT_THROW(sim.run(uniform_stream(5), 0.0), ConfigError);
}

}  // namespace
}  // namespace espice
