#include "datasets/stock.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace espice {
namespace {

StockConfig small_config() {
  StockConfig c;
  c.num_symbols = 50;
  c.num_leaders = 2;
  c.hot_followers_per_leader = 0;  // hot symbols tested separately
  c.seed = 11;
  return c;
}

TEST(StockGenerator, RegistersAllSymbols) {
  TypeRegistry reg;
  StockGenerator gen(small_config(), reg);
  EXPECT_EQ(reg.size(), 50u);
  EXPECT_EQ(reg.name_of(0), "S000");
  EXPECT_EQ(reg.name_of(49), "S049");
}

TEST(StockGenerator, LeadersAreTheFirstSymbols) {
  TypeRegistry reg;
  StockGenerator gen(small_config(), reg);
  ASSERT_EQ(gen.leaders().size(), 2u);
  EXPECT_EQ(gen.leaders()[0], 0);
  EXPECT_EQ(gen.leaders()[1], 1);
}

TEST(StockGenerator, GeneratesRequestedCount) {
  TypeRegistry reg;
  StockGenerator gen(small_config(), reg);
  EXPECT_EQ(gen.generate(777).size(), 777u);
}

TEST(StockGenerator, StreamIsGloballyOrdered) {
  TypeRegistry reg;
  StockGenerator gen(small_config(), reg);
  const auto events = gen.generate(5000);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
    EXPECT_GE(events[i].ts, events[i - 1].ts);
  }
}

TEST(StockGenerator, EverySymbolQuotesOncePerPeriod) {
  TypeRegistry reg;
  StockGenerator gen(small_config(), reg);
  const auto events = gen.generate(50 * 10);  // exactly 10 periods
  std::vector<int> counts(50, 0);
  for (const auto& e : events) ++counts[e.type];
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(StockGenerator, AggregateRateMatchesConfig) {
  TypeRegistry reg;
  StockGenerator gen(small_config(), reg);
  EXPECT_NEAR(gen.aggregate_rate(), 50.0 / 60.0, 1e-12);
  const auto events = gen.generate(5000);
  const double span = events.back().ts - events.front().ts;
  EXPECT_NEAR(5000.0 / span, gen.aggregate_rate(), 0.05);
}

TEST(StockGenerator, SameSeedReproducesStream) {
  TypeRegistry r1, r2;
  StockGenerator g1(small_config(), r1);
  StockGenerator g2(small_config(), r2);
  const auto e1 = g1.generate(2000);
  const auto e2 = g2.generate(2000);
  ASSERT_EQ(e1.size(), e2.size());
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].type, e2[i].type);
    EXPECT_DOUBLE_EQ(e1[i].ts, e2[i].ts);
    EXPECT_DOUBLE_EQ(e1[i].value, e2[i].value);
  }
}

TEST(StockGenerator, DifferentSeedsDiffer) {
  TypeRegistry r1, r2;
  auto c1 = small_config();
  auto c2 = small_config();
  c2.seed = 99;
  StockGenerator g1(c1, r1);
  StockGenerator g2(c2, r2);
  const auto e1 = g1.generate(500);
  const auto e2 = g2.generate(500);
  int same = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    if (e1[i].type == e2[i].type && e1[i].value == e2[i].value) ++same;
  }
  EXPECT_LT(same, 100);
}

TEST(StockGenerator, FollowersInLagOrderAreSortedByLag) {
  TypeRegistry reg;
  StockGenerator gen(small_config(), reg);
  const auto followers = gen.followers_in_lag_order(0, 10);
  ASSERT_EQ(followers.size(), 10u);
  for (std::size_t i = 1; i < followers.size(); ++i) {
    EXPECT_LE(gen.lag_of(followers[i - 1]), gen.lag_of(followers[i]));
    EXPECT_EQ(gen.leader_of(followers[i]), 0);
  }
}

TEST(StockGenerator, RequestingTooManyFollowersThrows) {
  TypeRegistry reg;
  StockGenerator gen(small_config(), reg);
  EXPECT_THROW(gen.followers_in_lag_order(0, 49), ConfigError);
}

TEST(StockGenerator, FollowersCopyLeaderDirectionWithinLag) {
  // Statistical check of the correlation structure eSPICE learns from:
  // after a leader move, follower quotes inside their influence interval
  // should agree with the leader's direction far more often than baseline.
  TypeRegistry reg;
  StockConfig c = small_config();
  c.follow_probability = 0.95;
  StockGenerator gen(c, reg);
  const auto events = gen.generate(30000);

  std::vector<std::pair<double, int>> last_move(2, {-1e18, 0});
  int agree = 0;
  int covered = 0;
  for (const auto& e : events) {
    if (e.type < 2) {
      last_move[e.type] = {e.ts, e.direction()};
      continue;
    }
    const auto leader = gen.leader_of(e.type);
    const double lag = gen.lag_of(e.type);
    const auto& [move_ts, move_dir] = last_move[leader];
    if (e.ts >= move_ts + lag && e.ts < move_ts + lag + c.hold_seconds) {
      ++covered;
      if (e.direction() == move_dir) ++agree;
    }
  }
  ASSERT_GT(covered, 1000);
  EXPECT_GT(static_cast<double>(agree) / covered, 0.75);
}

TEST(StockGenerator, BaselineRiseProbabilityShapesUninfluencedQuotes) {
  TypeRegistry reg;
  StockConfig c = small_config();
  c.follow_probability = 0.0;  // disable influence: everything is baseline
  c.baseline_rise_probability = 0.25;
  StockGenerator gen(c, reg);
  const auto events = gen.generate(20000);
  int rising = 0;
  int total = 0;
  for (const auto& e : events) {
    if (e.type < 2) continue;  // leaders use the flip walk
    ++total;
    if (e.direction() > 0) ++rising;
  }
  EXPECT_NEAR(static_cast<double>(rising) / total, 0.25, 0.02);
}

TEST(StockGenerator, ValuesAreNonZeroAndBounded) {
  TypeRegistry reg;
  StockGenerator gen(small_config(), reg);
  for (const auto& e : gen.generate(5000)) {
    EXPECT_NE(e.direction(), 0);
    EXPECT_LE(std::abs(e.value), 1.0);
    EXPECT_GE(std::abs(e.value), 0.05);
  }
}

TEST(StockGenerator, HotSymbolsQuoteSeveralTimesPerPeriod) {
  TypeRegistry reg;
  StockConfig c = small_config();
  c.hot_followers_per_leader = 3;
  c.hot_quotes_per_period = 4;
  StockGenerator gen(c, reg);
  // 6 hot symbols (3 per leader) with 4 quotes each + 44 regular = 68/period.
  const auto events = gen.generate(68 * 5);
  std::vector<int> counts(50, 0);
  for (const auto& e : events) ++counts[e.type];
  int hot_seen = 0;
  for (EventTypeId s = 2; s < 50; ++s) {
    if (gen.is_hot(s)) {
      ++hot_seen;
      EXPECT_EQ(counts[s], 20);  // 4 per period x 5 periods
    } else {
      EXPECT_EQ(counts[s], 5);
    }
  }
  EXPECT_EQ(hot_seen, 6);
  EXPECT_NEAR(gen.aggregate_rate(), 68.0 / 60.0, 1e-12);
}

TEST(StockGenerator, SequenceSymbolsAreSpreadNonHotFollowers) {
  TypeRegistry reg;
  StockConfig c = small_config();
  c.hot_followers_per_leader = 3;
  StockGenerator gen(c, reg);
  const auto seq = gen.sequence_symbols(0, 8);
  ASSERT_EQ(seq.size(), 8u);
  double prev = -1.0;
  for (EventTypeId s : seq) {
    EXPECT_FALSE(gen.is_hot(s));
    EXPECT_EQ(gen.leader_of(s), 0);
    EXPECT_GE(gen.lag_of(s), prev);
    prev = gen.lag_of(s);
  }
  // Spread: the span of chosen lags covers most of the followers' lag range.
  const auto all = gen.followers_in_lag_order(0, 21);  // leader 0 non-hot pool
  EXPECT_GT(gen.lag_of(seq.back()) - gen.lag_of(seq.front()),
            0.5 * (gen.lag_of(all.back()) - gen.lag_of(all.front())));
}

TEST(StockGenerator, RepetitionSymbolsAreHot) {
  TypeRegistry reg;
  StockConfig c = small_config();
  c.hot_followers_per_leader = 5;
  StockGenerator gen(c, reg);
  const auto reps = gen.repetition_symbols(1, 5);
  ASSERT_EQ(reps.size(), 5u);
  for (EventTypeId s : reps) {
    EXPECT_TRUE(gen.is_hot(s));
    EXPECT_EQ(gen.leader_of(s), 1);
  }
  EXPECT_THROW(gen.repetition_symbols(1, 6), ConfigError);
}

TEST(StockGenerator, RejectsInvalidConfig) {
  TypeRegistry reg;
  StockConfig c = small_config();
  c.num_leaders = c.num_symbols;
  EXPECT_THROW(StockGenerator(c, reg), ConfigError);
  TypeRegistry reg2;
  c = small_config();
  c.min_lag_seconds = 100.0;
  c.max_lag_seconds = 10.0;
  EXPECT_THROW(StockGenerator(c, reg2), ConfigError);
}

// --- edge cases -------------------------------------------------------------

TEST(StockGenerator, GenerateZeroYieldsEmptyStream) {
  TypeRegistry reg;
  StockGenerator gen(small_config(), reg);
  EXPECT_TRUE(gen.generate(0).empty());
}

TEST(StockGenerator, IncrementalGenerationContinuesTheStream) {
  // generate() called repeatedly must behave like one long stream: seq
  // gap-free across the call boundary, timestamps never moving backwards
  // (the jitter sort must not leak across batches).
  TypeRegistry reg1, reg2;
  StockConfig c = small_config();
  StockGenerator whole(c, reg1);
  StockGenerator pieces(c, reg2);

  const auto full = whole.generate(900);
  std::vector<Event> stitched;
  for (const std::size_t chunk : {300u, 300u, 300u}) {
    const auto part = pieces.generate(chunk);
    stitched.insert(stitched.end(), part.begin(), part.end());
  }
  ASSERT_EQ(stitched.size(), full.size());
  for (std::size_t i = 0; i < stitched.size(); ++i) {
    EXPECT_EQ(stitched[i].seq, i);
    if (i > 0) {
      EXPECT_GE(stitched[i].ts, stitched[i - 1].ts) << "index " << i;
    }
  }
  // Same seed, same chunk total -> identical stream regardless of batching.
  for (std::size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(stitched[i].type, full[i].type) << "index " << i;
    EXPECT_DOUBLE_EQ(stitched[i].ts, full[i].ts) << "index " << i;
  }
}

TEST(StockGenerator, MinimalUniverseWorks) {
  TypeRegistry reg;
  StockConfig c;
  c.num_symbols = 2;
  c.num_leaders = 1;
  c.hot_followers_per_leader = 0;
  StockGenerator gen(c, reg);
  const auto events = gen.generate(500);
  ASSERT_EQ(events.size(), 500u);
  for (const Event& e : events) {
    EXPECT_LT(e.type, 2) << "type outside the 2-symbol universe";
    EXPECT_NE(e.value, 0.0);
  }
}

TEST(StockGenerator, StreamSatisfiesTheEventContract) {
  // The contract time-based windowing relies on: strictly increasing seq,
  // monotone non-decreasing ts -- despite per-quote timing jitter.
  TypeRegistry reg;
  StockGenerator gen(small_config(), reg);
  const auto events = gen.generate(3000);
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_EQ(events[i].seq, events[i - 1].seq + 1);
    ASSERT_GE(events[i].ts, events[i - 1].ts) << "jitter broke stream order";
  }
}

}  // namespace
}  // namespace espice
