// CSV loader bad-row policies: fail fast, skip-and-count, stop-at-first --
// against the malformations real exports produce (junk numerics, wrong
// column counts, CRLF line endings, truncated final lines).
#include "datasets/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"

namespace espice {
namespace {

const std::string kHeader = "type,seq,ts,value,aux\n";

CsvReadOptions with_policy(BadRowPolicy p) {
  CsvReadOptions o;
  o.on_bad_row = p;
  return o;
}

TEST(CsvPolicy, FailPolicyThrowsTypedErrorNamingTheRow) {
  std::istringstream in(kHeader +
                        "A,0,0.0,1.0,0.0\n"
                        "A,1,0.5,oops,0.0\n");
  TypeRegistry reg;
  try {
    read_events_csv(in, reg, with_policy(BadRowPolicy::kFail));
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRow);
    EXPECT_NE(std::string(e.what()).find("row 3"), std::string::npos)
        << e.what();
  }
}

TEST(CsvPolicy, SkipPolicyCountsAndKeepsGoodRows) {
  std::istringstream in(kHeader +
                        "A,0,0.0,1.0,0.0\n"
                        "B,1,0.5,nonsense,0.0\n"   // junk numeric
                        "A,2,1.0\n"                // missing fields
                        "A,3,1.5,2.0,0.0,extra\n"  // extra field
                        "A,4,2.0,1.25x,0.0\n"      // trailing garbage
                        "A,5,2.5,-1.0,0.5\n");
  TypeRegistry reg;
  const CsvReadResult r =
      read_events_csv(in, reg, with_policy(BadRowPolicy::kSkip));
  EXPECT_EQ(r.bad_rows, 4u);
  EXPECT_EQ(r.errors.size(), 4u);
  EXPECT_FALSE(r.stopped_early);
  ASSERT_EQ(r.events.size(), 2u);
  EXPECT_EQ(r.events[0].seq, 0u);
  EXPECT_EQ(r.events[1].seq, 5u);
  EXPECT_DOUBLE_EQ(r.events[1].value, -1.0);
}

TEST(CsvPolicy, StopPolicyKeepsThePrefix) {
  std::istringstream in(kHeader +
                        "A,0,0.0,1.0,0.0\n"
                        "A,1,0.5,2.0,0.0\n"
                        "A,broken\n"
                        "A,3,1.5,2.0,0.0\n");
  TypeRegistry reg;
  const CsvReadResult r =
      read_events_csv(in, reg, with_policy(BadRowPolicy::kStop));
  EXPECT_TRUE(r.stopped_early);
  EXPECT_EQ(r.bad_rows, 1u);
  ASSERT_EQ(r.events.size(), 2u);
  EXPECT_EQ(r.events.back().seq, 1u);
}

TEST(CsvPolicy, CrlfLineEndingsParseClean) {
  std::istringstream in("type,seq,ts,value,aux\r\n"
                        "A,0,0.0,1.0,0.5\r\n"
                        "B,1,0.5,-2.0,0.25\r\n");
  TypeRegistry reg;
  const CsvReadResult r = read_events_csv(in, reg, CsvReadOptions{});
  EXPECT_EQ(r.bad_rows, 0u);
  ASSERT_EQ(r.events.size(), 2u);
  EXPECT_DOUBLE_EQ(r.events[0].aux, 0.5);
  EXPECT_DOUBLE_EQ(r.events[1].value, -2.0);
}

TEST(CsvPolicy, TruncatedFinalLineIsOneBadRow) {
  // Killed mid-write: the last line ends mid-field, no trailing newline.
  std::istringstream in(kHeader +
                        "A,0,0.0,1.0,0.0\n"
                        "A,1,0.5,2.0,0.0\n"
                        "A,2,1.0,3.");
  TypeRegistry reg;
  const CsvReadResult r =
      read_events_csv(in, reg, with_policy(BadRowPolicy::kSkip));
  ASSERT_EQ(r.events.size(), 2u);
  EXPECT_EQ(r.bad_rows, 1u);
  EXPECT_NE(r.errors[0].find("row 4"), std::string::npos) << r.errors[0];
}

TEST(CsvPolicy, BadRowNeverInternsItsType) {
  // The bad row's type name must not leak into the registry: interning
  // happens only after the whole row parsed.
  std::istringstream in(kHeader +
                        "Good,0,0.0,1.0,0.0\n"
                        "Evil,1,0.5,junk,0.0\n");
  TypeRegistry reg;
  const CsvReadResult r =
      read_events_csv(in, reg, with_policy(BadRowPolicy::kSkip));
  EXPECT_EQ(r.events.size(), 1u);
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_EQ(reg.name_of(r.events[0].type), "Good");
}

TEST(CsvPolicy, StreamOrderViolationStillConfigError) {
  std::istringstream in(kHeader +
                        "A,5,1.0,1.0,0.0\n"
                        "A,3,2.0,1.0,0.0\n");
  TypeRegistry reg;
  CsvReadOptions o;
  o.require_stream_order = true;
  EXPECT_THROW(read_events_csv(in, reg, o), ConfigError);
}

TEST(CsvPolicy, LegacyInterfaceStillThrowsOnBadRows) {
  std::istringstream in(kHeader + "A,zero,0.0,1.0,0.0\n");
  TypeRegistry reg;
  // The legacy vector-returning reader keeps fail-fast semantics, and its
  // Error still satisfies old catch(ConfigError) sites.
  EXPECT_THROW(read_events_csv(in, reg), ConfigError);
}

TEST(CsvPolicy, RoundTripThroughWriteAndRead) {
  TypeRegistry reg;
  std::vector<Event> events;
  for (std::uint64_t i = 0; i < 5; ++i) {
    Event e;
    e.type = reg.intern(i % 2 == 0 ? "A" : "B");
    e.seq = i;
    e.ts = 0.5 * static_cast<double>(i);
    e.value = static_cast<double>(i) - 2.0;
    e.aux = 0.125;
    events.push_back(e);
  }
  std::ostringstream out;
  write_events_csv(out, events, reg);
  std::istringstream in(out.str());
  TypeRegistry reg2;
  const CsvReadResult r = read_events_csv(in, reg2, CsvReadOptions{});
  EXPECT_EQ(r.bad_rows, 0u);
  ASSERT_EQ(r.events.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(r.events[i].seq, events[i].seq);
    EXPECT_DOUBLE_EQ(r.events[i].value, events[i].value);
  }
}

}  // namespace
}  // namespace espice
