#include "datasets/rtls.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace espice {
namespace {

RtlsConfig small_config() {
  RtlsConfig c;
  c.num_defenders = 8;
  c.num_others = 2;
  c.markers_per_striker = 3;
  c.seed = 21;
  return c;
}

TEST(RtlsGenerator, RegistersAllObjectTypes) {
  TypeRegistry reg;
  RtlsGenerator gen(small_config(), reg);
  EXPECT_EQ(reg.size(), 2u + 8u + 2u);
  EXPECT_EQ(gen.objects(), 12u);
  EXPECT_TRUE(reg.contains("STR0"));
  EXPECT_TRUE(reg.contains("STR1"));
  EXPECT_TRUE(reg.contains("DF00"));
  EXPECT_TRUE(reg.contains("DF07"));
  EXPECT_TRUE(reg.contains("OBJ00"));
}

TEST(RtlsGenerator, MarkersAreDisjointBetweenStrikers) {
  TypeRegistry reg;
  RtlsGenerator gen(small_config(), reg);
  const auto& m0 = gen.markers_of(0);
  const auto& m1 = gen.markers_of(1);
  ASSERT_EQ(m0.size(), 3u);
  ASSERT_EQ(m1.size(), 3u);
  for (EventTypeId a : m0) {
    EXPECT_EQ(std::count(m1.begin(), m1.end(), a), 0);
  }
}

TEST(RtlsGenerator, StreamIsGloballyOrdered) {
  TypeRegistry reg;
  RtlsGenerator gen(small_config(), reg);
  const auto events = gen.generate(5000);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, events[i - 1].seq + 1);
    EXPECT_GE(events[i].ts, events[i - 1].ts);
  }
}

TEST(RtlsGenerator, EveryObjectEmitsOncePerSecond) {
  TypeRegistry reg;
  RtlsGenerator gen(small_config(), reg);
  const auto events = gen.generate(12 * 20);  // 20 seconds
  std::vector<int> counts(reg.size(), 0);
  for (const auto& e : events) ++counts[e.type];
  for (int c : counts) EXPECT_EQ(c, 20);
}

TEST(RtlsGenerator, SameSeedReproducesStream) {
  TypeRegistry r1, r2;
  RtlsGenerator g1(small_config(), r1);
  RtlsGenerator g2(small_config(), r2);
  const auto e1 = g1.generate(2000);
  const auto e2 = g2.generate(2000);
  for (std::size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].type, e2[i].type);
    EXPECT_DOUBLE_EQ(e1[i].value, e2[i].value);
  }
}

TEST(RtlsGenerator, PossessionEpisodesAlternateAndExist) {
  TypeRegistry reg;
  RtlsGenerator gen(small_config(), reg);
  const auto events = gen.generate(20000);
  int possession[2] = {0, 0};
  bool both_possess_simultaneously = false;
  double s0 = -1.0;
  for (const auto& e : events) {
    if (e.type == 0 && e.value > 0) {
      ++possession[0];
      s0 = e.ts;
    }
    if (e.type == 1 && e.value > 0) {
      ++possession[1];
      // Strikers emit once per second; simultaneous possession would put
      // their positive events within the same second.
      if (s0 >= 0.0 && std::abs(e.ts - s0) < 1.0) {
        both_possess_simultaneously = true;
      }
    }
  }
  EXPECT_GT(possession[0], 50);
  EXPECT_GT(possession[1], 50);
  EXPECT_FALSE(both_possess_simultaneously);
}

TEST(RtlsGenerator, MarkersDefendDuringTheirStrikersPossession) {
  TypeRegistry reg;
  RtlsConfig c = small_config();
  c.marker_response = 1.0;
  c.noise_defend_probability = 0.0;
  RtlsGenerator gen(c, reg);
  const auto events = gen.generate(30000);

  // During striker 0 possession, from reaction lag on, markers of striker 0
  // defend (value > 0) while markers of striker 1 do not.
  bool str0_possessing = false;
  double possession_start = -1.0;
  int marker_defends = 0;
  int foreign_defends = 0;
  const auto& m0 = gen.markers_of(0);
  const auto& m1 = gen.markers_of(1);
  for (const auto& e : events) {
    if (e.type == 0) {
      const bool now = e.value > 0;
      if (now && !str0_possessing) possession_start = e.ts;
      str0_possessing = now;
      continue;
    }
    if (!str0_possessing || possession_start < 0.0) continue;
    const bool late_in_episode =
        e.ts > possession_start + c.max_reaction_lag_seconds;
    if (!late_in_episode) continue;
    if (e.value > 0 &&
        std::find(m0.begin(), m0.end(), e.type) != m0.end()) {
      ++marker_defends;
    }
    if (e.value > 0 &&
        std::find(m1.begin(), m1.end(), e.type) != m1.end()) {
      ++foreign_defends;
    }
  }
  EXPECT_GT(marker_defends, 100);
  EXPECT_EQ(foreign_defends, 0);
}

TEST(RtlsGenerator, NoiseDefendEventsAppearWhenEnabled) {
  TypeRegistry reg;
  RtlsConfig c = small_config();
  c.marker_response = 0.0;  // only noise can defend
  c.noise_defend_probability = 0.1;
  RtlsGenerator gen(c, reg);
  const auto events = gen.generate(20000);
  int defends = 0;
  for (const auto& e : events) {
    if (e.type >= 2 && e.type < 10 && e.value > 0) ++defends;
  }
  EXPECT_GT(defends, 500);
}

TEST(RtlsGenerator, StrikersNeverBothRequested) {
  TypeRegistry reg;
  RtlsGenerator gen(small_config(), reg);
  EXPECT_EQ(gen.striker_types().size(), 2u);
  EXPECT_EQ(gen.defender_types().size(), 8u);
  EXPECT_NEAR(gen.aggregate_rate(), 12.0, 1e-12);
}

TEST(RtlsGenerator, RejectsInvalidConfig) {
  TypeRegistry reg;
  RtlsConfig c = small_config();
  c.markers_per_striker = 5;  // 2 * 5 > 8 defenders
  EXPECT_THROW(RtlsGenerator(c, reg), ConfigError);
  TypeRegistry reg2;
  c = small_config();
  c.possession_min_seconds = 10.0;
  c.possession_max_seconds = 5.0;
  EXPECT_THROW(RtlsGenerator(c, reg2), ConfigError);
}

// --- edge cases -------------------------------------------------------------

TEST(RtlsGenerator, GenerateZeroYieldsEmptyStream) {
  TypeRegistry reg;
  RtlsGenerator gen(small_config(), reg);
  EXPECT_TRUE(gen.generate(0).empty());
}

TEST(RtlsGenerator, IncrementalGenerationContinuesTheStream) {
  // Batched generation must equal one long run: seq gap-free across the
  // call boundary, timestamps monotone, identical content for one seed.
  TypeRegistry reg1, reg2;
  const RtlsConfig c = small_config();
  RtlsGenerator whole(c, reg1);
  RtlsGenerator pieces(c, reg2);

  const auto full = whole.generate(720);
  std::vector<Event> stitched;
  for (const std::size_t chunk : {240u, 240u, 240u}) {
    const auto part = pieces.generate(chunk);
    stitched.insert(stitched.end(), part.begin(), part.end());
  }
  ASSERT_EQ(stitched.size(), full.size());
  for (std::size_t i = 0; i < stitched.size(); ++i) {
    EXPECT_EQ(stitched[i].seq, i);
    if (i > 0) {
      EXPECT_GE(stitched[i].ts, stitched[i - 1].ts) << "index " << i;
    }
    EXPECT_EQ(stitched[i].type, full[i].type) << "index " << i;
    EXPECT_DOUBLE_EQ(stitched[i].ts, full[i].ts) << "index " << i;
  }
}

TEST(RtlsGenerator, StreamSatisfiesTheEventContract) {
  TypeRegistry reg;
  RtlsGenerator gen(small_config(), reg);
  const auto events = gen.generate(2500);
  for (std::size_t i = 1; i < events.size(); ++i) {
    ASSERT_EQ(events[i].seq, events[i - 1].seq + 1);
    ASSERT_GE(events[i].ts, events[i - 1].ts)
        << "sub-second jitter broke stream order";
  }
  for (const Event& e : events) {
    EXPECT_LT(e.type, gen.objects()) << "type outside the object universe";
  }
}

TEST(RtlsGenerator, NoNoiseDefendsWhenDisabled) {
  // With noise off, a defender only defends while marking its striker's
  // possession: every rising defender event must fall inside an episode of
  // its assigned striker.  (Edge configuration: probability exactly 0.)
  TypeRegistry reg;
  RtlsConfig c = small_config();
  c.noise_defend_probability = 0.0;
  c.marker_response = 1.0;
  RtlsGenerator gen(c, reg);
  const auto events = gen.generate(2000);

  // Unassigned defenders must never defend.
  std::vector<bool> assigned(gen.objects(), false);
  for (std::size_t s = 0; s < 2; ++s) {
    for (EventTypeId d : gen.markers_of(s)) assigned[d] = true;
  }
  for (const Event& e : events) {
    const auto& defenders = gen.defender_types();
    const bool is_defender =
        std::find(defenders.begin(), defenders.end(), e.type) !=
        defenders.end();
    if (is_defender && !assigned[e.type]) {
      EXPECT_LE(e.value, 0.0)
          << "unassigned defender " << e.type << " defended with noise off";
    }
  }
}

}  // namespace
}  // namespace espice
