// CSV loader under injected I/O faults: file reads go through the IoEnv
// seam, so a mid-read EIO or a failed open surfaces as a typed
// espice::Error{kIo} -- an I/O fault is NOT a bad row, and no on_bad_row
// policy may swallow it.  With the fault env installed but nothing armed,
// loading is bit-identical to the real-syscall path (seam transparency).
#include "datasets/csv.hpp"

#include <gtest/gtest.h>

#include <cerrno>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "support/io_fault.hpp"
#include "support/temp_dir.hpp"

namespace espice {
namespace {

using test_support::IoFaultHarness;
using test_support::TempDir;

CsvReadOptions with_policy(BadRowPolicy p) {
  CsvReadOptions o;
  o.on_bad_row = p;
  return o;
}

/// Writes a CSV large enough that read_file_bytes needs several 64 KiB
/// read() chunks, so a fault can land genuinely mid-file.
std::string write_large_csv(const TempDir& dir, std::size_t rows,
                            std::size_t bad_row_every = 0) {
  const std::string path = (dir.path() / "events.csv").string();
  std::ofstream out(path);
  out << "type,seq,ts,value,aux\n";
  for (std::size_t i = 0; i < rows; ++i) {
    if (bad_row_every != 0 && i % bad_row_every == bad_row_every - 1) {
      out << "T" << i % 7 << "," << i << ",garbage,1.0,0.0\n";
    } else {
      out << "T" << i % 7 << "," << i << "," << static_cast<double>(i) * 0.25
          << ",1.5,0.0\n";
    }
  }
  out.close();
  return path;
}

TEST(CsvIoFault, MidReadFaultIsTypedIoUnderEveryBadRowPolicy) {
  TempDir dir("csv-io");
  // ~8000 rows x ~18 bytes ≈ 140 KiB: at least three read chunks.
  const std::string path = write_large_csv(dir, 8000);
  for (const BadRowPolicy policy :
       {BadRowPolicy::kFail, BadRowPolicy::kSkip, BadRowPolicy::kStop}) {
    SCOPED_TRACE("policy=" + std::to_string(static_cast<int>(policy)));
    IoFaultHarness harness;
    harness.arm({"csv.read", 2, EIO, false, false, 0});  // second chunk
    TypeRegistry reg;
    try {
      load_events_csv(path, reg, with_policy(policy));
      FAIL() << "a mid-read I/O fault must throw, not be policy-swallowed";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), ErrorCode::kIo);
      EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
          << e.what();
    }
    EXPECT_EQ(harness.fired(), 1u);
    EXPECT_GE(harness.counts().at("csv.read"), 2u)
        << "file too small: the fault never landed mid-read";
  }
}

TEST(CsvIoFault, OpenFaultIsTypedIo) {
  TempDir dir("csv-open");
  const std::string path = write_large_csv(dir, 10);
  IoFaultHarness harness;
  harness.arm({"csv.open", 1, EACCES, false, false, 0});
  TypeRegistry reg;
  try {
    load_events_csv(path, reg, CsvReadOptions{});
    FAIL() << "an open failure must throw typed";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIo);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
  // The legacy bool overload routes through the same seam.
  harness.arm({"csv.open", 1, EACCES, false, false, 0});
  EXPECT_THROW(load_events_csv(path, reg, /*require_stream_order=*/true),
               Error);
}

TEST(CsvIoFault, NoFaultEnvIsTransparentAndBadRowPolicyStillApplies) {
  TempDir dir("csv-clean");
  // A bad row every 100: the on_bad_row machinery must keep working
  // exactly as before with the seam installed.
  const std::string path = write_large_csv(dir, 2000, /*bad_row_every=*/100);

  TypeRegistry reg_plain;
  const CsvReadResult plain =
      load_events_csv(path, reg_plain, with_policy(BadRowPolicy::kSkip));

  IoFaultHarness harness;
  TypeRegistry reg_seam;
  const CsvReadResult seam =
      load_events_csv(path, reg_seam, with_policy(BadRowPolicy::kSkip));
  EXPECT_EQ(seam.bad_rows, plain.bad_rows);
  EXPECT_EQ(seam.bad_rows, 20u);
  ASSERT_EQ(seam.events.size(), plain.events.size());
  for (std::size_t i = 0; i < seam.events.size(); ++i) {
    EXPECT_EQ(seam.events[i].seq, plain.events[i].seq);
    EXPECT_EQ(seam.events[i].type, plain.events[i].type);
    EXPECT_DOUBLE_EQ(seam.events[i].ts, plain.events[i].ts);
  }
  const auto counts = harness.counts();
  EXPECT_EQ(counts.at("csv.open"), 1u);
  EXPECT_GE(counts.at("csv.read"), 2u) << "single-chunk read: file too small";
}

}  // namespace
}  // namespace espice
