#include "datasets/csv.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "datasets/stock.hpp"

namespace espice {
namespace {

std::vector<Event> sample_events(TypeRegistry& reg) {
  std::vector<Event> events;
  const auto a = reg.intern("alpha");
  const auto b = reg.intern("beta");
  for (int i = 0; i < 5; ++i) {
    Event e;
    e.type = i % 2 == 0 ? a : b;
    e.seq = static_cast<std::uint64_t>(i);
    e.ts = 0.5 * i;
    e.value = i % 2 == 0 ? 1.25 : -2.5;
    e.aux = static_cast<double>(i);
    events.push_back(e);
  }
  return events;
}

TEST(Csv, RoundTripPreservesEvents) {
  TypeRegistry reg;
  const auto events = sample_events(reg);
  std::stringstream buffer;
  write_events_csv(buffer, events, reg);

  TypeRegistry reg2;
  const auto loaded = read_events_csv(buffer, reg2);
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(reg2.name_of(loaded[i].type), reg.name_of(events[i].type));
    EXPECT_EQ(loaded[i].seq, events[i].seq);
    EXPECT_DOUBLE_EQ(loaded[i].ts, events[i].ts);
    EXPECT_DOUBLE_EQ(loaded[i].value, events[i].value);
    EXPECT_DOUBLE_EQ(loaded[i].aux, events[i].aux);
  }
}

TEST(Csv, WriterEmitsHeader) {
  TypeRegistry reg;
  std::stringstream buffer;
  write_events_csv(buffer, {}, reg);
  std::string first_line;
  std::getline(buffer, first_line);
  EXPECT_EQ(first_line, "type,seq,ts,value,aux");
}

TEST(Csv, ReaderSkipsHeaderAndEmptyLines) {
  TypeRegistry reg;
  std::stringstream in("type,seq,ts,value,aux\nX,0,1.0,2.0,3.0\n\n");
  const auto events = read_events_csv(in, reg);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(reg.name_of(events[0].type), "X");
}

TEST(Csv, ReaderWorksWithoutHeader) {
  TypeRegistry reg;
  std::stringstream in("X,0,1.0,2.0,3.0\nY,1,2.0,-1.0,0.0\n");
  const auto events = read_events_csv(in, reg);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].seq, 1u);
}

TEST(Csv, MalformedNumericFieldThrows) {
  TypeRegistry reg;
  std::stringstream in("X,zero,1.0,2.0,3.0\n");
  EXPECT_THROW(read_events_csv(in, reg), ConfigError);
}

TEST(Csv, MissingFieldThrows) {
  TypeRegistry reg;
  std::stringstream in("X,0,1.0\n");
  EXPECT_THROW(read_events_csv(in, reg), ConfigError);
}

TEST(Csv, FileRoundTripThroughDisk) {
  TypeRegistry reg;
  StockConfig c;
  c.num_symbols = 10;
  c.num_leaders = 2;
  StockGenerator gen(c, reg);
  const auto events = gen.generate(500);

  const std::string path = testing::TempDir() + "/espice_csv_test.csv";
  save_events_csv(path, events, reg);
  TypeRegistry reg2;
  const auto loaded = load_events_csv(path, reg2);
  ASSERT_EQ(loaded.size(), events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    // The loader interns names in stream order, so compare by name.
    EXPECT_EQ(reg2.name_of(loaded[i].type), reg.name_of(events[i].type));
    EXPECT_EQ(loaded[i].seq, events[i].seq);
  }
}

TEST(Csv, LoadFromMissingFileThrows) {
  TypeRegistry reg;
  EXPECT_THROW(load_events_csv("/nonexistent/path/events.csv", reg),
               ConfigError);
}

// --- edge cases: malformed rows, empty input, stream order ------------------

TEST(Csv, EmptyInputYieldsNoEvents) {
  TypeRegistry reg;
  std::stringstream empty("");
  EXPECT_TRUE(read_events_csv(empty, reg).empty());

  std::stringstream header_only("type,seq,ts,value,aux\n");
  EXPECT_TRUE(read_events_csv(header_only, reg).empty());

  std::stringstream blank_lines("\n\n\n");
  EXPECT_TRUE(read_events_csv(blank_lines, reg).empty());
}

TEST(Csv, EmptyFileOnDiskLoadsAsEmptyStream) {
  const std::string path = testing::TempDir() + "/espice_csv_empty.csv";
  { std::ofstream out(path); }
  TypeRegistry reg;
  EXPECT_TRUE(load_events_csv(path, reg).empty());
}

TEST(Csv, ShortRowsThrowNamingTheMissingColumn) {
  TypeRegistry reg;
  for (const char* row : {"X\n", "X,0\n", "X,0,1.0\n", "X,0,1.0,2.0\n"}) {
    std::stringstream in(row);
    EXPECT_THROW(read_events_csv(in, reg), ConfigError) << row;
  }
}

TEST(Csv, ExtraFieldsThrow) {
  TypeRegistry reg;
  std::stringstream in("X,0,1.0,2.0,3.0,surprise\n");
  EXPECT_THROW(read_events_csv(in, reg), ConfigError);
}

TEST(Csv, EmptyNumericFieldThrows) {
  TypeRegistry reg;
  std::stringstream in("X,,1.0,2.0,3.0\n");
  EXPECT_THROW(read_events_csv(in, reg), ConfigError);
}

TEST(Csv, PartiallyNumericFieldThrows) {
  // "1.5x" must be rejected as malformed, not silently read as 1.5.
  TypeRegistry reg;
  for (const char* row :
       {"X,1x,1.0,2.0,3.0\n", "X,0,1.5x,2.0,3.0\n", "X,0,1.0,2.0,3.0z\n"}) {
    std::stringstream in(row);
    EXPECT_THROW(read_events_csv(in, reg), ConfigError) << row;
  }
}

TEST(Csv, OutOfRangeNumericFieldThrows) {
  TypeRegistry reg;
  std::stringstream in("X,99999999999999999999999999,1.0,2.0,3.0\n");
  EXPECT_THROW(read_events_csv(in, reg), ConfigError);
}

TEST(Csv, WindowsLineEndingsAreAccepted) {
  TypeRegistry reg;
  std::stringstream in("type,seq,ts,value,aux\r\nX,0,1.0,2.0,3.0\r\n");
  const auto events = read_events_csv(in, reg);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_DOUBLE_EQ(events[0].aux, 3.0);
}

TEST(Csv, OutOfOrderTimestampsRejectedWhenOrderRequired) {
  // ts moves backwards between rows: fine by default (the loader is
  // permissive), fatal under require_stream_order.
  const std::string data = "X,0,5.0,1.0,0.0\nX,1,4.0,1.0,0.0\n";
  TypeRegistry reg;
  std::stringstream lenient(data);
  EXPECT_EQ(read_events_csv(lenient, reg).size(), 2u);

  std::stringstream strict(data);
  EXPECT_THROW(read_events_csv(strict, reg, /*require_stream_order=*/true),
               ConfigError);
}

TEST(Csv, NonIncreasingSeqRejectedWhenOrderRequired) {
  for (const char* data : {"X,3,1.0,1.0,0.0\nX,3,2.0,1.0,0.0\n",    // equal
                           "X,3,1.0,1.0,0.0\nX,2,2.0,1.0,0.0\n"}) {  // drop
    TypeRegistry reg;
    std::stringstream strict(data);
    EXPECT_THROW(read_events_csv(strict, reg, /*require_stream_order=*/true),
                 ConfigError)
        << data;
  }
}

TEST(Csv, ValidateStreamOrderAcceptsTiedTimestamps) {
  // Equal timestamps are legal (seq breaks the tie); only seq must be
  // strictly increasing.
  TypeRegistry reg;
  std::stringstream in("X,0,1.0,1.0,0.0\nX,1,1.0,1.0,0.0\nX,2,1.5,1.0,0.0\n");
  const auto events = read_events_csv(in, reg, /*require_stream_order=*/true);
  EXPECT_EQ(events.size(), 3u);
  validate_stream_order(events);  // must not throw
}

TEST(Csv, GeneratorStreamsPassStrictOrderRoundTrip) {
  // The bundled generators must produce streams the strict loader accepts.
  TypeRegistry reg;
  StockConfig c;
  c.num_symbols = 12;
  c.num_leaders = 2;
  StockGenerator gen(c, reg);
  const auto events = gen.generate(2000);

  std::stringstream buffer;
  write_events_csv(buffer, events, reg);
  TypeRegistry reg2;
  const auto loaded =
      read_events_csv(buffer, reg2, /*require_stream_order=*/true);
  EXPECT_EQ(loaded.size(), events.size());
}

TEST(Csv, SaveToUnwritablePathThrows) {
  TypeRegistry reg;
  EXPECT_THROW(save_events_csv("/nonexistent/dir/out.csv", {}, reg),
               ConfigError);
}

}  // namespace
}  // namespace espice
