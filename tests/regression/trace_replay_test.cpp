// Trace-replay regression gate: the committed disordered trace
// (tests/data/trace_stream.csv) replayed through the canonical event-time
// configurations must digest EXACTLY to the committed golden
// (tests/data/trace_golden.txt).  Any observable behaviour change in the
// event-time pipeline -- matches, late handling, revisions, watermarks,
// per-shard counters -- fails this test with a digest diff.
//
// After an INTENDED behaviour change, regenerate the golden:
//   ESPICE_REGEN_GOLDEN=1 ./regression_trace_replay_test
// (or `trace_replay regen` from the tools/ CLI) and commit the diff.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "cep/type_registry.hpp"
#include "datasets/csv.hpp"
#include "harness/trace_replay.hpp"

namespace espice {
namespace {

std::string data_path(const std::string& file) {
  return std::string(ESPICE_SOURCE_DIR) + "/tests/data/" + file;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(TraceReplay, CommittedTraceMatchesGolden) {
  const TraceReplayResult result =
      replay_trace_csv(data_path("trace_stream.csv"));
  const std::string digest = replay_digest(result);

  if (std::getenv("ESPICE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(data_path("trace_golden.txt"),
                      std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good());
    out << digest;
    GTEST_SKIP() << "golden regenerated; commit tests/data/trace_golden.txt";
  }

  const std::string golden = read_file(data_path("trace_golden.txt"));
  EXPECT_EQ(digest, golden)
      << "event-time pipeline output changed; if intended, regenerate with "
         "ESPICE_REGEN_GOLDEN=1 and commit the golden diff";
}

TEST(TraceReplay, CommittedTraceExercisesTheLatePath) {
  // The fixture's whole point: stragglers displaced beyond the bound, so
  // the golden pins the revise path, not just the happy path.
  const TraceReplayResult result =
      replay_trace_csv(data_path("trace_stream.csv"));
  ASSERT_EQ(result.sections.size(), 3u);
  EXPECT_GT(result.measured_disorder, result.options.disorder_bound);
  for (const TraceReplaySection& s : result.sections) {
    EXPECT_GT(s.report.matches.size(), 0u) << s.name;
    EXPECT_GT(s.report.late_events, 0u) << s.name;
  }
}

TEST(TraceReplay, ReplayIsDeterministic) {
  const auto events = make_regression_trace(7, 600);
  const std::string a = replay_digest(replay_trace(events));
  const std::string b = replay_digest(replay_trace(events));
  EXPECT_EQ(a, b);
}

TEST(TraceReplay, GeneratorIsStable) {
  // The committed CSV was produced by make_regression_trace(7, 600); the
  // generator drifting silently would make `trace_replay generate`
  // disagree with the committed fixture.
  const auto events = make_regression_trace(7, 600);
  TypeRegistry registry;
  for (int t = 0; t < 6; ++t) registry.intern("t" + std::to_string(t));
  std::ostringstream csv;
  write_events_csv(csv, events, registry);
  EXPECT_EQ(csv.str(), read_file(data_path("trace_stream.csv")));
}

}  // namespace
}  // namespace espice
