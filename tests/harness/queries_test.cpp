#include "harness/queries.hpp"

#include <gtest/gtest.h>

#include "sim/operator_sim.hpp"

namespace espice {
namespace {

// Counts golden matches of `query` over `events`.
std::size_t golden_matches(const QueryDef& query,
                           const std::vector<Event>& events) {
  std::size_t matches = 0;
  const Matcher matcher = query.make_matcher();
  run_pipeline(events, query.window, matcher, nullptr, 0.0,
               [&](const WindowView&, const std::vector<ComplexEvent>& ms) {
                 matches += ms.size();
               });
  return matches;
}

class RtlsQueries : public ::testing::Test {
 protected:
  void SetUp() override {
    gen_ = std::make_unique<RtlsGenerator>(RtlsConfig{}, registry_);
    events_ = gen_->generate(40'000);
  }
  TypeRegistry registry_;
  std::unique_ptr<RtlsGenerator> gen_;
  std::vector<Event> events_;
};

class StockQueries : public ::testing::Test {
 protected:
  void SetUp() override {
    gen_ = std::make_unique<StockGenerator>(StockConfig{}, registry_);
    events_ = gen_->generate(80'000);
  }
  TypeRegistry registry_;
  std::unique_ptr<StockGenerator> gen_;
  std::vector<Event> events_;
};

TEST_F(RtlsQueries, Q1StructureMatchesThePaper) {
  const QueryDef q = make_q1(*gen_, 4);
  EXPECT_EQ(q.pattern.kind, PatternKind::kTriggerAny);
  EXPECT_EQ(q.pattern.any_n, 4u);
  EXPECT_TRUE(q.pattern.any_distinct_types);
  EXPECT_EQ(q.window.span_kind, WindowSpan::kTime);
  EXPECT_DOUBLE_EQ(q.window.span_seconds, 15.0);
  EXPECT_EQ(q.window.open_kind, WindowOpen::kPredicate);
}

TEST_F(RtlsQueries, Q1DetectsManMarkingSituations) {
  for (std::size_t n : {2u, 4u, 6u}) {
    EXPECT_GT(golden_matches(make_q1(*gen_, n), events_), 20u)
        << "no matches for n=" << n;
  }
}

TEST_F(RtlsQueries, Q1LargerPatternsMatchLessOrEqual) {
  const auto m2 = golden_matches(make_q1(*gen_, 2), events_);
  const auto m6 = golden_matches(make_q1(*gen_, 6), events_);
  EXPECT_GE(m2, m6);
}

TEST_F(RtlsQueries, Q1LastSelectionAlsoMatches) {
  EXPECT_GT(golden_matches(make_q1(*gen_, 3, 15.0, SelectionPolicy::kLast),
                           events_),
            20u);
}

TEST_F(StockQueries, Q2StructureMatchesThePaper) {
  const QueryDef q = make_q2(*gen_, 20);
  EXPECT_EQ(q.pattern.kind, PatternKind::kTriggerAny);
  EXPECT_TRUE(q.pattern.any_candidates.is_any());
  EXPECT_EQ(q.pattern.any_direction, DirectionFilter::kRising);
  EXPECT_EQ(q.window.span_kind, WindowSpan::kTime);
  EXPECT_DOUBLE_EQ(q.window.span_seconds, 240.0);
}

TEST_F(StockQueries, Q2DetectsCorrelatedRises) {
  EXPECT_GT(golden_matches(make_q2(*gen_, 10), events_), 50u);
  EXPECT_GT(golden_matches(make_q2(*gen_, 50), events_), 50u);
}

TEST_F(StockQueries, Q3StructureMatchesThePaper) {
  const QueryDef q = make_q3(*gen_, 1200);
  EXPECT_EQ(q.pattern.kind, PatternKind::kSequence);
  EXPECT_EQ(q.pattern.elements.size(), 20u);
  EXPECT_EQ(q.window.span_kind, WindowSpan::kCount);
  EXPECT_EQ(q.window.span_events, 1200u);
  EXPECT_EQ(q.window.open_kind, WindowOpen::kPredicate);
  // All elements are rising filters on distinct single symbols.
  for (const auto& el : q.pattern.elements) {
    EXPECT_EQ(el.types.explicit_count(), 1u);
    EXPECT_EQ(el.direction, DirectionFilter::kRising);
  }
}

TEST_F(StockQueries, Q3SequenceSymbolsAreLagOrderedFollowers) {
  const QueryDef q = make_q3(*gen_, 1200);
  double prev_lag = -1.0;
  for (const auto& el : q.pattern.elements) {
    const EventTypeId sym = el.types.members().front();
    EXPECT_EQ(gen_->leader_of(sym), gen_->leaders().front());
    EXPECT_GE(gen_->lag_of(sym), prev_lag);
    prev_lag = gen_->lag_of(sym);
  }
}

TEST_F(StockQueries, Q3DetectsSequences) {
  EXPECT_GT(golden_matches(make_q3(*gen_, 1800), events_), 10u);
}

TEST_F(StockQueries, Q3LargerWindowsMatchMore) {
  const auto small = golden_matches(make_q3(*gen_, 300), events_);
  const auto large = golden_matches(make_q3(*gen_, 2000), events_);
  EXPECT_GE(large, small);
}

TEST_F(StockQueries, Q4StructureMatchesThePaper) {
  const QueryDef q = make_q4(*gen_, 1200);
  EXPECT_EQ(q.pattern.kind, PatternKind::kSequence);
  EXPECT_EQ(q.pattern.elements.size(), 14u);  // the paper's layout
  EXPECT_EQ(q.window.open_kind, WindowOpen::kCountSlide);
  EXPECT_EQ(q.window.slide_events, 100u);
  // 10 distinct symbols; RE2 repeats 4 times.
  std::map<EventTypeId, int> counts;
  for (const auto& el : q.pattern.elements) {
    ++counts[el.types.members().front()];
  }
  EXPECT_EQ(counts.size(), 10u);
  int max_reps = 0;
  for (const auto& [sym, c] : counts) max_reps = std::max(max_reps, c);
  EXPECT_EQ(max_reps, 4);
}

TEST_F(StockQueries, Q4DetectsRepetitionSequences) {
  EXPECT_GT(golden_matches(make_q4(*gen_, 1800), events_), 10u);
}

TEST_F(StockQueries, QueryNamesAreDescriptive) {
  EXPECT_EQ(make_q2(*gen_, 30).name, "Q2(n=30)");
  EXPECT_EQ(make_q3(*gen_, 600).name, "Q3(ws=600)");
}

}  // namespace
}  // namespace espice
