#include "harness/experiment.hpp"

#include <gtest/gtest.h>

namespace espice {
namespace {

// Shared fixture: one RTLS stream + Q1, reused across tests (generation and
// experiments are deterministic, so sharing is safe).
class ExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = new TypeRegistry();
    gen_ = new RtlsGenerator(RtlsConfig{}, *registry_);
    events_ = new std::vector<Event>(gen_->generate(120'000));
  }
  static void TearDownTestSuite() {
    delete events_;
    delete gen_;
    delete registry_;
    events_ = nullptr;
    gen_ = nullptr;
    registry_ = nullptr;
  }

  ExperimentConfig base_config(ShedderKind kind) const {
    ExperimentConfig c;
    c.query = make_q1(*gen_, 3);
    c.num_types = registry_->size();
    c.train_events = 60'000;
    c.measure_events = 55'000;
    c.rate_factor = 1.3;
    c.shedder = kind;
    return c;
  }

  static TypeRegistry* registry_;
  static RtlsGenerator* gen_;
  static std::vector<Event>* events_;
};

TypeRegistry* ExperimentTest::registry_ = nullptr;
RtlsGenerator* ExperimentTest::gen_ = nullptr;
std::vector<Event>* ExperimentTest::events_ = nullptr;

TEST_F(ExperimentTest, TrainModelLearnsFromTheStream) {
  const auto q = make_q1(*gen_, 3);
  const auto trained = train_model(
      q, registry_->size(),
      std::span<const Event>(*events_).subspan(0, 60'000), 1);
  ASSERT_NE(trained.model, nullptr);
  EXPECT_GT(trained.windows, 100u);
  EXPECT_GT(trained.matches, 50u);
  EXPECT_GT(trained.avg_window_size, 100.0);
  EXPECT_GT(trained.avg_windows_per_event, 0.5);
  // N derives from the average window size for time-based windows.
  EXPECT_NEAR(static_cast<double>(trained.model->n_positions()),
              trained.avg_window_size, 2.0);
}

TEST_F(ExperimentTest, TrainModelHonorsOverrides) {
  const auto q = make_q1(*gen_, 3);
  const auto trained = train_model(
      q, registry_->size(),
      std::span<const Event>(*events_).subspan(0, 60'000), /*bin=*/4,
      /*n_override=*/500);
  EXPECT_EQ(trained.model->n_positions(), 500u);
  EXPECT_EQ(trained.model->bin_size(), 4u);
  EXPECT_EQ(trained.model->cols(), 125u);
}

TEST_F(ExperimentTest, NoSheddingKeepsPerfectQualityButViolatesLatency) {
  const auto result = run_experiment(base_config(ShedderKind::kNone), *events_);
  EXPECT_EQ(result.quality.false_negatives, 0u);
  EXPECT_EQ(result.quality.false_positives, 0u);
  EXPECT_GT(result.latency.violations, 0u);  // 30% overload, no relief
}

TEST_F(ExperimentTest, EspiceHoldsLatencyBoundUnderOverload) {
  const auto result = run_experiment(base_config(ShedderKind::kEspice), *events_);
  EXPECT_TRUE(result.shedding_active);
  EXPECT_GT(result.drops, 0u);
  EXPECT_EQ(result.latency.violations, 0u);
  EXPECT_LE(result.latency.max, 1.0);
}

TEST_F(ExperimentTest, EspiceBeatsRandomOnQuality) {
  const auto espice = run_experiment(base_config(ShedderKind::kEspice), *events_);
  const auto random = run_experiment(base_config(ShedderKind::kRandom), *events_);
  EXPECT_LT(espice.quality.fn_percent() + 1.0,
            random.quality.fn_percent());
  EXPECT_LE(espice.quality.fp_percent(), random.quality.fp_percent() + 1.0);
}

TEST_F(ExperimentTest, BaselineAlsoHoldsTheLatencyBound) {
  const auto result =
      run_experiment(base_config(ShedderKind::kBaseline), *events_);
  EXPECT_TRUE(result.shedding_active);
  EXPECT_EQ(result.latency.violations, 0u);
}

TEST_F(ExperimentTest, HigherRateMeansMoreDrops) {
  auto c = base_config(ShedderKind::kEspice);
  c.rate_factor = 1.2;
  const auto r1 = run_experiment(c, *events_);
  c.rate_factor = 1.4;
  const auto r2 = run_experiment(c, *events_);
  EXPECT_GT(r2.drop_percent(), r1.drop_percent());
  EXPECT_GE(r2.quality.fn_percent() + 0.5, r1.quality.fn_percent());
}

TEST_F(ExperimentTest, GoldenCountIsRateIndependent) {
  auto c = base_config(ShedderKind::kEspice);
  c.rate_factor = 1.2;
  const auto r1 = run_experiment(c, *events_);
  c.rate_factor = 1.4;
  const auto r2 = run_experiment(c, *events_);
  EXPECT_EQ(r1.quality.golden, r2.quality.golden);
}

TEST_F(ExperimentTest, ResultsAreReproducible) {
  const auto r1 = run_experiment(base_config(ShedderKind::kEspice), *events_);
  const auto r2 = run_experiment(base_config(ShedderKind::kEspice), *events_);
  EXPECT_EQ(r1.quality.false_negatives, r2.quality.false_negatives);
  EXPECT_EQ(r1.quality.false_positives, r2.quality.false_positives);
  EXPECT_EQ(r1.drops, r2.drops);
  EXPECT_DOUBLE_EQ(r1.latency.max, r2.latency.max);
}

TEST_F(ExperimentTest, ThroughputAndRateAreConsistent) {
  const auto result = run_experiment(base_config(ShedderKind::kEspice), *events_);
  EXPECT_NEAR(result.input_rate, 1.3 * result.throughput, 1e-6);
  EXPECT_GT(result.throughput, 0.0);
}

TEST_F(ExperimentTest, ValidationErrors) {
  auto c = base_config(ShedderKind::kEspice);
  c.train_events = 0;
  EXPECT_THROW(run_experiment(c, *events_), ConfigError);
  c = base_config(ShedderKind::kEspice);
  c.measure_events = 1'000'000'000;  // longer than the stream
  EXPECT_THROW(run_experiment(c, *events_), ConfigError);
  c = base_config(ShedderKind::kEspice);
  c.num_types = 0;
  EXPECT_THROW(run_experiment(c, *events_), ConfigError);
}

TEST(ShedderKindName, AllNamesAreDistinct) {
  EXPECT_STREQ(shedder_kind_name(ShedderKind::kNone), "none");
  EXPECT_STREQ(shedder_kind_name(ShedderKind::kEspice), "eSPICE");
  EXPECT_STREQ(shedder_kind_name(ShedderKind::kBaseline), "BL");
  EXPECT_STREQ(shedder_kind_name(ShedderKind::kRandom), "random");
}

}  // namespace
}  // namespace espice
