// Deterministic unit coverage for the incremental matcher: engine
// eligibility, shared runs across overlapping windows, the partial-keep
// dirty fallback and run retirement.  The broad bit-identity guarantee
// lives in tests/property/incremental_matcher_oracle_test.cpp.
#include <gtest/gtest.h>

#include <vector>

#include "cep/incremental_matcher.hpp"
#include "cep/matcher.hpp"
#include "cep/window.hpp"

namespace espice {
namespace {

constexpr EventTypeId A = 0;
constexpr EventTypeId B = 1;
constexpr EventTypeId F = 2;  // filler

Event ev(EventTypeId type, std::uint64_t seq, double value = 1.0) {
  Event e;
  e.type = type;
  e.seq = seq;
  e.ts = static_cast<double>(seq);
  e.value = value;
  return e;
}

Pattern ab() {
  return make_sequence({element("a", TypeSet{A}), element("b", TypeSet{B})});
}

WindowSpec count_slide(std::size_t span, std::size_t slide) {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = span;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = slide;
  return spec;
}

TEST(IncrementalMatcher, EligibilityCoversFirstSelectionMaxOne) {
  EXPECT_TRUE(IncrementalMatcher(ab(), SelectionPolicy::kFirst,
                                 ConsumptionPolicy::kConsumed, 1)
                  .stream_incremental());
  EXPECT_TRUE(IncrementalMatcher(
                  make_trigger_any(element("t", TypeSet{A}), TypeSet{B, F}, 2),
                  SelectionPolicy::kFirst, ConsumptionPolicy::kZero, 1)
                  .stream_incremental());
  // Last selection, multi-match and negated gaps take the window scan.
  EXPECT_FALSE(IncrementalMatcher(ab(), SelectionPolicy::kLast,
                                  ConsumptionPolicy::kConsumed, 1)
                   .stream_incremental());
  EXPECT_FALSE(IncrementalMatcher(ab(), SelectionPolicy::kFirst,
                                  ConsumptionPolicy::kConsumed, 3)
                   .stream_incremental());
  EXPECT_FALSE(
      IncrementalMatcher(
          make_sequence_with_negations(
              {element("a", TypeSet{A}), element("b", TypeSet{B})},
              {{0, element("!f", TypeSet{F})}}),
          SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed, 1)
          .stream_incremental());
}

/// Drives a full manager + feed pipeline and returns (incremental, legacy)
/// match lists for comparison.
struct Pipeline {
  WindowManager wm;
  IncrementalMatcher matcher;
  MatcherFeed feed;
  Matcher legacy;
  std::vector<ComplexEvent> incremental_out;
  std::vector<ComplexEvent> legacy_out;

  explicit Pipeline(const WindowSpec& spec)
      : wm(spec),
        matcher(ab(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed,
                1),
        feed(&matcher),
        legacy(ab(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed,
               1) {
    wm.set_kept_feed(&feed);
  }

  void flush() {
    for (const WindowView& w : wm.drain_closed()) {
      matcher.finalize(w, incremental_out);
      for (auto& m : legacy.match_window(w)) {
        legacy_out.push_back(std::move(m));
      }
    }
  }

  void offer_keep_all(const Event& e) {
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
    flush();
  }

  /// Keeps the event only in windows at even positions: a diverging
  /// (partial) keep whenever the event sits in both parities.
  void offer_keep_even_positions(const Event& e) {
    for (const auto& m : wm.offer(e)) {
      if (m.position % 2 == 0) wm.keep(m, e);
    }
    flush();
  }

  void finish() {
    wm.close_all();
    flush();
  }

  void expect_agreement() const {
    ASSERT_EQ(legacy_out.size(), incremental_out.size());
    for (std::size_t i = 0; i < legacy_out.size(); ++i) {
      ASSERT_EQ(legacy_out[i].window, incremental_out[i].window) << i;
      ASSERT_EQ(legacy_out[i].constituents.size(),
                incremental_out[i].constituents.size());
      for (std::size_t k = 0; k < legacy_out[i].constituents.size(); ++k) {
        EXPECT_EQ(legacy_out[i].constituents[k].position,
                  incremental_out[i].constituents[k].position);
        EXPECT_EQ(legacy_out[i].constituents[k].event.seq,
                  incremental_out[i].constituents[k].event.seq);
      }
    }
  }
};

TEST(IncrementalMatcher, OverlappingWindowsShareOneRun) {
  // span 8, slide 2: every event sits in up to 4 windows, but the A at
  // offer index 5 anchors exactly one run that serves every window
  // containing it.
  Pipeline p(count_slide(8, 2));
  const EventTypeId types[] = {F, F, F, F, F, A, B, F, F, F, F, F, F, F, F, F};
  for (std::uint64_t i = 0; i < std::size(types); ++i) {
    p.offer_keep_all(ev(types[i], i));
  }
  p.finish();
  p.expect_agreement();
  // Windows opening at 0, 2 and 4 all contain (A@5, B@6): three matches
  // from the one shared run.
  EXPECT_EQ(p.incremental_out.size(), 3u);
}

TEST(IncrementalMatcher, RunCompletingBeyondWindowEndDoesNotMatch) {
  // The window [0, 4) sees A@1 but its B arrives at offer 5 -- outside.
  Pipeline p(count_slide(4, 4));
  const EventTypeId types[] = {F, A, F, F, F, B, F, F};
  for (std::uint64_t i = 0; i < std::size(types); ++i) {
    p.offer_keep_all(ev(types[i], i));
  }
  p.finish();
  p.expect_agreement();
  EXPECT_TRUE(p.incremental_out.empty());
}

TEST(IncrementalMatcher, PartialKeepsFallBackAndStayIdentical) {
  Pipeline p(count_slide(6, 2));
  for (std::uint64_t i = 0; i < 60; ++i) {
    const EventTypeId t = i % 3 == 0 ? A : (i % 3 == 1 ? B : F);
    if (i % 5 == 0) {
      p.offer_keep_even_positions(ev(t, i));  // diverging keep
    } else {
      p.offer_keep_all(ev(t, i));
    }
  }
  p.finish();
  p.expect_agreement();
}

TEST(IncrementalMatcher, LongStreamRetiresRunsAndStaysIdentical) {
  // Many windows over many anchors: exercises retirement of done and
  // active runs as windows close in open order.
  Pipeline p(count_slide(16, 4));
  for (std::uint64_t i = 0; i < 4000; ++i) {
    const EventTypeId t =
        i % 7 == 0 ? A : (i % 11 == 0 ? B : F);
    p.offer_keep_all(ev(t, i));
  }
  p.finish();
  p.expect_agreement();
  EXPECT_GT(p.incremental_out.size(), 0u);
}

TEST(IncrementalMatcher, SingleElementSequenceCompletesAtAnchor) {
  WindowManager wm(count_slide(4, 2));
  IncrementalMatcher m(make_sequence({element("a", TypeSet{A})}),
                       SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed,
                       1);
  MatcherFeed feed(&m);
  wm.set_kept_feed(&feed);
  std::vector<ComplexEvent> out;
  const EventTypeId types[] = {F, A, F, F, A, F, F, F};
  for (std::uint64_t i = 0; i < std::size(types); ++i) {
    const Event e = ev(types[i], i);
    for (const auto& mem : wm.offer(e)) wm.keep(mem, e);
    for (const WindowView& w : wm.drain_closed()) m.finalize(w, out);
  }
  wm.close_all();
  for (const WindowView& w : wm.drain_closed()) m.finalize(w, out);
  // Windows at 0, 2, 4, 6: the first three contain an A, the last does not.
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].constituents[0].event.seq, 1u);
  EXPECT_EQ(out[1].constituents[0].event.seq, 4u);
  EXPECT_EQ(out[2].constituents[0].event.seq, 4u);
}

}  // namespace
}  // namespace espice
