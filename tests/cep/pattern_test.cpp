#include "cep/pattern.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace espice {
namespace {

Event make_event(EventTypeId type, double value) {
  Event e;
  e.type = type;
  e.value = value;
  return e;
}

TEST(TypeSet, EmptySetMatchesEverything) {
  TypeSet set;
  EXPECT_TRUE(set.is_any());
  EXPECT_TRUE(set.matches(0));
  EXPECT_TRUE(set.matches(9999));
  EXPECT_FALSE(set.contains(0));  // explicit membership is different
}

TEST(TypeSet, ExplicitSetMatchesOnlyMembers) {
  TypeSet set{3, 7};
  EXPECT_FALSE(set.is_any());
  EXPECT_TRUE(set.matches(3));
  EXPECT_TRUE(set.matches(7));
  EXPECT_FALSE(set.matches(4));
  EXPECT_FALSE(set.matches(1000));
}

TEST(TypeSet, InsertIsIdempotent) {
  TypeSet set;
  set.insert(5);
  set.insert(5);
  EXPECT_EQ(set.explicit_count(), 1u);
}

TEST(TypeSet, MembersAreSortedAscending) {
  TypeSet set{9, 2, 5};
  const auto members = set.members();
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[0], 2);
  EXPECT_EQ(members[1], 5);
  EXPECT_EQ(members[2], 9);
}

TEST(ElementSpec, AnyDirectionMatchesAllSigns) {
  ElementSpec spec = element("e", TypeSet{1}, DirectionFilter::kAny);
  EXPECT_TRUE(spec.matches(make_event(1, +0.5)));
  EXPECT_TRUE(spec.matches(make_event(1, -0.5)));
  EXPECT_TRUE(spec.matches(make_event(1, 0.0)));
  EXPECT_FALSE(spec.matches(make_event(2, +0.5)));
}

TEST(ElementSpec, RisingRequiresPositiveValue) {
  ElementSpec spec = element("e", TypeSet{1}, DirectionFilter::kRising);
  EXPECT_TRUE(spec.matches(make_event(1, 0.01)));
  EXPECT_FALSE(spec.matches(make_event(1, 0.0)));
  EXPECT_FALSE(spec.matches(make_event(1, -0.01)));
}

TEST(ElementSpec, FallingRequiresNegativeValue) {
  ElementSpec spec = element("e", TypeSet{1}, DirectionFilter::kFalling);
  EXPECT_TRUE(spec.matches(make_event(1, -0.2)));
  EXPECT_FALSE(spec.matches(make_event(1, 0.2)));
}

TEST(ElementSpec, AnyTypeSetWithDirection) {
  ElementSpec spec = element("e", TypeSet{}, DirectionFilter::kRising);
  EXPECT_TRUE(spec.matches(make_event(42, 1.0)));
  EXPECT_FALSE(spec.matches(make_event(42, -1.0)));
}

TEST(Pattern, SequenceBuilderValidates) {
  const Pattern p = make_sequence({element("a", TypeSet{0}), element("b", TypeSet{1})});
  EXPECT_EQ(p.kind, PatternKind::kSequence);
  EXPECT_EQ(p.elements.size(), 2u);
  EXPECT_EQ(p.match_width(), 2u);
}

TEST(Pattern, EmptySequenceIsRejected) {
  EXPECT_THROW(make_sequence({}), ConfigError);
}

TEST(Pattern, TriggerAnyBuilderValidates) {
  const Pattern p =
      make_trigger_any(element("t", TypeSet{0}), TypeSet{1, 2, 3}, 2);
  EXPECT_EQ(p.kind, PatternKind::kTriggerAny);
  EXPECT_EQ(p.any_n, 2u);
  EXPECT_EQ(p.match_width(), 3u);  // trigger + 2 candidates
}

TEST(Pattern, TriggerAnyRejectsZeroN) {
  EXPECT_THROW(make_trigger_any(element("t", TypeSet{0}), TypeSet{1, 2}, 0),
               ConfigError);
}

TEST(Pattern, TriggerAnyRejectsTooFewDistinctCandidates) {
  EXPECT_THROW(make_trigger_any(element("t", TypeSet{0}), TypeSet{1, 2}, 3),
               ConfigError);
}

TEST(Pattern, TriggerAnyAllowsFewCandidatesWhenNotDistinct) {
  EXPECT_NO_THROW(make_trigger_any(element("t", TypeSet{0}), TypeSet{1, 2}, 3,
                                   DirectionFilter::kAny,
                                   /*distinct_types=*/false));
}

TEST(Pattern, TriggerAnyWithAnyTypeCandidates) {
  // Q2-style: candidates are "any symbol" (empty TypeSet).
  EXPECT_NO_THROW(
      make_trigger_any(element("t", TypeSet{0}), TypeSet{}, 50));
}

TEST(Pattern, SequenceWithRepeatedTypesIsAllowed) {
  // Q4-style: the same type appears several times.
  const Pattern p = make_sequence({element("a", TypeSet{1}),
                                   element("a", TypeSet{1}),
                                   element("b", TypeSet{2})});
  EXPECT_EQ(p.elements.size(), 3u);
}

}  // namespace
}  // namespace espice
