#include "cep/matcher.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace espice {
namespace {

// Builds a window directly from (type, value) pairs; position i = arrival i.
Window make_window(const std::vector<std::pair<EventTypeId, double>>& events,
                   WindowId id = 0) {
  Window w;
  w.id = id;
  for (std::size_t i = 0; i < events.size(); ++i) {
    Event e;
    e.type = events[i].first;
    e.value = events[i].second;
    e.seq = i;
    e.ts = static_cast<double>(i);
    w.kept.push_back(e);
    w.kept_pos.push_back(static_cast<std::uint32_t>(i));
    ++w.arrivals;
  }
  return w;
}

std::vector<std::uint64_t> bound_seqs(const ComplexEvent& ce) {
  std::vector<std::uint64_t> seqs;
  for (const auto& c : ce.constituents) seqs.push_back(c.event.seq);
  return seqs;
}

constexpr EventTypeId A = 0;
constexpr EventTypeId B = 1;
constexpr EventTypeId C = 2;

Pattern seq_ab() {
  return make_sequence({element("A", TypeSet{A}), element("B", TypeSet{B})});
}

// ---------------------------------------------------------------------------
// The paper's running example (Section 2): window {A1, A2, B3, B4}
// (we index from 0: A at 0, A at 1, B at 2, B at 3).
// ---------------------------------------------------------------------------

TEST(MatcherPaperExample, FirstConsumedFindsBothMatches) {
  Matcher m(seq_ab(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed, 10);
  const auto matches = m.match_window(make_window({{A, 1}, {A, 1}, {B, 1}, {B, 1}}));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 2}));  // (A1,B3)
  EXPECT_EQ(bound_seqs(matches[1]), (std::vector<std::uint64_t>{1, 3}));  // (A2,B4)
}

TEST(MatcherPaperExample, LastConsumedFindsOnlyA2B3) {
  Matcher m(seq_ab(), SelectionPolicy::kLast, ConsumptionPolicy::kConsumed, 10);
  const auto matches = m.match_window(make_window({{A, 1}, {A, 1}, {B, 1}, {B, 1}}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{1, 2}));  // (A2,B3)
}

TEST(MatcherPaperExample, LastZeroFindsA2B3AndA2B4) {
  Matcher m(seq_ab(), SelectionPolicy::kLast, ConsumptionPolicy::kZero, 10);
  const auto matches = m.match_window(make_window({{A, 1}, {A, 1}, {B, 1}, {B, 1}}));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{1, 2}));  // (A2,B3)
  EXPECT_EQ(bound_seqs(matches[1]), (std::vector<std::uint64_t>{1, 3}));  // (A2,B4)
}

TEST(MatcherPaperExample, FirstZeroReusesEarliestInstances) {
  Matcher m(seq_ab(), SelectionPolicy::kFirst, ConsumptionPolicy::kZero, 10);
  const auto matches = m.match_window(make_window({{A, 1}, {A, 1}, {B, 1}, {B, 1}}));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 2}));  // (A1,B3)
  EXPECT_EQ(bound_seqs(matches[1]), (std::vector<std::uint64_t>{0, 3}));  // (A1,B4)
}

// ---------------------------------------------------------------------------
// Section 2.1's quality example: dropping A2 / A1 under first+consumed.
// ---------------------------------------------------------------------------

TEST(MatcherPaperExample, DroppingA2LosesOneMatch) {
  Matcher m(seq_ab(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed, 10);
  // A2 (seq 1) removed; positions of later events unchanged.
  Window w = make_window({{A, 1}, {A, 1}, {B, 1}, {B, 1}});
  w.kept.erase(w.kept.begin() + 1);
  w.kept_pos.erase(w.kept_pos.begin() + 1);
  const auto matches = m.match_window(w);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 2}));  // (A1,B3)
}

TEST(MatcherPaperExample, DroppingA1ShiftsTheMatch) {
  Matcher m(seq_ab(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed, 10);
  Window w = make_window({{A, 1}, {A, 1}, {B, 1}, {B, 1}});
  w.kept.erase(w.kept.begin());
  w.kept_pos.erase(w.kept_pos.begin());
  const auto matches = m.match_window(w);
  // New complex event (A2,B3): a false positive, plus (A2,B4) is gone too.
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{1, 2}));
}

// ---------------------------------------------------------------------------
// General sequence semantics.
// ---------------------------------------------------------------------------

TEST(MatcherSequence, SkipsNonMatchingEventsBetweenElements) {
  Matcher m(seq_ab(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  const auto matches =
      m.match_window(make_window({{A, 1}, {C, 1}, {C, 1}, {B, 1}}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 3}));
}

TEST(MatcherSequence, RespectsOrder) {
  Matcher m(seq_ab(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  EXPECT_TRUE(m.match_window(make_window({{B, 1}, {A, 1}})).empty());
}

TEST(MatcherSequence, DirectionFilterApplies) {
  Pattern p = make_sequence({element("A+", TypeSet{A}, DirectionFilter::kRising),
                             element("B-", TypeSet{B}, DirectionFilter::kFalling)});
  Matcher m(p, SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  EXPECT_TRUE(m.match_window(make_window({{A, -1}, {B, -1}})).empty());
  EXPECT_TRUE(m.match_window(make_window({{A, 1}, {B, 1}})).empty());
  EXPECT_EQ(m.match_window(make_window({{A, 1}, {B, -1}})).size(), 1u);
}

TEST(MatcherSequence, RepetitionNeedsDistinctInstances) {
  // Q4-style: A;A;B -- the two A elements must bind two different events.
  Pattern p = make_sequence({element("A", TypeSet{A}), element("A", TypeSet{A}),
                             element("B", TypeSet{B})});
  Matcher m(p, SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  EXPECT_TRUE(m.match_window(make_window({{A, 1}, {B, 1}})).empty());
  const auto matches = m.match_window(make_window({{A, 1}, {A, 1}, {B, 1}}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(MatcherSequence, MaxMatchesCapsOutput) {
  Matcher m(seq_ab(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed, 1);
  const auto matches = m.match_window(
      make_window({{A, 1}, {A, 1}, {A, 1}, {B, 1}, {B, 1}, {B, 1}}));
  EXPECT_EQ(matches.size(), 1u);
}

TEST(MatcherSequence, EmptyWindowYieldsNothing) {
  Matcher m(seq_ab(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  EXPECT_TRUE(m.match_window(make_window({})).empty());
}

TEST(MatcherSequence, LastSelectionBindsLatestPrefix) {
  // A1 A2 A3 B: last selection binds A3.
  Matcher m(seq_ab(), SelectionPolicy::kLast, ConsumptionPolicy::kConsumed);
  const auto matches =
      m.match_window(make_window({{A, 1}, {A, 1}, {A, 1}, {B, 1}}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{2, 3}));
}

TEST(MatcherSequence, LastConsumedContinuesWithFreshEvents) {
  // A1 B2 A3 B4: last+consumed -> (A1,B2) then (A3,B4).
  Matcher m(seq_ab(), SelectionPolicy::kLast, ConsumptionPolicy::kConsumed, 10);
  const auto matches =
      m.match_window(make_window({{A, 1}, {B, 1}, {A, 1}, {B, 1}}));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(bound_seqs(matches[1]), (std::vector<std::uint64_t>{2, 3}));
}

TEST(MatcherSequence, ThreeElementSequence) {
  Pattern p = make_sequence({element("A", TypeSet{A}), element("B", TypeSet{B}),
                             element("C", TypeSet{C})});
  Matcher m(p, SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  const auto matches = m.match_window(
      make_window({{C, 1}, {A, 1}, {B, 1}, {A, 1}, {C, 1}}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{1, 2, 4}));
}

TEST(MatcherSequence, ConstituentElementAndPositionProvenance) {
  Matcher m(seq_ab(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  const auto matches =
      m.match_window(make_window({{C, 1}, {A, 1}, {B, 1}}, /*id=*/42));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].window, 42u);
  EXPECT_EQ(matches[0].constituents[0].element, 0u);
  EXPECT_EQ(matches[0].constituents[0].position, 1u);
  EXPECT_EQ(matches[0].constituents[1].element, 1u);
  EXPECT_EQ(matches[0].constituents[1].position, 2u);
}

// ---------------------------------------------------------------------------
// Trigger-any (Q1/Q2 style).
// ---------------------------------------------------------------------------

Pattern trig_any(std::size_t n, bool distinct = true) {
  return make_trigger_any(element("T", TypeSet{A}, DirectionFilter::kRising),
                          TypeSet{B, C}, n, DirectionFilter::kRising, distinct);
}

TEST(MatcherTriggerAny, FirstSelectionTakesEarliestCandidates) {
  Matcher m(trig_any(2), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  const auto matches = m.match_window(
      make_window({{A, 1}, {B, 1}, {C, 1}, {B, 1}}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(MatcherTriggerAny, LastSelectionTakesLatestCandidates) {
  Matcher m(trig_any(2), SelectionPolicy::kLast, ConsumptionPolicy::kConsumed);
  const auto matches = m.match_window(
      make_window({{A, 1}, {B, 1}, {C, 1}, {B, 1}}));
  ASSERT_EQ(matches.size(), 1u);
  // Latest distinct-type candidates: B at 3 and C at 2 (in window order).
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 2, 3}));
}

TEST(MatcherTriggerAny, DistinctTypesSkipDuplicates) {
  Matcher m(trig_any(2), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  // Two B's then a C: must bind B@1 and C@3, not B@1+B@2.
  const auto matches = m.match_window(
      make_window({{A, 1}, {B, 1}, {B, 1}, {C, 1}}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 1, 3}));
}

TEST(MatcherTriggerAny, NonDistinctAllowsRepeatedTypes) {
  Matcher m(trig_any(2, /*distinct=*/false), SelectionPolicy::kFirst,
            ConsumptionPolicy::kConsumed);
  const auto matches =
      m.match_window(make_window({{A, 1}, {B, 1}, {B, 1}}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(MatcherTriggerAny, CandidatesMustFollowTrigger) {
  Matcher m(trig_any(2), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  // B before the trigger does not count.
  EXPECT_TRUE(
      m.match_window(make_window({{B, 1}, {A, 1}, {C, 1}})).empty());
}

TEST(MatcherTriggerAny, InsufficientCandidatesMeansNoMatch) {
  // Three candidate types exist, but the window only offers two of them.
  Pattern p = make_trigger_any(element("T", TypeSet{A}, DirectionFilter::kRising),
                               TypeSet{B, C, 3}, 3, DirectionFilter::kRising);
  Matcher m(p, SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  EXPECT_TRUE(
      m.match_window(make_window({{A, 1}, {B, 1}, {C, 1}})).empty());
}

TEST(MatcherTriggerAny, TriggerDirectionFilterApplies) {
  Matcher m(trig_any(1), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  // Falling A cannot trigger.
  EXPECT_TRUE(m.match_window(make_window({{A, -1}, {B, 1}})).empty());
  // A later rising A can.
  const auto matches =
      m.match_window(make_window({{A, -1}, {A, 1}, {B, 1}}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{1, 2}));
}

TEST(MatcherTriggerAny, FallingCandidateIsIgnored) {
  Matcher m(trig_any(2), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  const auto matches = m.match_window(
      make_window({{A, 1}, {B, -1}, {B, 1}, {C, 1}}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 2, 3}));
}

TEST(MatcherTriggerAny, ConsumedAllowsSecondMatchFromFreshEvents) {
  Matcher m(trig_any(1), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed, 10);
  const auto matches = m.match_window(
      make_window({{A, 1}, {B, 1}, {A, 1}, {C, 1}}));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 1}));
  EXPECT_EQ(bound_seqs(matches[1]), (std::vector<std::uint64_t>{2, 3}));
}

TEST(MatcherTriggerAny, ZeroConsumptionAdvancesTrigger) {
  Matcher m(trig_any(1), SelectionPolicy::kFirst, ConsumptionPolicy::kZero, 10);
  const auto matches = m.match_window(
      make_window({{A, 1}, {A, 1}, {B, 1}}));
  // Two triggers, each completing with the (reusable) B.
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 2}));
  EXPECT_EQ(bound_seqs(matches[1]), (std::vector<std::uint64_t>{1, 2}));
}

TEST(MatcherTriggerAny, AnyCandidatesElementIdsAreInterchangeable) {
  Matcher m(trig_any(2), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  const auto matches = m.match_window(
      make_window({{A, 1}, {B, 1}, {C, 1}}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].constituents[0].element, 0u);
  EXPECT_EQ(matches[0].constituents[1].element, 1u);
  EXPECT_EQ(matches[0].constituents[2].element, 1u);
}

TEST(MatcherTriggerAny, AnyTypeCandidateSetMatchesEverything) {
  Pattern p = make_trigger_any(element("T", TypeSet{A}, DirectionFilter::kRising),
                               TypeSet{}, 2, DirectionFilter::kRising);
  Matcher m(p, SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  // Candidates include other A events and C events.
  const auto matches = m.match_window(
      make_window({{A, 1}, {C, 1}, {A, 1}}));
  ASSERT_EQ(matches.size(), 1u);
}

}  // namespace
}  // namespace espice
