// Late-event semantics: the reorder stage's classification boundary, the
// watermark-driven close boundary, and the three late policies (drop,
// side_output, revise) end to end through the engine report.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "cep/event_time.hpp"
#include "cep/window.hpp"
#include "durability/serial.hpp"
#include "runtime/stream_engine.hpp"

namespace espice {
namespace {

Event make_event(std::uint64_t seq, double ts, EventTypeId type = 0,
                 double value = 1.0) {
  Event e;
  e.type = type;
  e.seq = seq;
  e.ts = ts;
  e.value = value;
  return e;
}

/// In-order stream: one event per second, alternating direction so the
/// rising/falling test pattern matches.
std::vector<Event> ramp(std::size_t n) {
  std::vector<Event> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    events.push_back(make_event(i, static_cast<double>(i), 0,
                                (i % 2 == 0) ? -1.0 : 1.0));
  }
  return events;
}

// --- ReorderBuffer unit semantics -------------------------------------------

TEST(ReorderBuffer, ReleasesInSequenceOrderOnceWatermarkPasses) {
  ReorderBuffer buf(2);
  std::vector<Event> released;
  // Arrival order 2, 0, 1: all within bound 2.
  EXPECT_EQ(buf.accept(make_event(2, 2.0), released),
            ReorderBuffer::Accept::kBuffered);
  EXPECT_EQ(buf.accept(make_event(0, 0.0), released),
            ReorderBuffer::Accept::kBuffered);
  EXPECT_EQ(buf.accept(make_event(1, 1.0), released),
            ReorderBuffer::Accept::kBuffered);
  EXPECT_TRUE(released.empty()) << "max seq 2 < bound + 1";
  EXPECT_EQ(buf.accept(make_event(3, 3.0), released),
            ReorderBuffer::Accept::kBuffered);
  // max = 3 >= bound + 1: W = 3 - 3 = 0 releases exactly seq 0.
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].seq, 0u);
  EXPECT_EQ(buf.watermark_seq(), 0u);
  buf.flush(released);
  ASSERT_EQ(released.size(), 4u);
  for (std::size_t i = 0; i < released.size(); ++i) {
    EXPECT_EQ(released[i].seq, i);
  }
  EXPECT_EQ(buf.watermark_seq(), 3u);
  // Peak counts the arriving event before its release: {2,0,1,3} were all
  // resident when seq 3 arrived.
  EXPECT_EQ(buf.peak_buffered(), 4u);
}

TEST(ReorderBuffer, LatenessBeyondBoundIsLate) {
  ReorderBuffer buf(3);
  std::vector<Event> released;
  for (std::uint64_t seq : {1u, 2u, 3u, 4u, 5u}) {
    buf.accept(make_event(seq, static_cast<double>(seq)), released);
  }
  // W = 5 - 4 = 1: seq 0 now has lateness 5 > bound 3.
  EXPECT_EQ(buf.accept(make_event(0, 0.0), released),
            ReorderBuffer::Accept::kLate);
  // Lateness exactly at the bound stays on time: seq 2 released already
  // (<= W), but a fresh seq-2 arrival would be late; seq 3 would not.
  EXPECT_EQ(buf.watermark_seq(), 1u);
}

TEST(ReorderBuffer, PunctuationRaisesWatermarkAndConvicts) {
  ReorderBuffer buf(100);
  std::vector<Event> released;
  buf.accept(make_event(5, 5.0), released);
  buf.accept(make_event(9, 9.0), released);
  EXPECT_FALSE(buf.has_watermark());
  buf.punctuate(7, released);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].seq, 5u);
  EXPECT_EQ(buf.watermark_seq(), 7u);
  // An event at or below the punctuation is late despite the huge bound.
  EXPECT_EQ(buf.accept(make_event(7, 7.0), released),
            ReorderBuffer::Accept::kLate);
  EXPECT_EQ(buf.accept(make_event(8, 8.0), released),
            ReorderBuffer::Accept::kBuffered);
  // A stale punctuation (<= W) is a no-op, never a regression.
  buf.punctuate(3, released);
  EXPECT_EQ(buf.watermark_seq(), 7u);
}

TEST(ReorderBuffer, SerializeRestoreRoundTripsMidStream) {
  ReorderBuffer buf(8);
  std::vector<Event> released;
  for (std::uint64_t seq : {4u, 1u, 12u, 7u, 3u}) {
    buf.accept(make_event(seq, static_cast<double>(seq)), released);
  }
  durability::SnapshotWriter w;
  buf.serialize(w);
  const auto blob = w.take();

  ReorderBuffer restored(8);
  durability::SnapshotReader r(blob);
  restored.restore(r);
  EXPECT_EQ(restored.buffered(), buf.buffered());
  EXPECT_EQ(restored.has_watermark(), buf.has_watermark());
  EXPECT_EQ(restored.watermark_seq(), buf.watermark_seq());

  // Both must classify and release identically from here on.
  std::vector<Event> a, b;
  EXPECT_EQ(buf.accept(make_event(2, 2.0), a),
            restored.accept(make_event(2, 2.0), b));
  buf.flush(a);
  restored.flush(b);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].seq, b[i].seq);
}

TEST(MeasureDisorder, MatchesDefinition) {
  auto events = ramp(6);
  EXPECT_EQ(measure_disorder(events), 0u);
  std::swap(events[1], events[4]);  // seq order 0 4 2 3 1 5
  EXPECT_EQ(measure_disorder(events), 3u);  // when 1 arrives, max is 4
}

// --- watermark-driven close boundary ----------------------------------------

TEST(WindowManager, WatermarkAtExactSpanEndClosesTimeWindow) {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kTime;
  spec.span_seconds = 7.5;
  spec.open_kind = WindowOpen::kPredicate;
  spec.opener = element("open", TypeSet{1}, DirectionFilter::kAny);
  WindowManager wm(spec);

  const Event opener = make_event(0, 0.0, 1);
  for (const auto& m : wm.offer(opener)) wm.keep(m, opener);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    const Event e = make_event(i, static_cast<double>(i), 0);
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
  }
  EXPECT_TRUE(wm.drain_closed().empty());

  // Strictly inside the span: nothing closes.
  wm.advance_time_watermark(7.4999);
  EXPECT_TRUE(wm.drain_closed().empty());

  // Exactly at open_ts + span: [0, 7.5) is complete, the window closes.
  wm.advance_time_watermark(7.5);
  const auto& closed = wm.drain_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].kept_count(), 6u);
  EXPECT_EQ(closed[0].arrivals, 6u);
}

TEST(WindowManager, WatermarkCloseIsNoOpForCountSpans) {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = 10;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = 10;
  WindowManager wm(spec);
  for (std::uint64_t i = 0; i < 5; ++i) {
    const Event e = make_event(i, static_cast<double>(i));
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
  }
  wm.advance_time_watermark(1e9);
  EXPECT_TRUE(wm.drain_closed().empty()) << "count spans close by count only";
}

// --- the three policies, end to end ------------------------------------------

StreamEngineConfig make_config(LatePolicy policy, std::size_t horizon = 8) {
  StreamEngineConfig config;
  config.shards = 1;
  config.ring_capacity = 256;
  config.query.pattern =
      make_sequence({element("up", TypeSet{}, DirectionFilter::kRising),
                     element("down", TypeSet{}, DirectionFilter::kFalling)});
  config.query.window.span_kind = WindowSpan::kCount;
  config.query.window.span_events = 10;
  config.query.window.open_kind = WindowOpen::kCountSlide;
  config.query.window.slide_events = 5;
  EventTimeConfig et;
  et.disorder_bound = 4;
  et.late_policy = policy;
  et.revise_horizon_windows = horizon;
  config.event_time = et;
  return config;
}

/// Pushes `events` minus the withheld seqs in order, then the withheld
/// ones (now late: the watermark has long passed them).
EngineReport run_with_stragglers(StreamEngine& engine,
                                 const std::vector<Event>& events,
                                 const std::vector<std::uint64_t>& withheld) {
  std::vector<Event> head;
  for (const Event& e : events) {
    if (std::find(withheld.begin(), withheld.end(), e.seq) ==
        withheld.end()) {
      head.push_back(e);
    }
  }
  engine.push_batch(head);
  for (const std::uint64_t seq : withheld) engine.push(events[seq]);
  return engine.finish();
}

TEST(LatePolicy, DropCountsAndDiscards) {
  StreamEngine engine(make_config(LatePolicy::kDrop));
  const EngineReport report = run_with_stragglers(engine, ramp(40), {7, 8});
  EXPECT_EQ(report.late_events, 2u);
  EXPECT_EQ(report.late_dropped, 2u);
  EXPECT_EQ(report.late_side_output, 0u);
  EXPECT_EQ(report.revisions, 0u);
  EXPECT_TRUE(report.side_outputs.empty());
  EXPECT_EQ(report.events, 40u);
  EXPECT_EQ(report.shards[0].late_events, 2u);
}

TEST(LatePolicy, SideOutputAttributesToCoveringWindows) {
  StreamEngine engine(make_config(LatePolicy::kSideOutput));
  const EngineReport report = run_with_stragglers(engine, ramp(40), {7, 8});
  EXPECT_EQ(report.late_events, 2u);
  EXPECT_EQ(report.late_side_output, 2u);
  EXPECT_EQ(report.late_dropped, 0u);
  ASSERT_EQ(report.side_outputs.size(), 2u);

  // Canonical order: by late event seq.
  EXPECT_EQ(report.side_outputs[0].event.seq, 7u);
  EXPECT_EQ(report.side_outputs[1].event.seq, 8u);
  for (const SideOutputRecord& rec : report.side_outputs) {
    // Convicting watermark: 39 - bound(4) - 1 = 34.
    EXPECT_EQ(rec.watermark_seq, 34u);
    // Both stragglers fall in the closed windows opened at seq 0 and 5
    // (slide 5, span 10), and no other.
    EXPECT_EQ(rec.windows.size(), 2u) << "seq " << rec.event.seq;
  }
  EXPECT_EQ(report.side_outputs[0].windows, report.side_outputs[1].windows);
}

TEST(LatePolicy, ReviseReEmitsWithMonotoneRevisionTags) {
  // All falling except the stragglers: the on-time windows cannot match
  // the rising->falling pattern at all, so every match in a revision
  // provably consumed a spliced late event.
  auto events = ramp(40);
  for (Event& e : events) e.value = -1.0;
  events[7].value = 1.0;
  events[8].value = 1.0;

  StreamEngine engine(make_config(LatePolicy::kRevise));
  const EngineReport report = run_with_stragglers(engine, events, {7, 8});
  EXPECT_EQ(report.late_events, 2u);
  EXPECT_EQ(report.late_dropped, 0u);
  // Each straggler revises the two covering windows.
  EXPECT_EQ(report.revisions, 4u);
  ASSERT_EQ(report.queries.size(), 1u);
  const auto& revs = report.queries[0].revisions;
  ASSERT_EQ(revs.size(), 4u);

  // Canonical order is (late seq, shard, emission index); within one late
  // event, windows are revised oldest first.
  EXPECT_EQ(revs[0].late_seq, 7u);
  EXPECT_EQ(revs[1].late_seq, 7u);
  EXPECT_EQ(revs[2].late_seq, 8u);
  EXPECT_EQ(revs[3].late_seq, 8u);

  // Per window, revision tags are 1-based and monotone.
  std::map<WindowId, std::uint64_t> last_tag;
  for (const RevisionRecord& rec : revs) {
    const auto it = last_tag.find(rec.window);
    if (it == last_tag.end()) {
      EXPECT_EQ(rec.revision, 1u) << "window " << rec.window;
    } else {
      EXPECT_EQ(rec.revision, it->second + 1) << "window " << rec.window;
    }
    last_tag[rec.window] = rec.revision;
  }
  EXPECT_EQ(last_tag.size(), 2u) << "exactly the two covering windows";
  for (const auto& [window, tag] : last_tag) EXPECT_EQ(tag, 2u);

  // The re-finalized match sets consume the spliced stragglers: the only
  // rising events in any window are seq 7 and 8, so a non-empty revision
  // match can only exist through them.
  bool any_match = false;
  for (const RevisionRecord& rec : revs) {
    for (const ComplexEvent& m : rec.matches) {
      any_match = true;
      bool straggler = false;
      for (const auto& c : m.constituents) {
        if (c.event.seq == 7 || c.event.seq == 8) straggler = true;
      }
      EXPECT_TRUE(straggler) << "revision match without the late event";
    }
  }
  EXPECT_TRUE(any_match) << "revisions never re-matched";
}

TEST(LatePolicy, ReviseBeyondRetentionHorizonCountsAsDropped) {
  // Horizon of 1 window: by the time the straggler from the stream's head
  // arrives, its covering windows have been evicted.
  StreamEngine engine(make_config(LatePolicy::kRevise, /*horizon=*/1));
  const EngineReport report = run_with_stragglers(engine, ramp(200), {2});
  EXPECT_EQ(report.late_events, 1u);
  EXPECT_EQ(report.revisions, 0u);
  EXPECT_EQ(report.late_dropped, 1u);
  EXPECT_TRUE(report.queries[0].revisions.empty());
}

TEST(LatePolicy, ReviseHorizonZeroIsRejected) {
  StreamEngineConfig config = make_config(LatePolicy::kRevise);
  config.event_time->revise_horizon_windows = 0;
  EXPECT_THROW(StreamEngine{config}, ConfigError);
}

}  // namespace
}  // namespace espice
