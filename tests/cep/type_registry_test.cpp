#include "cep/type_registry.hpp"

#include <gtest/gtest.h>

namespace espice {
namespace {

TEST(TypeRegistry, AssignsDenseIdsFromZero) {
  TypeRegistry reg;
  EXPECT_EQ(reg.intern("alpha"), 0);
  EXPECT_EQ(reg.intern("beta"), 1);
  EXPECT_EQ(reg.intern("gamma"), 2);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(TypeRegistry, InternIsIdempotent) {
  TypeRegistry reg;
  const auto id = reg.intern("x");
  EXPECT_EQ(reg.intern("x"), id);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(TypeRegistry, RoundTripsNames) {
  TypeRegistry reg;
  const auto a = reg.intern("STR0");
  const auto b = reg.intern("DF01");
  EXPECT_EQ(reg.name_of(a), "STR0");
  EXPECT_EQ(reg.name_of(b), "DF01");
  EXPECT_EQ(reg.id_of("STR0"), a);
  EXPECT_EQ(reg.id_of("DF01"), b);
}

TEST(TypeRegistry, ContainsOnlyRegisteredNames) {
  TypeRegistry reg;
  reg.intern("known");
  EXPECT_TRUE(reg.contains("known"));
  EXPECT_FALSE(reg.contains("unknown"));
  EXPECT_FALSE(reg.contains(""));
}

TEST(TypeRegistry, EmptyRegistryHasSizeZero) {
  TypeRegistry reg;
  EXPECT_EQ(reg.size(), 0u);
}

TEST(TypeRegistry, HandlesManyTypes) {
  TypeRegistry reg;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(reg.intern("T" + std::to_string(i)), i);
  }
  EXPECT_EQ(reg.size(), 1000u);
  EXPECT_EQ(reg.name_of(517), "T517");
}

}  // namespace
}  // namespace espice
