#include <gtest/gtest.h>

#include "cep/matcher.hpp"
#include "cep/pattern.hpp"
#include "common/error.hpp"

namespace espice {
namespace {

Window make_window(const std::vector<EventTypeId>& types) {
  Window w;
  for (std::size_t i = 0; i < types.size(); ++i) {
    Event e;
    e.type = types[i];
    e.seq = i;
    e.ts = static_cast<double>(i);
    e.value = 1.0;
    w.kept.push_back(e);
    w.kept_pos.push_back(static_cast<std::uint32_t>(i));
    ++w.arrivals;
  }
  return w;
}

std::vector<std::uint64_t> bound_seqs(const ComplexEvent& ce) {
  std::vector<std::uint64_t> seqs;
  for (const auto& c : ce.constituents) seqs.push_back(c.event.seq);
  return seqs;
}

constexpr EventTypeId A = 0;
constexpr EventTypeId B = 1;
constexpr EventTypeId C = 2;
constexpr EventTypeId D = 3;

// seq(A; !C; B)
Pattern a_notc_b() {
  return make_sequence_with_negations(
      {element("A", TypeSet{A}), element("B", TypeSet{B})},
      {{0, element("!C", TypeSet{C})}});
}

TEST(NegationPattern, ValidationAcceptsAndRejects) {
  EXPECT_NO_THROW(a_notc_b());
  // Gap out of range.
  EXPECT_THROW(make_sequence_with_negations({element("A", TypeSet{A})},
                                            {{0, element("!C", TypeSet{C})}}),
               ConfigError);
  // Adjacent negated gaps are unsupported.
  EXPECT_THROW(
      make_sequence_with_negations(
          {element("A", TypeSet{A}), element("B", TypeSet{B}),
           element("D", TypeSet{D})},
          {{0, element("!C", TypeSet{C})}, {1, element("!C", TypeSet{C})}}),
      ConfigError);
  // Negation on a trigger-any pattern.
  Pattern p = make_trigger_any(element("t", TypeSet{A}), TypeSet{B, C}, 1);
  p.negations.push_back({0, element("!C", TypeSet{C})});
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(NegationFirst, CleanGapMatches) {
  Matcher m(a_notc_b(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  const auto matches = m.match_window(make_window({A, D, B}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 2}));
}

TEST(NegationFirst, ForbiddenEventBlocksTheMatch) {
  Matcher m(a_notc_b(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  EXPECT_TRUE(m.match_window(make_window({A, C, B})).empty());
}

TEST(NegationFirst, AnchorRebindsAfterThePoison) {
  // A1 C A2 B: (A1, B) is poisoned, but (A2, B) is clean.
  Matcher m(a_notc_b(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  const auto matches = m.match_window(make_window({A, C, A, B}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{2, 3}));
}

TEST(NegationFirst, PoisonBeforeTheAnchorIsHarmless) {
  // C before A does not affect the A..B gap.
  Matcher m(a_notc_b(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  const auto matches = m.match_window(make_window({C, A, B}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{1, 2}));
}

TEST(NegationFirst, PoisonAfterCompletionIsHarmless) {
  Matcher m(a_notc_b(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  EXPECT_EQ(m.match_window(make_window({A, B, C})).size(), 1u);
}

TEST(NegationFirst, OnlyTheNegatedGapIsChecked) {
  // seq(A; B; !C; D): C between A and B is fine, C between B and D is not.
  const Pattern p = make_sequence_with_negations(
      {element("A", TypeSet{A}), element("B", TypeSet{B}),
       element("D", TypeSet{D})},
      {{1, element("!C", TypeSet{C})}});
  Matcher m(p, SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
  EXPECT_EQ(m.match_window(make_window({A, C, B, D})).size(), 1u);
  EXPECT_TRUE(m.match_window(make_window({A, B, C, D})).empty());
}

TEST(NegationFirst, MultipleMatchesInOneWindow) {
  Matcher m(a_notc_b(), SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed,
            10);
  const auto matches = m.match_window(make_window({A, B, A, C, A, B}));
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 1}));
  // The A at 2 is poisoned by C at 3; the A at 4 completes with B at 5.
  EXPECT_EQ(bound_seqs(matches[1]), (std::vector<std::uint64_t>{4, 5}));
}

TEST(NegationLast, ForbiddenEventKillsThePrefix) {
  Matcher m(a_notc_b(), SelectionPolicy::kLast, ConsumptionPolicy::kConsumed);
  EXPECT_TRUE(m.match_window(make_window({A, C, B})).empty());
}

TEST(NegationLast, LatestCleanAnchorWins) {
  // A1 A2 C A3 B: only A3's gap is clean; last selection binds it anyway.
  Matcher m(a_notc_b(), SelectionPolicy::kLast, ConsumptionPolicy::kConsumed);
  const auto matches = m.match_window(make_window({A, A, C, A, B}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{3, 4}));
}

TEST(NegationLast, PoisonedLatestFallsBackToNothing) {
  // A1 C B: the only prefix was killed; no fallback to pre-C instances.
  Matcher m(a_notc_b(), SelectionPolicy::kLast, ConsumptionPolicy::kZero);
  EXPECT_TRUE(m.match_window(make_window({A, C, B})).empty());
}

TEST(NegationLast, ThreeElementMiddleGap) {
  const Pattern p = make_sequence_with_negations(
      {element("A", TypeSet{A}), element("B", TypeSet{B}),
       element("D", TypeSet{D})},
      {{1, element("!C", TypeSet{C})}});
  Matcher m(p, SelectionPolicy::kLast, ConsumptionPolicy::kConsumed);
  // A B C D: B..D gap poisoned.  A B C B D: the later B re-arms the prefix.
  EXPECT_TRUE(m.match_window(make_window({A, B, C, D})).empty());
  const auto matches = m.match_window(make_window({A, B, C, B, D}));
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(bound_seqs(matches[0]), (std::vector<std::uint64_t>{0, 3, 4}));
}

TEST(NegationFirst, NegationWithDirectionFilter) {
  // Forbid only *rising* C events.
  Pattern p = make_sequence_with_negations(
      {element("A", TypeSet{A}), element("B", TypeSet{B})},
      {{0, element("!C+", TypeSet{C}, DirectionFilter::kRising)}});
  Matcher m(p, SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);

  Window falling_c = make_window({A, C, B});
  falling_c.kept[1].value = -1.0;  // falling C: allowed
  EXPECT_EQ(m.match_window(falling_c).size(), 1u);

  Window rising_c = make_window({A, C, B});
  EXPECT_TRUE(m.match_window(rising_c).empty());
}

}  // namespace
}  // namespace espice
