#include "cep/window.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace espice {
namespace {

Event make_event(std::uint64_t seq, double ts, EventTypeId type = 0,
                 double value = 1.0) {
  Event e;
  e.type = type;
  e.seq = seq;
  e.ts = ts;
  e.value = value;
  return e;
}

WindowSpec count_slide_spec(std::size_t span, std::size_t slide) {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = span;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = slide;
  return spec;
}

WindowSpec predicate_time_spec(double span_seconds, EventTypeId opener_type) {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kTime;
  spec.span_seconds = span_seconds;
  spec.open_kind = WindowOpen::kPredicate;
  spec.opener = element("open", TypeSet{opener_type}, DirectionFilter::kAny);
  return spec;
}

// Offers a stream of `n` events one second apart, keeping everything.
std::vector<Window> drive(WindowManager& wm, std::size_t n,
                          EventTypeId type = 0) {
  std::vector<Window> closed;
  for (std::size_t i = 0; i < n; ++i) {
    const Event e = make_event(i, static_cast<double>(i), type);
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
    for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  }
  wm.close_all();
  for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  return closed;
}

TEST(WindowManager, TumblingCountWindowsPartitionTheStream) {
  WindowManager wm(count_slide_spec(5, 5));
  const auto closed = drive(wm, 20);
  ASSERT_EQ(closed.size(), 4u);
  for (const auto& w : closed) {
    EXPECT_EQ(w.arrivals, 5u);
    EXPECT_EQ(w.kept.size(), 5u);
  }
  EXPECT_EQ(closed[0].kept.front().seq, 0u);
  EXPECT_EQ(closed[1].kept.front().seq, 5u);
}

TEST(WindowManager, SlidingCountWindowsOverlap) {
  WindowManager wm(count_slide_spec(10, 5));
  const auto closed = drive(wm, 25);
  // Windows open at events 0, 5, 10, 15, 20.
  ASSERT_EQ(closed.size(), 5u);
  EXPECT_EQ(closed[0].kept.front().seq, 0u);
  EXPECT_EQ(closed[0].kept.back().seq, 9u);
  EXPECT_EQ(closed[1].kept.front().seq, 5u);
  EXPECT_EQ(closed[1].kept.back().seq, 14u);
  // The last two windows are cut short by end-of-stream.
  EXPECT_EQ(closed[4].kept.front().seq, 20u);
  EXPECT_EQ(closed[4].arrivals, 5u);
}

TEST(WindowManager, PositionsAreArrivalIndices) {
  WindowManager wm(count_slide_spec(10, 5));
  const auto closed = drive(wm, 15);
  ASSERT_GE(closed.size(), 1u);
  const auto& w = closed[0];
  ASSERT_EQ(w.kept_pos.size(), 10u);
  for (std::size_t i = 0; i < w.kept_pos.size(); ++i) {
    EXPECT_EQ(w.kept_pos[i], i);
  }
}

TEST(WindowManager, DroppedEventsDoNotShiftPositions) {
  WindowManager wm(count_slide_spec(5, 5));
  std::vector<Window> closed;
  for (std::size_t i = 0; i < 5; ++i) {
    const Event e = make_event(i, static_cast<double>(i));
    for (const auto& m : wm.offer(e)) {
      if (i % 2 == 0) wm.keep(m, e);  // drop odd arrivals
    }
  }
  wm.close_all();
  for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  ASSERT_EQ(closed.size(), 1u);
  const auto& w = closed[0];
  EXPECT_EQ(w.arrivals, 5u);  // positions still count every offered event
  ASSERT_EQ(w.kept.size(), 3u);
  EXPECT_EQ(w.kept_pos[0], 0u);
  EXPECT_EQ(w.kept_pos[1], 2u);
  EXPECT_EQ(w.kept_pos[2], 4u);
}

TEST(WindowManager, PredicateOpenerStartsWindowAtMatchingEvent) {
  WindowManager wm(predicate_time_spec(10.0, /*opener_type=*/1));
  std::vector<Window> closed;
  // Stream: type-0 events with a type-1 event at t=3.
  for (std::size_t i = 0; i < 30; ++i) {
    const Event e = make_event(i, static_cast<double>(i), i == 3 ? 1 : 0);
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
    for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  }
  wm.close_all();
  for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].open_ts, 3.0);
  EXPECT_EQ(closed[0].kept.front().seq, 3u);
  // Window covers [3, 13): events 3..12.
  EXPECT_EQ(closed[0].arrivals, 10u);
  EXPECT_EQ(closed[0].kept.back().seq, 12u);
}

TEST(WindowManager, NoOpenerMeansNoWindows) {
  WindowManager wm(predicate_time_spec(10.0, /*opener_type=*/7));
  const auto closed = drive(wm, 50, /*type=*/0);
  EXPECT_TRUE(closed.empty());
  EXPECT_EQ(wm.windows_opened(), 0u);
}

TEST(WindowManager, EveryOpenerEventOpensAWindow) {
  WindowManager wm(predicate_time_spec(5.0, /*opener_type=*/1));
  const auto closed = drive(wm, 20, /*type=*/1);
  EXPECT_EQ(closed.size(), 20u);  // one (overlapping) window per event
}

TEST(WindowManager, OverlappingWindowsSeeTheSameEventAtDifferentPositions) {
  WindowManager wm(predicate_time_spec(6.0, 1));
  std::vector<std::vector<WindowManager::Membership>> memberships;
  for (std::size_t i = 0; i < 4; ++i) {
    const Event e = make_event(i, static_cast<double>(i), 1);
    auto& ms = wm.offer(e);
    memberships.push_back(ms);
    for (const auto& m : ms) wm.keep(m, e);
  }
  // Event 3 belongs to windows opened at t=0,1,2,3 with positions 3,2,1,0.
  ASSERT_EQ(memberships[3].size(), 4u);
  EXPECT_EQ(memberships[3][0].position, 3u);
  EXPECT_EQ(memberships[3][1].position, 2u);
  EXPECT_EQ(memberships[3][2].position, 1u);
  EXPECT_EQ(memberships[3][3].position, 0u);
}

TEST(WindowManager, TimeWindowsCloseBeforeTheExpiringEventIsRouted) {
  WindowManager wm(predicate_time_spec(5.0, 1));
  // Opener at t=0; event at t=4.9 is inside, event at t=5.0 is not.
  const Event open = make_event(0, 0.0, 1);
  for (const auto& m : wm.offer(open)) wm.keep(m, open);
  const Event inside = make_event(1, 4.9, 0);
  EXPECT_EQ(wm.offer(inside).size(), 1u);
  const Event outside = make_event(2, 5.0, 0);
  EXPECT_EQ(wm.offer(outside).size(), 0u);
  const auto closed = wm.drain_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].arrivals, 2u);
}

TEST(WindowManager, AvgClosedWindowSizeTracksArrivals) {
  WindowManager wm(count_slide_spec(4, 4));
  (void)drive(wm, 8);
  EXPECT_DOUBLE_EQ(wm.avg_closed_window_size(), 4.0);
}

TEST(WindowManager, OpenCountReflectsConcurrentWindows) {
  WindowManager wm(count_slide_spec(10, 2));
  std::size_t max_open = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    const Event e = make_event(i, static_cast<double>(i));
    wm.offer(e);
    max_open = std::max(max_open, wm.open_count());
  }
  EXPECT_EQ(max_open, 5u);  // span 10 / slide 2
}

TEST(WindowManager, CloseAllFlushesPartialWindows) {
  WindowManager wm(count_slide_spec(100, 50));
  for (std::size_t i = 0; i < 10; ++i) {
    const Event e = make_event(i, static_cast<double>(i));
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
  }
  EXPECT_EQ(wm.open_count(), 1u);
  wm.close_all();
  EXPECT_EQ(wm.open_count(), 0u);
  const auto closed = wm.drain_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].arrivals, 10u);
}

TEST(WindowManager, WindowIdsAreUniqueAndMonotone) {
  WindowManager wm(count_slide_spec(6, 2));
  std::vector<WindowId> ids;
  for (std::size_t i = 0; i < 20; ++i) {
    const Event e = make_event(i, static_cast<double>(i));
    for (const auto& m : wm.offer(e)) {
      if (m.position == 0) ids.push_back(m.window);
    }
  }
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_EQ(ids[i], ids[i - 1] + 1);
}

WindowSpec pattern_window_spec(EventTypeId opener, EventTypeId closer,
                               std::size_t cap = 100) {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kPredicate;
  spec.span_events = cap;
  spec.closer = element("close", TypeSet{closer}, DirectionFilter::kAny);
  spec.open_kind = WindowOpen::kPredicate;
  spec.opener = element("open", TypeSet{opener}, DirectionFilter::kAny);
  return spec;
}

TEST(WindowManager, PatternWindowClosesOnTheCloserEvent) {
  WindowManager wm(pattern_window_spec(/*opener=*/1, /*closer=*/2));
  std::vector<Window> closed;
  // open(1) x x close(2) x x
  const EventTypeId stream[] = {1, 0, 0, 2, 0, 0};
  for (std::size_t i = 0; i < std::size(stream); ++i) {
    const Event e = make_event(i, static_cast<double>(i), stream[i]);
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
    for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  }
  ASSERT_EQ(closed.size(), 1u);
  // The closer is part of the window: events 0..3.
  EXPECT_EQ(closed[0].arrivals, 4u);
  EXPECT_EQ(closed[0].kept.back().type, 2);
}

TEST(WindowManager, PatternWindowSafetyCapCloses) {
  WindowManager wm(pattern_window_spec(1, 2, /*cap=*/5));
  std::vector<Window> closed;
  // Opener, then no closer ever: cap at 5 events.
  for (std::size_t i = 0; i < 10; ++i) {
    const Event e = make_event(i, static_cast<double>(i), i == 0 ? 1 : 0);
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
    for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  }
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].arrivals, 5u);
}

TEST(WindowManager, CloserEndsAllOverlappingPatternWindows) {
  WindowManager wm(pattern_window_spec(1, 2));
  std::vector<Window> closed;
  // Two openers, then one closer: both windows close together.
  const EventTypeId stream[] = {1, 0, 1, 0, 2, 0};
  for (std::size_t i = 0; i < std::size(stream); ++i) {
    const Event e = make_event(i, static_cast<double>(i), stream[i]);
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
    for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  }
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].arrivals, 5u);  // events 0..4
  EXPECT_EQ(closed[1].arrivals, 3u);  // events 2..4
}

TEST(WindowManager, PatternWindowsReopenAfterClosing) {
  WindowManager wm(pattern_window_spec(1, 2));
  std::vector<Window> closed;
  const EventTypeId stream[] = {1, 2, 0, 1, 0, 2};
  for (std::size_t i = 0; i < std::size(stream); ++i) {
    const Event e = make_event(i, static_cast<double>(i), stream[i]);
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
    for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  }
  // The second window's closer arrived as the stream's final event; its
  // deferred close happens at end-of-stream.
  wm.close_all();
  for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].arrivals, 2u);  // {open, close}
  EXPECT_EQ(closed[1].arrivals, 3u);  // {open, x, close}
}

TEST(WindowSpec, PredicateSpanRequiresSafetyCap) {
  WindowSpec spec = pattern_window_spec(1, 2);
  spec.span_events = 0;
  EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(WindowSpec, RejectsInvalidConfigurations) {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = 0;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = 1;
  EXPECT_THROW(spec.validate(), ConfigError);

  spec.span_events = 5;
  spec.slide_events = 0;
  EXPECT_THROW(spec.validate(), ConfigError);

  spec.span_kind = WindowSpan::kTime;
  spec.span_seconds = 0.0;
  spec.slide_events = 1;
  EXPECT_THROW(spec.validate(), ConfigError);
}

// --- multi-query keep masks -------------------------------------------------

TEST(WindowManagerMasks, FilterViewSelectsEachQuerysKeeps) {
  // Two queries share tumbling 6-event windows: query 0 keeps even seqs,
  // query 1 keeps multiples of 3.  Each filtered view must contain exactly
  // that query's events, in arrival order, with unchanged positions.
  WindowManager wm(count_slide_spec(6, 6), /*track_masks=*/true);
  std::vector<std::vector<std::uint64_t>> q0_windows, q1_windows;
  std::vector<KeptEntry> scratch;
  auto drain = [&] {
    for (const WindowView& w : wm.drain_closed()) {
      const WindowView v0 = filter_view_for_query(w, 0, scratch);
      std::vector<std::uint64_t> seqs0;
      for (std::size_t i = 0; i < v0.kept_count(); ++i) {
        EXPECT_EQ(v0.kept(i).seq % 2, 0u);
        EXPECT_EQ(v0.pos(i), v0.kept(i).seq % 6);
        seqs0.push_back(v0.kept(i).seq);
      }
      q0_windows.push_back(std::move(seqs0));
      std::vector<KeptEntry> scratch1;
      const WindowView v1 = filter_view_for_query(w, 1, scratch1);
      std::vector<std::uint64_t> seqs1;
      for (std::size_t i = 0; i < v1.kept_count(); ++i) {
        EXPECT_EQ(v1.kept(i).seq % 3, 0u);
        seqs1.push_back(v1.kept(i).seq);
      }
      q1_windows.push_back(std::move(seqs1));
      EXPECT_EQ(v0.arrivals, w.arrivals) << "window metadata must not change";
    }
  };
  for (std::uint64_t i = 0; i < 18; ++i) {
    const Event e = make_event(i, static_cast<double>(i));
    for (const auto& m : wm.offer(e)) {
      QueryMask mask = 0;
      if (i % 2 == 0) mask |= 1u;
      if (i % 3 == 0) mask |= 2u;
      if (mask != 0) wm.keep(m, e, mask);
    }
    drain();
  }
  wm.close_all();
  drain();

  ASSERT_EQ(q0_windows.size(), 3u);
  EXPECT_EQ(q0_windows[0], (std::vector<std::uint64_t>{0, 2, 4}));
  EXPECT_EQ(q1_windows[0], (std::vector<std::uint64_t>{0, 3}));
  EXPECT_EQ(q0_windows[1], (std::vector<std::uint64_t>{6, 8, 10}));
  EXPECT_EQ(q1_windows[1], (std::vector<std::uint64_t>{6, 9}));
}

TEST(WindowManagerMasks, UntrackedManagerViewsHaveNoMasks) {
  WindowManager wm(count_slide_spec(4, 4));
  for (std::uint64_t i = 0; i < 5; ++i) {
    const Event e = make_event(i, static_cast<double>(i));
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
  }
  for (const WindowView& w : wm.drain_closed()) {
    EXPECT_TRUE(w.kept_masks.empty());
    std::vector<KeptEntry> scratch;
    EXPECT_THROW(filter_view_for_query(w, 0, scratch), ConfigError);
  }
}

TEST(WindowManagerMasks, AllQueriesMaskHelper) {
  EXPECT_EQ(all_queries_mask(1), 0x1ull);
  EXPECT_EQ(all_queries_mask(5), 0x1full);
  EXPECT_EQ(all_queries_mask(64), ~0ull);
}

TEST(WindowSpecEquality, SameWindowingGroupsSpecsStructurally) {
  const WindowSpec a = count_slide_spec(6, 3);
  EXPECT_TRUE(same_windowing(a, count_slide_spec(6, 3)));
  EXPECT_FALSE(same_windowing(a, count_slide_spec(6, 2)));
  EXPECT_FALSE(same_windowing(a, count_slide_spec(8, 3)));

  const WindowSpec t1 = predicate_time_spec(10.0, 2);
  WindowSpec t2 = predicate_time_spec(10.0, 2);
  t2.opener.name = "different-name";  // names are diagnostics only
  EXPECT_TRUE(same_windowing(t1, t2));
  EXPECT_FALSE(same_windowing(t1, predicate_time_spec(10.0, 3)));
  EXPECT_FALSE(same_windowing(t1, predicate_time_spec(9.0, 2)));
  EXPECT_FALSE(same_windowing(t1, a));

  WindowSpec p1 = count_slide_spec(40, 7);
  p1.span_kind = WindowSpan::kPredicate;
  p1.closer = element("close", TypeSet{4}, DirectionFilter::kAny);
  WindowSpec p2 = p1;
  EXPECT_TRUE(same_windowing(p1, p2));
  p2.closer = element("close", TypeSet{5}, DirectionFilter::kAny);
  EXPECT_FALSE(same_windowing(p1, p2));
  p2 = p1;
  p2.closer.direction = DirectionFilter::kRising;
  EXPECT_FALSE(same_windowing(p1, p2));
}

}  // namespace
}  // namespace espice
