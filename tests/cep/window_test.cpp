#include "cep/window.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace espice {
namespace {

Event make_event(std::uint64_t seq, double ts, EventTypeId type = 0,
                 double value = 1.0) {
  Event e;
  e.type = type;
  e.seq = seq;
  e.ts = ts;
  e.value = value;
  return e;
}

WindowSpec count_slide_spec(std::size_t span, std::size_t slide) {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = span;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = slide;
  return spec;
}

WindowSpec predicate_time_spec(double span_seconds, EventTypeId opener_type) {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kTime;
  spec.span_seconds = span_seconds;
  spec.open_kind = WindowOpen::kPredicate;
  spec.opener = element("open", TypeSet{opener_type}, DirectionFilter::kAny);
  return spec;
}

// Offers a stream of `n` events one second apart, keeping everything.
std::vector<Window> drive(WindowManager& wm, std::size_t n,
                          EventTypeId type = 0) {
  std::vector<Window> closed;
  for (std::size_t i = 0; i < n; ++i) {
    const Event e = make_event(i, static_cast<double>(i), type);
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
    for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  }
  wm.close_all();
  for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  return closed;
}

TEST(WindowManager, TumblingCountWindowsPartitionTheStream) {
  WindowManager wm(count_slide_spec(5, 5));
  const auto closed = drive(wm, 20);
  ASSERT_EQ(closed.size(), 4u);
  for (const auto& w : closed) {
    EXPECT_EQ(w.arrivals, 5u);
    EXPECT_EQ(w.kept.size(), 5u);
  }
  EXPECT_EQ(closed[0].kept.front().seq, 0u);
  EXPECT_EQ(closed[1].kept.front().seq, 5u);
}

TEST(WindowManager, SlidingCountWindowsOverlap) {
  WindowManager wm(count_slide_spec(10, 5));
  const auto closed = drive(wm, 25);
  // Windows open at events 0, 5, 10, 15, 20.
  ASSERT_EQ(closed.size(), 5u);
  EXPECT_EQ(closed[0].kept.front().seq, 0u);
  EXPECT_EQ(closed[0].kept.back().seq, 9u);
  EXPECT_EQ(closed[1].kept.front().seq, 5u);
  EXPECT_EQ(closed[1].kept.back().seq, 14u);
  // The last two windows are cut short by end-of-stream.
  EXPECT_EQ(closed[4].kept.front().seq, 20u);
  EXPECT_EQ(closed[4].arrivals, 5u);
}

TEST(WindowManager, PositionsAreArrivalIndices) {
  WindowManager wm(count_slide_spec(10, 5));
  const auto closed = drive(wm, 15);
  ASSERT_GE(closed.size(), 1u);
  const auto& w = closed[0];
  ASSERT_EQ(w.kept_pos.size(), 10u);
  for (std::size_t i = 0; i < w.kept_pos.size(); ++i) {
    EXPECT_EQ(w.kept_pos[i], i);
  }
}

TEST(WindowManager, DroppedEventsDoNotShiftPositions) {
  WindowManager wm(count_slide_spec(5, 5));
  std::vector<Window> closed;
  for (std::size_t i = 0; i < 5; ++i) {
    const Event e = make_event(i, static_cast<double>(i));
    for (const auto& m : wm.offer(e)) {
      if (i % 2 == 0) wm.keep(m, e);  // drop odd arrivals
    }
  }
  wm.close_all();
  for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  ASSERT_EQ(closed.size(), 1u);
  const auto& w = closed[0];
  EXPECT_EQ(w.arrivals, 5u);  // positions still count every offered event
  ASSERT_EQ(w.kept.size(), 3u);
  EXPECT_EQ(w.kept_pos[0], 0u);
  EXPECT_EQ(w.kept_pos[1], 2u);
  EXPECT_EQ(w.kept_pos[2], 4u);
}

TEST(WindowManager, PredicateOpenerStartsWindowAtMatchingEvent) {
  WindowManager wm(predicate_time_spec(10.0, /*opener_type=*/1));
  std::vector<Window> closed;
  // Stream: type-0 events with a type-1 event at t=3.
  for (std::size_t i = 0; i < 30; ++i) {
    const Event e = make_event(i, static_cast<double>(i), i == 3 ? 1 : 0);
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
    for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  }
  wm.close_all();
  for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].open_ts, 3.0);
  EXPECT_EQ(closed[0].kept.front().seq, 3u);
  // Window covers [3, 13): events 3..12.
  EXPECT_EQ(closed[0].arrivals, 10u);
  EXPECT_EQ(closed[0].kept.back().seq, 12u);
}

TEST(WindowManager, NoOpenerMeansNoWindows) {
  WindowManager wm(predicate_time_spec(10.0, /*opener_type=*/7));
  const auto closed = drive(wm, 50, /*type=*/0);
  EXPECT_TRUE(closed.empty());
  EXPECT_EQ(wm.windows_opened(), 0u);
}

TEST(WindowManager, EveryOpenerEventOpensAWindow) {
  WindowManager wm(predicate_time_spec(5.0, /*opener_type=*/1));
  const auto closed = drive(wm, 20, /*type=*/1);
  EXPECT_EQ(closed.size(), 20u);  // one (overlapping) window per event
}

TEST(WindowManager, OverlappingWindowsSeeTheSameEventAtDifferentPositions) {
  WindowManager wm(predicate_time_spec(6.0, 1));
  std::vector<std::vector<WindowManager::Membership>> memberships;
  for (std::size_t i = 0; i < 4; ++i) {
    const Event e = make_event(i, static_cast<double>(i), 1);
    auto& ms = wm.offer(e);
    memberships.push_back(ms);
    for (const auto& m : ms) wm.keep(m, e);
  }
  // Event 3 belongs to windows opened at t=0,1,2,3 with positions 3,2,1,0.
  ASSERT_EQ(memberships[3].size(), 4u);
  EXPECT_EQ(memberships[3][0].position, 3u);
  EXPECT_EQ(memberships[3][1].position, 2u);
  EXPECT_EQ(memberships[3][2].position, 1u);
  EXPECT_EQ(memberships[3][3].position, 0u);
}

TEST(WindowManager, TimeWindowsCloseBeforeTheExpiringEventIsRouted) {
  WindowManager wm(predicate_time_spec(5.0, 1));
  // Opener at t=0; event at t=4.9 is inside, event at t=5.0 is not.
  const Event open = make_event(0, 0.0, 1);
  for (const auto& m : wm.offer(open)) wm.keep(m, open);
  const Event inside = make_event(1, 4.9, 0);
  EXPECT_EQ(wm.offer(inside).size(), 1u);
  const Event outside = make_event(2, 5.0, 0);
  EXPECT_EQ(wm.offer(outside).size(), 0u);
  const auto closed = wm.drain_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].arrivals, 2u);
}

TEST(WindowManager, AvgClosedWindowSizeTracksArrivals) {
  WindowManager wm(count_slide_spec(4, 4));
  (void)drive(wm, 8);
  EXPECT_DOUBLE_EQ(wm.avg_closed_window_size(), 4.0);
}

TEST(WindowManager, OpenCountReflectsConcurrentWindows) {
  WindowManager wm(count_slide_spec(10, 2));
  std::size_t max_open = 0;
  for (std::size_t i = 0; i < 40; ++i) {
    const Event e = make_event(i, static_cast<double>(i));
    wm.offer(e);
    max_open = std::max(max_open, wm.open_count());
  }
  EXPECT_EQ(max_open, 5u);  // span 10 / slide 2
}

TEST(WindowManager, CloseAllFlushesPartialWindows) {
  WindowManager wm(count_slide_spec(100, 50));
  for (std::size_t i = 0; i < 10; ++i) {
    const Event e = make_event(i, static_cast<double>(i));
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
  }
  EXPECT_EQ(wm.open_count(), 1u);
  wm.close_all();
  EXPECT_EQ(wm.open_count(), 0u);
  const auto closed = wm.drain_closed();
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].arrivals, 10u);
}

TEST(WindowManager, WindowIdsAreUniqueAndMonotone) {
  WindowManager wm(count_slide_spec(6, 2));
  std::vector<WindowId> ids;
  for (std::size_t i = 0; i < 20; ++i) {
    const Event e = make_event(i, static_cast<double>(i));
    for (const auto& m : wm.offer(e)) {
      if (m.position == 0) ids.push_back(m.window);
    }
  }
  for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_EQ(ids[i], ids[i - 1] + 1);
}

WindowSpec pattern_window_spec(EventTypeId opener, EventTypeId closer,
                               std::size_t cap = 100) {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kPredicate;
  spec.span_events = cap;
  spec.closer = element("close", TypeSet{closer}, DirectionFilter::kAny);
  spec.open_kind = WindowOpen::kPredicate;
  spec.opener = element("open", TypeSet{opener}, DirectionFilter::kAny);
  return spec;
}

TEST(WindowManager, PatternWindowClosesOnTheCloserEvent) {
  WindowManager wm(pattern_window_spec(/*opener=*/1, /*closer=*/2));
  std::vector<Window> closed;
  // open(1) x x close(2) x x
  const EventTypeId stream[] = {1, 0, 0, 2, 0, 0};
  for (std::size_t i = 0; i < std::size(stream); ++i) {
    const Event e = make_event(i, static_cast<double>(i), stream[i]);
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
    for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  }
  ASSERT_EQ(closed.size(), 1u);
  // The closer is part of the window: events 0..3.
  EXPECT_EQ(closed[0].arrivals, 4u);
  EXPECT_EQ(closed[0].kept.back().type, 2);
}

TEST(WindowManager, PatternWindowSafetyCapCloses) {
  WindowManager wm(pattern_window_spec(1, 2, /*cap=*/5));
  std::vector<Window> closed;
  // Opener, then no closer ever: cap at 5 events.
  for (std::size_t i = 0; i < 10; ++i) {
    const Event e = make_event(i, static_cast<double>(i), i == 0 ? 1 : 0);
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
    for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  }
  ASSERT_EQ(closed.size(), 1u);
  EXPECT_EQ(closed[0].arrivals, 5u);
}

TEST(WindowManager, CloserEndsAllOverlappingPatternWindows) {
  WindowManager wm(pattern_window_spec(1, 2));
  std::vector<Window> closed;
  // Two openers, then one closer: both windows close together.
  const EventTypeId stream[] = {1, 0, 1, 0, 2, 0};
  for (std::size_t i = 0; i < std::size(stream); ++i) {
    const Event e = make_event(i, static_cast<double>(i), stream[i]);
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
    for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  }
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].arrivals, 5u);  // events 0..4
  EXPECT_EQ(closed[1].arrivals, 3u);  // events 2..4
}

TEST(WindowManager, PatternWindowsReopenAfterClosing) {
  WindowManager wm(pattern_window_spec(1, 2));
  std::vector<Window> closed;
  const EventTypeId stream[] = {1, 2, 0, 1, 0, 2};
  for (std::size_t i = 0; i < std::size(stream); ++i) {
    const Event e = make_event(i, static_cast<double>(i), stream[i]);
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
    for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  }
  // The second window's closer arrived as the stream's final event; its
  // deferred close happens at end-of-stream.
  wm.close_all();
  for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].arrivals, 2u);  // {open, close}
  EXPECT_EQ(closed[1].arrivals, 3u);  // {open, x, close}
}

TEST(WindowSpec, PredicateSpanRequiresSafetyCap) {
  WindowSpec spec = pattern_window_spec(1, 2);
  spec.span_events = 0;
  EXPECT_THROW(spec.validate(), ConfigError);
}

TEST(WindowSpec, RejectsInvalidConfigurations) {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = 0;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = 1;
  EXPECT_THROW(spec.validate(), ConfigError);

  spec.span_events = 5;
  spec.slide_events = 0;
  EXPECT_THROW(spec.validate(), ConfigError);

  spec.span_kind = WindowSpan::kTime;
  spec.span_seconds = 0.0;
  spec.slide_events = 1;
  EXPECT_THROW(spec.validate(), ConfigError);
}

}  // namespace
}  // namespace espice
