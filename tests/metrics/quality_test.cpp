#include "metrics/quality.hpp"

#include <gtest/gtest.h>

namespace espice {
namespace {

ComplexEvent make_match(WindowId window,
                        const std::vector<std::pair<std::uint32_t,
                                                    std::uint64_t>>& binds) {
  ComplexEvent ce;
  ce.window = window;
  for (const auto& [elem, seq] : binds) {
    Constituent c;
    c.element = elem;
    c.event.seq = seq;
    ce.constituents.push_back(c);
  }
  return ce;
}

TEST(MatchIdentity, EqualMatchesHaveEqualIdentity) {
  const auto a = make_match(1, {{0, 10}, {1, 20}});
  const auto b = make_match(1, {{0, 10}, {1, 20}});
  EXPECT_EQ(match_identity(a), match_identity(b));
}

TEST(MatchIdentity, ConstituentOrderDoesNotMatter) {
  const auto a = make_match(1, {{1, 20}, {0, 10}});
  const auto b = make_match(1, {{0, 10}, {1, 20}});
  EXPECT_EQ(match_identity(a), match_identity(b));
}

TEST(MatchIdentity, DifferentWindowsDiffer) {
  const auto a = make_match(1, {{0, 10}});
  const auto b = make_match(2, {{0, 10}});
  EXPECT_NE(match_identity(a), match_identity(b));
}

TEST(MatchIdentity, DifferentEventsDiffer) {
  const auto a = make_match(1, {{0, 10}});
  const auto b = make_match(1, {{0, 11}});
  EXPECT_NE(match_identity(a), match_identity(b));
}

TEST(MatchIdentity, DifferentElementBindingsDiffer) {
  const auto a = make_match(1, {{0, 10}, {1, 20}});
  const auto b = make_match(1, {{0, 20}, {1, 10}});
  EXPECT_NE(match_identity(a), match_identity(b));
}

TEST(CompareQuality, IdenticalSetsAreClean) {
  const std::vector<ComplexEvent> golden{make_match(1, {{0, 1}}),
                                         make_match(2, {{0, 2}})};
  const auto report = compare_quality(golden, golden);
  EXPECT_EQ(report.golden, 2u);
  EXPECT_EQ(report.detected, 2u);
  EXPECT_EQ(report.false_negatives, 0u);
  EXPECT_EQ(report.false_positives, 0u);
  EXPECT_DOUBLE_EQ(report.fn_percent(), 0.0);
  EXPECT_DOUBLE_EQ(report.fp_percent(), 0.0);
}

TEST(CompareQuality, MissingMatchIsFalseNegative) {
  const std::vector<ComplexEvent> golden{make_match(1, {{0, 1}}),
                                         make_match(2, {{0, 2}})};
  const std::vector<ComplexEvent> detected{golden[0]};
  const auto report = compare_quality(golden, detected);
  EXPECT_EQ(report.false_negatives, 1u);
  EXPECT_EQ(report.false_positives, 0u);
  EXPECT_DOUBLE_EQ(report.fn_percent(), 50.0);
}

TEST(CompareQuality, ExtraMatchIsFalsePositive) {
  const std::vector<ComplexEvent> golden{make_match(1, {{0, 1}})};
  const std::vector<ComplexEvent> detected{golden[0], make_match(1, {{0, 9}})};
  const auto report = compare_quality(golden, detected);
  EXPECT_EQ(report.false_negatives, 0u);
  EXPECT_EQ(report.false_positives, 1u);
  EXPECT_DOUBLE_EQ(report.fp_percent(), 100.0);
}

TEST(CompareQuality, ShiftedMatchCountsAsBoth) {
  // The paper's Section 2.1 example: dropping A1 turns (A1,B3) into (A2,B3):
  // one false positive and -- with (A2,B4) also gone -- two false negatives.
  const std::vector<ComplexEvent> golden{
      make_match(1, {{0, 1}, {1, 3}}),   // (A1,B3)
      make_match(1, {{0, 2}, {1, 4}})};  // (A2,B4)
  const std::vector<ComplexEvent> detected{
      make_match(1, {{0, 2}, {1, 3}})};  // (A2,B3)
  const auto report = compare_quality(golden, detected);
  EXPECT_EQ(report.false_negatives, 2u);
  EXPECT_EQ(report.false_positives, 1u);
  EXPECT_DOUBLE_EQ(report.fn_percent(), 100.0);
  EXPECT_DOUBLE_EQ(report.fp_percent(), 50.0);
}

TEST(CompareQuality, EmptyGoldenGivesZeroPercents) {
  const std::vector<ComplexEvent> detected{make_match(1, {{0, 1}})};
  const auto report = compare_quality({}, detected);
  EXPECT_EQ(report.false_positives, 1u);
  EXPECT_DOUBLE_EQ(report.fn_percent(), 0.0);
  EXPECT_DOUBLE_EQ(report.fp_percent(), 0.0);  // undefined -> reported as 0
}

TEST(CompareQuality, BothEmptyIsClean) {
  const auto report = compare_quality({}, {});
  EXPECT_EQ(report.golden, 0u);
  EXPECT_EQ(report.false_negatives, 0u);
  EXPECT_EQ(report.false_positives, 0u);
}

TEST(CompareQuality, DuplicateMatchesCollapse) {
  // Identity is a set: duplicates in either list do not inflate counts.
  const std::vector<ComplexEvent> golden{make_match(1, {{0, 1}}),
                                         make_match(1, {{0, 1}})};
  const auto report = compare_quality(golden, golden);
  EXPECT_EQ(report.false_negatives, 0u);
  EXPECT_EQ(report.false_positives, 0u);
}

}  // namespace
}  // namespace espice
