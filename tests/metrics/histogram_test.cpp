#include "metrics/histogram.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

using test_support::seed_trace;
using test_support::test_seed;

TEST(LatencyHistogram, EmptyHistogramIsZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(LatencyHistogram, ExactCountersRideAlong) {
  LatencyHistogram h;
  h.record(10);
  h.record(20);
  h.record(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

// Values below 2^kSubBits land in unit-width buckets: exact recovery.
TEST(LatencyHistogram, SmallValuesAreExact) {
  LatencyHistogram h;
  for (std::uint64_t v = 0; v < 64; ++v) {
    EXPECT_EQ(LatencyHistogram::bucket_upper_bound(
                  LatencyHistogram::bucket_index(v)),
              v);
  }
}

// bucket_upper_bound(bucket_index(v)) >= v always, and the relative
// overshoot is bounded by the sub-bucket resolution (1/64).
TEST(LatencyHistogram, BucketRoundTripBoundsRelativeError) {
  const std::uint64_t probes[] = {
      0,   1,   63,  64,  65,  100, 127, 128, 1000, 4095, 4096,
      1u << 20, (1u << 20) + 17, 123456789u, std::uint64_t{1} << 40,
      (std::uint64_t{1} << 40) + 12345, std::uint64_t{1} << 62,
      ~std::uint64_t{0}};
  for (const std::uint64_t v : probes) {
    const std::size_t idx = LatencyHistogram::bucket_index(v);
    ASSERT_LT(idx, LatencyHistogram::kBuckets) << v;
    const std::uint64_t ub = LatencyHistogram::bucket_upper_bound(idx);
    EXPECT_GE(ub, v) << v;
    if (v >= 64) {
      // Bucket width is 2^(group-1) = v's magnitude / 64: <= ~1.6% error.
      EXPECT_LE(static_cast<double>(ub - v),
                static_cast<double>(v) / 64.0 + 1.0)
          << v;
    }
    // Monotone: the next value's bucket never sorts before v's.
    if (v < ~std::uint64_t{0}) {
      EXPECT_LE(idx, LatencyHistogram::bucket_index(v + 1)) << v;
    }
  }
}

TEST(LatencyHistogram, QuantileTracksExactNearestRank) {
  const std::uint64_t seed = test_seed(0x41517u);
  SCOPED_TRACE(seed_trace(seed));
  Rng rng(seed);
  LatencyHistogram h;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform-ish spread: the regime percentile recorders live in.
    const std::uint64_t v = rng.next() >> (rng.uniform_int(40));
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    std::size_t rank = static_cast<std::size_t>(
        std::max(1.0, std::ceil(q * static_cast<double>(values.size()))));
    rank = std::min(rank, values.size());
    const double exact = static_cast<double>(values[rank - 1]);
    const double est = static_cast<double>(h.quantile(q));
    // Within one sub-bucket of relative error (plus slack for ties at
    // bucket edges), and never below the exact nearest-rank value's
    // bucket floor.
    EXPECT_LE(std::abs(est - exact), exact / 32.0 + 1.0) << "q=" << q;
  }
  EXPECT_EQ(h.quantile(0.0), h.min());
  EXPECT_EQ(h.quantile(1.0), h.max());
}

TEST(LatencyHistogram, MergeEqualsRecordingEverythingInOne) {
  const std::uint64_t seed = test_seed(0x6e46u);
  SCOPED_TRACE(seed_trace(seed));
  Rng rng(seed);
  LatencyHistogram a, b, all;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = rng.next() >> 20;
    ((i % 2 == 0) ? a : b).record(v);
    all.record(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_EQ(a.sum(), all.sum());
  EXPECT_EQ(a.min(), all.min());
  EXPECT_EQ(a.max(), all.max());
  for (const double q : {0.5, 0.99, 0.999}) {
    EXPECT_EQ(a.quantile(q), all.quantile(q)) << q;
  }
}

TEST(LatencyHistogram, MergeWithEmptyIsIdentity) {
  LatencyHistogram h, empty;
  h.record(42);
  h.merge(empty);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  empty.merge(h);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_EQ(empty.quantile(0.5), 42u);
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(7);
  h.record(1000);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.quantile(0.99), 0u);
}

}  // namespace
}  // namespace espice
