#include "metrics/latency.hpp"

#include <gtest/gtest.h>

namespace espice {
namespace {

std::vector<LatencySample> samples(
    const std::vector<std::pair<double, double>>& pairs) {
  std::vector<LatencySample> out;
  for (const auto& [ts, lat] : pairs) out.push_back({ts, lat});
  return out;
}

TEST(LatencySummary, EmptyInputYieldsEmptySummary) {
  const auto s = summarize_latency({}, 1.0);
  EXPECT_EQ(s.events, 0u);
  EXPECT_TRUE(s.buckets.empty());
  EXPECT_DOUBLE_EQ(s.violation_percent(), 0.0);
}

TEST(LatencySummary, OverallStatistics) {
  const auto s = summarize_latency(
      samples({{0.1, 0.2}, {0.2, 0.4}, {0.3, 0.6}}), 1.0);
  EXPECT_EQ(s.events, 3u);
  EXPECT_NEAR(s.mean, 0.4, 1e-12);
  EXPECT_NEAR(s.max, 0.6, 1e-12);
  EXPECT_EQ(s.violations, 0u);
}

TEST(LatencySummary, ViolationsAreCountedAgainstBound) {
  const auto s = summarize_latency(
      samples({{0.1, 0.5}, {0.2, 1.5}, {0.3, 2.0}, {0.4, 0.9}}), 1.0);
  EXPECT_EQ(s.violations, 2u);
  EXPECT_DOUBLE_EQ(s.violation_percent(), 50.0);
}

TEST(LatencySummary, ExactBoundIsNotAViolation) {
  const auto s = summarize_latency(samples({{0.1, 1.0}}), 1.0);
  EXPECT_EQ(s.violations, 0u);
}

TEST(LatencySummary, BucketsGroupByCompletionSecond) {
  const auto s = summarize_latency(
      samples({{0.2, 0.1}, {0.8, 0.3}, {1.5, 0.5}, {3.2, 0.7}}), 1.0);
  ASSERT_EQ(s.buckets.size(), 3u);  // seconds 0, 1, 3 (second 2 empty)
  EXPECT_DOUBLE_EQ(s.buckets[0].start_ts, 0.0);
  EXPECT_EQ(s.buckets[0].events, 2u);
  EXPECT_NEAR(s.buckets[0].mean, 0.2, 1e-12);
  EXPECT_NEAR(s.buckets[0].max, 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(s.buckets[1].start_ts, 1.0);
  EXPECT_DOUBLE_EQ(s.buckets[2].start_ts, 3.0);
}

TEST(LatencySummary, CustomBucketWidth) {
  const auto s = summarize_latency(
      samples({{0.2, 0.1}, {0.8, 0.3}, {1.5, 0.5}}), 1.0, 0.5);
  ASSERT_EQ(s.buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(s.buckets[0].start_ts, 0.0);
  EXPECT_DOUBLE_EQ(s.buckets[1].start_ts, 0.5);
  EXPECT_DOUBLE_EQ(s.buckets[2].start_ts, 1.5);
}

TEST(LatencySummary, P99TracksTail) {
  std::vector<LatencySample> input;
  for (int i = 0; i < 99; ++i) input.push_back({0.1 * i, 0.1});
  input.push_back({10.0, 5.0});
  const auto s = summarize_latency(input, 1.0);
  EXPECT_GT(s.p99, 0.1);
  EXPECT_NEAR(s.max, 5.0, 1e-12);
}

TEST(LatencySummary, RejectsNonPositiveBucket) {
  EXPECT_THROW(summarize_latency(samples({{0.1, 0.1}}), 1.0, 0.0), ConfigError);
}

// Regression: a negative completion timestamp used to flow into a raw
// float->unsigned cast (undefined behavior; UBSan flags it on the old
// code).  Negative and NaN timestamps now clamp into the first bucket and
// the summary stays well-defined.
TEST(LatencySummary, NegativeCompletionTimestampsClampToFirstBucket) {
  const auto s = summarize_latency(
      samples({{-3.7, 0.2}, {-0.1, 0.4}, {0.5, 0.6}}), 1.0);
  EXPECT_EQ(s.events, 3u);
  ASSERT_EQ(s.buckets.size(), 1u);
  EXPECT_DOUBLE_EQ(s.buckets[0].start_ts, 0.0);
  EXPECT_EQ(s.buckets[0].events, 3u);
  EXPECT_NEAR(s.mean, 0.4, 1e-12);
}

// Regression: bucketing used to allocate O(horizon / bucket_seconds)
// dense slots, so one straggler at a huge timestamp exploded memory.
// Sparse bucketing makes this O(samples); the test would OOM (or time
// out) on the dense implementation.
TEST(LatencySummary, SparseBucketingHandlesHugeHorizons) {
  const auto s = summarize_latency(
      samples({{0.5, 0.1}, {1.0e15, 0.2}, {2.5e15, 0.3}}), 1.0);
  EXPECT_EQ(s.events, 3u);
  ASSERT_EQ(s.buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(s.buckets[0].start_ts, 0.0);
  EXPECT_DOUBLE_EQ(s.buckets[1].start_ts, 1.0e15);
  EXPECT_DOUBLE_EQ(s.buckets[2].start_ts, 2.5e15);
}

// Timestamps past 2^63 seconds saturate instead of overflowing the cast.
TEST(LatencySummary, AstronomicalTimestampsSaturate) {
  const auto s = summarize_latency(
      samples({{1.0e300, 0.1}, {1.5e300, 0.2}}), 1.0);
  EXPECT_EQ(s.events, 2u);
  EXPECT_EQ(s.buckets.size(), 1u);  // both in the saturation bucket
}

TEST(LatencySummary, P50AndP999ArePopulated) {
  // Latency ramp 0.001..2.0 over 2000 samples: the percentiles are known.
  std::vector<LatencySample> input;
  for (int i = 0; i < 2000; ++i) {
    input.push_back({0.001 * i, 0.001 * (i + 1)});
  }
  const auto s = summarize_latency(input, 10.0);
  EXPECT_NEAR(s.p50, 1.0, 0.01);
  EXPECT_NEAR(s.p99, 1.98, 0.01);
  EXPECT_NEAR(s.p999, 1.998, 0.01);
  EXPECT_LT(s.p50, s.p99);
  EXPECT_LE(s.p99, s.p999);
  EXPECT_LE(s.p999, s.max);
}

}  // namespace
}  // namespace espice
