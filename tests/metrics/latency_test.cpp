#include "metrics/latency.hpp"

#include <gtest/gtest.h>

namespace espice {
namespace {

std::vector<LatencySample> samples(
    const std::vector<std::pair<double, double>>& pairs) {
  std::vector<LatencySample> out;
  for (const auto& [ts, lat] : pairs) out.push_back({ts, lat});
  return out;
}

TEST(LatencySummary, EmptyInputYieldsEmptySummary) {
  const auto s = summarize_latency({}, 1.0);
  EXPECT_EQ(s.events, 0u);
  EXPECT_TRUE(s.buckets.empty());
  EXPECT_DOUBLE_EQ(s.violation_percent(), 0.0);
}

TEST(LatencySummary, OverallStatistics) {
  const auto s = summarize_latency(
      samples({{0.1, 0.2}, {0.2, 0.4}, {0.3, 0.6}}), 1.0);
  EXPECT_EQ(s.events, 3u);
  EXPECT_NEAR(s.mean, 0.4, 1e-12);
  EXPECT_NEAR(s.max, 0.6, 1e-12);
  EXPECT_EQ(s.violations, 0u);
}

TEST(LatencySummary, ViolationsAreCountedAgainstBound) {
  const auto s = summarize_latency(
      samples({{0.1, 0.5}, {0.2, 1.5}, {0.3, 2.0}, {0.4, 0.9}}), 1.0);
  EXPECT_EQ(s.violations, 2u);
  EXPECT_DOUBLE_EQ(s.violation_percent(), 50.0);
}

TEST(LatencySummary, ExactBoundIsNotAViolation) {
  const auto s = summarize_latency(samples({{0.1, 1.0}}), 1.0);
  EXPECT_EQ(s.violations, 0u);
}

TEST(LatencySummary, BucketsGroupByCompletionSecond) {
  const auto s = summarize_latency(
      samples({{0.2, 0.1}, {0.8, 0.3}, {1.5, 0.5}, {3.2, 0.7}}), 1.0);
  ASSERT_EQ(s.buckets.size(), 3u);  // seconds 0, 1, 3 (second 2 empty)
  EXPECT_DOUBLE_EQ(s.buckets[0].start_ts, 0.0);
  EXPECT_EQ(s.buckets[0].events, 2u);
  EXPECT_NEAR(s.buckets[0].mean, 0.2, 1e-12);
  EXPECT_NEAR(s.buckets[0].max, 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(s.buckets[1].start_ts, 1.0);
  EXPECT_DOUBLE_EQ(s.buckets[2].start_ts, 3.0);
}

TEST(LatencySummary, CustomBucketWidth) {
  const auto s = summarize_latency(
      samples({{0.2, 0.1}, {0.8, 0.3}, {1.5, 0.5}}), 1.0, 0.5);
  ASSERT_EQ(s.buckets.size(), 3u);
  EXPECT_DOUBLE_EQ(s.buckets[0].start_ts, 0.0);
  EXPECT_DOUBLE_EQ(s.buckets[1].start_ts, 0.5);
  EXPECT_DOUBLE_EQ(s.buckets[2].start_ts, 1.5);
}

TEST(LatencySummary, P99TracksTail) {
  std::vector<LatencySample> input;
  for (int i = 0; i < 99; ++i) input.push_back({0.1 * i, 0.1});
  input.push_back({10.0, 5.0});
  const auto s = summarize_latency(input, 1.0);
  EXPECT_GT(s.p99, 0.1);
  EXPECT_NEAR(s.max, 5.0, 1e-12);
}

TEST(LatencySummary, RejectsNonPositiveBucket) {
  EXPECT_THROW(summarize_latency(samples({{0.1, 0.1}}), 1.0, 0.0), ConfigError);
}

}  // namespace
}  // namespace espice
