// json_double() must emit valid JSON numbers regardless of the process
// locale.  std::to_string(double) honors LC_NUMERIC, so under a comma-
// decimal locale (de_DE, fr_FR, ...) it produces "3,140000" -- which is
// not JSON and silently corrupted the BENCH_*.json artifacts.  These tests
// pin the locale and hold json_double() to C-locale output.
#include "json_out.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstring>
#include <string>

namespace espice {
namespace {

using bench_support::json_double;

TEST(JsonDouble, FixedSixDigitFormatting) {
  EXPECT_EQ(json_double(0.0), "0.000000");
  EXPECT_EQ(json_double(1.5), "1.500000");
  EXPECT_EQ(json_double(-2.25), "-2.250000");
  EXPECT_EQ(json_double(1234567.0), "1234567.000000");
}

TEST(JsonDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(json_double(std::nan("")), "null");
  EXPECT_EQ(json_double(HUGE_VAL), "null");
  EXPECT_EQ(json_double(-HUGE_VAL), "null");
}

TEST(JsonDouble, AstronomicalMagnitudesStillParse) {
  // Too large for %.6f-style fixed notation within the buffer: falls back
  // to scientific, which is still a valid JSON number.
  const std::string s = json_double(1.0e300);
  EXPECT_NE(s, "null");
  EXPECT_EQ(s.find(','), std::string::npos);
  EXPECT_NE(s.find('e'), std::string::npos);
}

// The regression proper: under a comma-decimal locale, std::to_string
// (the old implementation) emits ',' while json_double stays on '.'.
TEST(JsonDouble, CommaDecimalLocaleDoesNotLeakIn) {
  const char* candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                              "fr_FR.UTF-8", "fr_FR.utf8", "fr_FR"};
  const char* chosen = nullptr;
  for (const char* cand : candidates) {
    if (std::setlocale(LC_NUMERIC, cand) != nullptr) {
      chosen = cand;
      break;
    }
  }
  if (chosen == nullptr) {
    GTEST_SKIP() << "no comma-decimal locale installed on this machine";
  }
  // Only meaningful if the pinned locale actually uses ',' (the whole
  // point); std::to_string is locale-sensitive, so probe through it.
  const std::string probe = std::to_string(1.5);
  const std::string out = json_double(3.14);
  std::setlocale(LC_NUMERIC, "C");  // restore before asserting
  if (probe.find(',') == std::string::npos) {
    GTEST_SKIP() << "locale " << chosen << " does not use ',' decimals";
  }
  EXPECT_EQ(out, "3.140000");
  EXPECT_EQ(out.find(','), std::string::npos);
}

}  // namespace
}  // namespace espice
