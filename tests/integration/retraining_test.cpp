// Model retraining (paper Section 3.6): when the input distribution shifts,
// the stale model degrades quality; decaying the old statistics and feeding
// fresh observations restores it.
#include <gtest/gtest.h>

#include "core/espice_shedder.hpp"
#include "core/model_builder.hpp"
#include "metrics/quality.hpp"
#include "sim/operator_sim.hpp"

namespace espice {
namespace {

constexpr EventTypeId A = 0;
constexpr EventTypeId B = 1;

// Regime 0: windows "A B x x x x" (match at positions 0-1).
// Regime 1: windows "x x x x A B" (match at positions 4-5).
std::vector<Event> regime_stream(int regime, std::size_t windows,
                                 std::uint64_t seq0) {
  std::vector<Event> events;
  for (std::size_t w = 0; w < windows; ++w) {
    for (std::size_t pos = 0; pos < 6; ++pos) {
      Event e;
      const bool hot = regime == 0 ? pos < 2 : pos >= 4;
      if (hot) {
        e.type = (regime == 0 ? pos == 0 : pos == 4) ? A : B;
      } else {
        e.type = 2;  // filler type
      }
      e.seq = seq0 + w * 6 + pos;
      e.ts = static_cast<double>(e.seq);
      e.value = 1.0;
      events.push_back(e);
    }
  }
  return events;
}

WindowSpec tumbling6() {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = 6;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = 6;
  return spec;
}

Matcher ab_matcher() {
  return Matcher(
      make_sequence({element("A", TypeSet{A}), element("B", TypeSet{B})}),
      SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);
}

struct QualityProbe {
  QualityReport run(const std::vector<Event>& events, Shedder& shedder) {
    std::vector<ComplexEvent> golden;
    run_pipeline(events, tumbling6(), ab_matcher(), nullptr, 6.0,
                 [&](const WindowView&, const std::vector<ComplexEvent>& ms) {
                   golden.insert(golden.end(), ms.begin(), ms.end());
                 });
    std::vector<ComplexEvent> shed;
    run_pipeline(events, tumbling6(), ab_matcher(), &shedder, 6.0,
                 [&](const WindowView&, const std::vector<ComplexEvent>& ms) {
                   shed.insert(shed.end(), ms.begin(), ms.end());
                 });
    return compare_quality(golden, shed);
  }
};

void train(ModelBuilder& builder, const std::vector<Event>& events) {
  run_pipeline(events, tumbling6(), ab_matcher(), nullptr, 6.0,
               [&](const WindowView& w, const std::vector<ComplexEvent>& ms) {
                 builder.observe_window(w);
                 for (const auto& m : ms) builder.observe_match(m, w.size());
               });
}

class RetrainingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ModelBuilderConfig mb;
    mb.num_types = 3;
    mb.n_positions = 6;
    builder_ = std::make_unique<ModelBuilder>(mb);
    train(*builder_, regime_stream(0, 200, 0));
  }

  DropCommand drop4() {
    DropCommand cmd;
    cmd.active = true;
    // Just under 4 so that floating-point share sums cannot round the CDT
    // below the demand; the threshold still drops all four filler events.
    cmd.x = 3.9;
    cmd.partitions = 1;
    return cmd;
  }

  std::unique_ptr<ModelBuilder> builder_;
  QualityProbe probe_;
};

TEST_F(RetrainingTest, FreshModelIsPerfectOnItsRegime) {
  EspiceShedder shedder(builder_->build());
  shedder.on_command(drop4());
  const auto report = probe_.run(regime_stream(0, 100, 10'000), shedder);
  EXPECT_EQ(report.false_negatives, 0u);
  EXPECT_EQ(report.false_positives, 0u);
}

TEST_F(RetrainingTest, StaleModelFailsAfterDistributionShift) {
  EspiceShedder shedder(builder_->build());
  shedder.on_command(drop4());
  // Regime 1 puts the hot events where the stale model expects filler.
  const auto report = probe_.run(regime_stream(1, 100, 10'000), shedder);
  EXPECT_GT(report.fn_percent(), 90.0);
}

TEST_F(RetrainingTest, DecayAndRetrainRestoresQuality) {
  // Retrain: decay the regime-0 evidence, observe regime-1 windows.
  builder_->decay(0.05);
  train(*builder_, regime_stream(1, 200, 20'000));

  EspiceShedder shedder(builder_->build());
  shedder.on_command(drop4());
  const auto report = probe_.run(regime_stream(1, 100, 40'000), shedder);
  EXPECT_EQ(report.false_negatives, 0u);
  EXPECT_EQ(report.false_positives, 0u);
}

TEST_F(RetrainingTest, SetModelSwapsLiveShedder) {
  EspiceShedder shedder(builder_->build());
  shedder.on_command(drop4());
  ASSERT_GT(probe_.run(regime_stream(1, 50, 10'000), shedder).fn_percent(),
            50.0);

  ModelBuilderConfig mb;
  mb.num_types = 3;
  mb.n_positions = 6;
  ModelBuilder fresh(mb);
  train(fresh, regime_stream(1, 200, 20'000));
  shedder.set_model(fresh.build());  // live swap keeps the active command

  const auto report = probe_.run(regime_stream(1, 50, 40'000), shedder);
  EXPECT_EQ(report.false_negatives, 0u);
}

}  // namespace
}  // namespace espice
