// End-to-end reproduction of the paper's running examples through the real
// pipeline (window manager -> matcher -> model builder -> CDT -> shedder),
// not through hand-built fixtures.
#include <gtest/gtest.h>

#include "core/cdt.hpp"
#include "core/espice_shedder.hpp"
#include "core/model_builder.hpp"
#include "metrics/quality.hpp"
#include "sim/operator_sim.hpp"

namespace espice {
namespace {

constexpr EventTypeId A = 0;
constexpr EventTypeId B = 1;

// The Section-2 window {A, A, B, B} as a 4-event stream.
std::vector<Event> paper_stream() {
  std::vector<Event> events;
  for (std::size_t i = 0; i < 4; ++i) {
    Event e;
    e.type = i < 2 ? A : B;
    e.seq = i;
    e.ts = static_cast<double>(i);
    e.value = 1.0;
    events.push_back(e);
  }
  return events;
}

WindowSpec tumbling4() {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = 4;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = 4;
  return spec;
}

Matcher ab_matcher(SelectionPolicy sel, ConsumptionPolicy cons) {
  return Matcher(
      make_sequence({element("A", TypeSet{A}), element("B", TypeSet{B})}), sel,
      cons, /*max_matches=*/10);
}

std::vector<ComplexEvent> pipeline_matches(const std::vector<Event>& events,
                                           SelectionPolicy sel,
                                           ConsumptionPolicy cons,
                                           Shedder* shedder = nullptr) {
  std::vector<ComplexEvent> matches;
  run_pipeline(events, tumbling4(), ab_matcher(sel, cons), shedder, 4.0,
               [&](const WindowView&, const std::vector<ComplexEvent>& ms) {
                 matches.insert(matches.end(), ms.begin(), ms.end());
               });
  return matches;
}

TEST(PaperPipeline, SelectionAndConsumptionCombinations) {
  const auto events = paper_stream();
  EXPECT_EQ(pipeline_matches(events, SelectionPolicy::kFirst,
                             ConsumptionPolicy::kConsumed)
                .size(),
            2u);  // cplx13, cplx24
  EXPECT_EQ(pipeline_matches(events, SelectionPolicy::kLast,
                             ConsumptionPolicy::kConsumed)
                .size(),
            1u);  // cplx23
  EXPECT_EQ(pipeline_matches(events, SelectionPolicy::kLast,
                             ConsumptionPolicy::kZero)
                .size(),
            2u);  // cplx23, cplx24
}

// Drops one specific sequence number from every window.
class DropSeqShedder final : public Shedder {
 public:
  explicit DropSeqShedder(std::uint64_t seq) : seq_(seq) {}
  bool should_drop(const Event& e, std::uint32_t, double) override {
    const bool drop = e.seq == seq_;
    count_decision(drop);
    return drop;
  }
  void on_command(const DropCommand&) override {}
  const char* name() const override { return "drop-seq"; }

 private:
  std::uint64_t seq_;
};

TEST(PaperPipeline, DroppingA2CausesOneFalseNegative) {
  const auto events = paper_stream();
  const auto golden = pipeline_matches(events, SelectionPolicy::kFirst,
                                       ConsumptionPolicy::kConsumed);
  DropSeqShedder shedder(1);  // A2 is the second event
  const auto shed = pipeline_matches(events, SelectionPolicy::kFirst,
                                     ConsumptionPolicy::kConsumed, &shedder);
  const auto report = compare_quality(golden, shed);
  EXPECT_EQ(report.false_negatives, 1u);
  EXPECT_EQ(report.false_positives, 0u);
}

TEST(PaperPipeline, DroppingA1CausesOneFalsePositiveTwoFalseNegatives) {
  const auto events = paper_stream();
  const auto golden = pipeline_matches(events, SelectionPolicy::kFirst,
                                       ConsumptionPolicy::kConsumed);
  DropSeqShedder shedder(0);  // A1
  const auto shed = pipeline_matches(events, SelectionPolicy::kFirst,
                                     ConsumptionPolicy::kConsumed, &shedder);
  const auto report = compare_quality(golden, shed);
  EXPECT_EQ(report.false_negatives, 2u);
  EXPECT_EQ(report.false_positives, 1u);
}

// ---------------------------------------------------------------------------
// Model building + CDT over a longer two-type stream: verifies that the
// learned utility model reproduces the structure the paper's Table 1
// illustrates (high utility where matches bind, utility threshold dropping
// the right number of events).
// ---------------------------------------------------------------------------

TEST(PaperPipeline, LearnedModelConcentratesUtilityOnBoundPositions) {
  // Stream of repeating 5-event windows: A B x x x -- the match always binds
  // positions 0 (A) and 1 (B); positions 2..4 hold type A events that never
  // bind (the A element binds position 0 first).
  std::vector<Event> events;
  for (std::size_t i = 0; i < 500; ++i) {
    Event e;
    const std::size_t pos = i % 5;
    e.type = pos == 1 ? B : A;
    e.seq = i;
    e.ts = static_cast<double>(i);
    e.value = 1.0;
    events.push_back(e);
  }
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = 5;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = 5;

  ModelBuilderConfig mb;
  mb.num_types = 2;
  mb.n_positions = 5;
  ModelBuilder builder(mb);
  const Matcher matcher = ab_matcher(SelectionPolicy::kFirst,
                                     ConsumptionPolicy::kConsumed);
  run_pipeline(events, spec, matcher, nullptr, 5.0,
               [&](const WindowView& w, const std::vector<ComplexEvent>& ms) {
                 builder.observe_window(w);
                 for (const auto& m : ms) builder.observe_match(m, w.size());
               });
  const auto model = builder.build();

  EXPECT_EQ(model->utility_cell(A, 0), 100);  // always bound
  EXPECT_EQ(model->utility_cell(B, 1), 100);
  EXPECT_EQ(model->utility_cell(A, 2), 0);    // never bound
  EXPECT_EQ(model->utility_cell(A, 3), 0);
  EXPECT_EQ(model->utility_cell(A, 4), 0);

  // Dropping x=3 events per window must not touch the bound positions:
  // CDT(0) = 3 (three zero-utility events per window) -> threshold 0.
  const auto cdts = Cdt::build_partitions(*model, 1);
  EXPECT_EQ(cdts[0].threshold(3.0), 0);

  // And the shedder using this model keeps quality perfect while dropping 3
  // of 5 events per window.
  EspiceShedder shedder(model);
  DropCommand cmd;
  cmd.active = true;
  cmd.x = 3.0;
  cmd.partitions = 1;
  shedder.on_command(cmd);
  const auto golden = [&] {
    std::vector<ComplexEvent> ms;
    run_pipeline(events, spec, matcher, nullptr, 5.0,
                 [&](const WindowView&, const std::vector<ComplexEvent>& m) {
                   ms.insert(ms.end(), m.begin(), m.end());
                 });
    return ms;
  }();
  std::vector<ComplexEvent> shed;
  run_pipeline(events, spec, matcher, &shedder, 5.0,
               [&](const WindowView&, const std::vector<ComplexEvent>& m) {
                 shed.insert(shed.end(), m.begin(), m.end());
               });
  const auto report = compare_quality(golden, shed);
  EXPECT_EQ(report.false_negatives, 0u);
  EXPECT_EQ(report.false_positives, 0u);
  EXPECT_EQ(shedder.drops(), 300u);  // 3 per window x 100 windows
}

}  // namespace
}  // namespace espice
