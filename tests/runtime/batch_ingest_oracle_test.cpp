// Batched-ingestion differential oracle: push_batch() against per-event
// push() -- and against the serial golden -- across the whole configuration
// cube.
//
// The batched data path (bulk SPSC transfer, staging router, block-wise
// shard pipeline, score_block shedding) must be OUTPUT-BIT-IDENTICAL to
// per-event execution: same matches with the same constituents and
// positions, same per-query counters, same shed decision/drop counts.
// Random streams x span/open kinds x shedding on/off x N queries in {1, 5}
// x batch sizes {1, 7, 64, 256}, seeded via ESPICE_TEST_SEED.  A mixed
// test interleaves push() and push_batch() mid-stream (the documented
// contract allows it).
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "core/espice_shedder.hpp"
#include "runtime/stream_engine.hpp"
#include "sim/sharded_sim.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

constexpr EventTypeId kNumTypes = 6;
constexpr EventTypeId kOpenerType = 1;
constexpr EventTypeId kCloserType = 2;

std::vector<Event> random_stream(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += rng.uniform(0.0, 1.2);
    e.ts = ts;
    e.value = rng.uniform(-2.0, 2.0);
    events.push_back(e);
  }
  return events;
}

WindowSpec make_spec(WindowSpan span_kind, WindowOpen open_kind) {
  WindowSpec spec;
  spec.span_kind = span_kind;
  spec.open_kind = open_kind;
  switch (span_kind) {
    case WindowSpan::kTime:
      spec.span_seconds = 7.5;
      break;
    case WindowSpan::kCount:
      spec.span_events = 24;
      break;
    case WindowSpan::kPredicate:
      spec.span_events = 40;  // safety cap
      spec.closer = element("close", TypeSet{kCloserType}, DirectionFilter::kAny);
      break;
  }
  if (open_kind == WindowOpen::kPredicate) {
    spec.opener = element("open", TypeSet{kOpenerType}, DirectionFilter::kAny);
  } else {
    spec.slide_events = 5;
  }
  return spec;
}

/// Deterministic, stateless shedder (pure hash of seq x position).
class HashShedder final : public Shedder {
 public:
  explicit HashShedder(unsigned mod) : mod_(mod) {}

  bool should_drop(const Event& e, std::uint32_t position, double) override {
    const bool drop =
        mod_ != 0 &&
        ((e.seq * 2654435761ULL) ^ (position * 40503ULL)) % mod_ != 0;
    count_decision(drop);
    return drop;
  }
  void on_command(const DropCommand&) override {}
  const char* name() const override { return "hash"; }

 private:
  unsigned mod_;
};

/// A pre-armed eSPICE shedder (fixed model, fixed seed, active command):
/// deterministic given construction order, and it exercises the flat-array
/// score_block() path differentially at engine level.
std::unique_ptr<Shedder> make_armed_espice(std::uint64_t seed) {
  // N = 24 positions at bin size 2 -> 12 UT columns per type.
  std::vector<std::uint8_t> ut(kNumTypes * 12);
  std::vector<double> shares(kNumTypes * 12);
  Rng rng(seed);
  for (std::size_t i = 0; i < ut.size(); ++i) {
    ut[i] = static_cast<std::uint8_t>(rng.uniform_int(101));
    shares[i] = rng.uniform();
  }
  auto model = std::make_shared<UtilityModel>(kNumTypes, 24, /*bin_size=*/2,
                                              std::move(ut), std::move(shares));
  auto shedder = std::make_unique<EspiceShedder>(std::move(model),
                                                 /*exact_amount=*/false,
                                                 /*seed=*/seed);
  DropCommand cmd;
  cmd.active = true;
  cmd.x = 3.0;
  cmd.partitions = 3;
  shedder->on_command(cmd);
  return shedder;
}

ShardQuery make_query(const WindowSpec& spec) {
  ShardQuery q;
  q.pattern = make_sequence(
      {element("up", TypeSet{}, DirectionFilter::kRising),
       element("down", TypeSet{}, DirectionFilter::kFalling)});
  q.window = spec;
  return q;
}

enum class ShedKind { kNone, kHash, kEspice };

StreamEngineConfig make_config(const WindowSpec& spec, std::size_t shards,
                               ShedKind shed) {
  StreamEngineConfig config;
  config.shards = shards;
  config.ring_capacity = 256;
  config.query = make_query(spec);
  config.predicted_ws = 24.0;
  if (shed == ShedKind::kHash) {
    config.shedder_factory = [](std::size_t) {
      return std::make_unique<HashShedder>(3);
    };
  } else if (shed == ShedKind::kEspice) {
    config.shedder_factory = [](std::size_t shard) {
      return make_armed_espice(0xe5e + shard);
    };
  }
  return config;
}

void expect_same_matches(const std::vector<ComplexEvent>& actual,
                         const std::vector<ComplexEvent>& expected,
                         const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const ComplexEvent& a = actual[i];
    const ComplexEvent& b = expected[i];
    EXPECT_DOUBLE_EQ(a.detection_ts, b.detection_ts) << label << " match " << i;
    ASSERT_EQ(a.constituents.size(), b.constituents.size())
        << label << " match " << i;
    for (std::size_t c = 0; c < a.constituents.size(); ++c) {
      EXPECT_EQ(a.constituents[c].element, b.constituents[c].element)
          << label << " match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].position, b.constituents[c].position)
          << label << " match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].event.seq, b.constituents[c].event.seq)
          << label << " match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].event.type, b.constituents[c].event.type)
          << label << " match " << i << " constituent " << c;
    }
  }
}

/// Full-report equivalence: matches (global and per query) plus every
/// deterministic counter.  Backpressure/depth gauges are wall-clock shaped
/// and deliberately excluded.
void expect_same_report(const EngineReport& batched,
                        const EngineReport& per_event) {
  EXPECT_EQ(batched.events, per_event.events);
  expect_same_matches(batched.matches, per_event.matches, "engine matches");
  ASSERT_EQ(batched.queries.size(), per_event.queries.size());
  for (std::size_t qi = 0; qi < batched.queries.size(); ++qi) {
    const QueryReport& a = batched.queries[qi];
    const QueryReport& b = per_event.queries[qi];
    const std::string label = "query " + b.name;
    EXPECT_EQ(a.name, b.name);
    expect_same_matches(a.matches, b.matches, label);
    EXPECT_EQ(a.memberships, b.memberships) << label;
    EXPECT_EQ(a.memberships_kept, b.memberships_kept) << label;
    EXPECT_EQ(a.shed_decisions, b.shed_decisions) << label;
    EXPECT_EQ(a.shed_drops, b.shed_drops) << label;
  }
  ASSERT_EQ(batched.shards.size(), per_event.shards.size());
  for (std::size_t s = 0; s < batched.shards.size(); ++s) {
    const ShardStats& a = batched.shards[s];
    const ShardStats& b = per_event.shards[s];
    EXPECT_EQ(a.events, b.events) << "shard " << s;
    EXPECT_EQ(a.memberships, b.memberships) << "shard " << s;
    EXPECT_EQ(a.memberships_kept, b.memberships_kept) << "shard " << s;
    EXPECT_EQ(a.windows_closed, b.windows_closed) << "shard " << s;
    EXPECT_EQ(a.matches, b.matches) << "shard " << s;
    EXPECT_EQ(a.shed_decisions, b.shed_decisions) << "shard " << s;
    EXPECT_EQ(a.shed_drops, b.shed_drops) << "shard " << s;
  }
}

EngineReport run_per_event(const StreamEngineConfig& config,
                           const std::vector<Event>& events) {
  StreamEngine engine(config);
  for (const Event& e : events) engine.push(e);
  return engine.finish();
}

EngineReport run_batched(const StreamEngineConfig& config,
                         const std::vector<Event>& events, std::size_t batch) {
  StreamEngine engine(config);
  const std::span<const Event> all(events);
  for (std::size_t i = 0; i < events.size(); i += batch) {
    engine.push_batch(all.subspan(i, std::min(batch, events.size() - i)));
  }
  return engine.finish();
}

using OracleParams =
    std::tuple<WindowSpan, WindowOpen, int /*ShedKind*/, std::size_t /*batch*/,
               std::uint64_t /*salt*/>;

class BatchIngestOracle : public ::testing::TestWithParam<OracleParams> {};

TEST_P(BatchIngestOracle, BatchedEqualsPerEventAndSerialGolden) {
  const auto [span_kind, open_kind, shed_int, batch, salt] = GetParam();
  const auto shed = static_cast<ShedKind>(shed_int);
  const std::uint64_t seed = test_support::test_seed(salt);
  SCOPED_TRACE(test_support::seed_trace(seed));

  const auto events = random_stream(seed, 1500);
  const WindowSpec spec = make_spec(span_kind, open_kind);
  const StreamEngineConfig config = make_config(spec, /*shards=*/1, shed);

  const auto per_event = run_per_event(config, events);
  const auto batched = run_batched(config, events, batch);
  expect_same_report(batched, per_event);

  // Anchor both against the scalar serial pipeline (run_pipeline golden):
  // agreement between the two engine modes must not be a shared bug.
  const auto golden = partitioned_serial_golden(config, events);
  expect_same_matches(batched.matches, golden, "vs serial golden");
  if (shed == ShedKind::kNone) {
    EXPECT_GT(golden.size(), 0u) << "degenerate stream: no matches";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpanAndOpenKinds, BatchIngestOracle,
    ::testing::Combine(
        ::testing::Values(WindowSpan::kTime, WindowSpan::kCount,
                          WindowSpan::kPredicate),
        ::testing::Values(WindowOpen::kPredicate, WindowOpen::kCountSlide),
        // keep everything / hash-shed / armed eSPICE (flat score_block)
        ::testing::Values(0, 1, 2),
        ::testing::Values(std::size_t{7}, std::size_t{256}),
        ::testing::Values(17u)));

// Batch sizes 1 and 64 on the hardest single config (count/slide + eSPICE):
// batch 1 exercises the one-event-span staging edge.
TEST(BatchIngestOracle, SmallBatchSizes) {
  const std::uint64_t seed = test_support::test_seed(29);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 2000);
  const StreamEngineConfig config = make_config(
      make_spec(WindowSpan::kCount, WindowOpen::kCountSlide), 1,
      ShedKind::kEspice);
  const auto per_event = run_per_event(config, events);
  for (const std::size_t batch : {std::size_t{1}, std::size_t{64}}) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    expect_same_report(run_batched(config, events, batch), per_event);
  }
}

// Multi-shard batched routing: the staging buffers must preserve per-shard
// stream order and the bulk flush must not starve or reorder any shard.
TEST(BatchIngestOracle, MultiShardStagingKeepsPartitionOrder) {
  const std::uint64_t seed = test_support::test_seed(59);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 3000);
  const StreamEngineConfig config = make_config(
      make_spec(WindowSpan::kCount, WindowOpen::kCountSlide), 4,
      ShedKind::kHash);
  const auto per_event = run_per_event(config, events);
  const auto batched = run_batched(config, events, 128);
  expect_same_report(batched, per_event);
  expect_same_matches(batched.matches, partitioned_serial_golden(config, events),
                      "vs serial golden");
}

// Mixed-mode ingestion: scalar pushes and batches interleaved mid-stream
// (the documented contract: push() and push_batch() are interchangeable).
TEST(BatchIngestOracle, MixedPushAndBatchMidStream) {
  const std::uint64_t seed = test_support::test_seed(71);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 2500);
  const StreamEngineConfig config = make_config(
      make_spec(WindowSpan::kCount, WindowOpen::kCountSlide), 2,
      ShedKind::kHash);

  const auto per_event = run_per_event(config, events);

  StreamEngine engine(config);
  const std::span<const Event> all(events);
  std::size_t i = 0;
  Rng rng(seed ^ 0x313);
  while (i < events.size()) {
    if (rng.uniform_int(2) == 0) {
      engine.push(events[i]);
      ++i;
    } else {
      const std::size_t batch = std::min<std::size_t>(
          1 + rng.uniform_int(200), events.size() - i);
      engine.push_batch(all.subspan(i, batch));
      i += batch;
    }
  }
  expect_same_report(engine.finish(), per_event);
}

// N = 5 queries (mixed windowing -> shared groups, mixed shedders ->
// diverging masks): every query's batched output equals its per-event
// output AND its independent serial golden.
TEST(BatchIngestOracle, FiveQueriesBatchedEqualsPerEventAndGoldens) {
  const std::uint64_t seed = test_support::test_seed(83);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 2500);

  auto make_queries = [&]() {
    std::vector<EngineQuery> queries;
    for (std::size_t i = 0; i < 5; ++i) {
      EngineQuery q;
      q.name = "q" + std::to_string(i);
      // Two window groups: {0, 2, 4} count/slide, {1, 3} predicate-open.
      q.query = make_query(make_spec(
          WindowSpan::kCount,
          i % 2 == 0 ? WindowOpen::kCountSlide : WindowOpen::kPredicate));
      q.predicted_ws = 24.0;
      if (i == 1 || i == 4) {
        const unsigned mod = 2 + static_cast<unsigned>(i);
        q.shedder_factory = [mod](std::size_t) {
          return std::make_unique<HashShedder>(mod);
        };
      } else if (i == 2) {
        q.shedder_factory = [](std::size_t shard) {
          return make_armed_espice(0xbead + shard);
        };
      }
      queries.push_back(std::move(q));
    }
    return queries;
  };

  auto run = [&](std::size_t batch) {
    StreamEngineConfig config;
    config.shards = 2;
    config.ring_capacity = 256;
    StreamEngine engine(config);
    for (const EngineQuery& q : make_queries()) engine.add_query(q);
    if (batch == 0) {
      for (const Event& e : events) engine.push(e);
    } else {
      const std::span<const Event> all(events);
      for (std::size_t i = 0; i < events.size(); i += batch) {
        engine.push_batch(all.subspan(i, std::min(batch, events.size() - i)));
      }
    }
    return engine.finish();
  };

  const auto per_event = run(0);
  const auto batched = run(256);
  expect_same_report(batched, per_event);

  const auto queries = make_queries();
  const auto goldens =
      per_query_serial_goldens(2, /*key_of=*/nullptr, queries, events);
  ASSERT_EQ(batched.queries.size(), goldens.size());
  for (std::size_t qi = 0; qi < goldens.size(); ++qi) {
    expect_same_matches(batched.queries[qi].matches, goldens[qi],
                        "golden for " + queries[qi].name);
  }
}

}  // namespace
}  // namespace espice
