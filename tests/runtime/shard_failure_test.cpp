// Directed shard-death regressions: a shard pipeline thread that dies with
// an exception must surface as a typed failure on the router thread within
// a bounded wall-clock time -- never as a hang.
//
// The historical bug under test: the router's backpressure loops (scalar
// push, punctuation broadcast, bulk batch staging) spun on the ring having
// a free slot, which a dead consumer never guarantees; every loop now polls
// the shard's failure flag.  Post-failure the engine is a state machine:
// push/push_batch/checkpoint throw typed espice::Error (kShardFailed on
// first detection, kEngineFailed after), finish() rethrows the shard's
// ORIGINAL exception hang-free, abort() is idempotent, and health() reports
// the dead shard with its error and last progress.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "runtime/stream_engine.hpp"

namespace espice {
namespace {

constexpr std::uint64_t kBoomSeq = 50;
constexpr double kDeadlineSeconds = 20.0;
constexpr std::size_t kMaxPushes = 200000;

/// Throws out of the shard pipeline when it sees the armed sequence
/// number.  Deterministic: the same event always kills the same shard.
class ExplodingShedder final : public Shedder {
 public:
  bool should_drop(const Event& e, std::uint32_t, double) override {
    if (e.seq == kBoomSeq) {
      throw Error(ErrorCode::kGeneric, "shedder exploded on purpose");
    }
    count_decision(false);
    return false;
  }
  void on_command(const DropCommand&) override {}
  const char* name() const override { return "exploding"; }
};

StreamEngineConfig make_config(std::size_t shards, bool event_time = false) {
  StreamEngineConfig config;
  config.shards = shards;
  config.ring_capacity = 256;
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.span_events = 24;
  spec.slide_events = 5;
  ShardQuery q;
  q.pattern =
      make_sequence({element("up", TypeSet{}, DirectionFilter::kRising),
                     element("down", TypeSet{}, DirectionFilter::kFalling)});
  q.window = spec;
  config.query = q;
  config.predicted_ws = 24.0;
  config.shedder_factory = [](std::size_t) {
    return std::make_unique<ExplodingShedder>();
  };
  if (event_time) {
    EventTimeConfig et;
    et.disorder_bound = 4;
    config.event_time = et;
  }
  return config;
}

Event data_event(std::uint64_t seq) {
  Event e;
  e.type = static_cast<EventTypeId>(seq % 6);
  e.seq = seq;
  e.ts = static_cast<double>(seq) * 0.5;
  e.value = (seq % 2 == 0) ? 1.0 : -1.0;  // alternating: plenty of matches
  return e;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Pushes scalar events until the engine reports the failure; fails the
/// test if it neither throws nor respects the deadline.
template <typename PushFn>
Error push_until_failure(PushFn&& push_one) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kMaxPushes; ++i) {
    if (seconds_since(t0) > kDeadlineSeconds) break;
    try {
      push_one(i);
    } catch (const Error& e) {
      EXPECT_LT(seconds_since(t0), kDeadlineSeconds)
          << "failure surfaced, but only after the deadline";
      return e;
    }
  }
  ADD_FAILURE() << "shard death never surfaced on the push path";
  return Error(ErrorCode::kGeneric, "unreached");
}

TEST(ShardFailure, ScalarPushRaisesTypedWithinDeadline) {
  StreamEngine engine(make_config(2));
  const Error err =
      push_until_failure([&](std::size_t i) { engine.push(data_event(i)); });
  EXPECT_EQ(err.code(), ErrorCode::kShardFailed);
  EXPECT_NE(std::string(err.what()).find("shedder exploded"),
            std::string::npos)
      << "the shard's own error must be in the message: " << err.what();
  EXPECT_EQ(engine.state(), EngineState::kFailed);
  engine.abort();
}

TEST(ShardFailure, BatchPushRaisesTypedWithinDeadline) {
  StreamEngine engine(make_config(2));
  std::vector<Event> batch;
  for (std::uint64_t s = 0; s < 64; ++s) batch.push_back(data_event(s));
  const Error err = push_until_failure([&](std::size_t i) {
    if (i > 0) {  // re-number so seq keeps advancing past the boom batch
      for (std::size_t j = 0; j < batch.size(); ++j) {
        batch[j] = data_event(i * 64 + j);
      }
    }
    engine.push_batch(batch);
  });
  EXPECT_EQ(err.code(), ErrorCode::kShardFailed);
  EXPECT_EQ(engine.state(), EngineState::kFailed);
  engine.abort();
}

TEST(ShardFailure, PunctuationPushRaisesTypedWithinDeadline) {
  StreamEngine engine(make_config(2, /*event_time=*/true));
  // Feed the boom event through the reorder stage, then keep broadcasting
  // watermarks: the punctuation path must also observe the death.
  for (std::uint64_t s = 0; s <= kBoomSeq + 8; ++s) engine.push(data_event(s));
  const Error err = push_until_failure([&](std::size_t i) {
    engine.push(make_watermark(kBoomSeq + 16 + i));
  });
  EXPECT_TRUE(err.code() == ErrorCode::kShardFailed ||
              err.code() == ErrorCode::kEngineFailed)
      << error_code_name(err.code());
  EXPECT_EQ(engine.state(), EngineState::kFailed);
  engine.abort();
}

TEST(ShardFailure, FinishRethrowsOriginalErrorHangFree) {
  StreamEngine engine(make_config(2));
  // Past the boom, but far below ring capacity: the router never blocks,
  // so only finish() can observe the death.
  for (std::uint64_t s = 0; s <= kBoomSeq + 10; ++s) {
    engine.push(data_event(s));
  }
  const auto t0 = std::chrono::steady_clock::now();
  try {
    engine.finish();
    FAIL() << "finish() must rethrow the shard's exception";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kGeneric) << "original, not a wrapper";
    EXPECT_NE(std::string(e.what()).find("shedder exploded"),
              std::string::npos);
  }
  EXPECT_LT(seconds_since(t0), kDeadlineSeconds);
  EXPECT_EQ(engine.state(), EngineState::kFailed);
}

TEST(ShardFailure, PostFailureOperationsAreTypedAndAbortIdempotent) {
  StreamEngine engine(make_config(2));
  (void)push_until_failure(
      [&](std::size_t i) { engine.push(data_event(i)); });

  // Every subsequent ingestion op is a typed error, not UB.
  try {
    engine.push(data_event(0));
    FAIL() << "push on a failed engine must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kEngineFailed);
  }
  try {
    std::vector<Event> batch{data_event(0)};
    engine.push_batch(batch);
    FAIL() << "push_batch on a failed engine must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kEngineFailed);
  }

  const EngineHealth h = engine.health();
  EXPECT_EQ(h.state, EngineState::kFailed);
  EXPECT_FALSE(h.last_error.empty());
  ASSERT_EQ(h.shards.size(), 2u);
  std::size_t dead = 0;
  for (const ShardHealth& sh : h.shards) {
    if (!sh.failed) continue;
    ++dead;
    EXPECT_NE(sh.error.find("shedder exploded"), std::string::npos);
    // last_progress is block-granular: a shard that dies inside its first
    // drained block legitimately reports 0, so no lower bound here.
  }
  EXPECT_GE(dead, 1u);

  engine.abort();
  engine.abort();  // idempotent: second call is a no-op, no double-join

  // finish() after abort() names the abort, not a phantom double-finish.
  try {
    engine.finish();
    FAIL() << "finish() on an aborted engine must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kEngineFailed);
    EXPECT_NE(std::string(e.what()).find("aborted"), std::string::npos)
        << e.what();
  }
}

// A healthy run with the failure machinery in place: state stays kRunning,
// the report's health section is clean, and per-shard progress covers the
// whole stream.
TEST(ShardFailure, HealthySummaryOnCleanRun) {
  StreamEngineConfig config = make_config(2);
  config.shedder_factory = nullptr;  // nothing explodes
  StreamEngine engine(config);
  constexpr std::uint64_t kN = 500;
  for (std::uint64_t s = 0; s < kN; ++s) engine.push(data_event(s));
  const EngineReport report = engine.finish();
  EXPECT_EQ(report.health.state, EngineState::kRunning);
  EXPECT_EQ(report.health.wal_errors, 0u);
  EXPECT_FALSE(report.health.wal_degraded);
  EXPECT_TRUE(report.health.last_error.empty());
  std::uint64_t progress = 0;
  for (const ShardHealth& sh : report.health.shards) {
    EXPECT_FALSE(sh.failed);
    EXPECT_TRUE(sh.error.empty());
    progress += sh.last_progress;
  }
  EXPECT_EQ(progress, kN) << "per-shard progress must cover the stream";
}

}  // namespace
}  // namespace espice
