// Steady-state allocation audit of the per-event and block data paths.
//
// The hot-path contract (window routing, keep bookkeeping, shedder
// decisions, bulk ring transfer) is "no heap allocation at steady state":
// scratch buffers, kept-list pools and the event store all reach a stable
// capacity during warmup and are reused afterwards.  These tests drive the
// pipeline components single-threaded through a warmup phase, then assert
// an allocation delta of ZERO over a long measured run, using the global
// operator-new counting hook (tests/support/alloc_counter.hpp).
//
// Match emission is deliberately excluded: detected complex events are
// output (they own their constituents), so the streams here use a pattern
// that can never match (rising-first over an all-falling stream).
#define ESPICE_TEST_COUNT_ALLOCATIONS
#include "support/alloc_counter.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cep/matcher.hpp"
#include "cep/window.hpp"
#include "common/rng.hpp"
#include "core/espice_shedder.hpp"
#include "core/utility_model.hpp"
#include "runtime/spsc_ring.hpp"

namespace espice {
namespace {

constexpr std::size_t kNumTypes = 8;

/// A stream that can never satisfy a rising-first pattern: every value is
/// strictly negative, so no matches (and no match allocations) ever happen.
std::vector<Event> falling_stream(std::size_t n) {
  Rng rng(0xa110c);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += 0.01;
    e.ts = ts;
    e.value = -1.0 - rng.uniform();
    events.push_back(e);
  }
  return events;
}

Matcher make_unmatchable_matcher() {
  return Matcher(make_sequence({element("up", TypeSet{}, DirectionFilter::kRising),
                                element("dn", TypeSet{}, DirectionFilter::kFalling)}),
                 SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed, 1);
}

WindowSpec overlap_spec() {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = 64;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = 8;  // overlap 8: several memberships per event
  return spec;
}

std::shared_ptr<const UtilityModel> make_model(std::size_t n_positions) {
  std::vector<std::uint8_t> ut(kNumTypes * n_positions);
  std::vector<double> shares(kNumTypes * n_positions);
  Rng rng(0x17eb);
  for (std::size_t i = 0; i < ut.size(); ++i) {
    ut[i] = static_cast<std::uint8_t>(rng.uniform_int(101));
    shares[i] = rng.uniform();
  }
  return std::make_shared<UtilityModel>(kNumTypes, n_positions, /*bin_size=*/1,
                                        std::move(ut), std::move(shares));
}

/// Drives the serial window+shedder+matcher pipeline over `events`,
/// per-event (scalar offer/keep) or through the bulk all-keep block path.
void drive_pipeline(WindowManager& wm, Matcher& matcher, Shedder* shedder,
                    std::span<const Event> events, std::size_t block_size,
                    std::vector<std::uint32_t>& pos_scratch,
                    std::vector<std::uint64_t>& bits_scratch) {
  for (std::size_t i = 0; i < events.size();) {
    const std::size_t n = std::min(block_size, events.size() - i);
    const std::span<const Event> blk = events.subspan(i, n);
    if (shedder == nullptr) {
      wm.offer_keep_all_block(blk);
    } else {
      for (const Event& e : blk) {
        auto& ms = wm.offer(e);
        if (!ms.empty()) {
          pos_scratch.resize(ms.size());
          for (std::size_t m = 0; m < ms.size(); ++m) {
            pos_scratch[m] = ms[m].position;
          }
          bits_scratch.resize(keep_bitmap_words(ms.size()));
          shedder->score_block(e, pos_scratch.data(), ms.size(), 64.0,
                               bits_scratch.data());
          for (std::size_t m = 0; m < ms.size(); ++m) {
            if (keep_bit(bits_scratch.data(), m)) wm.keep(ms[m], e);
          }
        }
      }
    }
    for (const WindowView& w : wm.drain_closed()) {
      const auto matches = matcher.match_window(w);
      ASSERT_TRUE(matches.empty()) << "stream must be unmatchable";
    }
    i += n;
  }
}

TEST(SteadyStateAlloc, AllKeepBlockPipelineIsAllocationFree) {
  const auto events = falling_stream(60'000);
  WindowManager wm(overlap_spec());
  Matcher matcher = make_unmatchable_matcher();
  std::vector<std::uint32_t> pos_scratch;
  std::vector<std::uint64_t> bits_scratch;

  // Warmup: pools, scratch and the event store reach steady capacity.
  drive_pipeline(wm, matcher, nullptr, std::span(events).first(20'000), 256,
                 pos_scratch, bits_scratch);

  test_support::AllocTally tally;
  drive_pipeline(wm, matcher, nullptr,
                 std::span(events).subspan(20'000, 40'000), 256, pos_scratch,
                 bits_scratch);
  const std::uint64_t allocs = tally.delta();
  EXPECT_EQ(allocs, 0u)
      << "all-keep block pipeline allocated on the steady-state hot path";
}

TEST(SteadyStateAlloc, ScalarPipelineIsAllocationFree) {
  const auto events = falling_stream(60'000);
  WindowManager wm(overlap_spec());
  Matcher matcher = make_unmatchable_matcher();
  std::vector<std::uint32_t> pos_scratch;
  std::vector<std::uint64_t> bits_scratch;

  // block_size 1 degenerates the block path to scalar offer/keep.
  drive_pipeline(wm, matcher, nullptr, std::span(events).first(20'000), 1,
                 pos_scratch, bits_scratch);

  test_support::AllocTally tally;
  drive_pipeline(wm, matcher, nullptr,
                 std::span(events).subspan(20'000, 40'000), 1, pos_scratch,
                 bits_scratch);
  const std::uint64_t allocs = tally.delta();
  EXPECT_EQ(allocs, 0u)
      << "scalar pipeline allocated on the steady-state hot path";
}

TEST(SteadyStateAlloc, SheddingPipelineIsAllocationFree) {
  const auto events = falling_stream(60'000);
  WindowManager wm(overlap_spec());
  Matcher matcher = make_unmatchable_matcher();
  EspiceShedder shedder(make_model(64));
  DropCommand cmd;
  cmd.active = true;
  cmd.x = 10.0;
  cmd.partitions = 4;
  shedder.on_command(cmd);
  std::vector<std::uint32_t> pos_scratch;
  std::vector<std::uint64_t> bits_scratch;

  drive_pipeline(wm, matcher, &shedder, std::span(events).first(20'000), 256,
                 pos_scratch, bits_scratch);

  test_support::AllocTally tally;
  drive_pipeline(wm, matcher, &shedder,
                 std::span(events).subspan(20'000, 40'000), 256, pos_scratch,
                 bits_scratch);
  const std::uint64_t allocs = tally.delta();
  EXPECT_EQ(allocs, 0u)
      << "shedding (score_block) pipeline allocated on the steady-state "
         "hot path";
  EXPECT_GT(shedder.drops(), 0u) << "shedder never dropped: vacuous audit";
}

TEST(SteadyStateAlloc, BulkRingTransferIsAllocationFree) {
  const auto events = falling_stream(8'192);
  SpscRing<Event> ring(1024);
  std::vector<Event> out(256);

  test_support::AllocTally tally;
  std::size_t pushed = 0, popped = 0;
  while (popped < events.size()) {
    if (pushed < events.size()) {
      pushed += ring.try_push_bulk(events.data() + pushed,
                                   std::min<std::size_t>(256, events.size() - pushed));
    }
    popped += ring.try_pop_bulk(out.data(), out.size());
  }
  const std::uint64_t allocs = tally.delta();
  EXPECT_EQ(allocs, 0u) << "bulk ring ops allocated";
  EXPECT_EQ(popped, events.size());
}

}  // namespace
}  // namespace espice
