// Multi-query differential oracle: N queries sharing one engine against N
// *independent* serial single-query goldens.
//
// The shared-window equivalence guarantee under test: registering N queries
// in one StreamEngine (one ingestion path, one shared WindowManager/
// EventStore per window group per shard, per-query keep masks) must leave
// every query's output bit-identical to running that query alone -- i.e. to
// the union of serial run_pipeline() runs over the hash-partitioned
// substreams with that query's own shedder.  Random streams x random query
// sets x N in {1, 2, 5} x K in {1, 4}, seeded via ESPICE_TEST_SEED.
#include <gtest/gtest.h>

#include <memory>
#include <span>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "runtime/stream_engine.hpp"
#include "sim/sharded_sim.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

constexpr EventTypeId kNumTypes = 6;
constexpr EventTypeId kOpenerType = 1;
constexpr EventTypeId kCloserType = 2;

std::vector<Event> random_stream(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += rng.uniform(0.0, 1.2);
    e.ts = ts;
    e.value = rng.uniform(-2.0, 2.0);
    events.push_back(e);
  }
  return events;
}

/// Deterministic, stateless shedder (pure hash of seq x position), so the
/// shared engine and the independent serial golden decide identically no
/// matter how work interleaves.  mod == 0 keeps everything.
class HashShedder final : public Shedder {
 public:
  HashShedder(unsigned mod, unsigned salt) : mod_(mod), salt_(salt) {}

  bool should_drop(const Event& e, std::uint32_t position, double) override {
    const bool drop =
        mod_ != 0 && ((e.seq * 2654435761ULL) ^ (position * 40503ULL) ^
                      (salt_ * 7919ULL)) %
                             mod_ !=
                         0;
    count_decision(drop);
    return drop;
  }
  void on_command(const DropCommand&) override {}
  const char* name() const override { return "hash"; }

 private:
  unsigned mod_;
  unsigned salt_;
};

/// Small pool of window specs; smaller than the largest query count so a
/// random query set always exercises window *sharing* (same spec -> one
/// WindowManager group) and usually sharing *across groups* too.
WindowSpec spec_from_pool(std::size_t which) {
  WindowSpec spec;
  switch (which % 4) {
    case 0:
      spec.span_kind = WindowSpan::kCount;
      spec.span_events = 24;
      spec.open_kind = WindowOpen::kCountSlide;
      spec.slide_events = 5;
      break;
    case 1:
      spec.span_kind = WindowSpan::kTime;
      spec.span_seconds = 7.5;
      spec.open_kind = WindowOpen::kPredicate;
      spec.opener = element("open", TypeSet{kOpenerType}, DirectionFilter::kAny);
      break;
    case 2:
      spec.span_kind = WindowSpan::kPredicate;
      spec.span_events = 40;
      spec.closer = element("close", TypeSet{kCloserType}, DirectionFilter::kAny);
      spec.open_kind = WindowOpen::kCountSlide;
      spec.slide_events = 7;
      break;
    case 3:
      spec.span_kind = WindowSpan::kCount;
      spec.span_events = 48;
      spec.open_kind = WindowOpen::kCountSlide;
      spec.slide_events = 8;
      break;
  }
  return spec;
}

/// Random pattern: sequences over direction filters and (sometimes) type
/// sets; every variant matches in arbitrary substreams, so partitioning by
/// type cannot starve a shard.
Pattern pattern_from(Rng& rng) {
  switch (rng.uniform_int(4)) {
    case 0:
      return make_sequence(
          {element("up", TypeSet{}, DirectionFilter::kRising),
           element("down", TypeSet{}, DirectionFilter::kFalling)});
    case 1:
      return make_sequence(
          {element("down", TypeSet{}, DirectionFilter::kFalling),
           element("up", TypeSet{}, DirectionFilter::kRising),
           element("any", TypeSet{}, DirectionFilter::kAny)});
    case 2:
      return make_sequence(
          {element("a", TypeSet{}, DirectionFilter::kRising),
           element("b", TypeSet{}, DirectionFilter::kRising)});
    default:
      return make_trigger_any(
          element("trig", TypeSet{}, DirectionFilter::kRising), TypeSet{},
          /*n=*/2, DirectionFilter::kAny, /*distinct_types=*/false);
  }
}

EngineQuery random_query(Rng& rng, std::size_t index) {
  EngineQuery q;
  q.name = "rq" + std::to_string(index);
  q.query.pattern = pattern_from(rng);
  q.query.window = spec_from_pool(rng.uniform_int(4));
  q.query.selection =
      rng.uniform_int(2) == 0 ? SelectionPolicy::kFirst : SelectionPolicy::kLast;
  q.query.max_matches_per_window = 1 + rng.uniform_int(2);
  q.predicted_ws = 24.0;
  const unsigned mods[] = {0, 2, 3, 5};
  const unsigned mod = mods[rng.uniform_int(4)];
  if (mod != 0) {
    const auto salt = static_cast<unsigned>(index);
    q.shedder_factory = [mod, salt](std::size_t) {
      return std::make_unique<HashShedder>(mod, salt);
    };
  }
  return q;
}

void expect_same_matches(const std::vector<ComplexEvent>& actual,
                         const std::vector<ComplexEvent>& expected,
                         const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const ComplexEvent& a = actual[i];
    const ComplexEvent& b = expected[i];
    EXPECT_DOUBLE_EQ(a.detection_ts, b.detection_ts) << label << " match " << i;
    ASSERT_EQ(a.constituents.size(), b.constituents.size())
        << label << " match " << i;
    for (std::size_t c = 0; c < a.constituents.size(); ++c) {
      EXPECT_EQ(a.constituents[c].element, b.constituents[c].element)
          << label << " match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].position, b.constituents[c].position)
          << label << " match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].event.seq, b.constituents[c].event.seq)
          << label << " match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].event.type, b.constituents[c].event.type)
          << label << " match " << i << " constituent " << c;
    }
  }
}

void run_oracle_case(const std::vector<Event>& events,
                     const std::vector<EngineQuery>& queries,
                     std::size_t shards) {
  StreamEngineConfig config;
  config.shards = shards;
  config.ring_capacity = 256;
  StreamEngine engine(config);
  for (const EngineQuery& q : queries) engine.add_query(q);
  for (const Event& e : events) engine.push(e);
  const EngineReport report = engine.finish();

  // Nothing lost in the rings: every pushed event reached a shard.
  std::uint64_t shard_events = 0;
  for (const auto& s : report.shards) shard_events += s.events;
  EXPECT_EQ(shard_events, events.size());

  const auto goldens = per_query_serial_goldens(
      shards, /*key_of=*/nullptr, queries, events);
  ASSERT_EQ(report.queries.size(), queries.size());
  ASSERT_EQ(goldens.size(), queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    EXPECT_EQ(report.queries[qi].name, queries[qi].name);
    expect_same_matches(report.queries[qi].matches, goldens[qi],
                        "query " + queries[qi].name);
  }
}

using OracleParams =
    std::tuple<std::size_t /*N queries*/, std::size_t /*K shards*/,
               std::uint64_t /*salt*/>;

class MultiQueryOracle : public ::testing::TestWithParam<OracleParams> {};

TEST_P(MultiQueryOracle, EveryQueryMatchesItsIndependentSerialGolden) {
  const auto [num_queries, shards, salt] = GetParam();
  const std::uint64_t seed = test_support::test_seed(salt);
  SCOPED_TRACE(test_support::seed_trace(seed));

  const auto events = random_stream(seed, 1500);
  Rng rng(seed ^ 0x5eed5eedULL);
  std::vector<EngineQuery> queries;
  queries.reserve(num_queries);
  for (std::size_t i = 0; i < num_queries; ++i) {
    queries.push_back(random_query(rng, i));
  }
  // Guard against a vacuous comparison: at least one keep-everything query
  // anchors the set (the serial golden must detect something for it).
  queries.front().shedder_factory = nullptr;
  const auto golden0 = per_query_serial_goldens(shards, nullptr,
                                                std::span(queries).first(1),
                                                events);
  EXPECT_GT(golden0.front().size(), 0u) << "degenerate stream: no matches";

  run_oracle_case(events, queries, shards);
}

INSTANTIATE_TEST_SUITE_P(
    RandomQuerySets, MultiQueryOracle,
    ::testing::Combine(
        // N = 1 (the single-query engine behind the multi-query API), 2, 5
        ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{5}),
        // K = 1 (serial behind a ring) and 4 (concurrent shards)
        ::testing::Values(std::size_t{1}, std::size_t{4}),
        ::testing::Values(31u, 47u)));

// Five queries over ONE shared window spec with five different shedders:
// the hardest sharing case (every query in one mask group, all keep sets
// different).  Heavier stream than the randomized sweep.
TEST(MultiQueryOracle, SharedGroupDistinctShedders) {
  const std::uint64_t seed = test_support::test_seed(93);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 4000);

  std::vector<EngineQuery> queries;
  for (std::size_t i = 0; i < 5; ++i) {
    EngineQuery q;
    q.name = "shared" + std::to_string(i);
    q.query.pattern = make_sequence(
        {element("up", TypeSet{}, DirectionFilter::kRising),
         element("down", TypeSet{}, DirectionFilter::kFalling)});
    q.query.window = spec_from_pool(0);  // all five share one group
    q.predicted_ws = 24.0;
    if (i > 0) {
      const unsigned mod = 1 + static_cast<unsigned>(i);
      const auto salt = static_cast<unsigned>(i);
      q.shedder_factory = [mod, salt](std::size_t) {
        return std::make_unique<HashShedder>(mod, salt);
      };
    }
    queries.push_back(std::move(q));
  }
  run_oracle_case(events, queries, 4);
}

// Legacy single-query configs must keep their exact pre-multi-query
// behavior: report.matches == report.queries[0].matches == the partitioned
// serial golden.
TEST(MultiQueryOracle, LegacySingleQueryConfigUnchanged) {
  const std::uint64_t seed = test_support::test_seed(7);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 1500);

  StreamEngineConfig config;
  config.shards = 2;
  config.ring_capacity = 256;
  config.query.pattern = make_sequence(
      {element("up", TypeSet{}, DirectionFilter::kRising),
       element("down", TypeSet{}, DirectionFilter::kFalling)});
  config.query.window = spec_from_pool(0);
  config.predicted_ws = 24.0;

  const auto golden = partitioned_serial_golden(config, events);
  StreamEngine engine(config);
  for (const Event& e : events) engine.push(e);
  const EngineReport report = engine.finish();

  ASSERT_EQ(report.queries.size(), 1u);
  EXPECT_EQ(report.queries[0].name, "q0");
  expect_same_matches(report.matches, golden, "legacy overall");
  expect_same_matches(report.queries[0].matches, golden, "legacy per-query");
}

// Per-query report counters must be self-consistent: decisions cover every
// offered membership of the query's window group, kept + drops == decisions
// when a shedder is present, and the engine-level aggregate equals the sum.
TEST(MultiQueryOracle, PerQueryCountersAreConsistent) {
  const std::uint64_t seed = test_support::test_seed(55);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 2000);

  std::vector<EngineQuery> queries;
  for (std::size_t i = 0; i < 3; ++i) {
    EngineQuery q;
    q.name = "c" + std::to_string(i);
    q.query.pattern = make_sequence(
        {element("up", TypeSet{}, DirectionFilter::kRising),
         element("down", TypeSet{}, DirectionFilter::kFalling)});
    q.query.window = spec_from_pool(0);
    q.predicted_ws = 24.0;
    const unsigned mod = 2 + static_cast<unsigned>(i);
    const auto salt = static_cast<unsigned>(i);
    q.shedder_factory = [mod, salt](std::size_t) {
      return std::make_unique<HashShedder>(mod, salt);
    };
    queries.push_back(std::move(q));
  }

  StreamEngineConfig config;
  config.shards = 2;
  config.ring_capacity = 256;
  StreamEngine engine(config);
  for (const EngineQuery& q : queries) engine.add_query(q);
  for (const Event& e : events) engine.push(e);
  const EngineReport report = engine.finish();

  std::uint64_t total_decisions = 0, total_drops = 0;
  for (const auto& qr : report.queries) {
    EXPECT_EQ(qr.shed_decisions, qr.memberships) << qr.name;
    EXPECT_EQ(qr.memberships_kept + qr.shed_drops, qr.shed_decisions)
        << qr.name;
    total_decisions += qr.shed_decisions;
    total_drops += qr.shed_drops;
  }
  std::uint64_t shard_decisions = 0, shard_drops = 0;
  for (const auto& s : report.shards) {
    shard_decisions += s.shed_decisions;
    shard_drops += s.shed_drops;
  }
  EXPECT_EQ(shard_decisions, total_decisions);
  EXPECT_EQ(shard_drops, total_drops);
}

}  // namespace
}  // namespace espice
