// End-to-end latency sampling in the sharded engine: the router stamps
// every Nth enqueue per shard, the shard records enqueue->block-released
// deltas into its ShardStats histogram, and finish() merges them into
// EngineReport::latency.  Off by default (latency_sample_every == 0), and
// NEVER allowed to perturb the output -- sampling is observability, not
// semantics, so matches must stay bit-identical with it on or off.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "runtime/stream_engine.hpp"

namespace espice {
namespace {

std::vector<Event> make_stream(std::size_t n) {
  Rng rng(0x1a7e);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(8));
    e.seq = i;
    ts += rng.uniform(0.0, 0.05);
    e.ts = ts;
    e.value = rng.uniform(-1.0, 1.0);
    events.push_back(e);
  }
  return events;
}

StreamEngineConfig base_config(std::size_t shards) {
  StreamEngineConfig config;
  config.shards = shards;
  config.ring_capacity = 256;
  config.query.pattern = make_sequence(
      {element("up", TypeSet{}, DirectionFilter::kRising),
       element("down", TypeSet{}, DirectionFilter::kFalling)});
  config.query.window.span_kind = WindowSpan::kCount;
  config.query.window.span_events = 16;
  config.query.window.open_kind = WindowOpen::kCountSlide;
  config.query.window.slide_events = 4;
  return config;
}

EngineReport run_with_sampling(std::size_t shards, std::size_t every,
                               const std::vector<Event>& events) {
  StreamEngineConfig config = base_config(shards);
  config.latency_sample_every = every;
  StreamEngine engine(std::move(config));
  engine.push_batch(events);
  return engine.finish();
}

TEST(LatencySampling, DisabledByDefaultRecordsNothing) {
  const auto events = make_stream(4000);
  const EngineReport report = run_with_sampling(2, 0, events);
  EXPECT_EQ(report.latency.count(), 0u);
  for (const ShardStats& s : report.shards) {
    EXPECT_EQ(s.latency.count(), 0u);
  }
  EXPECT_GT(report.total_matches(), 0u);
}

TEST(LatencySampling, SamplesAndMergesAcrossShards) {
  const auto events = make_stream(4000);
  const EngineReport report = run_with_sampling(3, 16, events);
  EXPECT_GT(report.latency.count(), 0u);
  // Best-effort contract: at most one sample per `every` enqueues (marks
  // are dropped when the side ring is full, never added).
  EXPECT_LE(report.latency.count(), events.size() / 16 + 3);
  std::uint64_t per_shard_total = 0;
  for (const ShardStats& s : report.shards) {
    per_shard_total += s.latency.count();
  }
  EXPECT_EQ(report.latency.count(), per_shard_total);
  EXPECT_GE(report.latency.quantile(0.99), report.latency.quantile(0.5));
  EXPECT_LE(report.latency.quantile(0.999), report.latency.max());
}

TEST(LatencySampling, SamplingDoesNotPerturbOutput) {
  const auto events = make_stream(3000);
  const EngineReport off = run_with_sampling(2, 0, events);
  const EngineReport on = run_with_sampling(2, 8, events);
  ASSERT_EQ(off.matches.size(), on.matches.size());
  for (std::size_t i = 0; i < off.matches.size(); ++i) {
    ASSERT_EQ(off.matches[i].constituents.size(),
              on.matches[i].constituents.size());
    for (std::size_t c = 0; c < off.matches[i].constituents.size(); ++c) {
      EXPECT_EQ(off.matches[i].constituents[c].event.seq,
                on.matches[i].constituents[c].event.seq);
    }
  }
  EXPECT_EQ(off.events, on.events);
}

// Scalar push() path (no batching) samples too.
TEST(LatencySampling, ScalarPushPathSamples) {
  const auto events = make_stream(2000);
  StreamEngineConfig config = base_config(2);
  config.latency_sample_every = 32;
  StreamEngine engine(std::move(config));
  for (const Event& e : events) engine.push(e);
  const EngineReport report = engine.finish();
  EXPECT_GT(report.latency.count(), 0u);
}

}  // namespace
}  // namespace espice
