// Hot-partition rebalancing oracle: partition migrations -- forced and
// automatic -- must be output-invisible.
//
// The golden is the engine's own no-rebalance semantics at partition
// granularity: a config with shards = partitions and rebalance disabled
// routes exactly like partition_of (same hash, same modulus), so
// partitioned_serial_golden over that config is the per-partition serial
// reference.  A rebalancing engine hosts those same partition pipelines on
// K < L shards and migrates them mid-stream; the marker protocol ships each
// pipeline gap-free, so every partition must still see its substream whole
// and in order -- matches, memberships and shed decisions bit-identical to
// the golden under ANY schedule of moves.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "runtime/stream_engine.hpp"
#include "sim/sharded_sim.hpp"
#include "sim/zipf.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

constexpr EventTypeId kNumTypes = 32;

std::vector<Event> random_stream(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += rng.uniform(0.0, 0.8);
    e.ts = ts;
    e.value = rng.uniform(-2.0, 2.0);
    events.push_back(e);
  }
  return events;
}

/// Deterministic, stateless shedder (pure hash of seq x position).
class HashShedder final : public Shedder {
 public:
  explicit HashShedder(unsigned mod) : mod_(mod) {}

  bool should_drop(const Event& e, std::uint32_t position, double) override {
    const bool drop =
        mod_ != 0 &&
        ((e.seq * 2654435761ULL) ^ (position * 40503ULL)) % mod_ != 0;
    count_decision(drop);
    return drop;
  }
  void on_command(const DropCommand&) override {}
  const char* name() const override { return "hash"; }

 private:
  unsigned mod_;
};

ShardQuery make_query() {
  ShardQuery q;
  q.pattern = make_sequence(
      {element("up", TypeSet{}, DirectionFilter::kRising),
       element("down", TypeSet{}, DirectionFilter::kFalling)});
  q.window.span_kind = WindowSpan::kCount;
  q.window.span_events = 20;
  q.window.open_kind = WindowOpen::kCountSlide;
  q.window.slide_events = 4;
  return q;
}

StreamEngineConfig make_config(std::size_t shards, std::size_t partitions,
                               bool shed) {
  StreamEngineConfig config;
  config.shards = shards;
  config.ring_capacity = 256;
  config.query = make_query();
  config.predicted_ws = 20.0;
  config.rebalance.emplace();
  config.rebalance->partitions = partitions;
  if (shed) {
    config.shedder_factory = [](std::size_t) {
      return std::make_unique<HashShedder>(3);
    };
  }
  return config;
}

/// The no-rebalance reference: same config, one shard per partition,
/// rebalancing off.  partition_of == shard_of under this shape, so the
/// serial golden over it is the per-partition golden.
StreamEngineConfig golden_config(const StreamEngineConfig& config) {
  StreamEngineConfig g = config;
  g.shards = config.rebalance->partitions;
  g.rebalance.reset();
  return g;
}

void expect_same_matches(const std::vector<ComplexEvent>& actual,
                         const std::vector<ComplexEvent>& expected,
                         const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const ComplexEvent& a = actual[i];
    const ComplexEvent& b = expected[i];
    ASSERT_EQ(a.constituents.size(), b.constituents.size())
        << label << " match " << i;
    for (std::size_t c = 0; c < a.constituents.size(); ++c) {
      EXPECT_EQ(a.constituents[c].element, b.constituents[c].element)
          << label << " match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].position, b.constituents[c].position)
          << label << " match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].event.seq, b.constituents[c].event.seq)
          << label << " match " << i << " constituent " << c;
    }
  }
}

void expect_move_accounting(const EngineReport& report) {
  std::uint64_t in = 0;
  std::uint64_t out = 0;
  for (const ShardStats& s : report.shards) {
    in += s.rebalance_moves_in;
    out += s.rebalance_moves_out;
  }
  EXPECT_EQ(in, report.rebalance_moves);
  EXPECT_EQ(out, report.rebalance_moves);
}

// Forced migrations mid-stream (the auto-rebalancer held off by a huge
// interval): a partition moved while its windows are open must carry its
// pipeline state to the new shard and keep matching seamlessly.
TEST(RebalanceOracle, ForcedMoveMidStreamMatchesGolden) {
  const std::uint64_t seed = test_support::test_seed(0x2eb1);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 4000);

  for (const bool shed : {false, true}) {
    StreamEngineConfig config = make_config(/*shards=*/2, /*partitions=*/8,
                                            shed);
    config.rebalance->interval_events = 1u << 30;  // manual moves only
    const auto golden =
        partitioned_serial_golden(golden_config(config), events);

    StreamEngine engine(config);
    const std::span<const Event> all(events);
    engine.push_batch(all.subspan(0, 1000));
    // Move a partition away from its home, another one onto the shard it
    // just left, then bounce the first one back two pushes later --
    // exercises export/import in both directions with open windows.
    const std::size_t p0 = 0;
    const std::size_t home0 = engine.shard_of_partition(p0);
    engine.move_partition(p0, 1 - home0);
    engine.push_batch(all.subspan(1000, 1000));
    const std::size_t p1 = 3;
    engine.move_partition(p1, home0);
    engine.push_batch(all.subspan(2000, 1000));
    engine.move_partition(p0, home0);
    engine.move_partition(p0, home0);  // no-op: already there
    engine.push_batch(all.subspan(3000));
    const EngineReport report = engine.finish();

    expect_same_matches(report.matches, golden,
                        shed ? "forced+shed" : "forced");
    EXPECT_EQ(report.rebalance_moves, 3u) << "no-op move must not count";
    expect_move_accounting(report);
  }
}

// The automatic rebalancer on a Zipf-1.2 stream: hot partitions must
// actually migrate (moves > 0), the books must balance, and the output must
// still be bit-identical to the per-partition golden.
TEST(RebalanceOracle, AutoRebalanceOnZipfMatchesGolden) {
  const std::uint64_t seed = test_support::test_seed(0x2eb2);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = make_zipf_stream(20'000, kNumTypes, 1.2, seed);

  StreamEngineConfig config = make_config(/*shards=*/4, /*partitions=*/16,
                                          /*shed=*/true);
  config.rebalance->interval_events = 2048;
  const auto golden = partitioned_serial_golden(golden_config(config), events);

  StreamEngine engine(config);
  engine.push_batch(events);
  const EngineReport report = engine.finish();

  expect_same_matches(report.matches, golden, "auto zipf");
  EXPECT_GT(report.rebalance_moves, 0u)
      << "Zipf-1.2 over 16 partitions on 4 shards must trigger migrations";
  expect_move_accounting(report);
}

// The move schedule is a pure function of the stream prefix: two identical
// runs must take identical decisions and produce identical reports.
TEST(RebalanceOracle, AutoRebalanceIsDeterministic) {
  const std::uint64_t seed = test_support::test_seed(0x2eb3);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = make_zipf_stream(12'000, kNumTypes, 1.2, seed);

  StreamEngineConfig config = make_config(/*shards=*/2, /*partitions=*/8,
                                          /*shed=*/false);
  config.rebalance->interval_events = 1024;

  auto run = [&] {
    StreamEngine engine(config);
    engine.push_batch(events);
    return engine.finish();
  };
  const EngineReport a = run();
  const EngineReport b = run();

  EXPECT_EQ(a.rebalance_moves, b.rebalance_moves);
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].rebalance_moves_in, b.shards[s].rebalance_moves_in)
        << "shard " << s;
    EXPECT_EQ(a.shards[s].rebalance_moves_out, b.shards[s].rebalance_moves_out)
        << "shard " << s;
  }
  expect_same_matches(a.matches, b.matches, "repeat run");
}

// Multi-query engines rebalance whole partition pipelines (all queries
// share the partition's windows): every query's matches must equal its own
// per-partition golden.
TEST(RebalanceOracle, MultiQueryRebalanceMatchesPerQueryGoldens) {
  const std::uint64_t seed = test_support::test_seed(0x2eb4);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = make_zipf_stream(10'000, kNumTypes, 0.9, seed);

  std::vector<EngineQuery> queries;
  {
    EngineQuery q;
    q.name = "updown";
    q.query = make_query();
    queries.push_back(q);
  }
  {
    EngineQuery q;
    q.name = "downup_shed";
    q.query.pattern = make_sequence(
        {element("down", TypeSet{}, DirectionFilter::kFalling),
         element("up", TypeSet{}, DirectionFilter::kRising)});
    q.query.window.span_kind = WindowSpan::kCount;
    q.query.window.span_events = 16;
    q.query.window.open_kind = WindowOpen::kCountSlide;
    q.query.window.slide_events = 8;
    q.shedder_factory = [](std::size_t) {
      return std::make_unique<HashShedder>(4);
    };
    queries.push_back(q);
  }

  StreamEngineConfig config;
  config.shards = 2;
  config.ring_capacity = 256;
  config.rebalance.emplace();
  config.rebalance->partitions = 8;
  config.rebalance->interval_events = 1024;

  const auto goldens = per_query_serial_goldens(
      config.rebalance->partitions, config.key_of, queries, events);

  StreamEngine engine(config);
  for (const EngineQuery& q : queries) engine.add_query(q);
  engine.push_batch(events);
  const EngineReport report = engine.finish();

  ASSERT_EQ(report.queries.size(), queries.size());
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    expect_same_matches(report.queries[qi].matches, goldens[qi],
                        "query " + queries[qi].name);
  }
  expect_move_accounting(report);
}

}  // namespace
}  // namespace espice
