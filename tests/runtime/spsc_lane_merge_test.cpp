// SpscLaneSet: deterministic seq-order merge over per-producer SPSC lanes.
//
// The lane set is the multi-producer ingestion substrate: P producers each
// own one SPSC lane per shard, and the shard's consumer merges the lanes
// back into one globally seq-ordered stream.  These tests pin the merge
// contract single-threaded first (order, stalls, floors, close edges,
// wrap-around) and then stress it with 2-4 real producer threads pushing
// bulk batches through small rings -- completeness and strict global seq
// order must survive wrap, full-ring retries and partial bulk acceptance.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "cep/event.hpp"
#include "common/rng.hpp"
#include "runtime/spsc_ring.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

Event ev(std::uint64_t seq) {
  Event e;
  e.seq = seq;
  e.type = static_cast<EventTypeId>(seq % 7);
  e.value = static_cast<double>(seq) * 0.5;
  return e;
}

/// Drains the set to completion (spinning through stalls) and returns
/// everything popped, in emission order.
std::vector<Event> drain_all(SpscLaneSet<Event>& set, std::size_t block = 8) {
  std::vector<Event> out;
  std::vector<Event> buf(block);
  for (;;) {
    std::size_t n = 0;
    const auto st = set.merge_pop(buf.data(), block, n);
    out.insert(out.end(), buf.begin(), buf.begin() + n);
    if (st == SpscLaneSet<Event>::Merge::kDone) return out;
    if (n == 0) std::this_thread::yield();
  }
}

TEST(SpscLaneMerge, SingleLaneBehavesLikeRing) {
  SpscLaneSet<Event> set(1, 8);
  for (std::uint64_t s : {0, 1, 2, 3, 4}) {
    ASSERT_TRUE(set.lane(0).try_push(ev(s)));
  }
  set.close_lane(0);
  const auto out = drain_all(set);
  ASSERT_EQ(out.size(), 5u);
  for (std::uint64_t s = 0; s < 5; ++s) EXPECT_EQ(out[s].seq, s);
}

TEST(SpscLaneMerge, TwoLanesMergeBySeq) {
  SpscLaneSet<Event> set(2, 8);
  // Lane 0 holds the evens, lane 1 the odds; each lane is internally
  // seq-increasing, the merge must interleave them perfectly.
  for (std::uint64_t s : {0, 2, 4, 6}) ASSERT_TRUE(set.lane(0).try_push(ev(s)));
  for (std::uint64_t s : {1, 3, 5}) ASSERT_TRUE(set.lane(1).try_push(ev(s)));
  set.close_lane(0);
  set.close_lane(1);
  const auto out = drain_all(set, 3);  // smaller than total: several passes
  ASSERT_EQ(out.size(), 7u);
  for (std::uint64_t s = 0; s < 7; ++s) EXPECT_EQ(out[s].seq, s);
}

TEST(SpscLaneMerge, EmptyOpenLaneStallsTheMerge) {
  SpscLaneSet<Event> set(2, 8);
  ASSERT_TRUE(set.lane(0).try_push(ev(5)));
  // Lane 1 is empty with floor 0: a future push there could carry seq < 5,
  // so emitting 5 now would break global order.
  Event buf[4];
  std::size_t n = 0;
  EXPECT_EQ(set.merge_pop(buf, 4, n), SpscLaneSet<Event>::Merge::kStall);
  EXPECT_EQ(n, 0u);

  // Raising lane 1's floor past 5 unblocks exactly the head.
  set.set_floor(1, 6);
  EXPECT_EQ(set.merge_pop(buf, 4, n), SpscLaneSet<Event>::Merge::kItems);
  ASSERT_EQ(n, 1u);
  EXPECT_EQ(buf[0].seq, 5u);

  // ...and only the head: nothing further is visible or promised.
  EXPECT_EQ(set.merge_pop(buf, 4, n), SpscLaneSet<Event>::Merge::kStall);
}

TEST(SpscLaneMerge, FloorBoundsEmissionFromOtherLanes) {
  SpscLaneSet<Event> set(2, 16);
  for (std::uint64_t s : {1, 3, 8, 12}) {
    ASSERT_TRUE(set.lane(0).try_push(ev(s)));
  }
  set.set_floor(1, 9);  // lane 1 promises: future pushes have seq >= 9
  Event buf[8];
  std::size_t n = 0;
  // 1, 3, 8 are emittable (all < 9); 12 must wait behind the floor.
  EXPECT_EQ(set.merge_pop(buf, 8, n), SpscLaneSet<Event>::Merge::kItems);
  ASSERT_EQ(n, 3u);
  EXPECT_EQ(buf[0].seq, 1u);
  EXPECT_EQ(buf[1].seq, 3u);
  EXPECT_EQ(buf[2].seq, 8u);

  // A push on lane 1 honoring its floor merges ahead of the held-back 12.
  ASSERT_TRUE(set.lane(1).try_push(ev(9)));
  set.close_lane(1);
  set.close_lane(0);
  const auto rest = drain_all(set);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].seq, 9u);
  EXPECT_EQ(rest[1].seq, 12u);
}

TEST(SpscLaneMerge, CloseEdges) {
  // Closing an empty never-used lane set completes immediately.
  {
    SpscLaneSet<Event> set(3, 8);
    for (std::size_t p = 0; p < 3; ++p) set.close_lane(p);
    Event buf[4];
    std::size_t n = 0;
    EXPECT_EQ(set.merge_pop(buf, 4, n), SpscLaneSet<Event>::Merge::kDone);
    EXPECT_EQ(n, 0u);
  }
  // Items pushed before close are still drained after it ("closed observed
  // after empty view, one more look decides").
  {
    SpscLaneSet<Event> set(2, 8);
    ASSERT_TRUE(set.lane(0).try_push(ev(0)));
    ASSERT_TRUE(set.lane(1).try_push(ev(1)));
    set.close_lane(0);
    set.close_lane(1);
    const auto out = drain_all(set);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].seq, 0u);
    EXPECT_EQ(out[1].seq, 1u);
  }
}

TEST(SpscLaneMerge, SizeCountsAllLanes) {
  SpscLaneSet<Event> set(2, 8);
  EXPECT_EQ(set.size(), 0u);
  ASSERT_TRUE(set.lane(0).try_push(ev(0)));
  ASSERT_TRUE(set.lane(1).try_push(ev(1)));
  ASSERT_TRUE(set.lane(1).try_push(ev(3)));
  EXPECT_EQ(set.size(), 3u);
}

TEST(SpscLaneMerge, WrapAroundWithTinyRings) {
  // Capacity 4 lanes, 64 events per lane: the merge must survive many
  // wraps, with the producer refilling as the consumer frees slots.
  SpscLaneSet<Event> set(2, 4);
  const std::size_t kPerLane = 64;
  std::size_t pushed0 = 0;
  std::size_t pushed1 = 0;
  std::vector<Event> out;
  Event buf[4];
  while (out.size() < 2 * kPerLane) {
    while (pushed0 < kPerLane && set.lane(0).try_push(ev(2 * pushed0))) {
      ++pushed0;
      if (pushed0 == kPerLane) set.close_lane(0);
    }
    while (pushed1 < kPerLane && set.lane(1).try_push(ev(2 * pushed1 + 1))) {
      ++pushed1;
      if (pushed1 == kPerLane) set.close_lane(1);
    }
    std::size_t n = 0;
    set.merge_pop(buf, 4, n);
    out.insert(out.end(), buf, buf + n);
  }
  ASSERT_EQ(out.size(), 2 * kPerLane);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i].seq, i);
}

/// Multi-threaded stress: P producer threads bulk-push disjoint
/// seq-increasing subsequences (randomly sized batches, partial bulk
/// acceptance, full-ring retries, floors advanced after every batch) while
/// the consumer merges.  The output must be exactly 0..n-1 in order.
void run_stress(std::size_t producers, std::uint64_t salt) {
  const std::uint64_t seed = test_support::test_seed(salt);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const std::size_t kTotal = 20'000;

  // Pre-assign each seq to a producer (seeded): per lane the subsequence is
  // increasing, which is all the merge requires.
  std::vector<std::vector<std::uint64_t>> plan(producers);
  {
    Rng rng(seed);
    for (std::uint64_t s = 0; s < kTotal; ++s) {
      plan[rng.uniform_int(static_cast<std::uint64_t>(producers))].push_back(s);
    }
  }

  SpscLaneSet<Event> set(producers, 64);
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      Rng rng(seed ^ (0x9e37 + p));
      const auto& mine = plan[p];
      std::vector<Event> batch;
      std::size_t i = 0;
      while (i < mine.size()) {
        const std::size_t take = std::min<std::size_t>(
            1 + rng.uniform_int(std::uint64_t{96}), mine.size() - i);
        batch.clear();
        for (std::size_t j = 0; j < take; ++j) batch.push_back(ev(mine[i + j]));
        std::size_t off = 0;
        while (off < batch.size()) {
          const std::size_t n =
              set.lane(p).try_push_bulk(batch.data() + off, batch.size() - off);
          if (n == 0) {
            std::this_thread::yield();
          } else {
            off += n;
          }
        }
        i += take;
        // Floor: every future push on this lane is > the last pushed seq.
        set.set_floor(p, mine[i - 1] + 1);
      }
      set.close_lane(p);
    });
  }

  std::vector<Event> out;
  out.reserve(kTotal);
  std::vector<Event> buf(256);
  for (;;) {
    std::size_t n = 0;
    const auto st = set.merge_pop(buf.data(), buf.size(), n);
    out.insert(out.end(), buf.begin(), buf.begin() + n);
    if (st == SpscLaneSet<Event>::Merge::kDone) break;
    if (n == 0) std::this_thread::yield();
  }
  for (auto& t : threads) t.join();

  ASSERT_EQ(out.size(), kTotal);
  for (std::uint64_t s = 0; s < kTotal; ++s) {
    ASSERT_EQ(out[s].seq, s) << "merge emitted out of order at " << s;
  }
}

TEST(SpscLaneMergeStress, TwoProducers) { run_stress(2, 211); }
TEST(SpscLaneMergeStress, ThreeProducers) { run_stress(3, 223); }
TEST(SpscLaneMergeStress, FourProducers) { run_stress(4, 227); }

}  // namespace
}  // namespace espice
