// StreamEngine determinism oracle: the K-shard concurrent engine against
// the serial single-thread golden.
//
// The golden for a K-shard run is defined by the engine's partitioning
// semantics: split the stream into K substreams with the engine's own fixed
// partition hash, run the serial run_pipeline() over each substream (with
// the identical deterministic shedder), and canonically merge the per-shard
// match lists.  The concurrent engine must reproduce that *exactly* --
// every match, every constituent, every position, byte-for-byte -- for
// every span kind x open kind x shedding policy x K combination.  Under
// TSan (CI) this doubles as the engine's race-freedom proof.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "runtime/stream_engine.hpp"
#include "sim/sharded_sim.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

constexpr EventTypeId kNumTypes = 6;
constexpr EventTypeId kOpenerType = 1;
constexpr EventTypeId kCloserType = 2;

WindowSpec make_spec(WindowSpan span_kind, WindowOpen open_kind) {
  WindowSpec spec;
  spec.span_kind = span_kind;
  spec.open_kind = open_kind;
  switch (span_kind) {
    case WindowSpan::kTime:
      spec.span_seconds = 7.5;
      break;
    case WindowSpan::kCount:
      spec.span_events = 24;
      break;
    case WindowSpan::kPredicate:
      spec.span_events = 40;  // safety cap
      spec.closer = element("close", TypeSet{kCloserType}, DirectionFilter::kAny);
      break;
  }
  if (open_kind == WindowOpen::kPredicate) {
    spec.opener = element("open", TypeSet{kOpenerType}, DirectionFilter::kAny);
  } else {
    spec.slide_events = 5;
  }
  return spec;
}

std::vector<Event> random_stream(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += rng.uniform(0.0, 1.2);
    e.ts = ts;
    e.value = rng.uniform(-2.0, 2.0);
    events.push_back(e);
  }
  return events;
}

/// Deterministic, stateless shedder: the drop decision is a pure hash of
/// (event seq, window position), so serial and sharded runs agree no matter
/// how work interleaves.  mod == 0 keeps everything.
class HashShedder final : public Shedder {
 public:
  explicit HashShedder(unsigned mod) : mod_(mod) {}

  bool should_drop(const Event& e, std::uint32_t position, double) override {
    const bool drop =
        mod_ != 0 &&
        ((e.seq * 2654435761ULL) ^ (position * 40503ULL)) % mod_ != 0;
    count_decision(drop);
    return drop;
  }
  void on_command(const DropCommand&) override {}
  const char* name() const override { return "hash"; }

 private:
  unsigned mod_;
};

/// A pattern that produces matches in every substream: any rising event,
/// then any falling event (types are irrelevant, so partitioning by type
/// cannot starve a shard of matches).
ShardQuery make_query(const WindowSpec& spec) {
  ShardQuery q;
  q.pattern = make_sequence(
      {element("up", TypeSet{}, DirectionFilter::kRising),
       element("down", TypeSet{}, DirectionFilter::kFalling)});
  q.window = spec;
  return q;
}

constexpr double kPredictedWs = 24.0;

/// One config drives both sides of the comparison: the engine run and the
/// library's partitioned_serial_golden().
StreamEngineConfig make_config(const WindowSpec& spec, std::size_t shards,
                               unsigned drop_mod,
                               std::size_t ring_capacity = 256) {
  StreamEngineConfig config;
  config.shards = shards;
  config.ring_capacity = ring_capacity;
  config.query = make_query(spec);
  config.predicted_ws = kPredictedWs;
  if (drop_mod != 0) {
    config.shedder_factory = [drop_mod](std::size_t) {
      return std::make_unique<HashShedder>(drop_mod);
    };
  }
  return config;
}

std::vector<ComplexEvent> serial_golden(const std::vector<Event>& events,
                                        const WindowSpec& spec,
                                        std::size_t shards, unsigned drop_mod) {
  return partitioned_serial_golden(make_config(spec, shards, drop_mod), events);
}

EngineReport engine_run(const std::vector<Event>& events,
                        const WindowSpec& spec, std::size_t shards,
                        unsigned drop_mod, std::size_t ring_capacity = 256) {
  StreamEngine engine(make_config(spec, shards, drop_mod, ring_capacity));
  for (const Event& e : events) engine.push(e);
  return engine.finish();
}

void expect_same_matches(const std::vector<ComplexEvent>& actual,
                         const std::vector<ComplexEvent>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const ComplexEvent& a = actual[i];
    const ComplexEvent& b = expected[i];
    EXPECT_DOUBLE_EQ(a.detection_ts, b.detection_ts) << "match " << i;
    ASSERT_EQ(a.constituents.size(), b.constituents.size()) << "match " << i;
    for (std::size_t c = 0; c < a.constituents.size(); ++c) {
      EXPECT_EQ(a.constituents[c].element, b.constituents[c].element)
          << "match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].position, b.constituents[c].position)
          << "match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].event.seq, b.constituents[c].event.seq)
          << "match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].event.type, b.constituents[c].event.type)
          << "match " << i << " constituent " << c;
    }
  }
}

using OracleParams = std::tuple<WindowSpan, WindowOpen, unsigned /*drop mod*/,
                                std::size_t /*shards*/, std::uint64_t>;

class StreamEngineOracle : public ::testing::TestWithParam<OracleParams> {};

TEST_P(StreamEngineOracle, MatchesPartitionedSerialGolden) {
  const auto [span_kind, open_kind, drop_mod, shards, salt] = GetParam();
  const std::uint64_t seed = test_support::test_seed(salt);
  SCOPED_TRACE(test_support::seed_trace(seed));

  const auto events = random_stream(seed, 1500);
  const WindowSpec spec = make_spec(span_kind, open_kind);

  const auto golden = serial_golden(events, spec, shards, drop_mod);
  const auto report = engine_run(events, spec, shards, drop_mod);

  // Guard against a vacuous comparison: every keep-everything configuration
  // must actually detect complex events in these streams.
  if (drop_mod == 0) {
    EXPECT_GT(golden.size(), 0u);
  }

  // Nothing lost in the rings: every pushed event reached a shard.
  std::uint64_t shard_events = 0;
  for (const auto& s : report.shards) shard_events += s.events;
  EXPECT_EQ(shard_events, events.size());
  EXPECT_EQ(report.events, events.size());

  expect_same_matches(report.matches, golden);
}

INSTANTIATE_TEST_SUITE_P(
    AllSpanAndOpenKinds, StreamEngineOracle,
    ::testing::Combine(
        ::testing::Values(WindowSpan::kTime, WindowSpan::kCount,
                          WindowSpan::kPredicate),
        ::testing::Values(WindowOpen::kPredicate, WindowOpen::kCountSlide),
        // keep everything / hash-shed ~2 in 3
        ::testing::Values(0u, 3u),
        // K = 1 (serial behind a ring), 2, 4
        ::testing::Values(std::size_t{1}, std::size_t{2}, std::size_t{4}),
        ::testing::Values(11u)));

// A second randomized sweep at a different salt, single config, K = 4 --
// cheap extra stream coverage for the hardest combination.
TEST(StreamEngineOracle, RandomizedStreamsHeavyOverlapK4) {
  for (const std::uint64_t salt : {222u, 3333u}) {
    const std::uint64_t seed = test_support::test_seed(salt);
    SCOPED_TRACE(test_support::seed_trace(seed));
    const auto events = random_stream(seed, 3000);
    WindowSpec spec;
    spec.span_kind = WindowSpan::kCount;
    spec.span_events = 48;
    spec.open_kind = WindowOpen::kCountSlide;
    spec.slide_events = 4;  // overlap 12
    const auto golden = serial_golden(events, spec, 4, 7);
    const auto report = engine_run(events, spec, 4, 7);
    expect_same_matches(report.matches, golden);
  }
}

// finish() with events still queued: a tiny ring and a burst far larger
// than (ring x shards) guarantees events are still in flight when finish()
// is called.  The close/drain handshake must process every one of them and
// then flush open windows -- identical to the serial golden's close_all().
TEST(StreamEngineOracle, FinishFlushesQueuedEventsCleanly) {
  const std::uint64_t seed = test_support::test_seed(77);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 5000);
  WindowSpec spec = make_spec(WindowSpan::kCount, WindowOpen::kCountSlide);

  const auto golden = serial_golden(events, spec, 4, 0);
  // ring_capacity 16: the router outpaces shards, rings run full, and the
  // last pushes land immediately before finish().
  const auto report = engine_run(events, spec, 4, /*drop_mod=*/0,
                                 /*ring_capacity=*/16);

  std::uint64_t shard_events = 0;
  for (const auto& s : report.shards) shard_events += s.events;
  EXPECT_EQ(shard_events, events.size())
      << "finish() lost events that were still queued";
  expect_same_matches(report.matches, golden);
}

// Adaptive mode: every shard hosts a full EspiceOperator.  Partitioning by
// window-block id (seq / 6) sends each tumbling window wholly to one shard,
// so the per-shard lifecycles (training -> shedding) run on well-formed
// windows and every A-then-B pair is detected.  With idle rings the
// detectors must never activate shedding, so the merged output is complete.
TEST(StreamEngineOracle, AdaptiveShardsRunFullLifecycle) {
  constexpr std::size_t kBlocks = 400;
  std::vector<Event> events;
  for (std::size_t b = 0; b < kBlocks; ++b) {
    for (std::size_t pos = 0; pos < 6; ++pos) {
      Event e;
      e.type = pos == 0 ? 0 : (pos == 1 ? 1 : 2);  // A B filler...
      e.seq = b * 6 + pos;
      e.ts = static_cast<double>(e.seq);
      e.value = 1.0;
      events.push_back(e);
    }
  }

  EspiceOperatorConfig op;
  op.pattern = make_sequence({element("A", TypeSet{0}), element("B", TypeSet{1})});
  op.window.span_kind = WindowSpan::kCount;
  op.window.span_events = 6;
  op.window.open_kind = WindowOpen::kCountSlide;
  op.window.slide_events = 6;
  op.num_types = 3;
  op.training_windows = 30;

  StreamEngineConfig config;
  config.shards = 2;
  config.adaptive = op;
  config.key_of = [](const Event& e) { return e.seq / 6; };
  StreamEngine engine(config);
  for (const Event& e : events) engine.push(e);
  const EngineReport report = engine.finish();

  std::uint64_t shard_events = 0, windows = 0;
  for (const auto& s : report.shards) {
    shard_events += s.events;
    windows += s.windows_closed;
    EXPECT_GT(s.events, 0u) << "shard " << s.shard << " starved";
    EXPECT_EQ(s.shed_drops, 0u) << "idle rings must never trigger shedding";
    EXPECT_FALSE(s.shedding_ever_active);
  }
  EXPECT_EQ(shard_events, events.size());
  // finish() flushed every shard's pending window: all blocks became
  // windows and every window holds one A-then-B match.
  EXPECT_EQ(windows, kBlocks);
  EXPECT_EQ(report.matches.size(), kBlocks);
}

// Stats cross-check: per-shard memberships minus kept equals the shedder's
// drop count, and K = 1 with no shedder reproduces the plain serial run.
TEST(StreamEngineOracle, ShardStatsAreConsistent) {
  const std::uint64_t seed = test_support::test_seed(5);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 2000);
  const WindowSpec spec = make_spec(WindowSpan::kCount, WindowOpen::kCountSlide);

  const auto report = engine_run(events, spec, 2, /*drop_mod=*/3);
  for (const auto& s : report.shards) {
    EXPECT_EQ(s.memberships - s.memberships_kept, s.shed_drops)
        << "shard " << s.shard;
    EXPECT_EQ(s.shed_decisions, s.memberships) << "shard " << s.shard;
    EXPECT_GT(s.events, 0u) << "shard " << s.shard << " starved";
  }
}

}  // namespace
}  // namespace espice
