// BackoffWaiter schedule unit tests -- sleep-free: the jittered schedule
// is exposed via next_sleep_us()/sleep_ceiling_us() exactly so the cap,
// the monotone ceiling escalation, reset de-escalation, and the
// seed-determinism contract can be verified without timing real sleeps.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "runtime/backoff.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

TEST(BackoffWaiter, EveryDrawRespectsBoundsAndCap) {
  const std::uint64_t seed = test_support::test_seed(81);
  SCOPED_TRACE(test_support::seed_trace(seed));
  BackoffWaiter w(seed);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t ceiling = w.sleep_ceiling_us();
    const std::uint64_t us = w.next_sleep_us();
    EXPECT_GE(us, BackoffWaiter::kMinSleepUs);
    EXPECT_LE(us, ceiling) << "draw " << i << " exceeded its own ceiling";
    EXPECT_LE(us, BackoffWaiter::kMaxSleepUs) << "draw " << i << " over cap";
  }
  EXPECT_EQ(w.sleep_ceiling_us(), BackoffWaiter::kMaxSleepUs)
      << "1000 draws must saturate the ceiling at the cap";
}

TEST(BackoffWaiter, CeilingEscalatesMonotonicallyThenSaturates) {
  BackoffWaiter w(7);
  std::uint64_t prev = w.sleep_ceiling_us();
  EXPECT_EQ(prev, BackoffWaiter::kMinSleepUs) << "episodes start cheap";
  // Doubling from 1us reaches the 1ms cap in ~10 draws; escalation must be
  // monotone the whole way and then pin at the cap.
  for (int i = 0; i < 64; ++i) {
    w.next_sleep_us();
    const std::uint64_t cur = w.sleep_ceiling_us();
    EXPECT_GE(cur, prev) << "ceiling regressed mid-episode at draw " << i;
    prev = cur;
  }
  EXPECT_EQ(prev, BackoffWaiter::kMaxSleepUs);
}

TEST(BackoffWaiter, ResetDropsBackToYieldRegime) {
  BackoffWaiter w(13);
  for (int i = 0; i < 20; ++i) w.next_sleep_us();
  ASSERT_GT(w.sleep_ceiling_us(), BackoffWaiter::kMinSleepUs);
  w.reset();
  EXPECT_EQ(w.sleep_ceiling_us(), BackoffWaiter::kMinSleepUs)
      << "reset() must de-escalate the ceiling";
  // And the escalation restarts from the bottom.
  const std::uint64_t first = w.next_sleep_us();
  EXPECT_LE(first, 2 * BackoffWaiter::kMinSleepUs);
}

TEST(BackoffWaiter, ScheduleIsAPureFunctionOfTheSeed) {
  const std::uint64_t seed = test_support::test_seed(82);
  SCOPED_TRACE(test_support::seed_trace(seed));
  BackoffWaiter a(seed);
  BackoffWaiter b(seed);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.next_sleep_us(), b.next_sleep_us())
        << "same seed diverged at draw " << i;
  }
  // Different seeds decorrelate: the schedules must not be identical
  // (that lockstep is exactly what per-shard seeding exists to break).
  BackoffWaiter c(seed);
  BackoffWaiter d(seed + 1);
  bool diverged = false;
  for (int i = 0; i < 200 && !diverged; ++i) {
    diverged = c.next_sleep_us() != d.next_sleep_us();
  }
  EXPECT_TRUE(diverged) << "adjacent seeds produced identical schedules";
}

TEST(BackoffWaiter, WaitMetersItselfAndYieldsFirst) {
  BackoffWaiter w(0);
  // The first kYieldRounds waits are yields (cheap); they still count.
  for (int i = 0; i < BackoffWaiter::kYieldRounds; ++i) w.wait();
  EXPECT_EQ(w.waits(), static_cast<std::uint64_t>(BackoffWaiter::kYieldRounds));
  EXPECT_EQ(w.sleep_ceiling_us(), BackoffWaiter::kMinSleepUs)
      << "yield rounds must not escalate the sleep ceiling";
  // The next wait enters the sleep regime and starts escalating.
  w.wait();
  EXPECT_GE(w.sleep_ceiling_us(), BackoffWaiter::kMinSleepUs);
  EXPECT_GT(w.stall_seconds(), 0.0);
  w.reset();
  for (int i = 0; i < 3; ++i) w.wait();  // back to cheap yields
  EXPECT_EQ(w.sleep_ceiling_us(), BackoffWaiter::kMinSleepUs);
}

}  // namespace
}  // namespace espice
