// Multi-producer ingestion oracle: push_batch_concurrent() from P real
// producer threads against the single-producer engine and the serial
// golden, across P x K x shedding x batch sizes.
//
// The contract under test is bit-identity: per-producer staging, the P x K
// lane fabric and the per-shard seq-merge must reproduce the exact output
// of the single-producer engine -- same matches with the same constituents,
// same per-query counters, same per-shard deterministic stats -- for every
// producer count, shard count, batch size and interleaving the scheduler
// throws at it.  The per-shard merge orders lane heads by seq, so whatever
// order producers actually push in, each shard consumes its substream in
// the one canonical order.
//
// A WAL case closes the loop with durability: a multi-producer run appends
// batches in sequencer order (arbitrarily interleaved across producers),
// and recovery must still reproduce the golden by sorting the tail by seq.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <thread>
#include <tuple>
#include <vector>

#include "common/rng.hpp"
#include "runtime/stream_engine.hpp"
#include "sim/sharded_sim.hpp"
#include "support/temp_dir.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

constexpr EventTypeId kNumTypes = 6;

std::vector<Event> random_stream(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += rng.uniform(0.0, 1.2);
    e.ts = ts;
    e.value = rng.uniform(-2.0, 2.0);
    events.push_back(e);
  }
  return events;
}

/// Deterministic, stateless shedder (pure hash of seq x position).
class HashShedder final : public Shedder {
 public:
  explicit HashShedder(unsigned mod) : mod_(mod) {}

  bool should_drop(const Event& e, std::uint32_t position, double) override {
    const bool drop =
        mod_ != 0 &&
        ((e.seq * 2654435761ULL) ^ (position * 40503ULL)) % mod_ != 0;
    count_decision(drop);
    return drop;
  }
  void on_command(const DropCommand&) override {}
  const char* name() const override { return "hash"; }

 private:
  unsigned mod_;
};

StreamEngineConfig make_config(std::size_t shards, bool shed) {
  StreamEngineConfig config;
  config.shards = shards;
  config.ring_capacity = 256;
  ShardQuery q;
  q.pattern = make_sequence(
      {element("up", TypeSet{}, DirectionFilter::kRising),
       element("down", TypeSet{}, DirectionFilter::kFalling)});
  q.window.span_kind = WindowSpan::kCount;
  q.window.span_events = 24;
  q.window.open_kind = WindowOpen::kCountSlide;
  q.window.slide_events = 5;
  config.query = q;
  config.predicted_ws = 24.0;
  if (shed) {
    config.shedder_factory = [](std::size_t) {
      return std::make_unique<HashShedder>(3);
    };
  }
  return config;
}

void expect_same_matches(const std::vector<ComplexEvent>& actual,
                         const std::vector<ComplexEvent>& expected,
                         const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const ComplexEvent& a = actual[i];
    const ComplexEvent& b = expected[i];
    ASSERT_EQ(a.constituents.size(), b.constituents.size())
        << label << " match " << i;
    for (std::size_t c = 0; c < a.constituents.size(); ++c) {
      EXPECT_EQ(a.constituents[c].element, b.constituents[c].element)
          << label << " match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].position, b.constituents[c].position)
          << label << " match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].event.seq, b.constituents[c].event.seq)
          << label << " match " << i << " constituent " << c;
    }
  }
}

/// Full deterministic-field equivalence between a multi-producer report and
/// a single-producer one (gauges like queue depth and stall seconds are
/// wall-clock shaped and excluded).
void expect_same_report(const EngineReport& mp, const EngineReport& sp) {
  EXPECT_EQ(mp.events, sp.events);
  expect_same_matches(mp.matches, sp.matches, "engine matches");
  ASSERT_EQ(mp.queries.size(), sp.queries.size());
  for (std::size_t qi = 0; qi < mp.queries.size(); ++qi) {
    const QueryReport& a = mp.queries[qi];
    const QueryReport& b = sp.queries[qi];
    const std::string label = "query " + b.name;
    expect_same_matches(a.matches, b.matches, label);
    EXPECT_EQ(a.memberships, b.memberships) << label;
    EXPECT_EQ(a.memberships_kept, b.memberships_kept) << label;
    EXPECT_EQ(a.shed_decisions, b.shed_decisions) << label;
    EXPECT_EQ(a.shed_drops, b.shed_drops) << label;
  }
  ASSERT_EQ(mp.shards.size(), sp.shards.size());
  for (std::size_t s = 0; s < mp.shards.size(); ++s) {
    const ShardStats& a = mp.shards[s];
    const ShardStats& b = sp.shards[s];
    EXPECT_EQ(a.events, b.events) << "shard " << s;
    EXPECT_EQ(a.memberships, b.memberships) << "shard " << s;
    EXPECT_EQ(a.memberships_kept, b.memberships_kept) << "shard " << s;
    EXPECT_EQ(a.windows_closed, b.windows_closed) << "shard " << s;
    EXPECT_EQ(a.matches, b.matches) << "shard " << s;
    EXPECT_EQ(a.shed_decisions, b.shed_decisions) << "shard " << s;
    EXPECT_EQ(a.shed_drops, b.shed_drops) << "shard " << s;
  }
}

/// Replays `events` from `producers` real threads: producer p takes every
/// P-th batch (round-robin), so each producer's seqs are strictly
/// increasing while the global interleaving is up to the scheduler.
EngineReport run_multi_producer(StreamEngineConfig config,
                                const std::vector<Event>& events,
                                std::size_t producers, std::size_t batch) {
  config.producers = producers;
  StreamEngine engine(config);
  engine.start();  // multi-producer engines start explicitly
  const std::span<const Event> all(events);
  std::vector<std::thread> threads;
  threads.reserve(producers);
  for (std::size_t p = 0; p < producers; ++p) {
    threads.emplace_back([&, p] {
      for (std::size_t b = p; b * batch < events.size(); b += producers) {
        const std::size_t off = b * batch;
        engine.push_batch_concurrent(
            p, all.subspan(off, std::min(batch, events.size() - off)));
      }
      engine.producer_done(p);
    });
  }
  for (auto& t : threads) t.join();
  return engine.finish();
}

EngineReport run_single_producer(const StreamEngineConfig& config,
                                 const std::vector<Event>& events) {
  StreamEngine engine(config);
  engine.push_batch(events);
  return engine.finish();
}

using MpParams = std::tuple<std::size_t /*producers*/, std::size_t /*shards*/,
                            bool /*shed*/, std::size_t /*batch*/>;

class MpIngestOracle : public ::testing::TestWithParam<MpParams> {};

TEST_P(MpIngestOracle, MultiProducerEqualsSingleProducerAndGolden) {
  const auto [producers, shards, shed, batch] = GetParam();
  const std::uint64_t seed = test_support::test_seed(
      0xa11 + producers * 131 + shards * 17 + (shed ? 7 : 0) + batch);
  SCOPED_TRACE(test_support::seed_trace(seed));

  const auto events = random_stream(seed, 3000);
  const StreamEngineConfig config = make_config(shards, shed);

  const auto sp = run_single_producer(config, events);
  const auto mp = run_multi_producer(config, events, producers, batch);
  expect_same_report(mp, sp);
  expect_same_matches(mp.matches, partitioned_serial_golden(config, events),
                      "vs serial golden");
}

INSTANTIATE_TEST_SUITE_P(
    ProducersByShards, MpIngestOracle,
    ::testing::Combine(::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}),
                       ::testing::Values(false, true),
                       ::testing::Values(std::size_t{64}, std::size_t{257})));

// Producers that stop at different times (staggered producer_done) must
// not wedge the merge: remaining producers' floors keep every shard live.
TEST(MpIngestOracle, StaggeredProducerCompletion) {
  const std::uint64_t seed = test_support::test_seed(0xbeb);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 2000);
  StreamEngineConfig config = make_config(2, /*shed=*/true);
  const auto sp = run_single_producer(config, events);

  config.producers = 3;
  StreamEngine engine(config);
  engine.start();
  const std::span<const Event> all(events);
  // Producer 0 pushes the first 10%, then leaves; 1 and 2 split the rest.
  std::thread t0([&] {
    engine.push_batch_concurrent(0, all.subspan(0, 200));
    engine.producer_done(0);
  });
  auto tail_worker = [&](std::size_t p) {
    for (std::size_t b = p - 1; 200 + b * 100 < events.size(); b += 2) {
      const std::size_t off = 200 + b * 100;
      engine.push_batch_concurrent(
          p, all.subspan(off, std::min<std::size_t>(100, events.size() - off)));
    }
    engine.producer_done(p);
  };
  std::thread t1(tail_worker, 1);
  std::thread t2(tail_worker, 2);
  t0.join();
  t1.join();
  t2.join();
  expect_same_report(engine.finish(), sp);
}

// An idle producer that never pushes at all: producer_done() alone must
// release its lanes so the merge can complete.
TEST(MpIngestOracle, IdleProducerOnlyCallsDone) {
  const std::uint64_t seed = test_support::test_seed(0xcec);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 1000);
  StreamEngineConfig config = make_config(2, /*shed=*/false);
  const auto sp = run_single_producer(config, events);

  config.producers = 2;
  StreamEngine engine(config);
  engine.start();
  engine.producer_done(1);  // producer 1 contributes nothing
  engine.push_batch_concurrent(0, events);
  engine.producer_done(0);
  expect_same_report(engine.finish(), sp);
}

// Multi-producer + WAL: the log is appended in sequencer order (producer
// interleaving is nondeterministic), and recovery sorts the tail by seq
// before replaying -- the recovered run must reproduce the golden exactly.
TEST(MpIngestOracle, WalRecoveryReplaysSortedTail) {
  const std::uint64_t seed = test_support::test_seed(0xded);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 1500);
  test_support::TempDir dir("mpwal");

  StreamEngineConfig config = make_config(2, /*shed=*/true);
  const auto sp = run_single_producer(config, events);

  config.producers = 2;
  config.durability.emplace();
  config.durability->dir = dir.path().string();
  {
    StreamEngine engine(config);
    engine.start();
    const std::span<const Event> all(events);
    std::thread t0([&] {
      for (std::size_t b = 0; b * 128 < events.size(); b += 2) {
        const std::size_t off = b * 128;
        engine.push_batch_concurrent(
            0, all.subspan(off, std::min<std::size_t>(128, events.size() - off)));
      }
      engine.producer_done(0);
    });
    std::thread t1([&] {
      for (std::size_t b = 1; b * 128 < events.size(); b += 2) {
        const std::size_t off = b * 128;
        engine.push_batch_concurrent(
            1, all.subspan(off, std::min<std::size_t>(128, events.size() - off)));
      }
      engine.producer_done(1);
    });
    t0.join();
    t1.join();
    expect_same_report(engine.finish(), sp);
  }

  // Fresh engine, same directory: recovery replays the whole log (there are
  // no snapshots in multi-producer mode) and must land on the same output.
  StreamEngine recovered(config);
  const RecoveryReport rec = recovered.recover_and_start();
  EXPECT_EQ(rec.durable_events, events.size());
  for (std::size_t p = 0; p < 2; ++p) recovered.producer_done(p);
  expect_same_report(recovered.finish(), sp);
}

// Mode-exclusion guards: the single-producer entry points refuse on a
// multi-producer engine, and checkpoint() refuses outright.
TEST(MpIngestOracle, ModeGuards) {
  StreamEngineConfig config = make_config(2, /*shed=*/false);
  config.producers = 2;
  StreamEngine engine(config);
  EXPECT_THROW(engine.push(Event{}), ConfigError);
  EXPECT_THROW(engine.push_batch_concurrent(0, {}),
               ConfigError);  // before start()
  engine.start();
  EXPECT_THROW(engine.push_batch_concurrent(5, {}),
               ConfigError);  // bad producer
  for (std::size_t p = 0; p < 2; ++p) engine.producer_done(p);
  engine.finish();
}

}  // namespace
}  // namespace espice
