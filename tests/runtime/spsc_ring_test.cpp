// SpscRing semantics: capacity rounding, wrap-around, full/empty edges and
// the close() handshake -- plus a real two-thread stress run that verifies
// order and content end to end.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "runtime/spsc_ring.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_THROW(SpscRing<int>(0), ConfigError);
}

TEST(SpscRing, StartsEmptyAndPopFails) {
  SpscRing<int> ring(4);
  int out = -1;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(out, -1);
}

TEST(SpscRing, FillsToCapacityThenRejects) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99)) << "push into a full ring must fail";
  // Freeing one slot re-enables exactly one push.
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(5));
}

TEST(SpscRing, FifoAcrossManyWraps) {
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0, next_pop = 0;
  // Sawtooth fill levels force the cursors through many wrap-arounds.
  for (int round = 0; round < 500; ++round) {
    const std::size_t burst = 1 + (round % 8);
    for (std::size_t i = 0; i < burst; ++i) {
      if (!ring.try_push(next_push)) break;
      ++next_push;
    }
    const std::size_t drain = 1 + ((round * 3) % 8);
    for (std::size_t i = 0; i < drain; ++i) {
      std::uint64_t out;
      if (!ring.try_pop(out)) break;
      EXPECT_EQ(out, next_pop) << "FIFO order broken at round " << round;
      ++next_pop;
    }
  }
  while (next_pop < next_push) {
    std::uint64_t out;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, next_pop++);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PopOrClosedDrainsTailAfterClose) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(i));
  ring.close();
  int out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(ring.pop_or_closed(out), SpscRing<int>::Pop::kItem)
        << "items pushed before close() must still drain";
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(ring.pop_or_closed(out), SpscRing<int>::Pop::kDone);
  EXPECT_EQ(ring.pop_or_closed(out), SpscRing<int>::Pop::kDone);
}

TEST(SpscRing, OpenAndEmptyReportsEmptyNotDone) {
  SpscRing<int> ring(8);
  int out;
  EXPECT_EQ(ring.pop_or_closed(out), SpscRing<int>::Pop::kEmpty);
}

TEST(SpscRingBulk, BulkPushPopAcrossWraps) {
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0, next_pop = 0;
  std::uint64_t buf[8];
  // Sawtooth bulk sizes force the block copies through many wrap-arounds
  // (the two-segment split path).
  for (int round = 0; round < 500; ++round) {
    const std::size_t burst = 1 + (round % 8);
    std::uint64_t src[8];
    for (std::size_t i = 0; i < burst; ++i) src[i] = next_push + i;
    next_push += ring.try_push_bulk(src, burst);
    const std::size_t drain = 1 + ((round * 3) % 8);
    const std::size_t got = ring.try_pop_bulk(buf, drain);
    for (std::size_t i = 0; i < got; ++i) {
      EXPECT_EQ(buf[i], next_pop) << "bulk FIFO broken at round " << round;
      ++next_pop;
    }
  }
  while (next_pop < next_push) {
    const std::size_t got = ring.try_pop_bulk(buf, 8);
    ASSERT_GT(got, 0u);
    for (std::size_t i = 0; i < got; ++i) EXPECT_EQ(buf[i], next_pop++);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRingBulk, PartialEnqueueNearFull) {
  SpscRing<int> ring(8);
  int six[6] = {0, 1, 2, 3, 4, 5};
  ASSERT_EQ(ring.try_push_bulk(six, 6), 6u);
  // Only 2 slots left: a 6-item bulk push must enqueue exactly 2.
  int more[6] = {6, 7, 8, 9, 10, 11};
  EXPECT_EQ(ring.try_push_bulk(more, 6), 2u);
  EXPECT_EQ(ring.size(), 8u);
  // Full: 0, not a partial 0-or-throw ambiguity.
  EXPECT_EQ(ring.try_push_bulk(more, 3), 0u);
  int out[8];
  EXPECT_EQ(ring.try_pop_bulk(out, 8), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(out[i], i);
  // Popping from empty returns 0 (and writes nothing).
  EXPECT_EQ(ring.try_pop_bulk(out, 8), 0u);
}

TEST(SpscRingBulk, PopBulkOrClosedDrainsTailThenReportsDone) {
  SpscRing<int> ring(8);
  int five[5] = {0, 1, 2, 3, 4};
  ASSERT_EQ(ring.try_push_bulk(five, 5), 5u);
  ring.close();
  int out[8];
  bool done = true;
  EXPECT_EQ(ring.pop_bulk_or_closed(out, 8, done), 5u)
      << "items pushed before close() must still drain";
  EXPECT_FALSE(done);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(ring.pop_bulk_or_closed(out, 8, done), 0u);
  EXPECT_TRUE(done);
}

TEST(SpscRingBulk, FrontBlockIsZeroCopyUntilRelease) {
  SpscRing<int> ring(8);
  int six[6] = {0, 1, 2, 3, 4, 5};
  ASSERT_EQ(ring.try_push_bulk(six, 6), 6u);
  const std::span<const int> view = ring.front_block(4);
  ASSERT_EQ(view.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(view[i], i);
  // The viewed slots stay owned by the consumer: the producer still sees a
  // full-enough ring (6 queued + 2 free).
  EXPECT_EQ(ring.size(), 6u);
  int two[2] = {6, 7};
  EXPECT_EQ(ring.try_push_bulk(two, 2), 2u);
  EXPECT_EQ(ring.try_push_bulk(two, 1), 0u) << "viewed slots must not be reused";
  ring.release(view.size());
  EXPECT_EQ(ring.size(), 4u);
  // After release the freed slots are writable again, and the next view
  // starts where the previous one ended (may split at the ring edge).
  EXPECT_EQ(ring.try_push_bulk(two, 2), 2u);
  std::size_t seen = 0;
  const int expect[6] = {4, 5, 6, 7, 6, 7};
  while (seen < 6) {
    const auto v = ring.front_block(8);
    ASSERT_FALSE(v.empty());
    for (const int x : v) EXPECT_EQ(x, expect[seen++]);
    ring.release(v.size());
  }
  EXPECT_TRUE(ring.empty());
}

// Two real threads, bulk on both sides: the producer pushes seeded values in
// variable-size bursts, the consumer drains via pop_bulk_or_closed.  Exact
// order and a position-dependent checksum verify no slot is lost, duplicated
// or reordered.  Run under TSan (CI), this is the memory-ordering proof for
// the bulk path.
TEST(SpscRingBulk, TwoThreadBulkStressPreservesOrderAndContent) {
  const std::uint64_t seed = test_support::test_seed(43);
  SCOPED_TRACE(test_support::seed_trace(seed));

  constexpr std::size_t kN = 200'000;
  SpscRing<std::uint64_t> ring(64);

  std::vector<std::uint64_t> values(kN);
  Rng rng(seed);
  for (auto& v : values) v = rng.next();

  std::uint64_t expected_sum = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    expected_sum += values[i] * (static_cast<std::uint64_t>(i) + 1);
  }

  std::uint64_t consumer_sum = 0;
  std::size_t popped = 0;
  bool order_ok = true;
  std::thread consumer([&] {
    std::uint64_t buf[48];
    for (;;) {
      bool done = false;
      const std::size_t got = ring.pop_bulk_or_closed(buf, 48, done);
      if (got == 0) {
        if (done) break;
        std::this_thread::yield();
        continue;
      }
      for (std::size_t i = 0; i < got; ++i) {
        if (buf[i] != values[popped]) order_ok = false;
        consumer_sum += buf[i] * (static_cast<std::uint64_t>(popped) + 1);
        ++popped;
      }
    }
  });

  Rng burst_rng(seed ^ 0xb0b);
  std::size_t pushed = 0;
  while (pushed < kN) {
    const std::size_t burst =
        std::min<std::size_t>(1 + burst_rng.uniform_int(48), kN - pushed);
    const std::size_t sent = ring.try_push_bulk(values.data() + pushed, burst);
    if (sent == 0) {
      std::this_thread::yield();
      continue;
    }
    pushed += sent;
  }
  ring.close();
  consumer.join();

  EXPECT_TRUE(order_ok) << "consumer saw values out of order";
  EXPECT_EQ(popped, kN);
  EXPECT_EQ(consumer_sum, expected_sum);
  EXPECT_TRUE(ring.empty());
}

// Two real threads, bulk producer against the ZERO-COPY consumer
// (front_block + release): in-place reads must never tear even while the
// producer is refilling freed slots.
TEST(SpscRingBulk, TwoThreadZeroCopyStress) {
  const std::uint64_t seed = test_support::test_seed(47);
  SCOPED_TRACE(test_support::seed_trace(seed));

  constexpr std::size_t kN = 200'000;
  SpscRing<std::uint64_t> ring(64);

  std::vector<std::uint64_t> values(kN);
  Rng rng(seed);
  for (auto& v : values) v = rng.next();

  std::size_t popped = 0;
  bool order_ok = true;
  std::thread consumer([&] {
    for (;;) {
      auto view = ring.front_block(48);
      if (view.empty()) {
        if (!ring.closed()) {
          std::this_thread::yield();
          continue;
        }
        view = ring.front_block(48);
        if (view.empty()) break;
      }
      for (const std::uint64_t v : view) {
        if (v != values[popped]) order_ok = false;
        ++popped;
      }
      ring.release(view.size());
    }
  });

  std::size_t pushed = 0;
  while (pushed < kN) {
    const std::size_t sent = ring.try_push_bulk(
        values.data() + pushed, std::min<std::size_t>(32, kN - pushed));
    if (sent == 0) {
      std::this_thread::yield();
      continue;
    }
    pushed += sent;
  }
  ring.close();
  consumer.join();

  EXPECT_TRUE(order_ok) << "zero-copy consumer saw values out of order";
  EXPECT_EQ(popped, kN);
  EXPECT_TRUE(ring.empty());
}

// Two real threads: the producer pushes N seeded values through a small ring
// (so it wraps thousands of times and regularly runs full), the consumer
// pops until the close handshake completes.  Exact order and a position-
// dependent checksum are verified -- any lost, duplicated or reordered slot
// changes both.  Run under TSan, this is the memory-ordering proof for the
// ring (CI runs the suite with -fsanitize=thread).
TEST(SpscRing, TwoThreadStressPreservesOrderAndContent) {
  const std::uint64_t seed = test_support::test_seed(41);
  SCOPED_TRACE(test_support::seed_trace(seed));

  constexpr std::size_t kN = 200'000;
  SpscRing<std::uint64_t> ring(64);

  std::vector<std::uint64_t> values(kN);
  Rng rng(seed);
  for (auto& v : values) v = rng.next();

  std::uint64_t expected_sum = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    expected_sum += values[i] * (static_cast<std::uint64_t>(i) + 1);
  }

  std::uint64_t consumer_sum = 0;
  std::size_t popped = 0;
  bool order_ok = true;
  std::thread consumer([&] {
    std::uint64_t out;
    for (;;) {
      const auto r = ring.pop_or_closed(out);
      if (r == SpscRing<std::uint64_t>::Pop::kDone) break;
      if (r == SpscRing<std::uint64_t>::Pop::kEmpty) {
        std::this_thread::yield();
        continue;
      }
      if (out != values[popped]) order_ok = false;
      consumer_sum += out * (static_cast<std::uint64_t>(popped) + 1);
      ++popped;
    }
  });

  for (std::size_t i = 0; i < kN; ++i) {
    while (!ring.try_push(values[i])) std::this_thread::yield();
  }
  ring.close();
  consumer.join();

  EXPECT_TRUE(order_ok) << "consumer saw values out of order";
  EXPECT_EQ(popped, kN);
  EXPECT_EQ(consumer_sum, expected_sum);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace espice
