// SpscRing semantics: capacity rounding, wrap-around, full/empty edges and
// the close() handshake -- plus a real two-thread stress run that verifies
// order and content end to end.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "runtime/spsc_ring.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_THROW(SpscRing<int>(0), ConfigError);
}

TEST(SpscRing, StartsEmptyAndPopFails) {
  SpscRing<int> ring(4);
  int out = -1;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(out, -1);
}

TEST(SpscRing, FillsToCapacityThenRejects) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_FALSE(ring.try_push(99)) << "push into a full ring must fail";
  // Freeing one slot re-enables exactly one push.
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(4));
  EXPECT_FALSE(ring.try_push(5));
}

TEST(SpscRing, FifoAcrossManyWraps) {
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0, next_pop = 0;
  // Sawtooth fill levels force the cursors through many wrap-arounds.
  for (int round = 0; round < 500; ++round) {
    const std::size_t burst = 1 + (round % 8);
    for (std::size_t i = 0; i < burst; ++i) {
      if (!ring.try_push(next_push)) break;
      ++next_push;
    }
    const std::size_t drain = 1 + ((round * 3) % 8);
    for (std::size_t i = 0; i < drain; ++i) {
      std::uint64_t out;
      if (!ring.try_pop(out)) break;
      EXPECT_EQ(out, next_pop) << "FIFO order broken at round " << round;
      ++next_pop;
    }
  }
  while (next_pop < next_push) {
    std::uint64_t out;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, next_pop++);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PopOrClosedDrainsTailAfterClose) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ring.try_push(i));
  ring.close();
  int out;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(ring.pop_or_closed(out), SpscRing<int>::Pop::kItem)
        << "items pushed before close() must still drain";
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(ring.pop_or_closed(out), SpscRing<int>::Pop::kDone);
  EXPECT_EQ(ring.pop_or_closed(out), SpscRing<int>::Pop::kDone);
}

TEST(SpscRing, OpenAndEmptyReportsEmptyNotDone) {
  SpscRing<int> ring(8);
  int out;
  EXPECT_EQ(ring.pop_or_closed(out), SpscRing<int>::Pop::kEmpty);
}

// Two real threads: the producer pushes N seeded values through a small ring
// (so it wraps thousands of times and regularly runs full), the consumer
// pops until the close handshake completes.  Exact order and a position-
// dependent checksum are verified -- any lost, duplicated or reordered slot
// changes both.  Run under TSan, this is the memory-ordering proof for the
// ring (CI runs the suite with -fsanitize=thread).
TEST(SpscRing, TwoThreadStressPreservesOrderAndContent) {
  const std::uint64_t seed = test_support::test_seed(41);
  SCOPED_TRACE(test_support::seed_trace(seed));

  constexpr std::size_t kN = 200'000;
  SpscRing<std::uint64_t> ring(64);

  std::vector<std::uint64_t> values(kN);
  Rng rng(seed);
  for (auto& v : values) v = rng.next();

  std::uint64_t expected_sum = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    expected_sum += values[i] * (static_cast<std::uint64_t>(i) + 1);
  }

  std::uint64_t consumer_sum = 0;
  std::size_t popped = 0;
  bool order_ok = true;
  std::thread consumer([&] {
    std::uint64_t out;
    for (;;) {
      const auto r = ring.pop_or_closed(out);
      if (r == SpscRing<std::uint64_t>::Pop::kDone) break;
      if (r == SpscRing<std::uint64_t>::Pop::kEmpty) {
        std::this_thread::yield();
        continue;
      }
      if (out != values[popped]) order_ok = false;
      consumer_sum += out * (static_cast<std::uint64_t>(popped) + 1);
      ++popped;
    }
  });

  for (std::size_t i = 0; i < kN; ++i) {
    while (!ring.try_push(values[i])) std::this_thread::yield();
  }
  ring.close();
  consumer.join();

  EXPECT_TRUE(order_ok) << "consumer saw values out of order";
  EXPECT_EQ(popped, kN);
  EXPECT_EQ(consumer_sum, expected_sum);
  EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace espice
