// Reproducible seeding for randomized property tests.
//
// Randomized suites derive their stream seeds from ESPICE_TEST_SEED so a CI
// failure can be replayed locally:
//
//   ESPICE_TEST_SEED=12345 ./property_window_oracle_test
//
// Unset (or 0), the env hook is inert and every test keeps its fixed
// built-in salt, so default runs are bit-identical across machines.  Tests
// must wrap randomized bodies in `SCOPED_TRACE(seed_trace(seed))` so any
// failure prints the exact value to re-export.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace espice::test_support {

/// The ESPICE_TEST_SEED override (decimal or 0x-hex), or 0 when unset.
inline std::uint64_t env_seed() {
  const char* s = std::getenv("ESPICE_TEST_SEED");
  if (s == nullptr || *s == '\0') return 0;
  return std::strtoull(s, nullptr, 0);
}

/// Effective seed for one randomized case: the case's fixed `salt` by
/// default; mixed with the env override when one is set (so one env value
/// reshuffles every parameterized case, not just one).
inline std::uint64_t test_seed(std::uint64_t salt) {
  const std::uint64_t env = env_seed();
  if (env == 0) return salt;
  // SplitMix64 finalizer over (env ^ rotated salt): cheap, well-mixed.
  std::uint64_t z = env ^ (salt * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Failure-message annotation: pass to SCOPED_TRACE in randomized tests.
inline std::string seed_trace(std::uint64_t effective_seed) {
  return "reproduce with ESPICE_TEST_SEED=" + std::to_string(env_seed()) +
         " (effective stream seed " + std::to_string(effective_seed) + ")";
}

}  // namespace espice::test_support
