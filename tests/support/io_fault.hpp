// errno-level I/O fault injection over the IoEnv seam.
//
// The durability layer routes every file operation through the process-wide
// IoEnv with a stable site name (src/durability/io_env.hpp); this harness
// swaps in an environment that counts and fails them, in the same two modes
// as the crash-point harness (crash_point.hpp):
//
//   census  -- IoFaultHarness h;  <run workload>;  h.counts()
//     counts how often each (site) fires for a given workload, so a sweep
//     can enumerate every possible fault site (site, occurrence) instead of
//     guessing.
//
//   armed   -- h.arm({.site = "log.write", .occurrence = 3, .err = ENOSPC});
//     the 3rd hit of that site fails with the chosen errno, exactly as the
//     kernel would report it: the op returns -1 (or a short count first,
//     for short_write) and sets errno.  The durability code's own error
//     translation then turns it into a typed espice::Error.
//
// Fault shapes:
//   err         -- errno returned at the armed occurrence (ENOSPC, EIO, ...)
//   short_write -- the armed write succeeds for half its bytes, then the
//                  NEXT write at the same site fails with `err`; the
//                  caller's write-all loop thus leaves a genuinely torn
//                  record, the disk-full-mid-record shape.
//   sticky      -- the site keeps failing from the armed occurrence on
//                  (a dead disk, not a transient hiccup).  Non-sticky
//                  faults fire once and the site heals, which is what the
//                  retry-backoff policy needs to observe recovery.
//
// disarm() heals everything while keeping the env installed -- the chaos
// oracle uses it to model "faults clear, then recovery runs".
//
// Threading: all durability I/O runs on the thread driving the engine (the
// router); state is mutex-guarded anyway so the sanitizer jobs can run the
// chaos label without races even if that changes.
#pragma once

#include <cerrno>

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "durability/io_env.hpp"

namespace espice::test_support {

class FaultyIoEnv : public durability::IoEnv {
 public:
  struct Fault {
    std::string site;
    std::uint64_t occurrence = 1;  // 1-based hit count at which to fail
    int err = EIO;
    bool short_write = false;  // write half, then fail the next write there
    bool sticky = false;       // keep failing from `occurrence` on
    std::uint64_t fired = 0;   // how many times this fault injected
  };

  int open(const char* site, const char* path, int flags,
           unsigned mode) override {
    if (should_fail(site)) return -1;
    return IoEnv::open(site, path, flags, mode);
  }

  long read(const char* site, int fd, void* buf, std::size_t len) override {
    if (should_fail(site)) return -1;
    return IoEnv::read(site, fd, buf, len);
  }

  long write(const char* site, int fd, const void* buf,
             std::size_t len) override {
    bool fail = false;
    bool shorten = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const std::uint64_t n = ++counts_[site];
      for (Fault& f : faults_) {
        if (f.site != site) continue;
        if (pending_short_fail_ == &f) {
          // Second half of a short-write fault: the torn record is on disk,
          // now the disk "fills up".
          pending_short_fail_ = nullptr;
          ++f.fired;
          errno = f.err;
          fail = true;
          break;
        }
        if (!hits(f, n)) continue;
        ++f.fired;
        if (f.short_write && len >= 2) {
          pending_short_fail_ = &f;
          shorten = true;
        } else {
          errno = f.err;
          fail = true;
        }
        break;
      }
    }
    if (fail) return -1;
    if (shorten) return IoEnv::write(site, fd, buf, len / 2);
    return IoEnv::write(site, fd, buf, len);
  }

  int fsync(const char* site, int fd) override {
    if (should_fail(site)) return -1;
    return IoEnv::fsync(site, fd);
  }

  int ftruncate(const char* site, int fd, std::int64_t len) override {
    if (should_fail(site)) return -1;
    return IoEnv::ftruncate(site, fd, len);
  }

  int rename(const char* site, const char* from, const char* to) override {
    if (should_fail(site)) return -1;
    return IoEnv::rename(site, from, to);
  }

  /// Arms one fault.  Call before the workload; multiple faults may be
  /// armed at once (distinct sites, or the same site at distinct
  /// occurrences).  Arming resets the census so occurrence numbers always
  /// count from the workload start, like CrashHarness::arm.
  void arm(Fault f) {
    std::lock_guard<std::mutex> lock(mu_);
    faults_.push_back(std::move(f));
    counts_.clear();
    pending_short_fail_ = nullptr;
  }

  /// Heals every fault (keeps the env installed and counting): the
  /// disk works again, as after an operator freed space.
  void disarm() {
    std::lock_guard<std::mutex> lock(mu_);
    faults_.clear();
    pending_short_fail_ = nullptr;
  }

  /// Total injected failures across all armed faults.  A sweep asserts
  /// this is nonzero so a stale census (occurrence never reached) fails
  /// loudly instead of silently testing nothing.
  std::uint64_t fired() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const Fault& f : faults_) n += f.fired;
    return n;
  }

  /// Census: hits per site since construction (or the last arm()).
  std::map<std::string, std::uint64_t> counts() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counts_;
  }

 private:
  static bool hits(const Fault& f, std::uint64_t n) {
    return f.sticky ? n >= f.occurrence : n == f.occurrence;
  }

  // Count the hit and decide failure for every op except write (which
  // needs the short-write special case inline).
  bool should_fail(const char* site) {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t n = ++counts_[site];
    for (Fault& f : faults_) {
      if (f.site != site || !hits(f, n)) continue;
      ++f.fired;
      errno = f.err;
      return true;
    }
    return false;
  }

  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counts_;
  std::vector<Fault> faults_;
  const Fault* pending_short_fail_ = nullptr;
};

/// RAII install/restore of a FaultyIoEnv as the process-wide environment.
class IoFaultHarness {
 public:
  IoFaultHarness() { durability::set_io_env(&env_); }
  ~IoFaultHarness() { durability::set_io_env(nullptr); }

  IoFaultHarness(const IoFaultHarness&) = delete;
  IoFaultHarness& operator=(const IoFaultHarness&) = delete;

  FaultyIoEnv& env() { return env_; }

  // Convenience pass-throughs mirroring CrashHarness.
  void arm(FaultyIoEnv::Fault f) { env_.arm(std::move(f)); }
  void disarm() { env_.disarm(); }
  std::uint64_t fired() const { return env_.fired(); }
  std::map<std::string, std::uint64_t> counts() const { return env_.counts(); }

 private:
  FaultyIoEnv env_;
};

}  // namespace espice::test_support
