// Kill-anywhere fault-injection harness over the durability crash points.
//
// The durability layer marks every spot where a process death would leave
// partially-written state (ESPICE_CRASH_POINT in src/durability/); this
// harness drives them in two modes:
//
//   census  -- CrashHarness h;  <run workload>;  h.counts()
//     counts how often each point fires for a given workload, so a test can
//     enumerate every possible crash site (point, occurrence) instead of
//     guessing.
//
//   armed   -- h.arm("log.append.mid_record", 3);  <run workload>
//     the 3rd hit of that point dies: by default it throws SimulatedCrash
//     through the exception barrier (the workload's destructors then see
//     exactly the bytes written so far -- the same on-disk state a fresh
//     process would find), or, with exit_for_real, via _exit() for death
//     tests that want the kernel-level kill.
//
// Installing the harness flips the durability writers into split-write mode
// (crash_hook_armed()), so a mid-write point produces a genuinely torn
// record.  Census and armed runs therefore see identical point sequences.
//
// Threading: crash points fire only on the thread running durability code
// (the engine's router thread); the harness state is deliberately
// unsynchronized and must not be shared across concurrently-crashing
// workloads.  Construct/destroy while no durability code runs.
#pragma once

#include <unistd.h>

#include <cstdint>
#include <map>
#include <string>

#include "durability/crash_point.hpp"

namespace espice::test_support {

/// The simulated process death.  Deliberately NOT derived from
/// std::exception: a workload's internal catch(const std::exception&)
/// recovery paths must not be able to swallow a kill.
struct SimulatedCrash {
  const char* point;
};

namespace crash_detail {
// The hook is a bare function pointer, so the harness state is global.
inline std::map<std::string, std::uint64_t>& counts() {
  static std::map<std::string, std::uint64_t> m;
  return m;
}
struct Armed {
  std::string point;
  std::uint64_t occurrence = 0;  // 1-based; 0 = census only
  bool exit_for_real = false;
  bool fired = false;
};
inline Armed& armed() {
  static Armed a;
  return a;
}

inline void hook(const char* point) {
  const std::uint64_t n = ++counts()[point];
  Armed& a = armed();
  if (a.occurrence != 0 && a.point == point && n == a.occurrence) {
    a.fired = true;
    if (a.exit_for_real) _exit(137);
    throw SimulatedCrash{point};
  }
}
}  // namespace crash_detail

class CrashHarness {
 public:
  CrashHarness() {
    crash_detail::counts().clear();
    crash_detail::armed() = crash_detail::Armed{};
    durability::set_crash_hook(&crash_detail::hook);
  }
  ~CrashHarness() { durability::set_crash_hook(nullptr); }

  CrashHarness(const CrashHarness&) = delete;
  CrashHarness& operator=(const CrashHarness&) = delete;

  /// The Nth (1-based) hit of `point` dies.  Call before the workload.
  void arm(std::string point, std::uint64_t occurrence,
           bool exit_for_real = false) {
    crash_detail::Armed& a = crash_detail::armed();
    a.point = std::move(point);
    a.occurrence = occurrence;
    a.exit_for_real = exit_for_real;
    a.fired = false;
    crash_detail::counts().clear();
  }

  /// Did the armed site actually die?  A sweep asserts this so a stale
  /// census (occurrence never reached) fails loudly instead of silently
  /// testing nothing.
  bool fired() const { return crash_detail::armed().fired; }

  /// Census: hits per crash point since construction (or the last arm()).
  const std::map<std::string, std::uint64_t>& counts() const {
    return crash_detail::counts();
  }
};

}  // namespace espice::test_support
