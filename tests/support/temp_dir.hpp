// Unique self-cleaning temp directories for durability tests.
//
// ctest runs suites in parallel, so every directory name folds in the pid
// and a process-local counter; each TempDir removes its tree on scope exit.
#pragma once

#include <unistd.h>

#include <atomic>
#include <filesystem>
#include <string>

namespace espice::test_support {

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    static std::atomic<int> counter{0};
    path_ = std::filesystem::temp_directory_path() /
            ("espice-" + tag + "-" + std::to_string(::getpid()) + "-" +
             std::to_string(counter.fetch_add(1)));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);  // best effort
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::filesystem::path& path() const { return path_; }
  std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

}  // namespace espice::test_support
