// Allocation-counting hook for steady-state no-allocation tests.
//
// A test binary that wants to assert "this loop never touches the heap"
// includes this header and defines ESPICE_TEST_COUNT_ALLOCATIONS in exactly
// one translation unit BEFORE including it; that emits replacement global
// operator new/delete which bump an atomic counter and forward to malloc/
// free.  AllocTally brackets a code region and reports the allocation delta:
//
//   test_support::AllocTally tally;
//   hot_loop();
//   EXPECT_EQ(tally.delta(), 0u);
//
// The counter is atomic so multi-threaded binaries stay well-defined, but
// deterministic zero-allocation assertions should measure single-threaded
// regions only (another thread's allocations would count too).  Keep gtest
// assertions OUTSIDE the measured region -- they allocate.
#pragma once

#include <atomic>
#include <cstdint>

namespace espice::test_support {

/// Allocations observed since process start (only counts once the
/// replacement operators below are linked in).
inline std::atomic<std::uint64_t>& alloc_count() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

/// Snapshot-delta helper for a measured region.
class AllocTally {
 public:
  AllocTally() : start_(alloc_count().load(std::memory_order_relaxed)) {}
  std::uint64_t delta() const {
    return alloc_count().load(std::memory_order_relaxed) - start_;
  }

 private:
  std::uint64_t start_;
};

}  // namespace espice::test_support

#ifdef ESPICE_TEST_COUNT_ALLOCATIONS

#include <cstdlib>
#include <new>

void* operator new(std::size_t size) {
  ::espice::test_support::alloc_count().fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ::espice::test_support::alloc_count().fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}

void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

#endif  // ESPICE_TEST_COUNT_ALLOCATIONS
