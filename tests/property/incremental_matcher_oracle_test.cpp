// Incremental-vs-legacy matcher differential over randomized patterns.
//
// A random pattern generator (random arity, negated gaps, trigger-any
// n/distinct, both selection and both consumption policies,
// max_matches_per_window in {1, 3}) drives full randomized pipelines --
// window manager + kept feed + IncrementalMatcher::finalize() on one side,
// the legacy per-close Matcher::match_window() scan on the other -- over
// random streams, window specs and (deterministic) shedding.  Every run
// must agree bit for bit: same matches, same constituents, same positions,
// same detection timestamps.  This is the oracle guarantee the incremental
// rearchitecture rests on; the legacy matcher stays in the tree exactly to
// serve as this reference.
//
// Streams derive from ESPICE_TEST_SEED (see tests/support/test_seed.hpp),
// so the CI property-seeds matrix replays five distinct universes per push.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "cep/incremental_matcher.hpp"
#include "cep/matcher.hpp"
#include "cep/window.hpp"
#include "common/rng.hpp"
#include "core/shedder.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

// Deterministic, stateless shedder (same idiom as the runtime oracle
// tests): the decision is a pure hash of (event seq, window position), so
// both pipelines see identical keep sets.  Exercises the per-membership
// divergence path -- an event kept in some of its windows but not all.
class HashShedder final : public Shedder {
 public:
  HashShedder(unsigned mod, unsigned salt) : mod_(mod), salt_(salt) {}

  bool should_drop(const Event& e, std::uint32_t position, double) override {
    const bool drop =
        mod_ != 0 &&
        (((e.seq + salt_) * 2654435761ULL) ^ (position * 40503ULL)) % mod_ !=
            0;
    count_decision(drop);
    return drop;
  }
  void on_command(const DropCommand&) override {}
  const char* name() const override { return "hash"; }

 private:
  unsigned mod_;
  unsigned salt_;
};

struct RandomCase {
  Pattern pattern;
  WindowSpec window;
  SelectionPolicy selection = SelectionPolicy::kFirst;
  ConsumptionPolicy consumption = ConsumptionPolicy::kConsumed;
  std::size_t max_matches = 1;
  unsigned shed_mod = 0;  ///< 0 = keep everything
  bool bulk_ingest = false;
};

TypeSet random_type_set(Rng& rng, std::size_t num_types, std::size_t min_size) {
  TypeSet s;
  const std::size_t size =
      min_size + rng.uniform_int(num_types - min_size + 1);
  while (s.explicit_count() < size) {
    s.insert(static_cast<EventTypeId>(rng.uniform_int(num_types)));
  }
  return s;
}

DirectionFilter random_direction(Rng& rng) {
  const auto roll = rng.uniform_int(10);
  if (roll < 7) return DirectionFilter::kAny;
  return roll < 9 ? DirectionFilter::kRising : DirectionFilter::kFalling;
}

ElementSpec random_element(Rng& rng, std::size_t num_types) {
  // 1 in 6 elements is type-wildcarded ("any type"), the rest carry a
  // small random type set; directions skew towards kAny.
  TypeSet types;
  if (rng.uniform_int(6) != 0) {
    types = random_type_set(rng, num_types, 1);
  }
  return element("e", std::move(types), random_direction(rng));
}

Pattern random_pattern(Rng& rng, std::size_t num_types) {
  if (rng.uniform_int(4) == 0) {
    // Trigger-any: seq(trigger; any(n, candidates)).
    const std::size_t n = 1 + rng.uniform_int(3);
    const bool distinct = rng.bernoulli(0.5);
    TypeSet candidates;  // empty = any type
    if (rng.bernoulli(0.75)) {
      candidates = random_type_set(rng, num_types, distinct ? n : 1);
    }
    return make_trigger_any(random_element(rng, num_types),
                            std::move(candidates), n, random_direction(rng),
                            distinct);
  }
  const std::size_t arity = 1 + rng.uniform_int(4);
  std::vector<ElementSpec> elements;
  elements.reserve(arity);
  for (std::size_t i = 0; i < arity; ++i) {
    elements.push_back(random_element(rng, num_types));
  }
  std::vector<SequenceNegation> negations;
  if (arity >= 2 && rng.bernoulli(0.4)) {
    // Random negated gaps on non-adjacent gaps (the validate() constraint).
    for (std::size_t gap = 0; gap + 1 < arity; gap += 2) {
      if (rng.bernoulli(0.6)) {
        negations.push_back(
            SequenceNegation{gap, random_element(rng, num_types)});
      }
    }
  }
  if (!negations.empty()) {
    return make_sequence_with_negations(std::move(elements),
                                        std::move(negations));
  }
  return make_sequence(std::move(elements));
}

WindowSpec random_window(Rng& rng, std::size_t num_types) {
  WindowSpec spec;
  const auto roll = rng.uniform_int(4);
  if (roll < 2) {
    // Count span, count slide: the run engine's home turf (slide can even
    // exceed the span, leaving window-free gaps).
    spec.span_kind = WindowSpan::kCount;
    spec.span_events = 8 + rng.uniform_int(33);
    spec.open_kind = WindowOpen::kCountSlide;
    spec.slide_events =
        1 + rng.uniform_int(spec.span_events + spec.span_events / 2);
  } else if (roll == 2) {
    // Time span, predicate-opened (Q1/Q2 shape).
    spec.span_kind = WindowSpan::kTime;
    spec.span_seconds = rng.uniform(2.0, 10.0);
    spec.open_kind = WindowOpen::kPredicate;
    spec.opener = element("open", TypeSet{static_cast<EventTypeId>(
                                      rng.uniform_int(num_types))});
  } else {
    // Predicate span with a safety cap, predicate-opened.
    spec.span_kind = WindowSpan::kPredicate;
    spec.span_events = 16 + rng.uniform_int(32);
    spec.closer = element("close", TypeSet{static_cast<EventTypeId>(
                                       rng.uniform_int(num_types))});
    spec.open_kind = WindowOpen::kPredicate;
    spec.opener = element("open", TypeSet{static_cast<EventTypeId>(
                                      rng.uniform_int(num_types))});
  }
  return spec;
}

std::vector<Event> random_stream(Rng& rng, std::size_t n,
                                 std::size_t num_types) {
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(num_types));
    e.seq = i;
    ts += rng.uniform(0.0, 0.4);
    e.ts = ts;
    e.value = rng.uniform(-2.0, 2.0);
    events.push_back(e);
  }
  return events;
}

constexpr double kPredictedWs = 16.0;

/// Legacy side: per-close window scans, exactly the pre-refactor pipeline.
std::vector<ComplexEvent> legacy_run(const RandomCase& c,
                                     std::span<const Event> events) {
  WindowManager wm(c.window);
  const Matcher matcher(c.pattern, c.selection, c.consumption, c.max_matches);
  HashShedder shedder(c.shed_mod, /*salt=*/7);
  std::vector<ComplexEvent> out;
  auto flush = [&] {
    for (const WindowView& w : wm.drain_closed()) {
      for (auto& m : matcher.match_window(w)) out.push_back(std::move(m));
    }
  };
  for (const Event& e : events) {
    for (const auto& m : wm.offer(e)) {
      if (c.shed_mod == 0 || !shedder.should_drop(e, m.position, kPredictedWs)) {
        wm.keep(m, e);
      }
    }
    flush();
  }
  wm.close_all();
  flush();
  return out;
}

/// Incremental side: kept feed + finalize-and-emit at close.  With
/// bulk_ingest (all-keep cases only) the stream flows through
/// offer_keep_all_block chunked at close_free_horizon(), exercising the
/// bulk feed path.
std::vector<ComplexEvent> incremental_run(const RandomCase& c,
                                          std::span<const Event> events) {
  WindowManager wm(c.window);
  IncrementalMatcher matcher(c.pattern, c.selection, c.consumption,
                             c.max_matches);
  MatcherFeed feed(&matcher);
  wm.set_kept_feed(&feed);
  HashShedder shedder(c.shed_mod, /*salt=*/7);
  std::vector<ComplexEvent> out;
  auto flush = [&] {
    for (const WindowView& w : wm.drain_closed()) matcher.finalize(w, out);
  };
  if (c.bulk_ingest) {
    std::size_t i = 0;
    while (i < events.size()) {
      const auto chunk = static_cast<std::size_t>(std::min<std::uint64_t>(
          events.size() - i, wm.close_free_horizon()));
      wm.offer_keep_all_block(events.subspan(i, chunk));
      flush();
      i += chunk;
    }
  } else {
    for (const Event& e : events) {
      for (const auto& m : wm.offer(e)) {
        if (c.shed_mod == 0 ||
            !shedder.should_drop(e, m.position, kPredictedWs)) {
          wm.keep(m, e);
        }
      }
      flush();
    }
  }
  wm.close_all();
  flush();
  return out;
}

void expect_identical(const std::vector<ComplexEvent>& legacy,
                      const std::vector<ComplexEvent>& incremental) {
  ASSERT_EQ(legacy.size(), incremental.size()) << "match count differs";
  for (std::size_t i = 0; i < legacy.size(); ++i) {
    const ComplexEvent& a = legacy[i];
    const ComplexEvent& b = incremental[i];
    ASSERT_EQ(a.window, b.window) << "match " << i;
    ASSERT_EQ(a.detection_ts, b.detection_ts) << "match " << i;
    ASSERT_EQ(a.constituents.size(), b.constituents.size()) << "match " << i;
    for (std::size_t k = 0; k < a.constituents.size(); ++k) {
      ASSERT_EQ(a.constituents[k].element, b.constituents[k].element)
          << "match " << i << " constituent " << k;
      ASSERT_EQ(a.constituents[k].position, b.constituents[k].position)
          << "match " << i << " constituent " << k;
      ASSERT_EQ(a.constituents[k].event.seq, b.constituents[k].event.seq)
          << "match " << i << " constituent " << k;
      ASSERT_EQ(a.constituents[k].event.ts, b.constituents[k].event.ts)
          << "match " << i << " constituent " << k;
    }
  }
}

RandomCase random_case(Rng& rng, std::size_t num_types) {
  RandomCase c;
  c.pattern = random_pattern(rng, num_types);
  c.window = random_window(rng, num_types);
  c.selection =
      rng.bernoulli(0.5) ? SelectionPolicy::kFirst : SelectionPolicy::kLast;
  c.consumption = rng.bernoulli(0.5) ? ConsumptionPolicy::kConsumed
                                     : ConsumptionPolicy::kZero;
  c.max_matches = rng.bernoulli(0.5) ? 1 : 3;
  c.shed_mod = rng.bernoulli(0.5) ? 0 : 2 + rng.uniform_int(3);
  // The bulk all-keep path only applies without shedding.
  c.bulk_ingest = c.shed_mod == 0 && rng.bernoulli(0.5);
  return c;
}

TEST(IncrementalMatcherOracle, RandomizedPatternsMatchLegacyBitForBit) {
  const std::uint64_t seed = test_support::test_seed(193);
  SCOPED_TRACE(test_support::seed_trace(seed));
  Rng rng(seed);
  std::size_t stream_eligible = 0;
  for (int trial = 0; trial < 150; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    const std::size_t num_types = 3 + rng.uniform_int(4);
    const RandomCase c = random_case(rng, num_types);
    const auto events = random_stream(rng, 600 + rng.uniform_int(900),
                                      num_types);
    const auto legacy = legacy_run(c, events);
    const auto incremental = incremental_run(c, events);
    expect_identical(legacy, incremental);
    IncrementalMatcher probe(c.pattern, c.selection, c.consumption,
                             c.max_matches);
    if (probe.stream_incremental()) ++stream_eligible;
  }
  // The generator must keep exercising the run engine, not just the
  // fallback scan.
  EXPECT_GE(stream_eligible, 20u);
}

// Directed sweep of the run engine's own matrix: first selection, max 1,
// across both pattern kinds and slides straddling the span, all-keep and
// shed, scalar and bulk.  Cheap enough to enumerate exhaustively.
TEST(IncrementalMatcherOracle, RunEngineMatrixMatchesLegacy) {
  const std::uint64_t seed = test_support::test_seed(467);
  SCOPED_TRACE(test_support::seed_trace(seed));
  Rng rng(seed);
  const std::size_t num_types = 5;
  const auto events = random_stream(rng, 3000, num_types);

  std::vector<Pattern> patterns;
  patterns.push_back(make_sequence({element("a", TypeSet{0}),
                                    element("b", TypeSet{1})}));
  patterns.push_back(make_sequence(
      {element("a", TypeSet{0}), element("a", TypeSet{0}),
       element("b", TypeSet{1, 2}), element("c", TypeSet{3})}));
  patterns.push_back(make_sequence(
      {element("up", TypeSet{}, DirectionFilter::kRising),
       element("down", TypeSet{}, DirectionFilter::kFalling)}));
  patterns.push_back(make_trigger_any(element("t", TypeSet{0}),
                                      TypeSet{1, 2, 3}, 2,
                                      DirectionFilter::kAny, true));
  patterns.push_back(make_trigger_any(element("t", TypeSet{0}), TypeSet{}, 3,
                                      DirectionFilter::kRising, false));

  for (const Pattern& pattern : patterns) {
    for (const std::size_t slide : {1u, 7u, 24u, 40u}) {
      for (const unsigned shed_mod : {0u, 3u}) {
        for (const bool bulk : {false, true}) {
          if (bulk && shed_mod != 0) continue;
          RandomCase c;
          c.pattern = pattern;
          c.window.span_kind = WindowSpan::kCount;
          c.window.span_events = 24;
          c.window.open_kind = WindowOpen::kCountSlide;
          c.window.slide_events = slide;
          c.shed_mod = shed_mod;
          c.bulk_ingest = bulk;
          SCOPED_TRACE("slide " + std::to_string(slide) + " shed " +
                       std::to_string(shed_mod) + " bulk " +
                       std::to_string(bulk));
          expect_identical(legacy_run(c, events), incremental_run(c, events));
        }
      }
    }
  }
}

}  // namespace
}  // namespace espice
