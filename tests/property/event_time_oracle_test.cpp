// Event-time disorder oracle: shuffle a stream within a disorder bound D,
// feed it to an engine whose reorder stage is sized >= D, and hold the
// output to the in-order run -- bit-for-bit.
//
// The guarantee under test (the event-time design's whole point): the
// bounded reorder stage ahead of window routing makes the pipeline
// arrival-order-invariant.  For ANY permutation whose measured disorder
// (see measure_disorder) is within the configured bound, matches, per-query
// reports and the canonical shard merge must equal the in-order golden
// exactly, with zero late events.  Shuffles are seeded via ESPICE_TEST_SEED
// (5-seed CI matrix), swept over K in {1, 4} shards, N in {1, 5} queries,
// every window span x open kind, shedding off and armed, heartbeats off
// and on.
//
// Directed cases pin the boundary: displacement of exactly D is on time,
// D + 1 is late, and punctuation watermarks convict stragglers they
// overtake (but never within-bound ones).
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cep/event_time.hpp"
#include "common/rng.hpp"
#include "runtime/stream_engine.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

constexpr EventTypeId kNumTypes = 6;
constexpr EventTypeId kOpenerType = 1;
constexpr EventTypeId kCloserType = 2;
constexpr double kPredictedWs = 24.0;
constexpr std::size_t kBatch = 64;

WindowSpec make_spec(WindowSpan span_kind, WindowOpen open_kind) {
  WindowSpec spec;
  spec.span_kind = span_kind;
  spec.open_kind = open_kind;
  switch (span_kind) {
    case WindowSpan::kTime:
      spec.span_seconds = 7.5;
      break;
    case WindowSpan::kCount:
      spec.span_events = 24;
      break;
    case WindowSpan::kPredicate:
      spec.span_events = 40;  // safety cap
      spec.closer =
          element("close", TypeSet{kCloserType}, DirectionFilter::kAny);
      break;
  }
  if (open_kind == WindowOpen::kPredicate) {
    spec.opener = element("open", TypeSet{kOpenerType}, DirectionFilter::kAny);
  } else {
    spec.slide_events = 5;
  }
  return spec;
}

std::vector<Event> random_stream(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += rng.uniform(0.0, 1.2);
    e.ts = ts;
    e.value = rng.uniform(-2.0, 2.0);
    events.push_back(e);
  }
  return events;
}

/// Bounded shuffle: Fisher-Yates within consecutive blocks of `block`
/// events, so no event is displaced across a block boundary and the
/// measured disorder is < block.
std::vector<Event> block_shuffle(std::vector<Event> events, std::size_t block,
                                 std::uint64_t seed) {
  Rng rng(seed ^ 0xd15c0de5ULL);
  for (std::size_t base = 0; base < events.size(); base += block) {
    const std::size_t end = std::min(base + block, events.size());
    for (std::size_t i = end - 1; i > base; --i) {
      const std::size_t j = base + rng.uniform_int(i - base + 1);
      std::swap(events[i], events[j]);
    }
  }
  return events;
}

/// Deterministic, stateless shedder (pure hash of seq x position x salt):
/// identical decisions regardless of arrival order once the reorder stage
/// re-sequences the stream.  mod == 0 keeps everything.
class HashShedder final : public Shedder {
 public:
  HashShedder(unsigned mod, unsigned salt) : mod_(mod), salt_(salt) {}

  bool should_drop(const Event& e, std::uint32_t position, double) override {
    const bool drop =
        mod_ != 0 && ((e.seq * 2654435761ULL) ^ (position * 40503ULL) ^
                      (salt_ * 7919ULL)) %
                             mod_ !=
                         0;
    count_decision(drop);
    return drop;
  }
  void on_command(const DropCommand&) override {}
  const char* name() const override { return "hash"; }

 private:
  unsigned mod_;
  unsigned salt_;
};

ShardQuery make_query(const WindowSpec& spec) {
  ShardQuery q;
  q.pattern =
      make_sequence({element("up", TypeSet{}, DirectionFilter::kRising),
                     element("down", TypeSet{}, DirectionFilter::kFalling)});
  q.window = spec;
  return q;
}

/// One scenario drives both the golden and the disordered run.
struct Scenario {
  WindowSpec spec;
  std::size_t shards = 4;
  std::vector<unsigned> drop_mods = {3};
  /// Event-time config for the disordered engine (golden runs without).
  std::uint64_t disorder_bound = 64;
  std::uint64_t heartbeat_events = 0;
};

std::unique_ptr<StreamEngine> build_engine(const Scenario& s, bool event_time) {
  StreamEngineConfig config;
  config.shards = s.shards;
  config.ring_capacity = 256;
  config.query = make_query(s.spec);
  config.predicted_ws = kPredictedWs;
  if (s.drop_mods.size() == 1 && s.drop_mods[0] != 0) {
    const unsigned mod = s.drop_mods[0];
    config.shedder_factory = [mod](std::size_t) {
      return std::make_unique<HashShedder>(mod, 0);
    };
  }
  if (event_time) {
    EventTimeConfig et;
    et.disorder_bound = s.disorder_bound;
    et.heartbeat_events = s.heartbeat_events;
    config.event_time = et;
  }
  auto engine = std::make_unique<StreamEngine>(std::move(config));
  if (s.drop_mods.size() > 1) {
    for (std::size_t i = 0; i < s.drop_mods.size(); ++i) {
      EngineQuery q;
      q.name = "q" + std::to_string(i);
      q.query = make_query(s.spec);
      q.predicted_ws = kPredictedWs;
      if (const unsigned mod = s.drop_mods[i]; mod != 0) {
        const auto salt = static_cast<unsigned>(i);
        q.shedder_factory = [mod, salt](std::size_t) {
          return std::make_unique<HashShedder>(mod, salt);
        };
      }
      engine->add_query(std::move(q));
    }
  }
  return engine;
}

EngineReport run(StreamEngine& engine, std::span<const Event> events) {
  for (std::size_t i = 0; i < events.size(); i += kBatch) {
    engine.push_batch(events.subspan(i, std::min(kBatch, events.size() - i)));
  }
  return engine.finish();
}

void expect_same_matches(const std::vector<ComplexEvent>& actual,
                         const std::vector<ComplexEvent>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const ComplexEvent& a = actual[i];
    const ComplexEvent& b = expected[i];
    EXPECT_EQ(a.window, b.window) << "match " << i;
    EXPECT_DOUBLE_EQ(a.detection_ts, b.detection_ts) << "match " << i;
    ASSERT_EQ(a.constituents.size(), b.constituents.size()) << "match " << i;
    for (std::size_t c = 0; c < a.constituents.size(); ++c) {
      EXPECT_EQ(a.constituents[c].element, b.constituents[c].element)
          << "match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].position, b.constituents[c].position)
          << "match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].event.seq, b.constituents[c].event.seq)
          << "match " << i << " constituent " << c;
    }
  }
}

/// Bit-identity of everything deterministic and order-invariant: matches,
/// per-query reports, per-shard pipeline counters.  Event-time-only
/// counters (punctuations, watermarks) are checked separately; wall-clock
/// gauges are exempt.
void expect_same_reports(const EngineReport& actual,
                         const EngineReport& expected) {
  EXPECT_EQ(actual.events, expected.events);
  expect_same_matches(actual.matches, expected.matches);
  ASSERT_EQ(actual.queries.size(), expected.queries.size());
  for (std::size_t q = 0; q < expected.queries.size(); ++q) {
    const QueryReport& a = actual.queries[q];
    const QueryReport& b = expected.queries[q];
    expect_same_matches(a.matches, b.matches);
    EXPECT_EQ(a.memberships, b.memberships) << "query " << q;
    EXPECT_EQ(a.memberships_kept, b.memberships_kept) << "query " << q;
    EXPECT_EQ(a.shed_decisions, b.shed_decisions) << "query " << q;
    EXPECT_EQ(a.shed_drops, b.shed_drops) << "query " << q;
  }
  ASSERT_EQ(actual.shards.size(), expected.shards.size());
  for (std::size_t i = 0; i < expected.shards.size(); ++i) {
    const ShardStats& a = actual.shards[i];
    const ShardStats& b = expected.shards[i];
    EXPECT_EQ(a.events, b.events) << "shard " << i;
    EXPECT_EQ(a.memberships, b.memberships) << "shard " << i;
    EXPECT_EQ(a.memberships_kept, b.memberships_kept) << "shard " << i;
    EXPECT_EQ(a.windows_closed, b.windows_closed) << "shard " << i;
    EXPECT_EQ(a.matches, b.matches) << "shard " << i;
    EXPECT_EQ(a.shed_decisions, b.shed_decisions) << "shard " << i;
    EXPECT_EQ(a.shed_drops, b.shed_drops) << "shard " << i;
  }
}

/// Runs one scenario: golden in order without event time, disordered with
/// the reorder stage, expects bit-identity and zero late events.
void check_scenario(const Scenario& s, const std::vector<Event>& in_order,
                    const std::vector<Event>& disordered) {
  const std::uint64_t measured = measure_disorder(disordered);
  ASSERT_LE(measured, s.disorder_bound)
      << "generator produced more disorder than the engine is sized for";

  auto golden_engine = build_engine(s, /*event_time=*/false);
  const EngineReport golden = run(*golden_engine, in_order);

  auto et_engine = build_engine(s, /*event_time=*/true);
  const EngineReport actual = run(*et_engine, disordered);

  expect_same_reports(actual, golden);
  EXPECT_EQ(actual.late_events, 0u);
  EXPECT_EQ(actual.late_dropped, 0u);
  EXPECT_EQ(actual.revisions, 0u);
  EXPECT_TRUE(actual.side_outputs.empty());
}

// --- the sweep ---------------------------------------------------------------

// Every span x open kind at K = 4 with shedding armed: the full windowing
// matrix must be arrival-order-invariant under a mid-size shuffle.
TEST(EventTimeOracle, AllWindowKindsShuffledEqualsInOrder) {
  const std::uint64_t seed = test_support::test_seed(81);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 1200);
  const auto shuffled = block_shuffle(events, 48, seed);
  ASSERT_GT(measure_disorder(shuffled), 0u) << "shuffle was a no-op";

  for (const WindowSpan span :
       {WindowSpan::kTime, WindowSpan::kCount, WindowSpan::kPredicate}) {
    for (const WindowOpen open :
         {WindowOpen::kPredicate, WindowOpen::kCountSlide}) {
      SCOPED_TRACE("span=" + std::to_string(static_cast<int>(span)) +
                   " open=" + std::to_string(static_cast<int>(open)));
      Scenario s;
      s.spec = make_spec(span, open);
      s.disorder_bound = 64;
      check_scenario(s, events, shuffled);
    }
  }
}

// K in {1, 4} x shedding {off, armed} x heartbeats {off, on}, with the
// engine bound set EXACTLY to the measured disorder (the tightest legal
// buffer).
TEST(EventTimeOracle, ShardAndSheddingMatrixAtExactBound) {
  const std::uint64_t seed = test_support::test_seed(82);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 900);
  const auto shuffled = block_shuffle(events, 32, seed);
  const std::uint64_t measured = measure_disorder(shuffled);
  ASSERT_GT(measured, 0u);

  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    for (const unsigned mod : {0u, 3u}) {
      for (const std::uint64_t heartbeat : {std::uint64_t{0},
                                            std::uint64_t{100}}) {
        SCOPED_TRACE("K=" + std::to_string(shards) + " mod=" +
                     std::to_string(mod) + " hb=" + std::to_string(heartbeat));
        Scenario s;
        s.spec = make_spec(WindowSpan::kCount, WindowOpen::kCountSlide);
        s.shards = shards;
        s.drop_mods = {mod};
        s.disorder_bound = measured;
        s.heartbeat_events = heartbeat;
        check_scenario(s, events, shuffled);
      }
    }
  }
}

// N = 5 queries sharing one window group with diverging per-query shedders
// (including a keep-all query): per-query masks and outputs must be
// arrival-order-invariant too.
TEST(EventTimeOracle, MultiQuerySharedWindowsShuffled) {
  const std::uint64_t seed = test_support::test_seed(83);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 900);
  const auto shuffled = block_shuffle(events, 40, seed);

  Scenario s;
  s.spec = make_spec(WindowSpan::kCount, WindowOpen::kCountSlide);
  s.drop_mods = {0, 2, 3, 5, 7};
  s.disorder_bound = 64;

  auto golden_engine = build_engine(s, /*event_time=*/false);
  const EngineReport golden = run(*golden_engine, events);
  ASSERT_EQ(golden.queries.size(), 5u);
  ASSERT_GT(golden.queries[0].matches.size(), 0u);

  auto et_engine = build_engine(s, /*event_time=*/true);
  const EngineReport actual = run(*et_engine, shuffled);
  expect_same_reports(actual, golden);
  EXPECT_EQ(actual.late_events, 0u);
}

// Time windows closed by ts-carrying punctuation watermarks: injecting
// "time has reached t" punctuations at batch boundaries must not change
// the output, only when windows close.
TEST(EventTimeOracle, PunctuationWatermarkStreamEqualsInOrder) {
  const std::uint64_t seed = test_support::test_seed(84);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 800);
  const auto shuffled = block_shuffle(events, 24, seed);

  Scenario s;
  s.spec = make_spec(WindowSpan::kTime, WindowOpen::kPredicate);
  s.disorder_bound = 32;

  auto golden_engine = build_engine(s, /*event_time=*/false);
  const EngineReport golden = run(*golden_engine, events);

  // Interleave a full punctuation (seq + event time) after every other
  // batch, asserting completeness through the smallest seq still
  // undelivered minus one -- truthful by construction even when a shuffle
  // block straddles the batch boundary, so no event is convicted as late.
  auto et_engine = build_engine(s, /*event_time=*/true);
  std::size_t batch_no = 0;
  std::uint64_t punctuations = 0;
  for (std::size_t i = 0; i < shuffled.size(); i += kBatch) {
    const std::size_t n = std::min(kBatch, shuffled.size() - i);
    et_engine->push_batch(std::span(shuffled).subspan(i, n));
    if (++batch_no % 2 == 0 && i + n < shuffled.size()) {
      std::uint64_t min_pending = ~std::uint64_t{0};
      for (std::size_t j = i + n; j < shuffled.size(); ++j) {
        min_pending = std::min(min_pending, shuffled[j].seq);
      }
      if (min_pending == 0) continue;
      const Event& done = events[min_pending - 1];  // complete prefix end
      et_engine->push_watermark(done.seq, done.ts);
      ++punctuations;
    }
  }
  const EngineReport actual = et_engine->finish();

  expect_same_reports(actual, golden);
  EXPECT_EQ(actual.late_events, 0u);
  EXPECT_EQ(actual.punctuations, punctuations);
  EXPECT_GT(punctuations, 0u);
  EXPECT_TRUE(actual.low_watermark_valid);
}

// --- directed boundary cases -------------------------------------------------

/// In-order stream of n events with unit timestamps, all one type.
std::vector<Event> ramp(std::size_t n) {
  std::vector<Event> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = 0;
    e.seq = i;
    e.ts = static_cast<double>(i);
    e.value = (i % 2 == 0) ? -1.0 : 1.0;  // alternating: rising/falling
    events.push_back(e);
  }
  return events;
}

// Displacement of exactly D is on time; the same stream under a bound of
// D - 1 classifies the straggler as late.
TEST(EventTimeOracle, ExactBoundIsOnTimeBoundMinusOneIsLate) {
  constexpr std::uint64_t kBound = 8;
  auto events = ramp(200);
  // Delay seq 50 by exactly kBound positions: 51..58 overtake it.
  auto delayed = events;
  std::rotate(delayed.begin() + 50, delayed.begin() + 51,
              delayed.begin() + 51 + kBound);
  ASSERT_EQ(measure_disorder(delayed), kBound);

  Scenario s;
  s.spec = make_spec(WindowSpan::kCount, WindowOpen::kCountSlide);
  s.shards = 1;
  s.drop_mods = {0};

  s.disorder_bound = kBound;
  check_scenario(s, events, delayed);  // on time: bit-identical, 0 late

  s.disorder_bound = kBound - 1;
  auto tight = build_engine(s, /*event_time=*/true);
  const EngineReport report = run(*tight, delayed);
  EXPECT_EQ(report.late_events, 1u);
  EXPECT_EQ(report.late_dropped, 1u);  // default policy: drop
  EXPECT_EQ(report.events, 200u);  // router counts it; the stage diverts
}

// A punctuation watermark overtaking an in-flight event convicts it late
// even though its displacement is within the disorder bound.
TEST(EventTimeOracle, PunctuationConvictsOvertakenEvent) {
  auto events = ramp(100);

  Scenario s;
  s.spec = make_spec(WindowSpan::kCount, WindowOpen::kCountSlide);
  s.shards = 1;
  s.drop_mods = {0};
  s.disorder_bound = 32;

  auto engine = build_engine(s, /*event_time=*/true);
  // Push 0..59 except 40, assert completeness through 59 via punctuation,
  // then deliver 40.  Its displacement (59 - 40 = 19) is well within the
  // bound of 32 -- only the punctuation makes it late.
  std::vector<Event> head;
  for (std::size_t i = 0; i < 60; ++i) {
    if (i != 40) head.push_back(events[i]);
  }
  engine->push_batch(head);
  engine->push_watermark(59);
  engine->push(events[40]);
  engine->push_batch(std::span(events).subspan(60));
  const EngineReport report = engine->finish();

  EXPECT_EQ(report.late_events, 1u);
  EXPECT_EQ(report.late_dropped, 1u);
  EXPECT_EQ(report.punctuations, 1u);
  EXPECT_TRUE(report.low_watermark_valid);
  EXPECT_GE(report.low_watermark_seq, 59u);
}

// Event-time mode on a perfectly ordered stream is a no-op: bit-identical
// to the plain engine, watermark trails the stream head by D + 1.
TEST(EventTimeOracle, InOrderStreamIsUnaffected) {
  const std::uint64_t seed = test_support::test_seed(85);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 600);

  Scenario s;
  s.spec = make_spec(WindowSpan::kPredicate, WindowOpen::kPredicate);
  s.disorder_bound = 32;
  check_scenario(s, events, events);
}

}  // namespace
}  // namespace espice
