// Property-based tests: parameterized sweeps asserting invariants of the
// core data structures on randomized inputs (seeded, hence reproducible).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <tuple>

#include "common/rng.hpp"
#include "core/cdt.hpp"
#include "core/espice_shedder.hpp"
#include "core/model_builder.hpp"
#include "sim/operator_sim.hpp"

namespace espice {
namespace {

// ---------------------------------------------------------------------------
// Random utility models: (seed, num_types, n_positions, bin_size).
// ---------------------------------------------------------------------------
using ModelParams = std::tuple<std::uint64_t, std::size_t, std::size_t, std::size_t>;

std::shared_ptr<const UtilityModel> random_model(const ModelParams& params) {
  const auto [seed, types, n, bs] = params;
  Rng rng(seed);
  const std::size_t cols = (n + bs - 1) / bs;
  std::vector<std::uint8_t> ut(types * cols);
  std::vector<double> shares(types * cols);
  for (std::size_t i = 0; i < ut.size(); ++i) {
    ut[i] = static_cast<std::uint8_t>(rng.uniform_int(101));
    shares[i] = rng.uniform(0.0, 2.0);
  }
  return std::make_shared<UtilityModel>(types, n, bs, std::move(ut),
                                        std::move(shares));
}

class CdtProperties : public ::testing::TestWithParam<ModelParams> {};

TEST_P(CdtProperties, CdtIsMonotoneInUtility) {
  const auto model = random_model(GetParam());
  for (std::size_t parts : {1u, 2u, 3u, 7u}) {
    for (const auto& cdt : Cdt::build_partitions(*model, parts)) {
      for (int u = 1; u <= kMaxUtility; ++u) {
        ASSERT_GE(cdt.at(u), cdt.at(u - 1));
      }
    }
  }
}

TEST_P(CdtProperties, PartitionTotalsSumToWholeWindowTotal) {
  const auto model = random_model(GetParam());
  const double whole = Cdt::build_partitions(*model, 1)[0].total();
  for (std::size_t parts : {2u, 3u, 5u, 11u}) {
    double sum = 0.0;
    for (const auto& cdt : Cdt::build_partitions(*model, parts)) {
      sum += cdt.total();
    }
    ASSERT_NEAR(sum, whole, 1e-9 * std::max(1.0, whole));
  }
}

TEST_P(CdtProperties, ThresholdIsMonotoneInDemand) {
  const auto model = random_model(GetParam());
  const auto cdts = Cdt::build_partitions(*model, 2);
  for (const auto& cdt : cdts) {
    int prev = -1;
    for (double x = 0.0; x <= cdt.total() * 1.2; x += cdt.total() / 17.0) {
      const int th = cdt.threshold(x);
      ASSERT_GE(th, prev);
      prev = th;
      if (cdt.total() <= 0.0) break;
    }
  }
}

TEST_P(CdtProperties, ThresholdDeliversTheDemandedAmount) {
  const auto model = random_model(GetParam());
  const auto cdts = Cdt::build_partitions(*model, 3);
  for (const auto& cdt : cdts) {
    for (double frac : {0.1, 0.5, 0.9}) {
      const double x = frac * cdt.total();
      const int th = cdt.threshold(x);
      ASSERT_GE(cdt.at(th), x);
      // Minimality: one utility step lower would not satisfy the demand.
      if (th > 0) ASSERT_LT(cdt.at(th - 1), x);
    }
  }
}

TEST_P(CdtProperties, UtilityLookupMatchesCellsAtNativeSize) {
  const auto model = random_model(GetParam());
  const double ws = static_cast<double>(model->n_positions());
  for (std::size_t t = 0; t < model->num_types(); ++t) {
    for (std::uint32_t p = 0; p < model->n_positions(); ++p) {
      const auto type = static_cast<EventTypeId>(t);
      ASSERT_EQ(model->utility(type, p, ws),
                model->utility_cell(type, p / model->bin_size()));
    }
  }
}

TEST_P(CdtProperties, ScaledUtilityLookupStaysInRange) {
  const auto model = random_model(GetParam());
  for (double ws_factor : {0.3, 0.7, 1.3, 2.6}) {
    const double ws =
        std::max(1.0, ws_factor * static_cast<double>(model->n_positions()));
    for (std::uint32_t p = 0; p < static_cast<std::uint32_t>(ws); ++p) {
      const int u = model->utility(0, p, ws);
      ASSERT_GE(u, 0);
      ASSERT_LE(u, kMaxUtility);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomModels, CdtProperties,
    ::testing::Values(ModelParams{1, 1, 8, 1}, ModelParams{2, 3, 17, 1},
                      ModelParams{3, 5, 64, 4}, ModelParams{4, 2, 100, 8},
                      ModelParams{5, 7, 31, 16}, ModelParams{6, 4, 256, 32},
                      ModelParams{7, 10, 13, 13}, ModelParams{8, 1, 1, 1}));

// ---------------------------------------------------------------------------
// Shedder properties over random models and commands.
// ---------------------------------------------------------------------------
class ShedderProperties
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {};

TEST_P(ShedderProperties, ExpectedDropsPerWindowCoverTheDemand) {
  const auto [seed, parts] = GetParam();
  const auto model = random_model(ModelParams{seed, 4, 60, 2});
  EspiceShedder shedder(model);

  const auto cdts = Cdt::build_partitions(*model, parts);
  double min_total = cdts[0].total();
  for (const auto& cdt : cdts) min_total = std::min(min_total, cdt.total());
  const double x = 0.4 * min_total;

  DropCommand cmd;
  cmd.active = true;
  cmd.x = x;
  cmd.partitions = parts;
  shedder.on_command(cmd);

  // Expected drops in partition p = CDT_p(uth_p); by construction >= x.
  for (std::size_t p = 0; p < parts; ++p) {
    ASSERT_GE(cdts[p].at(shedder.thresholds()[p]), x);
  }
}

TEST_P(ShedderProperties, DropDecisionAgreesWithThresholdSemantics) {
  const auto [seed, parts] = GetParam();
  const auto model = random_model(ModelParams{seed, 4, 60, 2});
  EspiceShedder shedder(model);
  DropCommand cmd;
  cmd.active = true;
  cmd.x = 5.0;
  cmd.partitions = parts;
  shedder.on_command(cmd);

  const double ws = static_cast<double>(model->n_positions());
  for (std::uint32_t pos = 0; pos < 60; ++pos) {
    for (EventTypeId t = 0; t < 4; ++t) {
      Event e;
      e.type = t;
      e.value = 1.0;
      const std::size_t part = std::min<std::size_t>(
          static_cast<std::size_t>(pos) * parts / 60, parts - 1);
      const int u = model->utility(t, pos, ws);
      const int uth = shedder.thresholds()[part];
      // Strictly below the threshold always drops; strictly above never
      // does.  Exactly at the threshold the exact-amount mode may drop
      // probabilistically, so equality is not asserted.
      if (u < uth) {
        ASSERT_TRUE(shedder.should_drop(e, pos, ws))
            << "type " << t << " pos " << pos;
      } else if (u > uth) {
        ASSERT_FALSE(shedder.should_drop(e, pos, ws))
            << "type " << t << " pos " << pos;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomShedders, ShedderProperties,
    ::testing::Combine(::testing::Values(11u, 22u, 33u, 44u),
                       ::testing::Values(1u, 2u, 5u)));

// ---------------------------------------------------------------------------
// Window manager invariants over randomized streams.
// ---------------------------------------------------------------------------
struct WindowParams {
  std::uint64_t seed;
  std::size_t span;
  std::size_t slide;
};

class WindowProperties : public ::testing::TestWithParam<WindowParams> {};

TEST_P(WindowProperties, EveryWindowHasContiguousPositionsAndExactSpan) {
  const auto& p = GetParam();
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = p.span;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = p.slide;
  WindowManager wm(spec);

  Rng rng(p.seed);
  const std::size_t n = 997;
  std::vector<Window> closed;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(5));
    e.seq = i;
    e.ts = static_cast<double>(i);
    for (const auto& m : wm.offer(e)) wm.keep(m, e);
    for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));
  }
  wm.close_all();
  for (const auto& w : wm.drain_closed()) closed.push_back(materialize(w));

  ASSERT_EQ(closed.size(), (n + p.slide - 1) / p.slide);
  for (const auto& w : closed) {
    ASSERT_LE(w.arrivals, p.span);
    ASSERT_EQ(w.kept.size(), w.arrivals);  // nothing shed
    for (std::size_t i = 0; i < w.kept_pos.size(); ++i) {
      ASSERT_EQ(w.kept_pos[i], i);
      ASSERT_EQ(w.kept[i].seq, w.open_seq + i);  // contiguous slice
    }
  }
}

TEST_P(WindowProperties, MembershipCountMatchesWindowSizes) {
  const auto& p = GetParam();
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = p.span;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = p.slide;
  WindowManager wm(spec);

  std::size_t memberships = 0;
  const std::size_t n = 500;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.seq = i;
    e.ts = static_cast<double>(i);
    memberships += wm.offer(e).size();
  }
  std::size_t window_sizes = 0;
  wm.close_all();
  for (const auto& w : wm.drain_closed()) window_sizes += w.arrivals;
  ASSERT_EQ(memberships, window_sizes);
}

INSTANTIATE_TEST_SUITE_P(
    RandomWindows, WindowProperties,
    ::testing::Values(WindowParams{1, 10, 10}, WindowParams{2, 10, 3},
                      WindowParams{3, 64, 16}, WindowParams{4, 7, 1},
                      WindowParams{5, 100, 33}, WindowParams{6, 3, 2}));

// ---------------------------------------------------------------------------
// Matcher invariants on random windows.
// ---------------------------------------------------------------------------
class MatcherProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MatcherProperties, MatchesAlwaysBindInWindowOrderFromKeptEvents) {
  Rng rng(GetParam());
  const Pattern pattern = make_sequence({element("a", TypeSet{0}),
                                         element("b", TypeSet{1}),
                                         element("c", TypeSet{2})});
  for (const auto sel : {SelectionPolicy::kFirst, SelectionPolicy::kLast}) {
    for (const auto cons :
         {ConsumptionPolicy::kConsumed, ConsumptionPolicy::kZero}) {
      Matcher matcher(pattern, sel, cons, 5);
      for (int trial = 0; trial < 50; ++trial) {
        Window w;
        w.id = static_cast<WindowId>(trial);
        const std::size_t size = 5 + rng.uniform_int(30);
        for (std::size_t i = 0; i < size; ++i) {
          Event e;
          e.type = static_cast<EventTypeId>(rng.uniform_int(4));
          e.seq = i;
          e.value = 1.0;
          w.kept.push_back(e);
          w.kept_pos.push_back(static_cast<std::uint32_t>(i));
          ++w.arrivals;
        }
        for (const auto& match : matcher.match_window(w)) {
          ASSERT_EQ(match.constituents.size(), 3u);
          for (std::size_t k = 0; k < 3; ++k) {
            const auto& c = match.constituents[k];
            ASSERT_EQ(c.element, k);
            ASSERT_EQ(w.kept[c.position].type, static_cast<EventTypeId>(k));
            if (k > 0) {
              ASSERT_GT(c.position, match.constituents[k - 1].position);
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMatcherWindows, MatcherProperties,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace espice
