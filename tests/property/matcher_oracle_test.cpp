// Oracle tests: the production matcher against a tiny brute-force reference
// implementation on exhaustive / randomized small windows.
//
// The reference enumerates *all* index combinations and applies the policy
// definitions literally:
//  * first selection = the lexicographically smallest valid binding,
//  * a valid binding is strictly increasing and element-wise matching, with
//    no negated event inside a negated gap,
//  * trigger-any: smallest trigger index, then the smallest candidate set
//    (distinct types).
// Any disagreement on any window is a bug in one of the two -- and the
// reference is simple enough to trust.
#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "cep/matcher.hpp"
#include "common/rng.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

Window window_from_types(const std::vector<EventTypeId>& types) {
  Window w;
  for (std::size_t i = 0; i < types.size(); ++i) {
    Event e;
    e.type = types[i];
    e.seq = i;
    e.ts = static_cast<double>(i);
    e.value = 1.0;
    w.kept.push_back(e);
    w.kept_pos.push_back(static_cast<std::uint32_t>(i));
    ++w.arrivals;
  }
  return w;
}

// Brute force: lexicographically smallest valid sequence binding.
std::optional<std::vector<std::size_t>> oracle_first_sequence(
    const Pattern& pattern, const std::vector<Event>& ev) {
  const std::size_t k = pattern.elements.size();
  std::vector<const ElementSpec*> negation_for(k, nullptr);
  for (const auto& n : pattern.negations) negation_for[n.gap] = &n.spec;

  std::vector<std::size_t> bind;
  // Depth-first search in index order == lexicographic minimum.
  std::function<bool(std::size_t, std::size_t)> dfs =
      [&](std::size_t element_idx, std::size_t from) -> bool {
    if (element_idx == k) return true;
    for (std::size_t i = from; i < ev.size(); ++i) {
      if (!pattern.elements[element_idx].matches(ev[i])) continue;
      // Negated gap check against the previous binding.
      if (element_idx > 0 && negation_for[element_idx - 1] != nullptr) {
        bool poisoned = false;
        for (std::size_t v = bind.back() + 1; v < i; ++v) {
          if (negation_for[element_idx - 1]->matches(ev[v])) {
            poisoned = true;
            break;
          }
        }
        if (poisoned) continue;
      }
      bind.push_back(i);
      if (dfs(element_idx + 1, i + 1)) return true;
      bind.pop_back();
    }
    return false;
  };
  if (dfs(0, 0)) return bind;
  return std::nullopt;
}

void check_sequence_agreement(const Pattern& pattern,
                              const std::vector<EventTypeId>& types) {
  const Window w = window_from_types(types);
  Matcher matcher(pattern, SelectionPolicy::kFirst,
                  ConsumptionPolicy::kConsumed, 1);
  const auto matches = matcher.match_window(w);
  const auto oracle = oracle_first_sequence(pattern, w.kept);
  if (!oracle.has_value()) {
    ASSERT_TRUE(matches.empty()) << "matcher found a match the oracle denies";
    return;
  }
  ASSERT_EQ(matches.size(), 1u) << "matcher missed an existing match";
  for (std::size_t j = 0; j < oracle->size(); ++j) {
    ASSERT_EQ(matches[0].constituents[j].position, (*oracle)[j])
        << "binding differs at element " << j;
  }
}

// Exhaustive: every window of length up to 8 over a 3-type alphabet,
// pattern seq(T0; T1; T2).
TEST(MatcherOracle, ExhaustiveThreeElementSequence) {
  const Pattern pattern = make_sequence({element("a", TypeSet{0}),
                                         element("b", TypeSet{1}),
                                         element("c", TypeSet{2})});
  for (std::size_t len = 0; len <= 8; ++len) {
    std::vector<EventTypeId> types(len, 0);
    std::size_t total = 1;
    for (std::size_t i = 0; i < len; ++i) total *= 3;
    for (std::size_t code = 0; code < total; ++code) {
      std::size_t c = code;
      for (std::size_t i = 0; i < len; ++i) {
        types[i] = static_cast<EventTypeId>(c % 3);
        c /= 3;
      }
      check_sequence_agreement(pattern, types);
    }
  }
}

// Exhaustive with a negated middle gap: seq(T0; !T2; T1) over windows of
// length up to 8.  Exercises the online rebind logic against the oracle.
TEST(MatcherOracle, ExhaustiveNegatedGap) {
  const Pattern pattern = make_sequence_with_negations(
      {element("a", TypeSet{0}), element("b", TypeSet{1})},
      {{0, element("!c", TypeSet{2})}});
  for (std::size_t len = 0; len <= 8; ++len) {
    std::vector<EventTypeId> types(len, 0);
    std::size_t total = 1;
    for (std::size_t i = 0; i < len; ++i) total *= 3;
    for (std::size_t code = 0; code < total; ++code) {
      std::size_t c = code;
      for (std::size_t i = 0; i < len; ++i) {
        types[i] = static_cast<EventTypeId>(c % 3);
        c /= 3;
      }
      check_sequence_agreement(pattern, types);
    }
  }
}

// Randomized larger windows with repetition patterns (Q4 shape).
TEST(MatcherOracle, RandomizedRepetitionSequences) {
  const Pattern pattern = make_sequence(
      {element("a", TypeSet{0}), element("a", TypeSet{0}),
       element("b", TypeSet{1}), element("a", TypeSet{0})});
  const std::uint64_t seed = test_support::test_seed(31);
  SCOPED_TRACE(test_support::seed_trace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<EventTypeId> types(5 + rng.uniform_int(25));
    for (auto& t : types) t = static_cast<EventTypeId>(rng.uniform_int(4));
    check_sequence_agreement(pattern, types);
  }
}

// Randomized windows for trigger-any against a simple reference.
TEST(MatcherOracle, RandomizedTriggerAny) {
  const Pattern pattern = make_trigger_any(
      element("t", TypeSet{0}, DirectionFilter::kAny), TypeSet{1, 2, 3}, 2,
      DirectionFilter::kAny, /*distinct=*/true);
  Matcher matcher(pattern, SelectionPolicy::kFirst,
                  ConsumptionPolicy::kConsumed, 1);
  const std::uint64_t seed = test_support::test_seed(47);
  SCOPED_TRACE(test_support::seed_trace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 3000; ++trial) {
    std::vector<EventTypeId> types(3 + rng.uniform_int(20));
    for (auto& t : types) t = static_cast<EventTypeId>(rng.uniform_int(5));
    const Window w = window_from_types(types);
    const auto matches = matcher.match_window(w);

    // Reference: earliest trigger that can complete; earliest 2 distinct
    // candidate types after it.
    std::optional<std::vector<std::size_t>> expected;
    for (std::size_t ti = 0; ti < types.size() && !expected; ++ti) {
      if (types[ti] != 0) continue;
      std::vector<std::size_t> chosen;
      std::vector<bool> used(5, false);
      for (std::size_t i = ti + 1; i < types.size() && chosen.size() < 2; ++i) {
        if (types[i] >= 1 && types[i] <= 3 && !used[types[i]]) {
          used[types[i]] = true;
          chosen.push_back(i);
        }
      }
      if (chosen.size() == 2) {
        expected = std::vector<std::size_t>{ti, chosen[0], chosen[1]};
      }
    }
    if (!expected) {
      ASSERT_TRUE(matches.empty());
      continue;
    }
    ASSERT_EQ(matches.size(), 1u);
    for (std::size_t j = 0; j < 3; ++j) {
      ASSERT_EQ(matches[0].constituents[j].position, (*expected)[j]);
    }
  }
}

}  // namespace
}  // namespace espice
