// Differential twin oracle for the vectorized EspiceShedder block scorer.
//
// Two shedders, identical seeds and command history: one free to take the
// AVX2 score_block kernel, the twin pinned to the scalar path via
// set_force_scalar(true).  The contract under test is BIT-IDENTITY -- not
// just the same keep bitmaps, but the same decision/drop counters and the
// same serialized state (which embeds the RNG) after every regime, because
// the engine's determinism and the durability layer's replay guarantee
// both sit on score_block being an exact drop-in for the scalar sweep.
//
// The sweep deliberately crosses every dispatch boundary: partition counts
// {1,2,3,7}, ws == N (flat/SIMD-eligible) vs ws != N (general path),
// positions beyond N (the kernel must bail to scalar BEFORE any counter
// moves), exact-amount boundary sampling and exploration (RNG-consuming ->
// SIMD-ineligible), revise_boost, inactive and re-armed phases, and block
// sizes that straddle the 64-bit keep-word boundary.  CI runs this under
// 5 seeds (ESPICE_TEST_SEED) and both sanitizers.
#include "core/espice_shedder.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "durability/serial.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

using test_support::seed_trace;
using test_support::test_seed;

std::shared_ptr<const UtilityModel> random_model(Rng& rng) {
  const std::size_t types = 1 + rng.uniform_int(5);
  const std::size_t n = 16 + rng.uniform_int(65);  // 16..80
  const std::size_t bs = 1 + rng.uniform_int(4);
  const std::size_t cols = (n + bs - 1) / bs;
  std::vector<std::uint8_t> ut(types * cols);
  std::vector<double> shares(types * cols);
  for (std::size_t i = 0; i < ut.size(); ++i) {
    ut[i] = static_cast<std::uint8_t>(rng.uniform_int(101));
    shares[i] = 0.25 + rng.uniform(0.0, 4.0);
  }
  return std::make_shared<UtilityModel>(types, n, bs, std::move(ut),
                                        std::move(shares));
}

std::vector<std::byte> serialized(const EspiceShedder& s) {
  durability::SnapshotWriter w;
  s.serialize(w);
  return w.take();
}

struct Regime {
  bool exact_amount;
  double exploration;
  int revise_boost;
  bool oversized_ws;       ///< query with ws != N (general path)
  bool out_of_range_pos;   ///< include positions >= N (kernel must bail)
};

/// Runs one full command+score history through both twins and asserts
/// bit-identity at every block.
void run_twin(std::uint64_t seed, const Regime& reg) {
  Rng rng(seed);
  auto model = random_model(rng);
  const std::size_t n_pos = model->n_positions();
  const std::size_t n_types = model->num_types();
  const double ws = reg.oversized_ws ? static_cast<double>(n_pos) + 6.0
                                     : static_cast<double>(n_pos);

  const std::uint64_t shedder_seed = rng.next();
  EspiceShedder simd(model, reg.exact_amount, shedder_seed);
  EspiceShedder scalar(model, reg.exact_amount, shedder_seed);
  scalar.set_force_scalar(true);
  ASSERT_FALSE(simd.force_scalar());
  ASSERT_TRUE(scalar.force_scalar());
  if (reg.exploration > 0.0) {
    simd.set_exploration(reg.exploration);
    scalar.set_exploration(reg.exploration);
  }
  simd.set_revise_boost(reg.revise_boost);
  scalar.set_revise_boost(reg.revise_boost);

  const std::size_t partition_plan[] = {1, 2, 3, 7};
  const std::size_t block_sizes[] = {1, 7, 63, 64, 65, 127, 128, 130, 200};

  // Phase plan: inactive -> armed (each partition count) -> deactivated ->
  // re-armed, scoring a batch of random blocks after every command.
  auto run_blocks = [&](const char* label) {
    SCOPED_TRACE(label);
    std::vector<std::uint32_t> positions;
    std::vector<std::uint64_t> bits_simd;
    std::vector<std::uint64_t> bits_scalar;
    for (const std::size_t bn : block_sizes) {
      Event e;
      e.type = static_cast<EventTypeId>(rng.uniform_int(n_types));
      e.value = rng.uniform(-1.0, 1.0);
      positions.clear();
      for (std::size_t i = 0; i < bn; ++i) {
        // Mostly in-range; the out-of-range regime salts in positions past
        // N, which must kick the whole SIMD block back to scalar with no
        // counter/bitmap divergence.
        std::uint32_t p = static_cast<std::uint32_t>(rng.uniform_int(n_pos));
        if (reg.out_of_range_pos && rng.uniform_int(8) == 0) {
          p = static_cast<std::uint32_t>(n_pos + rng.uniform_int(4));
        }
        positions.push_back(p);
      }
      const std::size_t words = (bn + 63) / 64;
      bits_simd.assign(words, ~std::uint64_t{0});
      bits_scalar.assign(words, 0);
      simd.score_block(e, positions.data(), bn, ws, bits_simd.data());
      scalar.score_block(e, positions.data(), bn, ws, bits_scalar.data());
      for (std::size_t i = 0; i < bn; ++i) {
        const bool ks = (bits_simd[i / 64] >> (i % 64)) & 1;
        const bool kc = (bits_scalar[i / 64] >> (i % 64)) & 1;
        ASSERT_EQ(ks, kc) << "block size " << bn << " slot " << i
                          << " type " << e.type << " pos " << positions[i];
      }
      ASSERT_EQ(simd.decisions(), scalar.decisions());
      ASSERT_EQ(simd.drops(), scalar.drops());
    }
    // Full-state bit-identity: counters, command state, model tables, RNG.
    ASSERT_EQ(serialized(simd), serialized(scalar));
  };

  run_blocks("inactive");
  for (const std::size_t parts : partition_plan) {
    DropCommand cmd;
    cmd.active = true;
    cmd.partitions = parts;
    cmd.x = rng.uniform(0.5, static_cast<double>(n_pos));
    simd.on_command(cmd);
    scalar.on_command(cmd);
    run_blocks("armed");
  }
  DropCommand off;
  off.active = false;
  simd.on_command(off);
  scalar.on_command(off);
  run_blocks("deactivated");
  DropCommand rearm;
  rearm.active = true;
  rearm.partitions = 2;
  rearm.x = rng.uniform(1.0, static_cast<double>(n_pos));
  simd.on_command(rearm);
  scalar.on_command(rearm);
  run_blocks("re-armed");
}

class ShedderSimdOracle : public ::testing::TestWithParam<int> {};

TEST_P(ShedderSimdOracle, VectorPathIsBitIdenticalToScalar) {
  // Vacuously scalar-vs-scalar on machines without AVX2 (still a valid
  // force-scalar consistency check); record which it was.
  ::testing::Test::RecordProperty("simd_supported",
                                  EspiceShedder::simd_supported() ? 1 : 0);
  const std::uint64_t seed =
      test_seed(0x51d0u + static_cast<std::uint64_t>(GetParam()) * 0x9e37u);
  SCOPED_TRACE(seed_trace(seed));

  const Regime regimes[] = {
      // The SIMD-eligible steady state: RNG-free, ws == N, in-range.
      {false, 0.0, 0, false, false},
      // Same but with a revise boost folded into the compare.
      {false, 0.0, 17, false, false},
      // Out-of-range positions force the per-block scalar bail.
      {false, 0.0, 0, false, true},
      // General path (ws != N): never SIMD, still must agree.
      {false, 0.0, 0, true, false},
      // RNG-consuming regimes: dispatch must decline, twins stay in step.
      {true, 0.0, 0, false, false},
      {false, 0.2, 0, false, false},
      {true, 0.2, 5, true, true},
  };
  int i = 0;
  for (const Regime& reg : regimes) {
    SCOPED_TRACE("regime " + std::to_string(i++));
    run_twin(seed ^ (0xabcdefULL * static_cast<std::uint64_t>(i)), reg);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShedderSimdOracle, ::testing::Range(0, 6));

}  // namespace
}  // namespace espice
