// Window-engine oracle: the shared-store WindowManager against the naive
// copy-per-window ReferenceWindowManager on randomized streams.
//
// Both engines are driven with the same stream and the same deterministic
// per-(event, window) shedding decision; the closed windows must agree on
// every observable: ids, closing order, open metadata, offered size
// (arrivals), and the exact (position, event) list of kept events --
// including that *dropped* events still advance positions.  Every span kind
// (time / count / predicate) is crossed with every open kind (predicate /
// count-slide) and with keep-everything, hash-shedding and heavy-shedding
// policies.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "cep/reference_window.hpp"
#include "cep/window.hpp"
#include "common/rng.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

constexpr EventTypeId kOpenerType = 1;
constexpr EventTypeId kCloserType = 2;

WindowSpec make_spec(WindowSpan span_kind, WindowOpen open_kind) {
  WindowSpec spec;
  spec.span_kind = span_kind;
  spec.open_kind = open_kind;
  switch (span_kind) {
    case WindowSpan::kTime:
      spec.span_seconds = 7.5;
      break;
    case WindowSpan::kCount:
      spec.span_events = 24;
      break;
    case WindowSpan::kPredicate:
      spec.span_events = 40;  // safety cap
      spec.closer = element("close", TypeSet{kCloserType}, DirectionFilter::kAny);
      break;
  }
  if (open_kind == WindowOpen::kPredicate) {
    spec.opener = element("open", TypeSet{kOpenerType}, DirectionFilter::kAny);
  } else {
    spec.slide_events = 5;
  }
  return spec;
}

std::vector<Event> random_stream(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(6));
    e.seq = i;
    ts += rng.uniform(0.0, 1.2);
    e.ts = ts;
    e.value = rng.uniform(-2.0, 2.0);
    events.push_back(e);
  }
  return events;
}

/// Deterministic per-(event, window) drop decision, identical for both
/// engines regardless of membership enumeration order.  `mod == 0` keeps
/// everything; larger values drop 1/mod .. (mod-1)/mod of memberships.
bool should_drop(const Event& e, WindowId window, unsigned mod,
                 unsigned keep_residue) {
  if (mod == 0) return false;
  const std::uint64_t h = (e.seq * 2654435761ULL) ^ (window * 40503ULL);
  return h % mod != keep_residue;
}

void expect_same_window(const Window& actual, const Window& expected,
                        std::size_t k) {
  ASSERT_EQ(actual.id, expected.id) << "window " << k;
  EXPECT_DOUBLE_EQ(actual.open_ts, expected.open_ts) << "window " << k;
  EXPECT_EQ(actual.open_seq, expected.open_seq) << "window " << k;
  EXPECT_EQ(actual.arrivals, expected.arrivals) << "window " << k;
  ASSERT_EQ(actual.kept.size(), expected.kept.size()) << "window " << k;
  ASSERT_EQ(actual.kept_pos.size(), expected.kept_pos.size()) << "window " << k;
  for (std::size_t i = 0; i < actual.kept.size(); ++i) {
    EXPECT_EQ(actual.kept_pos[i], expected.kept_pos[i])
        << "window " << k << " kept entry " << i;
    EXPECT_EQ(actual.kept[i].seq, expected.kept[i].seq)
        << "window " << k << " kept entry " << i;
    EXPECT_EQ(actual.kept[i].type, expected.kept[i].type)
        << "window " << k << " kept entry " << i;
  }
}

void run_engine_comparison(const WindowSpec& spec, unsigned drop_mod,
                           std::uint64_t seed, std::size_t n_events) {
  const auto events = random_stream(seed, n_events);

  WindowManager engine(spec);
  ReferenceWindowManager reference(spec);

  std::vector<Window> engine_closed;
  std::vector<Window> reference_closed;
  std::size_t engine_memberships = 0;
  std::size_t reference_memberships = 0;

  for (const Event& e : events) {
    auto& ms = engine.offer(e);
    engine_memberships += ms.size();
    for (const auto& m : ms) {
      if (!should_drop(e, m.window, drop_mod, 0)) engine.keep(m, e);
    }
    for (const auto& w : engine.drain_closed()) {
      engine_closed.push_back(materialize(w));
    }

    auto& rms = reference.offer(e);
    reference_memberships += rms.size();
    for (const auto& m : rms) {
      if (!should_drop(e, m.window, drop_mod, 0)) reference.keep(m, e);
    }
    for (auto& w : reference.drain_closed()) {
      reference_closed.push_back(std::move(w));
    }
  }
  engine.close_all();
  for (const auto& w : engine.drain_closed()) {
    engine_closed.push_back(materialize(w));
  }
  reference.close_all();
  for (auto& w : reference.drain_closed()) {
    reference_closed.push_back(std::move(w));
  }

  EXPECT_EQ(engine_memberships, reference_memberships);
  EXPECT_EQ(engine.windows_opened(), reference.windows_opened());
  EXPECT_DOUBLE_EQ(engine.avg_closed_window_size(),
                   reference.avg_closed_window_size());
  ASSERT_EQ(engine_closed.size(), reference_closed.size());
  for (std::size_t k = 0; k < engine_closed.size(); ++k) {
    expect_same_window(engine_closed[k], reference_closed[k], k);
  }
}

using OracleParams =
    std::tuple<WindowSpan, WindowOpen, unsigned /*drop mod*/, std::uint64_t>;

class WindowOracle : public ::testing::TestWithParam<OracleParams> {};

TEST_P(WindowOracle, SharedStoreEngineMatchesNaiveReference) {
  const auto [span_kind, open_kind, drop_mod, salt] = GetParam();
  const std::uint64_t seed = test_support::test_seed(salt);
  SCOPED_TRACE(test_support::seed_trace(seed));
  run_engine_comparison(make_spec(span_kind, open_kind), drop_mod, seed, 600);
}

INSTANTIATE_TEST_SUITE_P(
    AllSpanAndOpenKinds, WindowOracle,
    ::testing::Combine(
        ::testing::Values(WindowSpan::kTime, WindowSpan::kCount,
                          WindowSpan::kPredicate),
        ::testing::Values(WindowOpen::kPredicate, WindowOpen::kCountSlide),
        // keep everything / drop ~2 in 3 / drop ~6 in 7
        ::testing::Values(0u, 3u, 7u),
        // Per-case salts; ESPICE_TEST_SEED reshuffles all of them (see
        // tests/support/test_seed.hpp).
        ::testing::Values(11u, 222u, 3333u)));

// Large spans push the live kept-event count past EventStore's initial ring
// capacity (256), so this comparison exercises grow()'s slot relocation --
// the contents of every live window must survive the re-layout.
TEST(WindowOracle, LargeSpanExercisesStoreGrowth) {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = 1024;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = 64;
  for (const std::uint64_t salt : {55u, 56u}) {
    const std::uint64_t seed = test_support::test_seed(salt);
    SCOPED_TRACE(test_support::seed_trace(seed));
    run_engine_comparison(spec, /*drop_mod=*/salt == 55u ? 0u : 3u, seed,
                          /*n_events=*/4000);
  }
}

// Dropped events must still advance positions: with everything shed, closed
// windows report their full offered size and no kept contents.
TEST(WindowOracle, FullSheddingStillAdvancesPositions) {
  WindowSpec spec = make_spec(WindowSpan::kCount, WindowOpen::kCountSlide);
  WindowManager engine(spec);
  const std::uint64_t seed = test_support::test_seed(99);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 200);
  std::vector<Window> closed;
  for (const Event& e : events) {
    engine.offer(e);  // keep nothing
    for (const auto& w : engine.drain_closed()) closed.push_back(materialize(w));
  }
  engine.close_all();
  for (const auto& w : engine.drain_closed()) closed.push_back(materialize(w));
  ASSERT_FALSE(closed.empty());
  EXPECT_EQ(closed.front().arrivals, spec.span_events);
  for (const auto& w : closed) EXPECT_TRUE(w.kept.empty());
  // Nothing kept means nothing stored: the shared store never grew.
  EXPECT_EQ(engine.store().size(), 0u);
  EXPECT_EQ(engine.resident_payload_bytes(), 0u);
}

// The headline memory property: with heavy overlap (slide << span) and
// everything kept, the reference's resident payload scales with the overlap
// factor while the shared store stays O(span).
TEST(WindowOracle, ResidentPayloadDoesNotScaleWithOverlap) {
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = 256;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = 16;  // overlap factor 16
  WindowManager engine(spec);
  ReferenceWindowManager reference(spec);
  const std::uint64_t seed = test_support::test_seed(7);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 2000);

  std::size_t engine_peak = 0;
  std::size_t reference_peak = 0;
  for (const Event& e : events) {
    for (const auto& m : engine.offer(e)) engine.keep(m, e);
    engine.drain_closed();
    for (const auto& m : reference.offer(e)) reference.keep(m, e);
    reference.drain_closed();
    engine_peak = std::max(engine_peak, engine.resident_payload_bytes());
    reference_peak = std::max(reference_peak, reference.resident_payload_bytes());
  }
  // Reference holds ~overlap copies of each live event; the store holds one.
  EXPECT_GE(reference_peak, 6 * engine_peak);
  // And the store never holds more than ~span + slide live events.
  EXPECT_LE(engine_peak,
            (spec.span_events + spec.slide_events + 1) * sizeof(Event));
}

}  // namespace
}  // namespace espice
