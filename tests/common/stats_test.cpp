#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace espice {
namespace {

TEST(Ewma, FirstObservationSeedsValue) {
  Ewma e(0.2);
  EXPECT_FALSE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value_or(-1.0), -1.0);
  e.observe(10.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, BlendsTowardNewObservations) {
  Ewma e(0.5);
  e.observe(0.0);
  e.observe(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.observe(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Ewma, AlphaOneTracksLastValue) {
  Ewma e(1.0);
  e.observe(3.0);
  e.observe(-8.0);
  EXPECT_DOUBLE_EQ(e.value(), -8.0);
}

TEST(Ewma, ConvergesToConstantSignal) {
  Ewma e(0.1);
  e.observe(0.0);
  for (int i = 0; i < 200; ++i) e.observe(42.0);
  EXPECT_NEAR(e.value(), 42.0, 1e-6);
}

TEST(Ewma, ResetClearsSeed) {
  Ewma e(0.2);
  e.observe(5.0);
  e.reset();
  EXPECT_FALSE(e.seeded());
  e.observe(7.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.0);
}

// Snapshot/restore round-trip (the durability layer serializes only the
// running estimate; alpha comes from config): a restored EWMA continues
// the sequence exactly where the original left off.
TEST(Ewma, RestoreRoundTripContinuesExactly) {
  Ewma original(0.3);
  original.observe(4.0);
  original.observe(8.0);
  Ewma restored(0.3);
  restored.restore(original.raw_value(), original.seeded());
  EXPECT_TRUE(restored.seeded());
  EXPECT_DOUBLE_EQ(restored.value(), original.value());
  original.observe(-2.0);
  restored.observe(-2.0);
  EXPECT_DOUBLE_EQ(restored.value(), original.value());
  // Restoring the unseeded state keeps the fallback semantics.
  Ewma blank(0.3);
  Ewma blank_restored(0.3);
  blank_restored.restore(blank.raw_value(), blank.seeded());
  EXPECT_FALSE(blank_restored.seeded());
  EXPECT_DOUBLE_EQ(blank_restored.value_or(9.0), 9.0);
}

TEST(Ewma, RejectsOutOfRangeAlpha) {
  EXPECT_THROW(Ewma(0.0), ConfigError);
  EXPECT_THROW(Ewma(-0.5), ConfigError);
  EXPECT_THROW(Ewma(1.5), ConfigError);
  EXPECT_NO_THROW(Ewma(1.0));
}

TEST(RunningStats, MeanOfKnownValues) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.observe(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(RunningStats, MinAndMaxTrackExtremes) {
  RunningStats s;
  for (double v : {3.0, -1.0, 7.0, 0.0}) s.observe(v);
  EXPECT_DOUBLE_EQ(s.min(), -1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
}

TEST(RunningStats, SingleValueHasZeroVariance) {
  RunningStats s;
  s.observe(5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

// The n < 2 edge cases: variance/stddev are defined (0) on empty and
// single-sample trackers, while mean/min/max on empty are contract errors.
TEST(RunningStats, FewerThanTwoSamplesHaveZeroVariance) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_THROW(s.mean(), ConfigError);
  EXPECT_THROW(s.min(), ConfigError);
  EXPECT_THROW(s.max(), ConfigError);
  s.observe(-3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.5);
  EXPECT_DOUBLE_EQ(s.max(), -3.5);
}

TEST(RunningStats, ResetRestoresEmptyState) {
  RunningStats s;
  s.observe(1.0);
  s.observe(2.0);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  s.observe(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 10.0);
}

TEST(RunningStats, LargeUniformSequence) {
  RunningStats s;
  const int n = 10001;
  for (int i = 0; i < n; ++i) s.observe(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.mean(), 5000.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 10000.0);
}

TEST(PercentileTracker, MedianOfOddCount) {
  PercentileTracker t;
  for (double v : {5.0, 1.0, 3.0}) t.observe(v);
  EXPECT_DOUBLE_EQ(t.median(), 3.0);
}

TEST(PercentileTracker, InterpolatesBetweenRanks) {
  PercentileTracker t;
  for (double v : {0.0, 10.0}) t.observe(v);
  EXPECT_DOUBLE_EQ(t.percentile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(t.percentile(0.25), 2.5);
}

TEST(PercentileTracker, ExtremesAreMinAndMax) {
  PercentileTracker t;
  for (double v : {4.0, -2.0, 9.0, 0.5}) t.observe(v);
  EXPECT_DOUBLE_EQ(t.percentile(0.0), -2.0);
  EXPECT_DOUBLE_EQ(t.percentile(1.0), 9.0);
}

TEST(PercentileTracker, SingleValue) {
  PercentileTracker t;
  t.observe(7.0);
  EXPECT_DOUBLE_EQ(t.percentile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(t.percentile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(t.percentile(1.0), 7.0);
}

TEST(PercentileTracker, ObservationsAfterQueryAreIncluded) {
  PercentileTracker t;
  t.observe(1.0);
  t.observe(2.0);
  EXPECT_DOUBLE_EQ(t.max(), 2.0);
  t.observe(100.0);  // must re-sort internally
  EXPECT_DOUBLE_EQ(t.max(), 100.0);
  EXPECT_DOUBLE_EQ(t.median(), 2.0);
}

// Contract edges: q must be in [0, 1] and the tracker non-empty; the
// boundary quantiles are exactly min/max with no interpolation wobble.
TEST(PercentileTracker, BoundaryAndErrorContract) {
  PercentileTracker empty;
  EXPECT_THROW(empty.percentile(0.5), ConfigError);
  PercentileTracker t;
  for (double v : {10.0, -5.0, 3.0, 3.0, 8.0}) t.observe(v);
  EXPECT_THROW(t.percentile(-0.01), ConfigError);
  EXPECT_THROW(t.percentile(1.01), ConfigError);
  EXPECT_DOUBLE_EQ(t.percentile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(t.percentile(1.0), 10.0);
  // Monotone in q.
  double prev = t.percentile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double cur = t.percentile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(PercentileTracker, CountReflectsObservations) {
  PercentileTracker t;
  EXPECT_EQ(t.count(), 0u);
  t.observe(1.0);
  t.observe(1.0);
  EXPECT_EQ(t.count(), 2u);
}

}  // namespace
}  // namespace espice
