#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace espice {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(99);
  Rng b(99);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a.next());
  a.reseed(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 8.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 8.25);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntStaysBelowBound) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.uniform_int(17), 17u);
  }
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntOneIsAlwaysZero) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(1), 0u);
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntIsApproximatelyUniform) {
  Rng rng(8);
  std::array<int, 10> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.1, 0.01);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(9);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(10);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialHasCorrectMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  double sum = 0.0;
  double sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftAndScale) {
  Rng rng(14);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(15);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(16);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

}  // namespace
}  // namespace espice
