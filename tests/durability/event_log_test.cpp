// Event log units: append/replay round trips, segment rolling, reopen
// resume, and the directed torn-tail/corruption recovery cases (the
// kill-anywhere sweep lives in recovery_oracle_test.cpp; these pin down the
// log layer's exact truncation semantics in isolation).
#include "durability/event_log.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "support/crash_point.hpp"
#include "support/temp_dir.hpp"

namespace espice::durability {
namespace {

namespace fs = std::filesystem;
using test_support::CrashHarness;
using test_support::SimulatedCrash;
using test_support::TempDir;

std::vector<Event> make_events(std::size_t n, std::uint64_t first_seq = 0) {
  std::vector<Event> events;
  events.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>((first_seq + i) % 5);
    e.seq = first_seq + i;
    e.ts = 0.25 * static_cast<double>(first_seq + i);
    e.value = static_cast<double>(i) - 3.5;
    e.aux = 1e-3 * static_cast<double>(i);
    events.push_back(e);
  }
  return events;
}

void expect_events_equal(const std::vector<Event>& actual,
                         const std::vector<Event>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].type, expected[i].type) << "event " << i;
    EXPECT_EQ(actual[i].seq, expected[i].seq) << "event " << i;
    EXPECT_EQ(actual[i].ts, expected[i].ts) << "event " << i;
    EXPECT_EQ(actual[i].value, expected[i].value) << "event " << i;
    EXPECT_EQ(actual[i].aux, expected[i].aux) << "event " << i;
  }
}

EventLogConfig small_segments(const std::string& dir) {
  EventLogConfig c;
  c.dir = dir;
  c.segment_bytes = 4096;  // minimum: rolls after ~5 batches of 20
  return c;
}

std::vector<std::string> segment_files(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    out.push_back(entry.path().filename().string());
  }
  return out;
}

/// Flips one byte of `path` at `offset` (from the end when negative).
void flip_byte(const std::string& path, long long offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  if (offset < 0) {
    f.seekg(0, std::ios::end);
    offset += static_cast<long long>(f.tellg());
  }
  f.seekg(offset);
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x5A);
  f.seekp(offset);
  f.write(&b, 1);
  ASSERT_TRUE(f.good()) << path;
}

TEST(EventLog, FreshDirOpensEmpty) {
  TempDir dir("elog");
  EventLogWriter w(small_segments(dir.str()));
  EXPECT_EQ(w.next_index(), 0u);
  EXPECT_TRUE(w.open_result().damage.empty());
}

TEST(EventLog, AppendReplayRoundTrip) {
  TempDir dir("elog");
  const auto events = make_events(23);
  {
    EventLogWriter w(small_segments(dir.str()));
    w.append_batch(std::span(events).subspan(0, 1));
    w.append_batch(std::span(events).subspan(1, 5));
    w.append_batch(std::span(events).subspan(6, 17));
    EXPECT_EQ(w.next_index(), 23u);
  }
  EventLogReader r(dir.str());
  EXPECT_TRUE(r.open_result().damage.empty());
  ASSERT_EQ(r.durable_events(), 23u);
  expect_events_equal(r.read_from(0), events);
  // Replay from mid-batch: the straddling record is trimmed, not repeated.
  expect_events_equal(r.read_from(9),
                      std::vector<Event>(events.begin() + 9, events.end()));
  // Replay hands back correct global base indices.
  std::uint64_t expect_base = 6;
  r.replay(6, [&](std::span<const Event> batch, std::uint64_t base) {
    EXPECT_EQ(base, expect_base);
    expect_base += batch.size();
  });
  EXPECT_EQ(expect_base, 23u);
}

TEST(EventLog, RollsAndValidatesSegments) {
  TempDir dir("elog");
  const auto events = make_events(400);
  {
    EventLogWriter w(small_segments(dir.str()));
    for (std::size_t i = 0; i < 400; i += 20) {
      w.append_batch(std::span(events).subspan(i, 20));
    }
  }
  EXPECT_GT(segment_files(dir.str()).size(), 2u);
  EventLogReader r(dir.str());
  EXPECT_TRUE(r.open_result().damage.empty());
  ASSERT_EQ(r.durable_events(), 400u);
  expect_events_equal(r.read_from(0), events);
}

TEST(EventLog, ReopenResumesAppend) {
  TempDir dir("elog");
  const auto events = make_events(50);
  {
    EventLogWriter w(small_segments(dir.str()));
    w.append_batch(std::span(events).subspan(0, 30));
  }
  {
    EventLogWriter w(small_segments(dir.str()));
    EXPECT_TRUE(w.open_result().damage.empty());
    ASSERT_EQ(w.next_index(), 30u);
    w.append_batch(std::span(events).subspan(30, 20));
  }
  EventLogReader r(dir.str());
  ASSERT_EQ(r.durable_events(), 50u);
  expect_events_equal(r.read_from(0), events);
}

TEST(EventLog, FsyncPoliciesAppend) {
  for (const FsyncPolicy policy :
       {FsyncPolicy::kNone, FsyncPolicy::kInterval, FsyncPolicy::kEveryBatch}) {
    TempDir dir("elog");
    EventLogConfig c = small_segments(dir.str());
    c.fsync = policy;
    c.fsync_interval_records = 2;
    const auto events = make_events(60);
    {
      EventLogWriter w(c);
      for (std::size_t i = 0; i < 60; i += 10) {
        w.append_batch(std::span(events).subspan(i, 10));
      }
      w.sync();
    }
    EventLogReader r(dir.str());
    EXPECT_EQ(r.durable_events(), 60u) << fsync_policy_name(policy);
  }
}

// --- crash-point directed cases --------------------------------------------

TEST(EventLog, CrashBeforeAppendLosesWholeBatch) {
  TempDir dir("elog");
  const auto events = make_events(26);
  {
    CrashHarness crash;
    EventLogWriter w(small_segments(dir.str()));
    w.append_batch(std::span(events).subspan(0, 20));
    crash.arm("log.append.before", 1);
    EXPECT_THROW(w.append_batch(std::span(events).subspan(20, 6)),
                 SimulatedCrash);
    EXPECT_TRUE(crash.fired());
  }
  EventLogWriter w(small_segments(dir.str()));
  EXPECT_EQ(w.next_index(), 20u);
  EXPECT_TRUE(w.open_result().damage.empty());  // nothing was torn
}

TEST(EventLog, CrashMidRecordTruncatesTornTail) {
  TempDir dir("elog");
  const auto events = make_events(26);
  {
    CrashHarness crash;
    EventLogWriter w(small_segments(dir.str()));
    w.append_batch(std::span(events).subspan(0, 20));
    crash.arm("log.append.mid_record", 1);
    EXPECT_THROW(w.append_batch(std::span(events).subspan(20, 6)),
                 SimulatedCrash);
    EXPECT_TRUE(crash.fired());
  }
  // Reopen: the half-written record is detected, reported, truncated away.
  EventLogWriter w(small_segments(dir.str()));
  EXPECT_EQ(w.next_index(), 20u);
  EXPECT_FALSE(w.open_result().damage.empty());
  // And the repaired log accepts appends again, seamlessly.
  w.append_batch(std::span(events).subspan(20, 6));
  EXPECT_EQ(w.next_index(), 26u);
}

TEST(EventLog, CrashAfterAppendKeepsBatch) {
  TempDir dir("elog");
  const auto events = make_events(26);
  {
    CrashHarness crash;
    EventLogWriter w(small_segments(dir.str()));
    w.append_batch(std::span(events).subspan(0, 20));
    crash.arm("log.append.done", 1);
    EXPECT_THROW(w.append_batch(std::span(events).subspan(20, 6)),
                 SimulatedCrash);
    EXPECT_TRUE(crash.fired());
  }
  EventLogReader r(dir.str());
  EXPECT_EQ(r.durable_events(), 26u);  // record completed before the kill
  expect_events_equal(r.read_from(0), events);
}

// --- directed corruption (bit rot / external tampering) ---------------------

TEST(EventLog, CorruptActiveTailTruncatesLastRecord) {
  TempDir dir("elog");
  const auto events = make_events(40);
  {
    EventLogWriter w(small_segments(dir.str()));
    w.append_batch(std::span(events).subspan(0, 30));
    w.append_batch(std::span(events).subspan(30, 10));
  }
  // Flip a byte inside the last record's payload.
  const auto files = segment_files(dir.str());
  ASSERT_EQ(files.size(), 1u);
  flip_byte(dir.str() + "/" + files[0], -5);

  EventLogWriter w(small_segments(dir.str()));
  EXPECT_EQ(w.next_index(), 30u);  // last record gone, prefix intact
  ASSERT_FALSE(w.open_result().damage.empty());
  w.append_batch(std::span(events).subspan(30, 10));
  EXPECT_EQ(w.next_index(), 40u);
  EventLogReader r(dir.str());
  expect_events_equal(r.read_from(0), events);
}

TEST(EventLog, CorruptSealedSegmentEndsDurablePrefixThere) {
  TempDir dir("elog");
  const auto events = make_events(400);
  {
    EventLogWriter w(small_segments(dir.str()));
    for (std::size_t i = 0; i < 400; i += 20) {
      w.append_batch(std::span(events).subspan(i, 20));
    }
  }
  auto files = segment_files(dir.str());
  ASSERT_GT(files.size(), 2u);
  std::sort(files.begin(), files.end());
  // Payload byte of the FIRST record of the FIRST (sealed) segment: the
  // durable prefix conservatively ends before it; every later segment is
  // reported and removed by the writer's repair pass.
  flip_byte(dir.str() + "/" + files[0], 20 + 28 + 10);

  EventLogWriter w(small_segments(dir.str()));
  EXPECT_EQ(w.next_index(), 0u);
  EXPECT_GE(w.open_result().damage.size(), files.size());
  EXPECT_EQ(segment_files(dir.str()).size(), 1u);  // only the fresh active seg

  // The repaired (now empty) log is fully usable.
  w.append_batch(std::span(events).subspan(0, 20));
  EXPECT_EQ(w.next_index(), 20u);
}

TEST(EventLog, PruneRemovesWhollyDeadSegments) {
  TempDir dir("elog");
  const auto events = make_events(400);
  EventLogWriter w(small_segments(dir.str()));
  for (std::size_t i = 0; i < 400; i += 20) {
    w.append_batch(std::span(events).subspan(i, 20));
  }
  const std::size_t before = segment_files(dir.str()).size();
  ASSERT_GT(before, 2u);
  const std::size_t removed = w.prune_segments_below(250);
  EXPECT_GT(removed, 0u);
  EXPECT_EQ(segment_files(dir.str()).size(), before - removed);

  // Replay from the prune point still works and is exact.
  EventLogReader r(dir.str());
  EXPECT_EQ(r.durable_events(), 400u);
  expect_events_equal(r.read_from(250),
                      std::vector<Event>(events.begin() + 250, events.end()));
}

// A real kill (SIGKILL-equivalent _exit) at the torn-write point, then
// recovery by a fresh process image: proves the harness's in-process
// simulation and the kernel-level death agree on the on-disk outcome.
TEST(EventLogDeathTest, RealKillMidRecordRecovers) {
  // Default ("fast") death-test style: the forked child shares this
  // process's TempDir path, so the parent can inspect the torn file.
  TempDir dir("elog");
  const auto events = make_events(26);
  {
    EventLogWriter w(small_segments(dir.str()));
    w.append_batch(std::span(events).subspan(0, 20));
  }
  EXPECT_EXIT(
      {
        CrashHarness crash;
        crash.arm("log.append.mid_record", 1, /*exit_for_real=*/true);
        EventLogWriter w(small_segments(dir.str()));
        w.append_batch(std::span(events).subspan(20, 6));
      },
      ::testing::ExitedWithCode(137), "");
  EventLogWriter w(small_segments(dir.str()));
  EXPECT_EQ(w.next_index(), 20u);
  EXPECT_FALSE(w.open_result().damage.empty());
}

}  // namespace
}  // namespace espice::durability
