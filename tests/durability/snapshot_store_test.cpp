// SnapshotStore units: publish/load round trips and every documented crash
// or corruption fallback (tmp-only, stale manifest, corrupt manifest,
// corrupt payload) in isolation.
#include "durability/snapshot.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "support/crash_point.hpp"
#include "support/temp_dir.hpp"

namespace espice::durability {
namespace {

namespace fs = std::filesystem;
using test_support::CrashHarness;
using test_support::SimulatedCrash;
using test_support::TempDir;

std::vector<std::byte> make_payload(std::size_t n, int salt) {
  std::vector<std::byte> p(n);
  for (std::size_t i = 0; i < n; ++i) {
    p[i] = static_cast<std::byte>((i * 31 + salt) & 0xFF);
  }
  return p;
}

void flip_byte(const std::string& path, long long offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  if (offset < 0) {
    f.seekg(0, std::ios::end);
    offset += static_cast<long long>(f.tellg());
  }
  f.seekg(offset);
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ 0x5A);
  f.seekp(offset);
  f.write(&b, 1);
  ASSERT_TRUE(f.good()) << path;
}

std::string only_snapshot_file(const std::string& dir) {
  std::string found;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) == 0 &&
        name.substr(name.size() - 5) == ".snap") {
      EXPECT_TRUE(found.empty()) << "expected exactly one snapshot";
      found = entry.path().string();
    }
  }
  EXPECT_FALSE(found.empty());
  return found;
}

TEST(SnapshotStore, EmptyStoreLoadsNothing) {
  TempDir dir("snap");
  SnapshotStore store(dir.str());
  std::vector<std::string> damage;
  EXPECT_FALSE(store.load_latest(&damage).has_value());
  EXPECT_TRUE(damage.empty());
}

TEST(SnapshotStore, WriteLoadRoundTrip) {
  TempDir dir("snap");
  SnapshotStore store(dir.str());
  const auto payload = make_payload(1000, 7);
  store.write(123, payload);

  std::vector<std::string> damage;
  const auto loaded = store.load_latest(&damage);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(damage.empty());
  EXPECT_EQ(loaded->log_offset, 123u);
  EXPECT_EQ(loaded->payload, payload);
}

TEST(SnapshotStore, NewestSnapshotWins) {
  TempDir dir("snap");
  SnapshotStore store(dir.str());
  store.write(100, make_payload(64, 1));
  store.write(250, make_payload(64, 2));

  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->log_offset, 250u);
  EXPECT_EQ(loaded->payload, make_payload(64, 2));
}

TEST(SnapshotStore, PruneBelowKeepsLatest) {
  TempDir dir("snap");
  SnapshotStore store(dir.str());
  store.write(100, make_payload(16, 1));
  store.write(200, make_payload(16, 2));
  store.write(300, make_payload(16, 3));
  EXPECT_EQ(store.prune_below(300), 2u);
  EXPECT_EQ(store.prune_below(300), 0u);  // idempotent

  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->log_offset, 300u);
}

TEST(SnapshotStore, CrashMidWriteLeavesOnlyIgnoredTmp) {
  TempDir dir("snap");
  SnapshotStore store(dir.str());
  store.write(100, make_payload(64, 1));
  {
    CrashHarness crash;
    crash.arm("snapshot.write.mid", 1);
    EXPECT_THROW(store.write(200, make_payload(64, 2)), SimulatedCrash);
    EXPECT_TRUE(crash.fired());
  }
  // The half-written .tmp was never renamed: the previous snapshot stands.
  std::vector<std::string> damage;
  const auto loaded = store.load_latest(&damage);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->log_offset, 100u);
  EXPECT_TRUE(damage.empty());
}

TEST(SnapshotStore, CrashBeforeFirstManifestFoundByScan) {
  TempDir dir("snap");
  SnapshotStore store(dir.str());
  {
    CrashHarness crash;
    crash.arm("snapshot.before_manifest", 1);
    EXPECT_THROW(store.write(150, make_payload(64, 5)), SimulatedCrash);
    EXPECT_TRUE(crash.fired());
  }
  // No MANIFEST exists, but the snapshot file itself was published
  // atomically; the directory scan recovers it with no damage.
  std::vector<std::string> damage;
  const auto loaded = store.load_latest(&damage);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->log_offset, 150u);
  EXPECT_EQ(loaded->payload, make_payload(64, 5));
  EXPECT_TRUE(damage.empty());
}

TEST(SnapshotStore, CrashBeforeManifestUpdateYieldsValidSnapshot) {
  TempDir dir("snap");
  SnapshotStore store(dir.str());
  store.write(100, make_payload(64, 1));
  {
    CrashHarness crash;
    crash.arm("snapshot.before_manifest", 1);
    EXPECT_THROW(store.write(200, make_payload(64, 2)), SimulatedCrash);
    EXPECT_TRUE(crash.fired());
  }
  // The stale MANIFEST still points at offset 100, which remains valid:
  // recovery gets an older-but-correct snapshot and simply replays more.
  const auto loaded = store.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->log_offset, 100u);
  EXPECT_EQ(loaded->payload, make_payload(64, 1));
}

TEST(SnapshotStore, CorruptManifestFallsBackToScan) {
  TempDir dir("snap");
  SnapshotStore store(dir.str());
  store.write(100, make_payload(64, 9));
  flip_byte((fs::path(dir.str()) / "MANIFEST").string(), -1);  // CRC tail

  std::vector<std::string> damage;
  const auto loaded = store.load_latest(&damage);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->log_offset, 100u);
  EXPECT_EQ(loaded->payload, make_payload(64, 9));
  ASSERT_FALSE(damage.empty());
  EXPECT_NE(damage[0].find("manifest"), std::string::npos);
}

TEST(SnapshotStore, CorruptSnapshotPayloadFallsBackToOlder) {
  TempDir dir("snap");
  SnapshotStore store(dir.str());
  store.write(100, make_payload(64, 1));
  store.write(200, make_payload(64, 2));
  store.prune_below(200);
  flip_byte(only_snapshot_file(dir.str()), -3);  // payload byte
  store.write(300, make_payload(64, 3));

  // Corrupt the NEWEST (manifest-pointed) one too, then make sure fallback
  // re-validates candidates newest-first and reports every rejection.
  std::vector<std::string> damage;
  auto loaded = store.load_latest(&damage);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->log_offset, 300u);
  EXPECT_TRUE(damage.empty());

  // Now corrupt 300 as well: both 200 and 300 are bad -> nothing loadable,
  // and both rejections are reported as damage.
  for (const auto& entry : fs::directory_iterator(dir.str())) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("snap-", 0) == 0 &&
        name.substr(name.size() - 5) == ".snap" &&
        name.find("00300") != std::string::npos) {
      flip_byte(entry.path().string(), -3);
    }
  }
  damage.clear();
  loaded = store.load_latest(&damage);
  EXPECT_FALSE(loaded.has_value());
  EXPECT_GE(damage.size(), 2u);
}

}  // namespace
}  // namespace espice::durability
