// Snapshot/restore round trip of the adaptive stack that the deterministic
// engine's recovery path does not exercise: MultiQueryOperator carrying
// EspiceShedder + ModelBuilder + OverloadDetector state.  A restored
// operator must continue bit-identically with the original from the cut
// onward -- through every phase boundary and under active shedding.
#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "core/multi_query_operator.hpp"
#include "durability/serial.hpp"

namespace espice {
namespace {

constexpr EventTypeId A = 0;
constexpr EventTypeId B = 1;
constexpr EventTypeId C = 2;
constexpr EventTypeId D = 3;
constexpr EventTypeId F = 4;

/// Blocks of 6 events: A B C D F F (one q0 and one q1 match per tumbling
/// window) -- same layout as the core multi_query_operator tests.
Event block_event(std::uint64_t seq) {
  static constexpr EventTypeId kLayout[6] = {A, B, C, D, F, F};
  Event e;
  e.type = kLayout[seq % 6];
  e.seq = seq;
  e.ts = static_cast<double>(seq);
  e.value = 1.0;
  return e;
}

MultiQueryOperatorConfig two_query_config() {
  MultiQueryOperatorConfig c;
  c.window.span_kind = WindowSpan::kCount;
  c.window.span_events = 6;
  c.window.open_kind = WindowOpen::kCountSlide;
  c.window.slide_events = 6;
  c.queries.push_back(MultiQuerySpec{
      "pairAB",
      make_sequence({element("A", TypeSet{A}), element("B", TypeSet{B})})});
  c.queries.push_back(MultiQuerySpec{
      "pairCD",
      make_sequence({element("C", TypeSet{C}), element("D", TypeSet{D})})});
  c.num_types = 5;
  c.training_windows = 30;
  c.detector.latency_bound = 1.0;
  c.detector.ewma_alpha = 1.0;
  return c;
}

struct Host {
  std::vector<std::vector<ComplexEvent>> matches;
  MultiQueryOperator op;
  std::uint64_t next_seq = 0;

  explicit Host(MultiQueryOperatorConfig config)
      : matches(config.queries.size()),
        op(std::move(config), [this](std::size_t q, const ComplexEvent& ce) {
          matches[q].push_back(ce);
        }) {}

  /// Deterministic drive schedule shared by original and restored hosts:
  /// the queue level is a pure function of the global sequence number.
  void run(std::size_t n, std::size_t queue_size) {
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t seq = next_seq++;
      op.observe_arrival(static_cast<double>(seq) / 1000.0);
      op.observe_cost(1e-3);
      op.push(block_event(seq));
      if (seq % 10 == 0) {
        op.on_tick(static_cast<double>(seq) / 1000.0, queue_size);
      }
    }
  }
};

void expect_hosts_identical(Host& restored, Host& original) {
  const MultiQueryStats a = original.op.stats();
  const MultiQueryStats b = restored.op.stats();
  EXPECT_EQ(b.events, a.events);
  EXPECT_EQ(b.memberships, a.memberships);
  EXPECT_EQ(b.memberships_kept, a.memberships_kept);
  EXPECT_EQ(b.windows_closed, a.windows_closed);
  EXPECT_EQ(b.shedding_active, a.shedding_active);
  ASSERT_EQ(b.queries.size(), a.queries.size());
  for (std::size_t q = 0; q < a.queries.size(); ++q) {
    EXPECT_EQ(b.queries[q].matches, a.queries[q].matches) << "query " << q;
    EXPECT_EQ(b.queries[q].decisions, a.queries[q].decisions) << "query " << q;
    EXPECT_EQ(b.queries[q].drops, a.queries[q].drops) << "query " << q;
    // The restored host only has post-cut matches; they must be a suffix of
    // the original's.
    ASSERT_LE(restored.matches[q].size(), original.matches[q].size())
        << "query " << q;
    const std::size_t skip =
        original.matches[q].size() - restored.matches[q].size();
    for (std::size_t m = 0; m < restored.matches[q].size(); ++m) {
      const ComplexEvent& ra = restored.matches[q][m];
      const ComplexEvent& oa = original.matches[q][skip + m];
      EXPECT_EQ(ra.window, oa.window) << "query " << q << " match " << m;
      ASSERT_EQ(ra.constituents.size(), oa.constituents.size());
      for (std::size_t c = 0; c < ra.constituents.size(); ++c) {
        EXPECT_EQ(ra.constituents[c].event.seq, oa.constituents[c].event.seq)
            << "query " << q << " match " << m;
        EXPECT_EQ(ra.constituents[c].position, oa.constituents[c].position)
            << "query " << q << " match " << m;
      }
    }
  }
}

/// Runs both hosts to `cut` events, snapshots the original into a fresh
/// operator, then drives both through the same tail and compares.
void round_trip_at(std::size_t cut, std::size_t cut_queue,
                   std::size_t tail_blocks, std::size_t tail_queue) {
  Host original(two_query_config());
  original.run(cut, cut_queue);

  durability::SnapshotWriter w;
  original.op.serialize(w);

  Host restored(two_query_config());
  durability::SnapshotReader r(std::span(w.buffer()));
  restored.op.restore(r);
  r.expect_done();
  restored.next_seq = original.next_seq;

  original.run(tail_blocks * 6, tail_queue);
  restored.run(tail_blocks * 6, tail_queue);
  expect_hosts_identical(restored, original);
}

TEST(MqoSnapshot, CutDuringTraining) {
  // Mid-training, mid-window (cut not a multiple of 6): the ModelBuilder's
  // partial statistics and the half-filled window must both survive.
  round_trip_at(15 * 6 + 3, 0, 40, 900);
}

TEST(MqoSnapshot, CutAtArmingBoundary) {
  round_trip_at(31 * 6, 0, 60, 900);
}

TEST(MqoSnapshot, CutUnderActiveShedding) {
  Host original(two_query_config());
  original.run(31 * 6, 0);           // train and arm
  original.run(40 * 6 + 2, 900);     // sustained overload, cut mid-window
  ASSERT_EQ(original.op.phase(), MultiQueryOperator::Phase::kShedding);
  ASSERT_TRUE(original.op.stats().shedding_active)
      << "cut must land under live shedding or the test is vacuous";

  durability::SnapshotWriter w;
  original.op.serialize(w);
  Host restored(two_query_config());
  durability::SnapshotReader r(std::span(w.buffer()));
  restored.op.restore(r);
  r.expect_done();
  restored.next_seq = original.next_seq;

  // Tail crosses overload -> calm -> overload, so restored detector
  // estimates and coordinator splits are all load-bearing.
  for (const std::size_t queue : {std::size_t{900}, std::size_t{0},
                                  std::size_t{900}}) {
    original.run(20 * 6, queue);
    restored.run(20 * 6, queue);
  }
  expect_hosts_identical(restored, original);

  const MultiQueryStats s = restored.op.stats();
  EXPECT_GT(s.queries[0].drops + s.queries[1].drops, 0u)
      << "no drops at all: vacuous differential";
}

TEST(MqoSnapshot, SizingPhaseSurvivesForTimeWindows) {
  auto make = [] {
    auto config = two_query_config();
    config.window = WindowSpec{};
    config.window.span_kind = WindowSpan::kTime;
    config.window.span_seconds = 6.0;
    config.window.open_kind = WindowOpen::kPredicate;
    config.window.opener = element("A", TypeSet{A});
    config.sizing_windows = 20;
    return config;
  };
  Host original(make());
  original.run(10 * 6 + 1, 0);  // mid-sizing
  ASSERT_EQ(original.op.phase(), MultiQueryOperator::Phase::kSizing);

  durability::SnapshotWriter w;
  original.op.serialize(w);
  Host restored(make());
  durability::SnapshotReader r(std::span(w.buffer()));
  restored.op.restore(r);
  r.expect_done();
  restored.next_seq = original.next_seq;

  original.run(60 * 6, 0);
  restored.run(60 * 6, 0);
  EXPECT_EQ(restored.op.phase(), original.op.phase());
  expect_hosts_identical(restored, original);
}

TEST(MqoSnapshot, RestoreRejectsQueryCountMismatch) {
  Host original(two_query_config());
  original.run(10 * 6, 0);
  durability::SnapshotWriter w;
  original.op.serialize(w);

  auto config = two_query_config();
  config.queries.pop_back();  // one query instead of two
  Host restored(std::move(config));
  durability::SnapshotReader r(std::span(w.buffer()));
  EXPECT_THROW(restored.op.restore(r), Error);
}

}  // namespace
}  // namespace espice
