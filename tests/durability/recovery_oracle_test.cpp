// Kill-anywhere recovery oracle: crash the engine at EVERY instrumented
// durability crash point, recover from disk, and hold the result to the
// uninterrupted golden -- bit-for-bit.
//
// The guarantee under test (the durability design's whole point): for a
// deterministic engine, [latest valid snapshot] + [log-tail replay] +
// [re-pushing the events the crash made non-durable] is indistinguishable
// from a run that never crashed.  Matches must agree byte-for-byte and the
// deterministic counters (events, memberships, keeps, windows, shed
// decisions/drops) must agree exactly; only wall-clock-coupled gauges
// (stall times, peak depths) are exempt.
//
// Method: a census run (fault hook installed, nothing armed) counts how
// often each crash point fires for the exact drive schedule, so the sweep
// enumerates real (point, occurrence) crash sites instead of guessing --
// first, middle and last occurrence of every point.  Each armed run then
// dies at its site through the exception barrier (destructors see exactly
// the bytes a kill would leave, since hook-armed writers split their
// writes), recovers into a fresh engine, re-pushes the lost tail and must
// reproduce the golden.  Seeded via ESPICE_TEST_SEED (5-seed CI matrix).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cep/event_time.hpp"
#include "common/rng.hpp"
#include "runtime/stream_engine.hpp"
#include "support/crash_point.hpp"
#include "support/temp_dir.hpp"
#include "support/test_seed.hpp"

namespace espice {
namespace {

using test_support::CrashHarness;
using test_support::SimulatedCrash;
using test_support::TempDir;

constexpr EventTypeId kNumTypes = 6;
constexpr EventTypeId kOpenerType = 1;
constexpr EventTypeId kCloserType = 2;
constexpr double kPredictedWs = 24.0;

// Drive schedule: batched pushes with periodic explicit checkpoints.  Small
// log segments (the 4 KiB floor) force segment rolls mid-run, so the
// segment open/seal crash points fire during the sweep too.
constexpr std::size_t kBatch = 64;
constexpr std::size_t kCheckpointEveryBatches = 3;
constexpr std::size_t kSegmentBytes = 4096;

WindowSpec make_spec(WindowSpan span_kind, WindowOpen open_kind) {
  WindowSpec spec;
  spec.span_kind = span_kind;
  spec.open_kind = open_kind;
  switch (span_kind) {
    case WindowSpan::kTime:
      spec.span_seconds = 7.5;
      break;
    case WindowSpan::kCount:
      spec.span_events = 24;
      break;
    case WindowSpan::kPredicate:
      spec.span_events = 40;  // safety cap
      spec.closer =
          element("close", TypeSet{kCloserType}, DirectionFilter::kAny);
      break;
  }
  if (open_kind == WindowOpen::kPredicate) {
    spec.opener = element("open", TypeSet{kOpenerType}, DirectionFilter::kAny);
  } else {
    spec.slide_events = 5;
  }
  return spec;
}

std::vector<Event> random_stream(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += rng.uniform(0.0, 1.2);
    e.ts = ts;
    e.value = rng.uniform(-2.0, 2.0);
    events.push_back(e);
  }
  return events;
}

/// Deterministic, stateless shedder (pure hash of seq x position x salt):
/// recomputes identically during log replay, so shedding state needs no
/// persistence beyond its counters.  mod == 0 keeps everything.
class HashShedder final : public Shedder {
 public:
  HashShedder(unsigned mod, unsigned salt) : mod_(mod), salt_(salt) {}

  bool should_drop(const Event& e, std::uint32_t position, double) override {
    const bool drop =
        mod_ != 0 && ((e.seq * 2654435761ULL) ^ (position * 40503ULL) ^
                      (salt_ * 7919ULL)) %
                             mod_ !=
                         0;
    count_decision(drop);
    return drop;
  }
  void on_command(const DropCommand&) override {}
  const char* name() const override { return "hash"; }

 private:
  unsigned mod_;
  unsigned salt_;
};

ShardQuery make_query(const WindowSpec& spec) {
  ShardQuery q;
  q.pattern =
      make_sequence({element("up", TypeSet{}, DirectionFilter::kRising),
                     element("down", TypeSet{}, DirectionFilter::kFalling)});
  q.window = spec;
  return q;
}

/// One scenario drives golden, census and every armed run identically.
struct Scenario {
  WindowSpec spec;
  std::size_t shards = 4;
  /// Per-query hash-shedder mods; one entry = legacy single-query config,
  /// more = multi-query registration over the shared window spec.
  std::vector<unsigned> drop_mods = {3};
  std::uint64_t snapshot_every_events = 0;  // 0 = explicit checkpoints only
  /// Event-time mode: reorder stage + watermarks ahead of the pipeline.
  std::optional<EventTimeConfig> et;
};

StreamEngineConfig make_config(const Scenario& s, const std::string& dir) {
  StreamEngineConfig config;
  config.shards = s.shards;
  config.ring_capacity = 256;
  config.query = make_query(s.spec);
  config.predicted_ws = kPredictedWs;
  if (s.drop_mods.size() == 1 && s.drop_mods[0] != 0) {
    const unsigned mod = s.drop_mods[0];
    config.shedder_factory = [mod](std::size_t) {
      return std::make_unique<HashShedder>(mod, 0);
    };
  }
  if (s.et.has_value()) config.event_time = s.et;
  if (!dir.empty()) {
    DurabilityConfig d;
    d.dir = dir;
    d.segment_bytes = kSegmentBytes;
    d.snapshot_every_events = s.snapshot_every_events;
    config.durability = d;
  }
  return config;
}

/// Builds an engine for the scenario; `dir` empty = memory-only golden.
std::unique_ptr<StreamEngine> build_engine(const Scenario& s,
                                           const std::string& dir) {
  auto engine = std::make_unique<StreamEngine>(make_config(s, dir));
  if (s.drop_mods.size() > 1) {
    for (std::size_t i = 0; i < s.drop_mods.size(); ++i) {
      EngineQuery q;
      q.name = "q" + std::to_string(i);
      q.query = make_query(s.spec);
      q.predicted_ws = kPredictedWs;
      if (const unsigned mod = s.drop_mods[i]; mod != 0) {
        const auto salt = static_cast<unsigned>(i);
        q.shedder_factory = [mod, salt](std::size_t) {
          return std::make_unique<HashShedder>(mod, salt);
        };
      }
      engine->add_query(std::move(q));
    }
  }
  return engine;
}

/// The crash-prone part of the schedule: batched pushes + periodic
/// checkpoints (durable engines only).  A SimulatedCrash propagates to the
/// caller from whichever push_batch()/checkpoint() its site lives in.
void drive(StreamEngine& engine, std::span<const Event> events,
           bool checkpoints) {
  std::size_t batch_no = 0;
  for (std::size_t i = 0; i < events.size(); i += kBatch) {
    engine.push_batch(events.subspan(i, std::min(kBatch, events.size() - i)));
    if (checkpoints && ++batch_no % kCheckpointEveryBatches == 0) {
      engine.checkpoint();
    }
  }
}

void expect_same_matches(const std::vector<ComplexEvent>& actual,
                         const std::vector<ComplexEvent>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const ComplexEvent& a = actual[i];
    const ComplexEvent& b = expected[i];
    EXPECT_EQ(a.window, b.window) << "match " << i;
    EXPECT_DOUBLE_EQ(a.detection_ts, b.detection_ts) << "match " << i;
    ASSERT_EQ(a.constituents.size(), b.constituents.size()) << "match " << i;
    for (std::size_t c = 0; c < a.constituents.size(); ++c) {
      EXPECT_EQ(a.constituents[c].element, b.constituents[c].element)
          << "match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].position, b.constituents[c].position)
          << "match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].event.seq, b.constituents[c].event.seq)
          << "match " << i << " constituent " << c;
      EXPECT_EQ(a.constituents[c].event.type, b.constituents[c].event.type)
          << "match " << i << " constituent " << c;
    }
  }
}

/// Full bit-identity check: matches byte-for-byte plus every deterministic
/// counter.  Wall-clock gauges (stall seconds, peak depth, rates) exempt.
void expect_same_reports(const EngineReport& actual,
                         const EngineReport& expected) {
  EXPECT_EQ(actual.events, expected.events);
  expect_same_matches(actual.matches, expected.matches);
  ASSERT_EQ(actual.queries.size(), expected.queries.size());
  for (std::size_t q = 0; q < expected.queries.size(); ++q) {
    const QueryReport& a = actual.queries[q];
    const QueryReport& b = expected.queries[q];
    expect_same_matches(a.matches, b.matches);
    EXPECT_EQ(a.memberships, b.memberships) << "query " << q;
    EXPECT_EQ(a.memberships_kept, b.memberships_kept) << "query " << q;
    EXPECT_EQ(a.shed_decisions, b.shed_decisions) << "query " << q;
    EXPECT_EQ(a.shed_drops, b.shed_drops) << "query " << q;
    // Event-time revisions must survive recovery record for record.
    ASSERT_EQ(a.revisions.size(), b.revisions.size()) << "query " << q;
    for (std::size_t i = 0; i < b.revisions.size(); ++i) {
      EXPECT_EQ(a.revisions[i].late_seq, b.revisions[i].late_seq);
      EXPECT_EQ(a.revisions[i].window, b.revisions[i].window);
      EXPECT_EQ(a.revisions[i].revision, b.revisions[i].revision);
      expect_same_matches(a.revisions[i].matches, b.revisions[i].matches);
    }
  }
  // Event-time classification and diversion are deterministic.  Punctuation
  // counts and watermark seqs are NOT compared: router heartbeat cadence
  // depends on push granularity (the recovery tail is re-pushed with
  // different batch boundaries), and heartbeats are output-neutral by
  // design.
  EXPECT_EQ(actual.late_events, expected.late_events);
  EXPECT_EQ(actual.late_dropped, expected.late_dropped);
  EXPECT_EQ(actual.late_side_output, expected.late_side_output);
  EXPECT_EQ(actual.revisions, expected.revisions);
  ASSERT_EQ(actual.side_outputs.size(), expected.side_outputs.size());
  for (std::size_t i = 0; i < expected.side_outputs.size(); ++i) {
    EXPECT_EQ(actual.side_outputs[i].event.seq,
              expected.side_outputs[i].event.seq);
    EXPECT_EQ(actual.side_outputs[i].windows,
              expected.side_outputs[i].windows);
  }
  ASSERT_EQ(actual.shards.size(), expected.shards.size());
  for (std::size_t i = 0; i < expected.shards.size(); ++i) {
    const ShardStats& a = actual.shards[i];
    const ShardStats& b = expected.shards[i];
    EXPECT_EQ(a.events, b.events) << "shard " << i;
    EXPECT_EQ(a.memberships, b.memberships) << "shard " << i;
    EXPECT_EQ(a.memberships_kept, b.memberships_kept) << "shard " << i;
    EXPECT_EQ(a.windows_closed, b.windows_closed) << "shard " << i;
    EXPECT_EQ(a.matches, b.matches) << "shard " << i;
    EXPECT_EQ(a.shed_decisions, b.shed_decisions) << "shard " << i;
    EXPECT_EQ(a.shed_drops, b.shed_drops) << "shard " << i;
    EXPECT_EQ(a.late_events, b.late_events) << "shard " << i;
    EXPECT_EQ(a.late_dropped, b.late_dropped) << "shard " << i;
    EXPECT_EQ(a.late_side_output, b.late_side_output) << "shard " << i;
    EXPECT_EQ(a.revisions, b.revisions) << "shard " << i;
  }
}

/// Census pass: the durable schedule with the fault hook installed but
/// nothing armed.  Returns the uninterrupted durable report (which must
/// already equal the golden) and the per-point fire counts that the armed
/// sweep enumerates.  Hook-armed split writes see the same point sequence
/// the armed runs will.
EngineReport census_run(const Scenario& s, std::span<const Event> events,
                        std::map<std::string, std::uint64_t>& counts_out) {
  TempDir dir("census");
  CrashHarness harness;
  auto engine = build_engine(s, dir.str());
  drive(*engine, events, /*checkpoints=*/true);
  EngineReport report = engine->finish();
  counts_out = harness.counts();
  return report;
}

/// One armed run: die at (point, occurrence), recover into a fresh engine,
/// re-push the non-durable tail, finish.  Returns the recovered report.
EngineReport crash_and_recover(const Scenario& s,
                               std::span<const Event> events,
                               const std::string& point,
                               std::uint64_t occurrence,
                               RecoveryReport* recovery_out = nullptr) {
  TempDir dir("armed");
  {
    CrashHarness harness;
    harness.arm(point, occurrence);
    auto engine = build_engine(s, dir.str());
    bool crashed = false;
    try {
      drive(*engine, events, /*checkpoints=*/true);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    EXPECT_TRUE(crashed) << point << "#" << occurrence
                         << " never fired (stale census?)";
    EXPECT_TRUE(harness.fired());
    // Engine destructor: the same cleanup an aborted process would skip --
    // recovery must not depend on it beyond the bytes already on disk.
  }

  auto engine = build_engine(s, dir.str());
  const RecoveryReport rep = engine->recover_and_start();
  EXPECT_LE(rep.durable_events, events.size());
  EXPECT_LE(rep.snapshot_offset, rep.durable_events);
  EXPECT_EQ(rep.replayed_events, rep.durable_events - rep.snapshot_offset);
  EXPECT_EQ(engine->pushed(), rep.durable_events);
  if (recovery_out != nullptr) *recovery_out = rep;

  // The source re-pushes what never became durable.  No checkpoints on the
  // tail: recovery correctness must not depend on re-checkpointing.
  // durable_events counts punctuation log records too, so the resume
  // offset into the data-only `events` vector is data_pushed().
  drive(*engine, std::span(events).subspan(engine->data_pushed()),
        /*checkpoints=*/false);
  return engine->finish();
}

/// first / middle / last occurrence of every point the census saw.
std::vector<std::pair<std::string, std::uint64_t>> sweep_sites(
    const std::map<std::string, std::uint64_t>& counts) {
  std::vector<std::pair<std::string, std::uint64_t>> sites;
  for (const auto& [point, n] : counts) {
    sites.emplace_back(point, 1);
    if (n >= 3) sites.emplace_back(point, (n + 1) / 2);
    if (n >= 2) sites.emplace_back(point, n);
  }
  return sites;
}

// --- the sweep ---------------------------------------------------------------

// Representative configuration, exhaustive sites: every crash point the
// schedule reaches, at its first, middle and last occurrence.  Shedding
// armed; K = 4.
TEST(RecoveryOracle, KillAnywhereReproducesGolden) {
  const std::uint64_t seed = test_support::test_seed(71);
  SCOPED_TRACE(test_support::seed_trace(seed));
  Scenario s;
  s.spec = make_spec(WindowSpan::kCount, WindowOpen::kCountSlide);
  const auto events = random_stream(seed, 1200);

  auto golden_engine = build_engine(s, "");
  drive(*golden_engine, events, /*checkpoints=*/false);
  const EngineReport golden = golden_engine->finish();
  ASSERT_GT(golden.matches.size(), 0u) << "vacuous stream";

  // The uninterrupted durable run must already equal the memory-only run:
  // logging and checkpointing are pure observers of the pipeline.
  std::map<std::string, std::uint64_t> counts;
  const EngineReport durable = census_run(s, events, counts);
  expect_same_reports(durable, golden);
  ASSERT_GE(counts.size(), 6u) << "census too thin: crash points missing";
  ASSERT_TRUE(counts.count("log.append.mid_record"));
  ASSERT_TRUE(counts.count("log.segment.seal"))
      << "segments never rolled: segment_bytes too large for the stream";
  ASSERT_TRUE(counts.count("snapshot.before_manifest"));

  for (const auto& [point, occurrence] : sweep_sites(counts)) {
    SCOPED_TRACE(point + "#" + std::to_string(occurrence));
    const EngineReport recovered =
        crash_and_recover(s, events, point, occurrence);
    expect_same_reports(recovered, golden);
  }
}

// Every span x open kind, K in {1, 4}: sampled sites per configuration
// (torn record mid-stream, published-but-unmanifested snapshot, last
// occurrence of whatever fired most) on smaller streams.
TEST(RecoveryOracle, AllWindowKindsAndShardCounts) {
  const std::uint64_t seed = test_support::test_seed(72);
  SCOPED_TRACE(test_support::seed_trace(seed));
  const auto events = random_stream(seed, 600);

  for (const WindowSpan span :
       {WindowSpan::kTime, WindowSpan::kCount, WindowSpan::kPredicate}) {
    for (const WindowOpen open :
         {WindowOpen::kPredicate, WindowOpen::kCountSlide}) {
      for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE("span=" + std::to_string(static_cast<int>(span)) +
                     " open=" + std::to_string(static_cast<int>(open)) +
                     " K=" + std::to_string(shards));
        Scenario s;
        s.spec = make_spec(span, open);
        s.shards = shards;

        auto golden_engine = build_engine(s, "");
        drive(*golden_engine, events, /*checkpoints=*/false);
        const EngineReport golden = golden_engine->finish();

        std::map<std::string, std::uint64_t> counts;
        const EngineReport durable = census_run(s, events, counts);
        expect_same_reports(durable, golden);

        const std::uint64_t mid_append =
            (counts["log.append.mid_record"] + 1) / 2;
        for (const auto& [point, occurrence] :
             {std::pair<std::string, std::uint64_t>{"log.append.mid_record",
                                                    mid_append},
              {"snapshot.before_manifest", 1},
              {"snapshot.manifest.mid", counts["snapshot.manifest.mid"]}}) {
          ASSERT_GT(counts[point], 0u) << point << " never fired";
          SCOPED_TRACE(point + "#" + std::to_string(occurrence));
          const EngineReport recovered =
              crash_and_recover(s, events, point, occurrence);
          expect_same_reports(recovered, golden);
        }
      }
    }
  }
}

// N = 5 queries sharing one window group, per-query shedders diverging
// (including a keep-all query): the per-query keep masks and all per-query
// outputs must survive the crash/recover cycle.
TEST(RecoveryOracle, MultiQuerySharedWindowsRecover) {
  const std::uint64_t seed = test_support::test_seed(73);
  SCOPED_TRACE(test_support::seed_trace(seed));
  Scenario s;
  s.spec = make_spec(WindowSpan::kCount, WindowOpen::kCountSlide);
  s.drop_mods = {0, 2, 3, 5, 7};
  const auto events = random_stream(seed, 900);

  auto golden_engine = build_engine(s, "");
  drive(*golden_engine, events, /*checkpoints=*/false);
  const EngineReport golden = golden_engine->finish();
  ASSERT_EQ(golden.queries.size(), 5u);
  ASSERT_GT(golden.queries[0].matches.size(), 0u);

  std::map<std::string, std::uint64_t> counts;
  const EngineReport durable = census_run(s, events, counts);
  expect_same_reports(durable, golden);

  for (const auto& [point, occurrence] : sweep_sites(counts)) {
    SCOPED_TRACE(point + "#" + std::to_string(occurrence));
    const EngineReport recovered =
        crash_and_recover(s, events, point, occurrence);
    expect_same_reports(recovered, golden);
  }
}

// Crash before the first checkpoint: no snapshot exists, recovery replays
// the whole durable prefix from the log alone.
TEST(RecoveryOracle, RecoversFromLogAloneWithoutSnapshot) {
  const std::uint64_t seed = test_support::test_seed(74);
  SCOPED_TRACE(test_support::seed_trace(seed));
  Scenario s;
  s.spec = make_spec(WindowSpan::kTime, WindowOpen::kPredicate);
  const auto events = random_stream(seed, 400);

  auto golden_engine = build_engine(s, "");
  drive(*golden_engine, events, /*checkpoints=*/false);
  const EngineReport golden = golden_engine->finish();

  // 2nd append record: inside the first checkpoint interval.
  RecoveryReport rep;
  const EngineReport recovered =
      crash_and_recover(s, events, "log.append.mid_record", 2, &rep);
  EXPECT_EQ(rep.snapshot_offset, 0u);
  EXPECT_EQ(rep.replayed_events, rep.durable_events);
  EXPECT_EQ(rep.durable_events, kBatch) << "exactly one whole record durable";
  EXPECT_FALSE(rep.damage.empty()) << "the torn record must be reported";
  expect_same_reports(recovered, golden);
}

// Auto-checkpointing (snapshot_every_events) instead of explicit calls:
// the crash lands between auto-checkpoints and recovery starts from one.
TEST(RecoveryOracle, AutoCheckpointRecovers) {
  const std::uint64_t seed = test_support::test_seed(75);
  SCOPED_TRACE(test_support::seed_trace(seed));
  Scenario s;
  s.spec = make_spec(WindowSpan::kCount, WindowOpen::kPredicate);
  s.snapshot_every_events = 250;
  const auto events = random_stream(seed, 1000);

  auto golden_engine = build_engine(s, "");
  drive(*golden_engine, events, /*checkpoints=*/false);
  const EngineReport golden = golden_engine->finish();

  TempDir dir("auto");
  {
    CrashHarness harness;
    // Let two auto-checkpoints publish, then tear the next log append.
    harness.arm("log.append.mid_record", 10);
    auto engine = build_engine(s, dir.str());
    bool crashed = false;
    try {
      drive(*engine, events, /*checkpoints=*/false);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed);
  }
  auto engine = build_engine(s, dir.str());
  const RecoveryReport rep = engine->recover_and_start();
  EXPECT_GT(rep.snapshot_offset, 0u) << "auto-checkpoint never published";
  EXPECT_LT(rep.replayed_events, rep.durable_events);
  drive(*engine, std::span(events).subspan(rep.durable_events),
        /*checkpoints=*/false);
  expect_same_reports(engine->finish(), golden);
}

// Two crashes back to back: recover, make progress, checkpoint, crash
// again, recover again.  The second recovery stacks on the first one's
// snapshot and the pruned/rolled log.
TEST(RecoveryOracle, SurvivesRepeatedCrashes) {
  const std::uint64_t seed = test_support::test_seed(76);
  SCOPED_TRACE(test_support::seed_trace(seed));
  Scenario s;
  s.spec = make_spec(WindowSpan::kCount, WindowOpen::kCountSlide);
  const auto events = random_stream(seed, 900);

  auto golden_engine = build_engine(s, "");
  drive(*golden_engine, events, /*checkpoints=*/false);
  const EngineReport golden = golden_engine->finish();

  TempDir dir("twice");
  std::uint64_t resume_at = 0;
  {
    CrashHarness harness;
    harness.arm("snapshot.write.mid", 2);
    auto engine = build_engine(s, dir.str());
    bool crashed = false;
    try {
      drive(*engine, events, /*checkpoints=*/true);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed);
  }
  {
    CrashHarness harness;
    auto engine = build_engine(s, dir.str());
    const RecoveryReport rep = engine->recover_and_start();
    resume_at = rep.durable_events;
    // Progress + a fresh checkpoint after recovery, then die mid-append.
    harness.arm("log.append.mid_record", 3);
    bool crashed = false;
    try {
      drive(*engine, std::span(events).subspan(resume_at),
            /*checkpoints=*/true);
    } catch (const SimulatedCrash&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed);
  }
  auto engine = build_engine(s, dir.str());
  const RecoveryReport rep = engine->recover_and_start();
  EXPECT_GT(rep.snapshot_offset, 0u)
      << "the post-recovery checkpoint must be the restore base";
  drive(*engine, std::span(events).subspan(rep.durable_events),
        /*checkpoints=*/false);
  expect_same_reports(engine->finish(), golden);
}

// --- event-time recovery -----------------------------------------------------

/// Bounded shuffle (Fisher-Yates within consecutive blocks), so the
/// measured disorder stays < block.
std::vector<Event> block_shuffle(std::vector<Event> events, std::size_t block,
                                 std::uint64_t seed) {
  Rng rng(seed ^ 0xd15c0de5ULL);
  for (std::size_t base = 0; base < events.size(); base += block) {
    const std::size_t end = std::min(base + block, events.size());
    for (std::size_t i = end - 1; i > base; --i) {
      const std::size_t j = base + rng.uniform_int(i - base + 1);
      std::swap(events[i], events[j]);
    }
  }
  return events;
}

/// Displaces the event with sequence number `seq` by `by` positions, so
/// its lateness exceeds a disorder bound < `by` and it is classified late.
void displace(std::vector<Event>& events, std::uint64_t seq, std::size_t by) {
  const auto it = std::find_if(events.begin(), events.end(),
                               [&](const Event& e) { return e.seq == seq; });
  ASSERT_NE(it, events.end());
  const Event straggler = *it;
  const std::size_t at = static_cast<std::size_t>(it - events.begin());
  events.erase(it);
  events.insert(events.begin() +
                    static_cast<std::ptrdiff_t>(
                        std::min(at + by, events.size())),
                straggler);
}

// Kill-anywhere over a disordered stream with the revise policy armed:
// checkpoints cut while the reorder stage holds buffered events and the
// retained-window stores are populated, so recovery must round-trip the
// full event-time state (buffer, counters, retained windows, emitted
// revisions) to reproduce the golden bit for bit.
TEST(RecoveryOracle, EventTimeDisorderedKillAnywhere) {
  const std::uint64_t seed = test_support::test_seed(77);
  SCOPED_TRACE(test_support::seed_trace(seed));
  Scenario s;
  s.spec = make_spec(WindowSpan::kCount, WindowOpen::kCountSlide);
  s.et.emplace();
  s.et->disorder_bound = 32;
  s.et->late_policy = LatePolicy::kRevise;
  s.et->revise_horizon_windows = 32;

  auto events = block_shuffle(random_stream(seed, 1000), 24, seed);
  // Two stragglers displaced far beyond the bound: genuinely late, still
  // within the retention horizon when they land.
  displace(events, 300, 100);
  displace(events, 601, 100);

  auto golden_engine = build_engine(s, "");
  drive(*golden_engine, events, /*checkpoints=*/false);
  const EngineReport golden = golden_engine->finish();
  ASSERT_GT(golden.matches.size(), 0u) << "vacuous stream";
  ASSERT_GT(golden.late_events, 0u) << "stragglers were not convicted";
  ASSERT_GT(golden.revisions, 0u) << "revise path never exercised";
  bool buffered = false;
  for (const ShardStats& st : golden.shards) {
    buffered |= st.reorder_peak_buffered > 0;
  }
  ASSERT_TRUE(buffered) << "reorder stage never held an event";

  std::map<std::string, std::uint64_t> counts;
  const EngineReport durable = census_run(s, events, counts);
  expect_same_reports(durable, golden);
  ASSERT_TRUE(counts.count("snapshot.before_manifest"))
      << "no checkpoint cut while the stage was active";

  for (const auto& [point, occurrence] : sweep_sites(counts)) {
    SCOPED_TRACE(point + "#" + std::to_string(occurrence));
    const EngineReport recovered =
        crash_and_recover(s, events, point, occurrence);
    expect_same_reports(recovered, golden);
  }
}

// Heartbeat watermarks under crash/recovery: the router's heartbeat state
// (cadence counter, max routed seq) is part of the snapshot header, logged
// heartbeats replay through the normal path, and the output stays
// bit-identical to the uninterrupted run even though the recovery tail is
// re-pushed with different batch boundaries (heartbeats are output-neutral).
TEST(RecoveryOracle, EventTimeHeartbeatRecovery) {
  const std::uint64_t seed = test_support::test_seed(78);
  SCOPED_TRACE(test_support::seed_trace(seed));
  Scenario s;
  s.spec = make_spec(WindowSpan::kTime, WindowOpen::kPredicate);
  s.et.emplace();
  s.et->disorder_bound = 32;
  s.et->heartbeat_events = 150;

  const auto events = block_shuffle(random_stream(seed, 800), 24, seed);

  auto golden_engine = build_engine(s, "");
  drive(*golden_engine, events, /*checkpoints=*/false);
  const EngineReport golden = golden_engine->finish();
  ASSERT_GT(golden.punctuations, 0u) << "heartbeats never fired";
  EXPECT_EQ(golden.late_events, 0u) << "within-bound shuffle must stay on time";

  std::map<std::string, std::uint64_t> counts;
  const EngineReport durable = census_run(s, events, counts);
  expect_same_reports(durable, golden);
  EXPECT_EQ(durable.punctuations, golden.punctuations)
      << "identical schedule, identical heartbeats";

  const std::uint64_t mid_append = (counts["log.append.mid_record"] + 1) / 2;
  for (const auto& [point, occurrence] :
       {std::pair<std::string, std::uint64_t>{"log.append.mid_record",
                                              mid_append},
        {"snapshot.before_manifest", 1},
        {"snapshot.manifest.mid", counts["snapshot.manifest.mid"]}}) {
    ASSERT_GT(counts[point], 0u) << point << " never fired";
    SCOPED_TRACE(point + "#" + std::to_string(occurrence));
    const EngineReport recovered =
        crash_and_recover(s, events, point, occurrence);
    expect_same_reports(recovered, golden);
  }
}

// Guard rails around the feature's contract.
TEST(RecoveryOracle, DurabilityConfigIsValidated) {
  TempDir dir("cfg");
  // Adaptive mode cannot honor the bit-identical recovery guarantee.
  StreamEngineConfig adaptive;
  adaptive.shards = 1;
  adaptive.adaptive.emplace();
  adaptive.durability.emplace();
  adaptive.durability->dir = dir.str();
  EXPECT_THROW(StreamEngine{adaptive}, ConfigError);

  Scenario s;
  s.spec = make_spec(WindowSpan::kCount, WindowOpen::kCountSlide);
  StreamEngineConfig no_dir = make_config(s, "x");
  no_dir.durability->dir.clear();
  EXPECT_THROW(StreamEngine{no_dir}, ConfigError);

  // checkpoint()/recover_and_start() need durability configured.
  StreamEngine memory_only(make_config(s, ""));
  EXPECT_THROW(memory_only.checkpoint(), ConfigError);
  EXPECT_THROW(memory_only.recover_and_start(), ConfigError);
}

}  // namespace
}  // namespace espice
