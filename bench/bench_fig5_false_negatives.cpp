// Figure 5: percentage of false negatives for Q1, Q2 (pattern-size sweeps,
// first + last selection) and Q3, Q4 (window-size sweeps, first selection),
// each under input rates R1 = 1.2*th and R2 = 1.4*th, for eSPICE and BL.
//
// Expected shape (paper): eSPICE << BL everywhere; %FN grows with the
// pattern-size/window-size ratio and with the rate; the exact-sequence
// queries Q3/Q4 are near zero for eSPICE.
#include <iostream>

#include "smoke.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace espice;

namespace {

struct Sweep {
  std::string title;
  std::vector<QueryDef> queries;
  std::vector<std::string> labels;
  std::string x_name;
  std::size_t num_types;
  const std::vector<Event>* events;
  std::size_t train;
  std::size_t measure;
  std::size_t bin_size = 1;
};

void run_sweep(const Sweep& sweep) {
  print_section(std::cout, sweep.title);
  Table table({sweep.x_name, "golden", "R1 eSPICE %FN", "R1 BL %FN",
               "R2 eSPICE %FN", "R2 BL %FN"});
  for (std::size_t i = 0; i < sweep.queries.size(); ++i) {
    ExperimentConfig config;
    config.query = sweep.queries[i];
    config.num_types = sweep.num_types;
    config.train_events = sweep.train;
    config.measure_events = sweep.measure;
    config.bin_size = sweep.bin_size;

    // One training pass serves all four cells of this row.
    const TrainedModel trained = train_model(
        config.query, config.num_types,
        std::span<const Event>(*sweep.events).subspan(0, sweep.train),
        config.bin_size);

    std::vector<std::string> row{sweep.labels[i], ""};
    for (const double rate : {1.2, 1.4}) {
      for (const ShedderKind kind : {ShedderKind::kEspice, ShedderKind::kBaseline}) {
        config.rate_factor = rate;
        config.shedder = kind;
        const auto r = run_experiment(config, *sweep.events, &trained);
        row[1] = std::to_string(r.quality.golden);
        row.push_back(fmt(r.quality.fn_percent(), 1));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  espice::bench_support::init_smoke(argc, argv);
  std::cout << "Figure 5: false negatives (lower is better; eSPICE vs BL)\n";

  // --- RTLS / Q1 -----------------------------------------------------------
  TypeRegistry rtls_reg;
  RtlsGenerator rtls(RtlsConfig{}, rtls_reg);
  const auto rtls_events = rtls.generate(espice::bench_support::scaled(260'000));
  for (const auto sel : {SelectionPolicy::kFirst, SelectionPolicy::kLast}) {
    Sweep sweep;
    sweep.title = std::string("Fig 5") + (sel == SelectionPolicy::kFirst ? "a" : "b") +
                  ": Q1, " +
                  (sel == SelectionPolicy::kFirst ? "first" : "last") +
                  " selection (RTLS, ws = 15 s)";
    for (const std::size_t n : {2u, 3u, 4u, 5u, 6u}) {
      sweep.queries.push_back(make_q1(rtls, n, 15.0, sel));
      sweep.labels.push_back(std::to_string(n));
    }
    sweep.x_name = "pattern size";
    sweep.num_types = rtls_reg.size();
    sweep.events = &rtls_events;
    sweep.train = espice::bench_support::scaled(130'000);
    sweep.measure = espice::bench_support::scaled(120'000);
    run_sweep(sweep);
  }

  // --- NYSE / Q2 -----------------------------------------------------------
  TypeRegistry stock_reg;
  StockGenerator stock(StockConfig{}, stock_reg);
  const auto stock_events = stock.generate(espice::bench_support::scaled(620'000));
  for (const auto sel : {SelectionPolicy::kFirst, SelectionPolicy::kLast}) {
    Sweep sweep;
    sweep.title = std::string("Fig 5") + (sel == SelectionPolicy::kFirst ? "c" : "d") +
                  ": Q2, " +
                  (sel == SelectionPolicy::kFirst ? "first" : "last") +
                  " selection (NYSE, ws = 240 s)";
    for (const std::size_t n : {10u, 20u, 30u, 40u, 50u, 60u, 70u, 80u}) {
      sweep.queries.push_back(make_q2(stock, n, 240.0, sel));
      sweep.labels.push_back(std::to_string(n));
    }
    sweep.x_name = "pattern size";
    sweep.num_types = stock_reg.size();
    sweep.events = &stock_events;
    sweep.train = espice::bench_support::scaled(470'000);
    sweep.measure = espice::bench_support::scaled(140'000);
    sweep.bin_size = 4;
    run_sweep(sweep);
  }

  // --- NYSE / Q3, Q4 ---------------------------------------------------------
  // Window sizes below ~1200 events (~2.4 min) cannot contain the full
  // reaction chain of the synthetic feed, so no golden matches exist there
  // (see EXPERIMENTS.md); the sweep starts at 1200.
  {
    Sweep sweep;
    sweep.title = "Fig 5e: Q3, first selection (NYSE, count windows)";
    for (const std::size_t ws : {1200u, 1500u, 1800u, 2000u}) {
      sweep.queries.push_back(make_q3(stock, ws));
      sweep.labels.push_back(std::to_string(ws));
    }
    sweep.x_name = "window size";
    sweep.num_types = stock_reg.size();
    sweep.events = &stock_events;
    sweep.train = espice::bench_support::scaled(470'000);
    sweep.measure = espice::bench_support::scaled(140'000);
    sweep.bin_size = 4;
    run_sweep(sweep);
  }
  {
    Sweep sweep;
    sweep.title = "Fig 5f: Q4, first selection (NYSE, count windows, slide 100)";
    for (const std::size_t ws : {1200u, 1500u, 1800u, 2000u}) {
      sweep.queries.push_back(make_q4(stock, ws));
      sweep.labels.push_back(std::to_string(ws));
    }
    sweep.x_name = "window size";
    sweep.num_types = stock_reg.size();
    sweep.events = &stock_events;
    sweep.train = espice::bench_support::scaled(470'000);
    sweep.measure = espice::bench_support::scaled(140'000);
    sweep.bin_size = 4;
    run_sweep(sweep);
  }
  return 0;
}
