// Figure 9: impact of the bin size bs on quality (Q1 n=5, Q2 n=20, first
// selection, R1/R2).
//
// Expected shape (paper): Q1 is largely insensitive; Q2 degrades for large
// bins because they blur the positions that matter.  Note (EXPERIMENTS.md):
// with a finite synthetic training stream, small bins additionally suffer
// from statistical sparsity on Q2's 500-type x 2000-position table, so the
// measured curve can be U-shaped -- the large-bin degradation the paper
// reports is the right-hand branch.
#include <iostream>

#include "smoke.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace espice;

namespace {

void run_family(const std::string& title, const QueryDef& query,
                std::size_t num_types, const std::vector<Event>& events,
                std::size_t train, std::size_t measure,
                const std::vector<std::size_t>& bin_sizes) {
  print_section(std::cout, title);
  Table table({"bin size", "golden", "R1 %FN", "R2 %FN"});
  for (const std::size_t bs : bin_sizes) {
    ExperimentConfig config;
    config.query = query;
    config.num_types = num_types;
    config.train_events = train;
    config.measure_events = measure;
    config.bin_size = bs;
    config.shedder = ShedderKind::kEspice;
    const TrainedModel trained = train_model(
        query, num_types, std::span<const Event>(events).subspan(0, train), bs);
    std::vector<std::string> row{std::to_string(bs), ""};
    for (const double rate : {1.2, 1.4}) {
      config.rate_factor = rate;
      const auto r = run_experiment(config, events, &trained);
      row[1] = std::to_string(r.quality.golden);
      row.push_back(fmt(r.quality.fn_percent(), 1));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  espice::bench_support::init_smoke(argc, argv);
  std::cout << "Figure 9: impact of bin size on quality\n";

  TypeRegistry rtls_reg;
  RtlsGenerator rtls(RtlsConfig{}, rtls_reg);
  const auto rtls_events = rtls.generate(espice::bench_support::scaled(260'000));
  run_family("Fig 9a: Q1 (n=5, ws=15 s)", make_q1(rtls, 5), rtls_reg.size(),
             rtls_events, espice::bench_support::scaled(130'000), espice::bench_support::scaled(120'000), {1, 2, 4, 8, 16, 32, 64});

  TypeRegistry stock_reg;
  StockGenerator stock(StockConfig{}, stock_reg);
  const auto stock_events = stock.generate(espice::bench_support::scaled(620'000));
  // The sweep extends past the paper's 64 to expose the blur-degradation
  // branch: with a finite synthetic training stream, small bins are
  // additionally penalized by statistical sparsity (see EXPERIMENTS.md).
  run_family("Fig 9b: Q2 (n=20, ws=240 s)", make_q2(stock, 20),
             stock_reg.size(), stock_events, espice::bench_support::scaled(470'000), espice::bench_support::scaled(140'000),
             {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});

  return 0;
}
