// Shared --smoke / ESPICE_BENCH_SMOKE handling for the bench suite.
//
// CI runs every bench_* target in smoke mode (see the bench-smoke job):
// streams and train/measure budgets shrink by a fixed factor so the whole
// suite finishes in seconds while still exercising the full pipeline
// (generate -> train -> shed -> score).  Smoke-mode QUALITY numbers are not
// meaningful -- the paper-figure tables need the full budgets -- but every
// bench must still run to completion and exit zero, and the parity-gated
// benches (sharded / multi-query / batch-ingest) keep their exact-match
// assertions at either size.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <cstring>

namespace espice::bench_support {

inline bool& smoke_flag() {
  static bool smoke = false;
  return smoke;
}

/// Call once at the top of main(); remembers the result for scaled().
inline bool init_smoke(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  if (const char* env = std::getenv("ESPICE_BENCH_SMOKE");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    smoke = true;
  }
  smoke_flag() = smoke;
  return smoke;
}

/// Event/train/measure budget under the current mode (smoke: 1/8th).
inline std::size_t scaled(std::size_t n) {
  return smoke_flag() ? n / 8 : n;
}

}  // namespace espice::bench_support
