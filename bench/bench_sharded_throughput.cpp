// Sharded StreamEngine throughput: events/sec at K = 1, 2, 4, 8 shards on
// an overlap-heavy workload, with exact-match parity asserted against the
// serial per-substream golden at every K.
//
// Parity is the hard gate: any divergence between the concurrent engine and
// the union of serial run_pipeline() runs is a correctness bug, so the
// bench exits nonzero on mismatch (CI fails).  Speedup is hardware-bound:
// shards run on real threads, so the K = 4 target (>= 2x over K = 1) is
// only reachable with >= 4 hardware threads; the JSON records the machine's
// core count next to the measured ratios so the trajectory is
// interpretable.
//
// The single-core K=4/K=1 ratio is its own acceptance field
// (k4_vs_k1_ratio): sharding must not COST throughput when the threads
// merely time-slice one core.  The measurement is best-of-6 per K over a
// 2M-event stream -- cross-K ratios from best-of-2 over short runs swing
// +-10% from scheduler noise alone.  With the pow2-mask router, hoisted
// key extraction and the shards' idle backoff the ratio sits around 0.9x
// here; the remaining gap is consumer-side (per-shard busy_seconds grows
// ~10% at K=4: four pipelines' window/matcher state exceeds what one
// core's cache holds), not router overhead.
//
// Writes BENCH_sharded_engine.json.  --smoke (or ESPICE_BENCH_SMOKE=1)
// shrinks the stream for CI smoke runs.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "json_out.hpp"
#include "runtime/stream_engine.hpp"
#include "sim/sharded_sim.hpp"

namespace espice {
namespace {

bool g_smoke = false;

constexpr std::size_t kNumTypes = 64;
constexpr std::size_t kSpan = 1024;
constexpr std::size_t kSlide = 64;  // overlap factor 16

std::vector<Event> make_stream(std::size_t n) {
  Rng rng(0xbe7c);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += rng.uniform(0.0, 0.01);
    e.ts = ts;
    e.value = rng.uniform(-1.0, 1.0);
    events.push_back(e);
  }
  return events;
}

ShardQuery make_query() {
  ShardQuery q;
  q.pattern = make_sequence(
      {element("up", TypeSet{}, DirectionFilter::kRising),
       element("down", TypeSet{}, DirectionFilter::kFalling),
       element("up2", TypeSet{}, DirectionFilter::kRising)});
  q.window.span_kind = WindowSpan::kCount;
  q.window.span_events = kSpan;
  q.window.open_kind = WindowOpen::kCountSlide;
  q.window.slide_events = kSlide;
  return q;
}

/// Flattened (seq...) signature of a canonically ordered match list; two
/// lists are identical iff their signatures are.
std::vector<std::uint64_t> signature(const std::vector<ComplexEvent>& ms) {
  std::vector<std::uint64_t> sig;
  sig.reserve(ms.size() * 4);
  for (const auto& m : ms) {
    sig.push_back(m.constituents.size());
    for (const auto& c : m.constituents) sig.push_back(c.event.seq);
  }
  return sig;
}

struct RunResult {
  double events_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::size_t matches = 0;
  std::uint64_t backpressure_waits = 0;
  bool parity = false;
  std::uint64_t latency_samples = 0;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t p999_ns = 0;
};

RunResult run_at(const std::vector<Event>& events, std::size_t shards,
                 int repeats) {
  ShardedSimConfig config;
  config.engine.shards = shards;
  config.engine.ring_capacity = 4096;
  config.engine.query = make_query();
  // Sampled end-to-end latency (enqueue -> block released): every 64th
  // enqueue per shard, cheap enough not to perturb the throughput numbers.
  config.engine.latency_sample_every = 64;
  const auto golden_sig =
      signature(partitioned_serial_golden(config.engine, events));
  RunResult best;
  for (int r = 0; r < repeats; ++r) {
    ShardedSimulator sim(config);
    // One nominal rate phase: unpaced replay (throughput mode).
    const auto result = sim.run(events, /*rate=*/1e6);
    const bool parity = signature(result.report.matches) == golden_sig;
    std::uint64_t waits = 0;
    for (const auto& s : result.report.shards) {
      waits += s.router_backpressure_waits;
    }
    if (r == 0 || result.report.events_per_sec > best.events_per_sec) {
      best.events_per_sec = result.report.events_per_sec;
      best.wall_seconds = result.report.wall_seconds;
      best.matches = result.report.matches.size();
      best.backpressure_waits = waits;
      const LatencyHistogram& lat = result.report.latency;
      best.latency_samples = lat.count();
      best.p50_ns = lat.quantile(0.50);
      best.p99_ns = lat.quantile(0.99);
      best.p999_ns = lat.quantile(0.999);
    }
    best.parity = (r == 0) ? parity : (best.parity && parity);
  }
  return best;
}

}  // namespace
}  // namespace espice

int main(int argc, char** argv) {
  using namespace espice;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  if (const char* env = std::getenv("ESPICE_BENCH_SMOKE");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    g_smoke = true;
  }

  const std::size_t n_events = g_smoke ? 60'000 : 2'000'000;
  const auto events = make_stream(n_events);
  const unsigned hw_threads = std::thread::hardware_concurrency();

  std::printf(
      "=== Sharded StreamEngine throughput (span %zu, slide %zu, overlap "
      "%zu, %zu events, %u hw threads) ===\n",
      kSpan, kSlide, kSpan / kSlide, n_events, hw_threads);
  std::printf("| %-6s | %-14s | %-9s | %-8s | %-7s | %-12s | %-9s | %-9s |\n",
              "shards", "events/sec", "wall (s)", "matches", "parity",
              "router waits", "p50 (us)", "p99 (us)");

  const std::size_t ks[] = {1, 2, 4, 8};
  double eps_k1 = 0.0, eps_k4 = 0.0;
  bool parity_all = true;
  std::string json = bench_support::json_header("sharded_engine", g_smoke);
  json += "  \"events\": " + std::to_string(n_events) + ",\n";
  json += "  \"span_events\": " + std::to_string(kSpan) + ",\n";
  json += "  \"slide_events\": " + std::to_string(kSlide) + ",\n";
  json += "  \"overlap\": " + std::to_string(kSpan / kSlide) + ",\n";
  json += "  \"runs\": [\n";

  for (std::size_t k = 0; k < std::size(ks); ++k) {
    const auto r = run_at(events, ks[k], /*repeats=*/6);
    parity_all = parity_all && r.parity;
    if (ks[k] == 1) eps_k1 = r.events_per_sec;
    if (ks[k] == 4) eps_k4 = r.events_per_sec;
    std::printf(
        "| %-6zu | %-14.0f | %-9.3f | %-8zu | %-7s | %-12llu | %-9.1f "
        "| %-9.1f |\n",
        ks[k], r.events_per_sec, r.wall_seconds, r.matches,
        r.parity ? "ok" : "FAIL",
        static_cast<unsigned long long>(r.backpressure_waits),
        static_cast<double>(r.p50_ns) / 1000.0,
        static_cast<double>(r.p99_ns) / 1000.0);
    json += "    {\"shards\": " + std::to_string(ks[k]) +
            ", \"events_per_sec\": " + bench_support::json_double(r.events_per_sec) +
            ", \"wall_seconds\": " + bench_support::json_double(r.wall_seconds) +
            ", \"matches\": " + std::to_string(r.matches) +
            ", \"router_backpressure_waits\": " +
            std::to_string(r.backpressure_waits) +
            ", \"latency_samples\": " + std::to_string(r.latency_samples) +
            ", \"latency_p50_ns\": " + std::to_string(r.p50_ns) +
            ", \"latency_p99_ns\": " + std::to_string(r.p99_ns) +
            ", \"latency_p999_ns\": " + std::to_string(r.p999_ns) +
            ", \"parity\": " + (r.parity ? "true" : "false") + "}";
    json += (k + 1 < std::size(ks)) ? ",\n" : "\n";
  }

  const double speedup_k4 = eps_k1 > 0.0 ? eps_k4 / eps_k1 : 0.0;
  // The K=4 >= 2x criterion is only meaningful with one core per shard: a
  // met criterion counts on any machine, but a miss on fewer than 4
  // hardware threads is recorded as skipped, not failed -- asserting a
  // parallel-speedup target on a 1-core container is noise, and parity
  // stays the hard gate either way.
  const std::string speedup_ok =
      speedup_k4 >= 2.0
          ? "true"
          : (hw_threads >= 4 ? "false" : "\"skipped_insufficient_cores\"");
  json += "  ],\n  \"acceptance\": {\"parity_all\": " +
          std::string(parity_all ? "true" : "false") +
          ", \"speedup_k4_vs_k1\": " + bench_support::json_double(speedup_k4) +
          ", \"speedup_k4_ge_2x\": " + speedup_ok +
          ", \"k4_vs_k1_ratio\": " + bench_support::json_double(speedup_k4) +
          ", \"k4_vs_k1_ge_095\": " +
          std::string(speedup_k4 >= 0.95 ? "true" : "false") + "}\n}\n";

  const char* path = "BENCH_sharded_engine.json";
  const bool wrote = bench_support::write_json(path, json);
  if (wrote) {
    std::printf("wrote %s (K=4 speedup %.2fx, parity: %s)\n", path, speedup_k4,
                parity_all ? "ok" : "FAIL");
  }
  if (hw_threads < 4 && speedup_k4 < 2.0) {
    std::printf(
        "note: %u hardware thread(s) -- the K=4 >= 2x target needs >= 4 "
        "cores; parity is the hard gate here.\n",
        hw_threads);
  }
  // Exact-match parity is the contract (nonzero exit on any mismatch), and
  // the JSON artifact is the bench's deliverable -- failing to write it
  // must fail CI too, not just warn on stderr.
  return (parity_all && wrote) ? 0 : 1;
}
