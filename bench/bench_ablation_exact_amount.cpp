// Ablation: exact-amount boundary dropping vs the paper's literal
// Algorithm 2 ("drop everything with utility <= uth", i.e. at least x).
//
// The literal rule overshoots whenever many events share the threshold
// utility: it drops CDT(uth) events per partition even if x is much smaller.
// Exact-amount mode drops boundary-utility events with just the probability
// needed for an expected amount of x (DESIGN.md §5b.3).  This bench
// quantifies the difference in drop volume, quality and latency headroom.
#include <iostream>

#include "smoke.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace espice;

namespace {

void run_family(const std::string& title, const QueryDef& query,
                std::size_t num_types, const std::vector<Event>& events,
                std::size_t train, std::size_t measure, std::size_t bin_size) {
  print_section(std::cout, title);
  const TrainedModel trained = train_model(
      query, num_types, std::span<const Event>(events).subspan(0, train),
      bin_size);
  Table table({"mode", "rate", "%FN", "%FP", "%dropped", "mean latency (s)",
               "max latency (s)"});
  for (const double rate : {1.2, 1.4}) {
    for (const bool exact : {true, false}) {
      ExperimentConfig config;
      config.query = query;
      config.num_types = num_types;
      config.train_events = train;
      config.measure_events = measure;
      config.bin_size = bin_size;
      config.rate_factor = rate;
      config.shedder = ShedderKind::kEspice;
      config.exact_amount = exact;
      const auto r = run_experiment(config, events, &trained);
      table.add_row({exact ? "exact x" : "at-least-x (paper)",
                     "R=th*" + fmt(rate, 1), fmt(r.quality.fn_percent(), 1),
                     fmt(r.quality.fp_percent(), 1), fmt(r.drop_percent(), 1),
                     fmt(r.latency.mean, 3), fmt(r.latency.max, 3)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  espice::bench_support::init_smoke(argc, argv);
  std::cout << "Ablation: exact-amount vs literal threshold dropping\n";

  TypeRegistry rtls_reg;
  RtlsGenerator rtls(RtlsConfig{}, rtls_reg);
  const auto rtls_events = rtls.generate(espice::bench_support::scaled(260'000));
  run_family("Q1 (n=4, RTLS)", make_q1(rtls, 4), rtls_reg.size(), rtls_events,
             espice::bench_support::scaled(130'000), espice::bench_support::scaled(120'000), 1);

  TypeRegistry stock_reg;
  StockGenerator stock(StockConfig{}, stock_reg);
  const auto stock_events = stock.generate(espice::bench_support::scaled(620'000));
  run_family("Q2 (n=20, NYSE)", make_q2(stock, 20), stock_reg.size(),
             stock_events, espice::bench_support::scaled(470'000), espice::bench_support::scaled(140'000), 4);
  return 0;
}
