// Skewed-ingestion bench: multi-producer throughput and per-shard occupancy
// under uniform vs Zipf key traffic, plus the hot-partition rebalancer's
// balance on the skewed end.
//
// Two experiment families, one JSON artifact (BENCH_skew.json):
//
//  1. Multi-producer matrix -- workload (uniform / Zipf 0.9 / Zipf 1.2)
//     x shards K in {1,2,4,8} x producers P in {1,2,4}, all through
//     push_batch_concurrent().  Every run records events/sec and the
//     per-shard occupancy gauges (mean/peak ring depth, busy fraction):
//     skew shows up as one shard's busy fraction and queue depth running
//     away from the pack while the others idle.
//  2. Rebalance runs -- Zipf 1.2 single-producer at K=4 and K=8 with 16
//     logical partitions, plus a no-rebalance K=4 baseline for contrast.
//     The acceptance gate is load balance at K=4: max per-shard load over
//     mean <= 1.5x under rebalancing.  The gate is evaluated on per-shard
//     EVENT counts (deterministic; exactly what the rebalancer equalizes);
//     busy-fraction ratios are recorded alongside -- on a box with >= K
//     cores the two coincide, on a time-sliced single core the busy gauge
//     absorbs preemption noise.  K=8 is recorded, not gated: with Zipf 1.2
//     over 64 keys the hottest single partition carries ~25% of the
//     stream, so max/mean >= hottest_share * K ~ 2 no matter where
//     partitions are placed; the JSON records that skew floor so the K=8
//     rows are interpretable.
//
// Exact-match parity against the serial per-substream golden is the hard
// gate on EVERY run (multi-producer and rebalanced alike): any divergence
// exits nonzero and fails CI.  Parallel speedup (P=4 vs P=1) is recorded
// but only asserted with >= 4 hardware threads (skipped_insufficient_cores
// otherwise).
//
// --smoke (or ESPICE_BENCH_SMOKE=1) shrinks the streams for CI smoke runs.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "json_out.hpp"
#include "runtime/stream_engine.hpp"
#include "sim/sharded_sim.hpp"
#include "sim/zipf.hpp"

namespace espice {
namespace {

bool g_smoke = false;

constexpr std::size_t kNumKeys = 64;
constexpr std::uint64_t kStreamSeed = 0x5ce3;
constexpr std::size_t kChunk = 1024;  // per-producer push granularity

struct Workload {
  const char* name;
  double s;  // Zipf exponent; 0 = uniform
};
constexpr Workload kWorkloads[] = {
    {"uniform", 0.0}, {"zipf09", 0.9}, {"zipf12", 1.2}};

ShardQuery make_query() {
  ShardQuery q;
  q.pattern = make_sequence(
      {element("up", TypeSet{}, DirectionFilter::kRising),
       element("down", TypeSet{}, DirectionFilter::kFalling)});
  q.window.span_kind = WindowSpan::kCount;
  q.window.span_events = 512;
  q.window.open_kind = WindowOpen::kCountSlide;
  q.window.slide_events = 64;
  return q;
}

std::vector<std::uint64_t> signature(const std::vector<ComplexEvent>& ms) {
  std::vector<std::uint64_t> sig;
  sig.reserve(ms.size() * 3);
  for (const auto& m : ms) {
    sig.push_back(m.constituents.size());
    for (const auto& c : m.constituents) sig.push_back(c.event.seq);
  }
  return sig;
}

struct ShardGauge {
  std::uint64_t events = 0;
  double mean_depth = 0.0;
  std::size_t peak_depth = 0;
  double busy_fraction = 0.0;
};

struct RunOut {
  double events_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::size_t matches = 0;
  bool parity = false;
  std::uint64_t rebalance_moves = 0;
  std::vector<ShardGauge> shards;
};

RunOut summarize(const EngineReport& report,
                 const std::vector<std::uint64_t>& golden_sig) {
  RunOut out;
  out.events_per_sec = report.events_per_sec;
  out.wall_seconds = report.wall_seconds;
  out.matches = report.matches.size();
  out.parity = signature(report.matches) == golden_sig;
  out.rebalance_moves = report.rebalance_moves;
  for (const ShardStats& s : report.shards) {
    ShardGauge g;
    g.events = s.events;
    g.mean_depth = s.mean_queue_depth();
    g.peak_depth = s.peak_queue_depth;
    g.busy_fraction = report.wall_seconds > 0.0
                          ? s.busy_seconds / report.wall_seconds
                          : 0.0;
    out.shards.push_back(g);
  }
  return out;
}

/// One multi-producer run: P threads push round-robin chunk slices (each
/// producer's seqs strictly increasing), best events/sec over `repeats`.
RunOut run_mp(const std::vector<Event>& events, std::size_t shards,
              std::size_t producers,
              const std::vector<std::uint64_t>& golden_sig, int repeats) {
  StreamEngineConfig config;
  config.shards = shards;
  config.producers = producers;
  config.ring_capacity = 4096;
  config.query = make_query();
  RunOut best;
  for (int r = 0; r < repeats; ++r) {
    StreamEngine engine(config);
    engine.start();
    const std::span<const Event> all(events);
    std::vector<std::thread> threads;
    threads.reserve(producers);
    for (std::size_t p = 0; p < producers; ++p) {
      threads.emplace_back([&, p] {
        for (std::size_t c = p; c * kChunk < events.size(); c += producers) {
          const std::size_t off = c * kChunk;
          engine.push_batch_concurrent(
              p, all.subspan(off, std::min(kChunk, events.size() - off)));
        }
        engine.producer_done(p);
      });
    }
    for (auto& t : threads) t.join();
    const RunOut out = summarize(engine.finish(), golden_sig);
    if (r == 0 || out.events_per_sec > best.events_per_sec) {
      const bool parity_so_far = (r == 0) || best.parity;
      best = out;
      best.parity = best.parity && parity_so_far;
    } else {
      best.parity = best.parity && out.parity;
    }
  }
  return best;
}

/// One single-producer run with (or without) hot-partition rebalancing.
RunOut run_rebalance(const std::vector<Event>& events, std::size_t shards,
                     bool rebalance, std::size_t partitions,
                     const std::vector<std::uint64_t>& golden_sig) {
  StreamEngineConfig config;
  config.shards = shards;
  config.ring_capacity = 4096;
  config.query = make_query();
  if (rebalance) {
    config.rebalance.emplace();
    config.rebalance->partitions = partitions;
    config.rebalance->interval_events = 4096;
  }
  StreamEngine engine(config);
  engine.push_batch(events);
  return summarize(engine.finish(), golden_sig);
}

double max_over_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  double mx = 0.0;
  for (double x : xs) {
    sum += x;
    mx = std::max(mx, x);
  }
  const double mean = sum / static_cast<double>(xs.size());
  return mean > 0.0 ? mx / mean : 0.0;
}

std::string shard_gauges_json(const std::vector<ShardGauge>& shards) {
  std::string j = "[";
  for (std::size_t s = 0; s < shards.size(); ++s) {
    const ShardGauge& g = shards[s];
    j += "{\"events\": " + std::to_string(g.events) +
         ", \"mean_queue_depth\": " + bench_support::json_double(g.mean_depth) +
         ", \"peak_queue_depth\": " + std::to_string(g.peak_depth) +
         ", \"busy_fraction\": " + bench_support::json_double(g.busy_fraction) +
         "}";
    if (s + 1 < shards.size()) j += ", ";
  }
  return j + "]";
}

}  // namespace
}  // namespace espice

int main(int argc, char** argv) {
  using namespace espice;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  if (const char* env = std::getenv("ESPICE_BENCH_SMOKE");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    g_smoke = true;
  }

  const std::size_t n_events = g_smoke ? 30'000 : 300'000;
  const int repeats = g_smoke ? 1 : 2;
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const std::size_t kPartitions = 16;

  std::printf(
      "=== Skewed ingestion: multi-producer + rebalancing (%zu events, %zu "
      "keys, %u hw threads) ===\n",
      n_events, kNumKeys, hw_threads);

  bool parity_all = true;
  std::string json = bench_support::json_header("skewed_ingest", g_smoke);
  json += "  \"events\": " + std::to_string(n_events) + ",\n";
  json += "  \"keys\": " + std::to_string(kNumKeys) + ",\n";
  json += "  \"mp_runs\": [\n";

  // --- family 1: multi-producer matrix ------------------------------------
  const std::size_t ks[] = {1, 2, 4, 8};
  const std::size_t ps[] = {1, 2, 4};
  // speedup_p4[w] / baseline_p1[w]: P scaling at K=4 per workload.
  double p1_at_k4[std::size(kWorkloads)] = {};
  double p4_at_k4[std::size(kWorkloads)] = {};
  bool first_row = true;

  for (std::size_t w = 0; w < std::size(kWorkloads); ++w) {
    const Workload& wl = kWorkloads[w];
    const auto events = make_zipf_stream(n_events, kNumKeys, wl.s, kStreamSeed);
    std::printf(
        "--- workload %s (s=%.1f, hottest key %.1f%%) ---\n", wl.name, wl.s,
        ZipfGenerator(kNumKeys, wl.s).share(0) * 100.0);
    std::printf("| %-6s | %-9s | %-14s | %-7s | %-17s | %-17s |\n", "shards",
                "producers", "events/sec", "parity", "busy fractions",
                "mean depths");
    for (std::size_t k : ks) {
      StreamEngineConfig gcfg;
      gcfg.shards = k;
      gcfg.query = make_query();
      const auto golden_sig =
          signature(partitioned_serial_golden(gcfg, events));
      for (std::size_t p : ps) {
        const RunOut r = run_mp(events, k, p, golden_sig, repeats);
        parity_all = parity_all && r.parity;
        if (k == 4 && p == 1) p1_at_k4[w] = r.events_per_sec;
        if (k == 4 && p == 4) p4_at_k4[w] = r.events_per_sec;
        std::string busy, depth;
        for (const ShardGauge& g : r.shards) {
          char buf[32];
          std::snprintf(buf, sizeof buf, "%.2f ", g.busy_fraction);
          busy += buf;
          std::snprintf(buf, sizeof buf, "%.0f ", g.mean_depth);
          depth += buf;
        }
        std::printf("| %-6zu | %-9zu | %-14.0f | %-7s | %-17s | %-17s |\n", k,
                    p, r.events_per_sec, r.parity ? "ok" : "FAIL",
                    busy.c_str(), depth.c_str());
        if (!first_row) json += ",\n";
        first_row = false;
        json += "    {\"workload\": \"" + std::string(wl.name) +
                "\", \"shards\": " + std::to_string(k) +
                ", \"producers\": " + std::to_string(p) +
                ", \"events_per_sec\": " +
                bench_support::json_double(r.events_per_sec) +
                ", \"matches\": " + std::to_string(r.matches) +
                ", \"parity\": " + (r.parity ? "true" : "false") +
                ", \"shards_detail\": " + shard_gauges_json(r.shards) + "}";
      }
    }
  }
  json += "\n  ],\n";

  // --- family 2: rebalancing on the skewed end ----------------------------
  const auto zipf12 = make_zipf_stream(n_events, kNumKeys, 1.2, kStreamSeed);
  // The skew floor: the hottest partition's traffic share bounds achievable
  // balance -- max/mean >= hottest_share * K regardless of placement.
  std::vector<std::uint64_t> part_counts(kPartitions, 0);
  {
    StreamEngineConfig probe;
    probe.shards = 1;
    probe.query = make_query();
    probe.rebalance.emplace();
    probe.rebalance->partitions = kPartitions;
    StreamEngine engine(probe);
    for (const Event& e : zipf12) ++part_counts[engine.partition_of(e)];
  }
  const double hottest_share =
      static_cast<double>(*std::max_element(part_counts.begin(),
                                            part_counts.end())) /
      static_cast<double>(zipf12.size());

  StreamEngineConfig reb_golden_cfg;
  reb_golden_cfg.shards = kPartitions;
  reb_golden_cfg.query = make_query();
  const auto reb_golden_sig =
      signature(partitioned_serial_golden(reb_golden_cfg, zipf12));
  // The non-rebalanced runs hash keys straight onto K shards: different
  // partitioning of the match space, same canonical merge order.
  std::printf("--- rebalancing, zipf12 (hottest of %zu partitions: %.1f%%) "
              "---\n",
              kPartitions, hottest_share * 100.0);
  std::printf("| %-6s | %-9s | %-5s | %-13s | %-13s | %-7s |\n", "shards",
              "rebalance", "moves", "max/mean ev", "max/mean busy", "parity");

  double k4_balance_events = 0.0;
  double k4_balance_busy = 0.0;
  json += "  \"rebalance_runs\": [\n";
  bool first_reb = true;
  for (const std::size_t k : {std::size_t{4}, std::size_t{8}}) {
    for (const bool reb : {false, true}) {
      std::vector<std::uint64_t> golden_sig_local;
      if (reb) {
        golden_sig_local = reb_golden_sig;
      } else {
        StreamEngineConfig gcfg;
        gcfg.shards = k;
        gcfg.query = make_query();
        golden_sig_local = signature(partitioned_serial_golden(gcfg, zipf12));
      }
      const RunOut r =
          run_rebalance(zipf12, k, reb, kPartitions, golden_sig_local);
      parity_all = parity_all && r.parity;
      std::vector<double> ev, busy;
      for (const ShardGauge& g : r.shards) {
        ev.push_back(static_cast<double>(g.events));
        busy.push_back(g.busy_fraction);
      }
      const double bal_ev = max_over_mean(ev);
      const double bal_busy = max_over_mean(busy);
      if (k == 4 && reb) {
        k4_balance_events = bal_ev;
        k4_balance_busy = bal_busy;
      }
      std::printf("| %-6zu | %-9s | %-5llu | %-13.2f | %-13.2f | %-7s |\n", k,
                  reb ? "on" : "off",
                  static_cast<unsigned long long>(r.rebalance_moves), bal_ev,
                  bal_busy, r.parity ? "ok" : "FAIL");
      if (!first_reb) json += ",\n";
      first_reb = false;
      json += "    {\"workload\": \"zipf12\", \"shards\": " +
              std::to_string(k) +
              ", \"rebalance\": " + (reb ? "true" : "false") +
              ", \"partitions\": " + std::to_string(kPartitions) +
              ", \"rebalance_moves\": " + std::to_string(r.rebalance_moves) +
              ", \"balance_max_over_mean_events\": " +
              bench_support::json_double(bal_ev) +
              ", \"balance_max_over_mean_busy\": " +
              bench_support::json_double(bal_busy) +
              ", \"skew_floor_max_over_mean\": " +
              bench_support::json_double(hottest_share *
                                         static_cast<double>(k)) +
              ", \"parity\": " + (r.parity ? "true" : "false") +
              ", \"shards_detail\": " + shard_gauges_json(r.shards) + "}";
    }
  }
  json += "\n  ],\n";

  // --- acceptance ---------------------------------------------------------
  const double speedup_p4 =
      p1_at_k4[2] > 0.0 ? p4_at_k4[2] / p1_at_k4[2] : 0.0;
  const std::string speedup_field =
      speedup_p4 >= 1.0
          ? "true"
          : (hw_threads >= 4 ? "false" : "\"skipped_insufficient_cores\"");
  const bool balance_ok = k4_balance_events <= 1.5;
  json += "  \"acceptance\": {\"parity_all\": " +
          std::string(parity_all ? "true" : "false") +
          ", \"zipf12_k4_rebalanced_max_over_mean_events\": " +
          bench_support::json_double(k4_balance_events) +
          ", \"zipf12_k4_rebalanced_max_over_mean_busy\": " +
          bench_support::json_double(k4_balance_busy) +
          ", \"zipf12_k4_balance_le_1p5\": " +
          std::string(balance_ok ? "true" : "false") +
          ", \"zipf12_k8_skew_floor\": " +
          bench_support::json_double(hottest_share * 8.0) +
          ", \"speedup_p4_vs_p1_zipf12_k4\": " +
          bench_support::json_double(speedup_p4) +
          ", \"speedup_p4_ge_1x\": " + speedup_field + "}\n}\n";

  const char* path = "BENCH_skew.json";
  const bool wrote = bench_support::write_json(path, json);
  if (wrote) {
    std::printf(
        "wrote %s (parity: %s, zipf12 K=4 rebalanced max/mean events %.2f, "
        "P=4 speedup %.2fx)\n",
        path, parity_all ? "ok" : "FAIL", k4_balance_events, speedup_p4);
  }
  if (hw_threads < 4) {
    std::printf(
        "note: %u hardware thread(s) -- producer-scaling targets need >= 4 "
        "cores; parity and balance are the gates here.\n",
        hw_threads);
  }
  // Parity everywhere and the K=4 rebalanced balance are the contract; the
  // JSON artifact is the deliverable.
  return (parity_all && balance_ok && wrote) ? 0 : 1;
}
