// Batched end-to-end ingestion: push_batch() vs per-event push() on a
// single-shard engine, at batch sizes {1, 16, 64, 256}.
//
// The workload is ingestion-bound by design (tumbling count windows, a
// cheap 3-element pattern): the per-event path pays its fixed costs -- one
// routing call, two ring cursor operations, one scalar pop -- per event,
// while the batched path amortizes them over whole blocks (bulk SPSC
// transfer, block-wise window routing with bulk store appends).  The
// speedup at batch 256 is the headline number; batch 1 measures the pure
// API overhead of staging a one-event span.
//
// Parity is the hard gate at every batch size: push_batch() must reproduce
// the per-event serial golden bit for bit, so the bench exits nonzero on
// any mismatch (CI fails).  The speedup criterion needs the router and the
// shard on separate cores; on fewer than 2 hardware threads the JSON
// records "skipped_insufficient_cores" instead of a boolean.
//
// Writes BENCH_batch_ingest.json.  --smoke (or ESPICE_BENCH_SMOKE=1)
// shrinks the stream for CI smoke runs.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "json_out.hpp"
#include "runtime/stream_engine.hpp"
#include "sim/sharded_sim.hpp"

namespace espice {
namespace {

bool g_smoke = false;

constexpr std::size_t kNumTypes = 64;
constexpr std::size_t kSpan = 1024;
constexpr std::size_t kSlide = 1024;  // tumbling: ingestion dominates

std::vector<Event> make_stream(std::size_t n) {
  Rng rng(0xba7c4);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += rng.uniform(0.0, 0.01);
    e.ts = ts;
    e.value = rng.uniform(-1.0, 1.0);
    events.push_back(e);
  }
  return events;
}

StreamEngineConfig make_config() {
  StreamEngineConfig config;
  config.shards = 1;
  config.ring_capacity = 16384;
  config.query.pattern = make_sequence(
      {element("up", TypeSet{}, DirectionFilter::kRising),
       element("down", TypeSet{}, DirectionFilter::kFalling),
       element("up2", TypeSet{}, DirectionFilter::kRising)});
  config.query.window.span_kind = WindowSpan::kCount;
  config.query.window.span_events = kSpan;
  config.query.window.open_kind = WindowOpen::kCountSlide;
  config.query.window.slide_events = kSlide;
  return config;
}

/// Flattened (seq...) signature of a canonically ordered match list; two
/// lists are identical iff their signatures are.
std::vector<std::uint64_t> signature(const std::vector<ComplexEvent>& ms) {
  std::vector<std::uint64_t> sig;
  sig.reserve(ms.size() * 4);
  for (const auto& m : ms) {
    sig.push_back(m.constituents.size());
    for (const auto& c : m.constituents) sig.push_back(c.event.seq);
  }
  return sig;
}

struct RunResult {
  double events_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::size_t matches = 0;
  bool parity = false;
};

/// One measured replay; batch == 0 means the scalar per-event path.
RunResult run_at(const std::vector<Event>& events, std::size_t batch,
                 const std::vector<std::uint64_t>& golden_sig, int repeats) {
  ShardedSimConfig config;
  config.engine = make_config();
  config.batch_size = batch;
  RunResult best;
  for (int r = 0; r < repeats; ++r) {
    ShardedSimulator sim(config);
    const auto result = sim.run(events, /*rate=*/1e6);
    const bool parity = signature(result.report.matches) == golden_sig;
    if (r == 0 || result.report.events_per_sec > best.events_per_sec) {
      best.events_per_sec = result.report.events_per_sec;
      best.wall_seconds = result.report.wall_seconds;
      best.matches = result.report.matches.size();
    }
    best.parity = (r == 0) ? parity : (best.parity && parity);
  }
  return best;
}

}  // namespace
}  // namespace espice

int main(int argc, char** argv) {
  using namespace espice;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  if (const char* env = std::getenv("ESPICE_BENCH_SMOKE");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    g_smoke = true;
  }

  const std::size_t n_events = g_smoke ? 200'000 : 1'000'000;
  const int repeats = g_smoke ? 2 : 3;
  const auto events = make_stream(n_events);
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const auto golden_sig =
      signature(partitioned_serial_golden(make_config(), events));

  std::printf(
      "=== Batched ingestion, single shard (span %zu, slide %zu, %zu "
      "events, %u hw threads) ===\n",
      kSpan, kSlide, n_events, hw_threads);
  std::printf("| %-9s | %-14s | %-9s | %-8s | %-7s |\n", "batch",
              "events/sec", "wall (s)", "matches", "parity");

  double eps_per_event = 0.0, eps_b256 = 0.0;
  bool parity_all = true;
  std::string json = bench_support::json_header("batch_ingest", g_smoke);
  json += "  \"events\": " + std::to_string(n_events) + ",\n";
  json += "  \"span_events\": " + std::to_string(kSpan) + ",\n";
  json += "  \"slide_events\": " + std::to_string(kSlide) + ",\n";
  json += "  \"shards\": 1,\n";
  json += "  \"runs\": [\n";

  // batch 0 == the scalar per-event baseline.
  const std::size_t batches[] = {0, 1, 16, 64, 256};
  for (std::size_t b = 0; b < std::size(batches); ++b) {
    const auto r = run_at(events, batches[b], golden_sig, repeats);
    parity_all = parity_all && r.parity;
    if (batches[b] == 0) eps_per_event = r.events_per_sec;
    if (batches[b] == 256) eps_b256 = r.events_per_sec;
    const std::string label =
        batches[b] == 0 ? "per-event" : std::to_string(batches[b]);
    std::printf("| %-9s | %-14.0f | %-9.3f | %-8zu | %-7s |\n", label.c_str(),
                r.events_per_sec, r.wall_seconds, r.matches,
                r.parity ? "ok" : "FAIL");
    json += "    {\"mode\": \"" +
            std::string(batches[b] == 0 ? "per_event" : "batch") +
            "\", \"batch_size\": " + std::to_string(batches[b]) +
            ", \"events_per_sec\": " + bench_support::json_double(r.events_per_sec) +
            ", \"wall_seconds\": " + bench_support::json_double(r.wall_seconds) +
            ", \"matches\": " + std::to_string(r.matches) +
            ", \"parity\": " + (r.parity ? "true" : "false") + "}";
    json += (b + 1 < std::size(batches)) ? ",\n" : "\n";
  }

  const double speedup = eps_per_event > 0.0 ? eps_b256 / eps_per_event : 0.0;
  // A met criterion counts on any machine.  A missed one only counts as
  // FAILED when the router and the shard had their own cores; below that it
  // is recorded as skipped, not false (parity stays the hard gate) -- same
  // policy as bench_sharded_throughput.
  const std::string speedup_ok =
      speedup >= 1.8
          ? "true"
          : (hw_threads >= 2 ? "false" : "\"skipped_insufficient_cores\"");
  json += "  ],\n  \"acceptance\": {\"parity_all\": " +
          std::string(parity_all ? "true" : "false") +
          ", \"speedup_b256_vs_per_event\": " + bench_support::json_double(speedup) +
          ", \"speedup_b256_ge_1p8x\": " + speedup_ok + "}\n}\n";

  const char* path = "BENCH_batch_ingest.json";
  const bool wrote = bench_support::write_json(path, json);
  if (wrote) {
    std::printf("wrote %s (batch-256 speedup %.2fx, parity: %s)\n", path,
                speedup, parity_all ? "ok" : "FAIL");
  }
  if (hw_threads < 2 && speedup < 1.8) {
    std::printf(
        "note: %u hardware thread(s) -- the >= 1.8x target needs the router "
        "and the shard on separate cores; parity is the hard gate here.\n",
        hw_threads);
  }
  // Exact-match parity is the contract (nonzero exit on any mismatch), and
  // the JSON artifact is the bench's deliverable.
  return (parity_all && wrote) ? 0 : 1;
}
