// Ablation: the watermark factor f (paper Section 3.4, "Appropriate f
// Value").
//
// f trades shedding eagerness against partition size: a high f avoids
// shedding during short bursts but shrinks the dropping buffer
// (qmax - f*qmax), forcing more partitions per window and potentially the
// dropping of high-utility events.  This bench sweeps f for Q1/Q2 and also
// prints what the f-advisor (utility clustering, Otsu split) suggests.
#include <iostream>

#include "smoke.hpp"
#include "core/f_advisor.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace espice;

namespace {

void run_family(const std::string& title, const QueryDef& query,
                std::size_t num_types, const std::vector<Event>& events,
                std::size_t train, std::size_t measure, std::size_t bin_size) {
  print_section(std::cout, title);
  const TrainedModel trained = train_model(
      query, num_types, std::span<const Event>(events).subspan(0, train),
      bin_size);

  Table table({"f", "%FN", "%FP", "%dropped", "mean latency (s)",
               "max latency (s)", "LB violations %"});
  for (const double f : {0.5, 0.6, 0.7, 0.8, 0.9, 0.95}) {
    ExperimentConfig config;
    config.query = query;
    config.num_types = num_types;
    config.train_events = train;
    config.measure_events = measure;
    config.bin_size = bin_size;
    config.rate_factor = 1.3;
    config.f = f;
    config.shedder = ShedderKind::kEspice;
    const auto r = run_experiment(config, events, &trained);
    table.add_row({fmt(f, 2), fmt(r.quality.fn_percent(), 1),
                   fmt(r.quality.fp_percent(), 1), fmt(r.drop_percent(), 1),
                   fmt(r.latency.mean, 3), fmt(r.latency.max, 3),
                   fmt(r.latency.violation_percent(), 2)});
  }
  table.print(std::cout);

  // What would the advisor pick?  qmax ~ LB * th; x estimated from a 30%
  // surplus over one partition of the advised layout.
  const double th = 1.0 / (OperatorCostModel{}.base_cost +
                           OperatorCostModel{}.per_window_cost *
                               trained.avg_windows_per_event);
  const double qmax = 1.0 * th;
  const double x_estimate =
      0.3 * static_cast<double>(trained.model->n_positions()) / 1.3;
  const FAdvice advice = suggest_f(*trained.model, qmax, x_estimate);
  std::cout << "f-advisor: f = " << fmt(advice.f, 2)
            << ", partitions = " << advice.partitions
            << ", low-utility class boundary = " << advice.low_class_boundary
            << (advice.feasible ? "" : " (best effort, infeasible demand)")
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  espice::bench_support::init_smoke(argc, argv);
  std::cout << "Ablation: watermark factor f (rate = 1.3 * th, LB = 1 s)\n";

  TypeRegistry rtls_reg;
  RtlsGenerator rtls(RtlsConfig{}, rtls_reg);
  const auto rtls_events = rtls.generate(espice::bench_support::scaled(260'000));
  run_family("Q1 (n=4, RTLS)", make_q1(rtls, 4), rtls_reg.size(), rtls_events,
             espice::bench_support::scaled(130'000), espice::bench_support::scaled(120'000), 1);

  TypeRegistry stock_reg;
  StockGenerator stock(StockConfig{}, stock_reg);
  const auto stock_events = stock.generate(espice::bench_support::scaled(620'000));
  run_family("Q2 (n=20, NYSE)", make_q2(stock, 20), stock_reg.size(),
             stock_events, espice::bench_support::scaled(470'000), espice::bench_support::scaled(140'000), 4);

  return 0;
}
