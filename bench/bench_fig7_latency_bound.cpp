// Figure 7: event processing latency over time for Q1 under R1 and R2 with
// LB = 1 s and f = 0.8.
//
// Expected shape (paper): the latency never crosses the 1 s bound and
// hovers around (or below) f * LB = 0.8 s once shedding engages.
#include <algorithm>
#include <iostream>

#include "smoke.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace espice;

int main(int argc, char** argv) {
  espice::bench_support::init_smoke(argc, argv);
  std::cout << "Figure 7: event latency over time (Q1, LB = 1 s, f = 0.8)\n";

  TypeRegistry reg;
  RtlsGenerator gen(RtlsConfig{}, reg);
  const auto events = gen.generate(espice::bench_support::scaled(260'000));

  const std::size_t train = espice::bench_support::scaled(130'000);
  const std::size_t measure = espice::bench_support::scaled(120'000);
  const QueryDef query = make_q1(gen, 4);
  const TrainedModel trained =
      train_model(query, reg.size(),
                  std::span<const Event>(events).subspan(0, train), 1);

  struct Series {
    double rate;
    LatencySummary summary;
  };
  std::vector<Series> series;
  for (const double rate : {1.2, 1.4}) {
    ExperimentConfig config;
    config.query = query;
    config.num_types = reg.size();
    config.train_events = train;
    config.measure_events = measure;
    config.rate_factor = rate;
    config.shedder = ShedderKind::kEspice;
    const auto r = run_experiment(config, events, &trained);
    series.push_back({rate, r.latency});
  }

  print_section(std::cout, "latency (s) per virtual-time second");
  Table table({"time (s)", "R1 mean", "R1 max", "R2 mean", "R2 max"});
  const std::size_t rows =
      std::min(series[0].summary.buckets.size(), series[1].summary.buckets.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& b1 = series[0].summary.buckets[i];
    const auto& b2 = series[1].summary.buckets[i];
    table.add_row({fmt(b1.start_ts, 0), fmt(b1.mean, 3), fmt(b1.max, 3),
                   fmt(b2.mean, 3), fmt(b2.max, 3)});
  }
  table.print(std::cout);

  print_section(std::cout, "summary");
  Table summary({"rate", "mean (s)", "p99 (s)", "max (s)", "LB violations %"});
  for (const auto& s : series) {
    summary.add_row({"R=th*" + fmt(s.rate, 1), fmt(s.summary.mean, 3),
                     fmt(s.summary.p99, 3), fmt(s.summary.max, 3),
                     fmt(s.summary.violation_percent(), 3)});
  }
  summary.print(std::cout);

  const bool ok = series[0].summary.violations == 0 &&
                  series[1].summary.violations == 0;
  std::cout << (ok ? "\nlatency bound held for both rates\n"
                   : "\nWARNING: latency bound violated\n");
  return ok ? 0 : 1;
}
