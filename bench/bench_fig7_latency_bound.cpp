// Figure 7: event processing latency over time for Q1 under R1 and R2 with
// LB = 1 s and f = 0.8.
//
// Expected shape (paper): the latency never crosses the 1 s bound and
// hovers around (or below) f * LB = 0.8 s once shedding engages.
//
// This bench is an ACCEPTANCE GATE, not just a table: it writes
// BENCH_fig7.json with the full latency distribution per overload rate
// (mean/p50/p99/p999/max plus bound-violation counts) and exits nonzero
// unless, with shedding armed, p99 stays within the bound AND no single
// event crossed it -- the latency-SLO contract CI holds every change to.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "smoke.hpp"
#include "json_out.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace espice;

int main(int argc, char** argv) {
  const bool smoke = espice::bench_support::init_smoke(argc, argv);
  std::cout << "Figure 7: event latency over time (Q1, LB = 1 s, f = 0.8)\n";

  TypeRegistry reg;
  RtlsGenerator gen(RtlsConfig{}, reg);
  const auto events = gen.generate(espice::bench_support::scaled(260'000));

  const std::size_t train = espice::bench_support::scaled(130'000);
  const std::size_t measure = espice::bench_support::scaled(120'000);
  const QueryDef query = make_q1(gen, 4);
  const TrainedModel trained =
      train_model(query, reg.size(),
                  std::span<const Event>(events).subspan(0, train), 1);

  struct Series {
    double rate;
    double bound;
    LatencySummary summary;
  };
  std::vector<Series> series;
  for (const double rate : {1.2, 1.4}) {
    ExperimentConfig config;
    config.query = query;
    config.num_types = reg.size();
    config.train_events = train;
    config.measure_events = measure;
    config.rate_factor = rate;
    config.shedder = ShedderKind::kEspice;
    const auto r = run_experiment(config, events, &trained);
    series.push_back({rate, config.latency_bound, r.latency});
  }

  print_section(std::cout, "latency (s) per virtual-time second");
  Table table({"time (s)", "R1 mean", "R1 max", "R2 mean", "R2 max"});
  const std::size_t rows =
      std::min(series[0].summary.buckets.size(), series[1].summary.buckets.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& b1 = series[0].summary.buckets[i];
    const auto& b2 = series[1].summary.buckets[i];
    table.add_row({fmt(b1.start_ts, 0), fmt(b1.mean, 3), fmt(b1.max, 3),
                   fmt(b2.mean, 3), fmt(b2.max, 3)});
  }
  table.print(std::cout);

  print_section(std::cout, "summary");
  Table summary({"rate", "mean (s)", "p50 (s)", "p99 (s)", "p99.9 (s)",
                 "max (s)", "LB violations %"});
  for (const auto& s : series) {
    summary.add_row({"R=th*" + fmt(s.rate, 1), fmt(s.summary.mean, 3),
                     fmt(s.summary.p50, 3), fmt(s.summary.p99, 3),
                     fmt(s.summary.p999, 3), fmt(s.summary.max, 3),
                     fmt(s.summary.violation_percent(), 3)});
  }
  summary.print(std::cout);

  // The SLO gate: shedding is armed and the system is overloaded, so the
  // tail must stay inside the bound.  p99_within_bound is the headline SLO;
  // violations == 0 is the stricter every-event check the paper's figure
  // shows (and implies the p99 gate when it holds).
  bool p99_ok_all = true;
  bool violations_ok_all = true;
  std::string json = bench_support::json_header("fig7_latency_bound", smoke);
  json += "  \"measure_events\": " + std::to_string(measure) + ",\n";
  json += "  \"runs\": [\n";
  for (std::size_t i = 0; i < series.size(); ++i) {
    const auto& s = series[i];
    const bool p99_ok = s.summary.p99 <= s.bound;
    const bool no_violations = s.summary.violations == 0;
    p99_ok_all = p99_ok_all && p99_ok;
    violations_ok_all = violations_ok_all && no_violations;
    json += "    {\"rate_factor\": " + bench_support::json_double(s.rate) +
            ", \"latency_bound_s\": " + bench_support::json_double(s.bound) +
            ", \"events\": " + std::to_string(s.summary.events) +
            ", \"mean_s\": " + bench_support::json_double(s.summary.mean) +
            ", \"p50_s\": " + bench_support::json_double(s.summary.p50) +
            ", \"p99_s\": " + bench_support::json_double(s.summary.p99) +
            ", \"p999_s\": " + bench_support::json_double(s.summary.p999) +
            ", \"max_s\": " + bench_support::json_double(s.summary.max) +
            ", \"violations\": " + std::to_string(s.summary.violations) +
            ", \"violation_percent\": " +
            bench_support::json_double(s.summary.violation_percent()) +
            ", \"p99_within_bound\": " + (p99_ok ? "true" : "false") + "}";
    json += (i + 1 < series.size()) ? ",\n" : "\n";
  }
  json += "  ],\n  \"acceptance\": {\"p99_within_bound_all\": " +
          std::string(p99_ok_all ? "true" : "false") +
          ", \"no_bound_violations\": " +
          std::string(violations_ok_all ? "true" : "false") + "}\n}\n";

  const char* path = "BENCH_fig7.json";
  const bool wrote = bench_support::write_json(path, json);
  if (wrote) std::cout << "wrote " << path << "\n";

  const bool ok = p99_ok_all && violations_ok_all && wrote;
  std::cout << (p99_ok_all && violations_ok_all
                    ? "\nlatency bound held for both rates\n"
                    : "\nWARNING: latency bound violated\n");
  return ok ? 0 : 1;
}
