// Multi-query shared-window throughput: N queries registered in ONE
// StreamEngine (one ingestion path, one shared WindowManager/EventStore)
// against N independent single-query engines over the same stream.
//
// The shared engine routes, windows and buffers every event once no matter
// how many queries consume it; the independent baseline pays ingestion +
// windowing + buffering N times.  Matching is inherently per-query and is
// paid equally on both sides, so the speedup isolates the shared-execution
// win.  Parity is the hard gate: every query's matches in the shared run
// must be bit-identical to its own single-query engine run AND to the
// serial run_pipeline() golden -- the bench exits nonzero on any mismatch.
//
// Writes BENCH_multi_query.json.  --smoke (or ESPICE_BENCH_SMOKE=1)
// shrinks the stream for CI smoke runs.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "json_out.hpp"
#include "runtime/stream_engine.hpp"
#include "sim/sharded_sim.hpp"

namespace espice {
namespace {

bool g_smoke = false;

constexpr std::size_t kNumTypes = 64;
constexpr std::size_t kSpan = 1024;
constexpr std::size_t kSlide = 64;  // overlap factor 16
constexpr std::size_t kQueries = 5;

std::vector<Event> make_stream(std::size_t n) {
  Rng rng(0x5eedu);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += rng.uniform(0.0, 0.01);
    e.ts = ts;
    e.value = rng.uniform(-1.0, 1.0);
    events.push_back(e);
  }
  return events;
}

/// Five distinct monitoring queries over ONE shared window spec: different
/// patterns, same windowing -- the canonical consolidated-middleware load.
std::vector<EngineQuery> make_queries() {
  WindowSpec window;
  window.span_kind = WindowSpan::kCount;
  window.span_events = kSpan;
  window.open_kind = WindowOpen::kCountSlide;
  window.slide_events = kSlide;

  auto rising = [](const char* n) {
    return element(n, TypeSet{}, DirectionFilter::kRising);
  };
  auto falling = [](const char* n) {
    return element(n, TypeSet{}, DirectionFilter::kFalling);
  };
  std::vector<Pattern> patterns;
  patterns.push_back(make_sequence({rising("u"), falling("d")}));
  patterns.push_back(make_sequence({falling("d"), rising("u")}));
  patterns.push_back(make_sequence({rising("u"), rising("u2"), falling("d")}));
  patterns.push_back(make_sequence(
      {element("t0", TypeSet{0}, DirectionFilter::kAny), rising("u")}));
  patterns.push_back(make_sequence({falling("d"), falling("d2"),
                                    falling("d3")}));

  std::vector<EngineQuery> queries;
  for (std::size_t i = 0; i < kQueries; ++i) {
    EngineQuery q;
    q.name = "q" + std::to_string(i);
    q.query.pattern = patterns[i];
    q.query.window = window;
    queries.push_back(std::move(q));
  }
  return queries;
}

/// Flattened (seq...) signature of a canonically ordered match list.
std::vector<std::uint64_t> signature(const std::vector<ComplexEvent>& ms) {
  std::vector<std::uint64_t> sig;
  sig.reserve(ms.size() * 4);
  for (const auto& m : ms) {
    sig.push_back(m.constituents.size());
    for (const auto& c : m.constituents) sig.push_back(c.event.seq);
  }
  return sig;
}

struct RunResult {
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  std::size_t matches = 0;
  bool parity = true;
  std::vector<std::vector<std::uint64_t>> per_query_sigs;
};

/// One shared engine serving all N queries.
RunResult run_shared(const std::vector<Event>& events,
                     const std::vector<EngineQuery>& queries,
                     std::size_t shards) {
  StreamEngineConfig config;
  config.shards = shards;
  config.ring_capacity = 4096;
  StreamEngine engine(config);
  for (const EngineQuery& q : queries) engine.add_query(q);
  for (const Event& e : events) engine.push(e);
  const EngineReport report = engine.finish();

  RunResult r;
  r.wall_seconds = report.wall_seconds;
  r.events_per_sec = report.events_per_sec;
  r.matches = report.matches.size();
  for (const auto& qr : report.queries) {
    r.per_query_sigs.push_back(signature(qr.matches));
  }
  return r;
}

/// N independent single-query engines, run one after another over the same
/// stream (each pays full ingestion + windowing; total wall is the sum).
RunResult run_independent(const std::vector<Event>& events,
                          const std::vector<EngineQuery>& queries,
                          std::size_t shards) {
  RunResult r;
  for (const EngineQuery& q : queries) {
    StreamEngineConfig config;
    config.shards = shards;
    config.ring_capacity = 4096;
    StreamEngine engine(config);
    engine.add_query(q);
    for (const Event& e : events) engine.push(e);
    const EngineReport report = engine.finish();
    r.wall_seconds += report.wall_seconds;
    r.matches += report.matches.size();
    r.per_query_sigs.push_back(signature(report.queries.front().matches));
  }
  r.events_per_sec =
      r.wall_seconds > 0.0
          ? static_cast<double>(events.size()) / r.wall_seconds
          : 0.0;
  return r;
}

}  // namespace
}  // namespace espice

int main(int argc, char** argv) {
  using namespace espice;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  if (const char* env = std::getenv("ESPICE_BENCH_SMOKE");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    g_smoke = true;
  }

  const std::size_t n_events = g_smoke ? 60'000 : 300'000;
  const auto events = make_stream(n_events);
  const auto queries = make_queries();
  const unsigned hw_threads = std::thread::hardware_concurrency();

  std::printf(
      "=== Multi-query shared-window throughput (%zu queries, span %zu, "
      "slide %zu, overlap %zu, %zu events, %u hw threads) ===\n",
      kQueries, kSpan, kSlide, kSpan / kSlide, n_events, hw_threads);

  bool parity_all = true;
  std::string json = bench_support::json_header("multi_query_engine", g_smoke);
  json += "  \"queries\": " + std::to_string(kQueries) + ",\n";
  json += "  \"events\": " + std::to_string(n_events) + ",\n";
  json += "  \"span_events\": " + std::to_string(kSpan) + ",\n";
  json += "  \"slide_events\": " + std::to_string(kSlide) + ",\n";
  json += "  \"overlap\": " + std::to_string(kSpan / kSlide) + ",\n";
  json += "  \"runs\": [\n";

  std::printf("| %-8s | %-6s | %-14s | %-9s | %-8s | %-7s |\n", "mode",
              "shards", "events/sec", "wall (s)", "matches", "parity");

  double shared_wall_k1 = 0.0, independent_wall_k1 = 0.0;
  const std::size_t ks[] = {1, 2};
  bool first_row = true;
  for (const std::size_t k : ks) {
    // Serial per-query goldens at this K: the one definition both the
    // shared run and the independent runs must reproduce bit for bit.
    const auto goldens = per_query_serial_goldens(k, nullptr, queries, events);
    std::vector<std::vector<std::uint64_t>> golden_sigs;
    for (const auto& g : goldens) golden_sigs.push_back(signature(g));
    for (const bool shared : {true, false}) {
      RunResult best;
      bool reps_parity = true;  // parity must hold on EVERY rep
      for (int rep = 0; rep < 2; ++rep) {
        RunResult r = shared ? run_shared(events, queries, k)
                             : run_independent(events, queries, k);
        reps_parity = reps_parity && r.per_query_sigs == golden_sigs;
        if (rep == 0 || r.wall_seconds < best.wall_seconds) {
          best = std::move(r);
        }
      }
      best.parity = reps_parity;
      parity_all = parity_all && best.parity;
      if (k == 1) {
        (shared ? shared_wall_k1 : independent_wall_k1) = best.wall_seconds;
      }
      const char* mode = shared ? "shared" : "indep";
      std::printf("| %-8s | %-6zu | %-14.0f | %-9.3f | %-8zu | %-7s |\n", mode,
                  k, best.events_per_sec, best.wall_seconds, best.matches,
                  best.parity ? "ok" : "FAIL");
      if (!first_row) json += ",\n";
      first_row = false;
      json += "    {\"mode\": \"" + std::string(mode) +
              "\", \"shards\": " + std::to_string(k) +
              ", \"events_per_sec\": " + bench_support::json_double(best.events_per_sec) +
              ", \"wall_seconds\": " + bench_support::json_double(best.wall_seconds) +
              ", \"matches\": " + std::to_string(best.matches) +
              ", \"parity\": " + (best.parity ? "true" : "false") + "}";
    }
  }
  json += "\n  ],\n";

  const double speedup = shared_wall_k1 > 0.0
                             ? independent_wall_k1 / shared_wall_k1
                             : 0.0;
  json += "  \"acceptance\": {\"parity_all\": " +
          std::string(parity_all ? "true" : "false") +
          ", \"speedup_shared_vs_independent_k1\": " + bench_support::json_double(speedup) +
          ", \"speedup_ge_1_5x\": " +
          (speedup >= 1.5 ? std::string("true") : std::string("false")) +
          "}\n}\n";

  std::printf("\nN=%zu shared vs independent (K=1): %.2fx %s\n", kQueries,
              speedup, speedup >= 1.5 ? "(>= 1.5x: ok)" : "(< 1.5x)");

  const char* path = "BENCH_multi_query.json";
  const bool wrote = bench_support::write_json(path, json);
  if (wrote) {
    std::printf("wrote %s (parity: %s)\n", path, parity_all ? "ok" : "FAIL");
  }
  // Exact per-query parity is the contract; the JSON artifact is the
  // deliverable.  Either failing must fail CI.
  return (parity_all && wrote) ? 0 : 1;
}
