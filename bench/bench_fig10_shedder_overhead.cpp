// Figure 10: run-time overhead of the load shedder relative to event
// processing, as a function of the window size (M = 500 event types,
// N = ws up to 16000 positions).
//
// Two measurements:
//  * google-benchmark micro-benchmarks of the O(1) drop decision for growing
//    utility tables (bigger tables -> more cache misses, the effect the
//    paper attributes the growing overhead to), and
//  * a wall-clock ratio table: shedder decision time vs the measured
//    per-(event,window) processing time of the real matcher pipeline.
//
// Expected shape (paper): overhead grows with the window size but stays a
// few percent of processing time.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/espice_shedder.hpp"
#include "datasets/stock.hpp"
#include "harness/queries.hpp"
#include "sim/operator_sim.hpp"

namespace espice {
namespace {

constexpr std::size_t kNumTypes = 500;

std::shared_ptr<const UtilityModel> random_model(std::size_t n_positions,
                                                 std::uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<std::uint8_t> ut(kNumTypes * n_positions);
  std::vector<double> shares(kNumTypes * n_positions);
  for (std::size_t i = 0; i < ut.size(); ++i) {
    ut[i] = static_cast<std::uint8_t>(rng.uniform_int(101));
    shares[i] = rng.uniform(0.0, 2.0 / static_cast<double>(kNumTypes));
  }
  return std::make_shared<UtilityModel>(kNumTypes, n_positions, 1,
                                        std::move(ut), std::move(shares));
}

EspiceShedder make_active_shedder(std::shared_ptr<const UtilityModel> model) {
  EspiceShedder shedder(std::move(model));
  DropCommand cmd;
  cmd.active = true;
  cmd.x = 10.0;
  cmd.partitions = 4;
  shedder.on_command(cmd);
  return shedder;
}

// Random (event, position) lookups spanning the whole table.
struct LookupWorkload {
  std::vector<Event> events;
  std::vector<std::uint32_t> positions;

  explicit LookupWorkload(std::size_t n_positions, std::size_t count = 1 << 16) {
    Rng rng(17);
    events.resize(count);
    positions.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      events[i].type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
      events[i].value = 1.0;
      positions[i] = static_cast<std::uint32_t>(rng.uniform_int(n_positions));
    }
  }
};

void BM_ShedderDecision(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto shedder = make_active_shedder(random_model(n));
  const LookupWorkload workload(n);
  const double ws = static_cast<double>(n);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shedder.should_drop(workload.events[i], workload.positions[i], ws));
    i = (i + 1) & (workload.events.size() - 1);
  }
  state.counters["UT_bytes"] =
      static_cast<double>(shedder.model().footprint_bytes());
}
BENCHMARK(BM_ShedderDecision)
    ->Arg(2000)
    ->Arg(3000)
    ->Arg(4000)
    ->Arg(8000)
    ->Arg(16000);

void BM_ThresholdRecompute(benchmark::State& state) {
  // Control-plane cost: recomputing per-partition thresholds on a command.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto shedder = make_active_shedder(random_model(n));
  DropCommand cmd;
  cmd.active = true;
  cmd.partitions = 4;
  double x = 1.0;
  for (auto _ : state) {
    cmd.x = x;
    x = x < 64.0 ? x * 2.0 : 1.0;  // vary x; partition count stays cached
    shedder.on_command(cmd);
  }
}
BENCHMARK(BM_ThresholdRecompute)->Arg(2000)->Arg(16000);

// ---------------------------------------------------------------------------
// Wall-clock ratio: shedder decision vs real per-(event,window) processing.
// ---------------------------------------------------------------------------

double measure_decision_ns(std::size_t n_positions) {
  auto shedder = make_active_shedder(random_model(n_positions));
  const LookupWorkload workload(n_positions);
  const double ws = static_cast<double>(n_positions);
  // Warm up, then measure.
  bool sink = false;
  for (std::size_t i = 0; i < workload.events.size(); ++i) {
    sink ^= shedder.should_drop(workload.events[i], workload.positions[i], ws);
  }
  const std::size_t iters = 1 << 22;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t i = 0;
  for (std::size_t k = 0; k < iters; ++k) {
    sink ^= shedder.should_drop(workload.events[i], workload.positions[i], ws);
    i = (i + 1) & (workload.events.size() - 1);
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (sink) std::fprintf(stderr, " ");  // keep the loop observable
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

// Measures the matcher pipeline's processing cost per (event, window) pair
// on a Q2-style workload with count windows of `ws` events.
double measure_processing_ns(const std::vector<Event>& events,
                             const StockGenerator& gen, std::size_t ws) {
  QueryDef query = make_q2(gen, 20);
  query.window.span_kind = WindowSpan::kCount;
  query.window.span_events = ws;
  std::size_t memberships = 0;
  const auto t0 = std::chrono::steady_clock::now();
  run_pipeline(events, query.window, query.make_matcher(), nullptr, 0.0,
               [&](const Window& w, const std::vector<ComplexEvent>&) {
                 memberships += w.size();
               });
  const auto t1 = std::chrono::steady_clock::now();
  if (memberships == 0) return 0.0;
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(memberships);
}

void print_overhead_table() {
  TypeRegistry reg;
  StockGenerator gen(StockConfig{}, reg);
  const auto events = gen.generate(120'000);

  // Two denominators:
  //  * "this matcher": the repository's own C++ pipeline cost per
  //    (event, window) pair.  It is ~3 orders of magnitude cheaper than the
  //    paper's Java operator, which inflates the relative overhead, so
  //  * "calibrated op": the simulator's calibrated per-(event,window)
  //    operator cost (OperatorCostModel), which is the scale the paper's
  //    1-5% refers to.
  // The paper's actual claim -- O(1) decisions whose absolute cost grows
  // mildly with the table size (cache misses) and stays negligible against
  // a realistic operator -- shows up in the last column.
  const double calibrated_ns = OperatorCostModel{}.per_window_cost * 1e9;
  std::printf("\n=== Fig 10: LS overhead vs window size (M = 500) ===\n");
  std::printf("| %-15s | %-13s | %-18s | %-17s | %-17s |\n", "window (events)",
              "decision (ns)", "this matcher (ns)", "overhead % (this)",
              "overhead % (calib)");
  for (const std::size_t n : {2000u, 3000u, 4000u, 8000u, 16000u}) {
    const double decision = measure_decision_ns(n);
    const double processing = measure_processing_ns(events, gen, n);
    std::printf("| %-15zu | %-13.1f | %-18.1f | %-17.2f | %-17.3f |\n", n,
                decision, processing,
                processing > 0 ? 100.0 * decision / processing : 0.0,
                100.0 * decision / calibrated_ns);
  }
}

}  // namespace
}  // namespace espice

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  espice::print_overhead_table();
  return 0;
}
