// Figure 10: run-time overhead of the load shedder relative to event
// processing, as a function of the window size (M = 500 event types,
// N = ws up to 16000 positions).
//
// Two measurements:
//  * google-benchmark micro-benchmarks of the O(1) drop decision for growing
//    utility tables (bigger tables -> more cache misses, the effect the
//    paper attributes the growing overhead to), and
//  * a wall-clock ratio table: shedder decision time vs the measured
//    per-(event,window) processing time of the real matcher pipeline.
//
// Expected shape (paper): overhead grows with the window size but stays a
// few percent of processing time.
//
// In addition, the window-engine section measures the end-to-end cost of the
// zero-copy shared-store WindowManager against the naive copy-per-window
// reference on a slide << span workload (ns/event and resident kept-event
// bytes across overlap factors) and writes the numbers to
// BENCH_window_engine.json so later PRs have a perf trajectory.
//
// Smoke mode (--smoke flag or ESPICE_BENCH_SMOKE=1) shrinks every
// measurement for CI.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cep/incremental_matcher.hpp"
#include "cep/reference_window.hpp"
#include "common/rng.hpp"
#include "core/espice_shedder.hpp"
#include "datasets/stock.hpp"
#include "harness/queries.hpp"
#include "json_out.hpp"
#include "metrics/quality.hpp"
#include "sim/operator_sim.hpp"

namespace espice {
namespace {

constexpr std::size_t kNumTypes = 500;

bool g_smoke = false;

std::shared_ptr<const UtilityModel> random_model(std::size_t n_positions,
                                                 std::uint64_t seed = 5) {
  Rng rng(seed);
  std::vector<std::uint8_t> ut(kNumTypes * n_positions);
  std::vector<double> shares(kNumTypes * n_positions);
  for (std::size_t i = 0; i < ut.size(); ++i) {
    ut[i] = static_cast<std::uint8_t>(rng.uniform_int(101));
    shares[i] = rng.uniform(0.0, 2.0 / static_cast<double>(kNumTypes));
  }
  return std::make_shared<UtilityModel>(kNumTypes, n_positions, 1,
                                        std::move(ut), std::move(shares));
}

EspiceShedder make_active_shedder(std::shared_ptr<const UtilityModel> model) {
  EspiceShedder shedder(std::move(model));
  DropCommand cmd;
  cmd.active = true;
  cmd.x = 10.0;
  cmd.partitions = 4;
  shedder.on_command(cmd);
  return shedder;
}

// Random (event, position) lookups spanning the whole table.
struct LookupWorkload {
  std::vector<Event> events;
  std::vector<std::uint32_t> positions;

  explicit LookupWorkload(std::size_t n_positions, std::size_t count = 1 << 16) {
    Rng rng(17);
    events.resize(count);
    positions.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      events[i].type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
      events[i].value = 1.0;
      positions[i] = static_cast<std::uint32_t>(rng.uniform_int(n_positions));
    }
  }
};

void BM_ShedderDecision(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto shedder = make_active_shedder(random_model(n));
  const LookupWorkload workload(n);
  const double ws = static_cast<double>(n);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        shedder.should_drop(workload.events[i], workload.positions[i], ws));
    i = (i + 1) & (workload.events.size() - 1);
  }
  state.counters["UT_bytes"] =
      static_cast<double>(shedder.model().footprint_bytes());
}
BENCHMARK(BM_ShedderDecision)
    ->Arg(2000)
    ->Arg(3000)
    ->Arg(4000)
    ->Arg(8000)
    ->Arg(16000);

void BM_ThresholdRecompute(benchmark::State& state) {
  // Control-plane cost: recomputing per-partition thresholds on a command.
  const auto n = static_cast<std::size_t>(state.range(0));
  auto shedder = make_active_shedder(random_model(n));
  DropCommand cmd;
  cmd.active = true;
  cmd.partitions = 4;
  double x = 1.0;
  for (auto _ : state) {
    cmd.x = x;
    x = x < 64.0 ? x * 2.0 : 1.0;  // vary x; partition count stays cached
    shedder.on_command(cmd);
  }
}
BENCHMARK(BM_ThresholdRecompute)->Arg(2000)->Arg(16000);

// ---------------------------------------------------------------------------
// Wall-clock ratio: shedder decision vs real per-(event,window) processing.
// ---------------------------------------------------------------------------

double measure_decision_ns(std::size_t n_positions) {
  auto shedder = make_active_shedder(random_model(n_positions));
  const LookupWorkload workload(n_positions);
  const double ws = static_cast<double>(n_positions);
  // Warm up, then measure.
  bool sink = false;
  for (std::size_t i = 0; i < workload.events.size(); ++i) {
    sink ^= shedder.should_drop(workload.events[i], workload.positions[i], ws);
  }
  const std::size_t iters = g_smoke ? 1 << 18 : 1 << 22;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t i = 0;
  for (std::size_t k = 0; k < iters; ++k) {
    sink ^= shedder.should_drop(workload.events[i], workload.positions[i], ws);
    i = (i + 1) & (workload.events.size() - 1);
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (sink) std::fprintf(stderr, " ");  // keep the loop observable
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(iters);
}

// Measures the matcher pipeline's processing cost per (event, window) pair
// on a Q2-style workload with count windows of `ws` events.
double measure_processing_ns(const std::vector<Event>& events,
                             const StockGenerator& gen, std::size_t ws) {
  QueryDef query = make_q2(gen, 20);
  query.window.span_kind = WindowSpan::kCount;
  query.window.span_events = ws;
  std::size_t memberships = 0;
  const auto t0 = std::chrono::steady_clock::now();
  run_pipeline(events, query.window, query.make_matcher(), nullptr, 0.0,
               [&](const WindowView& w, const std::vector<ComplexEvent>&) {
                 memberships += w.size();
               });
  const auto t1 = std::chrono::steady_clock::now();
  if (memberships == 0) return 0.0;
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(memberships);
}

// ---------------------------------------------------------------------------
// Window-engine end-to-end: zero-copy shared store vs copy-per-window
// reference on a slide << span workload.
// ---------------------------------------------------------------------------

struct EngineRunResult {
  double ns_per_event = 0.0;
  std::size_t peak_payload_bytes = 0;  ///< resident kept-event payload
  std::size_t peak_index_bytes = 0;    ///< per-window index lists (new engine)
  std::size_t matches = 0;             ///< sink (and sanity: engines agree)
  std::size_t windows = 0;
};

/// Drives offer -> keep-everything -> drain -> match over the whole stream.
/// Works for both WindowManager (views) and ReferenceWindowManager (owned
/// windows) through the matcher's two overloads.
template <typename Manager>
EngineRunResult run_engine_once(const WindowSpec& spec, const Matcher& matcher,
                                const std::vector<Event>& events) {
  Manager mgr(spec);
  EngineRunResult r;
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t i = 0;
  for (const Event& e : events) {
    for (const auto& m : mgr.offer(e)) mgr.keep(m, e);
    for (const auto& w : mgr.drain_closed()) {
      ++r.windows;
      r.matches += matcher.match_window(w).size();
    }
    if ((++i & 1023) == 0) {  // sample resident memory every 1024 events
      r.peak_payload_bytes =
          std::max(r.peak_payload_bytes, mgr.resident_payload_bytes());
      if constexpr (requires { mgr.resident_index_bytes(); }) {
        r.peak_index_bytes =
            std::max(r.peak_index_bytes, mgr.resident_index_bytes());
      }
    }
  }
  mgr.close_all();
  for (const auto& w : mgr.drain_closed()) {
    ++r.windows;
    r.matches += matcher.match_window(w).size();
  }
  const auto t1 = std::chrono::steady_clock::now();
  r.ns_per_event = std::chrono::duration<double, std::nano>(t1 - t0).count() /
                   static_cast<double>(events.size());
  return r;
}

/// Best-of-N timing (min is the noise-robust estimator); memory peaks are
/// identical across repetitions.
template <typename Manager>
EngineRunResult run_engine(const WindowSpec& spec, const Matcher& matcher,
                           const std::vector<Event>& events) {
  const int reps = g_smoke ? 2 : 3;
  EngineRunResult best;
  for (int r = 0; r < reps; ++r) {
    const auto run = run_engine_once<Manager>(spec, matcher, events);
    if (r == 0 || run.ns_per_event < best.ns_per_event) best = run;
  }
  return best;
}

// ---------------------------------------------------------------------------
// Incremental matcher vs per-close batch rescan: overlap sweep.
//
// Workload shaped so matching dominates: a sequence of two RARE types over a
// long count window, slide swept so the overlap factor runs 1 / 8 / 32.
// Most windows carry no match, so the per-close batch scan walks the whole
// kept view once per window -- O(overlap) re-examinations per event -- while
// the incremental engine advances each kept event through a handful of
// stream-level runs exactly once, flat in the overlap.  Both pipelines share
// the identical bulk window path, so the delta is matcher-only.
// ---------------------------------------------------------------------------

struct MatcherSweepRow {
  std::size_t slide = 0;
  std::size_t overlap = 0;
  double baseline_ns = 0.0;     ///< windows only, no matching at all
  double batch_ns = 0.0;        ///< e2e with per-close rescans
  double incremental_ns = 0.0;  ///< e2e with feed + finalize
  std::size_t matches = 0;

  /// Matcher-only cost: e2e minus the shared window-maintenance baseline.
  double batch_matcher_ns() const {
    return std::max(batch_ns - baseline_ns, 0.0);
  }
  double incremental_matcher_ns() const {
    return std::max(incremental_ns - baseline_ns, 0.0);
  }
  double matcher_speedup() const {
    return incremental_matcher_ns() > 0.0
               ? batch_matcher_ns() / incremental_matcher_ns()
               : 0.0;
  }
};

std::uint64_t mix_hash(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

/// Order-sensitive digest over the canonical per-match identity the quality
/// metrics already define (window + element/event bindings).
std::uint64_t digest_matches(std::uint64_t h,
                             const std::vector<ComplexEvent>& matches) {
  for (const ComplexEvent& ce : matches) h = mix_hash(h, match_identity(ce));
  return h;
}

/// One pipeline pass: bulk all-keep ingestion (identical for both sides),
/// matching per closed window through `match`.  `wm` is caller-constructed
/// so the incremental side can attach its feed before the first offer.
template <typename MatchFn>
double run_matcher_pipeline(WindowManager& wm, const std::vector<Event>& events,
                            MatchFn&& match) {
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t i = 0;
  const std::span<const Event> all(events);
  while (i < events.size()) {
    const auto chunk = static_cast<std::size_t>(std::min<std::uint64_t>(
        events.size() - i, wm.close_free_horizon()));
    wm.offer_keep_all_block(all.subspan(i, chunk));
    for (const WindowView& w : wm.drain_closed()) match(w);
    i += chunk;
  }
  wm.close_all();
  for (const WindowView& w : wm.drain_closed()) match(w);
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::nano>(t1 - t0).count() /
         static_cast<double>(events.size());
}

bool print_incremental_matcher_section(std::string& json_out) {
  constexpr std::size_t kSpan = 2048;
  const std::size_t n_events = g_smoke ? 60'000 : 400'000;

  // Rare sequence head (one anchor per ~4 windows), tail following within
  // ~quarter of a window: most windows carry no anchor at all, so the batch
  // scan walks the whole kept view hunting element 0 once per close, while
  // the run engine keeps almost no active runs.
  Rng rng(77);
  std::vector<Event> events(n_events);
  for (std::size_t i = 0; i < n_events; ++i) {
    const std::uint64_t roll = rng.uniform_int(8192);
    Event& e = events[i];
    e.type = roll < 1 ? 0 : (roll < 17 ? 1 : static_cast<EventTypeId>(
                                             2 + rng.uniform_int(20)));
    e.seq = i;
    e.ts = static_cast<double>(i) * 1e-3;
    e.value = 1.0;
  }
  const Pattern pattern =
      make_sequence({element("a", TypeSet{0}), element("b", TypeSet{1})});
  const Matcher batch(pattern, SelectionPolicy::kFirst,
                      ConsumptionPolicy::kConsumed, 1);

  std::printf(
      "\n=== Matcher: stream-level runs vs per-close rescan (span = %zu) "
      "===\n",
      kSpan);
  std::printf("| %-7s | %-12s | %-14s | %-14s | %-11s | %-11s | %-7s |\n",
              "overlap", "windows only", "batch e2e", "incremental", "batch m.",
              "increm. m.", "speedup");

  const int reps = g_smoke ? 2 : 3;
  const std::size_t slides[] = {kSpan, kSpan / 8, kSpan / 32};
  std::vector<MatcherSweepRow> rows;
  bool parity = true;
  for (const std::size_t slide : slides) {
    WindowSpec spec;
    spec.span_kind = WindowSpan::kCount;
    spec.span_events = kSpan;
    spec.open_kind = WindowOpen::kCountSlide;
    spec.slide_events = slide;

    MatcherSweepRow row;
    row.slide = slide;
    row.overlap = kSpan / slide;
    std::uint64_t batch_hash = 0, inc_hash = 0;
    std::size_t batch_count = 0, inc_count = 0;
    for (int r = 0; r < reps; ++r) {
      WindowManager wm(spec);
      const double ns = run_matcher_pipeline(wm, events, [](const WindowView&) {});
      if (r == 0 || ns < row.baseline_ns) row.baseline_ns = ns;
    }
    for (int r = 0; r < reps; ++r) {
      WindowManager wm(spec);
      std::uint64_t h = 0;
      std::size_t c = 0;
      const double ns =
          run_matcher_pipeline(wm, events, [&](const WindowView& w) {
            const auto matches = batch.match_window(w);
            c += matches.size();
            h = digest_matches(h, matches);
          });
      if (r == 0 || ns < row.batch_ns) row.batch_ns = ns;
      batch_hash = h;
      batch_count = c;
    }
    for (int r = 0; r < reps; ++r) {
      WindowManager wm(spec);
      IncrementalMatcher inc(pattern, SelectionPolicy::kFirst,
                             ConsumptionPolicy::kConsumed, 1);
      MatcherFeed feed(&inc);
      wm.set_kept_feed(&feed);
      std::uint64_t h = 0;
      std::size_t c = 0;
      std::vector<ComplexEvent> scratch;
      const double ns =
          run_matcher_pipeline(wm, events, [&](const WindowView& w) {
            scratch.clear();
            inc.finalize(w, scratch);
            c += scratch.size();
            h = digest_matches(h, scratch);
          });
      if (r == 0 || ns < row.incremental_ns) row.incremental_ns = ns;
      inc_hash = h;
      inc_count = c;
    }
    if (batch_hash != inc_hash || batch_count != inc_count) {
      parity = false;
      std::fprintf(stderr,
                   "matcher parity loss at overlap %zu (batch %zu/%016llx, "
                   "incremental %zu/%016llx)\n",
                   row.overlap, batch_count,
                   static_cast<unsigned long long>(batch_hash), inc_count,
                   static_cast<unsigned long long>(inc_hash));
    }
    row.matches = batch_count;
    std::printf("| %-7zu | %-12.1f | %-14.1f | %-14.1f | %-11.1f | %-11.1f | "
                "%-7.2f |\n",
                row.overlap, row.baseline_ns, row.batch_ns, row.incremental_ns,
                row.batch_matcher_ns(), row.incremental_matcher_ns(),
                row.matcher_speedup());
    rows.push_back(row);
  }

  const MatcherSweepRow& o1 = rows.front();
  const MatcherSweepRow& o32 = rows.back();
  const double overlap32_speedup = o32.matcher_speedup();
  const double flatness =
      o1.incremental_matcher_ns() > 0.0
          ? o32.incremental_matcher_ns() / o1.incremental_matcher_ns()
          : 0.0;

  std::string json = "  \"matcher_overlap_sweep\": {\n";
  json += "    \"span_events\": " + std::to_string(kSpan) + ",\n";
  json += "    \"events\": " + std::to_string(n_events) + ",\n";
  json += "    \"pattern\": \"seq(rare_a; rare_b), first/consumed, max 1\",\n";
  json += "    \"workloads\": [\n";
  for (std::size_t k = 0; k < rows.size(); ++k) {
    const MatcherSweepRow& r = rows[k];
    json += "      {\"slide_events\": " + std::to_string(r.slide) +
            ", \"overlap\": " + std::to_string(r.overlap) +
            ", \"matches\": " + std::to_string(r.matches) +
            ", \"windows_only_ns_per_event\": " + bench_support::json_double(r.baseline_ns) +
            ", \"batch_ns_per_event\": " + bench_support::json_double(r.batch_ns) +
            ", \"incremental_ns_per_event\": " +
            bench_support::json_double(r.incremental_ns) +
            ", \"batch_matcher_ns_per_event\": " +
            bench_support::json_double(r.batch_matcher_ns()) +
            ", \"incremental_matcher_ns_per_event\": " +
            bench_support::json_double(r.incremental_matcher_ns()) +
            ", \"matcher_speedup\": " + bench_support::json_double(r.matcher_speedup()) +
            "}";
    json += (k + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "    ],\n";
  json += "    \"acceptance\": {\"matcher_parity\": " +
          bench_support::json_bool(parity) +
          ", \"overlap32_matcher_speedup\": " +
          bench_support::json_double(overlap32_speedup) +
          ", \"overlap32_matcher_speedup_ge_2x\": " +
          bench_support::json_bool(overlap32_speedup >= 2.0) +
          ", \"incremental_matcher_ns_overlap32_over_overlap1\": " +
          bench_support::json_double(flatness) + "}\n";
  json += "  },\n";
  json_out = std::move(json);
  std::printf(
      "overlap-32 matcher speedup %.2fx; incremental flatness (32x/1x) "
      "%.2f\n",
      overlap32_speedup, flatness);
  return parity;
}

/// Returns false if the two engines disagreed on any workload (a
/// correctness regression; the process exits nonzero so CI notices).
bool print_window_engine_section(const std::string& matcher_sweep_json) {
  // Q4-shaped workload: count windows, slide << span.  The pattern is short
  // (first selection exits early), so the measurement is dominated by window
  // maintenance -- the thing this engine changed -- not by matching.
  constexpr std::size_t kSpan = 1024;
  constexpr std::size_t kTypes = 20;
  const std::size_t n_events = g_smoke ? 30'000 : 200'000;

  Rng rng(123);
  std::vector<Event> events(n_events);
  for (std::size_t i = 0; i < n_events; ++i) {
    events[i].type = static_cast<EventTypeId>(rng.uniform_int(kTypes));
    events[i].seq = i;
    events[i].ts = static_cast<double>(i) * 1e-3;
    events[i].value = 1.0;
  }
  const Pattern pattern =
      make_sequence({element("a", TypeSet{0}), element("b", TypeSet{1})});
  const Matcher matcher(pattern, SelectionPolicy::kFirst,
                        ConsumptionPolicy::kConsumed, 1);

  std::printf(
      "\n=== Window engine: shared store vs copy-per-window (span = %zu) ===\n",
      kSpan);
  std::printf("| %-7s | %-16s | %-16s | %-7s | %-14s | %-14s | %-13s |\n",
              "overlap", "shared ns/event", "naive ns/event", "speedup",
              "shared KiB", "naive KiB", "index KiB");

  std::string json = bench_support::json_header("window_engine_e2e", g_smoke);
  json += "  \"span_events\": " + std::to_string(kSpan) + ",\n";
  json += "  \"events\": " + std::to_string(n_events) + ",\n";
  json += "  \"event_bytes\": " + std::to_string(sizeof(Event)) + ",\n";
  json += matcher_sweep_json;
  json += "  \"workloads\": [\n";

  double overlap8_speedup = 0.0;
  std::size_t min_payload = 0, max_payload = 0;
  bool engines_agree = true;
  const std::size_t slides[] = {512, 128, 32};  // overlap 2, 8, 32
  for (std::size_t k = 0; k < std::size(slides); ++k) {
    WindowSpec spec;
    spec.span_kind = WindowSpan::kCount;
    spec.span_events = kSpan;
    spec.open_kind = WindowOpen::kCountSlide;
    spec.slide_events = slides[k];
    const std::size_t overlap = kSpan / slides[k];

    const auto shared = run_engine<WindowManager>(spec, matcher, events);
    const auto naive = run_engine<ReferenceWindowManager>(spec, matcher, events);
    if (shared.matches != naive.matches || shared.windows != naive.windows) {
      engines_agree = false;
      std::fprintf(stderr, "window engines disagree on workload overlap %zu\n",
                   overlap);
    }
    const double speedup = shared.ns_per_event > 0.0
                               ? naive.ns_per_event / shared.ns_per_event
                               : 0.0;
    if (overlap == 8) overlap8_speedup = speedup;
    if (k == 0) min_payload = max_payload = shared.peak_payload_bytes;
    min_payload = std::min(min_payload, shared.peak_payload_bytes);
    max_payload = std::max(max_payload, shared.peak_payload_bytes);

    std::printf("| %-7zu | %-16.1f | %-16.1f | %-7.2f | %-14.1f | %-14.1f | %-13.1f |\n",
                overlap, shared.ns_per_event, naive.ns_per_event, speedup,
                shared.peak_payload_bytes / 1024.0,
                naive.peak_payload_bytes / 1024.0,
                shared.peak_index_bytes / 1024.0);

    json += "    {\"slide_events\": " + std::to_string(slides[k]) +
            ", \"overlap\": " + std::to_string(overlap) +
            ", \"shared_store\": {\"ns_per_event\": " +
            bench_support::json_double(shared.ns_per_event) +
            ", \"peak_payload_bytes\": " +
            std::to_string(shared.peak_payload_bytes) +
            ", \"peak_index_bytes\": " +
            std::to_string(shared.peak_index_bytes) +
            "}, \"reference\": {\"ns_per_event\": " +
            bench_support::json_double(naive.ns_per_event) +
            ", \"peak_payload_bytes\": " +
            std::to_string(naive.peak_payload_bytes) +
            "}, \"speedup\": " + bench_support::json_double(speedup) + "}";
    json += (k + 1 < std::size(slides)) ? ",\n" : "\n";
  }
  // Payload is "flat" when the spread across overlap 2..32 stays within the
  // ring's power-of-two growth granularity (2x), nowhere near the 16x an
  // overlap-scaling engine would show.
  const bool payload_flat = max_payload <= 2 * std::max<std::size_t>(min_payload, 1);
  json += "  ],\n  \"acceptance\": {\"engines_agree\": " +
          std::string(engines_agree ? "true" : "false") +
          ", \"overlap8_speedup\": " + bench_support::json_double(overlap8_speedup) +
          ", \"overlap8_speedup_ge_2x\": " +
          (overlap8_speedup >= 2.0 ? std::string("true") : std::string("false")) +
          ", \"payload_flat_across_overlap\": " +
          (payload_flat ? std::string("true") : std::string("false")) + "}\n}\n";

  const char* path = "BENCH_window_engine.json";
  const bool wrote = bench_support::write_json(path, json);
  if (wrote) {
    std::printf("wrote %s (overlap-8 speedup %.2fx, payload flat: %s)\n", path,
                overlap8_speedup, payload_flat ? "yes" : "no");
  }
  // The JSON artifact is the bench's deliverable: failing to write it must
  // fail CI, same policy as the other parity-gated benches.
  return engines_agree && wrote;
}

void print_overhead_table() {
  TypeRegistry reg;
  StockGenerator gen(StockConfig{}, reg);
  const auto events = gen.generate(g_smoke ? 40'000 : 120'000);

  // Two denominators:
  //  * "this matcher": the repository's own C++ pipeline cost per
  //    (event, window) pair.  It is ~3 orders of magnitude cheaper than the
  //    paper's Java operator, which inflates the relative overhead, so
  //  * "calibrated op": the simulator's calibrated per-(event,window)
  //    operator cost (OperatorCostModel), which is the scale the paper's
  //    1-5% refers to.
  // The paper's actual claim -- O(1) decisions whose absolute cost grows
  // mildly with the table size (cache misses) and stays negligible against
  // a realistic operator -- shows up in the last column.
  const double calibrated_ns = OperatorCostModel{}.per_window_cost * 1e9;
  std::printf("\n=== Fig 10: LS overhead vs window size (M = 500) ===\n");
  std::printf("| %-15s | %-13s | %-18s | %-17s | %-17s |\n", "window (events)",
              "decision (ns)", "this matcher (ns)", "overhead % (this)",
              "overhead % (calib)");
  const std::vector<std::size_t> sizes =
      g_smoke ? std::vector<std::size_t>{2000}
              : std::vector<std::size_t>{2000, 3000, 4000, 8000, 16000};
  for (const std::size_t n : sizes) {
    const double decision = measure_decision_ns(n);
    const double processing = measure_processing_ns(events, gen, n);
    std::printf("| %-15zu | %-13.1f | %-18.1f | %-17.2f | %-17.3f |\n", n,
                decision, processing,
                processing > 0 ? 100.0 * decision / processing : 0.0,
                100.0 * decision / calibrated_ns);
  }
}

}  // namespace
}  // namespace espice

int main(int argc, char** argv) {
  // Strip --smoke before google-benchmark sees the arguments.
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      espice::g_smoke = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }
  if (const char* env = std::getenv("ESPICE_BENCH_SMOKE");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    espice::g_smoke = true;
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  std::string matcher_sweep_json;
  const bool matcher_parity =
      espice::print_incremental_matcher_section(matcher_sweep_json);
  const bool engines_agree =
      espice::print_window_engine_section(matcher_sweep_json);
  espice::print_overhead_table();
  return engines_agree && matcher_parity ? 0 : 1;
}
