// Figure 6: percentage of false positives for Q1 (pattern-size sweep) and
// Q3 (window-size sweep), first selection, rates R1/R2, eSPICE vs BL.
//
// Expected shape (paper): mirrors the false-negative trends; Q1's any
// operator produces alternatives, so dropped constituents often get falsely
// replaced (FP grows with pattern size and rate); Q3's exact sequence keeps
// eSPICE near zero while BL's FP grows with the window size.
#include <iostream>

#include "smoke.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace espice;

namespace {

void run_sweep(const std::string& title, const std::vector<QueryDef>& queries,
               const std::vector<std::string>& labels, const std::string& x,
               std::size_t num_types, const std::vector<Event>& events,
               std::size_t train, std::size_t measure, std::size_t bin_size) {
  print_section(std::cout, title);
  Table table({x, "golden", "R1 eSPICE %FP", "R1 BL %FP", "R2 eSPICE %FP",
               "R2 BL %FP"});
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ExperimentConfig config;
    config.query = queries[i];
    config.num_types = num_types;
    config.train_events = train;
    config.measure_events = measure;
    config.bin_size = bin_size;
    const TrainedModel trained = train_model(
        config.query, num_types,
        std::span<const Event>(events).subspan(0, train), bin_size);
    std::vector<std::string> row{labels[i], ""};
    for (const double rate : {1.2, 1.4}) {
      for (const ShedderKind kind : {ShedderKind::kEspice, ShedderKind::kBaseline}) {
        config.rate_factor = rate;
        config.shedder = kind;
        const auto r = run_experiment(config, events, &trained);
        row[1] = std::to_string(r.quality.golden);
        row.push_back(fmt(r.quality.fp_percent(), 1));
      }
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  espice::bench_support::init_smoke(argc, argv);
  std::cout << "Figure 6: false positives (lower is better; eSPICE vs BL)\n";

  TypeRegistry rtls_reg;
  RtlsGenerator rtls(RtlsConfig{}, rtls_reg);
  const auto rtls_events = rtls.generate(espice::bench_support::scaled(260'000));
  {
    std::vector<QueryDef> queries;
    std::vector<std::string> labels;
    for (const std::size_t n : {2u, 3u, 4u, 5u, 6u}) {
      queries.push_back(make_q1(rtls, n));
      labels.push_back(std::to_string(n));
    }
    run_sweep("Fig 6a: Q1, first selection (RTLS)", queries, labels,
              "pattern size", rtls_reg.size(), rtls_events, espice::bench_support::scaled(130'000), espice::bench_support::scaled(120'000), 1);
  }

  TypeRegistry stock_reg;
  StockGenerator stock(StockConfig{}, stock_reg);
  const auto stock_events = stock.generate(espice::bench_support::scaled(620'000));
  {
    std::vector<QueryDef> queries;
    std::vector<std::string> labels;
    for (const std::size_t ws : {1200u, 1500u, 1800u, 2000u}) {
      queries.push_back(make_q3(stock, ws));
      labels.push_back(std::to_string(ws));
    }
    run_sweep("Fig 6b: Q3, first selection (NYSE)", queries, labels,
              "window size", stock_reg.size(), stock_events, espice::bench_support::scaled(470'000), espice::bench_support::scaled(140'000),
              4);
  }
  return 0;
}
