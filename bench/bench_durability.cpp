// Durability overhead and recovery throughput on a single-shard engine.
//
// Measures what the write-ahead log costs on a representative CEP workload
// (128x-overlapped sliding count windows, 3-element pattern, batch-256
// pushes) at every fsync policy, plus auto-checkpointing, against the
// memory-only baseline -- and then how fast the engine comes back:
// replay-from-log throughput with no snapshot (the whole stream re-runs
// through the pipeline) and recovery latency from the newest snapshot +
// log tail.
//
// Hard gates (nonzero exit): every run -- logged, checkpointed, recovered --
// must reproduce the memory-only run's matches bit for bit, and the
// fsync=none log overhead must stay within 15% of memory-only throughput
// (one write() per 256-event batch into the page cache; if that costs more
// than 15% the batching is broken).  The wal-none-degrade / wal-none-retry
// rows run the same fsync=none workload under on_wal_error =
// kDegradeToMemory / kRetryBackoff with NO faults armed: they price the
// IoEnv virtual dispatch plus the policy branch on the happy path, gated
// within 10% of the wal-none row (the policy machinery must be free when
// nothing fails).  Both overhead criteria need the router and the shard on
// separate cores; on fewer than 2 hardware threads the JSON records
// "skipped_insufficient_cores" instead of a boolean.  kInterval/kEveryBatch
// rows are recorded but not gated: their cost is the disk's, not the
// engine's.
//
// Writes BENCH_durability.json.  --smoke / ESPICE_BENCH_SMOKE=1 shrinks the
// stream for CI smoke runs.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "json_out.hpp"
#include "runtime/stream_engine.hpp"
#include "smoke.hpp"

namespace espice {
namespace {

constexpr std::size_t kNumTypes = 64;
constexpr std::size_t kSpan = 1024;
// 128x-overlapped sliding windows: the operator does real pattern work per
// event (the paper's premise -- an expensive CEP operator), so the measured
// overhead is logging vs a representative pipeline, not vs an empty ingest
// loop.
constexpr std::size_t kSlide = 8;
constexpr std::size_t kBatch = 256;

std::vector<Event> make_stream(std::size_t n) {
  Rng rng(0xd04ab1e);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += rng.uniform(0.0, 0.01);
    e.ts = ts;
    e.value = rng.uniform(-1.0, 1.0);
    events.push_back(e);
  }
  return events;
}

StreamEngineConfig make_config(const std::string& durability_dir,
                               durability::FsyncPolicy fsync,
                               std::uint64_t snapshot_every,
                               WalErrorPolicy policy = WalErrorPolicy::kFailStop) {
  StreamEngineConfig config;
  config.shards = 1;
  config.ring_capacity = 16384;
  config.query.pattern =
      make_sequence({element("up", TypeSet{}, DirectionFilter::kRising),
                     element("down", TypeSet{}, DirectionFilter::kFalling),
                     element("up2", TypeSet{}, DirectionFilter::kRising)});
  config.query.window.span_kind = WindowSpan::kCount;
  config.query.window.span_events = kSpan;
  config.query.window.open_kind = WindowOpen::kCountSlide;
  config.query.window.slide_events = kSlide;
  if (!durability_dir.empty()) {
    DurabilityConfig d;
    d.dir = durability_dir;
    d.fsync = fsync;
    d.snapshot_every_events = snapshot_every;
    d.on_wal_error = policy;
    config.durability = d;
  }
  return config;
}

/// Flattened (seq...) signature of a canonically ordered match list; two
/// lists are identical iff their signatures are.
std::vector<std::uint64_t> signature(const std::vector<ComplexEvent>& ms) {
  std::vector<std::uint64_t> sig;
  sig.reserve(ms.size() * 4);
  for (const auto& m : ms) {
    sig.push_back(m.constituents.size());
    for (const auto& c : m.constituents) sig.push_back(c.event.seq);
  }
  return sig;
}

/// Scratch directory under the system temp root; recreated fresh per run.
std::string scratch_dir(const std::string& tag) {
  namespace fs = std::filesystem;
  const fs::path p = fs::temp_directory_path() / ("espice-bench-" + tag);
  fs::remove_all(p);
  fs::create_directories(p);
  return p.string();
}

struct RunResult {
  double events_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::size_t matches = 0;
  bool parity = false;
};

/// One measured ingestion run; durability off when `dir` is empty.  Fresh
/// log/snapshot directory per repeat (cold log each time), best-of repeats.
RunResult run_ingest(const std::vector<Event>& events, const std::string& tag,
                     durability::FsyncPolicy fsync,
                     std::uint64_t snapshot_every, WalErrorPolicy policy,
                     const std::vector<std::uint64_t>& golden_sig,
                     int repeats) {
  RunResult best;
  for (int r = 0; r < repeats; ++r) {
    const std::string dir = tag.empty() ? "" : scratch_dir(tag);
    StreamEngine engine(make_config(dir, fsync, snapshot_every, policy));
    for (std::size_t i = 0; i < events.size(); i += kBatch) {
      engine.push_batch(std::span(events).subspan(
          i, std::min(kBatch, events.size() - i)));
    }
    const EngineReport report = engine.finish();
    const bool parity = signature(report.matches) == golden_sig;
    if (r == 0 || report.events_per_sec > best.events_per_sec) {
      best.events_per_sec = report.events_per_sec;
      best.wall_seconds = report.wall_seconds;
      best.matches = report.matches.size();
    }
    best.parity = (r == 0) ? parity : (best.parity && parity);
    if (!dir.empty()) std::filesystem::remove_all(dir);
  }
  return best;
}

struct RecoveryResult {
  double replay_events_per_sec = 0.0;
  double recover_seconds = 0.0;
  std::uint64_t replayed_events = 0;
  std::uint64_t snapshot_offset = 0;
  bool parity = false;
};

/// Writes one durable run into a fresh dir, then measures a cold
/// recover_and_start() over it and parity-checks the recovered output.
RecoveryResult run_recovery(const std::vector<Event>& events,
                            const std::string& tag,
                            std::uint64_t snapshot_every,
                            const std::vector<std::uint64_t>& golden_sig) {
  const std::string dir = scratch_dir(tag);
  {
    StreamEngine engine(
        make_config(dir, durability::FsyncPolicy::kNone, snapshot_every));
    for (std::size_t i = 0; i < events.size(); i += kBatch) {
      engine.push_batch(std::span(events).subspan(
          i, std::min(kBatch, events.size() - i)));
    }
    // Abandon without finish(): recovery must work from the log + published
    // snapshots alone.  The destructor joins the shard threads.
  }
  RecoveryResult out;
  StreamEngine engine(
      make_config(dir, durability::FsyncPolicy::kNone, snapshot_every));
  const auto t0 = std::chrono::steady_clock::now();
  const RecoveryReport rep = engine.recover_and_start();
  out.recover_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.replayed_events = rep.replayed_events;
  out.snapshot_offset = rep.snapshot_offset;
  out.replay_events_per_sec =
      out.recover_seconds > 0.0
          ? static_cast<double>(rep.replayed_events) / out.recover_seconds
          : 0.0;
  // fsync=none still makes every in-process-completed append readable, so
  // the whole stream is durable and the recovered run must be complete.
  const std::size_t missing = events.size() - rep.durable_events;
  if (missing != 0) {
    engine.push_batch(std::span(events).subspan(rep.durable_events));
  }
  out.parity = signature(engine.finish().matches) == golden_sig;
  std::filesystem::remove_all(dir);
  return out;
}

}  // namespace
}  // namespace espice

int main(int argc, char** argv) {
  using namespace espice;
  const bool smoke = bench_support::init_smoke(argc, argv);
  const std::size_t n_events = bench_support::scaled(1'000'000);
  const int repeats = smoke ? 3 : 4;
  const std::uint64_t checkpoint_every = n_events / 8;

  const auto events = make_stream(n_events);

  std::printf(
      "=== Durability overhead, single shard (span %zu, batch %zu, %zu "
      "events) ===\n",
      kSpan, kBatch, n_events);
  std::printf("| %-16s | %-14s | %-9s | %-8s | %-7s |\n", "mode", "events/sec",
              "wall (s)", "matches", "parity");

  // Parity baseline: the memory-only run IS the golden; its signature is
  // deterministic, so one untimed run pins it down.
  const std::vector<std::uint64_t> golden_sig = [&] {
    StreamEngine engine(make_config("", durability::FsyncPolicy::kNone, 0));
    engine.push_batch(std::span(events));
    return signature(engine.finish().matches);
  }();

  struct Row {
    const char* mode;
    const char* dir_tag;  // empty => memory-only
    durability::FsyncPolicy fsync;
    std::uint64_t snapshot_every;
    WalErrorPolicy policy;
    RunResult r;
  };
  // The two trailing rows rerun the wal-none workload under the non-default
  // on_wal_error policies with no faults armed: any gap vs wal-none is pure
  // policy-branch + IoEnv-dispatch overhead on the happy path.
  std::vector<Row> rows = {
      {"memory-only", "", durability::FsyncPolicy::kNone, 0,
       WalErrorPolicy::kFailStop, {}},
      {"wal-none", "wal-none", durability::FsyncPolicy::kNone, 0,
       WalErrorPolicy::kFailStop, {}},
      {"wal-interval64", "wal-interval", durability::FsyncPolicy::kInterval, 0,
       WalErrorPolicy::kFailStop, {}},
      {"wal-every-batch", "wal-every", durability::FsyncPolicy::kEveryBatch, 0,
       WalErrorPolicy::kFailStop, {}},
      {"wal-checkpointed", "wal-ckpt", durability::FsyncPolicy::kNone,
       checkpoint_every, WalErrorPolicy::kFailStop, {}},
      {"wal-none-degrade", "wal-degrade", durability::FsyncPolicy::kNone, 0,
       WalErrorPolicy::kDegradeToMemory, {}},
      {"wal-none-retry", "wal-retry", durability::FsyncPolicy::kNone, 0,
       WalErrorPolicy::kRetryBackoff, {}},
  };

  bool parity_all = true;
  for (auto& row : rows) {
    row.r = run_ingest(events, row.dir_tag, row.fsync, row.snapshot_every,
                       row.policy, golden_sig, repeats);
    parity_all = parity_all && row.r.parity;
    std::printf("| %-16s | %-14.0f | %-9.3f | %-8zu | %-7s |\n", row.mode,
                row.r.events_per_sec, row.r.wall_seconds, row.r.matches,
                row.r.parity ? "ok" : "FAIL");
  }

  const auto replay =
      run_recovery(events, "replay", /*snapshot_every=*/0, golden_sig);
  const auto snap_recovery = run_recovery(events, "snap-recovery",
                                          checkpoint_every, golden_sig);
  parity_all = parity_all && replay.parity && snap_recovery.parity;
  std::printf(
      "replay-from-log: %.0f events/sec (%llu events in %.3f s); "
      "snapshot+tail recovery: %.3f s (tail %llu events) -- parity %s\n",
      replay.replay_events_per_sec,
      static_cast<unsigned long long>(replay.replayed_events),
      replay.recover_seconds, snap_recovery.recover_seconds,
      static_cast<unsigned long long>(snap_recovery.replayed_events),
      (replay.parity && snap_recovery.parity) ? "ok" : "FAIL");

  const double base = rows[0].r.events_per_sec;
  const double logged = rows[1].r.events_per_sec;
  const double overhead_pct =
      base > 0.0 ? (1.0 - logged / base) * 100.0 : 100.0;
  const bool overhead_ok = logged >= 0.85 * base;
  // Policy gate: with no faults armed, kDegradeToMemory and kRetryBackoff
  // must price like plain wal-none -- the fault machinery is a cold branch,
  // not a tax.  10% is the noise band for best-of-repeats at full scale;
  // smoke streams are too short to resolve that, so the smoke band widens
  // to 20% (smoke is a functional gate, not a perf measurement).
  const double degraded = rows[5].r.events_per_sec;
  const double retried = rows[6].r.events_per_sec;
  const double policy_worst = std::min(degraded, retried);
  const double policy_overhead_pct =
      logged > 0.0 ? (1.0 - policy_worst / logged) * 100.0 : 100.0;
  const double policy_band_pct = smoke ? 20.0 : 10.0;
  const bool policy_ok =
      policy_worst >= (1.0 - policy_band_pct / 100.0) * logged;
  // The overhead criteria assume the log rides the router thread while
  // the shard works on its own core; on a single hardware thread every
  // append cycle is stolen from the pipeline and the measurement is mostly
  // scheduler churn.  Record them as skipped then, not false (parity stays
  // the hard gate) -- same policy as bench_batch_ingest.
  const unsigned hw_threads = std::thread::hardware_concurrency();
  const bool overhead_measurable = hw_threads >= 2;
  const std::string overhead_json =
      overhead_ok ? "true"
                  : (overhead_measurable ? "false"
                                         : "\"skipped_insufficient_cores\"");
  const std::string policy_json =
      policy_ok ? "true"
                : (overhead_measurable ? "false"
                                       : "\"skipped_insufficient_cores\"");

  std::string json = bench_support::json_header("durability", smoke);
  json += "  \"events\": " + std::to_string(n_events) + ",\n";
  json += "  \"batch_size\": " + std::to_string(kBatch) + ",\n";
  json += "  \"shards\": 1,\n";
  json += "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    json += "    {\"mode\": \"" + std::string(row.mode) +
            "\", \"wal_error_policy\": \"" +
            std::string(wal_error_policy_name(row.policy)) +
            "\", \"events_per_sec\": " + bench_support::json_double(row.r.events_per_sec) +
            ", \"wall_seconds\": " + bench_support::json_double(row.r.wall_seconds) +
            ", \"matches\": " + std::to_string(row.r.matches) +
            ", \"parity\": " + bench_support::json_bool(row.r.parity) + "}";
    json += (i + 1 < rows.size()) ? ",\n" : "\n";
  }
  json += "  ],\n";
  json += "  \"recovery\": {\n";
  json += "    \"replay_events_per_sec\": " +
          bench_support::json_double(replay.replay_events_per_sec) + ",\n";
  json += "    \"replay_events\": " + std::to_string(replay.replayed_events) +
          ",\n";
  json += "    \"replay_seconds\": " + bench_support::json_double(replay.recover_seconds) +
          ",\n";
  json += "    \"snapshot_recovery_seconds\": " +
          bench_support::json_double(snap_recovery.recover_seconds) + ",\n";
  json += "    \"snapshot_offset\": " +
          std::to_string(snap_recovery.snapshot_offset) + ",\n";
  json += "    \"snapshot_tail_events\": " +
          std::to_string(snap_recovery.replayed_events) + ",\n";
  json += "    \"parity\": " +
          bench_support::json_bool(replay.parity && snap_recovery.parity) +
          "\n  },\n";
  json += "  \"acceptance\": {\"parity_all\": " +
          bench_support::json_bool(parity_all) +
          ", \"wal_none_overhead_pct\": " + bench_support::json_double(overhead_pct) +
          ", \"wal_none_overhead_le_15pct\": " + overhead_json +
          ", \"policy_overhead_pct\": " +
          bench_support::json_double(policy_overhead_pct) +
          ", \"policy_overhead_band_pct\": " +
          bench_support::json_double(policy_band_pct) +
          ", \"policy_overhead_within_band\": " + policy_json + "}\n}\n";

  const char* path = "BENCH_durability.json";
  const bool wrote = bench_support::write_json(path, json);
  if (wrote) {
    std::printf(
        "wrote %s (wal-none overhead %.1f%%, policy overhead %.1f%%, "
        "parity: %s)\n",
        path, overhead_pct, policy_overhead_pct, parity_all ? "ok" : "FAIL");
  }
  return (parity_all && wrote &&
          ((overhead_ok && policy_ok) || !overhead_measurable))
             ? 0
             : 1;
}
