// Figure 8: impact of variable window size on quality.
//
// Protocol (paper Section 4.2): the model is trained on windows of several
// different (time-based) sizes, normalized into a single UT of N positions;
// load shedding then runs with one specific window size.  The x axis is the
// window size as a percentage of the reference size (the one whose event
// count matches N).
//
// Expected shape (paper): Q1 degrades only mildly; Q2 (longer pattern, more
// trigger types) degrades as |ws - N| grows.
#include <cmath>
#include <iostream>

#include "smoke.hpp"
#include "core/model_builder.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace espice;

namespace {

struct SizedStats {
  double avg_events = 0.0;
  double windows_per_event = 0.0;
};

SizedStats sizing_pass(const QueryDef& query, std::span<const Event> train) {
  SizedStats stats;
  std::size_t windows = 0;
  double size_sum = 0.0;
  run_pipeline(train, query.window, query.make_matcher(), nullptr, 0.0,
               [&](const WindowView& w, const std::vector<ComplexEvent>&) {
                 size_sum += static_cast<double>(w.size());
                 ++windows;
               });
  stats.avg_events = windows > 0 ? size_sum / static_cast<double>(windows) : 0.0;
  stats.windows_per_event = size_sum / static_cast<double>(train.size());
  return stats;
}

template <typename MakeQuery>
void run_family(const std::string& title, MakeQuery make_query,
                const std::vector<double>& window_seconds,
                double reference_seconds, std::size_t num_types,
                const std::vector<Event>& events, std::size_t train_n,
                std::size_t measure_n, std::size_t bin_size) {
  print_section(std::cout, title);
  const auto train = std::span<const Event>(events).subspan(0, train_n);

  // 1. Per-size statistics and the normalized position count N.
  std::vector<SizedStats> stats;
  double n_avg = 0.0;
  for (const double ws : window_seconds) {
    stats.push_back(sizing_pass(make_query(ws), train));
    n_avg += stats.back().avg_events;
  }
  const auto n_positions = static_cast<std::size_t>(
      std::lround(n_avg / static_cast<double>(window_seconds.size())));

  // 2. Train one model from all window sizes (the paper randomizes the size
  //    during model building; feeding every size into one builder trains on
  //    the same mixture).
  ModelBuilderConfig mb;
  mb.num_types = num_types;
  mb.n_positions = n_positions;
  mb.bin_size = bin_size;
  ModelBuilder builder(mb);
  for (const double ws : window_seconds) {
    const QueryDef query = make_query(ws);
    run_pipeline(train, query.window, query.make_matcher(), nullptr, 0.0,
                 [&](const WindowView& w, const std::vector<ComplexEvent>& ms) {
                   builder.observe_window(w);
                   for (const auto& m : ms) builder.observe_match(m, w.size());
                 });
  }
  TrainedModel trained;
  trained.model = builder.build();
  trained.windows = builder.windows_observed();
  trained.matches = builder.matches_observed();

  // 3. Measure each window size against the shared model.
  Table table({"window size %", "window (s)", "golden", "R1 %FN", "R2 %FN"});
  for (std::size_t i = 0; i < window_seconds.size(); ++i) {
    const double ws = window_seconds[i];
    TrainedModel sized = trained;
    sized.avg_window_size = stats[i].avg_events;
    sized.avg_windows_per_event = stats[i].windows_per_event;

    ExperimentConfig config;
    config.query = make_query(ws);
    config.num_types = num_types;
    config.train_events = train_n;
    config.measure_events = measure_n;
    config.bin_size = bin_size;
    config.shedder = ShedderKind::kEspice;
    // The shedder scales positions by the actual expected size of this run's
    // windows (the paper assumes the window size predictor knows it).
    config.predicted_ws_override = stats[i].avg_events;

    std::vector<std::string> row{
        fmt(100.0 * ws / reference_seconds, 0), fmt(ws, 0), ""};
    for (const double rate : {1.2, 1.4}) {
      config.rate_factor = rate;
      const auto r = run_experiment(config, events, &sized);
      row[2] = std::to_string(r.quality.golden);
      row.push_back(fmt(r.quality.fn_percent(), 1));
    }
    table.add_row(std::move(row));
  }
  std::cout << "N = " << n_positions << " positions, "
            << trained.matches << " training matches\n";
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  espice::bench_support::init_smoke(argc, argv);
  std::cout << "Figure 8: impact of variable window size on quality\n";

  TypeRegistry rtls_reg;
  RtlsGenerator rtls(RtlsConfig{}, rtls_reg);
  const auto rtls_events = rtls.generate(espice::bench_support::scaled(260'000));
  run_family(
      "Fig 8a: Q1 (n=5), window sizes 12..20 s (reference 16 s = 100%)",
      [&](double ws) { return make_q1(rtls, 5, ws); },
      {12.0, 14.0, 16.0, 18.0, 20.0}, 16.0, rtls_reg.size(), rtls_events,
      espice::bench_support::scaled(130'000), espice::bench_support::scaled(120'000), 1);

  TypeRegistry stock_reg;
  StockGenerator stock(StockConfig{}, stock_reg);
  const auto stock_events = stock.generate(espice::bench_support::scaled(620'000));
  run_family(
      "Fig 8b: Q2 (n=20), window sizes 180..300 s (reference 240 s = 100%)",
      [&](double ws) { return make_q2(stock, 20, ws); },
      {180.0, 200.0, 240.0, 260.0, 300.0}, 240.0, stock_reg.size(),
      stock_events, espice::bench_support::scaled(470'000), espice::bench_support::scaled(140'000), 4);

  return 0;
}
