// Shared JSON emission for the BENCH_*.json artifacts.
//
// Every bench writes one machine-readable JSON artifact so CI can track the
// perf trajectory per PR.  This header owns the uniform envelope all four
// writers share -- schema_version, benchmark name, hardware_threads and the
// smoke-mode flag -- so consumers can rely on one header shape instead of
// four hand-rolled variants.  Benches append their own fields after the
// header and close the object themselves.
#pragma once

#include <array>
#include <charconv>
#include <cstdio>
#include <string>
#include <thread>

namespace espice::bench_support {

/// Bump when the shared envelope changes shape.
inline constexpr int kBenchSchemaVersion = 2;

/// Opens a BENCH_*.json object with the uniform header fields.  The caller
/// appends bench-specific fields (each line ending in ",\n" as usual) and
/// the closing brace.
inline std::string json_header(const std::string& benchmark, bool smoke) {
  std::string json = "{\n";
  json +=
      "  \"schema_version\": " + std::to_string(kBenchSchemaVersion) + ",\n";
  json += "  \"benchmark\": \"" + benchmark + "\",\n";
  json += "  \"hardware_threads\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += std::string("  \"smoke\": ") + (smoke ? "true" : "false") + ",\n";
  return json;
}

inline std::string json_bool(bool value) { return value ? "true" : "false"; }

/// Locale-independent double formatting.  std::to_string(double) and the
/// printf %f family honor LC_NUMERIC, so under e.g. de_DE they emit a ','
/// decimal separator -- which is not valid JSON.  std::to_chars is defined
/// to use the C locale regardless of the global one.  Non-finite values
/// (which JSON cannot represent) are emitted as null.
inline std::string json_double(double value) {
  if (value != value || value == __builtin_huge_val() ||
      value == -__builtin_huge_val()) {
    return "null";
  }
  std::array<char, 64> buf;
  const auto res = std::to_chars(buf.data(), buf.data() + buf.size(), value,
                                 std::chars_format::fixed, 6);
  if (res.ec != std::errc{}) {
    // Out of range for fixed notation (|value| astronomically large):
    // fall back to shortest round-trip scientific form, still C-locale.
    const auto sci = std::to_chars(buf.data(), buf.data() + buf.size(), value);
    return std::string(buf.data(), sci.ptr);
  }
  return std::string(buf.data(), res.ptr);
}

/// Writes the artifact; false (with a stderr note) when the write failed --
/// the artifact is the bench's deliverable, so callers exit nonzero then.
inline bool write_json(const char* path, const std::string& json) {
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "could not open %s\n", path);
    return false;
  }
  const bool ok = std::fputs(json.c_str(), f) >= 0;
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "could not write %s\n", path);
  return ok;
}

}  // namespace espice::bench_support
