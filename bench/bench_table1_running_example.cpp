// Table 1 + Figure 2: the paper's running example.
//
// Part 1 replays the exact numbers: the hand-specified utility table UT
// (2 types x 5 positions) and position shares from Section 3.3, the CDT of
// Figure 2 and the uth = 10 threshold for dropping x = 2 events per window.
//
// Part 2 learns a comparable model from a generated two-type stream through
// the full pipeline (windowing -> matching -> model building), showing that
// the learned UT concentrates utility on the positions that bind matches.
#include <iostream>

#include "smoke.hpp"
#include "common/rng.hpp"
#include "core/cdt.hpp"
#include "core/model_builder.hpp"
#include "harness/report.hpp"
#include "sim/operator_sim.hpp"

using namespace espice;

namespace {

void part1_paper_numbers() {
  print_section(std::cout, "Table 1: hand-specified UT (utility per type/position)");
  const UtilityModel model(
      2, 5, 1,
      {70, 15, 10, 5, 0, /* A */ 0, 60, 30, 10, 0 /* B */},
      {0.8, 0.5, 0.1, 0.2, 0.5, /* A */ 0.2, 0.5, 0.9, 0.8, 0.5 /* B */});

  Table ut({"type", "pos 1", "pos 2", "pos 3", "pos 4", "pos 5"});
  for (std::size_t t = 0; t < 2; ++t) {
    std::vector<std::string> row{t == 0 ? "A" : "B"};
    for (std::size_t p = 0; p < 5; ++p) {
      row.push_back(std::to_string(
          model.utility_cell(static_cast<EventTypeId>(t), p)));
    }
    ut.add_row(std::move(row));
  }
  ut.print(std::cout);

  print_section(std::cout, "Figure 2: CDT (cumulative utility occurrences)");
  const auto cdts = Cdt::build_partitions(model, 1);
  Table cdt({"utility threshold u", "O(u)"});
  for (const int u : {0, 5, 10, 15, 30, 60, 70}) {
    cdt.add_row({std::to_string(u), fmt(cdts[0].at(u), 1)});
  }
  cdt.print(std::cout);
  std::cout << "to drop x = 2 events per window: uth = "
            << cdts[0].threshold(2.0) << " (paper: 10, since O(10) = 2.3)\n";
}

void part2_learned_model() {
  print_section(std::cout, "Learned model on a two-type stream (seq(A;B), ws = 5)");
  // Windows of 5: A at position 0, B at position 1 (the pair that binds the
  // first+consumed match), positions 2..4 hold random unbound noise.
  Rng rng(7);
  std::vector<Event> events;
  for (std::size_t i = 0; i < 5000; ++i) {
    Event e;
    const std::size_t pos = i % 5;
    e.type = pos == 0   ? 0
             : pos == 1 ? 1
                        : static_cast<EventTypeId>(rng.uniform_int(2));
    e.seq = i;
    e.ts = static_cast<double>(i);
    e.value = 1.0;
    events.push_back(e);
  }
  WindowSpec spec;
  spec.span_kind = WindowSpan::kCount;
  spec.span_events = 5;
  spec.open_kind = WindowOpen::kCountSlide;
  spec.slide_events = 5;
  const Matcher matcher(
      make_sequence({element("A", TypeSet{0}), element("B", TypeSet{1})}),
      SelectionPolicy::kFirst, ConsumptionPolicy::kConsumed);

  ModelBuilderConfig mb;
  mb.num_types = 2;
  mb.n_positions = 5;
  ModelBuilder builder(mb);
  run_pipeline(events, spec, matcher, nullptr, 5.0,
               [&](const WindowView& w, const std::vector<ComplexEvent>& ms) {
                 builder.observe_window(w);
                 for (const auto& m : ms) builder.observe_match(m, w.size());
               });
  const auto model = builder.build();

  Table ut({"type", "pos 1", "pos 2", "pos 3", "pos 4", "pos 5"});
  for (std::size_t t = 0; t < 2; ++t) {
    std::vector<std::string> row{t == 0 ? "A" : "B"};
    for (std::size_t p = 0; p < 5; ++p) {
      row.push_back(std::to_string(
          model->utility_cell(static_cast<EventTypeId>(t), p)));
    }
    ut.add_row(std::move(row));
  }
  ut.print(std::cout);

  const auto cdts = Cdt::build_partitions(*model, 1);
  std::cout << "learned CDT: O(0) = " << fmt(cdts[0].at(0), 1)
            << ", O(100) = " << fmt(cdts[0].at(100), 1)
            << "; uth for x = 2: " << cdts[0].threshold(2.0) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  espice::bench_support::init_smoke(argc, argv);
  std::cout << "Table 1 / Figure 2: the paper's running example\n";
  part1_paper_numbers();
  part2_learned_model();
  return 0;
}
