// Ablation: eSPICE vs the BL baseline vs uniform-random shedding, on both
// datasets.  Not a single paper figure, but the cross-cutting claim of the
// whole evaluation: utility-based, position-aware shedding beats type-only
// (BL) and blind (random) shedding on quality while all three hold the
// latency bound.
#include <iostream>

#include "smoke.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"

using namespace espice;

namespace {

void run_dataset(const std::string& title, const QueryDef& query,
                 std::size_t num_types, const std::vector<Event>& events,
                 std::size_t train, std::size_t measure) {
  print_section(std::cout, title);
  Table table({"shedder", "rate", "golden", "detected", "%FN", "%FP",
               "%dropped", "max latency (s)", "LB violations %"});
  for (const double rate : {1.2, 1.4}) {
    for (const ShedderKind kind :
         {ShedderKind::kEspice, ShedderKind::kBaseline, ShedderKind::kRandom}) {
      ExperimentConfig config;
      config.query = query;
      config.num_types = num_types;
      config.train_events = train;
      config.measure_events = measure;
      config.rate_factor = rate;
      config.shedder = kind;
      const ExperimentResult r = run_experiment(config, events);
      table.add_row({shedder_kind_name(kind), "R=th*" + fmt(rate, 1),
                     std::to_string(r.quality.golden),
                     std::to_string(r.quality.detected),
                     fmt(r.quality.fn_percent(), 1),
                     fmt(r.quality.fp_percent(), 1), fmt(r.drop_percent(), 1),
                     fmt(r.latency.max, 3),
                     fmt(r.latency.violation_percent(), 2)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  espice::bench_support::init_smoke(argc, argv);
  std::cout << "Ablation: shedder comparison (eSPICE vs BL vs random)\n";

  {
    TypeRegistry registry;
    RtlsGenerator gen(RtlsConfig{}, registry);
    const auto events = gen.generate(espice::bench_support::scaled(250'000));
    run_dataset("RTLS / Q1 (n=4, first selection)", make_q1(gen, 4),
                registry.size(), events, espice::bench_support::scaled(120'000), espice::bench_support::scaled(120'000));
  }
  {
    TypeRegistry registry;
    StockConfig sc;
    StockGenerator gen(sc, registry);
    const auto events = gen.generate(espice::bench_support::scaled(300'000));
    run_dataset("NYSE / Q2 (n=20, first selection)", make_q2(gen, 20),
                registry.size(), events, espice::bench_support::scaled(150'000), espice::bench_support::scaled(140'000));
  }
  return 0;
}
