// Event-time ingestion overhead and disorder parity.
//
// The event-time path puts a bounded reorder stage (min-heap on seq,
// watermark-driven release; see cep/event_time.hpp) ahead of window
// routing on every shard.  This bench answers two questions:
//
//  1. What does the stage cost?  Baseline (event time off) vs event time
//     on at disorder bounds {0, 64, 1024} over an in-order stream -- the
//     per-event overhead in ns is the heap + watermark bookkeeping alone.
//  2. Does disorder cost anything beyond the stage?  The same stream
//     shuffled within the bound must flow at comparable rate AND produce
//     bit-identical output.
//
// Parity is the hard gate: every run -- in-order or shuffled, any bound --
// must reproduce the event-time-off in-order golden match-for-match
// (constituent seq level).  Any mismatch exits nonzero, failing CI's
// bench-smoke job.  Throughput numbers are advisory (they track the perf
// trajectory in BENCH_event_time.json).
//
// Writes BENCH_event_time.json.  --smoke (or ESPICE_BENCH_SMOKE=1)
// shrinks the stream for CI smoke runs.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "cep/event_time.hpp"
#include "common/rng.hpp"
#include "json_out.hpp"
#include "runtime/stream_engine.hpp"

namespace espice {
namespace {

bool g_smoke = false;

constexpr std::size_t kNumTypes = 64;
constexpr std::size_t kSpan = 1024;
constexpr std::size_t kSlide = 1024;  // tumbling: ingestion dominates
constexpr std::size_t kShards = 2;
constexpr std::size_t kBatch = 256;

std::vector<Event> make_stream(std::size_t n) {
  Rng rng(0xe7b3a);
  std::vector<Event> events;
  events.reserve(n);
  double ts = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    Event e;
    e.type = static_cast<EventTypeId>(rng.uniform_int(kNumTypes));
    e.seq = i;
    ts += rng.uniform(0.0, 0.01);
    e.ts = ts;
    e.value = rng.uniform(-1.0, 1.0);
    events.push_back(e);
  }
  return events;
}

/// Fisher-Yates within consecutive blocks of `block`: measured disorder
/// < block, so a bound of `block` replays it with zero late events.
std::vector<Event> block_shuffle(std::vector<Event> events,
                                 std::size_t block) {
  Rng rng(0x5f0f71e);
  for (std::size_t base = 0; base < events.size(); base += block) {
    const std::size_t end = std::min(base + block, events.size());
    for (std::size_t i = end - 1; i > base; --i) {
      const std::size_t j = base + rng.uniform_int(i - base + 1);
      std::swap(events[i], events[j]);
    }
  }
  return events;
}

StreamEngineConfig make_config(std::int64_t disorder_bound) {
  StreamEngineConfig config;
  config.shards = kShards;
  config.ring_capacity = 16384;
  config.query.pattern = make_sequence(
      {element("up", TypeSet{}, DirectionFilter::kRising),
       element("down", TypeSet{}, DirectionFilter::kFalling),
       element("up2", TypeSet{}, DirectionFilter::kRising)});
  config.query.window.span_kind = WindowSpan::kCount;
  config.query.window.span_events = kSpan;
  config.query.window.open_kind = WindowOpen::kCountSlide;
  config.query.window.slide_events = kSlide;
  if (disorder_bound >= 0) {
    EventTimeConfig et;
    et.disorder_bound = static_cast<std::uint64_t>(disorder_bound);
    config.event_time = et;
  }
  return config;
}

/// Flattened (seq...) signature of a canonically ordered match list; two
/// lists are identical iff their signatures are.
std::vector<std::uint64_t> signature(const std::vector<ComplexEvent>& ms) {
  std::vector<std::uint64_t> sig;
  sig.reserve(ms.size() * 4);
  for (const auto& m : ms) {
    sig.push_back(m.constituents.size());
    for (const auto& c : m.constituents) sig.push_back(c.event.seq);
  }
  return sig;
}

struct RunResult {
  double events_per_sec = 0.0;
  double wall_seconds = 0.0;
  std::size_t matches = 0;
  std::uint64_t late = 0;
  bool parity = false;
};

/// One measured replay; bound < 0 means event time off.
RunResult run_at(const std::vector<Event>& events, std::int64_t bound,
                 const std::vector<std::uint64_t>& golden_sig, int repeats) {
  RunResult best;
  for (int r = 0; r < repeats; ++r) {
    StreamEngine engine(make_config(bound));
    const std::span<const Event> all(events);
    for (std::size_t i = 0; i < all.size(); i += kBatch) {
      engine.push_batch(all.subspan(i, std::min(kBatch, all.size() - i)));
    }
    const EngineReport report = engine.finish();
    const bool parity =
        signature(report.matches) == golden_sig && report.late_events == 0;
    if (r == 0 || report.events_per_sec > best.events_per_sec) {
      best.events_per_sec = report.events_per_sec;
      best.wall_seconds = report.wall_seconds;
      best.matches = report.matches.size();
      best.late = report.late_events;
    }
    best.parity = (r == 0) ? parity : (best.parity && parity);
  }
  return best;
}

}  // namespace
}  // namespace espice

int main(int argc, char** argv) {
  using namespace espice;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) g_smoke = true;
  }
  if (const char* env = std::getenv("ESPICE_BENCH_SMOKE");
      env != nullptr && env[0] != '\0' && env[0] != '0') {
    g_smoke = true;
  }

  const std::size_t n_events = g_smoke ? 150'000 : 1'000'000;
  const int repeats = g_smoke ? 2 : 3;
  const auto in_order = make_stream(n_events);

  // Golden: event time off, in-order input.  Every other run must
  // reproduce it bit for bit.
  StreamEngine golden_engine(make_config(-1));
  {
    const std::span<const Event> all(in_order);
    for (std::size_t i = 0; i < all.size(); i += kBatch) {
      golden_engine.push_batch(
          all.subspan(i, std::min(kBatch, all.size() - i)));
    }
  }
  const auto golden_sig = signature(golden_engine.finish().matches);

  std::printf(
      "=== Event-time reorder stage (span %zu, %zu shards, %zu events) "
      "===\n",
      kSpan, kShards, n_events);
  std::printf("| %-22s | %-14s | %-8s | %-10s | %-7s |\n", "run",
              "events/sec", "matches", "ns/event+", "parity");

  struct Case {
    const char* label;
    std::int64_t bound;
    bool shuffled;
  };
  const Case cases[] = {
      {"baseline (ET off)", -1, false}, {"bound 0, in-order", 0, false},
      {"bound 64, in-order", 64, false}, {"bound 64, shuffled", 64, true},
      {"bound 1024, in-order", 1024, false},
      {"bound 1024, shuffled", 1024, true},
  };

  double eps_baseline = 0.0;
  bool parity_all = true;
  std::string json = bench_support::json_header("event_time", g_smoke);
  json += "  \"events\": " + std::to_string(n_events) + ",\n";
  json += "  \"span_events\": " + std::to_string(kSpan) + ",\n";
  json += "  \"shards\": " + std::to_string(kShards) + ",\n";
  json += "  \"batch\": " + std::to_string(kBatch) + ",\n";
  json += "  \"runs\": [\n";

  for (std::size_t c = 0; c < std::size(cases); ++c) {
    const Case& k = cases[c];
    const auto events = k.shuffled
                            ? block_shuffle(in_order, static_cast<std::size_t>(
                                                          k.bound))
                            : in_order;
    const auto r = run_at(events, k.bound, golden_sig, repeats);
    parity_all = parity_all && r.parity;
    if (k.bound < 0) eps_baseline = r.events_per_sec;
    // Per-event overhead vs the ET-off baseline (positive = slower).
    const double ns_per_event =
        (eps_baseline > 0.0 && r.events_per_sec > 0.0)
            ? (1.0 / r.events_per_sec - 1.0 / eps_baseline) * 1e9
            : 0.0;
    std::printf("| %-22s | %-14.0f | %-8zu | %-10.1f | %-7s |\n", k.label,
                r.events_per_sec, r.matches, ns_per_event,
                r.parity ? "ok" : "FAIL");
    json += "    {\"label\": \"" + std::string(k.label) +
            "\", \"disorder_bound\": " + std::to_string(k.bound) +
            ", \"shuffled\": " + bench_support::json_bool(k.shuffled) +
            ", \"events_per_sec\": " + bench_support::json_double(r.events_per_sec) +
            ", \"wall_seconds\": " + bench_support::json_double(r.wall_seconds) +
            ", \"matches\": " + std::to_string(r.matches) +
            ", \"late_events\": " + std::to_string(r.late) +
            ", \"reorder_ns_per_event\": " + bench_support::json_double(ns_per_event) +
            ", \"parity\": " + bench_support::json_bool(r.parity) + "}";
    json += (c + 1 < std::size(cases)) ? ",\n" : "\n";
  }

  json += "  ],\n  \"acceptance\": {\"parity_all\": " +
          std::string(parity_all ? "true" : "false") + "}\n}\n";

  const char* path = "BENCH_event_time.json";
  const bool wrote = bench_support::write_json(path, json);
  if (wrote) {
    std::printf("wrote %s (parity: %s)\n", path,
                parity_all ? "ok" : "FAIL");
  }
  // Bit-identical output under within-bound disorder is the event-time
  // contract (nonzero exit on any mismatch); the JSON is the deliverable.
  return (parity_all && wrote) ? 0 : 1;
}
