// Quickstart: the smallest end-to-end use of the eSPICE library.
//
// 1. Generate a synthetic soccer (RTLS) stream.
// 2. Define Q1: a striker possession followed by any 3 defending events.
// 3. Train the utility model on a stream prefix.
// 4. Replay the rest at 1.3x the operator's capacity with eSPICE shedding.
// 5. Print quality (false negatives/positives) and latency-bound compliance.
#include <cstdio>
#include <iostream>

#include "harness/experiment.hpp"
#include "smoke.hpp"

int main() {
  using namespace espice;
  using examples::smoke_scaled;

  // --- Dataset ------------------------------------------------------------
  TypeRegistry registry;
  RtlsConfig rtls_config;
  RtlsGenerator generator(rtls_config, registry);
  const auto events = generator.generate(smoke_scaled(250'000, 60'000));

  // --- Query: Q1 with 3 defenders, 15 s windows ----------------------------
  QueryDef query = make_q1(generator, /*n=*/3, /*window_seconds=*/15.0);

  // --- Experiment: train on the prefix, overload the rest ------------------
  ExperimentConfig config;
  config.query = query;
  config.num_types = registry.size();
  config.train_events = smoke_scaled(120'000, 30'000);
  config.measure_events = smoke_scaled(120'000, 30'000);
  config.rate_factor = 1.3;        // 30% over capacity
  config.latency_bound = 1.0;      // seconds
  config.f = 0.8;
  config.shedder = ShedderKind::kEspice;

  const ExperimentResult result = run_experiment(config, events);

  std::cout << "eSPICE quickstart (" << query.name << ")\n"
            << "  operator throughput : " << static_cast<long>(result.throughput)
            << " events/s\n"
            << "  overload input rate : " << static_cast<long>(result.input_rate)
            << " events/s\n"
            << "  golden matches      : " << result.quality.golden << "\n"
            << "  detected matches    : " << result.quality.detected << "\n"
            << "  false negatives     : " << result.quality.fn_percent() << " %\n"
            << "  false positives     : " << result.quality.fp_percent() << " %\n"
            << "  dropped             : " << result.drop_percent()
            << " % of (event,window) pairs\n"
            << "  max latency         : " << result.latency.max << " s (bound "
            << config.latency_bound << " s)\n"
            << "  bound violations    : " << result.latency.violation_percent()
            << " % of events\n";

  return result.shedding_active ? 0 : 1;  // shedding must have engaged
}
