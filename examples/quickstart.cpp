// Quickstart: the smallest end-to-end use of the eSPICE library, hosted on
// the online operator API (the same incremental-matching path a production
// embedding uses).
//
// 1. Generate a synthetic soccer (RTLS) stream.
// 2. Define Q1: a striker possession followed by any 3 defending events.
// 3. Feed the stream through an EspiceOperator: it sizes its windows and
//    trains its utility model in-stream, then starts shedding when the
//    host's input queue backs up (simulated here by reporting an overloaded
//    queue depth to on_tick during the second half of the stream).
// 4. Print lifecycle, match and drop statistics.
#include <cstdint>
#include <iostream>

#include "core/espice_operator.hpp"
#include "datasets/rtls.hpp"
#include "harness/queries.hpp"
#include "smoke.hpp"

int main() {
  using namespace espice;
  using examples::smoke_scaled;

  // --- Dataset ------------------------------------------------------------
  TypeRegistry registry;
  RtlsConfig rtls_config;
  RtlsGenerator generator(rtls_config, registry);
  const auto events = generator.generate(smoke_scaled(240'000, 60'000));

  // --- Query: Q1 with 3 defenders, 15 s windows ----------------------------
  const QueryDef query = make_q1(generator, /*n=*/3, /*window_seconds=*/15.0);

  // --- Operator: train on the fly, shed under overload ----------------------
  EspiceOperatorConfig config;
  config.pattern = query.pattern;
  config.window = query.window;
  config.selection = query.selection;
  config.consumption = query.consumption;
  config.max_matches_per_window = query.max_matches_per_window;
  config.num_types = registry.size();
  config.sizing_windows = smoke_scaled(100, 30);
  config.training_windows = smoke_scaled(400, 80);
  config.detector.latency_bound = 1.0;
  config.detector.f = 0.8;

  std::uint64_t matches = 0;
  EspiceOperator op(config, [&matches](const ComplexEvent&) { ++matches; });

  // th = 1 / observed cost = 1000 events/s -> qmax = 1000; a reported queue
  // of 900 in the overloaded half crosses the f * qmax = 800 watermark.
  const std::size_t overload_from = events.size() / 2;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    op.observe_arrival(e.ts);
    op.observe_cost(1e-3);
    op.push(e);
    if (i % 128 == 0) {
      op.on_tick(e.ts, i >= overload_from ? 900 : 0);
    }
  }
  op.finish();

  const OperatorStats stats = op.stats();
  std::cout << "eSPICE quickstart (" << query.name << ")\n"
            << "  events              : " << stats.events << "\n"
            << "  windows closed      : " << stats.windows_closed << "\n"
            << "  phase reached       : "
            << (stats.phase == EspiceOperator::Phase::kShedding
                    ? "shedding"
                    : stats.phase == EspiceOperator::Phase::kTraining
                          ? "training"
                          : "sizing")
            << "\n"
            << "  detected matches    : " << matches << "\n"
            << "  shed decisions      : " << stats.decisions << "\n"
            << "  dropped             : " << stats.drops
            << " (event,window) pairs\n"
            << "  shedding active     : "
            << (stats.shedding_active ? "yes" : "no") << "\n";

  // The demo must have trained, matched and engaged shedding end to end.
  return (stats.phase == EspiceOperator::Phase::kShedding && matches > 0 &&
          stats.drops > 0)
             ? 0
             : 1;
}
