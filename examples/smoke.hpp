// Shared smoke-mode hook for the example binaries.
//
// Every example is registered with ctest as a smoke test (label `example`,
// ESPICE_EXAMPLE_SMOKE=1) so examples cannot silently rot: they must build,
// run on a shrunken stream and exit zero.  Run an example with the
// environment variable unset for the full-size demo output.
#pragma once

#include <cstddef>
#include <cstdlib>

namespace espice::examples {

/// True when ESPICE_EXAMPLE_SMOKE is set (nonempty, not "0").
inline bool smoke_mode() {
  const char* env = std::getenv("ESPICE_EXAMPLE_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// `full` for a real demo run, `small` under ctest smoke.
inline std::size_t smoke_scaled(std::size_t full, std::size_t small) {
  return smoke_mode() ? small : full;
}

}  // namespace espice::examples
