// Soccer man-marking analytics (the paper's Q1 scenario) with model
// introspection.
//
// A sports analyst detects "man marking": a striker possesses the ball and
// n defenders engage him within the next 15 seconds.  This example trains
// the utility model, then *inspects* it: which (defender, window-position)
// cells did eSPICE learn to protect?  It finishes with the f-advisor's
// recommendation for the watermark factor.
#include <algorithm>
#include <iostream>

#include "core/f_advisor.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "smoke.hpp"

int main() {
  using namespace espice;
  using examples::smoke_scaled;

  TypeRegistry registry;
  RtlsGenerator generator(RtlsConfig{}, registry);
  const auto events = generator.generate(smoke_scaled(260'000, 60'000));

  const QueryDef query = make_q1(generator, /*n=*/4);
  const TrainedModel trained =
      train_model(query, registry.size(),
                  std::span<const Event>(events).subspan(0, events.size() / 2),
                  /*bin_size=*/1);
  const UtilityModel& model = *trained.model;

  std::cout << "trained on " << trained.windows << " windows, "
            << trained.matches << " man-marking detections\n"
            << "utility table: " << model.num_types() << " types x "
            << model.cols() << " positions ("
            << model.footprint_bytes() / 1024 << " KiB)\n";

  // --- Where does the utility mass live? -----------------------------------
  // Report each type's peak utility and where it peaks (in seconds from the
  // window start -- the possession event).
  struct Peak {
    EventTypeId type;
    int utility;
    double at_seconds;
  };
  std::vector<Peak> peaks;
  const double events_per_second = generator.aggregate_rate();
  for (std::size_t t = 0; t < model.num_types(); ++t) {
    Peak peak{static_cast<EventTypeId>(t), 0, 0.0};
    for (std::size_t c = 0; c < model.cols(); ++c) {
      const int u = model.utility_cell(static_cast<EventTypeId>(t), c);
      if (u > peak.utility) {
        peak.utility = u;
        peak.at_seconds =
            static_cast<double>(c * model.bin_size()) / events_per_second;
      }
    }
    if (peak.utility > 0) peaks.push_back(peak);
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.utility > b.utility; });

  Table table({"event type", "peak utility", "peak at (s after possession)"});
  for (std::size_t i = 0; i < std::min<std::size_t>(peaks.size(), 10); ++i) {
    table.add_row({registry.name_of(peaks[i].type),
                   std::to_string(peaks[i].utility),
                   fmt(peaks[i].at_seconds, 1)});
  }
  std::cout << "\ntop learned utility peaks:\n";
  table.print(std::cout);
  std::cout << "\nthe strikers (window openers) and their assigned markers\n"
               "dominate; marker utility peaks a few seconds after the\n"
               "possession event, reflecting the markers' reaction lags.\n";

  // --- f-advisor ------------------------------------------------------------
  const double th = 1.0 / (OperatorCostModel{}.base_cost +
                           OperatorCostModel{}.per_window_cost *
                               trained.avg_windows_per_event);
  const FAdvice advice =
      suggest_f(model, /*qmax=*/1.0 * th,
                /*x=*/0.25 * static_cast<double>(model.n_positions()));
  std::cout << "\nf-advisor: use f = " << fmt(advice.f, 2) << " ("
            << advice.partitions
            << " partition(s) per window; low-utility class boundary "
            << advice.low_class_boundary << ")\n";
  return 0;
}
