// Soccer man-marking analytics (the paper's Q1 scenario) with model
// introspection, hosted on the online operator API.
//
// A sports analyst detects "man marking": a striker possesses the ball and
// n defenders engage him within the next 15 seconds.  This example feeds
// the stream through an EspiceOperator until its in-stream training
// completes, then *inspects* the learned utility model: which (defender,
// window-position) cells did eSPICE learn to protect?  It finishes with the
// f-advisor's recommendation for the watermark factor.
#include <algorithm>
#include <iostream>

#include "core/espice_operator.hpp"
#include "core/f_advisor.hpp"
#include "datasets/rtls.hpp"
#include "harness/queries.hpp"
#include "harness/report.hpp"
#include "sim/operator_sim.hpp"
#include "smoke.hpp"

int main() {
  using namespace espice;
  using examples::smoke_scaled;

  TypeRegistry registry;
  RtlsGenerator generator(RtlsConfig{}, registry);
  const auto events = generator.generate(smoke_scaled(260'000, 60'000));

  const QueryDef query = make_q1(generator, /*n=*/4);

  EspiceOperatorConfig config;
  config.pattern = query.pattern;
  config.window = query.window;
  config.selection = query.selection;
  config.consumption = query.consumption;
  config.num_types = registry.size();
  config.sizing_windows = smoke_scaled(100, 30);
  config.training_windows = smoke_scaled(500, 100);
  config.detector.latency_bound = 1.0;

  std::size_t detections = 0;
  EspiceOperator op(config, [&detections](const ComplexEvent&) { ++detections; });
  for (const Event& e : events) {
    op.push(e);
    if (op.phase() == EspiceOperator::Phase::kShedding) break;  // trained
  }
  if (op.model() == nullptr) {
    std::cerr << "training did not complete on this stream\n";
    return 1;
  }
  const UtilityModel& model = *op.model();
  const OperatorStats stats = op.stats();

  std::cout << "trained on " << stats.windows_observed << " windows, "
            << detections << " man-marking detections\n"
            << "utility table: " << model.num_types() << " types x "
            << model.cols() << " positions ("
            << model.footprint_bytes() / 1024 << " KiB)\n";

  // --- Where does the utility mass live? -----------------------------------
  // Report each type's peak utility and where it peaks (in seconds from the
  // window start -- the possession event).
  struct Peak {
    EventTypeId type;
    int utility;
    double at_seconds;
  };
  std::vector<Peak> peaks;
  const double events_per_second = generator.aggregate_rate();
  for (std::size_t t = 0; t < model.num_types(); ++t) {
    Peak peak{static_cast<EventTypeId>(t), 0, 0.0};
    for (std::size_t c = 0; c < model.cols(); ++c) {
      const int u = model.utility_cell(static_cast<EventTypeId>(t), c);
      if (u > peak.utility) {
        peak.utility = u;
        peak.at_seconds =
            static_cast<double>(c * model.bin_size()) / events_per_second;
      }
    }
    if (peak.utility > 0) peaks.push_back(peak);
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const Peak& a, const Peak& b) { return a.utility > b.utility; });

  Table table({"event type", "peak utility", "peak at (s after possession)"});
  for (std::size_t i = 0; i < std::min<std::size_t>(peaks.size(), 10); ++i) {
    table.add_row({registry.name_of(peaks[i].type),
                   std::to_string(peaks[i].utility),
                   fmt(peaks[i].at_seconds, 1)});
  }
  std::cout << "\ntop learned utility peaks:\n";
  table.print(std::cout);
  std::cout << "\nthe strikers (window openers) and their assigned markers\n"
               "dominate; marker utility peaks a few seconds after the\n"
               "possession event, reflecting the markers' reaction lags.\n";

  // --- f-advisor ------------------------------------------------------------
  const double avg_windows_per_event =
      stats.events > 0
          ? static_cast<double>(stats.memberships) /
                static_cast<double>(stats.events)
          : 0.0;
  const double th = 1.0 / (OperatorCostModel{}.base_cost +
                           OperatorCostModel{}.per_window_cost *
                               avg_windows_per_event);
  const FAdvice advice =
      suggest_f(model, /*qmax=*/1.0 * th,
                /*x=*/0.25 * static_cast<double>(model.n_positions()));
  std::cout << "\nf-advisor: use f = " << fmt(advice.f, 2) << " ("
            << advice.partitions
            << " partition(s) per window; low-utility class boundary "
            << advice.low_class_boundary << ")\n";
  return 0;
}
