// Stock-market monitoring (the paper's Q2 scenario).
//
// An analyst watches for situations where a rising quote of a leading
// technology stock is followed by rising quotes of 20 other symbols within
// 4 minutes.  The feed exceeds the operator's capacity at peak times, so a
// load shedder must keep the 1-second latency bound.  This example compares
// all three shedders on the same overload and also exports a slice of the
// synthetic feed to CSV (plug in your own feed by loading a CSV instead).
#include <iostream>

#include "datasets/csv.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "smoke.hpp"

int main() {
  using namespace espice;
  using examples::smoke_scaled;

  // --- Dataset: 500 symbols, 5 leaders, per-minute quotes ------------------
  TypeRegistry registry;
  StockGenerator generator(StockConfig{}, registry);
  const auto events = generator.generate(smoke_scaled(600'000, 120'000));

  // Export a sample so users can inspect the feed format (type,seq,ts,...).
  const std::string sample_path = "stock_sample.csv";
  save_events_csv(sample_path,
                  std::vector<Event>(events.begin(), events.begin() + 1000),
                  registry);
  std::cout << "wrote a 1000-event feed sample to " << sample_path << "\n\n";

  // --- Query: Q2 with n = 20 correlated risers ------------------------------
  const QueryDef query = make_q2(generator, 20);

  // --- Compare shedders under a 30% overload --------------------------------
  Table table({"shedder", "golden", "detected", "%FN", "%FP", "max latency (s)"});
  for (const ShedderKind kind :
       {ShedderKind::kEspice, ShedderKind::kBaseline, ShedderKind::kRandom}) {
    ExperimentConfig config;
    config.query = query;
    config.num_types = registry.size();
    config.train_events = smoke_scaled(450'000, 90'000);
    config.measure_events = smoke_scaled(140'000, 28'000);
    config.rate_factor = 1.3;
    config.bin_size = 4;
    config.shedder = kind;
    const ExperimentResult r = run_experiment(config, events);
    table.add_row({shedder_kind_name(kind), std::to_string(r.quality.golden),
                   std::to_string(r.quality.detected),
                   fmt(r.quality.fn_percent(), 1),
                   fmt(r.quality.fp_percent(), 1), fmt(r.latency.max, 3)});
  }
  std::cout << "Q2 under 1.3x overload (LB = 1 s):\n";
  table.print(std::cout);
  std::cout << "\neSPICE keeps most correlated-rise detections; type-only (BL)\n"
               "and random shedding destroy them because every symbol looks\n"
               "equally important without the position dimension.\n";
  return 0;
}
