// Multi-query monitoring: one engine, one mixed feed, many workloads.
//
// A middleware node rarely serves a single pattern: here one StreamEngine
// ingests a merged feed (NYSE-style quotes + RTLS soccer sensor events,
// interleaved by timestamp) and serves four concurrent queries -- two stock
// workloads and two soccer workloads -- registered through the harness
// bridge (to_engine_query).  Queries with identical windowing share one
// WindowManager/EventStore per shard; the rest get their own window group,
// but ingestion, sharding and routing are paid once for all of them.
//
// The example ends by re-running every query in its own single-query engine
// and asserting bit-identical per-query matches (the shared-window
// equivalence guarantee) -- exiting nonzero on any divergence.
#include <cstdio>
#include <iostream>
#include <vector>

#include "datasets/rtls.hpp"
#include "datasets/stock.hpp"
#include "harness/queries.hpp"
#include "harness/report.hpp"
#include "runtime/stream_engine.hpp"
#include "smoke.hpp"

int main() {
  using namespace espice;
  using examples::smoke_scaled;

  // --- One registry, one merged feed ---------------------------------------
  // Both generators intern their types into the same registry, so ids never
  // collide; the merged stream is re-sequenced in timestamp order.
  TypeRegistry registry;
  StockConfig stock_config;
  stock_config.num_symbols = 100;
  stock_config.num_leaders = 3;
  StockGenerator stock(stock_config, registry);
  RtlsGenerator rtls(RtlsConfig{}, registry);

  const std::size_t n = smoke_scaled(120'000, 6'000);
  auto quotes = stock.generate(n);
  auto sensors = rtls.generate(n);
  std::vector<Event> feed;
  feed.reserve(quotes.size() + sensors.size());
  std::size_t qi = 0, si = 0;
  while (qi < quotes.size() || si < sensors.size()) {
    const bool take_quote =
        si >= sensors.size() ||
        (qi < quotes.size() && quotes[qi].ts <= sensors[si].ts);
    feed.push_back(take_quote ? quotes[qi++] : sensors[si++]);
    feed.back().seq = feed.size() - 1;
  }

  // --- Four workloads, one engine ------------------------------------------
  std::vector<QueryDef> defs;
  defs.push_back(make_q1(rtls, /*n=*/3));           // soccer man-marking
  defs.push_back(make_q1(rtls, /*n=*/5));           // stricter marking (same
                                                    // windows -> shared group)
  defs.push_back(make_q2(stock, /*n=*/8));          // correlated risers
  defs.push_back(make_q3(stock, /*window=*/600, 6)); // lag-ordered sequence

  StreamEngineConfig config;
  config.shards = 2;
  config.ring_capacity = 4096;
  // Partition by correlation group, not by raw type: a stock symbol routes
  // with its leader (so Q3's lag-ordered sequences survive sharding), RTLS
  // objects by object id.  Stock types were interned first, so they occupy
  // ids [0, num_symbols).
  config.key_of = [&stock, n_stock = stock_config.num_symbols](const Event& e) {
    return e.type < n_stock ? static_cast<std::uint64_t>(stock.leader_of(e.type))
                            : static_cast<std::uint64_t>(e.type);
  };
  StreamEngine engine(config);
  for (const QueryDef& def : defs) engine.add_query(to_engine_query(def));

  for (const Event& e : feed) engine.push(e);
  const EngineReport report = engine.finish();

  Table table({"query", "matches", "memberships", "kept"});
  for (const auto& qr : report.queries) {
    table.add_row({qr.name, std::to_string(qr.matches.size()),
                   std::to_string(qr.memberships),
                   std::to_string(qr.memberships_kept)});
  }
  std::printf("%zu merged events (%zu types), %zu queries, %zu shards:\n\n",
              feed.size(), registry.size(), defs.size(),
              static_cast<std::size_t>(config.shards));
  table.print(std::cout);
  std::printf("\nshared-engine throughput: %.0f events/sec\n",
              report.events_per_sec);

  // --- The equivalence guarantee, checked ----------------------------------
  bool identical = true;
  for (std::size_t d = 0; d < defs.size(); ++d) {
    StreamEngineConfig solo_config;
    solo_config.shards = config.shards;
    solo_config.ring_capacity = config.ring_capacity;
    solo_config.key_of = config.key_of;
    StreamEngine solo(solo_config);
    solo.add_query(to_engine_query(defs[d]));
    for (const Event& e : feed) solo.push(e);
    const EngineReport solo_report = solo.finish();

    const auto& shared_ms = report.queries[d].matches;
    const auto& solo_ms = solo_report.queries[0].matches;
    bool same = shared_ms.size() == solo_ms.size();
    for (std::size_t i = 0; same && i < shared_ms.size(); ++i) {
      same = shared_ms[i].constituents.size() ==
             solo_ms[i].constituents.size();
      for (std::size_t c = 0; same && c < shared_ms[i].constituents.size();
           ++c) {
        same = shared_ms[i].constituents[c].event.seq ==
               solo_ms[i].constituents[c].event.seq;
      }
    }
    std::printf("%-12s shared == solo engine: %s\n", defs[d].name.c_str(),
                same ? "yes" : "NO");
    identical = identical && same;
  }
  if (!identical) {
    std::fprintf(stderr, "shared-window equivalence violated\n");
    return 1;
  }
  std::printf(
      "\nEvery query's output is bit-identical to running it alone --\n"
      "sharing the engine costs nothing in fidelity.\n");
  return 0;
}
