// Sharded stock-market monitoring: the stock_monitoring scenario scaled out
// with the StreamEngine.
//
// The feed is key-partitioned by symbol across K shards; every shard runs
// the full windowing + matching pipeline over its own symbols, fed through
// a bounded SPSC ring, and the engine merges the detected complex events
// into one canonically ordered output.  Because the engine is deterministic
// (fixed partition hash, per-shard FIFO, canonical merge), the K-shard
// result is bit-identical to the union of K serial runs over the same
// substreams -- verified below for every K.
#include <algorithm>
#include <cstdio>
#include <iostream>
#include <vector>

#include "datasets/stock.hpp"
#include "harness/report.hpp"
#include "runtime/stream_engine.hpp"
#include "sim/sharded_sim.hpp"
#include "smoke.hpp"

int main() {
  using namespace espice;
  using examples::smoke_scaled;

  // --- Feed: 500 symbols, per-minute quotes --------------------------------
  TypeRegistry registry;
  StockGenerator generator(StockConfig{}, registry);
  const auto events = generator.generate(smoke_scaled(200'000, 50'000));

  // --- Query: a rising quote followed by two falling quotes of any symbol
  // within a sliding count window over the shard's substream.
  ShardQuery query;
  query.pattern = make_sequence(
      {element("rise", TypeSet{}, DirectionFilter::kRising),
       element("fall", TypeSet{}, DirectionFilter::kFalling),
       element("fall2", TypeSet{}, DirectionFilter::kFalling)});
  query.window.span_kind = WindowSpan::kCount;
  query.window.span_events = 512;
  query.window.open_kind = WindowOpen::kCountSlide;
  query.window.slide_events = 64;

  Table table({"shards", "events/sec", "matches", "peak ring depth",
               "bit-identical to serial"});
  bool all_identical = true;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                   std::size_t{4}}) {
    StreamEngineConfig config;
    config.shards = shards;
    config.ring_capacity = 4096;
    config.query = query;
    StreamEngine engine(config);
    for (const Event& e : events) engine.push(e);
    const EngineReport report = engine.finish();

    const auto golden = partitioned_serial_golden(config, events);
    bool identical = golden.size() == report.matches.size();
    for (std::size_t i = 0; identical && i < golden.size(); ++i) {
      identical = golden[i].constituents.size() ==
                  report.matches[i].constituents.size();
      for (std::size_t c = 0; identical && c < golden[i].constituents.size();
           ++c) {
        identical = golden[i].constituents[c].event.seq ==
                    report.matches[i].constituents[c].event.seq;
      }
    }
    std::size_t peak_depth = 0;
    for (const auto& s : report.shards) {
      peak_depth = std::max(peak_depth, s.peak_queue_depth);
    }
    table.add_row({std::to_string(shards), fmt(report.events_per_sec, 0),
                   std::to_string(report.matches.size()),
                   std::to_string(peak_depth), identical ? "yes" : "NO"});
    all_identical = all_identical && identical;
  }

  std::printf("rising-then-two-falling over 500 symbols, %zu events:\n\n",
              events.size());
  table.print(std::cout);
  std::printf(
      "\nEach shard windows and matches its own symbols independently; the\n"
      "match count varies slightly with K because the substream windowing\n"
      "differs, but every K reproduces its serial golden exactly.\n");
  return all_identical ? 0 : 1;
}
