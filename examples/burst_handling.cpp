// Burst handling: the latency-bound story end to end.
//
// The input runs at a sustainable 90% of the operator's capacity, spikes to
// 180% for a stretch (a news event, a goal, ...), then calms down again.
// The overload detector notices the queue crossing the f*qmax watermark,
// engages the eSPICE shedder for the duration of the burst and disengages
// afterwards -- the latency bound holds throughout and nothing is dropped
// while the system is healthy.
#include <iostream>

#include "core/espice_shedder.hpp"
#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "metrics/latency.hpp"
#include "smoke.hpp"

int main() {
  using namespace espice;
  using examples::smoke_scaled;

  TypeRegistry registry;
  RtlsGenerator generator(RtlsConfig{}, registry);
  const auto events = generator.generate(smoke_scaled(300'000, 75'000));

  const QueryDef query = make_q1(generator, 3);
  const std::size_t train_n = smoke_scaled(130'000, 32'000);
  const TrainedModel trained =
      train_model(query, registry.size(),
                  std::span<const Event>(events).subspan(0, train_n), 1);

  // Operator capacity from the calibrated cost model.
  const double th = 1.0 / (OperatorCostModel{}.base_cost +
                           OperatorCostModel{}.per_window_cost *
                               trained.avg_windows_per_event);

  SimConfig sim_config;
  sim_config.window = query.window;
  sim_config.detector.latency_bound = 1.0;
  sim_config.detector.f = 0.8;
  sim_config.detector.window_size_events = trained.model->n_positions();
  sim_config.predicted_ws = static_cast<double>(trained.model->n_positions());

  EspiceShedder shedder(trained.model);
  OperatorSimulator sim(sim_config, query.make_matcher(), shedder);

  const auto measure = std::span<const Event>(events).subspan(train_n);
  const std::size_t third = measure.size() / 3;
  const SimResult result = sim.run(
      measure, {RatePhase{third, 0.9 * th},   // healthy
                RatePhase{third, 1.8 * th},   // burst
                RatePhase{third, 0.9 * th}}); // recovery

  const auto latency = summarize_latency(result.latencies, 1.0);
  std::cout << "burst scenario (capacity " << static_cast<long>(th)
            << " events/s; phases 0.9x / 1.8x / 0.9x):\n"
            << "  events processed   : " << result.events << "\n"
            << "  shedding engaged   : "
            << (result.shedding_ever_active ? "yes (during the burst)" : "no")
            << "\n"
            << "  pairs dropped      : " << shedder.drops() << " of "
            << shedder.decisions() << "\n"
            << "  max latency        : " << fmt(latency.max, 3)
            << " s (bound 1.0 s)\n"
            << "  bound violations   : " << latency.violations << "\n\n";

  // Mean latency per 10-second slice shows the burst profile.
  Table table({"virtual time (s)", "mean latency (s)", "max latency (s)"});
  const auto sliced = summarize_latency(result.latencies, 1.0, 10.0);
  for (const auto& bucket : sliced.buckets) {
    table.add_row({fmt(bucket.start_ts, 0), fmt(bucket.mean, 3),
                   fmt(bucket.max, 3)});
  }
  table.print(std::cout);
  return latency.violations == 0 && result.shedding_ever_active ? 0 : 1;
}
