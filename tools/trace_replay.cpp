// Trace-replay CLI: generate / digest / check the committed event-time
// regression fixture (see src/harness/trace_replay.hpp).
//
//   trace_replay generate <trace.csv>          write the canonical trace
//   trace_replay digest   <trace.csv>          print the replay digest
//   trace_replay regen    <trace.csv> <golden> digest -> golden file
//   trace_replay check    <trace.csv> <golden> exit 1 on digest mismatch
//
// With no arguments it checks the committed fixture pair under the source
// tree (tests/data/trace_stream.csv vs trace_golden.txt) -- the same gate
// tests/regression/trace_replay_test.cpp runs under ctest.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "datasets/csv.hpp"
#include "harness/trace_replay.hpp"

namespace {

constexpr std::uint64_t kTraceSeed = 7;
constexpr std::size_t kTraceEvents = 600;

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw espice::Error(espice::ErrorCode::kIo, "cannot open " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    throw espice::Error(espice::ErrorCode::kIo, "cannot write " + path);
  }
  out << content;
}

int generate(const std::string& trace_path) {
  const auto events = espice::make_regression_trace(kTraceSeed, kTraceEvents);
  espice::TypeRegistry registry;
  for (int t = 0; t < 6; ++t) registry.intern("t" + std::to_string(t));
  espice::save_events_csv(trace_path, events, registry);
  std::cout << "wrote " << events.size() << " events (measured disorder "
            << espice::measure_disorder(events) << ") to " << trace_path
            << "\n";
  return 0;
}

int check(const std::string& trace_path, const std::string& golden_path,
          bool regen) {
  const auto result = espice::replay_trace_csv(trace_path);
  const std::string digest = espice::replay_digest(result);
  if (regen) {
    write_file(golden_path, digest);
    std::cout << "wrote golden to " << golden_path << "\n";
    return 0;
  }
  const std::string golden = read_file(golden_path);
  if (digest == golden) {
    std::cout << "trace-replay digest matches " << golden_path << "\n";
    return 0;
  }
  std::cerr << "trace-replay digest MISMATCH vs " << golden_path << "\n"
            << "--- expected ---\n"
            << golden << "--- actual ---\n"
            << digest
            << "(regenerate with: trace_replay regen <trace> <golden> "
               "after an intended behaviour change)\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const std::string mode = argc > 1 ? argv[1] : "check";
    if (mode == "generate" && argc == 3) {
      return generate(argv[2]);
    }
    if (mode == "digest" && argc == 3) {
      const auto result = espice::replay_trace_csv(argv[2]);
      std::cout << espice::replay_digest(result);
      return 0;
    }
    if ((mode == "check" || mode == "regen") && (argc == 4 || argc <= 2)) {
      std::string trace = std::string(ESPICE_SOURCE_DIR) +
                          "/tests/data/trace_stream.csv";
      std::string golden = std::string(ESPICE_SOURCE_DIR) +
                           "/tests/data/trace_golden.txt";
      if (argc == 4) {
        trace = argv[2];
        golden = argv[3];
      }
      return check(trace, golden, mode == "regen");
    }
    std::cerr << "usage: trace_replay generate <trace.csv>\n"
                 "       trace_replay digest   <trace.csv>\n"
                 "       trace_replay check    [<trace.csv> <golden.txt>]\n"
                 "       trace_replay regen    [<trace.csv> <golden.txt>]\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "trace_replay: " << e.what() << "\n";
    return 1;
  }
}
