// Sharded multi-threaded stream engine.
//
// The paper's operator is single-threaded; this subsystem scales it out the
// way partitioned middlebox pipelines do: a router key-partitions the input
// stream across K shards, each shard owns one complete operator pipeline and
// is fed through a bounded SPSC ring buffer, and a merge stage collects the
// shards' complex events and statistics into one ordered output.
//
//   push(e) --router--> [SpscRing 0] --> shard 0 (windows+matcher+shedder)
//                       [SpscRing 1] --> shard 1        ...
//                       [SpscRing K-1] --> shard K-1
//   finish() ----------> join shards --> canonical merge --> EngineReport
//
// Partitioning semantics: each shard runs an *independent* operator over its
// substream -- windows are formed per shard, exactly as if the substream
// were a stream of its own.  The golden for a K-shard run is therefore the
// union of K serial single-thread runs over the partitioned substreams
// (tests/runtime/stream_engine_oracle_test.cpp holds the engine to that).
//
// Determinism: the engine has a strictly deterministic mode.  Three
// ingredients make the concurrent run bit-comparable to the serial golden:
//  1. a fixed partition hash (SplitMix64 of the key; no pointer/thread-id
//     dependence),
//  2. per-shard FIFO: one SPSC ring per shard preserves stream order within
//     a shard, and a shard is single-threaded inside,
//  3. a canonical merge order: matches are ordered by (completing event
//     seq, shard, in-shard detection index), which no thread interleaving
//     can perturb.
// In deterministic mode any shedding must come from a deterministic Shedder
// (e.g. a seq-hash policy); adaptive mode instead gives every shard a full
// EspiceOperator whose overload detector is ticked with the shard's *ring
// depth* as the queue-size (backpressure) signal -- adaptive results depend
// on the wall clock and are not bit-stable.
//
// Threading contract: push(), push_batch() and finish() must be called from
// one thread (the router); each shard's pipeline runs on its own thread;
// the report is only handed out after every shard thread joined, so no
// synchronization beyond the rings is needed.
//
// Batched data path: push_batch() key-partitions a whole batch into
// per-shard staging buffers and flushes each with one bulk ring enqueue per
// block; shard threads symmetrically drain their ring in zero-copy blocks
// (front_block()/release()) and run a block-wise pipeline loop -- the all-keep
// window path batches through WindowManager::offer_keep_all_block (window-
// boundary checks hoisted out of the inner loop, bulk store appends), and
// shedding groups score each event's membership block through
// Shedder::score_block into keep bitmaps instead of one virtual call per
// membership.  The block path is output-bit-identical to per-event
// execution (tests/runtime/batch_ingest_oracle_test.cpp enforces it), so
// push() and push_batch() are interchangeable mid-stream.
//
// Multi-query execution: add_query() registers N queries before the first
// push(); shard threads spawn lazily on the first push (or an explicit
// start()).  Queries with identical windowing (same_windowing()) share one
// WindowManager/EventStore per shard -- events are routed, buffered and
// positioned once, and each query keeps its own subset of every window via
// per-query keep masks (an event every query sheds is physically dropped).
// Per-query shedders make the drop decisions, so one query shedding its
// low-utility events never starves another query that values them.  The
// per-query output is bit-identical to running that query alone in a
// single-query engine over the same stream (the shared-window equivalence
// guarantee; tests/runtime/multi_query_oracle_test.cpp enforces it against
// N independent serial run_pipeline() goldens).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cep/event_time.hpp"
#include "cep/matcher.hpp"
#include "cep/pattern.hpp"
#include "cep/window.hpp"
#include "core/espice_operator.hpp"
#include "core/shedder.hpp"
#include "durability/event_log.hpp"
#include "durability/snapshot.hpp"
#include "metrics/histogram.hpp"

namespace espice {

class DetPipeline;

/// The query one shard executes in deterministic mode (mirrors QueryDef
/// without depending on the harness layer).
struct ShardQuery {
  Pattern pattern;
  WindowSpec window;
  SelectionPolicy selection = SelectionPolicy::kFirst;
  ConsumptionPolicy consumption = ConsumptionPolicy::kConsumed;
  std::size_t max_matches_per_window = 1;
};

/// One registered query of a (multi-query) engine run: the query itself
/// plus its per-query shedding policy.
struct EngineQuery {
  /// Report label; empty = "q<index>".
  std::string name;
  ShardQuery query;
  /// Per-shard shedder factory for THIS query; nullptr = keep everything.
  /// Same determinism contract as StreamEngineConfig::shedder_factory.
  std::function<std::unique_ptr<Shedder>(std::size_t shard)> shedder_factory;
  /// Window size handed to this query's shedder (0 = derive from its
  /// count-window span).
  double predicted_ws = 0.0;
};

/// What the engine does when a write-ahead-log append or sync fails at
/// runtime (ENOSPC, EIO, a failed fsync) -- the non-fatal-fault analogue of
/// the crash-kill story.  Whatever the policy, the durable prefix on disk
/// always ends at a valid record and recover_and_start() from it is
/// bit-identical (the chaos oracle in tests/chaos/ proves this under
/// randomized injected fault schedules).
enum class WalErrorPolicy : std::uint8_t {
  /// Fail fast: the engine moves to EngineState::kFailed and the failing
  /// push/checkpoint throws espice::Error; later calls throw typed
  /// errors instead of touching the pipeline.  Use abort() to tear down,
  /// then recover_and_start() on a fresh engine once the disk is back.
  kFailStop,
  /// Seal the durable prefix at the last valid offset and keep running
  /// memory-only (EngineState::kDegraded): ingestion and output continue
  /// bit-identically, checkpoint() refuses (it could no longer be made
  /// durable), and EngineReport::health flags the degradation.
  kDegradeToMemory,
  /// Retry the failed operation with bounded exponential backoff
  /// (wal_retry_max attempts starting at wal_retry_backoff_us) -- rides
  /// out transient faults; exhausted retries fall through to kFailStop.
  kRetryBackoff,
};

inline const char* wal_error_policy_name(WalErrorPolicy p) {
  switch (p) {
    case WalErrorPolicy::kFailStop: return "fail-stop";
    case WalErrorPolicy::kDegradeToMemory: return "degrade-to-memory";
    case WalErrorPolicy::kRetryBackoff: return "retry-backoff";
  }
  return "unknown";
}

/// Durability knobs of one engine run (deterministic mode only: the
/// recovery guarantee -- restored snapshot + log-tail replay is
/// bit-identical to the uninterrupted run -- rests on the pipeline being a
/// pure function of the stream, which adaptive mode's wall-clock coupling
/// breaks).  When set, every pushed batch is appended to a write-ahead
/// event log under `dir` before it is partitioned, and checkpoint()
/// publishes consistent snapshots keyed by log offset.
struct DurabilityConfig {
  /// Root directory; the engine keeps the log in `<dir>/log` and the
  /// snapshots in `<dir>/snapshots`.
  std::string dir;
  durability::FsyncPolicy fsync = durability::FsyncPolicy::kNone;
  /// For FsyncPolicy::kInterval: fsync every this many appended records.
  std::uint64_t fsync_interval_records = 64;
  /// Log segment size (a segment seals and a new file opens at this size).
  std::size_t segment_bytes = 4u << 20;
  /// Auto-checkpoint every this many ingested events (0 = only explicit
  /// checkpoint() calls).
  std::uint64_t snapshot_every_events = 0;
  /// Runtime WAL fault handling (see WalErrorPolicy).
  WalErrorPolicy on_wal_error = WalErrorPolicy::kFailStop;
  /// kRetryBackoff: attempts before falling through to fail-stop.
  std::uint64_t wal_retry_max = 8;
  /// kRetryBackoff: first retry delay; doubles per attempt (capped at
  /// 100ms).  Keep small in tests -- retries run on the router thread.
  std::uint64_t wal_retry_backoff_us = 100;
};

/// Failure state machine of a running engine.  kRunning -> kDegraded on a
/// WAL fault under WalErrorPolicy::kDegradeToMemory (still serving,
/// memory-only); kRunning/kDegraded -> kFailed on a shard-thread death or a
/// fail-stop WAL fault (terminal: push/push_batch/checkpoint/finish throw
/// typed espice::Error; abort() tears down idempotently).
enum class EngineState : std::uint8_t { kRunning, kDegraded, kFailed };

inline const char* engine_state_name(EngineState s) {
  switch (s) {
    case EngineState::kRunning: return "running";
    case EngineState::kDegraded: return "degraded";
    case EngineState::kFailed: return "failed";
  }
  return "unknown";
}

/// Liveness/health of one shard pipeline (EngineHealth::shards).
struct ShardHealth {
  std::size_t shard = 0;
  /// The shard thread died with an exception (captured in `error`).
  bool failed = false;
  /// Ring items the pipeline had consumed when last observed -- after a
  /// failure, where the shard died; on success, its total intake.
  std::uint64_t last_progress = 0;
  std::string error;  ///< empty while healthy
};

/// Health section of EngineReport (also queryable mid-run / post-failure
/// via StreamEngine::health(); router thread only).
struct EngineHealth {
  EngineState state = EngineState::kRunning;
  /// Durability-layer I/O errors absorbed so far (WAL append/sync retries
  /// and degradations, failed snapshot publishes).
  std::uint64_t wal_errors = 0;
  /// kDegradeToMemory fired: the WAL is sealed and the engine runs
  /// memory-only.
  bool wal_degraded = false;
  /// Where the sealed durable prefix ends when wal_degraded.  Sealed at
  /// degrade time by a best-effort final fsync; if that sync also fails the
  /// offset falls back to the last successfully fsynced prefix, so the
  /// value never promises more than survives a power loss.
  /// recover_and_start() replays at least this many events once faults
  /// clear (appended-but-unsynced records past it also survive when the
  /// machine did not lose power).
  std::uint64_t degraded_at_offset = 0;
  std::string last_error;  ///< most recent failure detail; empty = none
  std::vector<ShardHealth> shards;
};

/// Dynamic hot-partition rebalancing (deterministic single-producer mode
/// only).  The key space is hashed onto `partitions` LOGICAL partitions
/// (>= shards); each partition runs its own complete pipeline (windows are
/// per partition), and the router maintains a partition->shard placement it
/// re-decides every `interval_events` routed events from the per-partition
/// routing counts.  A migration moves the partition's WHOLE pipeline object
/// between shard threads through in-band control markers, so output stays
/// bit-identical to the serial per-partition golden under ANY move schedule
/// -- rebalancing changes WHERE a partition runs, never WHAT it computes.
struct RebalanceConfig {
  /// Logical partitions L (the migration granularity).  More partitions =
  /// finer load balancing; a single hot KEY still cannot be split below one
  /// partition (its share of the stream is the skew floor).
  std::size_t partitions = 0;
  /// Routed events between placement decisions.
  std::uint64_t interval_events = 8192;
  /// Only move when the hottest shard's window load exceeds this factor
  /// times the mean (hysteresis against churn).
  double hot_factor = 1.25;
  /// Migration budget per decision.
  std::size_t max_moves_per_interval = 4;
};

struct StreamEngineConfig {
  /// Number of shards (and shard threads).  1 is valid and useful: it is the
  /// serial pipeline behind one ring, the baseline every speedup is against.
  std::size_t shards = 1;
  /// Multi-producer ingestion: when > 0, `producers` threads may call
  /// push_batch_concurrent() concurrently and the classic single-router
  /// entries (push()/push_batch()) are disabled.  Each shard is fed through
  /// P producer-private SPSC lanes merged deterministically on sequence
  /// numbers (see SpscLaneSet), so output is bit-identical to the serial
  /// golden regardless of producer interleaving.  Deterministic mode only;
  /// excludes adaptive / event-time / rebalance / latency sampling, and
  /// durability is limited to WAL + recovery (no mid-stream checkpoints:
  /// the set of events "pushed so far" is not a seq-prefix under concurrent
  /// producers, so no consistent cut exists until the stream ends).
  std::size_t producers = 0;
  /// Dynamic hot-partition rebalancing (see RebalanceConfig).  Deterministic
  /// single-producer mode only; excludes adaptive / event-time / durability /
  /// latency sampling.
  std::optional<RebalanceConfig> rebalance;
  /// Per-shard ring capacity (rounded up to a power of two).  A full ring
  /// back-pressures the router (bounded yield->sleep backoff, see
  /// runtime/backoff.hpp), which bounds engine memory.
  std::size_t ring_capacity = 4096;
  /// Partition key; nullptr = the event's type.  Events with equal keys land
  /// on the same shard in stream order.
  std::function<std::uint64_t(const Event&)> key_of;

  // --- deterministic mode (used when `adaptive` is empty) ------------------
  ShardQuery query;
  /// Per-shard shedder factory; nullptr = keep everything.  The factory runs
  /// on the router thread at start(); each shedder is then owned and driven
  /// by its shard's thread only.  Must be deterministic (seq/position hash)
  /// for the engine's determinism guarantee to hold.
  std::function<std::unique_ptr<Shedder>(std::size_t shard)> shedder_factory;
  /// Window size handed to shedders for position scaling; 0 = derive from
  /// count-window span (required explicit for time/predicate windows when a
  /// shedder is present, as in run_pipeline()).
  double predicted_ws = 0.0;

  // --- adaptive mode -------------------------------------------------------
  /// When set, every shard runs a full EspiceOperator built from this config
  /// (sizing -> training -> shedding lifecycle, drift retraining) and its
  /// overload detector is ticked with the shard's ring depth every
  /// `detector.tick_period` wall seconds.
  std::optional<EspiceOperatorConfig> adaptive;

  // --- durability ----------------------------------------------------------
  /// When set, the engine write-ahead-logs every ingested event and supports
  /// checkpoint() / recover_and_start().  Deterministic mode only.
  std::optional<DurabilityConfig> durability;

  // --- latency sampling ----------------------------------------------------
  /// Sample every Nth ring enqueue per shard for end-to-end latency
  /// (steady-clock at enqueue -> the shard released the block containing
  /// it), recorded into ShardStats::latency / EngineReport::latency.
  /// 0 (default) disables sampling entirely: the data hot path is
  /// untouched.  Sampling piggybacks on a tiny side ring per shard and
  /// degrades gracefully (a mark is dropped, never blocked on) when the
  /// shard lags more than the side ring's capacity worth of samples.
  std::size_t latency_sample_every = 0;

  // --- event time ----------------------------------------------------------
  /// When set, the engine accepts out-of-order input: each shard runs a
  /// bounded reorder stage (cep/event_time.hpp) ahead of window routing,
  /// watermarks (progress, punctuation, router heartbeat) drive release
  /// and time-window close, and beyond-bound arrivals take the configured
  /// late policy.  Deterministic mode only.  Contract: input shuffled
  /// within `event_time->disorder_bound` of an in-order stream produces
  /// output bit-identical to pushing that stream in order.
  std::optional<EventTimeConfig> event_time;

  void validate() const;
};

/// Per-shard outcome counters, collected by the merge stage.
struct ShardStats {
  std::size_t shard = 0;
  std::uint64_t events = 0;
  std::uint64_t memberships = 0;
  std::uint64_t memberships_kept = 0;
  std::uint64_t windows_closed = 0;
  std::uint64_t matches = 0;
  std::uint64_t shed_decisions = 0;
  std::uint64_t shed_drops = 0;
  /// Peak ring occupancy observed by the shard (sampled; backpressure gauge).
  std::size_t peak_queue_depth = 0;
  /// How often the router found this shard's ring full and had to wait.
  std::uint64_t router_backpressure_waits = 0;
  /// Wall seconds the router spent stalled on this shard's full ring.
  double router_stall_seconds = 0.0;
  // Occupancy metering (all engine modes).  Ring depth is sampled once per
  // drained block; busy_seconds is the wall time the shard thread spent
  // PROCESSING blocks (excluding idle waits), so busy_seconds / report wall
  // is the shard's busy fraction -- the signal that makes skew visible.
  std::uint64_t depth_samples = 0;
  std::uint64_t depth_sum = 0;
  double busy_seconds = 0.0;
  double mean_queue_depth() const {
    return depth_samples == 0
               ? 0.0
               : static_cast<double>(depth_sum) /
                     static_cast<double>(depth_samples);
  }
  // Rebalance mode only: partition pipelines this shard adopted / handed off.
  std::uint64_t rebalance_moves_in = 0;
  std::uint64_t rebalance_moves_out = 0;
  // Adaptive mode only:
  std::size_t retrains = 0;
  std::size_t detector_ticks = 0;
  bool shedding_ever_active = false;
  // Event-time mode only (zero otherwise):
  std::uint64_t punctuations = 0;  ///< watermarks consumed by the stage
  std::uint64_t late_events = 0;   ///< arrivals beyond the disorder bound
  std::uint64_t late_dropped = 0;  ///< late drops (incl. beyond-horizon)
  std::uint64_t late_side_output = 0;  ///< late events side-channeled
  std::uint64_t revisions = 0;     ///< retained-window re-finalizations
  bool watermark_valid = false;    ///< the shard's watermark ever advanced
  std::uint64_t watermark_seq = 0; ///< final per-shard watermark
  std::size_t reorder_peak_buffered = 0;  ///< reorder stage high-water mark
  /// Sampled end-to-end event latency, ns (enqueue -> block released), when
  /// StreamEngineConfig::latency_sample_every > 0; empty otherwise.
  LatencyHistogram latency;
};

/// Per-query outcome of one engine run.
struct QueryReport {
  std::string name;
  /// This query's complex events in canonical per-query merge order --
  /// bit-identical to a single-query engine (or the union of serial
  /// run_pipeline() runs over the partitioned substreams) for this query.
  std::vector<ComplexEvent> matches;
  std::uint64_t memberships = 0;       ///< offered pairs in its window group
  std::uint64_t memberships_kept = 0;  ///< pairs THIS query kept
  std::uint64_t shed_decisions = 0;
  std::uint64_t shed_drops = 0;
  /// Event-time kRevise only: this query's window re-emissions, in
  /// canonical merge order (late seq, shard, in-shard revision index).
  /// Each record carries the FULL re-finalized match set of the revised
  /// window; consumers diff it against the window's original matches.
  std::vector<RevisionRecord> revisions;
};

/// Aggregated result of one engine run (the SimResult analogue).
struct EngineReport {
  /// All shards' complex events in canonical merge order (multi-query runs:
  /// ordered by completion seq, then query, shard, in-shard index).
  std::vector<ComplexEvent> matches;
  /// Per registered query, in registration order (size 1 for single-query
  /// runs; queries[0].matches == matches then).
  std::vector<QueryReport> queries;
  std::vector<ShardStats> shards;
  std::uint64_t events = 0;
  double wall_seconds = 0.0;
  double events_per_sec = 0.0;
  /// Router backpressure totals across shards: how often a push found a
  /// ring full, and the wall seconds the router spent waiting (yield->sleep
  /// backoff; see runtime/backoff.hpp).
  std::uint64_t router_backpressure_waits = 0;
  double router_stall_seconds = 0.0;
  /// Rebalance mode: total partition migrations executed over the run.
  std::uint64_t rebalance_moves = 0;

  // --- event-time mode (zero / empty otherwise) ---------------------------
  /// Watermark punctuations the router broadcast (user + heartbeat).
  std::uint64_t punctuations = 0;
  std::uint64_t late_events = 0;
  std::uint64_t late_dropped = 0;
  std::uint64_t late_side_output = 0;
  std::uint64_t revisions = 0;
  /// Engine low watermark: the MIN of the per-shard watermarks (valid only
  /// once every shard's watermark advanced).  Everything at or below it is
  /// fully reflected in the output -- the cross-shard progress guarantee
  /// that keeps the canonical merge deterministic.
  bool low_watermark_valid = false;
  std::uint64_t low_watermark_seq = 0;
  /// LatePolicy::kSideOutput captures, in canonical order (event seq,
  /// shard, in-shard capture index).
  std::vector<SideOutputRecord> side_outputs;

  /// Sampled end-to-end event latency merged across shards, ns (enqueue ->
  /// block released); empty unless latency_sample_every was set.
  LatencyHistogram latency;

  /// Failure-state summary of the run: kRunning for a clean run, kDegraded
  /// when a WAL fault sealed the durable prefix mid-run (output is still
  /// complete and bit-identical; durability is not).  finish() never
  /// returns a kFailed report -- it throws instead.
  EngineHealth health;

  std::uint64_t total_matches() const { return matches.size(); }
  std::uint64_t total_windows_closed() const;
  std::uint64_t total_shed_drops() const;
};

/// Outcome of recover_and_start(): what the engine found on disk and how it
/// rebuilt itself.
struct RecoveryReport {
  /// Events in the log's validated durable prefix.  The engine resumes at
  /// exactly this stream offset; events past it never reached the disk
  /// before the crash and must be re-pushed by the source.
  std::uint64_t durable_events = 0;
  /// Log offset of the snapshot the engine restored from (0 when none was
  /// found and the whole durable prefix was replayed).
  std::uint64_t snapshot_offset = 0;
  /// Events replayed from the log tail (durable_events - snapshot_offset).
  std::uint64_t replayed_events = 0;
  /// Damage found -- and repaired -- along the way: torn log tails, corrupt
  /// segments or snapshots that were skipped.  Empty = clean recovery.
  std::vector<std::string> damage;
};

class StreamEngine {
 public:
  explicit StreamEngine(StreamEngineConfig config);
  /// Joins shard threads if finish() was never called (abandoned run).
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Registers one more query (multi-query mode; deterministic only).  Must
  /// be called before the first push().  When never called, the engine runs
  /// the legacy single-query config (config.query / shedder_factory /
  /// predicted_ws) as query 0.  Returns the query's index (its bit in the
  /// keep masks and its slot in EngineReport::queries).
  std::size_t add_query(EngineQuery q);

  /// Spawns the shard threads.  Idempotent; called implicitly by the first
  /// push() (and by finish() on an empty run).
  void start();

  /// Routes one event to its shard, in stream order.  Blocks (spins) while
  /// the shard's ring is full -- backpressure instead of unbounded queues.
  void push(const Event& e);

  /// Batched ingestion: routes a whole batch, bit-identical in output to
  /// `for (e : events) push(e)` but with the per-event costs amortized: the
  /// batch is key-partitioned into per-shard staging buffers (one hash per
  /// event, no ring touch) and each staging buffer is flushed with ONE bulk
  /// ring enqueue per block -- one acquire/release cursor pair instead of
  /// one per event.  A single-shard engine skips staging entirely and bulk-
  /// pushes straight from the caller's span.  Same backpressure contract as
  /// push(): blocks while a target ring stays full.  Batches may be mixed
  /// freely with scalar push() calls.
  void push_batch(std::span<const Event> events);

  // --- multi-producer ingestion (config_.producers > 0) --------------------

  /// Routes a batch from producer thread `producer` (0 <= producer <
  /// config.producers).  Distinct producers may call concurrently; one
  /// producer's calls must be serial.  Requirements for the determinism
  /// guarantee: sequence numbers are unique across producers and strictly
  /// increasing within each producer's successive events.  Liveness: every
  /// producer must eventually push again or call producer_done() -- a shard
  /// cannot emit past an open lane's sequence floor (see SpscLaneSet).
  /// start() must have been called explicitly before the first concurrent
  /// push.  Blocks (bounded backoff) while every pending lane is full.
  void push_batch_concurrent(std::size_t producer,
                             std::span<const Event> events);

  /// Producer `producer` will push no more events: closes its lanes so the
  /// shards' merges can run ahead / terminate without it.  Idempotent;
  /// finish() closes any lane whose producer never called it (all producers
  /// must have RETURNED from their last push by then).
  void producer_done(std::size_t producer);

  // --- rebalancing (config_.rebalance set) ---------------------------------

  /// Logical partition `e` routes to (fixed hash over config.rebalance->
  /// partitions; usable before/after the run).
  std::size_t partition_of(const Event& e) const;

  /// Current shard hosting `partition` (router thread only).
  std::size_t shard_of_partition(std::size_t partition) const;

  /// Forces a migration of `partition` onto `to_shard` (router thread only;
  /// the test hook behind the automatic rebalancer).  The move is exact: an
  /// export marker is queued behind everything already routed to the old
  /// shard, placement flips, and an import marker precedes everything routed
  /// to the new shard afterwards, so the partition's pipeline sees its
  /// substream gap-free and in order.  No-op when already placed there.
  void move_partition(std::size_t partition, std::size_t to_shard);

  /// Injects a punctuation watermark (event_time must be configured):
  /// asserts no event with seq <= `seq` is still in flight.  Broadcast to
  /// every shard in arrival order; raises the reorder stages' watermarks
  /// (releasing buffered events) and, with `ts`, closes time windows whose
  /// span ended at or before event-time `ts`.  Equivalent to pushing
  /// make_watermark(...) through push()/push_batch().
  void push_watermark(std::uint64_t seq) { push(make_watermark(seq)); }
  void push_watermark(std::uint64_t seq, double ts) {
    push(make_watermark(seq, ts, /*ts_valid=*/true));
  }

  /// End of stream: closes every ring, waits for the shards to drain and
  /// flush their open windows, joins the threads and merges the outputs.
  /// Terminal -- the engine cannot be reused afterwards.  Hang-free under
  /// failure: shard threads are always joined first, then a shard death or
  /// fail-stop WAL state surfaces as a thrown error (shard deaths rethrow
  /// the shard's original exception; engine-level failures throw typed
  /// espice::Error).  A kDegraded engine finishes normally with the
  /// degradation flagged in EngineReport::health.
  EngineReport finish();

  /// Tears the engine down without a report: releases any armed checkpoint
  /// cut, closes every ring, joins the shard threads.  Idempotent, never
  /// throws, safe in any state -- THE cleanup path after push/checkpoint
  /// threw.  The engine is terminal afterwards (like finish()).
  void abort() noexcept;

  /// Failure state (router thread only; see EngineState).
  EngineState state() const { return state_; }

  /// Snapshot of the engine's health: state, durability error counters,
  /// per-shard liveness/progress.  Router thread only; also valid after a
  /// failure (unlike finish(), which throws then).
  EngineHealth health() const;

  // --- durability (config_.durability must be set) -------------------------

  /// Synchronously checkpoints the whole engine at the current ingestion
  /// offset: makes the log durable up to it, cuts every shard's pipeline at
  /// exactly the events it was fed so far (shards drain up to the cut,
  /// serialize, and hold until collected), and atomically publishes one
  /// snapshot keyed by the offset.  Superseded snapshots and log segments
  /// wholly below the new offset are pruned.  Router thread only.
  void checkpoint();

  /// Rebuilds the engine from `durability->dir` and starts it: opens the
  /// log (truncating any torn tail), loads the newest valid snapshot,
  /// restores every shard's pipeline from it and replays the log tail --
  /// after which the engine is bit-identical to an uninterrupted run over
  /// the durable prefix and accepts further push()/checkpoint()/finish()
  /// calls.  Must be called instead of start()/first-push on a freshly
  /// constructed engine with the same config and add_query() registrations
  /// as the crashed run.
  RecoveryReport recover_and_start();

  /// Events ingested so far (== the durable log offset outside replay).
  std::uint64_t pushed() const {
    return pushed_ + mp_pushed_.load(std::memory_order_relaxed);
  }

  /// Data events pushed, excluding watermark punctuations: the resume
  /// offset into a data-only source stream after recovery.  Equals
  /// pushed() when event time is off.
  std::uint64_t data_pushed() const { return pushed() - punct_pushed_; }

  std::size_t shards() const { return config_.shards; }
  /// Which shard `e` routes to (fixed hash; usable before/after the run).
  std::size_t shard_of(const Event& e) const;
  /// The fixed partition hash: SplitMix64 finalizer of the key.
  static std::uint64_t partition_hash(std::uint64_t key);
  /// shard index for a key under `shards` partitions (what shard_of uses).
  static std::size_t shard_index(std::uint64_t key, std::size_t shards);

  /// Current ring depth of one shard (the external queue-depth signal).
  std::size_t queue_depth(std::size_t shard) const;

  /// The canonical merge: per-shard match lists (each in detection order) to
  /// one ordered list, sorted by (completing constituent seq, shard,
  /// in-shard index).  Public so oracle tests can order their serial goldens
  /// identically.
  static std::vector<ComplexEvent> merge_matches(
      std::vector<std::vector<ComplexEvent>> per_shard);

  std::size_t query_count() const { return queries_.size(); }

 private:
  struct Shard;

  void run_deterministic_shard(Shard& shard);
  void run_adaptive_shard(Shard& shard);
  /// Multi-producer shard loop: drains the shard's P-lane merge.
  void run_merged_shard(Shard& shard);
  /// Rebalance-mode shard loop: one pipeline per resident partition,
  /// migration markers handled in-band.
  void run_partitioned_shard(Shard& shard);
  /// Bulk-pushes `n` events into one shard's ring, backing off (bounded
  /// yield->sleep) whenever the ring is full.
  void bulk_push_shard(Shard& s, const Event* data, std::size_t n);
  /// Flushes the per-shard staging buffers round-robin: pushes what fits
  /// into each pending ring and rotates, waiting only when EVERY pending
  /// ring is full -- one full shard no longer serializes the others.
  void flush_staged();
  /// Pushes one control marker into shard `s`'s ring (backpressure waits).
  void push_control(Shard& s, const Event& marker);
  /// Rebalance decision: greedily moves the largest partitions off the
  /// most loaded shard while the imbalance exceeds hot_factor.  Pure
  /// function of the routing counts -> deterministic.
  void decide_moves();
  /// Opens the event log (recovering/truncating) and the snapshot store.
  void open_durability();
  /// Runs checkpoint() when snapshot_every_events is due.
  void maybe_auto_checkpoint();
  /// Partitions and flushes one punctuation-free run of data events (the
  /// shared body of push_batch); advances pushed_ and the event-time
  /// router trackers.
  void push_data_segment(std::span<const Event> events);
  /// Broadcasts a punctuation to every shard (arrival order preserved
  /// relative to surrounding data); advances pushed_ / punct_pushed_.
  void route_punctuation(const Event& p);
  /// Synthesizes a router heartbeat punctuation once `heartbeat_events`
  /// data events accumulated since the last watermark (event-time mode,
  /// never during replay -- logged heartbeats replay through the normal
  /// path instead).
  void maybe_heartbeat();
  /// Entry guard for push/push_batch/checkpoint: throws typed Error when
  /// the engine already failed or a shard thread has died.
  void ensure_accepting(const char* op);
  /// Records shard `s`'s death, moves the engine to kFailed, and throws
  /// Error{kShardFailed} carrying the shard's own error message.
  [[noreturn]] void fail_for_shard(Shard& s);
  /// WAL append with the configured WalErrorPolicy applied: retries
  /// (distinguishing record-written-fsync-failed from record-never-landed
  /// via next_index()), degrades to memory-only, or fail-stops typed.
  void wal_append(std::span<const Event> events);
  /// checkpoint()'s pre-snapshot log sync under the same policy; throws
  /// when the checkpoint cannot be made durable.
  void wal_sync_for_checkpoint();
  /// Bounded exponential-backoff retry loop of kRetryBackoff; true once
  /// `op` succeeded, false when exhausted (detail = last error).
  bool wal_retry(const std::function<void()>& op, std::string& detail);
  /// Seals the durable prefix and switches to memory-only ingestion.
  void degrade_wal(const std::string& detail);
  /// abort()/destructor body: release checkpoint cuts, close rings, join.
  void teardown() noexcept;

  StreamEngineConfig config_;
  /// Registered queries (adopted from the legacy config at start() when
  /// add_query() was never called).
  std::vector<EngineQuery> queries_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// push_batch() staging: per shard, the batch's events in stream order
  /// (router-owned; reused across batches, so steady state allocates
  /// nothing).
  std::vector<std::vector<Event>> staging_;
  /// flush_staged(): per-shard resume offset into staging_ (router-owned).
  std::vector<std::size_t> staging_off_;

  // --- multi-producer state (empty when producers == 0) --------------------
  /// Serializes the WAL append + global ingest count across producers: the
  /// "producers stage, one sequencer owns the WAL offset" contract.
  std::mutex sequencer_mu_;
  /// Events ingested through push_batch_concurrent (atomic: producers add
  /// under sequencer_mu_, the router reads in pushed()).
  std::atomic<std::uint64_t> mp_pushed_{0};
  /// Per producer, per shard: the batch slice staged for that shard
  /// (producer-private; reused across batches).
  std::vector<std::vector<std::vector<Event>>> mp_staging_;
  /// Per producer, per shard: round-robin flush resume offsets into
  /// mp_staging_ (producer-private; reused across batches).
  std::vector<std::vector<std::size_t>> mp_off_;

  // --- rebalance state (empty when rebalance is off; router thread) --------
  std::vector<std::size_t> placement_;     ///< partition -> hosting shard
  std::vector<std::uint64_t> part_counts_; ///< events routed, this window
  std::uint64_t window_routed_ = 0;        ///< window progress
  std::uint64_t rebalance_moves_ = 0;
  /// Migration handoff: the exporter publishes the partition's pipeline
  /// here (release), the importer spins and adopts it (acquire).  One slot
  /// per partition; slot p is only live between p's export/import markers.
  std::unique_ptr<std::atomic<DetPipeline*>[]> mailbox_;
  /// Per-partition shedders, built on the router thread at start() and
  /// adopted by whichever shard constructs the partition's pipeline.
  std::vector<std::vector<std::unique_ptr<Shedder>>> part_shedders_;

  std::uint64_t pushed_ = 0;
  bool started_ = false;
  bool finished_ = false;
  bool aborted_ = false;
  std::chrono::steady_clock::time_point start_;

  // --- failure state machine (router thread; see EngineState) --------------
  EngineState state_ = EngineState::kRunning;
  /// Cheap push-entry signal that some shard died (shards set it with
  /// release right after publishing their error; the router's relaxed read
  /// races benignly -- a miss is caught by the next push or the
  /// backpressure polls).
  std::atomic<bool> any_shard_failed_{false};
  std::uint64_t wal_errors_ = 0;
  bool wal_degraded_ = false;
  std::uint64_t degraded_at_offset_ = 0;
  std::string last_error_;

  // --- durability state (null / empty when durability is off) --------------
  std::unique_ptr<durability::EventLogWriter> log_;
  std::unique_ptr<durability::SnapshotStore> snaps_;
  /// Events routed to each shard so far -- the per-shard cut offsets a
  /// checkpoint arms the shards with.
  std::vector<std::uint64_t> pushed_per_shard_;
  /// Per shard, the pipeline blob of the snapshot being recovered from
  /// (consumed by the shard thread right after it builds its pipeline).
  std::vector<std::vector<std::byte>> recovery_blobs_;
  /// True while recover_and_start() re-pushes the log tail: events flowing
  /// through push_batch() are already in the log, so appends are suppressed.
  bool replaying_ = false;
  std::uint64_t events_since_snapshot_ = 0;

  // --- event-time router state (engine snapshot header; replay-stable) -----
  /// Punctuations broadcast so far.  pushed_ counts them too (it is the
  /// log offset), so reports subtract: events = pushed_ - punct_pushed_.
  std::uint64_t punct_pushed_ = 0;
  /// Data events since the last broadcast watermark (heartbeat trigger).
  std::uint64_t data_since_hb_ = 0;
  /// Largest data seq routed (the router's own watermark source).
  std::uint64_t router_max_seq_ = 0;
  bool router_max_valid_ = false;
};

}  // namespace espice
