// Bounded single-producer / single-consumer ring buffer.
//
// The StreamEngine's router feeds each shard through one of these: exactly
// one thread pushes (the router) and exactly one pops (the shard), which
// permits a wait-free design with two monotone cursors and no locks or CAS
// loops.  Memory ordering is the textbook pair: the producer publishes a
// slot with a release store of `tail_`, the consumer acquires it; the
// consumer frees a slot with a release store of `head_`, the producer
// acquires it.  Both sides additionally cache the peer's cursor and only
// reload it on apparent full/empty, so the steady-state fast path touches a
// single shared cache line per operation.
//
// Cursors are free-running 64-bit counters (never wrapped), so full/empty
// are simply `tail - head == capacity` / `tail == head` with no reserved
// slot.  Capacity is rounded up to a power of two; slot index = cursor &
// mask.
//
// Bulk transfer: try_push_bulk()/try_pop_bulk() move a whole block of items
// under ONE acquire/release cursor pair, amortizing the synchronization and
// the cache-line ping-pong that dominate the scalar ops at high rates.  The
// batched ingestion path (StreamEngine::push_batch) is built on them.
//
// close() is the producer's end-of-stream signal.  The consumer must keep
// draining after observing closed(): the release store in close() happens
// after the producer's final push, so "closed and try_pop() failed" is the
// only true termination condition (see pop_or_closed()).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace espice {

/// T must be nothrow-movable; slots are default-constructed up front (one
/// allocation in the constructor, none after).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    ESPICE_REQUIRE(capacity > 0, "ring capacity must be positive");
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side.  Returns false when the ring is full.
  bool try_push(T value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, bulk: pushes up to `n` items from `src` and returns how
  /// many were enqueued (0 when full).  One release store publishes the
  /// whole block, so the per-item synchronization cost is amortized over the
  /// block; the copy itself runs over at most two contiguous slot segments.
  /// Equivalent to calling try_push(src[i]) until it fails.
  std::size_t try_push_bulk(const T* src, std::size_t n) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = capacity() - static_cast<std::size_t>(tail - head_cache_);
    if (free < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = capacity() - static_cast<std::size_t>(tail - head_cache_);
      if (free == 0) return 0;
    }
    const std::size_t count = std::min(n, free);
    const std::size_t start = static_cast<std::size_t>(tail) & mask_;
    const std::size_t first = std::min(count, capacity() - start);
    std::copy_n(src, first, slots_.begin() + static_cast<std::ptrdiff_t>(start));
    std::copy_n(src + first, count - first, slots_.begin());
    tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  /// Producer side: no further pushes will happen.  Idempotent.
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Consumer side.  Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, bulk: pops up to `max` items into `dst` and returns how
  /// many were dequeued (0 when empty).  One acquire load observes the
  /// producer's cursor for the whole block; the move runs over at most two
  /// contiguous slot segments.  Equivalent to calling try_pop() until it
  /// fails.
  std::size_t try_pop_bulk(T* dst, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(tail_cache_ - head);
    if (avail < max) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(tail_cache_ - head);
      if (avail == 0) return 0;
    }
    const std::size_t count = std::min(max, avail);
    const std::size_t start = static_cast<std::size_t>(head) & mask_;
    const std::size_t first = std::min(count, capacity() - start);
    auto from = std::make_move_iterator(slots_.begin() +
                                        static_cast<std::ptrdiff_t>(start));
    std::copy_n(from, first, dst);
    std::copy_n(std::make_move_iterator(slots_.begin()), count - first,
                dst + first);
    head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Consumer side: pop, distinguishing "empty for now" from "drained and
  /// closed".  The closed check runs *before* the retry pop so the final
  /// push-then-close pair can never be missed.
  enum class Pop { kItem, kEmpty, kDone };
  Pop pop_or_closed(T& out) {
    if (try_pop(out)) return Pop::kItem;
    if (!closed()) return Pop::kEmpty;
    // Closed was observed (acquire) after a failed pop; anything the
    // producer pushed before close() is now visible -- one more pop decides.
    return try_pop(out) ? Pop::kItem : Pop::kDone;
  }

  /// Bulk analogue of pop_or_closed(): pops up to `max` items into `dst`.
  /// Returns the count; a zero return sets `done` when the ring is closed
  /// and fully drained (same never-miss-the-final-push ordering as the
  /// scalar version).
  std::size_t pop_bulk_or_closed(T* dst, std::size_t max, bool& done) {
    done = false;
    std::size_t n = try_pop_bulk(dst, max);
    if (n > 0) return n;
    if (!closed()) return 0;
    n = try_pop_bulk(dst, max);
    done = n == 0;
    return n;
  }

  /// Consumer side, zero-copy bulk: a contiguous view of up to `max` queued
  /// items starting at the oldest, WITHOUT dequeuing them.  The slots stay
  /// owned by the consumer -- the producer cannot reuse them -- until
  /// release() frees them, so the view can be processed in place (no
  /// copy-out).  May return fewer than queued when the available span wraps
  /// the ring edge; empty means "nothing queued right now".
  std::span<const T> front_block(std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(tail_cache_ - head);
    if (avail < max) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(tail_cache_ - head);
      if (avail == 0) return {};
    }
    const std::size_t start = static_cast<std::size_t>(head) & mask_;
    const std::size_t count =
        std::min(std::min(avail, max), capacity() - start);
    return {slots_.data() + start, count};
  }

  /// Consumer side: frees the oldest `n` slots (the prefix handed out by
  /// front_block()).  One release store -- the bulk-dequeue commit.
  void release(std::size_t n) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    ESPICE_ASSERT(n <= static_cast<std::size_t>(tail_cache_ - head),
                  "releasing more slots than were handed out");
    head_.store(head + n, std::memory_order_release);
  }

  /// Approximate occupancy; exact when called by the producer or consumer
  /// thread for its own side's view, a safe snapshot otherwise.  This is the
  /// per-shard queue-depth (backpressure) signal fed to overload detectors.
  std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty() const { return size() == 0; }

 private:
  // Producer-owned line: tail cursor plus the cached consumer position.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
  // Consumer-owned line: head cursor plus the cached producer position.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
  alignas(64) std::atomic<bool> closed_{false};

  std::vector<T> slots_;
  std::size_t mask_ = 0;
};

}  // namespace espice
