// Bounded single-producer / single-consumer ring buffer.
//
// The StreamEngine's router feeds each shard through one of these: exactly
// one thread pushes (the router) and exactly one pops (the shard), which
// permits a wait-free design with two monotone cursors and no locks or CAS
// loops.  Memory ordering is the textbook pair: the producer publishes a
// slot with a release store of `tail_`, the consumer acquires it; the
// consumer frees a slot with a release store of `head_`, the producer
// acquires it.  Both sides additionally cache the peer's cursor and only
// reload it on apparent full/empty, so the steady-state fast path touches a
// single shared cache line per operation.
//
// Cursors are free-running 64-bit counters (never wrapped), so full/empty
// are simply `tail - head == capacity` / `tail == head` with no reserved
// slot.  Capacity is rounded up to a power of two; slot index = cursor &
// mask.
//
// Bulk transfer: try_push_bulk()/try_pop_bulk() move a whole block of items
// under ONE acquire/release cursor pair, amortizing the synchronization and
// the cache-line ping-pong that dominate the scalar ops at high rates.  The
// batched ingestion path (StreamEngine::push_batch) is built on them.
//
// close() is the producer's end-of-stream signal.  The consumer must keep
// draining after observing closed(): the release store in close() happens
// after the producer's final push, so "closed and try_pop() failed" is the
// only true termination condition (see pop_or_closed()).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <utility>
#include <vector>

#include "common/error.hpp"

namespace espice {

/// T must be nothrow-movable; slots are default-constructed up front (one
/// allocation in the constructor, none after).
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    ESPICE_REQUIRE(capacity > 0, "ring capacity must be positive");
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// Producer side.  Returns false when the ring is full.
  bool try_push(T value) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ >= capacity()) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ >= capacity()) return false;
    }
    slots_[tail & mask_] = std::move(value);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Producer side, bulk: pushes up to `n` items from `src` and returns how
  /// many were enqueued (0 when full).  One release store publishes the
  /// whole block, so the per-item synchronization cost is amortized over the
  /// block; the copy itself runs over at most two contiguous slot segments.
  /// Equivalent to calling try_push(src[i]) until it fails.
  std::size_t try_push_bulk(const T* src, std::size_t n) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t free = capacity() - static_cast<std::size_t>(tail - head_cache_);
    if (free < n) {
      head_cache_ = head_.load(std::memory_order_acquire);
      free = capacity() - static_cast<std::size_t>(tail - head_cache_);
      if (free == 0) return 0;
    }
    const std::size_t count = std::min(n, free);
    const std::size_t start = static_cast<std::size_t>(tail) & mask_;
    const std::size_t first = std::min(count, capacity() - start);
    std::copy_n(src, first, slots_.begin() + static_cast<std::ptrdiff_t>(start));
    std::copy_n(src + first, count - first, slots_.begin());
    tail_.store(tail + count, std::memory_order_release);
    return count;
  }

  /// Producer side: no further pushes will happen.  Idempotent.
  void close() { closed_.store(true, std::memory_order_release); }
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Consumer side.  Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side, bulk: pops up to `max` items into `dst` and returns how
  /// many were dequeued (0 when empty).  One acquire load observes the
  /// producer's cursor for the whole block; the move runs over at most two
  /// contiguous slot segments.  Equivalent to calling try_pop() until it
  /// fails.
  std::size_t try_pop_bulk(T* dst, std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(tail_cache_ - head);
    if (avail < max) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(tail_cache_ - head);
      if (avail == 0) return 0;
    }
    const std::size_t count = std::min(max, avail);
    const std::size_t start = static_cast<std::size_t>(head) & mask_;
    const std::size_t first = std::min(count, capacity() - start);
    auto from = std::make_move_iterator(slots_.begin() +
                                        static_cast<std::ptrdiff_t>(start));
    std::copy_n(from, first, dst);
    std::copy_n(std::make_move_iterator(slots_.begin()), count - first,
                dst + first);
    head_.store(head + count, std::memory_order_release);
    return count;
  }

  /// Consumer side: pop, distinguishing "empty for now" from "drained and
  /// closed".  The closed check runs *before* the retry pop so the final
  /// push-then-close pair can never be missed.
  enum class Pop { kItem, kEmpty, kDone };
  Pop pop_or_closed(T& out) {
    if (try_pop(out)) return Pop::kItem;
    if (!closed()) return Pop::kEmpty;
    // Closed was observed (acquire) after a failed pop; anything the
    // producer pushed before close() is now visible -- one more pop decides.
    return try_pop(out) ? Pop::kItem : Pop::kDone;
  }

  /// Bulk analogue of pop_or_closed(): pops up to `max` items into `dst`.
  /// Returns the count; a zero return sets `done` when the ring is closed
  /// and fully drained (same never-miss-the-final-push ordering as the
  /// scalar version).
  std::size_t pop_bulk_or_closed(T* dst, std::size_t max, bool& done) {
    done = false;
    std::size_t n = try_pop_bulk(dst, max);
    if (n > 0) return n;
    if (!closed()) return 0;
    n = try_pop_bulk(dst, max);
    done = n == 0;
    return n;
  }

  /// Consumer side, zero-copy bulk: a contiguous view of up to `max` queued
  /// items starting at the oldest, WITHOUT dequeuing them.  The slots stay
  /// owned by the consumer -- the producer cannot reuse them -- until
  /// release() frees them, so the view can be processed in place (no
  /// copy-out).  May return fewer than queued when the available span wraps
  /// the ring edge; empty means "nothing queued right now".
  std::span<const T> front_block(std::size_t max) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    std::size_t avail = static_cast<std::size_t>(tail_cache_ - head);
    if (avail < max) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      avail = static_cast<std::size_t>(tail_cache_ - head);
      if (avail == 0) return {};
    }
    const std::size_t start = static_cast<std::size_t>(head) & mask_;
    const std::size_t count =
        std::min(std::min(avail, max), capacity() - start);
    return {slots_.data() + start, count};
  }

  /// Consumer side: frees the oldest `n` slots (the prefix handed out by
  /// front_block()).  One release store -- the bulk-dequeue commit.
  void release(std::size_t n) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    ESPICE_ASSERT(n <= static_cast<std::size_t>(tail_cache_ - head),
                  "releasing more slots than were handed out");
    head_.store(head + n, std::memory_order_release);
  }

  /// Approximate occupancy; exact when called by the producer or consumer
  /// thread for its own side's view, a safe snapshot otherwise.  This is the
  /// per-shard queue-depth (backpressure) signal fed to overload detectors.
  std::size_t size() const {
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<std::size_t>(tail - head) : 0;
  }

  bool empty() const { return size() == 0; }

 private:
  // Producer-owned line: tail cursor plus the cached consumer position.
  alignas(64) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t head_cache_ = 0;
  // Consumer-owned line: head cursor plus the cached producer position.
  alignas(64) std::atomic<std::uint64_t> head_{0};
  std::uint64_t tail_cache_ = 0;
  alignas(64) std::atomic<bool> closed_{false};

  std::vector<T> slots_;
  std::size_t mask_ = 0;
};

/// A bank of P single-producer lanes feeding ONE consumer, merged back into
/// the global stream order by sequence number.  This is the multi-producer
/// ingestion stage: each producer thread owns exactly one lane (a plain
/// SpscRing, so every push stays wait-free and lock-free), and the consumer
/// runs a deterministic P-way merge, emitting items in strictly increasing
/// `.seq` order regardless of how producer pushes interleave in real time.
///
/// Requirements on T and the producers:
///   - T has a public integral `seq` field;
///   - each producer pushes its items in strictly increasing seq order;
///   - seqs are unique across ALL lanes (the merge output is then a total
///     order and bit-identical run to run).
///
/// The merge must never emit seq s while another lane could still produce
/// an item with seq < s.  An empty lane alone cannot decide this -- the
/// producer might simply be between batches -- so each lane carries a
/// "floor": a producer-maintained promise that every FUTURE push on that
/// lane has seq >= floor.  Producers advance it after each batch
/// (set_floor(last_seq + 1)) and close() raises it to infinity.  The merge
/// emits the smallest visible head seq only when every other lane either
/// shows a head above it or promises (floor / closed) never to go below it;
/// otherwise it reports kStall and the caller decides how to wait.
///
/// Memory-ordering note: a floor value may only be trusted against an
/// emptiness observation made AFTER the floor was read.  The producer
/// stores the floor (release) after its batch pushes; the consumer
/// therefore re-reads the lane head after acquiring the floor, so any push
/// the floor "covers" is visible before the lane is judged empty.
template <typename T>
class SpscLaneSet {
 public:
  SpscLaneSet(std::size_t lanes, std::size_t capacity_per_lane) {
    ESPICE_REQUIRE(lanes > 0, "lane set needs at least one lane");
    lanes_.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i)
      lanes_.push_back(std::make_unique<Lane>(capacity_per_lane));
  }

  std::size_t lane_count() const { return lanes_.size(); }

  /// Producer side: lane `p` belongs exclusively to producer p.
  SpscRing<T>& lane(std::size_t p) { return lanes_[p]->ring; }

  /// Producer side: promise that every future push on lane `p` has
  /// seq >= `bound`.  Must be monotonically non-decreasing.
  void set_floor(std::size_t p, std::uint64_t bound) {
    lanes_[p]->floor.store(bound, std::memory_order_release);
  }

  /// Producer side: end of stream on lane `p` (floor becomes infinite).
  void close_lane(std::size_t p) {
    Lane& ln = *lanes_[p];
    ln.floor.store(~std::uint64_t{0}, std::memory_order_release);
    ln.ring.close();
  }

  enum class Merge { kItems, kStall, kDone };

  /// Consumer side: pops up to `max` items into `dst` in global seq order.
  /// kItems  -> out_n > 0 items were emitted (more may be ready);
  /// kStall  -> nothing emittable right now: some open lane is empty with a
  ///            floor at or below the smallest visible head, so emitting
  ///            would race a slower producer.  Wait and retry.
  /// kDone   -> every lane is closed and drained; the stream is complete.
  Merge merge_pop(T* dst, std::size_t max, std::size_t& out_n) {
    out_n = 0;
    while (out_n < max) {
      std::uint64_t best_seq = ~std::uint64_t{0};
      std::uint64_t second = ~std::uint64_t{0};
      std::uint64_t stall_bound = ~std::uint64_t{0};
      Lane* best = nullptr;
      bool all_done = true;
      for (auto& lp : lanes_) {
        Lane& ln = *lp;
        refresh(ln);
        if (ln.done) continue;
        all_done = false;
        if (ln.pos < ln.view.size()) {
          const std::uint64_t s =
              static_cast<std::uint64_t>(ln.view[ln.pos].seq);
          if (s < best_seq) {
            second = best_seq;
            best_seq = s;
            best = &ln;
          } else if (s < second) {
            second = s;
          }
        } else {
          stall_bound = std::min(stall_bound, ln.bound);
        }
      }
      if (all_done) return out_n > 0 ? Merge::kItems : Merge::kDone;
      if (best == nullptr || stall_bound <= best_seq)
        return out_n > 0 ? Merge::kItems : Merge::kStall;
      // Drain the winning lane while it provably stays the minimum: its
      // items are below every other visible head AND below every empty
      // lane's floor.
      const std::uint64_t limit = std::min(second, stall_bound);
      while (out_n < max && best->pos < best->view.size()) {
        const T& item = best->view[best->pos];
        if (static_cast<std::uint64_t>(item.seq) >= limit) break;
        dst[out_n++] = item;
        ++best->pos;
      }
    }
    return Merge::kItems;
  }

  /// Approximate total occupancy across lanes (queue-depth signal).
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& lp : lanes_) n += lp->ring.size();
    return n;
  }

 private:
  struct Lane {
    explicit Lane(std::size_t cap) : ring(cap) {}
    SpscRing<T> ring;
    alignas(64) std::atomic<std::uint64_t> floor{0};
    // Consumer-owned merge state.
    std::span<const T> view{};
    std::size_t pos = 0;
    std::uint64_t bound = 0;  // floor snapshot valid for the current view
    bool done = false;
  };

  /// Consumer side: make the lane's head visible, or establish a trustable
  /// (floor, empty) observation, or mark it done.
  void refresh(Lane& ln) {
    if (ln.done || ln.pos < ln.view.size()) return;
    if (ln.pos > 0) {
      ln.ring.release(ln.pos);
      ln.view = {};
      ln.pos = 0;
    }
    ln.view = ln.ring.front_block(ln.ring.capacity());
    if (!ln.view.empty()) return;
    // Empty: acquire the floor FIRST, then look again -- every push made
    // before that floor value was published is visible to the second look.
    ln.bound = ln.floor.load(std::memory_order_acquire);
    const bool was_closed = ln.ring.closed();
    ln.view = ln.ring.front_block(ln.ring.capacity());
    if (!ln.view.empty()) return;
    if (was_closed) ln.done = true;
  }

  std::vector<std::unique_ptr<Lane>> lanes_;
};

}  // namespace espice
