#include "runtime/stream_engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <span>
#include <thread>
#include <tuple>

#include "common/error.hpp"
#include "durability/serial.hpp"
#include "runtime/backoff.hpp"
#include "runtime/shard_pipeline.hpp"
#include "runtime/spsc_ring.hpp"

namespace espice {

namespace {

/// Shard-side drain block: how many events one front_block() view exposes
/// at most (one acquire per view, one release store per commit).  Also
/// doubles as the depth-gauge sampling granularity: ring cursors are read
/// once per block, not per event.
constexpr std::size_t kShardBlock = 256;

/// checkpoint_target sentinel: no cut armed.
constexpr std::uint64_t kNoCheckpoint = ~std::uint64_t{0};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Escalation cap for shard IDLE waits (an empty ring, an open lane with no
/// input yet).  Lower than the router's 1ms backpressure cap: an idle shard
/// must notice fresh work quickly, and on an undersubscribed box the sleeps
/// are what return the core to whoever produces that work.
constexpr std::uint64_t kShardIdleSleepUs = 200;

/// One depth/peak sample per drained block plus a busy-time stamp around its
/// processing -- shared by all three deterministic runner loops.
struct OccupancyMeter {
  ShardStats& stats;
  std::chrono::steady_clock::time_point t0{};
  void sample_depth(std::size_t depth) {
    stats.peak_queue_depth = std::max(stats.peak_queue_depth, depth);
    stats.depth_sum += depth;
    ++stats.depth_samples;
    t0 = std::chrono::steady_clock::now();
  }
  void block_done() { stats.busy_seconds += seconds_since(t0); }
};

/// Mode-exclusion rules for multi-producer ingestion and rebalancing
/// (shared by the constructor's fail-fast checks and validate()).
void validate_modes(const StreamEngineConfig& c) {
  if (c.producers > 0) {
    ESPICE_REQUIRE(!c.adaptive.has_value(),
                   "multi-producer ingestion requires deterministic mode");
    ESPICE_REQUIRE(!c.event_time.has_value(),
                   "multi-producer ingestion excludes event time (watermark "
                   "broadcast assumes one router)");
    ESPICE_REQUIRE(!c.rebalance.has_value(),
                   "multi-producer ingestion excludes rebalancing");
    ESPICE_REQUIRE(c.latency_sample_every == 0,
                   "latency sampling assumes a single router thread");
    if (c.durability.has_value()) {
      ESPICE_REQUIRE(c.durability->snapshot_every_events == 0,
                     "multi-producer mode cannot auto-checkpoint: the events "
                     "pushed so far are not a seq-prefix, so no consistent "
                     "mid-stream cut exists");
    }
  }
  if (c.rebalance.has_value()) {
    ESPICE_REQUIRE(c.rebalance->partitions >= c.shards,
                   "rebalance.partitions must be >= shards (a partition is "
                   "the migration granularity)");
    ESPICE_REQUIRE(!c.adaptive.has_value(),
                   "rebalancing requires deterministic mode");
    ESPICE_REQUIRE(!c.event_time.has_value(),
                   "rebalancing excludes event time (reorder state does not "
                   "migrate)");
    ESPICE_REQUIRE(!c.durability.has_value(),
                   "rebalancing excludes durability (per-shard checkpoint "
                   "cuts assume a fixed placement)");
    ESPICE_REQUIRE(c.latency_sample_every == 0,
                   "latency marks do not follow migrating partitions");
    ESPICE_REQUIRE(c.rebalance->hot_factor >= 1.0,
                   "rebalance.hot_factor below 1 would thrash");
  }
}

}  // namespace

void StreamEngineConfig::validate() const {
  ESPICE_REQUIRE(shards > 0, "engine needs at least one shard");
  ESPICE_REQUIRE(ring_capacity > 0, "ring capacity must be positive");
  validate_modes(*this);
  if (durability.has_value()) {
    ESPICE_REQUIRE(!adaptive.has_value(),
                   "durability requires deterministic mode (adaptive results "
                   "depend on the wall clock and are not replayable)");
    ESPICE_REQUIRE(!durability->dir.empty(), "durability.dir must be set");
  }
  if (event_time.has_value()) {
    ESPICE_REQUIRE(!adaptive.has_value(),
                   "event time requires deterministic mode");
    event_time->validate();
  }
  if (adaptive.has_value()) {
    adaptive->validate();
    return;
  }
  query.pattern.validate();
  query.window.validate();
  if (shedder_factory != nullptr) {
    ESPICE_REQUIRE(
        predicted_ws > 0.0 || query.window.span_kind == WindowSpan::kCount,
        "non-count windows need an explicit predicted_ws to shed");
  }
}

/// One latency sample in flight: the router's enqueue-count high-water mark
/// at emission plus its timestamp.  The shard records the sample once its
/// consumed counter passes `count` -- the marked event's block has been
/// fully processed and released by then.
struct LatencyMark {
  std::uint64_t count = 0;
  std::chrono::steady_clock::time_point t0;
};

struct StreamEngine::Shard {
  /// Capacity of the latency-mark side ring.  Small on purpose: marks are
  /// best-effort samples (the router drops one when the ring is full, it
  /// never blocks), so a lagging shard costs coverage, not throughput.
  static constexpr std::size_t kMarkRingCapacity = 256;

  Shard(std::size_t index_, std::size_t ring_capacity, std::size_t num_queries)
      : ring(ring_capacity), marks(kMarkRingCapacity) {
    stats.shard = index_;
    query_matches.resize(num_queries);
    query_counters.resize(num_queries);
    query_revisions.resize(num_queries);
  }

  /// Router side: account `n` ring enqueues and emit a latency mark when
  /// the sampling threshold is crossed.  Punctuation enqueues pass
  /// data=false -- they advance `routed` (so mark counts stay aligned with
  /// the shard's consumed counter, which counts them too) but never carry
  /// a mark.  Callers gate on latency_sample_every != 0, keeping the
  /// disabled hot path free of this entirely.
  void note_enqueued(std::size_t n, bool data, std::size_t sample_every) {
    routed += n;
    if (data && routed >= next_mark) {
      marks.try_push(LatencyMark{routed, std::chrono::steady_clock::now()});
      next_mark = routed + sample_every;
    }
  }

  /// Shard side: record every mark whose event is inside a released block.
  void drain_marks(std::uint64_t consumed) {
    for (;;) {
      const std::span<const LatencyMark> m = marks.front_block(1);
      if (m.empty() || m[0].count > consumed) break;
      const auto dt = std::chrono::steady_clock::now() - m[0].t0;
      stats.latency.record(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count()));
      marks.release(1);
    }
  }

  /// Per-query outcome counters of this shard (summed into QueryReport).
  struct QueryCounters {
    std::uint64_t memberships = 0;       ///< offered pairs in its group
    std::uint64_t memberships_kept = 0;  ///< pairs this query kept
    std::uint64_t shed_decisions = 0;
    std::uint64_t shed_drops = 0;
  };

  SpscRing<Event> ring;
  /// Multi-producer mode only: P producer-private lanes replacing `ring`
  /// as the shard's input (merged deterministically on seq).
  std::unique_ptr<SpscLaneSet<Event>> lanes;
  std::thread thread;
  /// Classic / multi-producer mode: the shard's single pipeline (built on
  /// the shard thread, read by finish() after the join).
  std::unique_ptr<DetPipeline> pipeline;
  /// Rebalance mode: resident partition pipelines, indexed by partition
  /// (null when the partition lives elsewhere).  A migration moves the
  /// unique_ptr between shards through the engine's mailbox.
  std::vector<std::unique_ptr<DetPipeline>> parts;
  /// Per-query shedders, built by the factories on the router thread at
  /// start() (the documented factory contract); each is then owned and
  /// driven by this shard's thread only.
  std::vector<std::unique_ptr<Shedder>> shedders;
  /// Per query, this shard's matches in shard-local detection order.
  std::vector<std::vector<ComplexEvent>> query_matches;
  std::vector<QueryCounters> query_counters;
  /// Event-time kRevise: per query, this shard's window re-emissions in
  /// shard-local detection order.
  std::vector<std::vector<RevisionRecord>> query_revisions;
  /// Event-time kSideOutput: late captures in shard-local arrival order.
  std::vector<SideOutputRecord> side_outputs;
  ShardStats stats;
  std::exception_ptr error;

  // --- latency sampling (router produces, shard consumes) ----------------
  /// Every-Nth-enqueue timestamp marks; tiny and best-effort by design.
  SpscRing<LatencyMark> marks;
  /// Router-owned: total ring enqueues (data + punctuations) and the
  /// routed-count threshold that triggers the next mark.
  std::uint64_t routed = 0;
  std::uint64_t next_mark = 0;

  // --- durability checkpoint handshake (router <-> shard thread) ---------
  /// The router arms this with the exact number of events the shard must
  /// have consumed at the cut; the shard drains up to it (never past),
  /// serializes its pipeline into `checkpoint_blob`, publishes via
  /// `checkpoint_ready` and holds until the router clears the target.
  std::atomic<std::uint64_t> checkpoint_target{kNoCheckpoint};
  std::atomic<bool> checkpoint_ready{false};
  std::vector<std::byte> checkpoint_blob;
  /// Set (release) by a shard entering its failure drain, so the router's
  /// checkpoint wait bails out instead of deadlocking on a dead pipeline.
  std::atomic<bool> failed{false};
  /// Ring items the pipeline consumed so far (one relaxed store per drained
  /// block) -- the last-progress gauge EngineHealth reports, and the only
  /// shard-side state the router may read before joining.
  std::atomic<std::uint64_t> progress{0};
};

std::uint64_t StreamEngine::partition_hash(std::uint64_t key) {
  // SplitMix64 finalizer: fixed, platform-independent avalanche so the
  // shard assignment is part of the engine's deterministic contract.
  std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t StreamEngine::shard_index(std::uint64_t key, std::size_t shards) {
  return static_cast<std::size_t>(partition_hash(key) % shards);
}

std::size_t StreamEngine::shard_of(const Event& e) const {
  const std::uint64_t key =
      config_.key_of ? config_.key_of(e) : static_cast<std::uint64_t>(e.type);
  // Same mapping as shard_index(), with the modulo replaced by a mask when
  // the shard count is a power of two (h % K == h & (K-1) for such K).
  const std::uint64_t h = partition_hash(key);
  const std::size_t k = config_.shards;
  return static_cast<std::size_t>((k & (k - 1)) == 0 ? (h & (k - 1))
                                                     : (h % k));
}

StreamEngine::StreamEngine(StreamEngineConfig config)
    : config_(std::move(config)) {
  // Only the common fields are checked here: the query set is not final
  // until start() (add_query() may still register more), where the full
  // validation runs.
  ESPICE_REQUIRE(config_.shards > 0, "engine needs at least one shard");
  ESPICE_REQUIRE(config_.ring_capacity > 0, "ring capacity must be positive");
  validate_modes(config_);
  if (config_.durability.has_value()) {
    ESPICE_REQUIRE(!config_.adaptive.has_value(),
                   "durability requires deterministic mode (adaptive results "
                   "depend on the wall clock and are not replayable)");
    ESPICE_REQUIRE(!config_.durability->dir.empty(),
                   "durability.dir must be set");
  }
  if (config_.event_time.has_value()) {
    ESPICE_REQUIRE(!config_.adaptive.has_value(),
                   "event time requires deterministic mode");
    config_.event_time->validate();
  }
  if (config_.adaptive.has_value()) config_.adaptive->validate();
}

std::size_t StreamEngine::add_query(EngineQuery q) {
  ESPICE_REQUIRE(!started_, "add_query() after the engine started");
  ESPICE_REQUIRE(!config_.adaptive.has_value(),
                 "the adaptive engine is single-query");
  ESPICE_REQUIRE(queries_.size() < kMaxQueriesPerWindowManager,
                 "too many queries for one engine");
  queries_.push_back(std::move(q));
  return queries_.size() - 1;
}

void StreamEngine::start() {
  if (started_) return;
  started_ = true;

  if (!config_.adaptive.has_value()) {
    if (queries_.empty()) {
      // Legacy single-query path: adopt the config's query as query 0.
      config_.validate();
      EngineQuery q;
      q.query = config_.query;
      q.shedder_factory = config_.shedder_factory;
      q.predicted_ws = config_.predicted_ws;
      queries_.push_back(std::move(q));
    }
    for (std::size_t i = 0; i < queries_.size(); ++i) {
      EngineQuery& q = queries_[i];
      q.query.pattern.validate();
      q.query.window.validate();
      if (q.shedder_factory != nullptr) {
        ESPICE_REQUIRE(q.predicted_ws > 0.0 ||
                           q.query.window.span_kind == WindowSpan::kCount,
                       "non-count windows need an explicit predicted_ws to "
                       "shed (query " +
                           std::to_string(i) + ")");
      }
      if (q.name.empty()) q.name = "q" + std::to_string(i);
    }
  }

  if (config_.durability.has_value()) {
    // recover_and_start() opens the log itself (and seeds pushed_per_shard_
    // from the snapshot); a cold start opens a fresh-or-existing log here.
    // A failure to OPEN the log is fatal under every on_wal_error policy:
    // there is no durable prefix to seal and nothing to retry against.
    if (log_ == nullptr) {
      try {
        open_durability();
      } catch (const Error& e) {
        state_ = EngineState::kFailed;
        last_error_ = std::string("cannot open durability: ") + e.what();
        throw;
      }
    }
    if (pushed_per_shard_.empty()) pushed_per_shard_.assign(config_.shards, 0);
  }

  const std::size_t num_queries = std::max<std::size_t>(queries_.size(), 1);
  const bool rebalancing = config_.rebalance.has_value();
  if (config_.shards > 1 || rebalancing) {
    staging_.resize(config_.shards);
    // Seed each staging buffer's capacity so typical batches never allocate
    // on the routing path (buffers keep growing to the largest batch seen).
    for (auto& buf : staging_) buf.reserve(kShardBlock);
    staging_off_.assign(config_.shards, 0);
  }
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(i, config_.ring_capacity, num_queries));
    if (config_.producers > 0) {
      shards_.back()->lanes = std::make_unique<SpscLaneSet<Event>>(
          config_.producers, config_.ring_capacity);
    }
    if (!config_.adaptive.has_value() && !rebalancing) {
      auto& shedders = shards_.back()->shedders;
      shedders.reserve(queries_.size());
      for (const EngineQuery& q : queries_) {
        shedders.push_back(q.shedder_factory ? q.shedder_factory(i) : nullptr);
      }
    }
  }
  if (config_.producers > 0) {
    mp_staging_.resize(config_.producers);
    for (auto& per_shard : mp_staging_) {
      per_shard.resize(config_.shards);
      for (auto& buf : per_shard) buf.reserve(kShardBlock);
    }
    mp_off_.assign(config_.producers,
                   std::vector<std::size_t>(config_.shards, 0));
  }
  if (rebalancing) {
    const std::size_t nparts = config_.rebalance->partitions;
    // Initial placement: round-robin, so every shard starts with an equal
    // slice of the partition space.
    placement_.resize(nparts);
    for (std::size_t p = 0; p < nparts; ++p) placement_[p] = p % config_.shards;
    part_counts_.assign(nparts, 0);
    mailbox_ = std::make_unique<std::atomic<DetPipeline*>[]>(nparts);
    for (std::size_t p = 0; p < nparts; ++p) {
      mailbox_[p].store(nullptr, std::memory_order_relaxed);
    }
    // Shedders are per PARTITION here (the factory's "shard" argument is
    // the partition index): a partition's shedding state migrates with it.
    part_shedders_.resize(nparts);
    for (std::size_t p = 0; p < nparts; ++p) {
      auto& shedders = part_shedders_[p];
      shedders.reserve(queries_.size());
      for (const EngineQuery& q : queries_) {
        shedders.push_back(q.shedder_factory ? q.shedder_factory(p) : nullptr);
      }
    }
    for (auto& s : shards_) s->parts.resize(nparts);
  }
  start_ = std::chrono::steady_clock::now();
  try {
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      if (config_.adaptive.has_value()) {
        s->thread = std::thread([this, s] { run_adaptive_shard(*s); });
      } else if (config_.producers > 0) {
        s->thread = std::thread([this, s] { run_merged_shard(*s); });
      } else if (rebalancing) {
        s->thread = std::thread([this, s] { run_partitioned_shard(*s); });
      } else {
        s->thread = std::thread([this, s] { run_deterministic_shard(*s); });
      }
    }
  } catch (...) {
    // Thread spawn failed mid-loop: release the shards already running
    // (close their rings, join) before rethrowing -- destroying a joinable
    // std::thread would terminate the process.
    for (auto& s : shards_) {
      s->ring.close();
      if (s->lanes != nullptr) {
        for (std::size_t p = 0; p < s->lanes->lane_count(); ++p) {
          s->lanes->close_lane(p);
        }
      }
    }
    for (auto& s : shards_) {
      if (s->thread.joinable()) s->thread.join();
    }
    throw;
  }
}

StreamEngine::~StreamEngine() {
  if (!finished_) teardown();
}

void StreamEngine::teardown() noexcept {
  // Release any armed checkpoint cut first: a shard holding a cut waits for
  // the router to clear its target and would never observe the ring close.
  for (auto& s : shards_) {
    s->checkpoint_target.store(kNoCheckpoint, std::memory_order_release);
  }
  for (auto& s : shards_) {
    s->ring.close();
    if (s->lanes != nullptr) {
      for (std::size_t p = 0; p < s->lanes->lane_count(); ++p) {
        s->lanes->close_lane(p);
      }
    }
  }
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
  // An aborted migration can leave a pipeline parked in the mailbox (the
  // exporter handed it off, the importer died or never ran): reclaim it.
  if (mailbox_ != nullptr) {
    for (std::size_t p = 0; p < placement_.size(); ++p) {
      delete mailbox_[p].exchange(nullptr, std::memory_order_acquire);
    }
  }
}

void StreamEngine::abort() noexcept {
  if (aborted_) return;
  aborted_ = true;
  finished_ = true;  // terminal: push/checkpoint/finish are rejected now
  teardown();
}

EngineHealth StreamEngine::health() const {
  EngineHealth h;
  h.state = state_;
  h.wal_errors = wal_errors_;
  h.wal_degraded = wal_degraded_;
  h.degraded_at_offset = degraded_at_offset_;
  h.last_error = last_error_;
  h.shards.reserve(shards_.size());
  for (const auto& s : shards_) {
    ShardHealth sh;
    sh.shard = s->stats.shard;
    sh.failed = s->failed.load(std::memory_order_acquire);
    sh.last_progress = s->progress.load(std::memory_order_relaxed);
    if (sh.failed) {
      h.state = EngineState::kFailed;  // even if the router has not noticed
      if (s->error != nullptr) {
        try {
          std::rethrow_exception(s->error);
        } catch (const std::exception& e) {
          sh.error = e.what();
        } catch (...) {
          sh.error = "non-standard exception";
        }
      }
    }
    h.shards.push_back(std::move(sh));
  }
  return h;
}

void StreamEngine::ensure_accepting(const char* op) {
  if (state_ == EngineState::kFailed) {
    throw Error(ErrorCode::kEngineFailed,
                std::string(op) + " on a failed engine: " + last_error_);
  }
  if (any_shard_failed_.load(std::memory_order_relaxed)) {
    for (auto& s : shards_) {
      if (s->failed.load(std::memory_order_acquire)) fail_for_shard(*s);
    }
  }
}

void StreamEngine::fail_for_shard(Shard& s) {
  state_ = EngineState::kFailed;
  std::string what = "unknown error";
  if (s.error != nullptr) {  // published before failed (release/acquire)
    try {
      std::rethrow_exception(s.error);
    } catch (const std::exception& e) {
      what = e.what();
    } catch (...) {
      what = "non-standard exception";
    }
  }
  last_error_ = "shard " + std::to_string(s.stats.shard) +
                " failed after consuming " +
                std::to_string(s.progress.load(std::memory_order_relaxed)) +
                " events: " + what;
  throw Error(ErrorCode::kShardFailed, last_error_);
}

void StreamEngine::push(const Event& e) {
  ESPICE_REQUIRE(!finished_, "push() after finish()");
  ESPICE_REQUIRE(config_.producers == 0,
                 "multi-producer mode: use push_batch_concurrent()");
  ensure_accepting("push()");
  if (!started_) start();
  // Write-ahead: the event is in the log before any shard can observe it,
  // so everything a recovered run may have partially processed is
  // replayable.  Replay itself flows through here with appends suppressed
  // (the events come *from* the log).
  if (log_ != nullptr && !replaying_) {
    wal_append(std::span<const Event>(&e, 1));
  }
  if (is_watermark(e)) {
    ESPICE_REQUIRE(config_.event_time.has_value(),
                   "watermark pushed without event_time configured");
    route_punctuation(e);
    if (log_ != nullptr && !replaying_) {
      ++events_since_snapshot_;
      maybe_auto_checkpoint();
    }
    return;
  }
  std::size_t si;
  if (!placement_.empty()) {
    const std::size_t p = partition_of(e);
    ++part_counts_[p];
    ++window_routed_;
    si = placement_[p];
  } else {
    si = shard_of(e);
  }
  Shard& s = *shards_[si];
  if (!s.ring.try_push(e)) {
    // Backpressure: the shard is the bottleneck; back the router off
    // (yield, then bounded sleeps) until a slot frees up.  The counters
    // are router-owned, so plain accumulation.  Every pass polls the
    // shard's failure flag -- a dead consumer never frees slots, so a
    // waiter that did not would hang the router forever.
    BackoffWaiter waiter(s.stats.shard);
    do {
      if (s.failed.load(std::memory_order_acquire)) fail_for_shard(s);
      waiter.wait();
    } while (!s.ring.try_push(e));
    s.stats.router_backpressure_waits += waiter.waits();
    s.stats.router_stall_seconds += waiter.stall_seconds();
  }
  if (config_.latency_sample_every != 0) {
    s.note_enqueued(1, /*data=*/true, config_.latency_sample_every);
  }
  ++pushed_;
  if (config_.event_time.has_value()) {
    if (!router_max_valid_ || e.seq > router_max_seq_) {
      router_max_seq_ = e.seq;
      router_max_valid_ = true;
    }
    ++data_since_hb_;
  }
  if (log_ != nullptr) {
    ++pushed_per_shard_[si];
    if (!replaying_) {
      ++events_since_snapshot_;
      maybe_auto_checkpoint();
    }
  }
  if (!placement_.empty() &&
      window_routed_ >= config_.rebalance->interval_events) {
    decide_moves();
  }
  maybe_heartbeat();
}

void StreamEngine::route_punctuation(const Event& p) {
  // Broadcast: every shard's substream carries the watermark at this
  // point of its arrival order (the rings are FIFO, so it orders after
  // everything routed before it and ahead of everything after).
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    if (!s.ring.try_push(p)) {
      BackoffWaiter waiter(s.stats.shard);
      do {
        if (s.failed.load(std::memory_order_acquire)) fail_for_shard(s);
        waiter.wait();
      } while (!s.ring.try_push(p));
      s.stats.router_backpressure_waits += waiter.waits();
      s.stats.router_stall_seconds += waiter.stall_seconds();
    }
    if (config_.latency_sample_every != 0) {
      s.note_enqueued(1, /*data=*/false, config_.latency_sample_every);
    }
    if (log_ != nullptr) ++pushed_per_shard_[i];
  }
  ++pushed_;
  ++punct_pushed_;
  // Any watermark (user punctuation or heartbeat) restarts the heartbeat
  // period -- also what makes replay reconstruct the counter exactly.
  data_since_hb_ = 0;
}

void StreamEngine::maybe_heartbeat() {
  if (!config_.event_time.has_value() || replaying_) return;
  const EventTimeConfig& et = *config_.event_time;
  if (et.heartbeat_events == 0 || data_since_hb_ < et.heartbeat_events) {
    return;
  }
  // The router's own watermark: the newest seq no within-bound straggler
  // can still precede.  Not yet meaningful below D + 1 events.
  if (!router_max_valid_ || router_max_seq_ < et.disorder_bound + 1) return;
  const Event p = make_watermark(router_max_seq_ - et.disorder_bound - 1);
  // Heartbeats are logged like any record so replay reproduces them at
  // the same stream position instead of re-synthesizing.
  if (log_ != nullptr) wal_append(std::span<const Event>(&p, 1));
  route_punctuation(p);
  if (log_ != nullptr) {
    ++events_since_snapshot_;
    maybe_auto_checkpoint();
  }
}

void StreamEngine::bulk_push_shard(Shard& s, const Event* data, std::size_t n) {
  const std::size_t total = n;
  BackoffWaiter waiter(s.stats.shard);
  while (n > 0) {
    const std::size_t pushed = s.ring.try_push_bulk(data, n);
    if (pushed == 0) {
      if (s.failed.load(std::memory_order_acquire)) fail_for_shard(s);
      waiter.wait();
      continue;
    }
    waiter.reset();
    data += pushed;
    n -= pushed;
  }
  if (waiter.waits() > 0) {
    s.stats.router_backpressure_waits += waiter.waits();
    s.stats.router_stall_seconds += waiter.stall_seconds();
  }
  // One mark per crossed threshold at most: the mark tags the bulk's LAST
  // event, which is what the shard's consumed counter passes.
  if (config_.latency_sample_every != 0) {
    s.note_enqueued(total, /*data=*/true, config_.latency_sample_every);
  }
}

void StreamEngine::flush_staged() {
  // Round-robin flush of the staging buffers: push what fits into each
  // pending ring, rotate, repeat.  The old shard-by-shard loop drained one
  // full ring to completion before touching the next -- on an
  // undersubscribed box that parks the router in a backpressure sleep
  // against shard s while shards s+1..K-1 sit EMPTY and idle, serializing
  // the whole engine on one ring.  Here the router only waits when every
  // pending ring is full.
  std::size_t pending = 0;
  for (std::size_t s = 0; s < staging_.size(); ++s) {
    staging_off_[s] = 0;
    if (!staging_[s].empty()) ++pending;
  }
  if (pending == 0) return;
  Shard* bottleneck = nullptr;
  BackoffWaiter waiter;
  while (pending > 0) {
    bool progress = false;
    for (std::size_t s = 0; s < staging_.size(); ++s) {
      const std::size_t size = staging_[s].size();
      std::size_t& off = staging_off_[s];
      if (off >= size) continue;
      Shard& sh = *shards_[s];
      const std::size_t n =
          sh.ring.try_push_bulk(staging_[s].data() + off, size - off);
      if (n == 0) continue;
      progress = true;
      off += n;
      if (config_.latency_sample_every != 0) {
        sh.note_enqueued(n, /*data=*/true, config_.latency_sample_every);
      }
      if (off >= size) --pending;
    }
    if (pending == 0) break;
    if (!progress) {
      // Every pending ring is full: poll for dead shards (a dead consumer
      // never frees slots), then back off.  The stall is attributed to one
      // still-full shard -- with all pending rings full, any of them is
      // the bottleneck.
      for (std::size_t s = 0; s < staging_.size(); ++s) {
        if (staging_off_[s] >= staging_[s].size()) continue;
        Shard& sh = *shards_[s];
        if (sh.failed.load(std::memory_order_acquire)) fail_for_shard(sh);
        bottleneck = &sh;
      }
      waiter.wait();
    } else {
      waiter.reset();
    }
  }
  if (waiter.waits() > 0 && bottleneck != nullptr) {
    bottleneck->stats.router_backpressure_waits += waiter.waits();
    bottleneck->stats.router_stall_seconds += waiter.stall_seconds();
  }
}

void StreamEngine::push_data_segment(std::span<const Event> events) {
  if (events.empty()) return;
  if (config_.shards == 1 && placement_.empty()) {
    // Single shard: everything routes to shard 0 -- no hashing, no staging
    // copy, bulk enqueue straight from the caller's span.
    bulk_push_shard(*shards_[0], events.data(), events.size());
    if (log_ != nullptr) pushed_per_shard_[0] += events.size();
  } else if (!placement_.empty()) {
    // Rebalance routing must interleave with the decision cadence even
    // inside one large batch: route in chunks that stop exactly at the
    // interval boundary, flush, then let decide_moves() emit its migration
    // markers.  Flushing BEFORE deciding is load-bearing -- markers go
    // straight into the rings, so any event still staged under the old
    // placement would otherwise arrive at its old shard behind the export
    // marker, after the pipeline left.
    const std::uint64_t interval = config_.rebalance->interval_events;
    const std::size_t nparts = placement_.size();
    std::size_t i = 0;
    while (i < events.size()) {
      const std::uint64_t room =
          interval > window_routed_ ? interval - window_routed_ : 1;
      const std::size_t take = static_cast<std::size_t>(
          std::min<std::uint64_t>(events.size() - i, room));
      const std::span<const Event> chunk = events.subspan(i, take);
      for (auto& buf : staging_) buf.clear();
      if (config_.key_of) {
        const auto& key_of = config_.key_of;
        for (const Event& e : chunk) {
          const auto p =
              static_cast<std::size_t>(partition_hash(key_of(e)) % nparts);
          ++part_counts_[p];
          staging_[placement_[p]].push_back(e);
        }
      } else {
        for (const Event& e : chunk) {
          const auto p =
              static_cast<std::size_t>(partition_hash(e.type) % nparts);
          ++part_counts_[p];
          staging_[placement_[p]].push_back(e);
        }
      }
      window_routed_ += take;
      flush_staged();
      if (log_ != nullptr) {
        for (std::size_t s = 0; s < staging_.size(); ++s) {
          pushed_per_shard_[s] += staging_[s].size();
        }
      }
      i += take;
      if (window_routed_ >= interval) decide_moves();
    }
  } else {
    for (auto& buf : staging_) buf.clear();
    {
      // Routing hot loop.  The key_of null check is hoisted out of the
      // per-event loop, and a power-of-two shard count replaces the modulo
      // with a mask -- an IDENTICAL mapping (hash % K == hash & (K-1) for
      // K a power of two), so goldens are unaffected.
      const std::size_t k = config_.shards;
      const std::uint64_t mask = k - 1;
      if (config_.key_of) {
        const auto& key_of = config_.key_of;
        if ((k & (k - 1)) == 0) {
          for (const Event& e : events) {
            staging_[partition_hash(key_of(e)) & mask].push_back(e);
          }
        } else {
          for (const Event& e : events) {
            staging_[partition_hash(key_of(e)) % k].push_back(e);
          }
        }
      } else {
        if ((k & (k - 1)) == 0) {
          for (const Event& e : events) {
            staging_[partition_hash(e.type) & mask].push_back(e);
          }
        } else {
          for (const Event& e : events) {
            staging_[partition_hash(e.type) % k].push_back(e);
          }
        }
      }
    }
    flush_staged();
    if (log_ != nullptr) {
      for (std::size_t s = 0; s < staging_.size(); ++s) {
        pushed_per_shard_[s] += staging_[s].size();
      }
    }
  }
  pushed_ += events.size();
  if (config_.event_time.has_value()) {
    for (const Event& e : events) {
      if (!router_max_valid_ || e.seq > router_max_seq_) {
        router_max_seq_ = e.seq;
        router_max_valid_ = true;
      }
    }
    data_since_hb_ += events.size();
  }
}

void StreamEngine::push_batch(std::span<const Event> events) {
  ESPICE_REQUIRE(!finished_, "push_batch() after finish()");
  ESPICE_REQUIRE(config_.producers == 0,
                 "multi-producer mode: use push_batch_concurrent()");
  ensure_accepting("push_batch()");
  if (events.empty()) return;
  if (!started_) start();
  if (log_ != nullptr && !replaying_) wal_append(events);
  if (config_.event_time.has_value()) {
    // Punctuations broadcast to every shard and must keep their arrival
    // position relative to the data around them: split the batch at
    // watermark records, flushing each punctuation-free run in bulk.
    std::size_t i = 0;
    while (i < events.size()) {
      if (is_watermark(events[i])) {
        route_punctuation(events[i]);
        ++i;
        continue;
      }
      std::size_t j = i + 1;
      while (j < events.size() && !is_watermark(events[j])) ++j;
      push_data_segment(events.subspan(i, j - i));
      i = j;
    }
  } else {
    push_data_segment(events);
  }
  if (log_ != nullptr && !replaying_) {
    events_since_snapshot_ += events.size();
    maybe_auto_checkpoint();
  }
  maybe_heartbeat();
}

void StreamEngine::run_deterministic_shard(Shard& shard) {
  try {
    const std::size_t nq = queries_.size();
    // The whole window/matcher/shedder body lives in DetPipeline (see
    // runtime/shard_pipeline.hpp) -- this runner owns only what is tied to
    // the SHARD rather than the pipeline: the ring drain, the event-time
    // reorder stage, the checkpoint handshake and the latency marks.
    shard.pipeline = std::make_unique<DetPipeline>(
        std::span<const EngineQuery>(queries_.data(), queries_.size()),
        std::move(shard.shedders),
        config_.event_time.has_value() ? &*config_.event_time : nullptr);
    DetPipeline& pipe = *shard.pipeline;

    // ---- event-time stage state -----------------------------------------
    const bool et_on = config_.event_time.has_value();
    const EventTimeConfig et_cfg =
        et_on ? *config_.event_time : EventTimeConfig{};
    ReorderBuffer reorder(et_cfg.disorder_bound);
    std::vector<Event> released;  // reused release buffer

    // ---- durability: pipeline snapshot/restore + checkpoint service -----
    // `consumed` counts the ring items (data events and punctuations)
    // this shard has drained over its whole lifetime (it resumes from the
    // snapshot on recovery); the router cuts checkpoints at exact values
    // of it.
    std::uint64_t consumed = 0;

    auto serialize_pipeline = [&](durability::SnapshotWriter& w) {
      w.u64(consumed);
      w.u64(shard.stats.events);
      w.u64(shard.stats.memberships);
      w.u64(shard.stats.memberships_kept);
      w.u64(shard.stats.windows_closed);
      pipe.serialize_core(w);
      w.boolean(et_on);
      if (et_on) {
        reorder.serialize(w);
        w.u64(shard.stats.punctuations);
        w.u64(shard.stats.late_events);
        w.u64(shard.stats.late_dropped);
        w.u64(shard.stats.late_side_output);
        w.u64(shard.stats.revisions);
        w.u64(shard.stats.reorder_peak_buffered);  // scalar, not a prefix
        pipe.serialize_event_time(w);
      }
    };

    auto restore_pipeline = [&](durability::SnapshotReader& r) {
      consumed = r.u64();
      shard.progress.store(consumed, std::memory_order_relaxed);
      shard.stats.events = r.u64();
      shard.stats.memberships = r.u64();
      shard.stats.memberships_kept = r.u64();
      shard.stats.windows_closed = r.u64();
      pipe.restore_core(r);
      const bool had_et = r.boolean();
      ESPICE_CHECK(had_et == et_on, ErrorCode::kCorruptSnapshot,
                   "snapshot event-time mode does not match the engine's "
                   "configuration");
      if (et_on) {
        reorder.restore(r);
        shard.stats.punctuations = r.u64();
        shard.stats.late_events = r.u64();
        shard.stats.late_dropped = r.u64();
        shard.stats.late_side_output = r.u64();
        shard.stats.revisions = r.u64();
        shard.stats.reorder_peak_buffered = static_cast<std::size_t>(r.u64());
        pipe.restore_event_time(r);
      }
    };

    if (shard.stats.shard < recovery_blobs_.size() &&
        !recovery_blobs_[shard.stats.shard].empty()) {
      durability::SnapshotReader r(recovery_blobs_[shard.stats.shard]);
      restore_pipeline(r);
      r.expect_done();
    }

    // Serves an armed checkpoint the shard sits exactly at: serialize,
    // publish, then hold the cut -- the blob buffer is shared with the
    // router, and no event past the cut may be consumed before the
    // snapshot is complete -- until the router collects it and clears the
    // target.
    auto service_checkpoint = [&]() {
      const std::uint64_t target =
          shard.checkpoint_target.load(std::memory_order_acquire);
      if (target == kNoCheckpoint || consumed != target) return;
      durability::SnapshotWriter w;
      serialize_pipeline(w);
      shard.checkpoint_blob = w.take();
      shard.checkpoint_ready.store(true, std::memory_order_release);
      while (shard.checkpoint_target.load(std::memory_order_acquire) ==
             target) {
        std::this_thread::yield();
      }
    };

    // Block drain: one zero-copy ring view per visit (events are processed
    // in place; one release store commits the dequeue), then a block-wise
    // pipeline pass.
    OccupancyMeter meter{shard.stats};
    BackoffWaiter idle(shard.stats.shard, kShardIdleSleepUs);
    for (;;) {
      service_checkpoint();
      std::span<const Event> blk = shard.ring.front_block(kShardBlock);
      if (blk.empty()) {
        if (!shard.ring.closed()) {
          // Idle: escalate yield -> bounded sleep instead of spinning the
          // core (reset on any progress).  Matters most when shards
          // outnumber cores -- a spinning idle shard steals exactly the
          // cycles the busy ones need.
          idle.wait();
          continue;
        }
        // Same never-miss ordering as pop_or_closed(): closed was observed
        // (acquire) after an empty view, so one more look decides.
        blk = shard.ring.front_block(kShardBlock);
        if (blk.empty()) break;
      }
      idle.reset();
      // An armed checkpoint cuts at an exact event count: trim the block so
      // the shard lands on the cut (the loop head serves it), never past.
      const std::uint64_t target =
          shard.checkpoint_target.load(std::memory_order_acquire);
      if (target != kNoCheckpoint && target - consumed < blk.size()) {
        blk = blk.first(static_cast<std::size_t>(target - consumed));
      }
      const std::size_t n = blk.size();
      // Depth gauge, one sample per block (the unreleased block still
      // counts as queued).
      meter.sample_depth(shard.ring.size());
      if (!et_on) {
        pipe.process_data_block(blk, shard.stats);
      } else {
        // Event-time stage: punctuations and stragglers are consumed
        // here; only watermark-released IN-ORDER runs reach the data
        // path, so everything downstream is bit-identical to an
        // in-order run of the released stream.
        for (const Event& e : blk) {
          if (is_watermark(e)) {
            ++shard.stats.punctuations;
            released.clear();
            reorder.punctuate(e.seq, released);
            if (!released.empty()) {
              pipe.process_data_block(released, shard.stats);
            }
            if (watermark_has_ts(e)) {
              // Event-time close: time windows whose span ended at or
              // before the watermark close NOW, without waiting for the
              // next on-time arrival.
              pipe.advance_time_watermark(e.ts, shard.stats);
            }
          } else {
            released.clear();
            if (reorder.accept(e, released) ==
                ReorderBuffer::Accept::kLate) {
              pipe.handle_late(e, reorder.watermark_seq(), shard.stats);
            } else if (!released.empty()) {
              pipe.process_data_block(released, shard.stats);
            }
          }
        }
      }
      meter.block_done();
      consumed += n;
      shard.progress.store(consumed, std::memory_order_relaxed);
      shard.ring.release(n);
      if (config_.latency_sample_every != 0) shard.drain_marks(consumed);
    }
    if (et_on) {
      // End of stream: everything still buffered is releasable (no more
      // arrivals can precede it) -- drain the stage in sequence order
      // before the windows close.
      released.clear();
      reorder.flush(released);
      if (!released.empty()) pipe.process_data_block(released, shard.stats);
      shard.stats.watermark_valid = reorder.has_watermark();
      shard.stats.watermark_seq = reorder.watermark_seq();
      shard.stats.reorder_peak_buffered = reorder.peak_buffered();
    }
    pipe.close_all(shard.stats);

    for (std::size_t qi = 0; qi < nq; ++qi) {
      const DetPipeline::QueryOutcome o = pipe.outcome(qi);
      auto& qc = shard.query_counters[qi];
      qc.memberships = o.memberships;
      qc.memberships_kept = o.memberships_kept;
      qc.shed_decisions = o.shed_decisions;
      qc.shed_drops = o.shed_drops;
      shard.stats.matches += pipe.query_matches[qi].size();
      shard.stats.shed_decisions += o.shed_decisions;
      shard.stats.shed_drops += o.shed_drops;
      shard.query_matches[qi] = std::move(pipe.query_matches[qi]);
      shard.query_revisions[qi] = std::move(pipe.query_revisions[qi]);
    }
    shard.side_outputs = std::move(pipe.side_outputs);
  } catch (...) {
    shard.error = std::current_exception();
    shard.failed.store(true, std::memory_order_release);
    any_shard_failed_.store(true, std::memory_order_release);
    // Keep draining so the router cannot deadlock on a full ring.
    Event e;
    while (shard.ring.pop_or_closed(e) != SpscRing<Event>::Pop::kDone) {
      std::this_thread::yield();
    }
  }
}

void StreamEngine::push_batch_concurrent(std::size_t producer,
                                         std::span<const Event> events) {
  ESPICE_REQUIRE(config_.producers > 0,
                 "push_batch_concurrent() needs config.producers > 0");
  ESPICE_REQUIRE(producer < config_.producers, "producer index out of range");
  // Implicit start would race: the first concurrent pushes would all try to
  // spawn the shards.  The owner must start() (or recover_and_start())
  // before releasing the producer threads.
  ESPICE_REQUIRE(started_,
                 "push_batch_concurrent() before start(): multi-producer "
                 "engines must be started explicitly");
  ESPICE_REQUIRE(!finished_, "push_batch_concurrent() after finish()");
  if (events.empty()) return;
  if (any_shard_failed_.load(std::memory_order_acquire)) {
    // The full fail_for_shard() protocol mutates router-owned state and is
    // not safe from P threads; a typed error is -- health() has the detail.
    throw Error(ErrorCode::kShardFailed,
                "push_batch_concurrent() on an engine with a failed shard");
  }

  // Stage producer-privately: one hash pass splitting the batch by shard.
  // Same mapping as the single-producer router (shard_of), with the
  // power-of-two mask fast path.
  auto& stage = mp_staging_[producer];
  for (auto& buf : stage) buf.clear();
  const std::size_t k = config_.shards;
  const std::uint64_t mask = k - 1;
  const bool pow2 = (k & (k - 1)) == 0;
  std::uint64_t max_seq = 0;
  if (config_.key_of) {
    const auto& key_of = config_.key_of;
    for (const Event& e : events) {
      ESPICE_REQUIRE(!is_watermark(e),
                     "watermarks are not supported in multi-producer mode");
      max_seq = std::max(max_seq, e.seq);
      const std::uint64_t h = partition_hash(key_of(e));
      stage[pow2 ? (h & mask) : (h % k)].push_back(e);
    }
  } else {
    for (const Event& e : events) {
      ESPICE_REQUIRE(!is_watermark(e),
                     "watermarks are not supported in multi-producer mode");
      max_seq = std::max(max_seq, e.seq);
      const std::uint64_t h = partition_hash(e.type);
      stage[pow2 ? (h & mask) : (h % k)].push_back(e);
    }
  }

  // Sequencer: one lock serializes the WAL append and the global ingest
  // count across producers -- "producers stage, one sequencer owns the WAL
  // offset".  The shard rings are NOT touched under the lock.
  {
    std::lock_guard<std::mutex> lk(sequencer_mu_);
    if (log_ != nullptr && !replaying_) wal_append(events);
    mp_pushed_.fetch_add(events.size(), std::memory_order_relaxed);
  }

  // Flush round-robin across shards into this producer's private lanes.
  // Round-robin (not shard-by-shard) is a LIVENESS requirement, not a
  // nicety: shard A's merge can stall on this producer's empty lane-A floor
  // while the producer sits blocked on shard B's full lane, whose consumer
  // in turn stalls on a floor another blocked producer owes it.  Rotating
  // guarantees every producer keeps feeding (or flooring) every shard.
  auto& offs = mp_off_[producer];
  offs.assign(k, 0);
  std::size_t pending = 0;
  for (std::size_t s = 0; s < k; ++s) {
    if (!stage[s].empty()) ++pending;
  }
  BackoffWaiter waiter(producer);
  while (pending > 0) {
    bool progress = false;
    for (std::size_t s = 0; s < k; ++s) {
      const auto& buf = stage[s];
      std::size_t& off = offs[s];
      if (off >= buf.size()) continue;
      SpscRing<Event>& lane = shards_[s]->lanes->lane(producer);
      const std::size_t n =
          lane.try_push_bulk(buf.data() + off, buf.size() - off);
      if (n == 0) continue;
      progress = true;
      off += n;
      if (off >= buf.size()) --pending;
    }
    if (pending == 0) break;
    if (!progress) {
      if (any_shard_failed_.load(std::memory_order_acquire)) {
        throw Error(ErrorCode::kShardFailed,
                    "push_batch_concurrent() stalled on a failed shard");
      }
      waiter.wait();
    } else {
      waiter.reset();
    }
  }

  // Advance this producer's sequence floor on EVERY shard (including the
  // ones that received nothing): each shard's merge may now emit past
  // max_seq without waiting on this lane.  Valid because each producer's
  // seqs are strictly increasing (the documented contract).
  for (std::size_t s = 0; s < k; ++s) {
    shards_[s]->lanes->set_floor(producer, max_seq + 1);
  }
}

void StreamEngine::producer_done(std::size_t producer) {
  ESPICE_REQUIRE(config_.producers > 0,
                 "producer_done() needs config.producers > 0");
  ESPICE_REQUIRE(producer < config_.producers, "producer index out of range");
  if (!started_) return;  // no lanes exist yet, nothing to close
  for (auto& s : shards_) s->lanes->close_lane(producer);
}

void StreamEngine::run_merged_shard(Shard& shard) {
  try {
    const std::size_t nq = queries_.size();
    shard.pipeline = std::make_unique<DetPipeline>(
        std::span<const EngineQuery>(queries_.data(), queries_.size()),
        std::move(shard.shedders), /*event_time=*/nullptr);
    DetPipeline& pipe = *shard.pipeline;

    std::vector<Event> buf(kShardBlock);
    std::uint64_t consumed = 0;
    OccupancyMeter meter{shard.stats};
    BackoffWaiter idle(shard.stats.shard, kShardIdleSleepUs);
    for (;;) {
      std::size_t n = 0;
      const SpscLaneSet<Event>::Merge st =
          shard.lanes->merge_pop(buf.data(), kShardBlock, n);
      if (n > 0) {
        // merge_pop consumed the block from the lanes already; count it
        // back into the depth sample so the gauge matches the classic
        // runner's "unreleased block still queued" convention.
        meter.sample_depth(shard.lanes->size() + n);
        pipe.process_data_block(std::span<const Event>(buf.data(), n),
                                shard.stats);
        meter.block_done();
        consumed += n;
        shard.progress.store(consumed, std::memory_order_relaxed);
        idle.reset();
      } else if (st == SpscLaneSet<Event>::Merge::kDone) {
        break;
      } else {
        // kStall: some open lane's floor is the bound -- its producer has
        // neither pushed nor advanced past the merge head yet.
        idle.wait();
      }
    }
    pipe.close_all(shard.stats);

    for (std::size_t qi = 0; qi < nq; ++qi) {
      const DetPipeline::QueryOutcome o = pipe.outcome(qi);
      auto& qc = shard.query_counters[qi];
      qc.memberships = o.memberships;
      qc.memberships_kept = o.memberships_kept;
      qc.shed_decisions = o.shed_decisions;
      qc.shed_drops = o.shed_drops;
      shard.stats.matches += pipe.query_matches[qi].size();
      shard.stats.shed_decisions += o.shed_decisions;
      shard.stats.shed_drops += o.shed_drops;
      shard.query_matches[qi] = std::move(pipe.query_matches[qi]);
    }
  } catch (...) {
    shard.error = std::current_exception();
    shard.failed.store(true, std::memory_order_release);
    any_shard_failed_.store(true, std::memory_order_release);
    // Keep every lane draining so no producer deadlocks on a full lane
    // (producers poll any_shard_failed_ and bail on their next pass).
    Event e;
    for (std::size_t p = 0; p < shard.lanes->lane_count(); ++p) {
      while (shard.lanes->lane(p).pop_or_closed(e) !=
             SpscRing<Event>::Pop::kDone) {
        std::this_thread::yield();
      }
    }
  }
}

std::size_t StreamEngine::partition_of(const Event& e) const {
  ESPICE_REQUIRE(config_.rebalance.has_value(),
                 "partition_of() needs rebalance configured");
  const std::uint64_t key =
      config_.key_of ? config_.key_of(e) : static_cast<std::uint64_t>(e.type);
  return shard_index(key, config_.rebalance->partitions);
}

std::size_t StreamEngine::shard_of_partition(std::size_t partition) const {
  ESPICE_REQUIRE(partition < placement_.size(),
                 "shard_of_partition() needs a started rebalancing engine");
  return placement_[partition];
}

void StreamEngine::push_control(Shard& s, const Event& marker) {
  if (s.ring.try_push(marker)) return;
  BackoffWaiter waiter(s.stats.shard);
  do {
    if (s.failed.load(std::memory_order_acquire)) fail_for_shard(s);
    waiter.wait();
  } while (!s.ring.try_push(marker));
}

void StreamEngine::move_partition(std::size_t partition, std::size_t to_shard) {
  ESPICE_REQUIRE(config_.rebalance.has_value(),
                 "move_partition() needs rebalance configured");
  if (!started_) start();
  ESPICE_REQUIRE(partition < placement_.size(), "partition out of range");
  ESPICE_REQUIRE(to_shard < config_.shards, "target shard out of range");
  const std::size_t from = placement_[partition];
  if (from == to_shard) return;
  // Exactness by FIFO bracketing, all from this one router thread: the
  // export marker queues BEHIND everything already routed to the old owner,
  // placement flips (so all later events route to the new owner), and the
  // import marker queues AHEAD of all of them -- the partition's substream
  // is replayed gap-free, in order, across the handoff.  Deadlock-free
  // across chained moves: an exporter never waits (it just parks the
  // pipeline in the mailbox), so marker chains resolve in router order.
  push_control(*shards_[from],
               make_partition_control(PartitionControl::kExport, partition));
  placement_[partition] = to_shard;
  push_control(*shards_[to_shard],
               make_partition_control(PartitionControl::kImport, partition));
  ++rebalance_moves_;
  ++shards_[from]->stats.rebalance_moves_out;
  ++shards_[to_shard]->stats.rebalance_moves_in;
}

void StreamEngine::decide_moves() {
  const RebalanceConfig& rb = *config_.rebalance;
  window_routed_ = 0;
  // Shard loads under the CURRENT placement from this window's routing
  // counts -- a pure function of the stream prefix, so every run (and the
  // determinism oracle) decides the exact same moves.
  std::vector<std::uint64_t> load(config_.shards, 0);
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < placement_.size(); ++p) {
    load[placement_[p]] += part_counts_[p];
    total += part_counts_[p];
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(config_.shards);
  for (std::size_t m = 0; total > 0 && m < rb.max_moves_per_interval; ++m) {
    std::size_t hot = 0;
    std::size_t cold = 0;
    for (std::size_t s = 1; s < config_.shards; ++s) {
      if (load[s] > load[hot]) hot = s;
      if (load[s] < load[cold]) cold = s;
    }
    if (hot == cold ||
        static_cast<double>(load[hot]) <= rb.hot_factor * mean) {
      break;
    }
    // Largest partition on the hot shard that fits in half the gap (moving
    // more than the gap's half would just flip the imbalance).
    const std::uint64_t fit = (load[hot] - load[cold]) / 2;
    std::size_t best = placement_.size();
    for (std::size_t p = 0; p < placement_.size(); ++p) {
      if (placement_[p] != hot) continue;
      if (part_counts_[p] == 0 || part_counts_[p] > fit) continue;
      if (best == placement_.size() || part_counts_[p] > part_counts_[best]) {
        best = p;
      }
    }
    if (best == placement_.size()) break;  // one indivisible hot partition
    move_partition(best, cold);
    load[hot] -= part_counts_[best];
    load[cold] += part_counts_[best];
  }
  std::fill(part_counts_.begin(), part_counts_.end(), 0);
}

void StreamEngine::run_partitioned_shard(Shard& shard) {
  try {
    const std::size_t nq = queries_.size();
    const std::size_t me = shard.stats.shard;
    const std::size_t nparts = config_.rebalance->partitions;
    // Build the initially resident pipelines.  The initial placement is the
    // fixed function p % K -- recomputed here rather than read from
    // placement_, which is router-owned and already mutating.
    for (std::size_t p = me; p < nparts; p += config_.shards) {
      shard.parts[p] = std::make_unique<DetPipeline>(
          std::span<const EngineQuery>(queries_.data(), queries_.size()),
          std::move(part_shedders_[p]), /*event_time=*/nullptr);
    }

    std::uint64_t consumed = 0;
    OccupancyMeter meter{shard.stats};
    BackoffWaiter idle(me, kShardIdleSleepUs);
    for (;;) {
      std::span<const Event> blk = shard.ring.front_block(kShardBlock);
      if (blk.empty()) {
        if (!shard.ring.closed()) {
          idle.wait();
          continue;
        }
        blk = shard.ring.front_block(kShardBlock);
        if (blk.empty()) break;
      }
      idle.reset();
      const std::size_t n = blk.size();
      meter.sample_depth(shard.ring.size());
      // Split the block at migration markers; between them, run-length
      // group consecutive same-partition events so a skewed stream (long
      // same-key runs) still takes the block-wise pipeline path.
      std::size_t i = 0;
      while (i < n) {
        const Event& head = blk[i];
        if (is_partition_control(head)) {
          const auto p = static_cast<std::size_t>(head.seq);
          if (partition_control_action(head) == PartitionControl::kExport) {
            // Hand off: park the pipeline (release publishes everything it
            // processed) and keep going -- an exporter never waits.
            mailbox_[p].store(shard.parts[p].release(),
                              std::memory_order_release);
          } else {
            // Adopt: the matching export marker is already queued at the
            // old owner (the router pushed it first), so spin until that
            // shard parks the pipeline.  Bail out if any shard died --
            // a dead exporter would otherwise hang this import forever.
            DetPipeline* adopted =
                mailbox_[p].exchange(nullptr, std::memory_order_acquire);
            while (adopted == nullptr) {
              if (any_shard_failed_.load(std::memory_order_acquire)) {
                throw Error(ErrorCode::kShardFailed,
                            "partition import abandoned: a shard failed "
                            "mid-migration");
              }
              std::this_thread::yield();
              adopted = mailbox_[p].exchange(nullptr, std::memory_order_acquire);
            }
            shard.parts[p].reset(adopted);
          }
          ++i;
          continue;
        }
        const std::size_t p = partition_of(head);
        std::size_t j = i + 1;
        while (j < n && !is_partition_control(blk[j]) &&
               partition_of(blk[j]) == p) {
          ++j;
        }
        shard.parts[p]->process_data_block(blk.subspan(i, j - i), shard.stats);
        i = j;
      }
      meter.block_done();
      consumed += n;
      shard.progress.store(consumed, std::memory_order_relaxed);
      shard.ring.release(n);
    }
    // End of stream: close every partition that ended up resident here.
    // finish() collects matches per PARTITION from wherever each one
    // landed; the per-shard stats rollup below attributes a partition's
    // totals to its final host (informational -- the canonical per-query
    // numbers come from the pipelines themselves).
    for (std::size_t p = 0; p < nparts; ++p) {
      if (shard.parts[p] == nullptr) continue;
      shard.parts[p]->close_all(shard.stats);
      for (std::size_t qi = 0; qi < nq; ++qi) {
        const DetPipeline::QueryOutcome o = shard.parts[p]->outcome(qi);
        shard.stats.matches += shard.parts[p]->query_matches[qi].size();
        shard.stats.shed_decisions += o.shed_decisions;
        shard.stats.shed_drops += o.shed_drops;
      }
    }
  } catch (...) {
    shard.error = std::current_exception();
    shard.failed.store(true, std::memory_order_release);
    any_shard_failed_.store(true, std::memory_order_release);
    Event e;
    while (shard.ring.pop_or_closed(e) != SpscRing<Event>::Pop::kDone) {
      std::this_thread::yield();
    }
  }
}

void StreamEngine::run_adaptive_shard(Shard& shard) {
  try {
    EspiceOperator op(*config_.adaptive, [&shard](const ComplexEvent& ce) {
      shard.query_matches[0].push_back(ce);
    });
    const double tick_period = config_.adaptive->detector.tick_period;
    double next_tick = tick_period;
    std::uint64_t consumed = 0;

    for (;;) {
      std::span<const Event> blk = shard.ring.front_block(kShardBlock);
      if (blk.empty()) {
        if (!shard.ring.closed()) {
          std::this_thread::yield();
          continue;
        }
        blk = shard.ring.front_block(kShardBlock);
        if (blk.empty()) break;
      }
      const std::size_t n = blk.size();
      for (std::size_t i = 0; i < n; ++i) {
        const Event& e = blk[i];
        const auto before = std::chrono::steady_clock::now();
        const double now =
            std::chrono::duration<double>(before - start_).count();
        op.observe_arrival(now);
        op.push(e);
        op.observe_cost(seconds_since(before));
        if (now >= next_tick) {
          // The ring depth *is* the shard's input queue: the backpressure
          // signal the overload detector steers shedding by.  The current
          // block is still unreleased, so size() already counts its
          // unprocessed tail (minus what this loop consumed).
          const std::size_t depth =
              shard.ring.size() >= i + 1 ? shard.ring.size() - (i + 1) : 0;
          op.on_tick(now, depth);
          ++shard.stats.detector_ticks;
          shard.stats.peak_queue_depth =
              std::max(shard.stats.peak_queue_depth, depth);
          if (op.shedding_active()) shard.stats.shedding_ever_active = true;
          next_tick += tick_period;
        }
      }
      consumed += n;
      shard.progress.store(consumed, std::memory_order_relaxed);
      shard.ring.release(n);
      if (config_.latency_sample_every != 0) shard.drain_marks(consumed);
    }
    op.finish();

    const OperatorStats s = op.stats();
    shard.stats.events = s.events;
    shard.stats.memberships = s.memberships;
    shard.stats.memberships_kept = s.memberships_kept;
    shard.stats.windows_closed = s.windows_closed;
    shard.stats.matches = shard.query_matches[0].size();
    shard.stats.shed_decisions = s.decisions;
    shard.stats.shed_drops = s.drops;
    shard.stats.retrains = s.retrains;
    auto& qc = shard.query_counters[0];
    qc.memberships = s.memberships;
    qc.memberships_kept = s.memberships_kept;
    qc.shed_decisions = s.decisions;
    qc.shed_drops = s.drops;
  } catch (...) {
    shard.error = std::current_exception();
    shard.failed.store(true, std::memory_order_release);
    any_shard_failed_.store(true, std::memory_order_release);
    Event e;
    while (shard.ring.pop_or_closed(e) != SpscRing<Event>::Pop::kDone) {
      std::this_thread::yield();
    }
  }
}

void StreamEngine::open_durability() {
  const DurabilityConfig& d = *config_.durability;
  durability::EventLogConfig lc;
  lc.dir = d.dir + "/log";
  lc.segment_bytes = d.segment_bytes;
  lc.fsync = d.fsync;
  lc.fsync_interval_records = d.fsync_interval_records;
  lc.validate();
  log_ = std::make_unique<durability::EventLogWriter>(std::move(lc));
  snaps_ = std::make_unique<durability::SnapshotStore>(d.dir + "/snapshots");
}

bool StreamEngine::wal_retry(const std::function<void()>& op,
                             std::string& detail) {
  const DurabilityConfig& d = *config_.durability;
  std::uint64_t sleep_us = d.wal_retry_backoff_us;
  for (std::uint64_t attempt = 0; attempt < d.wal_retry_max; ++attempt) {
    std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
    sleep_us = std::min<std::uint64_t>(sleep_us * 2, 100000);  // cap 100ms
    try {
      op();
      return true;
    } catch (const Error& e) {
      ++wal_errors_;
      detail = e.what();
    }
  }
  return false;
}

void StreamEngine::degrade_wal(const std::string& detail) {
  wal_degraded_ = true;
  // Seal the durable prefix at an offset the log can actually honor after
  // a power loss: a best-effort final sync promotes everything appended so
  // far; if that sync also fails, fall back to the last offset a
  // successful fsync covered.  (Under FsyncPolicy::kNone -- process-crash
  // durability only, nothing is synced by policy -- the full appended
  // prefix is reported: it is on disk and recovery replays it as long as
  // the power stayed on, which is all that policy ever promised.)
  std::uint64_t sealed = log_->next_index();
  try {
    log_->sync();
  } catch (const Error&) {
    ++wal_errors_;
    if (config_.durability->fsync != durability::FsyncPolicy::kNone) {
      sealed = log_->synced_index();
    }
  }
  degraded_at_offset_ = sealed;
  if (state_ != EngineState::kFailed) state_ = EngineState::kDegraded;
  last_error_ = "WAL degraded to memory-only at offset " +
                std::to_string(degraded_at_offset_) + ": " + detail;
}

void StreamEngine::wal_append(std::span<const Event> events) {
  if (wal_degraded_) return;  // durable prefix sealed; memory-only from here
  const std::uint64_t before = log_->next_index();
  std::string detail;
  try {
    log_->append_batch(events);
    return;
  } catch (const Error& e) {
    ++wal_errors_;
    detail = e.what();
  }
  const DurabilityConfig& d = *config_.durability;
  if (d.on_wal_error == WalErrorPolicy::kRetryBackoff) {
    // Discriminate where the failure hit: if next_index() advanced past the
    // pre-append mark, the records landed and only the policy fsync failed
    // -- retry sync(), not a re-append (which would duplicate the batch).
    // Otherwise the append itself failed (torn tail already repaired by the
    // writer) and the whole batch is retried.  The discrimination runs
    // inside the lambda, on EVERY attempt: a retried append can itself land
    // the records and then die in its policy fsync, after which the next
    // attempt must sync, not append the batch a second time.
    const bool ok = wal_retry(
        [&] {
          if (log_->next_index() != before) {
            log_->sync();
          } else {
            log_->append_batch(events);
          }
        },
        detail);
    if (ok) return;
    // fall through: retries exhausted, fail stop
  } else if (d.on_wal_error == WalErrorPolicy::kDegradeToMemory) {
    degrade_wal(detail);
    return;
  }
  state_ = EngineState::kFailed;
  last_error_ = "WAL append failed (fail-stop): " + detail;
  throw Error(ErrorCode::kIo, last_error_);
}

void StreamEngine::wal_sync_for_checkpoint() {
  std::string detail;
  try {
    log_->sync();
    return;
  } catch (const Error& e) {
    ++wal_errors_;
    detail = e.what();
  }
  const DurabilityConfig& d = *config_.durability;
  if (d.on_wal_error == WalErrorPolicy::kRetryBackoff) {
    if (wal_retry([&] { log_->sync(); }, detail)) return;
  } else if (d.on_wal_error == WalErrorPolicy::kDegradeToMemory) {
    // The log can no longer be made durable up to the cut, so the snapshot
    // must not be published: seal the durable prefix and abort this
    // checkpoint (typed), while ingestion itself continues memory-only.
    degrade_wal(detail);
    throw Error(ErrorCode::kIo, "checkpoint aborted: " + last_error_);
  }
  state_ = EngineState::kFailed;
  last_error_ = "WAL sync failed before checkpoint (fail-stop): " + detail;
  throw Error(ErrorCode::kIo, last_error_);
}

void StreamEngine::maybe_auto_checkpoint() {
  const std::uint64_t every = config_.durability->snapshot_every_events;
  if (every == 0 || events_since_snapshot_ < every) return;
  if (wal_degraded_) return;  // no durable log to key a snapshot against
  checkpoint();
}

void StreamEngine::checkpoint() {
  ESPICE_REQUIRE(config_.durability.has_value(),
                 "checkpoint() needs durability configured");
  // No consistent cut exists mid-stream under concurrent producers (the
  // sequencer orders the WAL, but in-flight lane contents are not a prefix
  // of it), and a migrating pipeline may be in a mailbox between shards.
  ESPICE_REQUIRE(config_.producers == 0,
                 "checkpoint() is not supported in multi-producer mode");
  ESPICE_REQUIRE(!config_.rebalance.has_value(),
                 "checkpoint() is not supported with rebalancing");
  ESPICE_REQUIRE(!finished_, "checkpoint() after finish()");
  ensure_accepting("checkpoint()");
  ESPICE_CHECK(!wal_degraded_, ErrorCode::kIo,
               "checkpoint() on a WAL-degraded engine: the durable prefix is "
               "sealed at offset " + std::to_string(degraded_at_offset_) +
               " and cannot cover new events");
  if (!started_) start();

  // The log must be durable up to the cut before a snapshot keyed by it is
  // published -- otherwise a power loss could leave a snapshot whose replay
  // tail never reached the disk.  An fsync failure here is routed through
  // the on_wal_error policy (retry / degrade-and-abort / fail-stop).
  wal_sync_for_checkpoint();

  durability::SnapshotWriter w;
  w.u64(config_.shards);
  w.u64(std::max<std::size_t>(queries_.size(), 1));
  w.u64(pushed_);
  // Router-side event-time state: replay after recovery must see the same
  // heartbeat cadence and watermark base as the original run, so the
  // trackers are part of the cut (harmless zeros when event time is off).
  w.u64(punct_pushed_);
  w.u64(data_since_hb_);
  w.boolean(router_max_valid_);
  w.u64(router_max_seq_);

  // Arm every shard with its exact cut, then collect in shard order.  The
  // shards quiesce at the cut only as long as it takes the router to copy
  // their blob out -- each resumes as soon as its target clears.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    s.checkpoint_ready.store(false, std::memory_order_relaxed);
    s.checkpoint_target.store(pushed_per_shard_[i], std::memory_order_release);
  }
  std::exception_ptr failure;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    BackoffWaiter waiter;
    while (!s.checkpoint_ready.load(std::memory_order_acquire)) {
      if (s.failed.load(std::memory_order_acquire)) {
        failure = s.error;
        break;
      }
      waiter.wait();
    }
    if (failure != nullptr) break;
    w.u64(pushed_per_shard_[i]);
    w.u64(s.checkpoint_blob.size());
    w.bytes(s.checkpoint_blob.data(), s.checkpoint_blob.size());
    s.checkpoint_target.store(kNoCheckpoint, std::memory_order_release);
  }
  if (failure != nullptr) {
    // A shard died mid-checkpoint: release every cut (dead shards ignore
    // them, live ones resume) and surface the shard's error now.
    for (auto& s : shards_) {
      s->checkpoint_target.store(kNoCheckpoint, std::memory_order_release);
    }
    state_ = EngineState::kFailed;
    std::rethrow_exception(failure);
  }

  try {
    snaps_->write(pushed_, w.buffer());
  } catch (const Error& e) {
    // The store publishes atomically (tmp -> fsync -> rename), so a failed
    // write leaves the previous snapshot intact and nothing corrupt on
    // disk.  The engine stays kRunning: the log still covers everything,
    // only this checkpoint is lost.
    ++wal_errors_;
    last_error_ = std::string("snapshot write failed: ") + e.what();
    throw;
  }
  events_since_snapshot_ = 0;
  // Everything strictly below the new cut is superseded: older snapshots
  // and log segments wholly before it can never be read again.
  snaps_->prune_below(pushed_);
  log_->prune_segments_below(pushed_);
}

RecoveryReport StreamEngine::recover_and_start() {
  ESPICE_REQUIRE(config_.durability.has_value(),
                 "recover_and_start() needs durability configured");
  ESPICE_REQUIRE(!started_ && !finished_ && pushed_ == 0,
                 "recover_and_start() must be the first action on a fresh "
                 "engine");
  RecoveryReport rep;

  // Opening the writer IS the log recovery: it validates every segment,
  // truncates the torn tail and positions appends after the last valid
  // record.  Everything it found wrong is part of the recovery report.
  open_durability();
  rep.damage = log_->open_result().damage;
  rep.durable_events = log_->next_index();

  auto loaded = snaps_->load_latest(&rep.damage);
  if (loaded.has_value() && loaded->log_offset > rep.durable_events) {
    // Can only happen under external tampering (the checkpoint protocol
    // syncs the log before publishing): don't trust the snapshot.
    rep.damage.push_back(
        "snapshot at offset " + std::to_string(loaded->log_offset) +
        " lies beyond the durable log end " +
        std::to_string(rep.durable_events) + "; ignoring it");
    loaded.reset();
  }
  if (loaded.has_value()) {
    durability::SnapshotReader r(loaded->payload);
    const std::uint64_t k = r.u64();
    const std::uint64_t nq = r.u64();
    const std::uint64_t offset = r.u64();
    const std::uint64_t snap_punct = r.u64();
    const std::uint64_t snap_since_hb = r.u64();
    const bool snap_max_valid = r.boolean();
    const std::uint64_t snap_max_seq = r.u64();
    ESPICE_CHECK(k == config_.shards, ErrorCode::kCorruptSnapshot,
                 "snapshot was cut with " + std::to_string(k) +
                     " shards, engine is configured with " +
                     std::to_string(config_.shards));
    ESPICE_CHECK(nq == std::max<std::size_t>(queries_.size(), 1),
                 ErrorCode::kCorruptSnapshot,
                 "snapshot was cut with a different query count");
    ESPICE_CHECK(offset == loaded->log_offset, ErrorCode::kCorruptSnapshot,
                 "snapshot payload offset disagrees with its header");
    pushed_per_shard_.assign(static_cast<std::size_t>(k), 0);
    recovery_blobs_.resize(static_cast<std::size_t>(k));
    for (std::size_t i = 0; i < k; ++i) {
      pushed_per_shard_[i] = r.u64();
      const std::size_t blob_len = r.size();
      recovery_blobs_[i].resize(blob_len);
      if (blob_len > 0) r.bytes(recovery_blobs_[i].data(), blob_len);
    }
    r.expect_done();
    pushed_ = offset;
    punct_pushed_ = snap_punct;
    data_since_hb_ = snap_since_hb;
    router_max_valid_ = snap_max_valid;
    router_max_seq_ = snap_max_seq;
    rep.snapshot_offset = offset;
  }

  start();  // shard threads restore from recovery_blobs_ as they spin up

  if (rep.durable_events > pushed_) {
    // Replay the log tail through the normal ingestion path (appends
    // suppressed: these events are already in the log).  Routing is
    // deterministic, so every event lands on the same shard as in the
    // original run and pushed_per_shard_ advances consistently.
    durability::EventLogReader reader(config_.durability->dir + "/log");
    replaying_ = true;
    try {
      if (config_.producers > 0) {
        // Multi-producer recovery: checkpoints don't exist in this mode
        // (checkpoint() refuses), so the tail is the WHOLE log.  Batches
        // were appended in sequencer order, which interleaves producers
        // arbitrarily -- sort the tail by seq (unique by contract) and
        // replay it as one producer.  Equivalent to the original run
        // because the per-shard merge orders by seq either way.
        std::vector<Event> tail;
        reader.replay(0, [&tail](std::span<const Event> events,
                                 std::uint64_t) {
          tail.insert(tail.end(), events.begin(), events.end());
        });
        std::sort(tail.begin(), tail.end(),
                  [](const Event& a, const Event& b) { return a.seq < b.seq; });
        // Replay flows through producer 0's lanes only; the others' floors
        // would stay 0 and stall every shard merge (a floor-0 lane might
        // still deliver a smaller seq), wedging replay once a lane fills.
        // No producer thread exists yet -- recovery is the first action on
        // a fresh engine -- and live pushes must continue above the durable
        // log, so promising seq > tail max on every other lane is sound.
        if (!tail.empty()) {
          for (auto& shard : shards_) {
            for (std::size_t p = 1; p < config_.producers; ++p) {
              shard->lanes->set_floor(p, tail.back().seq + 1);
            }
          }
        }
        for (std::size_t off = 0; off < tail.size(); off += kShardBlock) {
          const std::size_t n = std::min(kShardBlock, tail.size() - off);
          push_batch_concurrent(
              0, std::span<const Event>(tail.data() + off, n));
        }
      } else {
        reader.replay(pushed_,
                      [this](std::span<const Event> events, std::uint64_t) {
                        push_batch(events);
                      });
      }
    } catch (...) {
      replaying_ = false;
      throw;
    }
    replaying_ = false;
  }
  rep.replayed_events = pushed() - rep.snapshot_offset;
  // Replay suppresses heartbeat synthesis (the originals are in the log and
  // replay through the normal path).  If the original run crashed between
  // crossing the cadence threshold and logging the heartbeat, emit it now so
  // live ingestion resumes with the same pending state as an unkilled run.
  maybe_heartbeat();
  return rep;
}

std::vector<ComplexEvent> StreamEngine::merge_matches(
    std::vector<std::vector<ComplexEvent>> per_shard) {
  struct Tagged {
    std::uint64_t completion_seq;
    std::size_t shard;
    std::size_t index;
  };
  std::vector<Tagged> order;
  std::size_t total = 0;
  for (const auto& v : per_shard) total += v.size();
  order.reserve(total);
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    for (std::size_t i = 0; i < per_shard[s].size(); ++i) {
      std::uint64_t completion = 0;
      for (const auto& c : per_shard[s][i].constituents) {
        completion = std::max(completion, c.event.seq);
      }
      order.push_back(Tagged{completion, s, i});
    }
  }
  std::sort(order.begin(), order.end(), [](const Tagged& a, const Tagged& b) {
    return std::tie(a.completion_seq, a.shard, a.index) <
           std::tie(b.completion_seq, b.shard, b.index);
  });
  std::vector<ComplexEvent> merged;
  merged.reserve(total);
  for (const Tagged& t : order) {
    merged.push_back(std::move(per_shard[t.shard][t.index]));
  }
  return merged;
}

EngineReport StreamEngine::finish() {
  // abort() marks the engine finished too; distinguish it so the caller is
  // told the engine was torn down, not that they double-finished.
  if (aborted_) {
    throw Error(ErrorCode::kEngineFailed,
                last_error_.empty()
                    ? "finish() on an aborted engine"
                    : "finish() on an aborted engine: " + last_error_);
  }
  ESPICE_REQUIRE(!finished_, "finish() called twice");
  if (!started_) start();  // empty run: still produce a (zero) report
  finished_ = true;
  // Join FIRST: everything below may throw, and throwing while shard
  // threads still run would leave them orphaned (the old order synced the
  // log before closing the rings, so a sync failure hung the shutdown).
  for (auto& s : shards_) {
    s->ring.close();
    if (s->lanes != nullptr) {
      // Close every lane a producer left open (close_lane is idempotent, so
      // producers that already called producer_done() cost nothing).  The
      // caller's contract: every producer has RETURNED from its last
      // push_batch_concurrent() before finish() is called.
      for (std::size_t p = 0; p < s->lanes->lane_count(); ++p) {
        s->lanes->close_lane(p);
      }
    }
  }
  for (auto& s : shards_) s->thread.join();
  const double wall = seconds_since(start_);
  // Reclaim any pipeline stranded in a migration mailbox (only possible
  // when a shard died between an export and its import -- the success path
  // always drains both markers before the rings close).
  if (mailbox_ != nullptr) {
    for (std::size_t p = 0; p < placement_.size(); ++p) {
      delete mailbox_[p].exchange(nullptr, std::memory_order_acquire);
    }
  }
  for (auto& s : shards_) {
    if (s->error) {
      state_ = EngineState::kFailed;
      if (last_error_.empty()) {
        last_error_ = "shard " + std::to_string(s->stats.shard) +
                      " died with an exception";
      }
      std::rethrow_exception(s->error);  // the original, not a wrapper
    }
  }
  if (state_ == EngineState::kFailed) {
    // An earlier WAL fail-stop already poisoned the engine; there is no
    // coherent report to build.
    throw Error(ErrorCode::kEngineFailed,
                "finish() on a failed engine: " + last_error_);
  }
  // End of stream: whatever was appended under a lazy fsync policy becomes
  // durable now, so a clean shutdown never loses suffix events.  Safe to
  // throw here -- the threads are already joined.
  if (log_ != nullptr && !wal_degraded_) {
    std::string detail;
    try {
      log_->sync();
    } catch (const Error& e) {
      ++wal_errors_;
      detail = e.what();
      const DurabilityConfig& d = *config_.durability;
      bool recovered = false;
      if (d.on_wal_error == WalErrorPolicy::kRetryBackoff) {
        recovered = wal_retry([&] { log_->sync(); }, detail);
      }
      if (!recovered) {
        if (d.on_wal_error == WalErrorPolicy::kDegradeToMemory) {
          // The run's output is complete and correct; only the tail's
          // durability is lost.  Finish normally and flag the report.
          degrade_wal(detail);
        } else {
          // kFailStop, and kRetryBackoff once retries are exhausted.
          state_ = EngineState::kFailed;
          last_error_ = "end-of-stream WAL sync failed (fail-stop): " + detail;
          throw Error(ErrorCode::kIo, last_error_);
        }
      }
    }
  }

  EngineReport report;
  report.health = health();
  // pushed() counts everything that crossed the router or the sequencer,
  // punctuations included (the durable-log offset contract); the report's
  // event count is data events only.
  report.events = pushed() - punct_pushed_;
  report.punctuations = punct_pushed_;
  report.wall_seconds = wall;
  report.events_per_sec =
      wall > 0.0 ? static_cast<double>(report.events) / wall : 0.0;
  const std::size_t nq = std::max<std::size_t>(queries_.size(), 1);

  // Rebalancing: the merge unit is the PARTITION, not the shard -- a
  // partition's pipeline (with all its outputs) may have migrated, but it
  // ends the run resident on exactly one shard.  Collect each partition's
  // final pipeline; merging per partition makes the output independent of
  // the move schedule (and bit-identical to a serial run with one "shard"
  // per partition).
  std::vector<DetPipeline*> final_parts;
  if (!placement_.empty()) {
    final_parts.assign(placement_.size(), nullptr);
    for (auto& s : shards_) {
      for (std::size_t p = 0; p < s->parts.size(); ++p) {
        if (s->parts[p] != nullptr) final_parts[p] = s->parts[p].get();
      }
    }
    for (std::size_t p = 0; p < final_parts.size(); ++p) {
      ESPICE_CHECK(final_parts[p] != nullptr, ErrorCode::kEngineFailed,
                   "partition " + std::to_string(p) +
                       " has no final host after the run");
    }
  }

  // Canonical per-query merge: each query's matches across merge units
  // (shards, or partitions when rebalancing), ordered by (completing event
  // seq, unit, in-unit index).
  report.queries.resize(nq);
  for (std::size_t qi = 0; qi < nq; ++qi) {
    QueryReport& qr = report.queries[qi];
    qr.name = qi < queries_.size() ? queries_[qi].name
                                   : "q" + std::to_string(qi);
    std::vector<std::vector<ComplexEvent>> per_shard;
    if (!final_parts.empty()) {
      per_shard.reserve(final_parts.size());
      for (DetPipeline* pp : final_parts) {
        const DetPipeline::QueryOutcome o = pp->outcome(qi);
        qr.memberships += o.memberships;
        qr.memberships_kept += o.memberships_kept;
        qr.shed_decisions += o.shed_decisions;
        qr.shed_drops += o.shed_drops;
        per_shard.push_back(std::move(pp->query_matches[qi]));
      }
    } else {
      per_shard.reserve(shards_.size());
      for (auto& s : shards_) {
        qr.memberships += s->query_counters[qi].memberships;
        qr.memberships_kept += s->query_counters[qi].memberships_kept;
        qr.shed_decisions += s->query_counters[qi].shed_decisions;
        qr.shed_drops += s->query_counters[qi].shed_drops;
        per_shard.push_back(std::move(s->query_matches[qi]));
      }
    }
    qr.matches = merge_matches(std::move(per_shard));
    // Canonical revision order: (late event seq, shard, in-shard index) --
    // shard- and thread-schedule-independent, like the match merge.
    {
      struct TaggedRev {
        std::uint64_t late_seq;
        std::size_t shard;
        std::size_t index;
      };
      std::vector<TaggedRev> order;
      for (std::size_t si = 0; si < shards_.size(); ++si) {
        const auto& revs = shards_[si]->query_revisions[qi];
        for (std::size_t i = 0; i < revs.size(); ++i) {
          order.push_back(TaggedRev{revs[i].late_seq, si, i});
        }
      }
      std::sort(order.begin(), order.end(),
                [](const TaggedRev& a, const TaggedRev& b) {
                  return std::tie(a.late_seq, a.shard, a.index) <
                         std::tie(b.late_seq, b.shard, b.index);
                });
      qr.revisions.reserve(order.size());
      for (const TaggedRev& t : order) {
        qr.revisions.push_back(
            std::move(shards_[t.shard]->query_revisions[qi][t.index]));
      }
    }
  }
  report.rebalance_moves = rebalance_moves_;
  for (auto& s : shards_) {
    report.router_backpressure_waits += s->stats.router_backpressure_waits;
    report.router_stall_seconds += s->stats.router_stall_seconds;
    // punctuations stays the router broadcast count (set above); the
    // per-shard consumption counts live in report.shards.
    report.late_events += s->stats.late_events;
    report.late_dropped += s->stats.late_dropped;
    report.late_side_output += s->stats.late_side_output;
    report.revisions += s->stats.revisions;
    report.latency.merge(s->stats.latency);
    report.shards.push_back(s->stats);
  }
  // Engine low watermark: the slowest shard's progress.  Valid only once
  // every shard has one (a shard that never saw disorder_bound+1 events has
  // no watermark yet, so the engine can't bound completeness).
  if (config_.event_time.has_value() && !shards_.empty()) {
    report.low_watermark_valid = true;
    report.low_watermark_seq = std::numeric_limits<std::uint64_t>::max();
    for (auto& s : shards_) {
      if (!s->stats.watermark_valid) {
        report.low_watermark_valid = false;
        break;
      }
      report.low_watermark_seq =
          std::min(report.low_watermark_seq, s->stats.watermark_seq);
    }
    if (!report.low_watermark_valid) report.low_watermark_seq = 0;
  }
  // Side outputs merged canonically by (late event seq, shard, index).
  {
    struct TaggedSo {
      std::uint64_t seq;
      std::size_t shard;
      std::size_t index;
    };
    std::vector<TaggedSo> order;
    for (std::size_t si = 0; si < shards_.size(); ++si) {
      const auto& so = shards_[si]->side_outputs;
      for (std::size_t i = 0; i < so.size(); ++i) {
        order.push_back(TaggedSo{so[i].event.seq, si, i});
      }
    }
    std::sort(order.begin(), order.end(),
              [](const TaggedSo& a, const TaggedSo& b) {
                return std::tie(a.seq, a.shard, a.index) <
                       std::tie(b.seq, b.shard, b.index);
              });
    report.side_outputs.reserve(order.size());
    for (const TaggedSo& t : order) {
      report.side_outputs.push_back(
          std::move(shards_[t.shard]->side_outputs[t.index]));
    }
  }

  // Engine-level canonical order: (completion seq, query, shard, index).
  // Each per-query merged list is already (completion, shard, index)-sorted,
  // so merging the lists in query order yields exactly that.
  if (nq == 1) {
    report.matches = report.queries.front().matches;
  } else {
    std::vector<std::vector<ComplexEvent>> per_query;
    per_query.reserve(nq);
    for (const auto& qr : report.queries) per_query.push_back(qr.matches);
    report.matches = merge_matches(std::move(per_query));
  }
  return report;
}

std::size_t StreamEngine::queue_depth(std::size_t shard) const {
  ESPICE_REQUIRE(shard < shards_.size(), "shard index out of range");
  if (shards_[shard]->lanes != nullptr) return shards_[shard]->lanes->size();
  return shards_[shard]->ring.size();
}

std::uint64_t EngineReport::total_windows_closed() const {
  std::uint64_t n = 0;
  for (const auto& s : shards) n += s.windows_closed;
  return n;
}

std::uint64_t EngineReport::total_shed_drops() const {
  std::uint64_t n = 0;
  for (const auto& s : shards) n += s.shed_drops;
  return n;
}

}  // namespace espice
