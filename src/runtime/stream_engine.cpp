#include "runtime/stream_engine.hpp"

#include <algorithm>
#include <exception>
#include <thread>
#include <tuple>

#include "runtime/spsc_ring.hpp"

namespace espice {

namespace {

/// Sampling stride for the peak-queue-depth gauge: reading both ring
/// cursors on every pop would put two extra acquire loads on the hot path.
constexpr std::uint64_t kDepthSampleStride = 32;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void StreamEngineConfig::validate() const {
  ESPICE_REQUIRE(shards > 0, "engine needs at least one shard");
  ESPICE_REQUIRE(ring_capacity > 0, "ring capacity must be positive");
  if (adaptive.has_value()) {
    adaptive->validate();
    return;
  }
  query.pattern.validate();
  query.window.validate();
  if (shedder_factory != nullptr) {
    ESPICE_REQUIRE(
        predicted_ws > 0.0 || query.window.span_kind == WindowSpan::kCount,
        "non-count windows need an explicit predicted_ws to shed");
  }
}

struct StreamEngine::Shard {
  Shard(std::size_t index_, std::size_t ring_capacity) : ring(ring_capacity) {
    stats.shard = index_;
  }

  SpscRing<Event> ring;
  std::thread thread;
  std::vector<ComplexEvent> matches;  // in shard-local detection order
  ShardStats stats;
  std::exception_ptr error;
};

std::uint64_t StreamEngine::partition_hash(std::uint64_t key) {
  // SplitMix64 finalizer: fixed, platform-independent avalanche so the
  // shard assignment is part of the engine's deterministic contract.
  std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t StreamEngine::shard_index(std::uint64_t key, std::size_t shards) {
  return static_cast<std::size_t>(partition_hash(key) % shards);
}

std::size_t StreamEngine::shard_of(const Event& e) const {
  const std::uint64_t key =
      config_.key_of ? config_.key_of(e) : static_cast<std::uint64_t>(e.type);
  return shard_index(key, config_.shards);
}

StreamEngine::StreamEngine(StreamEngineConfig config)
    : config_(std::move(config)) {
  config_.validate();
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(i, config_.ring_capacity));
  }
  start_ = std::chrono::steady_clock::now();
  try {
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      s->thread = config_.adaptive.has_value()
                      ? std::thread([this, s] { run_adaptive_shard(*s); })
                      : std::thread([this, s] { run_deterministic_shard(*s); });
    }
  } catch (...) {
    // Thread spawn failed mid-loop: release the shards already running
    // (close their rings, join) before rethrowing -- destroying a joinable
    // std::thread would terminate the process.
    for (auto& s : shards_) s->ring.close();
    for (auto& s : shards_) {
      if (s->thread.joinable()) s->thread.join();
    }
    throw;
  }
}

StreamEngine::~StreamEngine() {
  if (!finished_) {
    for (auto& s : shards_) s->ring.close();
    for (auto& s : shards_) {
      if (s->thread.joinable()) s->thread.join();
    }
  }
}

void StreamEngine::push(const Event& e) {
  ESPICE_REQUIRE(!finished_, "push() after finish()");
  Shard& s = *shards_[shard_of(e)];
  while (!s.ring.try_push(e)) {
    // Backpressure: the shard is the bottleneck; yield the router until a
    // slot frees up.  The counter is router-owned, so a plain increment.
    ++s.stats.router_backpressure_waits;
    std::this_thread::yield();
  }
  ++pushed_;
}

void StreamEngine::run_deterministic_shard(Shard& shard) {
  try {
    WindowManager wm(config_.query.window);
    const Matcher matcher(config_.query.pattern, config_.query.selection,
                          config_.query.consumption,
                          config_.query.max_matches_per_window);
    std::unique_ptr<Shedder> shedder =
        config_.shedder_factory ? config_.shedder_factory(shard.stats.shard)
                                : nullptr;
    double predicted_ws = config_.predicted_ws;
    if (predicted_ws <= 0.0) {
      predicted_ws = static_cast<double>(config_.query.window.span_events);
    }

    auto flush = [&] {
      for (const WindowView& w : wm.drain_closed()) {
        ++shard.stats.windows_closed;
        auto matches = matcher.match_window(w);
        for (auto& m : matches) shard.matches.push_back(std::move(m));
      }
    };

    Event e;
    for (;;) {
      const auto popped = shard.ring.pop_or_closed(e);
      if (popped == SpscRing<Event>::Pop::kEmpty) {
        std::this_thread::yield();
        continue;
      }
      if (popped == SpscRing<Event>::Pop::kDone) break;

      if (++shard.stats.events % kDepthSampleStride == 0) {
        shard.stats.peak_queue_depth =
            std::max(shard.stats.peak_queue_depth, shard.ring.size());
      }
      auto& memberships = wm.offer(e);
      shard.stats.memberships += memberships.size();
      for (const auto& m : memberships) {
        if (shedder != nullptr &&
            shedder->should_drop(e, m.position, predicted_ws)) {
          continue;
        }
        wm.keep(m, e);
        ++shard.stats.memberships_kept;
      }
      flush();
    }
    wm.close_all();
    flush();

    shard.stats.matches = shard.matches.size();
    if (shedder != nullptr) {
      shard.stats.shed_decisions = shedder->decisions();
      shard.stats.shed_drops = shedder->drops();
    }
  } catch (...) {
    shard.error = std::current_exception();
    // Keep draining so the router cannot deadlock on a full ring.
    Event e;
    while (shard.ring.pop_or_closed(e) != SpscRing<Event>::Pop::kDone) {
      std::this_thread::yield();
    }
  }
}

void StreamEngine::run_adaptive_shard(Shard& shard) {
  try {
    EspiceOperator op(*config_.adaptive, [&shard](const ComplexEvent& ce) {
      shard.matches.push_back(ce);
    });
    const double tick_period = config_.adaptive->detector.tick_period;
    double next_tick = tick_period;

    Event e;
    for (;;) {
      const auto popped = shard.ring.pop_or_closed(e);
      if (popped == SpscRing<Event>::Pop::kEmpty) {
        std::this_thread::yield();
        continue;
      }
      if (popped == SpscRing<Event>::Pop::kDone) break;

      const auto before = std::chrono::steady_clock::now();
      const double now = std::chrono::duration<double>(before - start_).count();
      op.observe_arrival(now);
      op.push(e);
      op.observe_cost(seconds_since(before));
      if (now >= next_tick) {
        // The ring depth *is* the shard's input queue: the backpressure
        // signal the overload detector steers shedding by.
        op.on_tick(now, shard.ring.size());
        ++shard.stats.detector_ticks;
        shard.stats.peak_queue_depth =
            std::max(shard.stats.peak_queue_depth, shard.ring.size());
        if (op.shedding_active()) shard.stats.shedding_ever_active = true;
        next_tick += tick_period;
      }
    }
    op.finish();

    const OperatorStats s = op.stats();
    shard.stats.events = s.events;
    shard.stats.memberships = s.memberships;
    shard.stats.memberships_kept = s.memberships_kept;
    shard.stats.windows_closed = s.windows_closed;
    shard.stats.matches = shard.matches.size();
    shard.stats.shed_decisions = s.decisions;
    shard.stats.shed_drops = s.drops;
    shard.stats.retrains = s.retrains;
  } catch (...) {
    shard.error = std::current_exception();
    Event e;
    while (shard.ring.pop_or_closed(e) != SpscRing<Event>::Pop::kDone) {
      std::this_thread::yield();
    }
  }
}

std::vector<ComplexEvent> StreamEngine::merge_matches(
    std::vector<std::vector<ComplexEvent>> per_shard) {
  struct Tagged {
    std::uint64_t completion_seq;
    std::size_t shard;
    std::size_t index;
  };
  std::vector<Tagged> order;
  std::size_t total = 0;
  for (const auto& v : per_shard) total += v.size();
  order.reserve(total);
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    for (std::size_t i = 0; i < per_shard[s].size(); ++i) {
      std::uint64_t completion = 0;
      for (const auto& c : per_shard[s][i].constituents) {
        completion = std::max(completion, c.event.seq);
      }
      order.push_back(Tagged{completion, s, i});
    }
  }
  std::sort(order.begin(), order.end(), [](const Tagged& a, const Tagged& b) {
    return std::tie(a.completion_seq, a.shard, a.index) <
           std::tie(b.completion_seq, b.shard, b.index);
  });
  std::vector<ComplexEvent> merged;
  merged.reserve(total);
  for (const Tagged& t : order) {
    merged.push_back(std::move(per_shard[t.shard][t.index]));
  }
  return merged;
}

EngineReport StreamEngine::finish() {
  ESPICE_REQUIRE(!finished_, "finish() called twice");
  finished_ = true;
  for (auto& s : shards_) s->ring.close();
  for (auto& s : shards_) s->thread.join();
  const double wall = seconds_since(start_);
  for (auto& s : shards_) {
    if (s->error) std::rethrow_exception(s->error);
  }

  EngineReport report;
  report.events = pushed_;
  report.wall_seconds = wall;
  report.events_per_sec =
      wall > 0.0 ? static_cast<double>(pushed_) / wall : 0.0;
  std::vector<std::vector<ComplexEvent>> per_shard;
  per_shard.reserve(shards_.size());
  for (auto& s : shards_) {
    report.shards.push_back(s->stats);
    per_shard.push_back(std::move(s->matches));
  }
  report.matches = merge_matches(std::move(per_shard));
  return report;
}

std::size_t StreamEngine::queue_depth(std::size_t shard) const {
  ESPICE_REQUIRE(shard < shards_.size(), "shard index out of range");
  return shards_[shard]->ring.size();
}

std::uint64_t EngineReport::total_windows_closed() const {
  std::uint64_t n = 0;
  for (const auto& s : shards) n += s.windows_closed;
  return n;
}

std::uint64_t EngineReport::total_shed_drops() const {
  std::uint64_t n = 0;
  for (const auto& s : shards) n += s.shed_drops;
  return n;
}

}  // namespace espice
