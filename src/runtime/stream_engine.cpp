#include "runtime/stream_engine.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <span>
#include <thread>
#include <tuple>

#include "cep/incremental_matcher.hpp"
#include "durability/serial.hpp"
#include "runtime/backoff.hpp"
#include "runtime/spsc_ring.hpp"

namespace espice {

namespace {

/// Shard-side drain block: how many events one front_block() view exposes
/// at most (one acquire per view, one release store per commit).  Also
/// doubles as the depth-gauge sampling granularity: ring cursors are read
/// once per block, not per event.
constexpr std::size_t kShardBlock = 256;

/// checkpoint_target sentinel: no cut armed.
constexpr std::uint64_t kNoCheckpoint = ~std::uint64_t{0};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

void StreamEngineConfig::validate() const {
  ESPICE_REQUIRE(shards > 0, "engine needs at least one shard");
  ESPICE_REQUIRE(ring_capacity > 0, "ring capacity must be positive");
  if (durability.has_value()) {
    ESPICE_REQUIRE(!adaptive.has_value(),
                   "durability requires deterministic mode (adaptive results "
                   "depend on the wall clock and are not replayable)");
    ESPICE_REQUIRE(!durability->dir.empty(), "durability.dir must be set");
  }
  if (adaptive.has_value()) {
    adaptive->validate();
    return;
  }
  query.pattern.validate();
  query.window.validate();
  if (shedder_factory != nullptr) {
    ESPICE_REQUIRE(
        predicted_ws > 0.0 || query.window.span_kind == WindowSpan::kCount,
        "non-count windows need an explicit predicted_ws to shed");
  }
}

struct StreamEngine::Shard {
  Shard(std::size_t index_, std::size_t ring_capacity, std::size_t num_queries)
      : ring(ring_capacity) {
    stats.shard = index_;
    query_matches.resize(num_queries);
    query_counters.resize(num_queries);
  }

  /// Per-query outcome counters of this shard (summed into QueryReport).
  struct QueryCounters {
    std::uint64_t memberships = 0;       ///< offered pairs in its group
    std::uint64_t memberships_kept = 0;  ///< pairs this query kept
    std::uint64_t shed_decisions = 0;
    std::uint64_t shed_drops = 0;
  };

  SpscRing<Event> ring;
  std::thread thread;
  /// Per-query shedders, built by the factories on the router thread at
  /// start() (the documented factory contract); each is then owned and
  /// driven by this shard's thread only.
  std::vector<std::unique_ptr<Shedder>> shedders;
  /// Per query, this shard's matches in shard-local detection order.
  std::vector<std::vector<ComplexEvent>> query_matches;
  std::vector<QueryCounters> query_counters;
  ShardStats stats;
  std::exception_ptr error;

  // --- durability checkpoint handshake (router <-> shard thread) ---------
  /// The router arms this with the exact number of events the shard must
  /// have consumed at the cut; the shard drains up to it (never past),
  /// serializes its pipeline into `checkpoint_blob`, publishes via
  /// `checkpoint_ready` and holds until the router clears the target.
  std::atomic<std::uint64_t> checkpoint_target{kNoCheckpoint};
  std::atomic<bool> checkpoint_ready{false};
  std::vector<std::byte> checkpoint_blob;
  /// Set (release) by a shard entering its failure drain, so the router's
  /// checkpoint wait bails out instead of deadlocking on a dead pipeline.
  std::atomic<bool> failed{false};
};

std::uint64_t StreamEngine::partition_hash(std::uint64_t key) {
  // SplitMix64 finalizer: fixed, platform-independent avalanche so the
  // shard assignment is part of the engine's deterministic contract.
  std::uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::size_t StreamEngine::shard_index(std::uint64_t key, std::size_t shards) {
  return static_cast<std::size_t>(partition_hash(key) % shards);
}

std::size_t StreamEngine::shard_of(const Event& e) const {
  const std::uint64_t key =
      config_.key_of ? config_.key_of(e) : static_cast<std::uint64_t>(e.type);
  return shard_index(key, config_.shards);
}

StreamEngine::StreamEngine(StreamEngineConfig config)
    : config_(std::move(config)) {
  // Only the common fields are checked here: the query set is not final
  // until start() (add_query() may still register more), where the full
  // validation runs.
  ESPICE_REQUIRE(config_.shards > 0, "engine needs at least one shard");
  ESPICE_REQUIRE(config_.ring_capacity > 0, "ring capacity must be positive");
  if (config_.durability.has_value()) {
    ESPICE_REQUIRE(!config_.adaptive.has_value(),
                   "durability requires deterministic mode (adaptive results "
                   "depend on the wall clock and are not replayable)");
    ESPICE_REQUIRE(!config_.durability->dir.empty(),
                   "durability.dir must be set");
  }
  if (config_.adaptive.has_value()) config_.adaptive->validate();
}

std::size_t StreamEngine::add_query(EngineQuery q) {
  ESPICE_REQUIRE(!started_, "add_query() after the engine started");
  ESPICE_REQUIRE(!config_.adaptive.has_value(),
                 "the adaptive engine is single-query");
  ESPICE_REQUIRE(queries_.size() < kMaxQueriesPerWindowManager,
                 "too many queries for one engine");
  queries_.push_back(std::move(q));
  return queries_.size() - 1;
}

void StreamEngine::start() {
  if (started_) return;
  started_ = true;

  if (!config_.adaptive.has_value()) {
    if (queries_.empty()) {
      // Legacy single-query path: adopt the config's query as query 0.
      config_.validate();
      EngineQuery q;
      q.query = config_.query;
      q.shedder_factory = config_.shedder_factory;
      q.predicted_ws = config_.predicted_ws;
      queries_.push_back(std::move(q));
    }
    for (std::size_t i = 0; i < queries_.size(); ++i) {
      EngineQuery& q = queries_[i];
      q.query.pattern.validate();
      q.query.window.validate();
      if (q.shedder_factory != nullptr) {
        ESPICE_REQUIRE(q.predicted_ws > 0.0 ||
                           q.query.window.span_kind == WindowSpan::kCount,
                       "non-count windows need an explicit predicted_ws to "
                       "shed (query " +
                           std::to_string(i) + ")");
      }
      if (q.name.empty()) q.name = "q" + std::to_string(i);
    }
  }

  if (config_.durability.has_value()) {
    // recover_and_start() opens the log itself (and seeds pushed_per_shard_
    // from the snapshot); a cold start opens a fresh-or-existing log here.
    if (log_ == nullptr) open_durability();
    if (pushed_per_shard_.empty()) pushed_per_shard_.assign(config_.shards, 0);
  }

  const std::size_t num_queries = std::max<std::size_t>(queries_.size(), 1);
  if (config_.shards > 1) {
    staging_.resize(config_.shards);
    // Seed each staging buffer's capacity so typical batches never allocate
    // on the routing path (buffers keep growing to the largest batch seen).
    for (auto& buf : staging_) buf.reserve(kShardBlock);
  }
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(
        std::make_unique<Shard>(i, config_.ring_capacity, num_queries));
    if (!config_.adaptive.has_value()) {
      auto& shedders = shards_.back()->shedders;
      shedders.reserve(queries_.size());
      for (const EngineQuery& q : queries_) {
        shedders.push_back(q.shedder_factory ? q.shedder_factory(i) : nullptr);
      }
    }
  }
  start_ = std::chrono::steady_clock::now();
  try {
    for (auto& shard : shards_) {
      Shard* s = shard.get();
      s->thread = config_.adaptive.has_value()
                      ? std::thread([this, s] { run_adaptive_shard(*s); })
                      : std::thread([this, s] { run_deterministic_shard(*s); });
    }
  } catch (...) {
    // Thread spawn failed mid-loop: release the shards already running
    // (close their rings, join) before rethrowing -- destroying a joinable
    // std::thread would terminate the process.
    for (auto& s : shards_) s->ring.close();
    for (auto& s : shards_) {
      if (s->thread.joinable()) s->thread.join();
    }
    throw;
  }
}

StreamEngine::~StreamEngine() {
  if (!finished_) {
    for (auto& s : shards_) s->ring.close();
    for (auto& s : shards_) {
      if (s->thread.joinable()) s->thread.join();
    }
  }
}

void StreamEngine::push(const Event& e) {
  ESPICE_REQUIRE(!finished_, "push() after finish()");
  if (!started_) start();
  // Write-ahead: the event is in the log before any shard can observe it,
  // so everything a recovered run may have partially processed is
  // replayable.  Replay itself flows through here with appends suppressed
  // (the events come *from* the log).
  if (log_ != nullptr && !replaying_) {
    log_->append_batch(std::span<const Event>(&e, 1));
  }
  const std::size_t si = shard_of(e);
  Shard& s = *shards_[si];
  if (!s.ring.try_push(e)) {
    // Backpressure: the shard is the bottleneck; back the router off
    // (yield, then bounded sleeps) until a slot frees up.  The counters
    // are router-owned, so plain accumulation.
    BackoffWaiter waiter;
    do {
      waiter.wait();
    } while (!s.ring.try_push(e));
    s.stats.router_backpressure_waits += waiter.waits();
    s.stats.router_stall_seconds += waiter.stall_seconds();
  }
  ++pushed_;
  if (log_ != nullptr) {
    ++pushed_per_shard_[si];
    if (!replaying_) {
      ++events_since_snapshot_;
      maybe_auto_checkpoint();
    }
  }
}

void StreamEngine::bulk_push_shard(Shard& s, const Event* data, std::size_t n) {
  BackoffWaiter waiter;
  while (n > 0) {
    const std::size_t pushed = s.ring.try_push_bulk(data, n);
    if (pushed == 0) {
      waiter.wait();
      continue;
    }
    waiter.reset();
    data += pushed;
    n -= pushed;
  }
  if (waiter.waits() > 0) {
    s.stats.router_backpressure_waits += waiter.waits();
    s.stats.router_stall_seconds += waiter.stall_seconds();
  }
}

void StreamEngine::push_batch(std::span<const Event> events) {
  ESPICE_REQUIRE(!finished_, "push_batch() after finish()");
  if (events.empty()) return;
  if (!started_) start();
  if (log_ != nullptr && !replaying_) log_->append_batch(events);
  if (config_.shards == 1) {
    // Single shard: everything routes to shard 0 -- no hashing, no staging
    // copy, bulk enqueue straight from the caller's span.
    bulk_push_shard(*shards_[0], events.data(), events.size());
    if (log_ != nullptr) pushed_per_shard_[0] += events.size();
  } else {
    for (auto& buf : staging_) buf.clear();
    for (const Event& e : events) staging_[shard_of(e)].push_back(e);
    for (std::size_t s = 0; s < staging_.size(); ++s) {
      if (!staging_[s].empty()) {
        bulk_push_shard(*shards_[s], staging_[s].data(), staging_[s].size());
        if (log_ != nullptr) pushed_per_shard_[s] += staging_[s].size();
      }
    }
  }
  pushed_ += events.size();
  if (log_ != nullptr && !replaying_) {
    events_since_snapshot_ += events.size();
    maybe_auto_checkpoint();
  }
}

void StreamEngine::run_deterministic_shard(Shard& shard) {
  try {
    const std::size_t nq = queries_.size();

    // Per-query runtime state.  `bit` is the query's bit inside its window
    // group's keep masks.
    struct QueryRuntime {
      explicit QueryRuntime(IncrementalMatcher m) : matcher(std::move(m)) {}
      /// Stream-level matcher: fed this query's keep decisions through the
      /// group's KeptFeed, finalized per closed window at flush.
      IncrementalMatcher matcher;
      std::unique_ptr<Shedder> shedder;
      double predicted_ws = 0.0;
      std::size_t bit = 0;
      std::vector<KeptEntry> filter_scratch;
      std::uint64_t memberships = 0;
      std::uint64_t kept = 0;
    };
    std::vector<QueryRuntime> runtimes;
    runtimes.reserve(nq);
    for (std::size_t qi = 0; qi < nq; ++qi) {
      const EngineQuery& q = queries_[qi];
      QueryRuntime rt(IncrementalMatcher(q.query.pattern, q.query.selection,
                                         q.query.consumption,
                                         q.query.max_matches_per_window));
      rt.shedder = std::move(shard.shedders[qi]);
      rt.predicted_ws =
          q.predicted_ws > 0.0
              ? q.predicted_ws
              : static_cast<double>(q.query.window.span_events);
      runtimes.push_back(std::move(rt));
    }

    // Group queries by identical windowing: one WindowManager (and event
    // store) per group.  Masks are only tracked where queries actually
    // share, so the single-query hot path stays mask-free.
    std::vector<std::vector<std::size_t>> group_members;
    for (std::size_t qi = 0; qi < nq; ++qi) {
      bool placed = false;
      for (auto& members : group_members) {
        if (same_windowing(queries_[members.front()].query.window,
                           queries_[qi].query.window)) {
          runtimes[qi].bit = members.size();
          members.push_back(qi);
          placed = true;
          break;
        }
      }
      if (!placed) {
        runtimes[qi].bit = 0;
        group_members.push_back({qi});
      }
    }
    struct Group {
      WindowManager wm;
      std::vector<std::size_t> members;
      /// Keep sets can only diverge between member queries when at least
      /// one of them sheds; an all-keep group needs no masks and no
      /// per-query filtering (every query sees the full window).
      bool diverging;
      /// Fans the manager's kept feed out to the members' matchers (bit b
      /// of the group's keep masks drives member b).
      MatcherFeed feed;
    };
    std::vector<Group> groups;
    groups.reserve(group_members.size());
    for (auto& members : group_members) {
      bool any_shedder = false;
      for (const std::size_t qi : members) {
        any_shedder = any_shedder || runtimes[qi].shedder != nullptr;
      }
      const bool diverging = members.size() > 1 && any_shedder;
      groups.push_back(
          Group{WindowManager(queries_[members.front()].query.window,
                              /*track_masks=*/diverging),
                std::move(members), diverging, MatcherFeed{}});
    }
    // Wire the feeds only once every group sits at its final address.  A
    // group whose members all take the window scan (last selection,
    // negations, multi-match), or whose windows never overlap (tumbling),
    // skips the per-event feed bookkeeping.
    for (Group& g : groups) {
      bool any_incremental = false;
      for (const std::size_t qi : g.members) {
        g.feed.add(&runtimes[qi].matcher);
        any_incremental =
            any_incremental || runtimes[qi].matcher.stream_incremental();
      }
      const WindowSpec& spec = queries_[g.members.front()].query.window;
      if (any_incremental && windows_can_overlap(spec)) {
        g.wm.set_kept_feed(&g.feed);
      }
    }

    // ---- durability: pipeline snapshot/restore + checkpoint service -----
    // `consumed` counts the events this shard has drained over its whole
    // lifetime (it resumes from the snapshot on recovery); the router cuts
    // checkpoints at exact values of it.
    std::uint64_t consumed = 0;

    auto serialize_pipeline = [&](durability::SnapshotWriter& w) {
      w.u64(consumed);
      w.u64(shard.stats.events);
      w.u64(shard.stats.memberships);
      w.u64(shard.stats.memberships_kept);
      w.u64(shard.stats.windows_closed);
      for (Group& g : groups) g.wm.serialize(w);
      for (std::size_t qi = 0; qi < nq; ++qi) {
        QueryRuntime& rt = runtimes[qi];
        rt.matcher.serialize(w);
        w.boolean(rt.shedder != nullptr);
        if (rt.shedder != nullptr) rt.shedder->serialize(w);
        w.u64(rt.memberships);
        w.u64(rt.kept);
        const auto& matches = shard.query_matches[qi];
        w.u64(matches.size());
        for (const ComplexEvent& ce : matches) {
          w.u64(ce.window);
          w.f64(ce.detection_ts);
          w.u64(ce.constituents.size());
          for (const Constituent& c : ce.constituents) {
            w.u32(c.element);
            w.u32(c.position);
            w.event(c.event);
          }
        }
      }
    };

    auto restore_pipeline = [&](durability::SnapshotReader& r) {
      consumed = r.u64();
      shard.stats.events = r.u64();
      shard.stats.memberships = r.u64();
      shard.stats.memberships_kept = r.u64();
      shard.stats.windows_closed = r.u64();
      for (Group& g : groups) g.wm.restore(r);
      for (std::size_t qi = 0; qi < nq; ++qi) {
        QueryRuntime& rt = runtimes[qi];
        rt.matcher.restore(r);
        const bool has_shedder = r.boolean();
        ESPICE_CHECK(has_shedder == (rt.shedder != nullptr),
                     ErrorCode::kCorruptSnapshot,
                     "snapshot shedder presence does not match the engine's "
                     "query configuration");
        if (rt.shedder != nullptr) rt.shedder->restore(r);
        rt.memberships = r.u64();
        rt.kept = r.u64();
        const std::uint64_t n_matches = r.u64();
        auto& matches = shard.query_matches[qi];
        matches.clear();
        for (std::uint64_t m = 0; m < n_matches; ++m) {
          ComplexEvent ce;
          ce.window = static_cast<WindowId>(r.u64());
          ce.detection_ts = r.f64();
          const std::uint64_t n_cons = r.u64();
          for (std::uint64_t ci = 0; ci < n_cons; ++ci) {
            Constituent c;
            c.element = r.u32();
            c.position = r.u32();
            c.event = r.event();
            ce.constituents.push_back(std::move(c));
          }
          matches.push_back(std::move(ce));
        }
      }
    };

    if (shard.stats.shard < recovery_blobs_.size() &&
        !recovery_blobs_[shard.stats.shard].empty()) {
      durability::SnapshotReader r(recovery_blobs_[shard.stats.shard]);
      restore_pipeline(r);
      r.expect_done();
    }

    // Serves an armed checkpoint the shard sits exactly at: serialize,
    // publish, then hold the cut -- the blob buffer is shared with the
    // router, and no event past the cut may be consumed before the
    // snapshot is complete -- until the router collects it and clears the
    // target.
    auto service_checkpoint = [&]() {
      const std::uint64_t target =
          shard.checkpoint_target.load(std::memory_order_acquire);
      if (target == kNoCheckpoint || consumed != target) return;
      durability::SnapshotWriter w;
      serialize_pipeline(w);
      shard.checkpoint_blob = w.take();
      shard.checkpoint_ready.store(true, std::memory_order_release);
      while (shard.checkpoint_target.load(std::memory_order_acquire) ==
             target) {
        std::this_thread::yield();
      }
    };

    auto flush = [&](Group& g) {
      for (const WindowView& w : g.wm.drain_closed()) {
        ++shard.stats.windows_closed;
        for (const std::size_t qi : g.members) {
          QueryRuntime& rt = runtimes[qi];
          const WindowView view =
              g.diverging ? filter_view_for_query(w, rt.bit, rt.filter_scratch)
                          : w;
          auto matches = rt.matcher.finalize(view);
          for (auto& m : matches) {
            shard.query_matches[qi].push_back(std::move(m));
          }
        }
      }
    };

    // Block drain: one zero-copy ring view per visit (events are processed
    // in place; one release store commits the dequeue), then a block-wise
    // pipeline pass per group.  Groups are independent (own WindowManager,
    // own member queries), and within a group events are processed in
    // stream order, so the output is bit-identical to the per-event loop
    // this replaces -- only the loop nesting (group outside, event inside)
    // and the flush granularity (per block, not per event; window views
    // stay valid until the drain) change.
    std::vector<std::uint32_t> pos_scratch;    // one event's membership positions
    std::vector<std::uint64_t> bits_scratch;   // per-query keep bitmaps
    pos_scratch.reserve(64);
    bits_scratch.reserve(16);

    auto positions_of = [&pos_scratch](const std::vector<WindowManager::Membership>& ms) {
      pos_scratch.resize(ms.size());
      for (std::size_t i = 0; i < ms.size(); ++i) {
        pos_scratch[i] = ms[i].position;
      }
    };

    for (;;) {
      service_checkpoint();
      std::span<const Event> blk = shard.ring.front_block(kShardBlock);
      if (blk.empty()) {
        if (!shard.ring.closed()) {
          std::this_thread::yield();
          continue;
        }
        // Same never-miss ordering as pop_or_closed(): closed was observed
        // (acquire) after an empty view, so one more look decides.
        blk = shard.ring.front_block(kShardBlock);
        if (blk.empty()) break;
      }
      // An armed checkpoint cuts at an exact event count: trim the block so
      // the shard lands on the cut (the loop head serves it), never past.
      const std::uint64_t target =
          shard.checkpoint_target.load(std::memory_order_acquire);
      if (target != kNoCheckpoint && target - consumed < blk.size()) {
        blk = blk.first(static_cast<std::size_t>(target - consumed));
      }
      const std::size_t n = blk.size();
      shard.stats.events += n;
      // Depth gauge, one sample per block (the unreleased block still
      // counts as queued).
      shard.stats.peak_queue_depth =
          std::max(shard.stats.peak_queue_depth, shard.ring.size());
      for (Group& g : groups) {
        if (g.members.size() == 1) {
          QueryRuntime& rt = runtimes[g.members.front()];
          if (rt.shedder == nullptr) {
            // All-keep single query: the fully batched window path.
            const std::uint64_t kept = g.wm.offer_keep_all_block(blk);
            rt.memberships += kept;
            rt.kept += kept;
            shard.stats.memberships += kept;
            shard.stats.memberships_kept += kept;
          } else {
            for (const Event& e : blk) {
              auto& memberships = g.wm.offer(e);
              const std::size_t mcount = memberships.size();
              shard.stats.memberships += mcount;
              rt.memberships += mcount;
              if (mcount == 0) continue;
              positions_of(memberships);
              bits_scratch.resize(keep_bitmap_words(mcount));
              rt.shedder->score_block(e, pos_scratch.data(), mcount,
                                      rt.predicted_ws, bits_scratch.data());
              for (std::size_t i = 0; i < mcount; ++i) {
                if (keep_bit(bits_scratch.data(), i)) {
                  g.wm.keep(memberships[i], e);
                  ++rt.kept;
                  ++shard.stats.memberships_kept;
                }
              }
            }
          }
        } else if (!g.diverging) {
          // Shared all-keep group: one mask-free batched pass covers every
          // member query.
          const std::uint64_t kept = g.wm.offer_keep_all_block(blk);
          shard.stats.memberships += kept;
          shard.stats.memberships_kept += kept;
          for (const std::size_t qi : g.members) {
            runtimes[qi].memberships += kept;
            runtimes[qi].kept += kept;
          }
        } else {
          for (const Event& e : blk) {
            auto& memberships = g.wm.offer(e);
            const std::size_t mcount = memberships.size();
            shard.stats.memberships += mcount;
            if (mcount == 0) continue;
            positions_of(memberships);
            const std::size_t words = keep_bitmap_words(mcount);
            bits_scratch.resize(words * g.members.size());
            for (std::size_t b = 0; b < g.members.size(); ++b) {
              QueryRuntime& rt = runtimes[g.members[b]];
              rt.memberships += mcount;
              std::uint64_t* bits = bits_scratch.data() + b * words;
              if (rt.shedder == nullptr) {
                for (std::size_t w = 0; w < words; ++w) bits[w] = ~0ULL;
                rt.kept += mcount;
              } else {
                rt.shedder->score_block(e, pos_scratch.data(), mcount,
                                        rt.predicted_ws, bits);
                std::uint64_t kept = 0;
                for (std::size_t i = 0; i < mcount; ++i) {
                  kept += keep_bit(bits, i);
                }
                rt.kept += kept;
              }
            }
            // Transpose the per-query bitmaps into per-membership masks.
            for (std::size_t i = 0; i < mcount; ++i) {
              QueryMask mask = 0;
              for (std::size_t b = 0; b < g.members.size(); ++b) {
                if (keep_bit(bits_scratch.data() + b * words, i)) {
                  mask |= QueryMask{1} << runtimes[g.members[b]].bit;
                }
              }
              // Every query shed it -> physical drop (never buffered).
              if (mask != 0) {
                g.wm.keep(memberships[i], e, mask);
                ++shard.stats.memberships_kept;
              }
            }
          }
        }
        flush(g);
      }
      consumed += n;
      shard.ring.release(n);
    }
    for (Group& g : groups) {
      g.wm.close_all();
      flush(g);
    }

    for (std::size_t qi = 0; qi < nq; ++qi) {
      const QueryRuntime& rt = runtimes[qi];
      auto& qc = shard.query_counters[qi];
      qc.memberships = rt.memberships;
      qc.memberships_kept = rt.kept;
      if (rt.shedder != nullptr) {
        qc.shed_decisions = rt.shedder->decisions();
        qc.shed_drops = rt.shedder->drops();
      }
      shard.stats.matches += shard.query_matches[qi].size();
      shard.stats.shed_decisions += qc.shed_decisions;
      shard.stats.shed_drops += qc.shed_drops;
    }
  } catch (...) {
    shard.error = std::current_exception();
    shard.failed.store(true, std::memory_order_release);
    // Keep draining so the router cannot deadlock on a full ring.
    Event e;
    while (shard.ring.pop_or_closed(e) != SpscRing<Event>::Pop::kDone) {
      std::this_thread::yield();
    }
  }
}

void StreamEngine::run_adaptive_shard(Shard& shard) {
  try {
    EspiceOperator op(*config_.adaptive, [&shard](const ComplexEvent& ce) {
      shard.query_matches[0].push_back(ce);
    });
    const double tick_period = config_.adaptive->detector.tick_period;
    double next_tick = tick_period;

    for (;;) {
      std::span<const Event> blk = shard.ring.front_block(kShardBlock);
      if (blk.empty()) {
        if (!shard.ring.closed()) {
          std::this_thread::yield();
          continue;
        }
        blk = shard.ring.front_block(kShardBlock);
        if (blk.empty()) break;
      }
      const std::size_t n = blk.size();
      for (std::size_t i = 0; i < n; ++i) {
        const Event& e = blk[i];
        const auto before = std::chrono::steady_clock::now();
        const double now =
            std::chrono::duration<double>(before - start_).count();
        op.observe_arrival(now);
        op.push(e);
        op.observe_cost(seconds_since(before));
        if (now >= next_tick) {
          // The ring depth *is* the shard's input queue: the backpressure
          // signal the overload detector steers shedding by.  The current
          // block is still unreleased, so size() already counts its
          // unprocessed tail (minus what this loop consumed).
          const std::size_t depth =
              shard.ring.size() >= i + 1 ? shard.ring.size() - (i + 1) : 0;
          op.on_tick(now, depth);
          ++shard.stats.detector_ticks;
          shard.stats.peak_queue_depth =
              std::max(shard.stats.peak_queue_depth, depth);
          if (op.shedding_active()) shard.stats.shedding_ever_active = true;
          next_tick += tick_period;
        }
      }
      shard.ring.release(n);
    }
    op.finish();

    const OperatorStats s = op.stats();
    shard.stats.events = s.events;
    shard.stats.memberships = s.memberships;
    shard.stats.memberships_kept = s.memberships_kept;
    shard.stats.windows_closed = s.windows_closed;
    shard.stats.matches = shard.query_matches[0].size();
    shard.stats.shed_decisions = s.decisions;
    shard.stats.shed_drops = s.drops;
    shard.stats.retrains = s.retrains;
    auto& qc = shard.query_counters[0];
    qc.memberships = s.memberships;
    qc.memberships_kept = s.memberships_kept;
    qc.shed_decisions = s.decisions;
    qc.shed_drops = s.drops;
  } catch (...) {
    shard.error = std::current_exception();
    shard.failed.store(true, std::memory_order_release);
    Event e;
    while (shard.ring.pop_or_closed(e) != SpscRing<Event>::Pop::kDone) {
      std::this_thread::yield();
    }
  }
}

void StreamEngine::open_durability() {
  const DurabilityConfig& d = *config_.durability;
  durability::EventLogConfig lc;
  lc.dir = d.dir + "/log";
  lc.segment_bytes = d.segment_bytes;
  lc.fsync = d.fsync;
  lc.fsync_interval_records = d.fsync_interval_records;
  lc.validate();
  log_ = std::make_unique<durability::EventLogWriter>(std::move(lc));
  snaps_ = std::make_unique<durability::SnapshotStore>(d.dir + "/snapshots");
}

void StreamEngine::maybe_auto_checkpoint() {
  const std::uint64_t every = config_.durability->snapshot_every_events;
  if (every == 0 || events_since_snapshot_ < every) return;
  checkpoint();
}

void StreamEngine::checkpoint() {
  ESPICE_REQUIRE(config_.durability.has_value(),
                 "checkpoint() needs durability configured");
  ESPICE_REQUIRE(!finished_, "checkpoint() after finish()");
  if (!started_) start();

  // The log must be durable up to the cut before a snapshot keyed by it is
  // published -- otherwise a power loss could leave a snapshot whose replay
  // tail never reached the disk.
  log_->sync();

  durability::SnapshotWriter w;
  w.u64(config_.shards);
  w.u64(std::max<std::size_t>(queries_.size(), 1));
  w.u64(pushed_);

  // Arm every shard with its exact cut, then collect in shard order.  The
  // shards quiesce at the cut only as long as it takes the router to copy
  // their blob out -- each resumes as soon as its target clears.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    s.checkpoint_ready.store(false, std::memory_order_relaxed);
    s.checkpoint_target.store(pushed_per_shard_[i], std::memory_order_release);
  }
  std::exception_ptr failure;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    Shard& s = *shards_[i];
    BackoffWaiter waiter;
    while (!s.checkpoint_ready.load(std::memory_order_acquire)) {
      if (s.failed.load(std::memory_order_acquire)) {
        failure = s.error;
        break;
      }
      waiter.wait();
    }
    if (failure != nullptr) break;
    w.u64(pushed_per_shard_[i]);
    w.u64(s.checkpoint_blob.size());
    w.bytes(s.checkpoint_blob.data(), s.checkpoint_blob.size());
    s.checkpoint_target.store(kNoCheckpoint, std::memory_order_release);
  }
  if (failure != nullptr) {
    // A shard died mid-checkpoint: release every cut (dead shards ignore
    // them, live ones resume) and surface the shard's error now.
    for (auto& s : shards_) {
      s->checkpoint_target.store(kNoCheckpoint, std::memory_order_release);
    }
    std::rethrow_exception(failure);
  }

  snaps_->write(pushed_, w.buffer());
  events_since_snapshot_ = 0;
  // Everything strictly below the new cut is superseded: older snapshots
  // and log segments wholly before it can never be read again.
  snaps_->prune_below(pushed_);
  log_->prune_segments_below(pushed_);
}

RecoveryReport StreamEngine::recover_and_start() {
  ESPICE_REQUIRE(config_.durability.has_value(),
                 "recover_and_start() needs durability configured");
  ESPICE_REQUIRE(!started_ && !finished_ && pushed_ == 0,
                 "recover_and_start() must be the first action on a fresh "
                 "engine");
  RecoveryReport rep;

  // Opening the writer IS the log recovery: it validates every segment,
  // truncates the torn tail and positions appends after the last valid
  // record.  Everything it found wrong is part of the recovery report.
  open_durability();
  rep.damage = log_->open_result().damage;
  rep.durable_events = log_->next_index();

  auto loaded = snaps_->load_latest(&rep.damage);
  if (loaded.has_value() && loaded->log_offset > rep.durable_events) {
    // Can only happen under external tampering (the checkpoint protocol
    // syncs the log before publishing): don't trust the snapshot.
    rep.damage.push_back(
        "snapshot at offset " + std::to_string(loaded->log_offset) +
        " lies beyond the durable log end " +
        std::to_string(rep.durable_events) + "; ignoring it");
    loaded.reset();
  }
  if (loaded.has_value()) {
    durability::SnapshotReader r(loaded->payload);
    const std::uint64_t k = r.u64();
    const std::uint64_t nq = r.u64();
    const std::uint64_t offset = r.u64();
    ESPICE_CHECK(k == config_.shards, ErrorCode::kCorruptSnapshot,
                 "snapshot was cut with " + std::to_string(k) +
                     " shards, engine is configured with " +
                     std::to_string(config_.shards));
    ESPICE_CHECK(nq == std::max<std::size_t>(queries_.size(), 1),
                 ErrorCode::kCorruptSnapshot,
                 "snapshot was cut with a different query count");
    ESPICE_CHECK(offset == loaded->log_offset, ErrorCode::kCorruptSnapshot,
                 "snapshot payload offset disagrees with its header");
    pushed_per_shard_.assign(static_cast<std::size_t>(k), 0);
    recovery_blobs_.resize(static_cast<std::size_t>(k));
    for (std::size_t i = 0; i < k; ++i) {
      pushed_per_shard_[i] = r.u64();
      const std::size_t blob_len = r.size();
      recovery_blobs_[i].resize(blob_len);
      if (blob_len > 0) r.bytes(recovery_blobs_[i].data(), blob_len);
    }
    r.expect_done();
    pushed_ = offset;
    rep.snapshot_offset = offset;
  }

  start();  // shard threads restore from recovery_blobs_ as they spin up

  if (rep.durable_events > pushed_) {
    // Replay the log tail through the normal ingestion path (appends
    // suppressed: these events are already in the log).  Routing is
    // deterministic, so every event lands on the same shard as in the
    // original run and pushed_per_shard_ advances consistently.
    durability::EventLogReader reader(config_.durability->dir + "/log");
    replaying_ = true;
    try {
      reader.replay(pushed_,
                    [this](std::span<const Event> events, std::uint64_t) {
                      push_batch(events);
                    });
    } catch (...) {
      replaying_ = false;
      throw;
    }
    replaying_ = false;
  }
  rep.replayed_events = pushed_ - rep.snapshot_offset;
  return rep;
}

std::vector<ComplexEvent> StreamEngine::merge_matches(
    std::vector<std::vector<ComplexEvent>> per_shard) {
  struct Tagged {
    std::uint64_t completion_seq;
    std::size_t shard;
    std::size_t index;
  };
  std::vector<Tagged> order;
  std::size_t total = 0;
  for (const auto& v : per_shard) total += v.size();
  order.reserve(total);
  for (std::size_t s = 0; s < per_shard.size(); ++s) {
    for (std::size_t i = 0; i < per_shard[s].size(); ++i) {
      std::uint64_t completion = 0;
      for (const auto& c : per_shard[s][i].constituents) {
        completion = std::max(completion, c.event.seq);
      }
      order.push_back(Tagged{completion, s, i});
    }
  }
  std::sort(order.begin(), order.end(), [](const Tagged& a, const Tagged& b) {
    return std::tie(a.completion_seq, a.shard, a.index) <
           std::tie(b.completion_seq, b.shard, b.index);
  });
  std::vector<ComplexEvent> merged;
  merged.reserve(total);
  for (const Tagged& t : order) {
    merged.push_back(std::move(per_shard[t.shard][t.index]));
  }
  return merged;
}

EngineReport StreamEngine::finish() {
  ESPICE_REQUIRE(!finished_, "finish() called twice");
  if (!started_) start();  // empty run: still produce a (zero) report
  finished_ = true;
  // End of stream: whatever was appended under a lazy fsync policy becomes
  // durable now, so a clean shutdown never loses suffix events.
  if (log_ != nullptr) log_->sync();
  for (auto& s : shards_) s->ring.close();
  for (auto& s : shards_) s->thread.join();
  const double wall = seconds_since(start_);
  for (auto& s : shards_) {
    if (s->error) std::rethrow_exception(s->error);
  }

  EngineReport report;
  report.events = pushed_;
  report.wall_seconds = wall;
  report.events_per_sec =
      wall > 0.0 ? static_cast<double>(pushed_) / wall : 0.0;
  const std::size_t nq = std::max<std::size_t>(queries_.size(), 1);

  // Canonical per-query merge: each query's matches across shards, ordered
  // by (completing event seq, shard, in-shard index).
  report.queries.resize(nq);
  for (std::size_t qi = 0; qi < nq; ++qi) {
    QueryReport& qr = report.queries[qi];
    qr.name = qi < queries_.size() ? queries_[qi].name
                                   : "q" + std::to_string(qi);
    std::vector<std::vector<ComplexEvent>> per_shard;
    per_shard.reserve(shards_.size());
    for (auto& s : shards_) {
      qr.memberships += s->query_counters[qi].memberships;
      qr.memberships_kept += s->query_counters[qi].memberships_kept;
      qr.shed_decisions += s->query_counters[qi].shed_decisions;
      qr.shed_drops += s->query_counters[qi].shed_drops;
      per_shard.push_back(std::move(s->query_matches[qi]));
    }
    qr.matches = merge_matches(std::move(per_shard));
  }
  for (auto& s : shards_) {
    report.router_backpressure_waits += s->stats.router_backpressure_waits;
    report.router_stall_seconds += s->stats.router_stall_seconds;
    report.shards.push_back(s->stats);
  }

  // Engine-level canonical order: (completion seq, query, shard, index).
  // Each per-query merged list is already (completion, shard, index)-sorted,
  // so merging the lists in query order yields exactly that.
  if (nq == 1) {
    report.matches = report.queries.front().matches;
  } else {
    std::vector<std::vector<ComplexEvent>> per_query;
    per_query.reserve(nq);
    for (const auto& qr : report.queries) per_query.push_back(qr.matches);
    report.matches = merge_matches(std::move(per_query));
  }
  return report;
}

std::size_t StreamEngine::queue_depth(std::size_t shard) const {
  ESPICE_REQUIRE(shard < shards_.size(), "shard index out of range");
  return shards_[shard]->ring.size();
}

std::uint64_t EngineReport::total_windows_closed() const {
  std::uint64_t n = 0;
  for (const auto& s : shards) n += s.windows_closed;
  return n;
}

std::uint64_t EngineReport::total_shed_drops() const {
  std::uint64_t n = 0;
  for (const auto& s : shards) n += s.shed_drops;
  return n;
}

}  // namespace espice
