// Bounded backoff for the router's backpressure stalls.
//
// A full shard ring used to spin the router on sched_yield() until a slot
// freed up -- correct, but a stalled shard (page fault, checkpoint hold, a
// slow disk under the durability log) turns the router into a 100%-CPU
// busy-wait that steals cycles from the very shard it is waiting on.  The
// waiter escalates instead: a handful of yields first (the common case --
// the consumer is one block away from freeing space -- stays cheap), then
// jittered sleeps under a ceiling that doubles per sleep up to a 1ms cap,
// so a long stall costs the router ~0 CPU while the wakeup latency stays
// bounded.  The jitter (each sleep drawn uniformly from [min, ceiling] by
// a seeded SplitMix64) decorrelates concurrent waiters -- seed each from
// its shard index and they stop waking in lockstep to collide on the same
// just-freed slot.  reset() after any progress de-escalates back to
// yielding.
//
// Determinism: the sleep schedule is a pure function of the seed, so tests
// derive seeds from ESPICE_TEST_SEED and replay exact schedules (the
// schedule is exposed via next_sleep_us() precisely so unit tests can walk
// it without sleeping; see tests/runtime/backoff_test.cpp).
//
// The waiter also meters itself (wait count + wall seconds stalled); the
// engine surfaces the totals in EngineReport as the backpressure gauge.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

namespace espice {

class BackoffWaiter {
 public:
  static constexpr int kYieldRounds = 32;
  static constexpr std::uint64_t kMinSleepUs = 1;
  static constexpr std::uint64_t kMaxSleepUs = 1000;

  /// `max_sleep_us` caps the escalation ceiling; shard idle loops use a
  /// lower cap than the router's backpressure stall so a sleeping shard
  /// picks up fresh work with bounded latency.
  explicit BackoffWaiter(std::uint64_t seed = 0,
                         std::uint64_t max_sleep_us = kMaxSleepUs)
      : rng_(seed + 0x9e3779b97f4a7c15ULL),
        max_sleep_us_(std::max(max_sleep_us, kMinSleepUs)) {}

  /// Blocks once (yield or sleep, depending on how long we have been
  /// waiting) and meters the time spent.
  void wait() {
    const auto t0 = std::chrono::steady_clock::now();
    if (rounds_ < kYieldRounds) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(next_sleep_us()));
    }
    ++rounds_;
    ++waits_;
    stall_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  /// Draws the next sleep duration and advances the schedule: uniform in
  /// [kMinSleepUs, ceiling], after which the ceiling doubles (capped at
  /// kMaxSleepUs).  Called by wait() in the sleep regime; public so tests
  /// can verify cap / escalation / determinism without timing real sleeps.
  std::uint64_t next_sleep_us() {
    const std::uint64_t span = ceiling_us_ - kMinSleepUs + 1;
    const std::uint64_t sleep_us = kMinSleepUs + next_random() % span;
    ceiling_us_ = std::min(ceiling_us_ * 2, max_sleep_us_);
    return sleep_us;
  }

  /// Progress was made: drop back to the cheap yield regime.
  void reset() {
    rounds_ = 0;
    ceiling_us_ = kMinSleepUs;
  }

  /// Current draw ceiling in microseconds (monotone per-episode: doubles
  /// every sleep until the cap, reset() drops it back to the minimum).
  std::uint64_t sleep_ceiling_us() const { return ceiling_us_; }

  std::uint64_t waits() const { return waits_; }
  double stall_seconds() const { return stall_seconds_; }

 private:
  // SplitMix64: one add + two xor-shift-multiplies per draw; plenty for
  // decorrelating sleep phases and cheap enough to sit on a stall path.
  std::uint64_t next_random() {
    std::uint64_t z = (rng_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  std::uint64_t rng_;
  std::uint64_t max_sleep_us_ = kMaxSleepUs;
  int rounds_ = 0;
  std::uint64_t ceiling_us_ = kMinSleepUs;
  std::uint64_t waits_ = 0;
  double stall_seconds_ = 0.0;
};

}  // namespace espice
