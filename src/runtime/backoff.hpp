// Bounded backoff for the router's backpressure stalls.
//
// A full shard ring used to spin the router on sched_yield() until a slot
// freed up -- correct, but a stalled shard (page fault, checkpoint hold, a
// slow disk under the durability log) turns the router into a 100%-CPU
// busy-wait that steals cycles from the very shard it is waiting on.  The
// waiter escalates instead: a handful of yields first (the common case --
// the consumer is one block away from freeing space -- stays cheap), then
// exponentially growing sleeps capped at 1ms, so a long stall costs the
// router ~0 CPU while the wakeup latency stays bounded.  reset() after any
// progress de-escalates back to yielding.
//
// The waiter also meters itself (wait count + wall seconds stalled); the
// engine surfaces the totals in EngineReport as the backpressure gauge.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <thread>

namespace espice {

class BackoffWaiter {
 public:
  /// Blocks once (yield or sleep, depending on how long we have been
  /// waiting) and meters the time spent.
  void wait() {
    const auto t0 = std::chrono::steady_clock::now();
    if (rounds_ < kYieldRounds) {
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(sleep_);
      sleep_ = std::min(sleep_ * 2, kMaxSleep);
    }
    ++rounds_;
    ++waits_;
    stall_seconds_ +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }

  /// Progress was made: drop back to the cheap yield regime.
  void reset() {
    rounds_ = 0;
    sleep_ = kMinSleep;
  }

  std::uint64_t waits() const { return waits_; }
  double stall_seconds() const { return stall_seconds_; }

 private:
  static constexpr int kYieldRounds = 32;
  static constexpr std::chrono::microseconds kMinSleep{1};
  static constexpr std::chrono::microseconds kMaxSleep{1000};

  int rounds_ = 0;
  std::chrono::microseconds sleep_ = kMinSleep;
  std::uint64_t waits_ = 0;
  double stall_seconds_ = 0.0;
};

}  // namespace espice
