// One complete deterministic CEP pipeline over one substream.
//
// This is the body a shard thread runs -- window grouping, per-query
// incremental matchers, shedders, keep masks, event-time retained windows --
// extracted from StreamEngine's shard loop into a self-contained object so
// the engine can instantiate it at different granularities:
//
//  * classic / multi-producer mode: ONE pipeline per shard, fed ring blocks;
//  * rebalance mode: one pipeline per LOGICAL PARTITION, so a hot partition
//    can migrate between shard threads with its whole pipeline state (the
//    object is the unit of migration), and the output stays bit-identical
//    to the per-partition serial golden no matter where it ran.
//
// The pipeline is single-threaded by contract: exactly one thread calls its
// methods at a time.  Cross-thread handoff (rebalance migration) must
// establish a happens-before edge between the old and new owner (the engine
// uses an atomic mailbox).  Mutable observer state (ShardStats) is passed in
// per call, so counters always attribute to the HOST shard while the
// pipeline's own outputs (matches, revisions, per-query outcome counters)
// travel with the object.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cep/event_time.hpp"
#include "cep/incremental_matcher.hpp"
#include "cep/window.hpp"
#include "runtime/stream_engine.hpp"

namespace espice {

class DetPipeline {
 public:
  /// Per-query outcome counters (read by the engine's merge stage).
  struct QueryOutcome {
    std::uint64_t memberships = 0;
    std::uint64_t memberships_kept = 0;
    std::uint64_t shed_decisions = 0;
    std::uint64_t shed_drops = 0;
  };

  /// `queries` must outlive the pipeline (the engine's registered list).
  /// `shedders` are adopted, one slot per query (nullptr = keep all).
  /// `event_time` configures the late-event machinery; nullptr = off (the
  /// reorder stage itself stays with the shard loop -- only retained
  /// windows, revision and side-output state live here).
  DetPipeline(std::span<const EngineQuery> queries,
              std::vector<std::unique_ptr<Shedder>> shedders,
              const EventTimeConfig* event_time);

  DetPipeline(const DetPipeline&) = delete;
  DetPipeline& operator=(const DetPipeline&) = delete;

  /// One block-wise pass over an IN-ORDER run of data events: window
  /// routing, shedding, incremental matching, closed-window flush.
  void process_data_block(std::span<const Event> data, ShardStats& stats);

  /// Event-time close: closes time windows whose span ended at or before
  /// `ts` and flushes them.
  void advance_time_watermark(double ts, ShardStats& stats);

  /// Applies the configured late policy to a beyond-bound arrival.
  /// `watermark_seq` is the reorder stage's current watermark (recorded in
  /// side-output captures).
  void handle_late(const Event& e, std::uint64_t watermark_seq,
                   ShardStats& stats);

  /// End of substream: close every open window and flush.
  void close_all(ShardStats& stats);

  std::size_t query_count() const { return runtimes_.size(); }
  QueryOutcome outcome(std::size_t qi) const;

  // --- durability (checkpoint/restore) -----------------------------------
  /// Core pipeline state: window managers, matchers, shedders, per-query
  /// counters and emitted matches.
  void serialize_core(durability::SnapshotWriter& w);
  void restore_core(durability::SnapshotReader& r);
  /// Event-time extras (retained windows, side outputs, revisions); only
  /// valid when constructed with event_time.
  void serialize_event_time(durability::SnapshotWriter& w);
  void restore_event_time(durability::SnapshotReader& r);

  /// Per query, this pipeline's matches in local detection order.
  std::vector<std::vector<ComplexEvent>> query_matches;
  /// Event-time kRevise: per query, window re-emissions in local order.
  std::vector<std::vector<RevisionRecord>> query_revisions;
  /// Event-time kSideOutput: late captures in local arrival order.
  std::vector<SideOutputRecord> side_outputs;

 private:
  /// Per-query runtime state.  `bit` is the query's bit inside its window
  /// group's keep masks.
  struct QueryRuntime {
    explicit QueryRuntime(IncrementalMatcher m) : matcher(std::move(m)) {}
    IncrementalMatcher matcher;
    std::unique_ptr<Shedder> shedder;
    double predicted_ws = 0.0;
    std::size_t bit = 0;
    std::vector<KeptEntry> filter_scratch;
    std::uint64_t memberships = 0;
    std::uint64_t kept = 0;
  };

  /// Queries sharing identical windowing: one WindowManager per group.
  struct Group {
    WindowManager wm;
    std::vector<std::size_t> members;
    bool diverging;
    MatcherFeed feed;
  };

  void flush(Group& g, ShardStats& stats);
  WindowView retained_view_for(const RetainedWindow& rw,
                               const QueryRuntime& rt);

  std::span<const EngineQuery> queries_;
  std::vector<QueryRuntime> runtimes_;
  std::vector<Group> groups_;
  bool et_on_ = false;
  EventTimeConfig et_cfg_;
  bool retain_windows_ = false;
  std::vector<RetainedWindowStore> retained_;
  Window revise_scratch_;
  std::vector<std::uint32_t> pos_scratch_;   // one event's membership positions
  std::vector<std::uint64_t> bits_scratch_;  // per-query keep bitmaps
};

}  // namespace espice
