#include "runtime/shard_pipeline.hpp"

#include <string>

#include "common/error.hpp"
#include "core/espice_shedder.hpp"
#include "durability/serial.hpp"

namespace espice {

namespace {

void write_ce(durability::SnapshotWriter& w, const ComplexEvent& ce) {
  w.u64(ce.window);
  w.f64(ce.detection_ts);
  w.u64(ce.constituents.size());
  for (const Constituent& c : ce.constituents) {
    w.u32(c.element);
    w.u32(c.position);
    w.event(c.event);
  }
}

ComplexEvent read_ce(durability::SnapshotReader& r) {
  ComplexEvent ce;
  ce.window = static_cast<WindowId>(r.u64());
  ce.detection_ts = r.f64();
  const std::uint64_t n_cons = r.u64();
  for (std::uint64_t ci = 0; ci < n_cons; ++ci) {
    Constituent c;
    c.element = r.u32();
    c.position = r.u32();
    c.event = r.event();
    ce.constituents.push_back(std::move(c));
  }
  return ce;
}

}  // namespace

DetPipeline::DetPipeline(std::span<const EngineQuery> queries,
                         std::vector<std::unique_ptr<Shedder>> shedders,
                         const EventTimeConfig* event_time)
    : queries_(queries) {
  const std::size_t nq = queries.size();
  ESPICE_REQUIRE(shedders.size() == nq,
                 "pipeline needs one shedder slot per query");
  et_on_ = event_time != nullptr;
  if (et_on_) et_cfg_ = *event_time;

  query_matches.resize(nq);
  query_revisions.resize(nq);

  runtimes_.reserve(nq);
  for (std::size_t qi = 0; qi < nq; ++qi) {
    const EngineQuery& q = queries_[qi];
    QueryRuntime rt(IncrementalMatcher(q.query.pattern, q.query.selection,
                                       q.query.consumption,
                                       q.query.max_matches_per_window));
    rt.shedder = std::move(shedders[qi]);
    rt.predicted_ws = q.predicted_ws > 0.0
                          ? q.predicted_ws
                          : static_cast<double>(q.query.window.span_events);
    // Revisability hook: under kRevise, kept events can never force a
    // window revision later, so their utility gets the configured boost.
    // Applied before any restore (configuration, not state).
    if (et_on_ && et_cfg_.late_policy == LatePolicy::kRevise &&
        et_cfg_.revise_utility_boost != 0) {
      if (auto* es = dynamic_cast<EspiceShedder*>(rt.shedder.get())) {
        es->set_revise_boost(et_cfg_.revise_utility_boost);
      }
    }
    runtimes_.push_back(std::move(rt));
  }

  // Group queries by identical windowing: one WindowManager (and event
  // store) per group.  Masks are only tracked where queries actually
  // share, so the single-query hot path stays mask-free.
  std::vector<std::vector<std::size_t>> group_members;
  for (std::size_t qi = 0; qi < nq; ++qi) {
    bool placed = false;
    for (auto& members : group_members) {
      if (same_windowing(queries_[members.front()].query.window,
                         queries_[qi].query.window)) {
        runtimes_[qi].bit = members.size();
        members.push_back(qi);
        placed = true;
        break;
      }
    }
    if (!placed) {
      runtimes_[qi].bit = 0;
      group_members.push_back({qi});
    }
  }
  groups_.reserve(group_members.size());
  for (auto& members : group_members) {
    bool any_shedder = false;
    for (const std::size_t qi : members) {
      any_shedder = any_shedder || runtimes_[qi].shedder != nullptr;
    }
    // Keep sets can only diverge between member queries when at least one
    // of them sheds; an all-keep group needs no masks and no per-query
    // filtering (every query sees the full window).
    const bool diverging = members.size() > 1 && any_shedder;
    groups_.push_back(
        Group{WindowManager(queries_[members.front()].query.window,
                            /*track_masks=*/diverging),
              std::move(members), diverging, MatcherFeed{}});
  }
  // Wire the feeds only once every group sits at its final address.  A
  // group whose members all take the window scan (last selection,
  // negations, multi-match), or whose windows never overlap (tumbling),
  // skips the per-event feed bookkeeping.
  for (Group& g : groups_) {
    bool any_incremental = false;
    for (const std::size_t qi : g.members) {
      g.feed.add(&runtimes_[qi].matcher);
      any_incremental =
          any_incremental || runtimes_[qi].matcher.stream_incremental();
    }
    const WindowSpec& spec = queries_[g.members.front()].query.window;
    if (any_incremental && windows_can_overlap(spec)) {
      g.wm.set_kept_feed(&g.feed);
    }
  }

  // Side-output attribution and revision both need recently closed windows
  // kept around.
  retain_windows_ = et_on_ && et_cfg_.late_policy != LatePolicy::kDrop;
  if (retain_windows_) {
    retained_.reserve(groups_.size());
    for (const Group& g : groups_) {
      retained_.emplace_back(queries_[g.members.front()].query.window,
                             et_cfg_.revise_horizon_windows);
    }
  }

  pos_scratch_.reserve(64);
  bits_scratch_.reserve(16);
}

void DetPipeline::flush(Group& g, ShardStats& stats) {
  const std::size_t gi = static_cast<std::size_t>(&g - groups_.data());
  for (const WindowView& w : g.wm.drain_closed()) {
    ++stats.windows_closed;
    for (const std::size_t qi : g.members) {
      QueryRuntime& rt = runtimes_[qi];
      const WindowView view =
          g.diverging ? filter_view_for_query(w, rt.bit, rt.filter_scratch)
                      : w;
      auto matches = rt.matcher.finalize(view);
      for (auto& m : matches) {
        query_matches[qi].push_back(std::move(m));
      }
    }
    // Event-time side-output / revise: keep the closed window (and its
    // keep masks) within the retention horizon.
    if (retain_windows_) retained_[gi].retain(w);
  }
}

WindowView DetPipeline::retained_view_for(const RetainedWindow& rw,
                                          const QueryRuntime& rt) {
  // Per-query view of a retained (revised) window: the full kept list for
  // uniform groups, the query's masked subset otherwise.  The spliced late
  // event carries an all-ones mask, so every member query sees it.
  if (rw.masks.empty()) return rw.win.view();
  Window& scratch = revise_scratch_;
  scratch.id = rw.win.id;
  scratch.open_ts = rw.win.open_ts;
  scratch.open_seq = rw.win.open_seq;
  scratch.open_index = rw.win.open_index;
  scratch.arrivals = rw.win.arrivals;
  scratch.kept.clear();
  scratch.kept_pos.clear();
  for (std::size_t i = 0; i < rw.win.kept.size(); ++i) {
    if ((rw.masks[i] >> rt.bit) & 1) {
      scratch.kept.push_back(rw.win.kept[i]);
      scratch.kept_pos.push_back(rw.win.kept_pos[i]);
    }
  }
  return scratch.view();
}

void DetPipeline::handle_late(const Event& e, std::uint64_t watermark_seq,
                              ShardStats& stats) {
  // A late event never enters the stream: it is counted, side-channeled,
  // or spliced into retained windows -- which re-finalize through the
  // legacy matcher under a fresh revision tag.
  ++stats.late_events;
  switch (et_cfg_.late_policy) {
    case LatePolicy::kDrop:
      ++stats.late_dropped;
      break;
    case LatePolicy::kSideOutput: {
      SideOutputRecord rec;
      rec.event = e;
      rec.watermark_seq = watermark_seq;
      for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
        for (const std::size_t idx : retained_[gi].covering(e)) {
          rec.windows.push_back(retained_[gi].at(idx).win.id);
        }
      }
      side_outputs.push_back(std::move(rec));
      ++stats.late_side_output;
      break;
    }
    case LatePolicy::kRevise: {
      bool any = false;
      for (std::size_t gi = 0; gi < groups_.size(); ++gi) {
        Group& g = groups_[gi];
        for (const std::size_t idx : retained_[gi].covering(e)) {
          if (!retained_[gi].insert_event(idx, e)) continue;
          const RetainedWindow& rw = retained_[gi].at(idx);
          any = true;
          ++stats.revisions;
          for (const std::size_t qi : g.members) {
            QueryRuntime& rt = runtimes_[qi];
            RevisionRecord rec;
            rec.late_seq = e.seq;
            rec.window = rw.win.id;
            rec.revision = rw.revisions;
            // Revision bypasses shedding by design: the late event is
            // already paid for, and a revision exists to restore
            // accuracy, not to thin it.
            rec.matches = rt.matcher.rematch_window(retained_view_for(rw, rt));
            query_revisions[qi].push_back(std::move(rec));
          }
        }
      }
      // Beyond every retained horizon: nothing left to revise.
      if (!any) ++stats.late_dropped;
      break;
    }
  }
}

void DetPipeline::process_data_block(std::span<const Event> data,
                                     ShardStats& stats) {
  stats.events += data.size();
  auto positions_of = [this](const std::vector<WindowManager::Membership>& ms) {
    pos_scratch_.resize(ms.size());
    for (std::size_t i = 0; i < ms.size(); ++i) {
      pos_scratch_[i] = ms[i].position;
    }
  };
  for (Group& g : groups_) {
    if (g.members.size() == 1) {
      QueryRuntime& rt = runtimes_[g.members.front()];
      if (rt.shedder == nullptr) {
        // All-keep single query: the fully batched window path.
        const std::uint64_t kept = g.wm.offer_keep_all_block(data);
        rt.memberships += kept;
        rt.kept += kept;
        stats.memberships += kept;
        stats.memberships_kept += kept;
      } else {
        for (const Event& e : data) {
          auto& memberships = g.wm.offer(e);
          const std::size_t mcount = memberships.size();
          stats.memberships += mcount;
          rt.memberships += mcount;
          if (mcount == 0) continue;
          positions_of(memberships);
          bits_scratch_.resize(keep_bitmap_words(mcount));
          rt.shedder->score_block(e, pos_scratch_.data(), mcount,
                                  rt.predicted_ws, bits_scratch_.data());
          for (std::size_t i = 0; i < mcount; ++i) {
            if (keep_bit(bits_scratch_.data(), i)) {
              g.wm.keep(memberships[i], e);
              ++rt.kept;
              ++stats.memberships_kept;
            }
          }
        }
      }
    } else if (!g.diverging) {
      // Shared all-keep group: one mask-free batched pass covers every
      // member query.
      const std::uint64_t kept = g.wm.offer_keep_all_block(data);
      stats.memberships += kept;
      stats.memberships_kept += kept;
      for (const std::size_t qi : g.members) {
        runtimes_[qi].memberships += kept;
        runtimes_[qi].kept += kept;
      }
    } else {
      for (const Event& e : data) {
        auto& memberships = g.wm.offer(e);
        const std::size_t mcount = memberships.size();
        stats.memberships += mcount;
        if (mcount == 0) continue;
        positions_of(memberships);
        const std::size_t words = keep_bitmap_words(mcount);
        bits_scratch_.resize(words * g.members.size());
        for (std::size_t b = 0; b < g.members.size(); ++b) {
          QueryRuntime& rt = runtimes_[g.members[b]];
          rt.memberships += mcount;
          std::uint64_t* bits = bits_scratch_.data() + b * words;
          if (rt.shedder == nullptr) {
            for (std::size_t w = 0; w < words; ++w) bits[w] = ~0ULL;
            rt.kept += mcount;
          } else {
            rt.shedder->score_block(e, pos_scratch_.data(), mcount,
                                    rt.predicted_ws, bits);
            std::uint64_t kept = 0;
            for (std::size_t i = 0; i < mcount; ++i) {
              kept += keep_bit(bits, i);
            }
            rt.kept += kept;
          }
        }
        // Transpose the per-query bitmaps into per-membership masks.
        for (std::size_t i = 0; i < mcount; ++i) {
          QueryMask mask = 0;
          for (std::size_t b = 0; b < g.members.size(); ++b) {
            if (keep_bit(bits_scratch_.data() + b * words, i)) {
              mask |= QueryMask{1} << runtimes_[g.members[b]].bit;
            }
          }
          // Every query shed it -> physical drop (never buffered).
          if (mask != 0) {
            g.wm.keep(memberships[i], e, mask);
            ++stats.memberships_kept;
          }
        }
      }
    }
    flush(g, stats);
  }
}

void DetPipeline::advance_time_watermark(double ts, ShardStats& stats) {
  for (Group& g : groups_) {
    g.wm.advance_time_watermark(ts);
    flush(g, stats);
  }
}

void DetPipeline::close_all(ShardStats& stats) {
  for (Group& g : groups_) {
    g.wm.close_all();
    flush(g, stats);
  }
}

DetPipeline::QueryOutcome DetPipeline::outcome(std::size_t qi) const {
  const QueryRuntime& rt = runtimes_[qi];
  QueryOutcome o;
  o.memberships = rt.memberships;
  o.memberships_kept = rt.kept;
  if (rt.shedder != nullptr) {
    o.shed_decisions = rt.shedder->decisions();
    o.shed_drops = rt.shedder->drops();
  }
  return o;
}

void DetPipeline::serialize_core(durability::SnapshotWriter& w) {
  for (Group& g : groups_) g.wm.serialize(w);
  for (std::size_t qi = 0; qi < runtimes_.size(); ++qi) {
    const QueryRuntime& rt = runtimes_[qi];
    rt.matcher.serialize(w);
    w.boolean(rt.shedder != nullptr);
    if (rt.shedder != nullptr) rt.shedder->serialize(w);
    w.u64(rt.memberships);
    w.u64(rt.kept);
    const auto& matches = query_matches[qi];
    w.u64(matches.size());
    for (const ComplexEvent& ce : matches) write_ce(w, ce);
  }
}

void DetPipeline::restore_core(durability::SnapshotReader& r) {
  for (Group& g : groups_) g.wm.restore(r);
  for (std::size_t qi = 0; qi < runtimes_.size(); ++qi) {
    QueryRuntime& rt = runtimes_[qi];
    rt.matcher.restore(r);
    const bool has_shedder = r.boolean();
    ESPICE_CHECK(has_shedder == (rt.shedder != nullptr),
                 ErrorCode::kCorruptSnapshot,
                 "snapshot shedder presence does not match the engine's "
                 "query configuration");
    if (rt.shedder != nullptr) rt.shedder->restore(r);
    rt.memberships = r.u64();
    rt.kept = r.u64();
    const std::uint64_t n_matches = r.u64();
    auto& matches = query_matches[qi];
    matches.clear();
    for (std::uint64_t m = 0; m < n_matches; ++m) {
      matches.push_back(read_ce(r));
    }
  }
}

void DetPipeline::serialize_event_time(durability::SnapshotWriter& w) {
  if (retain_windows_) {
    for (const RetainedWindowStore& rs : retained_) rs.serialize(w);
  }
  w.size(side_outputs.size());
  for (const SideOutputRecord& so : side_outputs) {
    w.event(so.event);
    w.u64(so.watermark_seq);
    w.vec_int(so.windows);
  }
  for (std::size_t qi = 0; qi < runtimes_.size(); ++qi) {
    const auto& revs = query_revisions[qi];
    w.size(revs.size());
    for (const RevisionRecord& rec : revs) {
      w.u64(rec.late_seq);
      w.u64(rec.window);
      w.u64(rec.revision);
      w.u64(rec.matches.size());
      for (const ComplexEvent& ce : rec.matches) write_ce(w, ce);
    }
  }
}

void DetPipeline::restore_event_time(durability::SnapshotReader& r) {
  if (retain_windows_) {
    for (RetainedWindowStore& rs : retained_) rs.restore(r);
  }
  const std::size_t n_so = r.size();
  side_outputs.clear();
  for (std::size_t i = 0; i < n_so; ++i) {
    SideOutputRecord so;
    so.event = r.event();
    so.watermark_seq = r.u64();
    so.windows = r.vec_int<WindowId>();
    side_outputs.push_back(std::move(so));
  }
  for (std::size_t qi = 0; qi < runtimes_.size(); ++qi) {
    auto& revs = query_revisions[qi];
    revs.clear();
    const std::size_t n_revs = r.size();
    for (std::size_t i = 0; i < n_revs; ++i) {
      RevisionRecord rec;
      rec.late_seq = r.u64();
      rec.window = r.u64();
      rec.revision = r.u64();
      const std::uint64_t nm = r.u64();
      for (std::uint64_t m = 0; m < nm; ++m) {
        rec.matches.push_back(read_ce(r));
      }
      revs.push_back(std::move(rec));
    }
  }
}

}  // namespace espice
