#include "datasets/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace espice {

void write_events_csv(std::ostream& out, const std::vector<Event>& events,
                      const TypeRegistry& registry) {
  out << "type,seq,ts,value,aux\n";
  for (const Event& e : events) {
    out << registry.name_of(e.type) << ',' << e.seq << ',' << e.ts << ','
        << e.value << ',' << e.aux << '\n';
  }
}

std::vector<Event> read_events_csv(std::istream& in, TypeRegistry& registry) {
  std::vector<Event> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line_no == 1 && line.rfind("type,", 0) == 0) continue;  // header
    std::istringstream row(line);
    std::string field;
    Event e;
    auto next = [&](const char* what) {
      ESPICE_REQUIRE(std::getline(row, field, ','),
                     "CSV row " + std::to_string(line_no) + ": missing " + what);
      return field;
    };
    try {
      e.type = registry.intern(next("type"));
      e.seq = std::stoull(next("seq"));
      e.ts = std::stod(next("ts"));
      e.value = std::stod(next("value"));
      e.aux = std::stod(next("aux"));
    } catch (const std::invalid_argument&) {
      throw ConfigError("CSV row " + std::to_string(line_no) +
                        ": malformed numeric field '" + field + "'");
    } catch (const std::out_of_range&) {
      throw ConfigError("CSV row " + std::to_string(line_no) +
                        ": numeric field out of range '" + field + "'");
    }
    events.push_back(e);
  }
  return events;
}

void save_events_csv(const std::string& path, const std::vector<Event>& events,
                     const TypeRegistry& registry) {
  std::ofstream out(path);
  ESPICE_REQUIRE(out.good(), "cannot open for writing: " + path);
  write_events_csv(out, events, registry);
  ESPICE_REQUIRE(out.good(), "write failed: " + path);
}

std::vector<Event> load_events_csv(const std::string& path,
                                   TypeRegistry& registry) {
  std::ifstream in(path);
  ESPICE_REQUIRE(in.good(), "cannot open for reading: " + path);
  return read_events_csv(in, registry);
}

}  // namespace espice
