#include "datasets/csv.hpp"

#include <fstream>
#include <sstream>

#include "cep/event_time.hpp"
#include "common/error.hpp"
#include "durability/io_env.hpp"

namespace espice {

namespace {

/// Parses one data line into `e` (type interned only on full success, so a
/// bad row never pollutes the registry).  Throws Error{kBadRow} naming the
/// line on any malformation.
Event parse_row(const std::string& line, std::size_t line_no,
                TypeRegistry& registry) {
  std::istringstream row(line);
  std::string field;
  auto next = [&](const char* what) {
    ESPICE_CHECK(static_cast<bool>(std::getline(row, field, ',')),
                 ErrorCode::kBadRow,
                 "CSV row " + std::to_string(line_no) + ": missing " + what);
    return field;
  };
  // Numeric fields must parse in full: "1.5x" is malformed data, not 1.5.
  auto whole = [&](std::size_t consumed) {
    ESPICE_CHECK(consumed == field.size(), ErrorCode::kBadRow,
                 "CSV row " + std::to_string(line_no) +
                     ": trailing garbage in numeric field '" + field + "'");
  };
  Event e;
  std::string type_name;
  try {
    std::size_t pos = 0;
    type_name = next("type");
    e.seq = std::stoull(next("seq"), &pos);
    whole(pos);
    e.ts = std::stod(next("ts"), &pos);
    whole(pos);
    e.value = std::stod(next("value"), &pos);
    whole(pos);
    e.aux = std::stod(next("aux"), &pos);
    whole(pos);
  } catch (const std::invalid_argument&) {
    throw Error(ErrorCode::kBadRow, "CSV row " + std::to_string(line_no) +
                                        ": malformed numeric field '" + field +
                                        "'");
  } catch (const std::out_of_range&) {
    throw Error(ErrorCode::kBadRow, "CSV row " + std::to_string(line_no) +
                                        ": numeric field out of range '" +
                                        field + "'");
  }
  ESPICE_CHECK(!std::getline(row, field, ','), ErrorCode::kBadRow,
               "CSV row " + std::to_string(line_no) + ": extra fields after "
               "aux");
  e.type = registry.intern(type_name);
  return e;
}

}  // namespace

void write_events_csv(std::ostream& out, const std::vector<Event>& events,
                      const TypeRegistry& registry) {
  out << "type,seq,ts,value,aux\n";
  for (const Event& e : events) {
    out << registry.name_of(e.type) << ',' << e.seq << ',' << e.ts << ','
        << e.value << ',' << e.aux << '\n';
  }
}

CsvReadResult read_events_csv(std::istream& in, TypeRegistry& registry,
                              const CsvReadOptions& options) {
  CsvReadResult result;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    if (line.empty()) continue;
    if (line_no == 1 && line.rfind("type,", 0) == 0) continue;  // header
    try {
      result.events.push_back(parse_row(line, line_no, registry));
    } catch (const Error& err) {
      if (options.on_bad_row == BadRowPolicy::kFail) throw;
      ++result.bad_rows;
      result.errors.push_back(err.what());
      if (options.on_bad_row == BadRowPolicy::kStop) {
        result.stopped_early = true;
        break;
      }
    }
  }
  if (options.require_stream_order) validate_stream_order(result.events);
  result.max_disorder = measure_disorder(result.events);
  return result;
}

std::vector<Event> read_events_csv(std::istream& in, TypeRegistry& registry,
                                   bool require_stream_order) {
  CsvReadOptions options;
  options.require_stream_order = require_stream_order;
  return read_events_csv(in, registry, options).events;
}

void validate_stream_order(const std::vector<Event>& events) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    ESPICE_REQUIRE(events[i].seq > events[i - 1].seq,
                   "stream order violated at index " + std::to_string(i) +
                       ": seq " + std::to_string(events[i].seq) +
                       " after seq " + std::to_string(events[i - 1].seq));
    ESPICE_REQUIRE(events[i].ts >= events[i - 1].ts,
                   "stream order violated at index " + std::to_string(i) +
                       ": timestamp moved backwards");
  }
}

void save_events_csv(const std::string& path, const std::vector<Event>& events,
                     const TypeRegistry& registry) {
  std::ofstream out(path);
  ESPICE_CHECK(out.good(), ErrorCode::kIo, "cannot open for writing: " + path);
  write_events_csv(out, events, registry);
  ESPICE_CHECK(out.good(), ErrorCode::kIo, "write failed: " + path);
}

namespace {

/// Zero-copy istream over the whole-file buffer read through the IoEnv
/// seam -- parsing views the bytes in place instead of duplicating them
/// into a string and again into an istringstream.
class MemBuf : public std::streambuf {
 public:
  explicit MemBuf(std::vector<char>& bytes) {
    setg(bytes.data(), bytes.data(), bytes.data() + bytes.size());
  }
};

}  // namespace

// File reads go through the IoEnv seam (durability::read_file_bytes) so an
// injected open/read failure surfaces as a typed Error{kIo} -- an I/O fault
// mid-read is NOT a bad row, so on_bad_row never swallows it (see
// tests/datasets/csv_io_fault_test.cpp).
CsvReadResult load_events_csv(const std::string& path, TypeRegistry& registry,
                              const CsvReadOptions& options) {
  std::vector<char> bytes =
      durability::read_file_bytes("csv.open", "csv.read", path);
  MemBuf buf(bytes);
  std::istream in(&buf);
  return read_events_csv(in, registry, options);
}

std::vector<Event> load_events_csv(const std::string& path,
                                   TypeRegistry& registry,
                                   bool require_stream_order) {
  std::vector<char> bytes =
      durability::read_file_bytes("csv.open", "csv.read", path);
  MemBuf buf(bytes);
  std::istream in(&buf);
  return read_events_csv(in, registry, require_stream_order);
}

}  // namespace espice
