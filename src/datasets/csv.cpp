#include "datasets/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace espice {

void write_events_csv(std::ostream& out, const std::vector<Event>& events,
                      const TypeRegistry& registry) {
  out << "type,seq,ts,value,aux\n";
  for (const Event& e : events) {
    out << registry.name_of(e.type) << ',' << e.seq << ',' << e.ts << ','
        << e.value << ',' << e.aux << '\n';
  }
}

std::vector<Event> read_events_csv(std::istream& in, TypeRegistry& registry,
                                   bool require_stream_order) {
  std::vector<Event> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();  // CRLF input
    if (line.empty()) continue;
    if (line_no == 1 && line.rfind("type,", 0) == 0) continue;  // header
    std::istringstream row(line);
    std::string field;
    Event e;
    auto next = [&](const char* what) {
      ESPICE_REQUIRE(std::getline(row, field, ','),
                     "CSV row " + std::to_string(line_no) + ": missing " + what);
      return field;
    };
    // Numeric fields must parse in full: "1.5x" is malformed data, not 1.5.
    auto whole = [&](std::size_t consumed) {
      ESPICE_REQUIRE(consumed == field.size(),
                     "CSV row " + std::to_string(line_no) +
                         ": trailing garbage in numeric field '" + field + "'");
    };
    try {
      std::size_t pos = 0;
      e.type = registry.intern(next("type"));
      e.seq = std::stoull(next("seq"), &pos);
      whole(pos);
      e.ts = std::stod(next("ts"), &pos);
      whole(pos);
      e.value = std::stod(next("value"), &pos);
      whole(pos);
      e.aux = std::stod(next("aux"), &pos);
      whole(pos);
    } catch (const std::invalid_argument&) {
      throw ConfigError("CSV row " + std::to_string(line_no) +
                        ": malformed numeric field '" + field + "'");
    } catch (const std::out_of_range&) {
      throw ConfigError("CSV row " + std::to_string(line_no) +
                        ": numeric field out of range '" + field + "'");
    }
    ESPICE_REQUIRE(!std::getline(row, field, ','),
                   "CSV row " + std::to_string(line_no) +
                       ": extra fields after aux");
    events.push_back(e);
  }
  if (require_stream_order) validate_stream_order(events);
  return events;
}

void validate_stream_order(const std::vector<Event>& events) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    ESPICE_REQUIRE(events[i].seq > events[i - 1].seq,
                   "stream order violated at index " + std::to_string(i) +
                       ": seq " + std::to_string(events[i].seq) +
                       " after seq " + std::to_string(events[i - 1].seq));
    ESPICE_REQUIRE(events[i].ts >= events[i - 1].ts,
                   "stream order violated at index " + std::to_string(i) +
                       ": timestamp moved backwards");
  }
}

void save_events_csv(const std::string& path, const std::vector<Event>& events,
                     const TypeRegistry& registry) {
  std::ofstream out(path);
  ESPICE_REQUIRE(out.good(), "cannot open for writing: " + path);
  write_events_csv(out, events, registry);
  ESPICE_REQUIRE(out.good(), "write failed: " + path);
}

std::vector<Event> load_events_csv(const std::string& path,
                                   TypeRegistry& registry,
                                   bool require_stream_order) {
  std::ifstream in(path);
  ESPICE_REQUIRE(in.good(), "cannot open for reading: " + path);
  return read_events_csv(in, registry, require_stream_order);
}

}  // namespace espice
