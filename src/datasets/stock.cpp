#include "datasets/stock.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>

namespace espice {

StockGenerator::StockGenerator(StockConfig config, TypeRegistry& registry)
    : config_(config), rng_(config.seed) {
  config_.validate();
  leader_of_.resize(config_.num_symbols);
  lag_of_.resize(config_.num_symbols, 0.0);
  char name[32];
  for (std::size_t s = 0; s < config_.num_symbols; ++s) {
    std::snprintf(name, sizeof(name), "S%03zu", s);
    const EventTypeId id = registry.intern(name);
    ESPICE_ASSERT(id == s, "stock symbols must own a fresh id space");
  }
  for (std::size_t s = 0; s < config_.num_leaders; ++s) {
    leaders_.push_back(static_cast<EventTypeId>(s));
    leader_of_[s] = static_cast<EventTypeId>(s);
  }
  leader_state_.resize(config_.num_leaders);
  offset_of_.resize(config_.num_symbols, 0.0);
  hot_.resize(config_.num_symbols, false);
  for (std::size_t s = 0; s < config_.num_leaders; ++s) {
    // Leaders quote at the start of each period (they "set the tone").
    offset_of_[s] = rng_.uniform(0.0, 3.0);
  }
  for (std::size_t s = config_.num_leaders; s < config_.num_symbols; ++s) {
    leader_of_[s] =
        static_cast<EventTypeId>((s - config_.num_leaders) % config_.num_leaders);
    lag_of_[s] = rng_.uniform(config_.min_lag_seconds, config_.max_lag_seconds);
    // A follower reacting l seconds after the leader also *quotes* about l
    // seconds into the period.
    offset_of_[s] = std::min(lag_of_[s], config_.quote_period_seconds - 1.0);
  }
  // Mark the smallest-lag followers of every leader as hot (liquid).
  for (std::size_t l = 0; l < config_.num_leaders; ++l) {
    std::vector<EventTypeId> followers;
    for (std::size_t s = config_.num_leaders; s < config_.num_symbols; ++s) {
      if (leader_of_[s] == l) followers.push_back(static_cast<EventTypeId>(s));
    }
    std::sort(followers.begin(), followers.end(),
              [&](EventTypeId a, EventTypeId b) {
                if (lag_of_[a] != lag_of_[b]) return lag_of_[a] < lag_of_[b];
                return a < b;
              });
    const std::size_t hot_count =
        std::min(config_.hot_followers_per_leader, followers.size());
    for (std::size_t i = 0; i < hot_count; ++i) hot_[followers[i]] = true;
  }
  quotes_per_period_ = config_.num_symbols;
  for (std::size_t s = 0; s < config_.num_symbols; ++s) {
    if (hot_[s]) quotes_per_period_ += config_.hot_quotes_per_period - 1;
  }
}

bool StockGenerator::is_hot(EventTypeId symbol) const {
  ESPICE_ASSERT(symbol < hot_.size(), "unknown symbol");
  return hot_[symbol];
}

std::vector<EventTypeId> StockGenerator::sequence_symbols(EventTypeId leader,
                                                          std::size_t k) const {
  std::vector<EventTypeId> followers;
  for (std::size_t s = config_.num_leaders; s < config_.num_symbols; ++s) {
    if (leader_of_[s] == leader && !hot_[s]) {
      followers.push_back(static_cast<EventTypeId>(s));
    }
  }
  std::sort(followers.begin(), followers.end(),
            [&](EventTypeId a, EventTypeId b) {
              if (lag_of_[a] != lag_of_[b]) return lag_of_[a] < lag_of_[b];
              return a < b;
            });
  ESPICE_REQUIRE(followers.size() >= k,
                 "leader has fewer non-hot followers than requested");
  if (k == 0) return {};
  // Evenly spread picks over the lag range: maximizes the lag separation
  // between consecutive sequence elements.
  std::vector<EventTypeId> out;
  out.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t idx =
        k == 1 ? 0 : i * (followers.size() - 1) / (k - 1);
    out.push_back(followers[idx]);
  }
  return out;
}

std::vector<EventTypeId> StockGenerator::repetition_symbols(
    EventTypeId leader, std::size_t k) const {
  std::vector<EventTypeId> hot_followers;
  for (std::size_t s = config_.num_leaders; s < config_.num_symbols; ++s) {
    if (leader_of_[s] == leader && hot_[s]) {
      hot_followers.push_back(static_cast<EventTypeId>(s));
    }
  }
  std::sort(hot_followers.begin(), hot_followers.end(),
            [&](EventTypeId a, EventTypeId b) {
              if (lag_of_[a] != lag_of_[b]) return lag_of_[a] < lag_of_[b];
              return a < b;
            });
  ESPICE_REQUIRE(hot_followers.size() >= k,
                 "leader has fewer hot followers than requested");
  hot_followers.resize(k);
  return hot_followers;
}

std::vector<EventTypeId> StockGenerator::followers_in_lag_order(
    EventTypeId leader, std::size_t k) const {
  std::vector<EventTypeId> followers;
  for (std::size_t s = config_.num_leaders; s < config_.num_symbols; ++s) {
    if (leader_of_[s] == leader) followers.push_back(static_cast<EventTypeId>(s));
  }
  std::sort(followers.begin(), followers.end(),
            [&](EventTypeId a, EventTypeId b) {
              if (lag_of_[a] != lag_of_[b]) return lag_of_[a] < lag_of_[b];
              return a < b;
            });
  ESPICE_REQUIRE(followers.size() >= k, "leader has fewer followers than requested");
  followers.resize(k);
  return followers;
}

double StockGenerator::lag_of(EventTypeId symbol) const {
  ESPICE_ASSERT(symbol < lag_of_.size(), "unknown symbol");
  return lag_of_[symbol];
}

EventTypeId StockGenerator::leader_of(EventTypeId symbol) const {
  ESPICE_ASSERT(symbol < leader_of_.size(), "unknown symbol");
  return leader_of_[symbol];
}

std::vector<Event> StockGenerator::generate(std::size_t count) {
  std::vector<Event> out;
  out.reserve(count);
  if (moves_.empty()) moves_.resize(config_.num_leaders);
  const double horizon = config_.max_lag_seconds + config_.hold_seconds;

  std::vector<std::pair<double, EventTypeId>> batch;
  batch.reserve(config_.num_symbols);

  for (;;) {
    // Hand out buffered events first: a previous call that stopped
    // mid-period left its tail here.
    while (pending_pos_ < pending_.size() && out.size() < count) {
      out.push_back(pending_[pending_pos_++]);
    }
    if (out.size() == count) return out;
    pending_.clear();
    pending_pos_ = 0;
    // Schedule quotes around each symbol's fixed intra-period offset; hot
    // symbols tick several times per period, spread after their reaction.
    batch.clear();
    for (std::size_t s = 0; s < config_.num_symbols; ++s) {
      const std::size_t quotes = hot_[s] ? config_.hot_quotes_per_period : 1;
      const double spacing =
          quotes > 1
              ? (config_.quote_period_seconds - offset_of_[s]) /
                    static_cast<double>(quotes)
              : 0.0;
      for (std::size_t q = 0; q < quotes; ++q) {
        const double jitter = rng_.uniform(-config_.quote_jitter_seconds,
                                           config_.quote_jitter_seconds);
        const double offset =
            std::clamp(offset_of_[s] + spacing * static_cast<double>(q) + jitter,
                       0.0, config_.quote_period_seconds - 1e-6);
        batch.emplace_back(clock_ + offset, static_cast<EventTypeId>(s));
      }
    }
    std::sort(batch.begin(), batch.end());
    clock_ += config_.quote_period_seconds;

    for (const auto& [ts, symbol] : batch) {
      int direction;
      if (symbol < config_.num_leaders) {
        LeaderState& st = leader_state_[symbol];
        if (rng_.bernoulli(config_.leader_flip_probability)) {
          st.direction = -st.direction;
        }
        st.last_move_ts = ts;
        direction = st.direction;
        auto& dq = moves_[symbol];
        dq.push_back(Move{ts, direction});
        while (!dq.empty() && dq.front().ts < ts - horizon) dq.pop_front();
      } else {
        // Follower: find the latest leader move whose influence interval
        // [move.ts + lag, move.ts + lag + hold) covers this quote.
        const EventTypeId leader = leader_of_[symbol];
        const double lag = lag_of_[symbol];
        const Move* influencing = nullptr;
        for (const Move& mv : moves_[leader]) {
          if (ts >= mv.ts + lag && ts < mv.ts + lag + config_.hold_seconds) {
            influencing = &mv;  // later moves override earlier ones
          }
        }
        if (influencing != nullptr && rng_.bernoulli(config_.follow_probability)) {
          direction = influencing->direction;
        } else {
          direction =
              rng_.bernoulli(config_.baseline_rise_probability) ? +1 : -1;
        }
      }

      Event e;
      e.type = symbol;
      e.seq = next_seq_++;
      e.ts = ts;
      e.value = static_cast<double>(direction) * rng_.uniform(0.05, 1.0);
      pending_.push_back(e);
    }
  }
}

}  // namespace espice
