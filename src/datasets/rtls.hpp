// Synthetic RTLS (real-time locating system) soccer stream.
//
// Substitute for the DEBS'13 grand-challenge dataset the paper uses (sensor
// events filtered to one event per object per second, ~46 objects -> a 15 s
// window holds ~700 events).  Q1's man-marking pattern needs one property of
// that data: when a striker possesses the ball, his marking defenders start
// defending within a short reaction lag.  The generator reproduces it:
//
//  * 2 strikers, `num_defenders` defenders, `num_others` other objects; each
//    object emits exactly one event per second (jittered sub-second offsets),
//  * possession episodes alternate between strikers: exponential gaps,
//    uniform durations; during an episode the possessing striker's events
//    carry value +1 (idle strikers carry -1),
//  * each striker has `markers_per_striker` assigned defenders; with
//    probability `marker_response` per episode a marker starts defending
//    after a per-defender reaction lag of 1..max_reaction_lag seconds and
//    stops at episode end,
//  * defender events carry value = defend intensity: positive while
//    defending, negative otherwise, so "defend event" is simply a rising
//    (value > 0) DF event.  Unassigned defenders defend at random with a
//    small `noise_defend_probability` per second.
#pragma once

#include <cstdint>
#include <vector>

#include "cep/event.hpp"
#include "cep/type_registry.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace espice {

struct RtlsConfig {
  std::size_t num_defenders = 20;
  std::size_t num_others = 4;
  std::size_t markers_per_striker = 7;
  double possession_gap_mean_seconds = 10.0;
  double possession_min_seconds = 5.0;
  double possession_max_seconds = 15.0;
  double max_reaction_lag_seconds = 5.0;
  double marker_response = 0.9;
  double noise_defend_probability = 0.03;
  std::uint64_t seed = 2;

  void validate() const {
    ESPICE_REQUIRE(markers_per_striker * 2 <= num_defenders,
                   "markers must fit into the defender universe");
    ESPICE_REQUIRE(possession_min_seconds > 0.0 &&
                       possession_min_seconds <= possession_max_seconds,
                   "invalid possession duration range");
    ESPICE_REQUIRE(possession_gap_mean_seconds > 0.0, "invalid possession gap");
  }
};

class RtlsGenerator {
 public:
  /// Registers types: STR0, STR1, DF00.., OBJ00.. in `registry`.
  RtlsGenerator(RtlsConfig config, TypeRegistry& registry);

  std::vector<Event> generate(std::size_t count);

  const std::vector<EventTypeId>& striker_types() const { return strikers_; }
  const std::vector<EventTypeId>& defender_types() const { return defenders_; }
  /// Markers assigned to striker `s` (s in {0, 1}).
  const std::vector<EventTypeId>& markers_of(std::size_t s) const {
    ESPICE_ASSERT(s < 2, "striker index out of range");
    return markers_[s];
  }
  /// Total objects == events per second.
  std::size_t objects() const { return 2 + config_.num_defenders + config_.num_others; }
  double aggregate_rate() const { return static_cast<double>(objects()); }
  const RtlsConfig& config() const { return config_; }

 private:
  RtlsConfig config_;
  Rng rng_;
  std::vector<EventTypeId> strikers_;
  std::vector<EventTypeId> defenders_;
  std::vector<EventTypeId> others_;
  std::vector<std::vector<EventTypeId>> markers_;  // [striker] -> defender ids
  std::uint64_t next_seq_ = 0;
  double clock_ = 0.0;

  struct Episode {
    std::size_t striker = 0;
    double start = 0.0;
    double end = 0.0;
    // Per assigned marker: defend start (episode start + reaction lag), or
    // a negative value if the marker does not respond this episode.
    std::vector<double> marker_start;
  };
  Episode episode_;
  bool episode_active_ = false;
  double next_episode_start_ = 0.0;
  std::size_t next_striker_ = 0;

  /// Whole one-second slots are generated at once; events past the
  /// requested count wait here for the next generate() call instead of
  /// being discarded (batched generation equals one long run).
  std::vector<Event> pending_;
  std::size_t pending_pos_ = 0;

  void roll_episode();
};

}  // namespace espice
