// CSV persistence for event streams.
//
// Lets users export the synthetic datasets, inspect them, and replay real
// data from disk (the library is dataset-agnostic: any CSV with the right
// columns can drive the operator).  Format, one event per line:
//   type_name,seq,ts,value,aux
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cep/event.hpp"
#include "cep/type_registry.hpp"

namespace espice {

/// Writes `events` to `out` using names from `registry`.
void write_events_csv(std::ostream& out, const std::vector<Event>& events,
                      const TypeRegistry& registry);

/// Reads events, interning unseen type names into `registry`.
/// Throws ConfigError on malformed rows.
std::vector<Event> read_events_csv(std::istream& in, TypeRegistry& registry);

/// File-path convenience wrappers; throw ConfigError on I/O failure.
void save_events_csv(const std::string& path, const std::vector<Event>& events,
                     const TypeRegistry& registry);
std::vector<Event> load_events_csv(const std::string& path,
                                   TypeRegistry& registry);

}  // namespace espice
