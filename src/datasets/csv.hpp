// CSV persistence for event streams.
//
// Lets users export the synthetic datasets, inspect them, and replay real
// data from disk (the library is dataset-agnostic: any CSV with the right
// columns can drive the operator).  Format, one event per line:
//   type_name,seq,ts,value,aux
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cep/event.hpp"
#include "cep/type_registry.hpp"

namespace espice {

/// Writes `events` to `out` using names from `registry`.
void write_events_csv(std::ostream& out, const std::vector<Event>& events,
                      const TypeRegistry& registry);

/// What to do with a malformed row (wrong column count, non-parsing or
/// trailing-garbage numeric field, truncated final line).
enum class BadRowPolicy : std::uint8_t {
  kFail,  ///< throw espice::Error{kBadRow} naming the first bad row
  kSkip,  ///< drop the row, count it, keep reading
  kStop,  ///< stop at the bad row; everything before it is returned
};

struct CsvReadOptions {
  BadRowPolicy on_bad_row = BadRowPolicy::kFail;
  /// Enforce the Event stream contract on the loaded events (strictly
  /// increasing seq, non-decreasing ts); violations throw ConfigError --
  /// out-of-order data fails fast instead of silently corrupting windowing
  /// downstream.  Leave false for disordered captures and use the measured
  /// `CsvReadResult::max_disorder` to size the engine's event-time
  /// disorder bound instead (see cep/event_time.hpp).
  bool require_stream_order = false;
};

struct CsvReadResult {
  std::vector<Event> events;
  /// Malformed rows encountered (skipped under kSkip; 1 under kStop when it
  /// stopped early; always 0 under kFail, which throws instead).
  std::uint64_t bad_rows = 0;
  /// One human-readable message per bad row, in file order.
  std::vector<std::string> errors;
  /// kStop only: a bad row ended the read before end-of-stream.
  bool stopped_early = false;
  /// Measured disorder of the loaded stream in file order: the maximum
  /// lateness max(seq seen so far - e.seq) over all events (see
  /// measure_disorder() in cep/event_time.hpp).  0 for in-order files.
  /// An engine with disorder_bound >= max_disorder replays this file
  /// with zero late events.
  std::uint64_t max_disorder = 0;
};

/// Reads events, interning unseen type names into `registry` (a row's type
/// is only interned once the whole row parsed, so bad rows never pollute
/// the registry).  Rows must have exactly the five columns; numeric fields
/// must parse completely (trailing garbage is an error, so "1.5x" is
/// rejected rather than read as 1.5).  Windows line endings are accepted.
/// Malformed rows are handled per `options.on_bad_row`.
CsvReadResult read_events_csv(std::istream& in, TypeRegistry& registry,
                              const CsvReadOptions& options);

/// Legacy strict wrapper: BadRowPolicy::kFail, returns just the events.
std::vector<Event> read_events_csv(std::istream& in, TypeRegistry& registry,
                                   bool require_stream_order = false);

/// Checks the Event stream contract (strictly increasing seq, monotone
/// non-decreasing ts); throws ConfigError naming the first offending index.
void validate_stream_order(const std::vector<Event>& events);

/// File-path convenience wrappers; throw espice::Error{kIo} on I/O failure.
void save_events_csv(const std::string& path, const std::vector<Event>& events,
                     const TypeRegistry& registry);
CsvReadResult load_events_csv(const std::string& path, TypeRegistry& registry,
                              const CsvReadOptions& options);
std::vector<Event> load_events_csv(const std::string& path,
                                   TypeRegistry& registry,
                                   bool require_stream_order = false);

}  // namespace espice
