// CSV persistence for event streams.
//
// Lets users export the synthetic datasets, inspect them, and replay real
// data from disk (the library is dataset-agnostic: any CSV with the right
// columns can drive the operator).  Format, one event per line:
//   type_name,seq,ts,value,aux
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cep/event.hpp"
#include "cep/type_registry.hpp"

namespace espice {

/// Writes `events` to `out` using names from `registry`.
void write_events_csv(std::ostream& out, const std::vector<Event>& events,
                      const TypeRegistry& registry);

/// Reads events, interning unseen type names into `registry`.  Rows must
/// have exactly the five columns; numeric fields must parse completely
/// (trailing garbage is an error, so "1.5x" is rejected rather than read as
/// 1.5).  Windows line endings are accepted.  Throws ConfigError on
/// malformed rows.  With `require_stream_order`, the loaded stream must
/// satisfy the Event contract (strictly increasing seq, non-decreasing ts)
/// -- out-of-order data fails fast instead of silently corrupting
/// windowing downstream.
std::vector<Event> read_events_csv(std::istream& in, TypeRegistry& registry,
                                   bool require_stream_order = false);

/// Checks the Event stream contract (strictly increasing seq, monotone
/// non-decreasing ts); throws ConfigError naming the first offending index.
void validate_stream_order(const std::vector<Event>& events);

/// File-path convenience wrappers; throw ConfigError on I/O failure.
void save_events_csv(const std::string& path, const std::vector<Event>& events,
                     const TypeRegistry& registry);
std::vector<Event> load_events_csv(const std::string& path,
                                   TypeRegistry& registry,
                                   bool require_stream_order = false);

}  // namespace espice
