// Synthetic NYSE-style stock quote stream.
//
// Substitute for the paper's Google-Finance intraday dataset (500 symbols,
// one quote per symbol per minute).  What eSPICE exploits in that data is
// the correlation between a *leading* symbol's move and follower symbols'
// moves at bounded lags -- exactly the structure Q2/Q3/Q4 query.  The
// generator reproduces it explicitly:
//
//  * `num_symbols` symbols each emit one quote per simulated minute, at
//    jittered offsets within the minute (aggregate rate ~ num_symbols/60 Hz),
//  * the first `num_leaders` symbols are leaders ("technology blue chips");
//    each leader's quote direction is a persistent random walk,
//  * every follower symbol is influenced by one leader: after a leader move
//    at time t, the follower copies the leader's direction with probability
//    `follow_probability` for quotes in [t + lag, t + lag + hold_seconds),
//  * follower lags are deterministic per symbol and spread over
//    [min_lag, max_lag], so "who reacts when" is learnable from positions,
//  * quote *timing* reflects the reaction structure: a leader quotes at the
//    start of each period, a follower with lag l quotes ~l seconds into the
//    period (with per-quote jitter).  This mirrors per-minute quote feeds
//    with per-symbol schedules and gives the stream the stable
//    type-at-relative-position structure that eSPICE's utility model (and
//    Q3/Q4's lag-ordered sequences) rely on,
//  * quotes not under leader influence move with `baseline_rise_probability`.
//
// Event encoding: type = symbol id, value = price change (sign = direction).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "cep/event.hpp"
#include "cep/type_registry.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace espice {

struct StockConfig {
  std::size_t num_symbols = 500;
  std::size_t num_leaders = 5;
  double quote_period_seconds = 60.0;  ///< one quote per symbol per period
  double follow_probability = 0.95;
  double min_lag_seconds = 5.0;
  double max_lag_seconds = 60.0;
  double hold_seconds = 150.0;  ///< how long a leader move influences a follower
  /// Rising probability of an *uninfluenced* quote.  Below 0.5 so that
  /// correlated follower reactions stand out against background noise.
  double baseline_rise_probability = 0.3;
  /// Per-quote timing jitter around the symbol's fixed intra-period offset.
  double quote_jitter_seconds = 1.5;
  /// Per leader, its `hot_followers_per_leader` smallest-lag followers are
  /// "hot" (liquid) symbols quoting `hot_quotes_per_period` times per period.
  /// Q4's repetition sequences need symbols that tick more than once per
  /// window; liquid stocks do exactly that.
  std::size_t hot_followers_per_leader = 10;
  std::size_t hot_quotes_per_period = 4;
  /// Probability that a leader flips its direction at each of its quotes.
  double leader_flip_probability = 0.3;
  std::uint64_t seed = 1;

  void validate() const {
    ESPICE_REQUIRE(num_symbols >= 2, "need at least two symbols");
    ESPICE_REQUIRE(num_leaders >= 1 && num_leaders < num_symbols,
                   "leaders must be a strict subset of symbols");
    ESPICE_REQUIRE(quote_period_seconds > 0.0, "quote period must be positive");
    ESPICE_REQUIRE(min_lag_seconds <= max_lag_seconds, "invalid lag range");
  }
};

class StockGenerator {
 public:
  /// Registers "S000".."S499" in `registry` (leaders are S000..S00k).
  StockGenerator(StockConfig config, TypeRegistry& registry);

  /// Generates `count` events (globally ordered by timestamp / seq).
  std::vector<Event> generate(std::size_t count);

  /// Leader symbol ids (the MLE universe for Q2/Q3).
  const std::vector<EventTypeId>& leaders() const { return leaders_; }

  /// The `k` follower symbols of `leader`, ordered by increasing lag.
  std::vector<EventTypeId> followers_in_lag_order(EventTypeId leader,
                                                  std::size_t k) const;

  /// `k` *non-hot* followers of `leader` whose lags are evenly spread over
  /// the lag range, in lag order.  Used for Q3: well-separated reaction lags
  /// make the rising quotes arrive in sequence despite timing jitter.
  std::vector<EventTypeId> sequence_symbols(EventTypeId leader,
                                            std::size_t k) const;

  /// `k` hot followers of `leader` in lag order (k must not exceed
  /// hot_followers_per_leader).  Used for Q4: repetition patterns need
  /// symbols that quote several times per window.
  std::vector<EventTypeId> repetition_symbols(EventTypeId leader,
                                              std::size_t k) const;

  bool is_hot(EventTypeId symbol) const;

  double lag_of(EventTypeId symbol) const;
  EventTypeId leader_of(EventTypeId symbol) const;
  /// Mean stream rate in events/second (accounts for hot symbols).
  double aggregate_rate() const {
    return static_cast<double>(quotes_per_period_) /
           config_.quote_period_seconds;
  }
  const StockConfig& config() const { return config_; }

 private:
  StockConfig config_;
  Rng rng_;
  std::vector<EventTypeId> leaders_;
  std::vector<EventTypeId> leader_of_;     // per symbol (self for leaders)
  std::vector<double> lag_of_;             // per symbol (0 for leaders)
  std::vector<double> offset_of_;          // fixed intra-period quote offset
  std::vector<bool> hot_;                  // liquid symbols (multi-quote)
  std::size_t quotes_per_period_ = 0;      // total quotes emitted per period
  std::uint64_t next_seq_ = 0;
  double clock_ = 0.0;                     // generation time cursor

  struct LeaderState {
    int direction = +1;
    double last_move_ts = -1e18;
  };
  std::vector<LeaderState> leader_state_;

  /// Recent leader moves (per leader, trimmed to the influence horizon).
  /// Persistent state so follower correlation survives generate() call
  /// boundaries -- batched generation equals one long run.
  struct Move {
    double ts;
    int direction;
  };
  std::vector<std::deque<Move>> moves_;

  /// Whole periods are generated at once; events past the requested count
  /// wait here for the next generate() call instead of being discarded.
  std::vector<Event> pending_;
  std::size_t pending_pos_ = 0;
};

}  // namespace espice
