#include "datasets/rtls.hpp"

#include <algorithm>
#include <cstdio>

namespace espice {

RtlsGenerator::RtlsGenerator(RtlsConfig config, TypeRegistry& registry)
    : config_(config), rng_(config.seed) {
  config_.validate();
  char name[32];
  for (std::size_t s = 0; s < 2; ++s) {
    std::snprintf(name, sizeof(name), "STR%zu", s);
    strikers_.push_back(registry.intern(name));
  }
  for (std::size_t d = 0; d < config_.num_defenders; ++d) {
    std::snprintf(name, sizeof(name), "DF%02zu", d);
    defenders_.push_back(registry.intern(name));
  }
  for (std::size_t o = 0; o < config_.num_others; ++o) {
    std::snprintf(name, sizeof(name), "OBJ%02zu", o);
    others_.push_back(registry.intern(name));
  }
  // Disjoint marker assignment: striker 0 gets the first block, striker 1
  // the second.
  markers_.resize(2);
  for (std::size_t s = 0; s < 2; ++s) {
    for (std::size_t k = 0; k < config_.markers_per_striker; ++k) {
      markers_[s].push_back(defenders_[s * config_.markers_per_striker + k]);
    }
  }
  next_episode_start_ = rng_.exponential(1.0 / config_.possession_gap_mean_seconds);
}

void RtlsGenerator::roll_episode() {
  episode_.striker = next_striker_;
  next_striker_ = 1 - next_striker_;
  episode_.start = next_episode_start_;
  episode_.end = episode_.start + rng_.uniform(config_.possession_min_seconds,
                                               config_.possession_max_seconds);
  episode_.marker_start.clear();
  for (std::size_t k = 0; k < config_.markers_per_striker; ++k) {
    if (rng_.bernoulli(config_.marker_response)) {
      episode_.marker_start.push_back(
          episode_.start + rng_.uniform(1.0, config_.max_reaction_lag_seconds));
    } else {
      episode_.marker_start.push_back(-1.0);
    }
  }
  episode_active_ = true;
}

std::vector<Event> RtlsGenerator::generate(std::size_t count) {
  std::vector<Event> out;
  out.reserve(count);

  std::vector<std::pair<double, EventTypeId>> batch;
  const std::size_t n_objects = objects();
  batch.reserve(n_objects);

  auto marker_index = [&](EventTypeId type, std::size_t striker) -> int {
    const auto& mk = markers_[striker];
    for (std::size_t k = 0; k < mk.size(); ++k) {
      if (mk[k] == type) return static_cast<int>(k);
    }
    return -1;
  };

  for (;;) {
    // Hand out buffered events first: a previous call that stopped
    // mid-second left its tail here.
    while (pending_pos_ < pending_.size() && out.size() < count) {
      out.push_back(pending_[pending_pos_++]);
    }
    if (out.size() == count) return out;
    pending_.clear();
    pending_pos_ = 0;

    // Episode lifecycle bookkeeping for this one-second slot.
    if (!episode_active_ && clock_ >= next_episode_start_) roll_episode();
    if (episode_active_ && clock_ >= episode_.end) {
      episode_active_ = false;
      next_episode_start_ =
          episode_.end +
          rng_.exponential(1.0 / config_.possession_gap_mean_seconds);
      if (clock_ >= next_episode_start_) roll_episode();
    }

    batch.clear();
    for (EventTypeId t : strikers_) {
      batch.emplace_back(clock_ + rng_.uniform(0.0, 1.0), t);
    }
    for (EventTypeId t : defenders_) {
      batch.emplace_back(clock_ + rng_.uniform(0.0, 1.0), t);
    }
    for (EventTypeId t : others_) {
      batch.emplace_back(clock_ + rng_.uniform(0.0, 1.0), t);
    }
    std::sort(batch.begin(), batch.end());
    clock_ += 1.0;

    for (const auto& [ts, type] : batch) {
      Event e;
      e.type = type;
      e.seq = next_seq_++;
      e.ts = ts;

      const bool in_episode =
          episode_active_ && ts >= episode_.start && ts < episode_.end;

      if (type == strikers_[0] || type == strikers_[1]) {
        const std::size_t s = (type == strikers_[0]) ? 0 : 1;
        const bool possessing = in_episode && episode_.striker == s;
        e.value = possessing ? +1.0 : -1.0;
      } else if (std::find(defenders_.begin(), defenders_.end(), type) !=
                 defenders_.end()) {
        bool defending = false;
        if (in_episode) {
          const int k = marker_index(type, episode_.striker);
          if (k >= 0 && episode_.marker_start[static_cast<std::size_t>(k)] >= 0.0 &&
              ts >= episode_.marker_start[static_cast<std::size_t>(k)]) {
            defending = true;
          }
        }
        if (!defending && rng_.bernoulli(config_.noise_defend_probability)) {
          defending = true;  // uncorrelated defensive action elsewhere
        }
        // Defend intensity: positive while defending (distance below the
        // man-marking threshold), negative otherwise.
        e.value = defending ? rng_.uniform(0.2, 1.0) : -rng_.uniform(0.2, 1.0);
      } else {
        e.value = rng_.uniform(-1.0, 1.0);  // position noise of other objects
      }
      pending_.push_back(e);
    }
  }
}

}  // namespace espice
