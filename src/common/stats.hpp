// Small statistics helpers used by the overload detector (EWMA of processing
// latency / arrival rate), the metrics module (latency percentiles) and the
// benches (mean / standard deviation across repeated runs).
#pragma once

#include <cstddef>
#include <vector>

namespace espice {

/// Exponentially weighted moving average.  `alpha` is the weight of the most
/// recent observation; alpha = 1 degenerates to "last value wins".
class Ewma {
 public:
  explicit Ewma(double alpha = 0.2);

  void observe(double value);
  void reset();

  /// Current estimate.  Returns `fallback` until the first observation.
  double value_or(double fallback) const { return seeded_ ? value_ : fallback; }
  bool seeded() const { return seeded_; }
  double value() const;

  /// Snapshot / restore (durability layer): alpha comes from the owner's
  /// config, so only the running estimate travels.
  double raw_value() const { return value_; }
  void restore(double value, bool seeded) {
    value_ = value;
    seeded_ = seeded;
  }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Streaming mean / variance / min / max (Welford's algorithm).
class RunningStats {
 public:
  void observe(double value);
  void reset();

  std::size_t count() const { return count_; }
  double mean() const;
  /// Sample variance (n-1 denominator); 0 for fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores every observation and answers percentile queries exactly.
/// Intended for offline analysis of bounded-size experiment output
/// (latency traces), not for unbounded production streams.
class PercentileTracker {
 public:
  void observe(double value) {
    values_.push_back(value);
    sorted_ = false;
  }
  std::size_t count() const { return values_.size(); }

  /// q in [0, 1]; linear interpolation between closest ranks.
  /// Must not be called on an empty tracker.
  double percentile(double q) const;
  double median() const { return percentile(0.5); }
  double max() const { return percentile(1.0); }

 private:
  mutable std::vector<double> values_;
  mutable bool sorted_ = false;
};

}  // namespace espice
