#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace espice {

Ewma::Ewma(double alpha) : alpha_(alpha) {
  ESPICE_REQUIRE(alpha > 0.0 && alpha <= 1.0, "EWMA alpha must be in (0, 1]");
}

void Ewma::observe(double value) {
  if (!seeded_) {
    value_ = value;
    seeded_ = true;
  } else {
    value_ = alpha_ * value + (1.0 - alpha_) * value_;
  }
}

void Ewma::reset() {
  seeded_ = false;
  value_ = 0.0;
}

double Ewma::value() const {
  ESPICE_REQUIRE(seeded_, "EWMA read before first observation");
  return value_;
}

void RunningStats::observe(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::reset() { *this = RunningStats{}; }

double RunningStats::mean() const {
  ESPICE_REQUIRE(count_ > 0, "mean of empty RunningStats");
  return mean_;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  ESPICE_REQUIRE(count_ > 0, "min of empty RunningStats");
  return min_;
}

double RunningStats::max() const {
  ESPICE_REQUIRE(count_ > 0, "max of empty RunningStats");
  return max_;
}

double PercentileTracker::percentile(double q) const {
  ESPICE_REQUIRE(!values_.empty(), "percentile of empty tracker");
  ESPICE_REQUIRE(q >= 0.0 && q <= 1.0, "percentile rank out of range");
  if (!sorted_) {
    std::sort(values_.begin(), values_.end());
    sorted_ = true;
  }
  if (values_.size() == 1) return values_.front();
  const double rank = q * static_cast<double>(values_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] * (1.0 - frac) + values_[hi] * frac;
}

}  // namespace espice
