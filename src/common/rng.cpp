#include "common/rng.hpp"

#include <cmath>

namespace espice {

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  ESPICE_REQUIRE(n > 0, "uniform_int(0) is ill-defined");
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = -n % n;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double rate) {
  ESPICE_REQUIRE(rate > 0.0, "exponential rate must be positive");
  // uniform() may return 0; 1-u is in (0, 1].
  return -std::log(1.0 - uniform()) / rate;
}

double Rng::normal() {
  // Marsaglia polar method; consumes a variable number of uniforms but is
  // deterministic for a given generator state.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  return u * std::sqrt(-2.0 * std::log(s) / s);
}

std::uint64_t Rng::poisson(double mean) {
  ESPICE_REQUIRE(mean >= 0.0, "poisson mean must be non-negative");
  if (mean == 0.0) return 0;
  // Knuth's algorithm; adequate for the small means used by the generators.
  const double limit = std::exp(-mean);
  double prod = uniform();
  std::uint64_t n = 0;
  while (prod > limit) {
    ++n;
    prod *= uniform();
  }
  return n;
}

}  // namespace espice
