// Deterministic pseudo-random number generation.
//
// Every stochastic component in the repository (dataset generators, arrival
// processes, the baseline shedder's uniform sampling, ...) draws from an
// explicitly seeded espice::Rng so that experiments are bit-reproducible
// across runs and machines.  We implement xoshiro256** (Blackman & Vigna)
// seeded via SplitMix64, which is the recommended seeding procedure.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace espice {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
/// Also usable directly as a cheap standalone generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit PRNG with 256 bits of state.
/// Satisfies (most of) the C++ UniformRandomBitGenerator requirements, but we
/// deliberately provide typed helpers instead of using <random> distributions,
/// whose results are not portable across standard-library implementations.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    // 53 high-quality bits -> double mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). n must be > 0.  Uses Lemire's method with
  /// rejection to avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    ESPICE_REQUIRE(lo <= hi, "empty integer range");
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given rate (mean 1/rate).
  /// Used for Poisson arrival processes.
  double exponential(double rate);

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Poisson-distributed count (Knuth's method; fine for small means).
  std::uint64_t poisson(double mean);

  /// Snapshot / restore of the full 256-bit generator state (durability
  /// layer): restoring the state continues the exact stream the snapshot
  /// interrupted, which the bit-identical recovery guarantee needs for
  /// every stochastic shedder decision.
  std::array<std::uint64_t, 4> state() const {
    return {state_[0], state_[1], state_[2], state_[3]};
  }
  void set_state(const std::array<std::uint64_t, 4>& s) {
    for (int i = 0; i < 4; ++i) state_[i] = s[static_cast<std::size_t>(i)];
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace espice
