// Error-handling primitives shared by every eSPICE module.
//
// Policy (follows the C++ Core Guidelines, E.*):
//  * Programming errors (broken invariants, out-of-contract arguments on
//    internal interfaces) abort via ESPICE_ASSERT -- they are bugs, not
//    recoverable conditions.
//  * User-facing configuration errors throw espice::ConfigError so that
//    examples / benches can print a friendly message.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace espice {

/// Thrown when a user-supplied configuration value is invalid
/// (e.g. a latency bound of zero or a window size of zero).
class ConfigError : public std::runtime_error {
 public:
  explicit ConfigError(const std::string& what) : std::runtime_error(what) {}
};

/// Machine-readable category of a recoverable runtime error.  Callers that
/// need to branch on *what* went wrong (the CSV loader's bad-row policy,
/// the durability layer's recovery path) switch on the code instead of
/// parsing the message.
enum class ErrorCode {
  kGeneric,
  kBadRow,           ///< malformed CSV row (missing/garbage/extra fields)
  kStreamOrder,      ///< seq/ts ordering contract violated
  kIo,               ///< file open/read/write/fsync/rename failure
  kCorruptLog,       ///< event-log record/segment failed validation
  kCorruptSnapshot,  ///< snapshot payload/manifest failed validation
  kShardFailed,      ///< a shard pipeline thread died with an exception
  kEngineFailed,     ///< operation on an engine already in the failed state
};

inline const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kGeneric: return "generic";
    case ErrorCode::kBadRow: return "bad_row";
    case ErrorCode::kStreamOrder: return "stream_order";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kCorruptLog: return "corrupt_log";
    case ErrorCode::kCorruptSnapshot: return "corrupt_snapshot";
    case ErrorCode::kShardFailed: return "shard_failed";
    case ErrorCode::kEngineFailed: return "engine_failed";
  }
  return "unknown";
}

/// Typed recoverable error.  Derives from ConfigError so existing callers
/// (and tests) that catch ConfigError keep working; new callers catch
/// espice::Error and dispatch on code().
class Error : public ConfigError {
 public:
  Error(ErrorCode code, const std::string& what)
      : ConfigError(what), code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "espice: assertion `%s` failed at %s:%d: %s\n", expr, file,
               line, msg);
  std::abort();
}
}  // namespace detail

}  // namespace espice

/// Internal invariant check.  The zero-copy window engine asserts on the
/// per-membership hot path (keep(), store slot resolution), so release
/// builds compile the checks out; debug builds keep them.  Conditions must
/// therefore be side-effect free.
#ifdef NDEBUG
// sizeof keeps the condition type-checked and its operands "used" without
// evaluating anything at run time.
#define ESPICE_ASSERT(expr, msg) ((void)sizeof(!(expr)))
#else
#define ESPICE_ASSERT(expr, msg)                                       \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::espice::detail::assert_fail(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                  \
  } while (false)
#endif

/// Validate a user-supplied configuration value; throws ConfigError.
#define ESPICE_REQUIRE(expr, msg)              \
  do {                                         \
    if (!(expr)) {                             \
      throw ::espice::ConfigError((msg));      \
    }                                          \
  } while (false)

/// Validate a recoverable runtime condition; throws espice::Error with the
/// given ErrorCode so callers can dispatch on the failure category.
#define ESPICE_CHECK(expr, code, msg)          \
  do {                                         \
    if (!(expr)) {                             \
      throw ::espice::Error((code), (msg));    \
    }                                          \
  } while (false)
