// Sharded replay harness: drives a StreamEngine with the same rate-phase
// schedules the fig-style benches feed OperatorSimulator, so overload
// scenarios can be rerun against the K-shard engine.
//
// Unlike OperatorSimulator (virtual time, serial), the engine runs on real
// threads, so the replay is wall-clock based:
//  * replay_speed == 0 (default): events are pushed as fast as the router
//    can route them -- the throughput-measurement mode the sharded benches
//    use.  The phase schedule still defines arrival timestamps, which are
//    exposed in the result (offered rate / span) for reporting.
//  * replay_speed > 0: the router paces pushes so that virtual arrival time
//    t is reached at wall time t / replay_speed (e.g. 100 = replay a
//    1000 s schedule in 10 s).  With an adaptive engine this recreates the
//    paper's overload scenarios against real per-shard queues: arrival
//    bursts genuinely back the rings up, and each shard's overload detector
//    sees the resulting depth.
#pragma once

#include <span>
#include <vector>

#include "runtime/stream_engine.hpp"
#include "sim/operator_sim.hpp"

namespace espice {

struct ShardedSimConfig {
  StreamEngineConfig engine;
  /// 0 = unpaced (push at full speed); > 0 = virtual-to-wall speed factor.
  double replay_speed = 0.0;
  /// >= 1: replay through StreamEngine::push_batch() in batches of this
  /// many events (unpaced mode only; output is bit-identical to per-event
  /// replay; 1 measures the one-event-span API edge).  0 = scalar push()
  /// per event.
  std::size_t batch_size = 0;
};

struct ShardedSimResult {
  EngineReport report;
  /// Virtual span of the arrival schedule (last arrival timestamp).
  double offered_duration = 0.0;
  /// Mean offered rate over the schedule (events / offered_duration).
  double offered_rate = 0.0;
};

/// The serial golden a deterministic engine built from `config` must
/// reproduce bit-for-bit on `events`: hash-partition the stream into
/// substreams with the engine's own partitioner, run the serial
/// run_pipeline() per substream (with the config's shedder, if any), and
/// canonically merge the per-shard match lists.  The oracle tests, the
/// throughput bench and the examples all assert parity against this one
/// definition.
std::vector<ComplexEvent> partitioned_serial_golden(
    const StreamEngineConfig& config, std::span<const Event> events);

/// Per-query serial goldens for a multi-query deterministic engine run:
/// for EACH query independently -- as if it ran alone -- hash-partition the
/// stream into `shards` substreams with the engine's own partitioner
/// (`key_of` nullptr = event type), run the serial single-query
/// run_pipeline() over every substream with that query's own shedder, and
/// canonically merge the per-shard match lists.  Element qi of the result
/// must equal EngineReport::queries[qi].matches bit for bit (the
/// shared-window equivalence guarantee;
/// tests/runtime/multi_query_oracle_test.cpp holds the engine to it).
std::vector<std::vector<ComplexEvent>> per_query_serial_goldens(
    std::size_t shards, const std::function<std::uint64_t(const Event&)>& key_of,
    std::span<const EngineQuery> queries, std::span<const Event> events);

class ShardedSimulator {
 public:
  explicit ShardedSimulator(ShardedSimConfig config);

  /// Replays `events` through a fresh StreamEngine (one engine per run).
  ShardedSimResult run(std::span<const Event> events,
                       const std::vector<RatePhase>& phases);
  ShardedSimResult run(std::span<const Event> events, double rate);

 private:
  ShardedSimConfig config_;
};

}  // namespace espice
